#ifndef ADPROM_SERVICE_STREAMING_MONITOR_H_
#define ADPROM_SERVICE_STREAMING_MONITOR_H_

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/detection_engine.h"
#include "core/profile.h"
#include "hmm/batch_forward.h"
#include "hmm/inference.h"
#include "runtime/call_event.h"

namespace adprom::service {

/// Incremental Detection Engine front-end: accepts runtime::CallEvents one
/// at a time (OnEvent) or in micro-batches (OnEvents) and emits, per
/// event, the verdict of the n-window that event completes — the same
/// verdicts DetectionEngine::MonitorTrace would emit for the full recorded
/// trace, bit for bit, because all paths funnel through the engine's
/// shared scoring + verdict assembly.
///
/// Per-event cost: each event is encoded exactly once on arrival (never
/// re-encoded when later windows slide over it), and the event/symbol
/// buffers are compacted in bulk — zero heap allocation in steady state
/// beyond the strings carried by the events themselves. OnEvents
/// additionally scores all the windows its events complete as ONE batch
/// through the engine's vectorized hmm::BatchScorer, so the transition
/// CSR is swept once per time-step for the whole micro-batch. The batch
/// is whatever the caller already has in hand — the monitor never waits
/// for more events, so batching adds no formation delay.
///
/// Not thread-safe: one StreamingMonitor per session, driven by at most
/// one thread at a time (the SessionManager guarantees this).
class StreamingMonitor {
 public:
  /// `profile` must outlive the monitor. Compiles a private
  /// DetectionEngine for this session (the original PR-4 behaviour —
  /// fine for a handful of sessions, expensive for 10k of them).
  explicit StreamingMonitor(const core::ApplicationProfile* profile);

  /// Shares a pre-compiled engine across sessions: `profile` and `engine`
  /// (compiled against that same profile) must outlive the monitor. This
  /// is the fleet-node path — per-session state shrinks to the sliding
  /// buffers plus a workspace, and the CSR/triage tables stay hot in
  /// cache instead of being duplicated per session.
  StreamingMonitor(const core::ApplicationProfile* profile,
                   const core::DetectionEngine* engine);

  /// Feeds the next event of the session. Returns the verdict of the
  /// window this event completes, or nullopt while the first window is
  /// still filling (batch emits no verdict for those prefixes either).
  std::optional<core::Detection> OnEvent(runtime::CallEvent event);

  /// Feeds a micro-batch of events (consumed by move) and returns the
  /// verdicts of every window they complete, in event order — exactly the
  /// concatenated results of calling OnEvent on each. The completed
  /// windows are scored together through the batched engine.
  std::vector<core::Detection> OnEvents(std::span<runtime::CallEvent> events);

  /// Ends the stream. Sessions shorter than the window length are scored
  /// as one whole-trace window — the SlidingWindows rule for short traces
  /// — so even a 1-event session gets the verdict batch would give it.
  /// Idempotent; returns a verdict only on the first call and only for
  /// short sessions.
  std::optional<core::Detection> Finish();

  size_t events_seen() const { return events_seen_; }
  size_t windows_scored() const { return windows_scored_; }

 private:
  /// Appends one event to the sliding buffers (encode-once).
  void Append(runtime::CallEvent event);
  /// Drops everything before the live window once the buffers outgrow 2n.
  void MaybeCompact();

  const core::ApplicationProfile* profile_;
  /// Non-null only for the single-session constructor that owns its
  /// engine; engine_ below is what every scoring path uses.
  std::unique_ptr<core::DetectionEngine> owned_engine_;
  const core::DetectionEngine* engine_;
  size_t window_length_;
  /// Sliding buffers: the live window is always the contiguous tail of
  /// these vectors. When they outgrow 2n events the prefix before the live
  /// window is discarded with one bulk move — amortized O(1) per event,
  /// and spans into the tail stay valid for the duration of each scoring
  /// call (OnEvents appends its whole batch before forming spans).
  runtime::Trace events_;
  hmm::ObservationSeq symbols_;
  /// Reserved scoring buffers (scalar + batch tiers) — see
  /// DetectionEngine::ReserveWorkspace.
  hmm::BatchWorkspace workspace_;
  size_t events_seen_ = 0;
  size_t windows_scored_ = 0;
  bool finished_ = false;
};

}  // namespace adprom::service

#endif  // ADPROM_SERVICE_STREAMING_MONITOR_H_
