#ifndef ADPROM_SERVICE_STREAMING_MONITOR_H_
#define ADPROM_SERVICE_STREAMING_MONITOR_H_

#include <optional>

#include "core/detection_engine.h"
#include "core/profile.h"
#include "hmm/inference.h"
#include "runtime/call_event.h"

namespace adprom::service {

/// Incremental Detection Engine front-end: accepts one runtime::CallEvent
/// at a time and emits, per event, the verdict of the n-window that event
/// completes — the same verdicts DetectionEngine::MonitorTrace would emit
/// for the full recorded trace, bit for bit, because both funnel every
/// window through DetectionEngine::EvaluateEncoded.
///
/// Per-event cost: each event is encoded exactly once on arrival (never
/// re-encoded when later windows slide over it), the forward recursion
/// runs over the current window through a pre-reserved
/// hmm::ForwardWorkspace, and the event/symbol buffers are compacted in
/// bulk every n events — zero heap allocation in steady state beyond the
/// strings carried by the events themselves.
///
/// Not thread-safe: one StreamingMonitor per session, driven by at most
/// one thread at a time (the SessionManager guarantees this).
class StreamingMonitor {
 public:
  /// `profile` must outlive the monitor.
  explicit StreamingMonitor(const core::ApplicationProfile* profile);

  /// Feeds the next event of the session. Returns the verdict of the
  /// window this event completes, or nullopt while the first window is
  /// still filling (batch emits no verdict for those prefixes either).
  std::optional<core::Detection> OnEvent(runtime::CallEvent event);

  /// Ends the stream. Sessions shorter than the window length are scored
  /// as one whole-trace window — the SlidingWindows rule for short traces
  /// — so even a 1-event session gets the verdict batch would give it.
  /// Idempotent; returns a verdict only on the first call and only for
  /// short sessions.
  std::optional<core::Detection> Finish();

  size_t events_seen() const { return events_seen_; }
  size_t windows_scored() const { return windows_scored_; }

 private:
  const core::ApplicationProfile* profile_;
  core::DetectionEngine engine_;
  size_t window_length_;
  /// Sliding buffers: the live window is always the contiguous tail of
  /// these vectors. When they reach 2n events the older half is discarded
  /// with one bulk move — amortized O(1) per event, and spans into the
  /// tail stay valid for the duration of each scoring call.
  runtime::Trace events_;
  hmm::ObservationSeq symbols_;
  hmm::ForwardWorkspace workspace_;
  size_t events_seen_ = 0;
  size_t windows_scored_ = 0;
  bool finished_ = false;
};

}  // namespace adprom::service

#endif  // ADPROM_SERVICE_STREAMING_MONITOR_H_
