#include "service/profile_registry.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace adprom::service {

namespace {

util::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

util::Status ProfileRegistry::Validate(
    const core::ApplicationProfile& profile) {
  if (profile.options.window_length < 2) {
    return util::Status::InvalidArgument("window_length must be >= 2");
  }
  if (!std::isfinite(profile.threshold)) {
    return util::Status::InvalidArgument("threshold is not finite");
  }
  if (profile.alphabet.size() == 0 || profile.model.num_states() == 0) {
    return util::Status::InvalidArgument("empty alphabet or model");
  }
  return profile.model.Validate();
}

util::Result<size_t> ProfileRegistry::LoadDirectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return util::Status::NotFound("cannot read profile directory " + dir +
                                  ": " + ec.message());
  }
  // Deterministic load order so generation numbering is reproducible.
  std::vector<std::filesystem::path> files;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".profile") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  size_t loaded = 0;
  for (const std::filesystem::path& path : files) {
    const std::string tenant = path.stem().string();
    ADPROM_RETURN_IF_ERROR(ReloadFile(tenant, path.string()));
    ++loaded;
  }
  if (loaded == 0) {
    return util::Status::NotFound("no *.profile files in " + dir);
  }
  return loaded;
}

util::Status ProfileRegistry::Install(const std::string& tenant,
                                      core::ApplicationProfile profile,
                                      const std::string& version) {
  util::Status valid = Validate(profile);
  std::lock_guard<std::mutex> lock(mu_);
  if (!valid.ok()) {
    last_errors_[tenant] = valid.message();
    return util::Status(valid.code(),
                        tenant + ": profile rejected, previous version "
                                 "stays live — " + valid.message());
  }
  const uint64_t generation = ++generations_[tenant];
  tenants_[tenant] = std::make_shared<const ProfileHandle>(
      tenant, version, generation, std::move(profile));
  last_errors_.erase(tenant);
  return util::Status::Ok();
}

util::Status ProfileRegistry::Reload(const std::string& tenant,
                                     const std::string& text,
                                     const std::string& version) {
  // Parse + validate entirely outside the lock: a slow or hostile profile
  // upload never stalls Get() on the submit path.
  auto profile = core::ApplicationProfile::Deserialize(text);
  if (!profile.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    last_errors_[tenant] = profile.status().message();
    return util::Status(profile.status().code(),
                        tenant + ": profile rejected, previous version "
                                 "stays live — " +
                            profile.status().message());
  }
  return Install(tenant, std::move(profile).value(), version);
}

util::Status ProfileRegistry::ReloadFile(const std::string& tenant,
                                         const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    last_errors_[tenant] = text.status().message();
    return text.status();
  }
  return Reload(tenant, *text, path);
}

std::shared_ptr<const ProfileHandle> ProfileRegistry::Get(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second;
}

bool ProfileRegistry::Remove(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.erase(tenant) > 0;
}

uint64_t ProfileRegistry::Generation(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second->generation();
}

std::string ProfileRegistry::last_error(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = last_errors_.find(tenant);
  return it == last_errors_.end() ? std::string() : it->second;
}

std::vector<std::string> ProfileRegistry::Tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [tenant, handle] : tenants_) out.push_back(tenant);
  return out;
}

size_t ProfileRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

}  // namespace adprom::service
