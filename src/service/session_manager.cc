#include "service/session_manager.h"

#include <algorithm>
#include <optional>
#include <span>
#include <utility>

namespace adprom::service {

SessionManager::SessionManager(const core::ApplicationProfile* profile,
                               AlertSink* sink, util::ThreadPool* pool,
                               SessionManagerOptions options)
    : profile_(profile), sink_(sink), pool_(pool), options_(options) {
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  options_.batch_size = std::max<size_t>(1, options_.batch_size);
}

SessionManager::~SessionManager() {
  CloseAll();
  // Close waits only for worker_scheduled to clear; the task that cleared
  // it may still be in its tail, about to notify drain_cv_. Wait it out
  // before the members it touches are destroyed.
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return inflight_workers_.load() == 0; });
}

std::shared_ptr<SessionManager::Session> SessionManager::GetOrCreate(
    const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it != sessions_.end()) return it->second;
  auto session = std::make_shared<Session>(profile_);
  session->last_activity = std::chrono::steady_clock::now();
  sessions_[session_id] = session;
  return session;
}

void SessionManager::ScheduleLocked(const std::shared_ptr<Session>& session,
                                    const std::string& session_id) {
  session->worker_scheduled = true;
  inflight_workers_.fetch_add(1);  // paired with the RunWorker tail
  if (pool_ != nullptr) {
    pool_->Submit(
        [this, session, session_id] { RunWorker(session, session_id); });
  }
}

util::Status SessionManager::Submit(const std::string& session_id,
                                    runtime::CallEvent event) {
  std::shared_ptr<Session> session = GetOrCreate(session_id);
  bool run_inline = false;
  {
    std::unique_lock<std::mutex> lock(session->mu);
    if (session->closed) {
      return util::Status::FailedPrecondition("session closed: " +
                                              session_id);
    }
    if (session->queue.size() >= options_.queue_capacity) {
      if (options_.overflow ==
          SessionManagerOptions::OverflowPolicy::kBlock) {
        session->space_cv.wait(lock, [&] {
          return session->queue.size() < options_.queue_capacity ||
                 session->closed;
        });
        if (session->closed) {
          return util::Status::FailedPrecondition("session closed: " +
                                                  session_id);
        }
      } else {
        session->queue.pop_front();
        ++session->stats.dropped_events;
        total_dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    session->queue.push_back(std::move(event));
    ++session->stats.events_accepted;
    session->last_activity = std::chrono::steady_clock::now();
    if (!session->worker_scheduled) {
      ScheduleLocked(session, session_id);
      run_inline = pool_ == nullptr;
    }
  }
  // Serial mode (null pool): score synchronously on the calling thread.
  if (run_inline) RunWorker(session, session_id);
  return util::Status::Ok();
}

void SessionManager::RunWorker(const std::shared_ptr<Session>& session,
                               const std::string& session_id) {
  // Invariant: at most one RunWorker per session is in flight
  // (worker_scheduled gates scheduling), so the StreamingMonitor is
  // accessed race-free without holding the session mutex while scoring.
  std::vector<runtime::CallEvent> batch;
  while (true) {
    batch.clear();
    {
      std::lock_guard<std::mutex> lock(session->mu);
      const size_t take =
          std::min(options_.batch_size, session->queue.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(session->queue.front()));
        session->queue.pop_front();
      }
      if (batch.empty()) {
        session->worker_scheduled = false;
        break;
      }
    }
    session->space_cv.notify_all();
    // Micro-batch: every window these events complete is scored in one
    // vectorized pass. The batch is exactly what was already queued — the
    // worker never waits for more events, so batch formation adds no
    // delay beyond queue latency.
    std::vector<core::Detection> verdicts =
        session->monitor.OnEvents(std::span<runtime::CallEvent>(batch));
    if (!verdicts.empty()) {
      {
        std::lock_guard<std::mutex> lock(session->mu);
        session->stats.verdicts += verdicts.size();
        for (const core::Detection& verdict : verdicts) {
          if (verdict.IsAlarm()) ++session->stats.alarms;
        }
      }
      for (const core::Detection& verdict : verdicts) {
        sink_->OnDetection(session_id, verdict);
      }
    }
  }
  session->idle_cv.notify_all();
  // Tail: after idle_cv fires, close (and then the destructor) may race
  // ahead, so this must be the last touch of the manager. Decrement
  // before taking mu_, and notify while holding it, so the destructor —
  // which re-checks the counter under mu_ — cannot destroy drain_cv_
  // between our decrement and the notify. Drain() waits on the same cv
  // for the queue-empty state, which also lives behind these locks.
  inflight_workers_.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    drain_cv_.notify_all();
  }
}

util::Status SessionManager::CloseSession(const std::string& session_id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return util::Status::NotFound("no session: " + session_id);
    }
    session = it->second;
    sessions_.erase(it);
  }
  std::optional<core::Detection> last;
  SessionStats stats;
  {
    std::unique_lock<std::mutex> lock(session->mu);
    session->closed = true;
    session->space_cv.notify_all();  // wake blocked producers -> error
    // queue-nonempty implies worker_scheduled, so once the worker
    // unschedules every accepted event has been scored.
    session->idle_cv.wait(lock, [&] { return !session->worker_scheduled; });
    last = session->monitor.Finish();
    if (last.has_value()) {
      ++session->stats.verdicts;
      if (last->IsAlarm()) ++session->stats.alarms;
    }
    stats = session->stats;
  }
  if (last.has_value()) sink_->OnDetection(session_id, *last);
  sink_->OnSessionClosed(session_id, stats);
  return util::Status::Ok();
}

void SessionManager::CloseAll() {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) ids.push_back(id);
  }
  for (const std::string& id : ids) {
    (void)CloseSession(id);  // NotFound = racing closer won; fine
  }
}

void SessionManager::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] {
    for (const auto& [id, session] : sessions_) {
      std::lock_guard<std::mutex> session_lock(session->mu);
      if (!session->queue.empty() || session->worker_scheduled) {
        return false;
      }
    }
    return true;
  });
}

size_t SessionManager::EvictIdle(
    std::chrono::steady_clock::duration max_idle) {
  const auto cutoff = std::chrono::steady_clock::now() - max_idle;
  std::vector<std::string> idle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, session] : sessions_) {
      std::lock_guard<std::mutex> session_lock(session->mu);
      if (session->queue.empty() && !session->worker_scheduled &&
          session->last_activity <= cutoff) {
        idle.push_back(id);
      }
    }
  }
  size_t evicted = 0;
  for (const std::string& id : idle) {
    if (CloseSession(id).ok()) ++evicted;
  }
  return evicted;
}

size_t SessionManager::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace adprom::service
