#include "service/session_manager.h"

#include <algorithm>
#include <optional>
#include <span>
#include <utility>

namespace adprom::service {

SessionManager::SessionManager(const core::ApplicationProfile* profile,
                               AlertSink* sink, util::ThreadPool* pool,
                               SessionManagerOptions options)
    : profile_(profile), sink_(sink), pool_(pool), options_(options) {
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  options_.batch_size = std::max<size_t>(1, options_.batch_size);
}

SessionManager::SessionManager(AlertSink* sink, util::ThreadPool* pool,
                               SessionManagerOptions options)
    : SessionManager(nullptr, sink, pool, options) {}

SessionManager::~SessionManager() {
  CloseAll();
  // Close waits only for worker_scheduled to clear; the task that cleared
  // it may still be in its tail, about to notify drain_cv_. Wait it out
  // before the members it touches are destroyed.
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return inflight_workers_.load() == 0; });
}

util::Result<std::shared_ptr<SessionManager::Session>>
SessionManager::GetOrCreate(const std::string& session_id,
                            const SessionBinding* binding) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it != sessions_.end()) return it->second;
  std::shared_ptr<Session> session;
  if (binding != nullptr) {
    if (binding->profile == nullptr) {
      return util::Status::InvalidArgument(
          "session binding has no profile handle: " + session_id);
    }
    session = std::make_shared<Session>(binding->profile);
    session->display_id =
        binding->display_id.empty() ? session_id : binding->display_id;
    session->tenant = binding->tenant;
    session->stats.profile_generation = session->profile->generation();
    if (session->tenant != nullptr) {
      session->tenant->sessions_opened.fetch_add(1,
                                                 std::memory_order_relaxed);
    }
  } else {
    if (profile_ == nullptr) {
      return util::Status::FailedPrecondition(
          "manager has no default profile; session " + session_id +
          " needs a SessionBinding");
    }
    session = std::make_shared<Session>(profile_);
    session->display_id = session_id;
  }
  session->last_activity = std::chrono::steady_clock::now();
  sessions_[session_id] = session;
  return session;
}

void SessionManager::ScheduleLocked(
    const std::shared_ptr<Session>& session) {
  session->worker_scheduled = true;
  inflight_workers_.fetch_add(1);  // paired with the RunWorker tail
  if (pool_ != nullptr) {
    pool_->Submit([this, session] { RunWorker(session); });
  }
}

void SessionManager::DropOldestLocked(Session* session) {
  session->queue.pop_front();
  ++session->stats.dropped_events;
  dropped_.fetch_add(1, std::memory_order_relaxed);
  queue_depth_.fetch_sub(1, std::memory_order_relaxed);
  if (session->tenant != nullptr) {
    session->tenant->dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

util::Status SessionManager::Submit(const std::string& session_id,
                                    runtime::CallEvent event) {
  return SubmitSpan(session_id, nullptr,
                    std::span<const runtime::CallEvent>(&event, 1));
}

util::Status SessionManager::Submit(const std::string& session_id,
                                    const SessionBinding& binding,
                                    runtime::CallEvent event) {
  return SubmitSpan(session_id, &binding,
                    std::span<const runtime::CallEvent>(&event, 1));
}

util::Status SessionManager::SubmitBatch(
    const std::string& session_id, const SessionBinding& binding,
    std::span<const runtime::CallEvent> events) {
  return SubmitSpan(session_id, &binding, events);
}

util::Status SessionManager::SubmitSpan(
    const std::string& session_id, const SessionBinding* binding,
    std::span<const runtime::CallEvent> events) {
  if (events.empty()) return util::Status::Ok();
  const bool timed = options_.record_submit_latency;
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point();
  ADPROM_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                          GetOrCreate(session_id, binding));
  bool run_inline = false;
  {
    std::unique_lock<std::mutex> lock(session->mu);
    if (session->closed) {
      return util::Status::FailedPrecondition("session closed: " +
                                              session_id);
    }
    for (const runtime::CallEvent& event : events) {
      if (session->queue.size() >= options_.queue_capacity) {
        if (options_.overflow ==
            SessionManagerOptions::OverflowPolicy::kBlock) {
          session->space_cv.wait(lock, [&] {
            return session->queue.size() < options_.queue_capacity ||
                   session->closed;
          });
          if (session->closed) {
            return util::Status::FailedPrecondition("session closed: " +
                                                    session_id);
          }
        } else {
          DropOldestLocked(session.get());
        }
      }
      session->queue.push_back(std::move(event));
      ++session->stats.events_accepted;
      queue_depth_.fetch_add(1, std::memory_order_relaxed);
    }
    session->last_activity = std::chrono::steady_clock::now();
    if (!session->worker_scheduled) {
      ScheduleLocked(session);
      run_inline = pool_ == nullptr;
    }
  }
  // High-water mark of the shard-wide backlog gauge (CAS-max; relaxed is
  // fine for an ops counter).
  size_t depth = queue_depth_.load(std::memory_order_relaxed);
  size_t high = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > high && !max_queue_depth_.compare_exchange_weak(
                             high, depth, std::memory_order_relaxed)) {
  }
  submitted_.fetch_add(events.size(), std::memory_order_relaxed);
  if (session->tenant != nullptr) {
    session->tenant->submitted.fetch_add(events.size(),
                                         std::memory_order_relaxed);
  }
  // Serial mode (null pool): score synchronously on the calling thread.
  if (run_inline) RunWorker(session);
  if (timed) {
    submit_latency_.RecordNanos(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  return util::Status::Ok();
}

void SessionManager::RunWorker(const std::shared_ptr<Session>& session) {
  // Invariant: at most one RunWorker per session is in flight
  // (worker_scheduled gates scheduling), so the StreamingMonitor is
  // accessed race-free without holding the session mutex while scoring.
  std::vector<runtime::CallEvent> batch;
  while (true) {
    batch.clear();
    {
      std::lock_guard<std::mutex> lock(session->mu);
      const size_t take =
          std::min(options_.batch_size, session->queue.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(session->queue.front()));
        session->queue.pop_front();
      }
      if (batch.empty()) {
        session->worker_scheduled = false;
        break;
      }
    }
    queue_depth_.fetch_sub(batch.size(), std::memory_order_relaxed);
    session->space_cv.notify_all();
    // Micro-batch: every window these events complete is scored in one
    // vectorized pass. The batch is exactly what was already queued — the
    // worker never waits for more events, so batch formation adds no
    // delay beyond queue latency.
    std::vector<core::Detection> verdicts =
        session->monitor.OnEvents(std::span<runtime::CallEvent>(batch));
    scored_.fetch_add(batch.size(), std::memory_order_relaxed);
    if (session->tenant != nullptr) {
      session->tenant->scored.fetch_add(batch.size(),
                                        std::memory_order_relaxed);
    }
    if (!verdicts.empty()) {
      size_t alarm_count = 0;
      for (const core::Detection& verdict : verdicts) {
        if (verdict.IsAlarm()) ++alarm_count;
      }
      {
        std::lock_guard<std::mutex> lock(session->mu);
        session->stats.verdicts += verdicts.size();
        session->stats.alarms += alarm_count;
      }
      for (const core::Detection& verdict : verdicts) {
        sink_->OnDetection(session->display_id, verdict);
      }
      verdicts_.fetch_add(verdicts.size(), std::memory_order_relaxed);
      alarms_.fetch_add(alarm_count, std::memory_order_relaxed);
      if (session->tenant != nullptr) {
        session->tenant->verdicts.fetch_add(verdicts.size(),
                                            std::memory_order_relaxed);
        session->tenant->alarms.fetch_add(alarm_count,
                                          std::memory_order_relaxed);
      }
    }
  }
  session->idle_cv.notify_all();
  // Tail: after idle_cv fires, close (and then the destructor) may race
  // ahead, so this must be the last touch of the manager. Decrement
  // before taking mu_, and notify while holding it, so the destructor —
  // which re-checks the counter under mu_ — cannot destroy drain_cv_
  // between our decrement and the notify. Drain() waits on the same cv
  // for the queue-empty state, which also lives behind these locks.
  inflight_workers_.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    drain_cv_.notify_all();
  }
}

util::Status SessionManager::CloseSession(const std::string& session_id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return util::Status::NotFound("no session: " + session_id);
    }
    session = it->second;
    sessions_.erase(it);
  }
  std::optional<core::Detection> last;
  SessionStats stats;
  {
    std::unique_lock<std::mutex> lock(session->mu);
    session->closed = true;
    session->space_cv.notify_all();  // wake blocked producers -> error
    // queue-nonempty implies worker_scheduled, so once the worker
    // unschedules every accepted event has been scored.
    session->idle_cv.wait(lock, [&] { return !session->worker_scheduled; });
    last = session->monitor.Finish();
    if (last.has_value()) {
      ++session->stats.verdicts;
      if (last->IsAlarm()) ++session->stats.alarms;
    }
    session->stats.events_scored = session->monitor.events_seen();
    stats = session->stats;
  }
  if (last.has_value()) {
    verdicts_.fetch_add(1, std::memory_order_relaxed);
    if (last->IsAlarm()) alarms_.fetch_add(1, std::memory_order_relaxed);
    if (session->tenant != nullptr) {
      session->tenant->verdicts.fetch_add(1, std::memory_order_relaxed);
      if (last->IsAlarm()) {
        session->tenant->alarms.fetch_add(1, std::memory_order_relaxed);
      }
    }
    sink_->OnDetection(session->display_id, *last);
  }
  if (session->tenant != nullptr) {
    session->tenant->sessions_closed.fetch_add(1, std::memory_order_relaxed);
  }
  sink_->OnSessionClosed(session->display_id, stats);
  return util::Status::Ok();
}

void SessionManager::CloseAll() {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) ids.push_back(id);
  }
  for (const std::string& id : ids) {
    (void)CloseSession(id);  // NotFound = racing closer won; fine
  }
}

void SessionManager::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] {
    for (const auto& [id, session] : sessions_) {
      std::lock_guard<std::mutex> session_lock(session->mu);
      if (!session->queue.empty() || session->worker_scheduled) {
        return false;
      }
    }
    return true;
  });
}

size_t SessionManager::EvictIdle(
    std::chrono::steady_clock::duration max_idle) {
  const auto cutoff = std::chrono::steady_clock::now() - max_idle;
  std::vector<std::string> idle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, session] : sessions_) {
      std::lock_guard<std::mutex> session_lock(session->mu);
      if (session->queue.empty() && !session->worker_scheduled &&
          session->last_activity <= cutoff) {
        idle.push_back(id);
      }
    }
  }
  size_t evicted = 0;
  for (const std::string& id : idle) {
    if (CloseSession(id).ok()) ++evicted;
  }
  return evicted;
}

size_t SessionManager::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

ShardMetrics SessionManager::Metrics() const {
  ShardMetrics out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.dropped = dropped_.load(std::memory_order_relaxed);
  out.scored = scored_.load(std::memory_order_relaxed);
  out.verdicts = verdicts_.load(std::memory_order_relaxed);
  out.alarms = alarms_.load(std::memory_order_relaxed);
  out.live_sessions = num_sessions();
  out.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  out.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  out.submit_p50_us = submit_latency_.QuantileUs(0.5);
  out.submit_p99_us = submit_latency_.QuantileUs(0.99);
  return out;
}

}  // namespace adprom::service
