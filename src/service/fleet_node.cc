#include "service/fleet_node.h"

#include <algorithm>
#include <utility>

namespace adprom::service {

namespace {

/// Session-key separator for the internal composite id. An information
/// separator is illegal in both the text and binary wire identifiers, so
/// ("a", "b\x1fc") and ("a\x1fb", "c") can never collide.
constexpr char kKeySep = '\x1f';

/// FNV-1a 64 over the composite key: cheap, stable across runs (the shard
/// a session maps to is part of the test contract), and well-mixed enough
/// that sequential session keys spread evenly.
uint64_t HashKey(const std::string& tenant, const std::string& session_key) {
  uint64_t hash = 1469598103934665603ULL;
  auto mix = [&hash](const std::string& text) {
    for (const char c : text) {
      hash ^= static_cast<uint8_t>(c);
      hash *= 1099511628211ULL;
    }
  };
  mix(tenant);
  hash ^= static_cast<uint8_t>(kKeySep);
  hash *= 1099511628211ULL;
  mix(session_key);
  return hash;
}

std::string CompositeKey(const std::string& tenant,
                         const std::string& session_key) {
  std::string key;
  key.reserve(tenant.size() + 1 + session_key.size());
  key.append(tenant);
  key.push_back(kKeySep);
  key.append(session_key);
  return key;
}

}  // namespace

FleetNode::FleetNode(ProfileRegistry* registry, AlertSink* sink,
                     util::ThreadPool* pool, FleetOptions options)
    : registry_(registry), options_(options) {
  options_.num_shards = std::max<size_t>(1, options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(
        std::make_unique<SessionManager>(sink, pool, options_.session));
  }
}

size_t FleetNode::ShardIndex(const std::string& tenant,
                             const std::string& session_key) const {
  return HashKey(tenant, session_key) % shards_.size();
}

TenantCounters* FleetNode::CountersFor(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    auto counters = std::make_unique<TenantCounters>();
    counters->tenant = tenant;
    it = tenants_.emplace(tenant, std::move(counters)).first;
  }
  return it->second.get();
}

util::Status FleetNode::Submit(const std::string& tenant,
                               const std::string& session_key,
                               runtime::CallEvent event) {
  return SubmitBatch(tenant, session_key,
                     std::span<const runtime::CallEvent>(&event, 1));
}

util::Status FleetNode::SubmitBatch(
    const std::string& tenant, const std::string& session_key,
    std::span<const runtime::CallEvent> events) {
  // Fail closed: no live profile -> the event is rejected, never scored
  // against some other tenant's model. Sessions created before a Remove
  // keep their pinned handle but stop receiving events, exactly like an
  // unknown tenant.
  SessionBinding binding;
  binding.profile = registry_->Get(tenant);
  if (binding.profile == nullptr) {
    return util::Status::NotFound("no profile loaded for tenant: " + tenant);
  }
  binding.display_id = options_.qualify_sink_ids
                           ? tenant + "/" + session_key
                           : session_key;
  binding.tenant = CountersFor(tenant);
  SessionManager& shard = *shards_[ShardIndex(tenant, session_key)];
  return shard.SubmitBatch(CompositeKey(tenant, session_key), binding,
                           events);
}

util::Status FleetNode::CloseSession(const std::string& tenant,
                                     const std::string& session_key) {
  SessionManager& shard = *shards_[ShardIndex(tenant, session_key)];
  return shard.CloseSession(CompositeKey(tenant, session_key));
}

void FleetNode::CloseAll() {
  for (const auto& shard : shards_) shard->CloseAll();
}

void FleetNode::Drain() {
  for (const auto& shard : shards_) shard->Drain();
}

FleetMetrics FleetNode::Metrics() const {
  FleetMetrics out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) out.shards.push_back(shard->Metrics());
  std::lock_guard<std::mutex> lock(tenants_mu_);
  out.tenants.reserve(tenants_.size());
  for (const auto& [tenant, counters] : tenants_) {
    TenantMetrics snapshot;
    snapshot.tenant = tenant;
    snapshot.generation = registry_->Generation(tenant);
    snapshot.submitted = counters->submitted.load(std::memory_order_relaxed);
    snapshot.dropped = counters->dropped.load(std::memory_order_relaxed);
    snapshot.scored = counters->scored.load(std::memory_order_relaxed);
    snapshot.verdicts = counters->verdicts.load(std::memory_order_relaxed);
    snapshot.alarms = counters->alarms.load(std::memory_order_relaxed);
    snapshot.sessions_opened =
        counters->sessions_opened.load(std::memory_order_relaxed);
    snapshot.sessions_closed =
        counters->sessions_closed.load(std::memory_order_relaxed);
    out.tenants.push_back(std::move(snapshot));
  }
  return out;
}

size_t FleetNode::num_sessions() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->num_sessions();
  return total;
}

size_t FleetNode::total_dropped() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->total_dropped();
  return total;
}

}  // namespace adprom::service
