#ifndef ADPROM_SERVICE_PROFILE_REGISTRY_H_
#define ADPROM_SERVICE_PROFILE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/detection_engine.h"
#include "core/profile.h"
#include "util/status.h"

namespace adprom::service {

/// One immutable, versioned deployment of a tenant's application profile:
/// the profile itself plus its compiled DetectionEngine (CSR transition
/// matrix, batch scorer, triage tables). Built once per (tenant, version)
/// and shared read-only by every session of that tenant — sessions no
/// longer pay the per-session engine compilation the PR-4 service did,
/// which is what makes 10k+ concurrent sessions per node affordable.
///
/// Handles are reached through shared_ptr and never mutated after
/// construction: a hot reload swaps the registry's pointer while live
/// sessions keep scoring against the handle they pinned at creation, so
/// every session's verdict stream is attributable to exactly one
/// generation.
class ProfileHandle {
 public:
  ProfileHandle(std::string tenant, std::string version, uint64_t generation,
                core::ApplicationProfile profile)
      : tenant_(std::move(tenant)),
        version_(std::move(version)),
        generation_(generation),
        profile_(std::move(profile)),
        engine_(&profile_) {}

  ProfileHandle(const ProfileHandle&) = delete;
  ProfileHandle& operator=(const ProfileHandle&) = delete;

  const std::string& tenant() const { return tenant_; }
  /// Provenance of this deployment (source filename, or "inline").
  const std::string& version() const { return version_; }
  /// Per-tenant monotone counter: 1 on first load, +1 per successful
  /// reload. Failed reloads never mint a generation.
  uint64_t generation() const { return generation_; }
  const core::ApplicationProfile& profile() const { return profile_; }
  const core::DetectionEngine& engine() const { return engine_; }

 private:
  std::string tenant_;
  std::string version_;
  uint64_t generation_;
  core::ApplicationProfile profile_;
  /// Compiled against profile_; the handle is heap-pinned (non-copyable,
  /// non-movable, always behind shared_ptr) so the pointer stays valid.
  core::DetectionEngine engine_;
};

/// Hot-loadable map of tenant -> current ProfileHandle. Thread-safe: Get
/// is a mutex-guarded shared_ptr copy (the "atomic pointer swap" the
/// reload path performs is an assignment under the same mutex), so
/// readers always observe either the complete old handle or the complete
/// new one — never a torn profile.
///
/// Reload is fail-closed with rollback: the candidate profile text is
/// parsed and validated BEFORE the swap; any error leaves the previous
/// handle installed and its generation unchanged.
class ProfileRegistry {
 public:
  /// Loads every `*.profile` file in `dir` (tenant = file stem).
  /// All-or-nothing against the registry's prior state per tenant: a file
  /// that fails to parse/validate fails the call and installs nothing
  /// from it, but files already installed by this call stay (each tenant
  /// swap is independent). Returns the number of tenants loaded.
  util::Result<size_t> LoadDirectory(const std::string& dir);

  /// Installs an in-memory profile for `tenant` (validating it first).
  /// First install mints generation 1; re-install bumps the generation
  /// like a reload.
  util::Status Install(const std::string& tenant,
                       core::ApplicationProfile profile,
                       const std::string& version = "inline");

  /// Parses + validates serialized profile text and atomically swaps it in
  /// as `tenant`'s new generation. On any failure the previous version
  /// stays live (rollback) and the error is returned and remembered in
  /// last_error(tenant).
  util::Status Reload(const std::string& tenant, const std::string& text,
                      const std::string& version = "inline");

  /// Reload from a file on disk.
  util::Status ReloadFile(const std::string& tenant,
                          const std::string& path);

  /// The tenant's current handle, or nullptr when unknown — callers must
  /// fail closed (an event for an unloaded tenant is never scored against
  /// some other profile).
  std::shared_ptr<const ProfileHandle> Get(const std::string& tenant) const;

  /// Removes the tenant (live sessions keep their pinned handle).
  bool Remove(const std::string& tenant);

  /// Current generation of `tenant` (0 = not loaded).
  uint64_t Generation(const std::string& tenant) const;

  /// The diagnostic of the tenant's most recent FAILED reload (empty when
  /// the last reload succeeded or none happened). Survives rollback so an
  /// operator can see why the old version is still serving.
  std::string last_error(const std::string& tenant) const;

  std::vector<std::string> Tenants() const;
  size_t size() const;

 private:
  /// Sanity checks beyond what Deserialize already enforces, applied to
  /// in-memory installs too (Deserialize-validated text goes through the
  /// same gate for uniformity).
  static util::Status Validate(const core::ApplicationProfile& profile);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ProfileHandle>> tenants_;
  /// Generations outlive handles so a Remove + re-Install cannot reuse a
  /// generation number a closed session already reported.
  std::map<std::string, uint64_t> generations_;
  std::map<std::string, std::string> last_errors_;
};

}  // namespace adprom::service

#endif  // ADPROM_SERVICE_PROFILE_REGISTRY_H_
