#ifndef ADPROM_SERVICE_ALERT_SINK_H_
#define ADPROM_SERVICE_ALERT_SINK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "core/flags.h"

namespace adprom::service {

/// Counters one monitored session accumulates over its lifetime. The
/// SessionManager hands the final snapshot to the AlertSink when the
/// session closes (explicitly, via idle eviction, or at shutdown).
struct SessionStats {
  size_t events_accepted = 0;  // events that entered the queue
  size_t dropped_events = 0;   // evicted by the drop-oldest policy
  size_t events_scored = 0;    // events the monitor consumed (set on close;
                               // accepted == scored + dropped, exactly)
  size_t verdicts = 0;         // windows scored (one per completed window)
  size_t alarms = 0;           // verdicts with IsAlarm()
  /// Generation of the profile this session scored against (0 when the
  /// manager's legacy default profile — no registry — was used). Pinned
  /// at session creation: a session never mixes generations.
  uint64_t profile_generation = 0;
};

/// Where streaming verdicts go. Implementations MUST be thread-safe:
/// worker threads of different sessions call OnDetection concurrently.
/// Within one session, calls arrive in window order — the SessionManager
/// never runs two workers on the same session at once.
class AlertSink {
 public:
  virtual ~AlertSink() = default;

  /// One verdict for one completed window of `session_id`.
  virtual void OnDetection(const std::string& session_id,
                           const core::Detection& detection) = 0;

  /// The session ended (close, eviction, or manager shutdown); `stats` is
  /// its final counter snapshot. Default: ignore.
  virtual void OnSessionClosed(const std::string& session_id,
                               const SessionStats& stats);
};

/// Test/batch sink: stores every verdict per session, in arrival order.
class CollectingAlertSink : public AlertSink {
 public:
  void OnDetection(const std::string& session_id,
                   const core::Detection& detection) override;
  void OnSessionClosed(const std::string& session_id,
                       const SessionStats& stats) override;

  /// The verdicts of one session, in window order (copy; thread-safe).
  std::vector<core::Detection> DetectionsFor(
      const std::string& session_id) const;
  /// Final stats of a closed session, or default-constructed if open.
  SessionStats StatsFor(const std::string& session_id) const;
  size_t closed_sessions() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<core::Detection>> detections_;
  std::map<std::string, SessionStats> closed_;
};

/// CLI sink: prints one line per alarm (or per verdict with alarms_only
/// false) and a per-session summary line on close.
class StreamAlertSink : public AlertSink {
 public:
  explicit StreamAlertSink(std::ostream* out, bool alarms_only = true)
      : out_(out), alarms_only_(alarms_only) {}

  void OnDetection(const std::string& session_id,
                   const core::Detection& detection) override;
  void OnSessionClosed(const std::string& session_id,
                       const SessionStats& stats) override;

 private:
  std::mutex mu_;
  std::ostream* out_;
  bool alarms_only_;
};

}  // namespace adprom::service

#endif  // ADPROM_SERVICE_ALERT_SINK_H_
