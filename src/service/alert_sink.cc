#include "service/alert_sink.h"

namespace adprom::service {

void AlertSink::OnSessionClosed(const std::string& session_id,
                                const SessionStats& stats) {
  (void)session_id;
  (void)stats;
}

void CollectingAlertSink::OnDetection(const std::string& session_id,
                                      const core::Detection& detection) {
  std::lock_guard<std::mutex> lock(mu_);
  detections_[session_id].push_back(detection);
}

void CollectingAlertSink::OnSessionClosed(const std::string& session_id,
                                          const SessionStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  closed_[session_id] = stats;
}

std::vector<core::Detection> CollectingAlertSink::DetectionsFor(
    const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = detections_.find(session_id);
  return it == detections_.end() ? std::vector<core::Detection>()
                                 : it->second;
}

SessionStats CollectingAlertSink::StatsFor(
    const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = closed_.find(session_id);
  return it == closed_.end() ? SessionStats() : it->second;
}

size_t CollectingAlertSink::closed_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_.size();
}

void StreamAlertSink::OnDetection(const std::string& session_id,
                                  const core::Detection& detection) {
  if (alarms_only_ && !detection.IsAlarm()) return;
  std::lock_guard<std::mutex> lock(mu_);
  *out_ << session_id << " window " << detection.window_start << ": "
        << core::DetectionFlagName(detection.flag) << " (score "
        << detection.score << ")";
  if (!detection.source_tables.empty()) {
    *out_ << " sources:";
    for (const std::string& table : detection.source_tables) {
      *out_ << " " << table;
    }
  }
  if (!detection.detail.empty()) *out_ << " — " << detection.detail;
  *out_ << "\n";
}

void StreamAlertSink::OnSessionClosed(const std::string& session_id,
                                      const SessionStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  *out_ << session_id << " closed: events " << stats.events_accepted
        << ", windows " << stats.verdicts << ", alarms " << stats.alarms
        << ", dropped " << stats.dropped_events << "\n";
}

}  // namespace adprom::service
