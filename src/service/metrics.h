#ifndef ADPROM_SERVICE_METRICS_H_
#define ADPROM_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace adprom::service {

/// Lock-free log₂-bucketed latency histogram (nanosecond resolution, 48
/// buckets cover [1 ns, ~78 h]). Producers Record concurrently with
/// relaxed atomics; Quantile reads a point-in-time-ish snapshot — exact
/// under quiescence, approximate under concurrent writes, which is all an
/// ops surface needs.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 48;

  void RecordNanos(uint64_t nanos) {
    size_t bucket = 0;
    while (bucket + 1 < kBuckets && nanos >= (uint64_t{1} << (bucket + 1))) {
      ++bucket;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  }

  /// The upper edge (in microseconds) of the bucket holding quantile `q`
  /// of all recorded samples; 0 when nothing was recorded.
  double QuantileUs(double q) const {
    std::array<uint64_t, kBuckets> counts;
    uint64_t total = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    if (total == 0) return 0.0;
    const double rank = q * static_cast<double>(total);
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (static_cast<double>(seen) >= rank) {
        return static_cast<double>(uint64_t{1} << (i + 1)) / 1000.0;
      }
    }
    return static_cast<double>(uint64_t{1} << kBuckets) / 1000.0;
  }

  uint64_t samples() const {
    uint64_t total = 0;
    for (const auto& bucket : buckets_) {
      total += bucket.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Per-tenant accounting a FleetNode keeps across all shards. Addresses
/// are stable for the fleet's lifetime; sessions hold a raw pointer and
/// bump the counters from whichever shard/worker touches them.
struct TenantCounters {
  std::string tenant;
  std::atomic<uint64_t> submitted{0};        // events accepted into queues
  std::atomic<uint64_t> dropped{0};          // evicted by kDropOldest
  std::atomic<uint64_t> scored{0};           // events the monitors consumed
  std::atomic<uint64_t> verdicts{0};         // windows scored
  std::atomic<uint64_t> alarms{0};           // verdicts with IsAlarm()
  std::atomic<uint64_t> sessions_opened{0};
  std::atomic<uint64_t> sessions_closed{0};
};

/// Point-in-time snapshot of one tenant's counters.
struct TenantMetrics {
  std::string tenant;
  uint64_t generation = 0;  // current registry generation (0 = unloaded)
  uint64_t submitted = 0;
  uint64_t dropped = 0;
  uint64_t scored = 0;
  uint64_t verdicts = 0;
  uint64_t alarms = 0;
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
};

/// Point-in-time snapshot of one SessionManager shard's counters.
struct ShardMetrics {
  uint64_t submitted = 0;
  uint64_t dropped = 0;
  uint64_t scored = 0;
  uint64_t verdicts = 0;
  uint64_t alarms = 0;
  size_t live_sessions = 0;
  size_t queue_depth = 0;      // events currently buffered, all sessions
  size_t max_queue_depth = 0;  // high-water mark of queue_depth
  double submit_p50_us = 0.0;
  double submit_p99_us = 0.0;
};

/// The fleet-wide ops snapshot `adprom serve --metrics` renders.
struct FleetMetrics {
  std::vector<ShardMetrics> shards;
  std::vector<TenantMetrics> tenants;
};

}  // namespace adprom::service

#endif  // ADPROM_SERVICE_METRICS_H_
