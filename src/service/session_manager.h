#ifndef ADPROM_SERVICE_SESSION_MANAGER_H_
#define ADPROM_SERVICE_SESSION_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/profile.h"
#include "runtime/call_event.h"
#include "service/alert_sink.h"
#include "service/metrics.h"
#include "service/profile_registry.h"
#include "service/streaming_monitor.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace adprom::service {

/// Tuning knobs for the streaming detection service.
struct SessionManagerOptions {
  /// Maximum buffered (not yet scored) events per session.
  size_t queue_capacity = 1024;
  /// What Submit does when a session's queue is full: kBlock stalls the
  /// producer until the worker drains space (lossless back-pressure);
  /// kDropOldest discards the oldest queued event and counts it in the
  /// session's dropped_events stat (lossy, bounded latency).
  enum class OverflowPolicy { kBlock, kDropOldest };
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Events one scoring task drains before rescheduling, bounding how long
  /// a chatty session can monopolize a pool worker. Also the upper bound
  /// on the per-shard scoring micro-batch (StreamingMonitor::OnEvents):
  /// whatever is queued, up to this many events, scores as one vectorized
  /// block.
  size_t batch_size = 64;
  /// Record per-submit latency into the shard histogram (two steady_clock
  /// reads per event, ~100 ns). On by default; benches that measure
  /// latency externally can turn it off.
  bool record_submit_latency = true;
};

/// What a session is bound to when it is created: which profile handle it
/// scores against (pinned for the session's whole life, so every verdict
/// is attributable to exactly one generation even across hot reloads),
/// what id the AlertSink sees, and which tenant's counters it bumps.
struct SessionBinding {
  /// Required for the binding Submit overload. The handle's engine is
  /// shared by every session bound to it.
  std::shared_ptr<const ProfileHandle> profile;
  /// What the sink sees for this session; empty = the session key itself.
  std::string display_id;
  /// Optional accounting hook (owned by the caller, must outlive the
  /// session).
  TenantCounters* tenant = nullptr;
};

/// Multiplexes many concurrent monitored sessions over one thread pool.
/// Each session owns a StreamingMonitor plus a bounded event queue;
/// Submit enqueues and a per-session scoring task (at most one in flight
/// per session, so events score strictly in submission order) drains the
/// queue on the pool and pushes verdicts to the AlertSink. With a null
/// pool every Submit scores inline on the calling thread.
///
/// Two construction modes:
///  - the legacy single-profile constructor: every session compiles its
///    own DetectionEngine from the shared profile (PR-4 behaviour,
///    preserved as the baseline the fleet bench compares against);
///  - the binding mode (profile-less constructor + the SessionBinding
///    Submit overloads): each session pins a shared ProfileHandle at
///    creation — different sessions may serve different tenants, and the
///    per-profile engine compilation is paid once, not per session.
///
/// Determinism: the verdict sequence each session's sink observes is
/// bit-identical to DetectionEngine::MonitorTrace over that session's
/// event sequence, for ANY pool size — only the interleaving *across*
/// sessions varies with scheduling. (Under kDropOldest overflow the
/// scored sequence is the post-drop one, so drops trade this guarantee
/// for bounded memory; the dropped_events stat makes the loss explicit.)
class SessionManager {
 public:
  /// Legacy mode: every session scores against `profile` with its own
  /// engine. `profile`, `sink`, and `pool` must outlive the manager.
  SessionManager(const core::ApplicationProfile* profile, AlertSink* sink,
                 util::ThreadPool* pool,
                 SessionManagerOptions options = SessionManagerOptions());
  /// Binding mode: sessions carry their profile via the SessionBinding
  /// Submit overloads; the profile-less Submit fails.
  SessionManager(AlertSink* sink, util::ThreadPool* pool,
                 SessionManagerOptions options = SessionManagerOptions());
  /// Closes every live session (flushing short-session verdicts).
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Routes one event to `session_id`, creating the session on first use
  /// (legacy-profile sessions only; FailedPrecondition without one).
  /// Fails with FailedPrecondition if the session is concurrently being
  /// closed. May block (kBlock policy) when the session queue is full.
  util::Status Submit(const std::string& session_id,
                      runtime::CallEvent event);

  /// Routes one event to `session_id`, creating the session bound to
  /// `binding` on first use (later submits may pass any binding with the
  /// same profile — the session keeps its creation-time pin).
  util::Status Submit(const std::string& session_id,
                      const SessionBinding& binding,
                      runtime::CallEvent event);

  /// Burst submit: enqueues the whole span (consumed by move) under one
  /// lock acquisition and at most one worker scheduling — the framed
  /// wire protocol and the fleet bench feed bursts, and per-event lock +
  /// schedule round-trips would dominate at 10k sessions. Overflow is
  /// handled per event, exactly as the per-event Submit would.
  util::Status SubmitBatch(const std::string& session_id,
                           const SessionBinding& binding,
                           std::span<const runtime::CallEvent> events);

  /// Drains the session's queue, emits the short-session verdict (if any)
  /// and the final stats to the sink, and removes the session. NotFound
  /// if no such session is live.
  util::Status CloseSession(const std::string& session_id);

  /// Closes every live session.
  void CloseAll();

  /// Blocks until every queued event has been scored. Sessions stay live.
  void Drain();

  /// Closes sessions whose last Submit is older than `max_idle` and whose
  /// queue has fully drained. Returns the number of sessions evicted.
  size_t EvictIdle(std::chrono::steady_clock::duration max_idle);

  size_t num_sessions() const;
  /// Total events dropped by the kDropOldest policy across all sessions,
  /// including closed ones.
  size_t total_dropped() const { return dropped_.load(); }

  /// Point-in-time ops counters for this shard. Counter totals include
  /// closed sessions; queue_depth is the live backlog right now.
  ShardMetrics Metrics() const;

 private:
  struct Session {
    /// Legacy: private engine compiled from the shared profile.
    explicit Session(const core::ApplicationProfile* profile)
        : monitor(profile) {}
    /// Binding: engine shared through the pinned handle.
    explicit Session(std::shared_ptr<const ProfileHandle> handle)
        : profile(std::move(handle)),
          tenant(nullptr),
          monitor(&profile->profile(), &profile->engine()) {}

    /// Pinned at creation; null for legacy-profile sessions.
    std::shared_ptr<const ProfileHandle> profile;
    /// What the sink sees for this session (defaults to the session key).
    std::string display_id;
    TenantCounters* tenant = nullptr;

    std::mutex mu;
    std::condition_variable space_cv;  // kBlock producers wait for room
    std::condition_variable idle_cv;   // close waits for the worker
    std::deque<runtime::CallEvent> queue;
    SessionStats stats;
    bool worker_scheduled = false;  // a scoring task is queued or running
    bool closed = false;
    std::chrono::steady_clock::time_point last_activity;
    /// Touched only by the single in-flight scoring task (or, for close's
    /// Finish call, after idle_cv confirms no task is in flight).
    StreamingMonitor monitor;
  };

  util::Result<std::shared_ptr<Session>> GetOrCreate(
      const std::string& session_id, const SessionBinding* binding);
  void ScheduleLocked(const std::shared_ptr<Session>& session);
  /// The per-session scoring task: drains the queue in batches.
  void RunWorker(const std::shared_ptr<Session>& session);
  util::Status SubmitSpan(const std::string& session_id,
                          const SessionBinding* binding,
                          std::span<const runtime::CallEvent> events);
  /// Pops the oldest queued event (kDropOldest) and counts it everywhere
  /// it must be counted. Caller holds session->mu.
  void DropOldestLocked(Session* session);

  const core::ApplicationProfile* profile_;
  AlertSink* sink_;
  util::ThreadPool* pool_;
  SessionManagerOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::condition_variable drain_cv_;

  // Shard-level ops counters (see ShardMetrics).
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> scored_{0};
  std::atomic<uint64_t> verdicts_{0};
  std::atomic<uint64_t> alarms_{0};
  std::atomic<size_t> queue_depth_{0};
  std::atomic<size_t> max_queue_depth_{0};
  LatencyHistogram submit_latency_;

  /// Scoring tasks whose tail has not finished touching this manager yet.
  /// Close only waits for worker_scheduled to clear, which happens before
  /// the task's final drain notification — so the destructor must wait on
  /// this counter or it destroys drain_cv_/mu_ under a live task.
  std::atomic<size_t> inflight_workers_{0};
};

}  // namespace adprom::service

#endif  // ADPROM_SERVICE_SESSION_MANAGER_H_
