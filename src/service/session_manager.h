#ifndef ADPROM_SERVICE_SESSION_MANAGER_H_
#define ADPROM_SERVICE_SESSION_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/profile.h"
#include "runtime/call_event.h"
#include "service/alert_sink.h"
#include "service/streaming_monitor.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace adprom::service {

/// Tuning knobs for the streaming detection service.
struct SessionManagerOptions {
  /// Maximum buffered (not yet scored) events per session.
  size_t queue_capacity = 1024;
  /// What Submit does when a session's queue is full: kBlock stalls the
  /// producer until the worker drains space (lossless back-pressure);
  /// kDropOldest discards the oldest queued event and counts it in the
  /// session's dropped_events stat (lossy, bounded latency).
  enum class OverflowPolicy { kBlock, kDropOldest };
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Events one scoring task drains before rescheduling, bounding how long
  /// a chatty session can monopolize a pool worker. Also the upper bound
  /// on the per-shard scoring micro-batch (StreamingMonitor::OnEvents):
  /// whatever is queued, up to this many events, scores as one vectorized
  /// block.
  size_t batch_size = 64;
};

/// Multiplexes many concurrent monitored sessions over one thread pool.
/// Each session owns a StreamingMonitor plus a bounded event queue;
/// Submit enqueues and a per-session scoring task (at most one in flight
/// per session, so events score strictly in submission order) drains the
/// queue on the pool and pushes verdicts to the AlertSink. With a null
/// pool every Submit scores inline on the calling thread.
///
/// Determinism: the verdict sequence each session's sink observes is
/// bit-identical to DetectionEngine::MonitorTrace over that session's
/// event sequence, for ANY pool size — only the interleaving *across*
/// sessions varies with scheduling. (Under kDropOldest overflow the
/// scored sequence is the post-drop one, so drops trade this guarantee
/// for bounded memory; the dropped_events stat makes the loss explicit.)
class SessionManager {
 public:
  /// `profile`, `sink`, and `pool` must outlive the manager.
  SessionManager(const core::ApplicationProfile* profile, AlertSink* sink,
                 util::ThreadPool* pool,
                 SessionManagerOptions options = SessionManagerOptions());
  /// Closes every live session (flushing short-session verdicts).
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Routes one event to `session_id`, creating the session on first use.
  /// Fails with FailedPrecondition if the session is concurrently being
  /// closed. May block (kBlock policy) when the session queue is full.
  util::Status Submit(const std::string& session_id,
                      runtime::CallEvent event);

  /// Drains the session's queue, emits the short-session verdict (if any)
  /// and the final stats to the sink, and removes the session. NotFound
  /// if no such session is live.
  util::Status CloseSession(const std::string& session_id);

  /// Closes every live session.
  void CloseAll();

  /// Blocks until every queued event has been scored. Sessions stay live.
  void Drain();

  /// Closes sessions whose last Submit is older than `max_idle` and whose
  /// queue has fully drained. Returns the number of sessions evicted.
  size_t EvictIdle(std::chrono::steady_clock::duration max_idle);

  size_t num_sessions() const;
  /// Total events dropped by the kDropOldest policy across all sessions,
  /// including closed ones.
  size_t total_dropped() const { return total_dropped_.load(); }

 private:
  struct Session {
    explicit Session(const core::ApplicationProfile* profile)
        : monitor(profile) {}

    std::mutex mu;
    std::condition_variable space_cv;  // kBlock producers wait for room
    std::condition_variable idle_cv;   // close waits for the worker
    std::deque<runtime::CallEvent> queue;
    SessionStats stats;
    bool worker_scheduled = false;  // a scoring task is queued or running
    bool closed = false;
    std::chrono::steady_clock::time_point last_activity;
    /// Touched only by the single in-flight scoring task (or, for close's
    /// Finish call, after idle_cv confirms no task is in flight).
    StreamingMonitor monitor;
  };

  std::shared_ptr<Session> GetOrCreate(const std::string& session_id);
  void ScheduleLocked(const std::shared_ptr<Session>& session,
                      const std::string& session_id);
  /// The per-session scoring task: drains the queue in batches.
  void RunWorker(const std::shared_ptr<Session>& session,
                 const std::string& session_id);

  const core::ApplicationProfile* profile_;
  AlertSink* sink_;
  util::ThreadPool* pool_;
  SessionManagerOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::condition_variable drain_cv_;
  std::atomic<size_t> total_dropped_{0};
  /// Scoring tasks whose tail has not finished touching this manager yet.
  /// Close only waits for worker_scheduled to clear, which happens before
  /// the task's final drain notification — so the destructor must wait on
  /// this counter or it destroys drain_cv_/mu_ under a live task.
  std::atomic<size_t> inflight_workers_{0};
};

}  // namespace adprom::service

#endif  // ADPROM_SERVICE_SESSION_MANAGER_H_
