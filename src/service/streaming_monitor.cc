#include "service/streaming_monitor.h"

namespace adprom::service {

StreamingMonitor::StreamingMonitor(const core::ApplicationProfile* profile)
    : profile_(profile),
      engine_(profile),
      window_length_(profile->options.window_length) {
  events_.reserve(2 * window_length_);
  symbols_.reserve(2 * window_length_);
  workspace_.Reserve(window_length_, profile->model.num_states());
}

std::optional<core::Detection> StreamingMonitor::OnEvent(
    runtime::CallEvent event) {
  // Encode-once: the symbol is interned now and slides through every
  // window that covers this event (profile Encode is per-event, so the
  // sliding slice equals what encoding each window afresh would produce).
  symbols_.push_back(profile_->alphabet.Lookup(profile_->ObservableOf(event)));
  events_.push_back(std::move(event));
  ++events_seen_;

  if (events_seen_ < window_length_) return std::nullopt;
  const size_t start = events_.size() - window_length_;
  const std::span<const runtime::CallEvent> window(events_.data() + start,
                                                   window_length_);
  const hmm::SymbolSpan seq(symbols_.data() + start, window_length_);
  core::Detection verdict =
      engine_.EvaluateEncoded(window, seq, windows_scored_, &workspace_);
  ++windows_scored_;

  if (events_.size() >= 2 * window_length_) {
    // Bulk compaction: drop everything before the live window. Runs once
    // per n events, so the per-event amortized cost is constant.
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<ptrdiff_t>(start));
    symbols_.erase(symbols_.begin(),
                   symbols_.begin() + static_cast<ptrdiff_t>(start));
  }
  return verdict;
}

std::optional<core::Detection> StreamingMonitor::Finish() {
  if (finished_) return std::nullopt;
  finished_ = true;
  if (events_seen_ == 0 || events_seen_ >= window_length_) {
    return std::nullopt;
  }
  // Short session: fewer events than one window. The buffers were never
  // compacted (that needs 2n events), so they still hold the whole trace.
  const std::span<const runtime::CallEvent> window(events_.data(),
                                                   events_.size());
  const hmm::SymbolSpan seq(symbols_.data(), symbols_.size());
  core::Detection verdict = engine_.EvaluateEncoded(window, seq, 0,
                                                    &workspace_);
  ++windows_scored_;
  return verdict;
}

}  // namespace adprom::service
