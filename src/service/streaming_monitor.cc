#include "service/streaming_monitor.h"

#include <algorithm>

namespace adprom::service {

StreamingMonitor::StreamingMonitor(const core::ApplicationProfile* profile)
    : profile_(profile),
      owned_engine_(std::make_unique<core::DetectionEngine>(profile)),
      engine_(owned_engine_.get()),
      window_length_(profile->options.window_length) {
  events_.reserve(2 * window_length_);
  symbols_.reserve(2 * window_length_);
  engine_->ReserveWorkspace(&workspace_);
}

StreamingMonitor::StreamingMonitor(const core::ApplicationProfile* profile,
                                   const core::DetectionEngine* engine)
    : profile_(profile),
      engine_(engine),
      window_length_(profile->options.window_length) {
  events_.reserve(2 * window_length_);
  symbols_.reserve(2 * window_length_);
  engine_->ReserveWorkspace(&workspace_);
}

void StreamingMonitor::Append(runtime::CallEvent event) {
  // Encode-once: the symbol is interned now and slides through every
  // window that covers this event (profile Encode is per-event, so the
  // sliding slice equals what encoding each window afresh would produce).
  symbols_.push_back(profile_->alphabet.Lookup(profile_->ObservableOf(event)));
  events_.push_back(std::move(event));
  ++events_seen_;
}

void StreamingMonitor::MaybeCompact() {
  if (events_.size() < 2 * window_length_) return;
  // Bulk compaction: drop everything before the live window. Runs at most
  // once per n single events (or once per micro-batch), so the per-event
  // amortized cost is constant.
  const size_t start = events_.size() - window_length_;
  events_.erase(events_.begin(), events_.begin() + static_cast<ptrdiff_t>(start));
  symbols_.erase(symbols_.begin(),
                 symbols_.begin() + static_cast<ptrdiff_t>(start));
}

std::optional<core::Detection> StreamingMonitor::OnEvent(
    runtime::CallEvent event) {
  Append(std::move(event));
  if (events_seen_ < window_length_) return std::nullopt;
  const size_t start = events_.size() - window_length_;
  const std::span<const runtime::CallEvent> window(events_.data() + start,
                                                   window_length_);
  const hmm::SymbolSpan seq(symbols_.data() + start, window_length_);
  core::Detection verdict = engine_->EvaluateEncoded(
      window, seq, windows_scored_, &workspace_.forward);
  ++windows_scored_;
  MaybeCompact();
  return verdict;
}

std::vector<core::Detection> StreamingMonitor::OnEvents(
    std::span<runtime::CallEvent> events) {
  std::vector<core::Detection> verdicts;
  if (events.empty()) return verdicts;
  // Append the whole micro-batch first: spans formed below point into the
  // final buffer tail and stay valid through the scoring call.
  for (runtime::CallEvent& event : events) Append(std::move(event));
  if (events_seen_ < window_length_) return verdicts;

  // The batch completes one window per event past the first n-1 of the
  // stream; their ends are the last `num_ready` buffer positions.
  const size_t num_ready =
      std::min(events.size(), events_seen_ - window_length_ + 1);
  const size_t first_end = events_.size() - num_ready + 1;
  workspace_.spans.clear();
  for (size_t i = 0; i < num_ready; ++i) {
    const size_t start = first_end + i - window_length_;
    workspace_.spans.emplace_back(symbols_.data() + start, window_length_);
  }
  workspace_.scores.resize(num_ready);
  engine_->ScoreWindows(workspace_.spans, &workspace_, workspace_.scores);

  verdicts.reserve(num_ready);
  for (size_t i = 0; i < num_ready; ++i) {
    const size_t start = first_end + i - window_length_;
    const std::span<const runtime::CallEvent> window(events_.data() + start,
                                                     window_length_);
    verdicts.push_back(engine_->AssembleVerdict(
        window, workspace_.spans[i], windows_scored_,
        workspace_.scores[i]));
    ++windows_scored_;
  }
  MaybeCompact();
  return verdicts;
}

std::optional<core::Detection> StreamingMonitor::Finish() {
  if (finished_) return std::nullopt;
  finished_ = true;
  if (events_seen_ == 0 || events_seen_ >= window_length_) {
    return std::nullopt;
  }
  // Short session: fewer events than one window. The buffers were never
  // compacted (that needs 2n events), so they still hold the whole trace.
  const std::span<const runtime::CallEvent> window(events_.data(),
                                                   events_.size());
  const hmm::SymbolSpan seq(symbols_.data(), symbols_.size());
  core::Detection verdict =
      engine_->EvaluateEncoded(window, seq, 0, &workspace_.forward);
  ++windows_scored_;
  return verdict;
}

}  // namespace adprom::service
