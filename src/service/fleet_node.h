#ifndef ADPROM_SERVICE_FLEET_NODE_H_
#define ADPROM_SERVICE_FLEET_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "runtime/call_event.h"
#include "service/alert_sink.h"
#include "service/metrics.h"
#include "service/profile_registry.h"
#include "service/session_manager.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace adprom::service {

/// Tuning knobs for a multi-tenant fleet node.
struct FleetOptions {
  /// Number of independent SessionManager shards sessions hash across.
  /// Each shard has its own session map + mutex, so shard count bounds
  /// submit-path lock contention, not correctness: verdicts are per
  /// session and identical for any shard count.
  size_t num_shards = 1;
  /// Per-shard manager tuning (queue capacity, overflow policy, batching).
  SessionManagerOptions session;
  /// When true (multi-tenant serving) the AlertSink sees sessions as
  /// "tenant/session-key". When false (single-profile compatibility mode)
  /// it sees the bare session key, matching the pre-fleet CLI output.
  bool qualify_sink_ids = true;
};

/// Multi-tenant detection fleet node: routes (tenant, session-key, event)
/// triples to one of N SessionManager shards, resolving each session's
/// profile through a hot-loadable ProfileRegistry.
///
/// Sharding is a stable hash of tenant + session key, so one session's
/// events always land on the same shard (preserving per-session ordering)
/// while different sessions — including of the same tenant — spread
/// across shards. The shard count changes only contention and backlog
/// distribution, never verdicts: each session's verdict stream stays
/// bit-identical to DetectionEngine::MonitorTrace regardless.
///
/// Profile resolution is fail-closed: an event for a tenant the registry
/// does not currently serve is rejected with NotFound — it is never
/// scored against another tenant's profile or a stale default. Sessions
/// pin their profile handle (and thus generation) at creation; a hot
/// reload affects only sessions created after the swap.
class FleetNode {
 public:
  /// `registry`, `sink`, and `pool` (nullable: inline scoring) must
  /// outlive the node.
  FleetNode(ProfileRegistry* registry, AlertSink* sink,
            util::ThreadPool* pool, FleetOptions options = FleetOptions());

  FleetNode(const FleetNode&) = delete;
  FleetNode& operator=(const FleetNode&) = delete;

  /// Routes one event of `tenant`'s session `session_key`. NotFound when
  /// the tenant has no live profile (fail closed).
  util::Status Submit(const std::string& tenant,
                      const std::string& session_key,
                      runtime::CallEvent event);

  /// Burst submit (consumed by move): one registry lookup + one shard
  /// lock acquisition for the whole span.
  util::Status SubmitBatch(const std::string& tenant,
                           const std::string& session_key,
                           std::span<const runtime::CallEvent> events);

  /// Ends the session (short-session verdict + final stats to the sink).
  util::Status CloseSession(const std::string& tenant,
                            const std::string& session_key);

  /// Closes every live session on every shard.
  void CloseAll();

  /// Blocks until every queued event on every shard has been scored.
  void Drain();

  /// Which shard `(tenant, session_key)` routes to — exposed so tests can
  /// assert the distribution and aim traffic at one shard.
  size_t ShardIndex(const std::string& tenant,
                    const std::string& session_key) const;

  /// Per-shard + per-tenant ops snapshot (the `--metrics` surface).
  FleetMetrics Metrics() const;

  size_t num_shards() const { return shards_.size(); }
  /// Live sessions across all shards.
  size_t num_sessions() const;
  /// Events dropped by kDropOldest across all shards.
  size_t total_dropped() const;

 private:
  /// Stable per-tenant counter block (created on first touch; addresses
  /// never move — sessions keep raw pointers into it).
  TenantCounters* CountersFor(const std::string& tenant);

  ProfileRegistry* registry_;
  FleetOptions options_;
  std::vector<std::unique_ptr<SessionManager>> shards_;

  mutable std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<TenantCounters>> tenants_;
};

}  // namespace adprom::service

#endif  // ADPROM_SERVICE_FLEET_NODE_H_
