#ifndef ADPROM_UTIL_THREAD_POOL_H_
#define ADPROM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adprom::util {

/// A fixed-size worker pool shared by the hot layers (Baum-Welch E-step
/// sharding, batch trace monitoring). Dependency-free and deliberately
/// small: a task queue, N workers, and a ParallelFor helper. Tasks must
/// not throw — the library reports expected failures through Status, and
/// an exception escaping a worker would terminate the process.
class ThreadPool {
 public:
  /// Spawns `num_workers` threads (0 is clamped to 1). A pool of size 1
  /// still runs tasks on its single worker; use ParallelFor with a null
  /// pool for a guaranteed-inline serial path.
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Enqueues one task. Tasks run in FIFO order across the workers.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// The machine's hardware concurrency, never less than 1.
  static size_t DefaultConcurrency();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: queue or stop
  std::condition_variable idle_cv_;   // signals Wait(): all drained
  size_t active_ = 0;                 // tasks currently executing
  bool stop_ = false;
};

/// Resolves a user-facing thread-count option: 0 means "use the hardware
/// concurrency", negative values are clamped to 1.
size_t ResolveThreadCount(int requested);

/// Runs fn(0) .. fn(count-1), fanning the indices across `pool` with
/// dynamic (work-stealing) assignment; the calling thread participates.
/// A null pool, a single-worker pool, or count <= 1 degrades to a plain
/// inline loop. Blocks until every index has been processed. The
/// assignment of indices to threads is dynamic, so `fn` must either be
/// order-independent or write to per-index slots; deterministic
/// reductions should accumulate per index and merge in index order after
/// the call returns.
void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& fn);

}  // namespace adprom::util

#endif  // ADPROM_UTIL_THREAD_POOL_H_
