#ifndef ADPROM_UTIL_STRINGS_H_
#define ADPROM_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace adprom::util {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on runs of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace adprom::util

#endif  // ADPROM_UTIL_STRINGS_H_
