#ifndef ADPROM_UTIL_SIMD_H_
#define ADPROM_UTIL_SIMD_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace adprom::util {

/// The instruction sets the batched kernels are specialized for. Each level
/// is a *lane-per-window* vector width: lanes never interact, so every
/// level computes bit-identical per-window results (see the Arch contracts
/// below) and the dispatch choice is purely a throughput decision.
enum class SimdLevel { kScalar, kNeon, kAvx2 };

inline const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kNeon: return "neon";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "scalar";
}

/// Best SIMD level the *running* CPU supports, probed once (cpuid on x86).
/// Setting the environment variable ADPROM_FORCE_SCALAR (to anything but
/// "0" or "OFF") pins the answer to kScalar so CI can exercise the
/// fallback kernels on hardware that would normally dispatch to SIMD.
inline SimdLevel DetectSimdLevel() {
  static const SimdLevel level = [] {
    if (const char* force = std::getenv("ADPROM_FORCE_SCALAR")) {
      if (std::strcmp(force, "0") != 0 && std::strcmp(force, "OFF") != 0 &&
          std::strcmp(force, "off") != 0 && force[0] != '\0') {
        return SimdLevel::kScalar;
      }
    }
#if defined(__aarch64__)
    return SimdLevel::kNeon;  // advanced SIMD is baseline on AArch64
#elif (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
    return SimdLevel::kScalar;
#else
    return SimdLevel::kScalar;
#endif
  }();
  return level;
}

/// Arch tags for the templated batch kernels. Each arch packs kLanes
/// independent windows in `D` (one double per window) and kILanes windows
/// in `I` (one int32 per window). The two counts differ where the ISA
/// packs more int32 than doubles per register — harmless, because the
/// triage tier is exact integer arithmetic and any lane grouping computes
/// the same bounds. The contracts that keep every arch bit-identical per
/// lane:
///
///  * MulD/AddD/DivD are plain IEEE-754 packed ops — same rounding as the
///    corresponding scalar op, lane by lane. No FMA variants exist in this
///    interface, and the kernel translation units are compiled with
///    -ffp-contract=off, so no arch can fuse a multiply-add the scalar
///    reference keeps separate.
///  * FloorScaleD(floor, v) reproduces std::max(v, floor) exactly,
///    including the NaN-propagation direction (NaN v stays NaN).
///  * GatherD/GatherI16 are per-lane scalar loads; no arithmetic.
struct ScalarArch {
  static constexpr size_t kLanes = 1;
  static constexpr size_t kILanes = 1;
  using D = double;
  using I = int32_t;

  static D LoadD(const double* p) { return *p; }
  static void StoreD(double* p, D v) { *p = v; }
  static D BroadcastD(double v) { return v; }
  static D ZeroD() { return 0.0; }
  static D MulD(D a, D b) { return a * b; }
  static D AddD(D a, D b) { return a + b; }
  static D DivD(D a, D b) { return a / b; }
  static D FloorScaleD(D floor, D v) { return v < floor ? floor : v; }
  static D GatherD(const double* const* rows, size_t col) {
    return rows[0][col];
  }

  static I LoadI(const int32_t* p) { return *p; }
  static void StoreI(int32_t* p, I v) { *p = v; }
  static I BroadcastI(int32_t v) { return v; }
  static I AddI(I a, I b) { return a + b; }
  static I MaxI(I a, I b) { return a > b ? a : b; }
  static I GatherI16(const int16_t* const* rows, size_t col) {
    return static_cast<int32_t>(rows[0][col]);
  }
};

#if defined(__AVX2__)
/// Four double windows per vector in the exact tier; eight int32 windows
/// per vector in the triage tier (full-width vpaddd/vpmaxsd).
struct Avx2Arch {
  static constexpr size_t kLanes = 4;
  static constexpr size_t kILanes = 8;
  using D = __m256d;
  using I = __m256i;

  static D LoadD(const double* p) { return _mm256_loadu_pd(p); }
  static void StoreD(double* p, D v) { _mm256_storeu_pd(p, v); }
  static D BroadcastD(double v) { return _mm256_set1_pd(v); }
  static D ZeroD() { return _mm256_setzero_pd(); }
  static D MulD(D a, D b) { return _mm256_mul_pd(a, b); }
  static D AddD(D a, D b) { return _mm256_add_pd(a, b); }
  static D DivD(D a, D b) { return _mm256_div_pd(a, b); }
  /// vmaxpd returns the *second* operand when either input is NaN or the
  /// operands compare equal; with `floor` first this is exactly
  /// std::max(v, floor).
  static D FloorScaleD(D floor, D v) { return _mm256_max_pd(floor, v); }
  static D GatherD(const double* const* rows, size_t col) {
    return _mm256_set_pd(rows[3][col], rows[2][col], rows[1][col],
                         rows[0][col]);
  }

  static I LoadI(const int32_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void StoreI(int32_t* p, I v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static I BroadcastI(int32_t v) { return _mm256_set1_epi32(v); }
  static I AddI(I a, I b) { return _mm256_add_epi32(a, b); }
  static I MaxI(I a, I b) { return _mm256_max_epi32(a, b); }
  static I GatherI16(const int16_t* const* rows, size_t col) {
    return _mm256_set_epi32(rows[7][col], rows[6][col], rows[5][col],
                            rows[4][col], rows[3][col], rows[2][col],
                            rows[1][col], rows[0][col]);
  }
};
#endif  // __AVX2__

#if defined(__aarch64__)
/// Two double windows per vector (128-bit NEON); four int32 windows per
/// vector in the triage tier.
struct NeonArch {
  static constexpr size_t kLanes = 2;
  static constexpr size_t kILanes = 4;
  using D = float64x2_t;
  using I = int32x4_t;

  static D LoadD(const double* p) { return vld1q_f64(p); }
  static void StoreD(double* p, D v) { vst1q_f64(p, v); }
  static D BroadcastD(double v) { return vdupq_n_f64(v); }
  static D ZeroD() { return vdupq_n_f64(0.0); }
  static D MulD(D a, D b) { return vmulq_f64(a, b); }
  static D AddD(D a, D b) { return vaddq_f64(a, b); }
  static D DivD(D a, D b) { return vdivq_f64(a, b); }
  static D FloorScaleD(D floor, D v) { return vmaxq_f64(floor, v); }
  static D GatherD(const double* const* rows, size_t col) {
    float64x2_t v = vdupq_n_f64(rows[0][col]);
    return vsetq_lane_f64(rows[1][col], v, 1);
  }

  static I LoadI(const int32_t* p) { return vld1q_s32(p); }
  static void StoreI(int32_t* p, I v) { vst1q_s32(p, v); }
  static I BroadcastI(int32_t v) { return vdupq_n_s32(v); }
  static I AddI(I a, I b) { return vaddq_s32(a, b); }
  static I MaxI(I a, I b) { return vmaxq_s32(a, b); }
  static I GatherI16(const int16_t* const* rows, size_t col) {
    int32x4_t v = vdupq_n_s32(rows[0][col]);
    v = vsetq_lane_s32(rows[1][col], v, 1);
    v = vsetq_lane_s32(rows[2][col], v, 2);
    return vsetq_lane_s32(rows[3][col], v, 3);
  }
};
#endif  // __aarch64__

}  // namespace adprom::util

#endif  // ADPROM_UTIL_SIMD_H_
