#include "util/matrix.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace adprom::util {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    ADPROM_CHECK_EQ(rows[r].size(), m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

void Matrix::Reshape(size_t rows, size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

double& Matrix::At(size_t r, size_t c) {
  ADPROM_CHECK_LT(r, rows_);
  ADPROM_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(size_t r, size_t c) const {
  ADPROM_CHECK_LT(r, rows_);
  ADPROM_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::Row(size_t r) const {
  ADPROM_CHECK_LT(r, rows_);
  return std::vector<double>(data_.begin() + r * cols_,
                             data_.begin() + (r + 1) * cols_);
}

std::vector<double> Matrix::Col(size_t c) const {
  ADPROM_CHECK_LT(c, cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

double Matrix::RowSum(size_t r) const {
  ADPROM_CHECK_LT(r, rows_);
  double s = 0.0;
  for (size_t c = 0; c < cols_; ++c) s += data_[r * cols_ + c];
  return s;
}

double Matrix::ColSum(size_t c) const {
  ADPROM_CHECK_LT(c, cols_);
  double s = 0.0;
  for (size_t r = 0; r < rows_; ++r) s += data_[r * cols_ + c];
  return s;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  ADPROM_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = At(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c)
        out.At(r, c) += a * other.At(k, c);
    }
  }
  return out;
}

void Matrix::NormalizeRows(double eps) {
  for (size_t r = 0; r < rows_; ++r) {
    const double s = RowSum(r);
    if (s < eps) continue;
    for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] /= s;
  }
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  ADPROM_CHECK(SameShape(other));
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  return m;
}

std::string Matrix::ToString(int precision) const {
  std::string out;
  char buf[64];
  for (size_t r = 0; r < rows_; ++r) {
    out += "[";
    for (size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%.*f", precision, At(r, c));
      out += buf;
      if (c + 1 < cols_) out += ", ";
    }
    out += "]\n";
  }
  return out;
}

}  // namespace adprom::util
