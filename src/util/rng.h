#ifndef ADPROM_UTIL_RNG_H_
#define ADPROM_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adprom::util {

/// Deterministic pseudo-random number generator (splitmix64-seeded
/// xoshiro256**). Every stochastic component in the library takes an Rng (or
/// a seed) explicitly so experiments are reproducible run-to-run; nothing in
/// the library reads global entropy.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index according to the (non-negative, not necessarily
  /// normalized) weight vector. Returns weights.size()-1 on numeric
  /// underflow. Requires a non-empty vector with positive total weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Forks a new independent generator; deterministic in the parent state.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace adprom::util

#endif  // ADPROM_UTIL_RNG_H_
