#ifndef ADPROM_UTIL_TABLE_PRINTER_H_
#define ADPROM_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace adprom::util {

/// Renders aligned, monospace text tables. The benchmark harness uses this
/// to print the same rows/columns the paper's tables report.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats every cell with the given precision.
  void AddRow(const std::vector<double>& row, int precision = 4);

  /// Renders the table with a separator line under the header.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adprom::util

#endif  // ADPROM_UTIL_TABLE_PRINTER_H_
