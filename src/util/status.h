#ifndef ADPROM_UTIL_STATUS_H_
#define ADPROM_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace adprom::util {

/// Error categories used across the library. Kept deliberately small;
/// callers should branch on category, not on message text.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kParseError,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. The library does not throw on
/// expected failure paths (bad SQL, malformed programs, singular matrices);
/// it returns Status / Result<T> instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Inspect with ok()
/// before dereferencing; value access on an error status aborts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse
  /// (`return value;` / `return Status::NotFound(...)`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!status_.ok()) internal::DieOnBadResultAccess(status_);
}

/// Propagates a non-OK Status from an expression to the caller.
#define ADPROM_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::adprom::util::Status _st = (expr);              \
    if (!_st.ok()) return _st;                        \
  } while (0)

/// Evaluates a Result<T> expression; on error returns the status, otherwise
/// moves the value into `lhs`.
#define ADPROM_ASSIGN_OR_RETURN(lhs, expr)            \
  auto ADPROM_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!ADPROM_CONCAT_(_res_, __LINE__).ok())          \
    return ADPROM_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(ADPROM_CONCAT_(_res_, __LINE__)).value()

#define ADPROM_CONCAT_INNER_(a, b) a##b
#define ADPROM_CONCAT_(a, b) ADPROM_CONCAT_INNER_(a, b)

}  // namespace adprom::util

#endif  // ADPROM_UTIL_STATUS_H_
