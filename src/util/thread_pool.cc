#include "util/thread_pool.h"

#include <atomic>
#include <memory>

namespace adprom::util {

ThreadPool::ThreadPool(size_t num_workers) {
  if (num_workers == 0) num_workers = 1;
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::DefaultConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

size_t ResolveThreadCount(int requested) {
  if (requested <= 0) {
    return requested == 0 ? ThreadPool::DefaultConcurrency() : 1;
  }
  return static_cast<size_t>(requested);
}

void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (pool == nullptr || pool->num_workers() <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Shared cursor: helpers and the calling thread pull the next index
  // until the range is exhausted. Helpers hold a shared_ptr so the state
  // outlives this frame even if the caller somehow returns first.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  const size_t helpers = std::min(pool->num_workers(), count - 1);

  auto drain = [state, count, &fn] {
    for (;;) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      fn(i);
      state->done.fetch_add(1, std::memory_order_release);
    }
    std::lock_guard<std::mutex> lock(state->mu);
    state->cv.notify_all();
  };

  for (size_t h = 0; h < helpers; ++h) pool->Submit(drain);
  drain();  // the calling thread works too

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) >= count;
  });
}

}  // namespace adprom::util
