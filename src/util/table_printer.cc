#include "util/table_printer.h"

#include <cstdio>

#include "util/logging.h"
#include "util/strings.h"

namespace adprom::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  ADPROM_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(StrFormat("%.*f", precision, v));
  AddRow(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
      line += "|";
    }
    return line + "\n";
  };

  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace adprom::util
