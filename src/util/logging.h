#ifndef ADPROM_UTIL_LOGGING_H_
#define ADPROM_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace adprom::util {

namespace internal {

/// Terminates the process after printing `file:line: msg`. Used by the
/// CHECK macros below for invariant violations (programming errors, never
/// data-dependent conditions — those go through Status).
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const std::string& msg) {
  std::fprintf(stderr, "%s:%d: CHECK failed: %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace internal

#define ADPROM_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::adprom::util::internal::CheckFail(__FILE__, __LINE__, #cond);   \
  } while (0)

#define ADPROM_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream _oss;                                          \
      _oss << #cond << " — " << msg;                                    \
      ::adprom::util::internal::CheckFail(__FILE__, __LINE__,           \
                                          _oss.str());                  \
    }                                                                   \
  } while (0)

#define ADPROM_CHECK_EQ(a, b) ADPROM_CHECK_MSG((a) == (b), "lhs != rhs")
#define ADPROM_CHECK_LT(a, b) ADPROM_CHECK_MSG((a) < (b), "lhs >= rhs")
#define ADPROM_CHECK_LE(a, b) ADPROM_CHECK_MSG((a) <= (b), "lhs > rhs")
#define ADPROM_CHECK_GT(a, b) ADPROM_CHECK_MSG((a) > (b), "lhs <= rhs")
#define ADPROM_CHECK_GE(a, b) ADPROM_CHECK_MSG((a) >= (b), "lhs < rhs")

}  // namespace adprom::util

#endif  // ADPROM_UTIL_LOGGING_H_
