#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace adprom::util {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  ADPROM_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  ADPROM_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? NextU64() : UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian() {
  double u1 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  ADPROM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    ADPROM_CHECK_GE(w, 0.0);
    total += w;
  }
  ADPROM_CHECK_GT(total, 0.0);
  double r = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = UniformU64(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace adprom::util
