#ifndef ADPROM_UTIL_MATRIX_H_
#define ADPROM_UTIL_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

namespace adprom::util {

/// Dense row-major matrix of doubles. Small and dependency-free; sized for
/// the call-transition matrices and HMM parameter matrices this library
/// manipulates (hundreds to a few thousands of rows).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer data; all rows must have the
  /// same length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n x n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c);
  double At(size_t r, size_t c) const;
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// Raw row access (row-major contiguous storage).
  const double* RowData(size_t r) const { return &data_[r * cols_]; }
  double* RowData(size_t r) { return &data_[r * cols_]; }

  std::vector<double> Row(size_t r) const;
  std::vector<double> Col(size_t c) const;

  double RowSum(size_t r) const;
  double ColSum(size_t c) const;

  Matrix Transpose() const;
  Matrix Multiply(const Matrix& other) const;

  /// Re-shapes the matrix to rows x cols and fills it with `fill`. The
  /// backing storage is reused when large enough, so repeatedly reshaping
  /// a workspace matrix to the same (or smaller) shape allocates nothing.
  void Reshape(size_t rows, size_t cols, double fill = 0.0);

  /// In-place row normalization: each row is scaled to sum to 1. Rows whose
  /// sum is below `eps` are left untouched.
  void NormalizeRows(double eps = 1e-12);

  /// Element-wise max absolute difference; both matrices must share shape.
  double MaxAbsDiff(const Matrix& other) const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Pretty-prints with the given precision, for debugging and golden tests.
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace adprom::util

#endif  // ADPROM_UTIL_MATRIX_H_
