#ifndef ADPROM_PROG_LEXER_H_
#define ADPROM_PROG_LEXER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace adprom::prog {

enum class TokenType {
  kKeyword,     // fn var if else while return
  kIdentifier,
  kIntLiteral,
  kRealLiteral,
  kStrLiteral,
  kPunct,       // ( ) { } , ;
  kOperator,    // + - * / % < <= > >= == != && || ! =
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;
  int line = 1;
};

/// Tokenizes MiniApp source. `#` starts a line comment; string literals use
/// double quotes with \n \t \" \\ escapes.
util::Result<std::vector<Token>> Lex(const std::string& source);

}  // namespace adprom::prog

#endif  // ADPROM_PROG_LEXER_H_
