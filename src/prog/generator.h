#ifndef ADPROM_PROG_GENERATOR_H_
#define ADPROM_PROG_GENERATOR_H_

#include <cstddef>

#include "prog/program.h"
#include "util/rng.h"
#include "util/status.h"

namespace adprom::prog {

/// Knobs for the random program generator.
struct GeneratorOptions {
  size_t num_functions = 4;       // user functions besides main
  size_t max_block_statements = 6;
  size_t max_depth = 3;           // nesting of if/while
  /// Probability weights for statement kinds at each position.
  double if_weight = 0.25;
  double loop_weight = 0.15;
  double call_weight = 0.35;
  double assign_weight = 0.25;
  /// Include DB client calls (db_query/db_getvalue/...) in the call pool;
  /// the generated queries target a table named "gen".
  bool with_db_calls = false;
};

/// Generates a random — but always *valid and terminating* — MiniApp
/// program: variables are declared before use, user calls match arities,
/// every loop is counter-bounded, and there is no recursion or division
/// by a non-constant. Used by the property-based test suites to fuzz the
/// parser round-trip, the CFG/forecast/aggregation invariants, and the
/// interpreter. Deterministic given the Rng seed.
util::Result<Program> GenerateRandomProgram(const GeneratorOptions& options,
                                            util::Rng& rng);

}  // namespace adprom::prog

#endif  // ADPROM_PROG_GENERATOR_H_
