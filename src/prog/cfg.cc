#include "prog/cfg.h"

#include <deque>

#include "util/logging.h"
#include "util/strings.h"

namespace adprom::prog {

/// Incrementally constructs a Cfg while walking a function body. Declared
/// at namespace scope (not in an anonymous namespace) so the friend
/// declaration in Cfg resolves to it.
class CfgBuilder {
 public:
  CfgBuilder(const Program& program, const FunctionDef& fn)
      : program_(program), fn_(fn) {}

  util::Result<Cfg> Build() {
    cfg_.function_name_ = fn_.name;
    cfg_.entry_id_ = NewNode();
    cfg_.exit_id_ = NewNode();
    int cur = NewNode();
    AddEdge(cfg_.entry_id_, cur);
    const BodyEnd end = VisitBody(fn_.body, cur);
    if (!end.terminated) AddEdge(end.node, cfg_.exit_id_);
    ComputeTopoOrder();
    return std::move(cfg_);
  }

 private:
  /// Result of lowering a statement list starting at some node: the node
  /// control ends in, and whether control already left (via return).
  struct BodyEnd {
    int node;
    bool terminated;
  };

  int NewNode() {
    const int id = static_cast<int>(cfg_.nodes_.size());
    CfgNode node;
    node.id = id;
    cfg_.nodes_.push_back(std::move(node));
    return id;
  }

  void AddEdge(int from, int to) {
    cfg_.nodes_[static_cast<size_t>(from)].succs.push_back(to);
    cfg_.nodes_[static_cast<size_t>(to)].preds.push_back(from);
  }

  void AddBackEdge(int from, int to, int loop_exit) {
    AddEdge(from, to);
    cfg_.back_edges_.insert({from, to});
    cfg_.back_edge_exit_[{from, to}] = loop_exit;
  }

  /// Emits all calls of `e` (evaluation order) into the flow at `cur`;
  /// each call occupies its own node followed by a fresh pass-through node.
  int EmitCalls(const Expr& e, int cur) {
    std::vector<const Expr*> calls;
    CollectCalls(e, &calls);
    for (const Expr* call : calls) {
      CfgNode& node = cfg_.nodes_[static_cast<size_t>(cur)];
      ADPROM_CHECK(!node.call.has_value());
      CallRef ref;
      ref.callee = call->name;
      ref.is_user_fn = program_.IsUserFunction(call->name);
      ref.call_site_id = call->call_site_id;
      ref.line = call->line;
      node.call = std::move(ref);
      cfg_.site_to_node_[call->call_site_id] = cur;
      const int next = NewNode();
      AddEdge(cur, next);
      cur = next;
    }
    return cur;
  }

  BodyEnd VisitBody(const StmtList& body, int cur) {
    for (const auto& stmt : body) {
      const BodyEnd end = VisitStmt(*stmt, cur);
      if (end.terminated) return end;  // Drop unreachable trailing code.
      cur = end.node;
    }
    return {cur, false};
  }

  BodyEnd VisitStmt(const Stmt& s, int cur) {
    switch (s.kind) {
      case StmtKind::kVarDecl:
      case StmtKind::kAssign:
      case StmtKind::kExpr:
        return {EmitCalls(*s.expr, cur), false};
      case StmtKind::kReturn: {
        if (s.expr != nullptr) cur = EmitCalls(*s.expr, cur);
        AddEdge(cur, cfg_.exit_id_);
        return {cur, true};
      }
      case StmtKind::kIf: {
        cur = EmitCalls(*s.expr, cur);
        CfgBranch branch;
        branch.stmt = &s;
        branch.cond_node = cur;
        const int then_entry = NewNode();
        AddEdge(cur, then_entry);
        branch.true_target = then_entry;
        const BodyEnd then_end = VisitBody(s.then_body, then_entry);
        if (s.else_body.empty()) {
          const int merge = NewNode();
          AddEdge(cur, merge);  // The fall-through (condition false) edge.
          if (!then_end.terminated) AddEdge(then_end.node, merge);
          branch.false_target = merge;
          cfg_.branches_.push_back(branch);
          return {merge, false};
        }
        const int else_entry = NewNode();
        AddEdge(cur, else_entry);
        branch.false_target = else_entry;
        cfg_.branches_.push_back(branch);
        const BodyEnd else_end = VisitBody(s.else_body, else_entry);
        if (then_end.terminated && else_end.terminated) {
          return {cur, true};
        }
        const int merge = NewNode();
        if (!then_end.terminated) AddEdge(then_end.node, merge);
        if (!else_end.terminated) AddEdge(else_end.node, merge);
        return {merge, false};
      }
      case StmtKind::kWhile: {
        const int header = NewNode();
        AddEdge(cur, header);
        // Condition calls are re-evaluated per iteration, so they live in
        // the loop region starting at the header.
        const int cond_end = EmitCalls(*s.expr, header);
        const int body_entry = NewNode();
        const int after = NewNode();
        AddEdge(cond_end, body_entry);
        AddEdge(cond_end, after);
        const BodyEnd body_end = VisitBody(s.then_body, body_entry);
        CfgLoopInfo loop;
        loop.stmt = &s;
        loop.header = header;
        loop.cond_end = cond_end;
        loop.body_entry = body_entry;
        loop.after = after;
        if (!body_end.terminated) {
          AddBackEdge(body_end.node, header, after);
          loop.back_src = body_end.node;
        }
        cfg_.loops_.push_back(loop);
        CfgBranch branch;
        branch.stmt = &s;
        branch.cond_node = cond_end;
        branch.true_target = body_entry;
        branch.false_target = after;
        branch.is_loop = true;
        cfg_.branches_.push_back(branch);
        return {after, false};
      }
    }
    ADPROM_CHECK_MSG(false, "unhandled statement kind");
    return {cur, false};
  }

  void ComputeTopoOrder() {
    const size_t n = cfg_.nodes_.size();
    std::vector<int> in_degree(n, 0);
    for (const CfgNode& node : cfg_.nodes_) {
      for (int succ : node.succs) {
        if (!cfg_.IsBackEdge(node.id, succ)) ++in_degree[succ];
      }
    }
    std::deque<int> queue;
    for (size_t i = 0; i < n; ++i) {
      if (in_degree[i] == 0) queue.push_back(static_cast<int>(i));
    }
    cfg_.topo_order_.clear();
    while (!queue.empty()) {
      const int id = queue.front();
      queue.pop_front();
      cfg_.topo_order_.push_back(id);
      for (int succ : cfg_.nodes_[static_cast<size_t>(id)].succs) {
        if (cfg_.IsBackEdge(id, succ)) continue;
        if (--in_degree[succ] == 0) queue.push_back(succ);
      }
    }
    // Structured control flow plus explicit back edges guarantees the
    // forward graph is a DAG.
    ADPROM_CHECK_EQ(cfg_.topo_order_.size(), n);
  }

  const Program& program_;
  const FunctionDef& fn_;
  Cfg cfg_;
};

std::vector<int> Cfg::ForecastSuccessors(int id) const {
  const CfgNode& node = nodes_[static_cast<size_t>(id)];
  std::vector<int> out;
  for (int succ : node.succs) {
    if (!infeasible_edges_.empty() && IsInfeasible(id, succ)) continue;
    if (IsBackEdge(id, succ)) {
      out.push_back(back_edge_exit_.at({id, succ}));
    } else {
      out.push_back(succ);
    }
  }
  if (out.empty() && !node.succs.empty()) {
    // Refiners never prune every successor of a node, but flow
    // conservation must not depend on that.
    for (int succ : node.succs) {
      out.push_back(IsBackEdge(id, succ) ? back_edge_exit_.at({id, succ})
                                         : succ);
    }
  }
  return out;
}

std::vector<int> Cfg::ForecastTopoOrder() const {
  const size_t n = nodes_.size();
  std::vector<int> in_degree(n, 0);
  for (const CfgNode& node : nodes_) {
    for (int succ : ForecastSuccessors(node.id)) ++in_degree[succ];
  }
  std::deque<int> queue;
  for (size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) queue.push_back(static_cast<int>(i));
  }
  std::vector<int> order;
  order.reserve(n);
  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    order.push_back(id);
    for (int succ : ForecastSuccessors(id)) {
      if (--in_degree[succ] == 0) queue.push_back(succ);
    }
  }
  ADPROM_CHECK_EQ(order.size(), n);
  return order;
}

std::vector<int> Cfg::ReversePostOrder() const {
  const size_t n = nodes_.size();
  std::vector<char> visited(n, 0);
  std::vector<int> post;
  post.reserve(n);
  // Iterative DFS; each frame remembers how many successors were expanded
  // so the node is emitted in post-order exactly once.
  std::vector<std::pair<int, size_t>> stack;
  if (entry_id_ >= 0) {
    stack.push_back({entry_id_, 0});
    visited[static_cast<size_t>(entry_id_)] = 1;
  }
  while (!stack.empty()) {
    auto& [id, next_succ] = stack.back();
    const CfgNode& node = nodes_[static_cast<size_t>(id)];
    if (next_succ < node.succs.size()) {
      const int succ = node.succs[next_succ++];
      if (!visited[static_cast<size_t>(succ)]) {
        visited[static_cast<size_t>(succ)] = 1;
        stack.push_back({succ, 0});
      }
      continue;
    }
    post.push_back(id);
    stack.pop_back();
  }
  std::vector<int> order(post.rbegin(), post.rend());
  for (size_t i = 0; i < n; ++i) {
    if (!visited[i]) order.push_back(static_cast<int>(i));
  }
  return order;
}

std::optional<int> Cfg::NodeOfCallSite(int call_site_id) const {
  auto it = site_to_node_.find(call_site_id);
  if (it == site_to_node_.end()) return std::nullopt;
  return it->second;
}

std::vector<int> Cfg::CallNodes() const {
  std::vector<int> out;
  for (int id : topo_order_) {
    if (nodes_[static_cast<size_t>(id)].call.has_value()) out.push_back(id);
  }
  return out;
}

std::string Cfg::ToDot() const {
  std::string out = "digraph \"" + function_name_ + "\" {\n";
  for (const CfgNode& node : nodes_) {
    std::string label;
    if (node.id == entry_id_) {
      label = "entry";
    } else if (node.id == exit_id_) {
      label = "exit";
    } else if (node.call.has_value()) {
      label = node.call->callee;
    } else {
      label = util::StrFormat("b%d", node.id);
    }
    out += util::StrFormat("  n%d [label=\"%d: %s\"];\n", node.id, node.id,
                           label.c_str());
  }
  for (const CfgNode& node : nodes_) {
    for (int succ : node.succs) {
      std::string attrs;
      if (IsInfeasible(node.id, succ)) {
        attrs = " [style=dotted color=red label=\"infeasible\"]";
      } else if (IsBackEdge(node.id, succ)) {
        auto bound = loop_bounds_.find({node.id, succ});
        if (bound != loop_bounds_.end()) {
          attrs = util::StrFormat(" [style=dashed label=\"trips=%lld\"]",
                                  static_cast<long long>(bound->second));
        } else {
          attrs = " [style=dashed]";
        }
      }
      out += util::StrFormat("  n%d -> n%d%s;\n", node.id, succ,
                             attrs.c_str());
    }
  }
  out += "}\n";
  return out;
}

util::Result<Cfg> BuildCfg(const Program& program, const FunctionDef& fn) {
  if (!program.finalized()) {
    return util::Status::FailedPrecondition(
        "program must be finalized before CFG construction");
  }
  CfgBuilder builder(program, fn);
  return builder.Build();
}

util::Result<std::map<std::string, Cfg>> BuildAllCfgs(
    const Program& program) {
  std::map<std::string, Cfg> out;
  for (const FunctionDef& fn : program.functions()) {
    ADPROM_ASSIGN_OR_RETURN(Cfg cfg, BuildCfg(program, fn));
    out.emplace(fn.name, std::move(cfg));
  }
  return std::move(out);
}

}  // namespace adprom::prog
