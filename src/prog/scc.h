#ifndef ADPROM_PROG_SCC_H_
#define ADPROM_PROG_SCC_H_

#include <vector>

namespace adprom::prog {

/// Strongly connected components of a directed graph, plus the two views
/// the dataflow framework schedules interprocedural fixpoints with:
/// components in callees-first order, and the condensation DAG leveled so
/// that components within one level are mutually independent (safe to
/// solve in parallel).
struct SccDecomposition {
  /// Components in reverse topological order of the condensation: for
  /// every edge u -> v with component_of[u] != component_of[v],
  /// component_of[v] appears *before* component_of[u]. With call-graph
  /// edges caller -> callee this is exactly bottom-up (callees first).
  /// Vertices within a component are sorted ascending.
  std::vector<std::vector<int>> components;
  /// vertex -> index into `components`.
  std::vector<int> component_of;
  /// levels[l] lists component indices whose successors all live in
  /// levels < l. No edge connects two components of the same level, so a
  /// level's members can be processed concurrently once every earlier
  /// level is done. Component indices within a level are ascending.
  std::vector<std::vector<int>> levels;
};

/// Tarjan's algorithm (iterative) over `adjacency`, where vertex v's
/// successors are adjacency[v]. Deterministic for a fixed input graph:
/// roots are tried in ascending vertex order and edges in stored order.
SccDecomposition ComputeSccs(const std::vector<std::vector<int>>& adjacency);

}  // namespace adprom::prog

#endif  // ADPROM_PROG_SCC_H_
