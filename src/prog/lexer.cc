#include "prog/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace adprom::prog {

namespace {

bool IsKeyword(const std::string& word) {
  return word == "fn" || word == "var" || word == "if" || word == "else" ||
         word == "while" || word == "return";
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

util::Result<std::vector<Token>> Lex(const std::string& source) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = source.size();
  int line = 1;
  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(source[j])) ++j;
      std::string word = source.substr(i, j - i);
      out.push_back({IsKeyword(word) ? TokenType::kKeyword
                                     : TokenType::kIdentifier,
                     std::move(word), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool real = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(source[j])) ||
                       source[j] == '.')) {
        if (source[j] == '.') real = true;
        ++j;
      }
      out.push_back({real ? TokenType::kRealLiteral : TokenType::kIntLiteral,
                     source.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == '"') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (source[j] == '\\' && j + 1 < n) {
          switch (source[j + 1]) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '"': text += '"'; break;
            case '\\': text += '\\'; break;
            default: text += source[j + 1]; break;
          }
          j += 2;
          continue;
        }
        if (source[j] == '"') {
          closed = true;
          ++j;
          break;
        }
        if (source[j] == '\n') ++line;
        text += source[j];
        ++j;
      }
      if (!closed) {
        return util::Status::ParseError(
            util::StrFormat("line %d: unterminated string literal", line));
      }
      out.push_back({TokenType::kStrLiteral, std::move(text), line});
      i = j;
      continue;
    }
    // Punctuation and operators.
    auto push2 = [&](const char* text) {
      out.push_back({TokenType::kOperator, text, line});
      i += 2;
    };
    auto push1 = [&](TokenType type) {
      out.push_back({type, std::string(1, c), line});
      ++i;
    };
    switch (c) {
      case '(': case ')': case '{': case '}': case ',': case ';':
        push1(TokenType::kPunct);
        continue;
      case '+': case '*': case '/': case '%':
        push1(TokenType::kOperator);
        continue;
      case '-':
        push1(TokenType::kOperator);
        continue;
      case '<':
        if (i + 1 < n && source[i + 1] == '=') { push2("<="); continue; }
        push1(TokenType::kOperator);
        continue;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') { push2(">="); continue; }
        push1(TokenType::kOperator);
        continue;
      case '=':
        if (i + 1 < n && source[i + 1] == '=') { push2("=="); continue; }
        push1(TokenType::kOperator);
        continue;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') { push2("!="); continue; }
        push1(TokenType::kOperator);
        continue;
      case '&':
        if (i + 1 < n && source[i + 1] == '&') { push2("&&"); continue; }
        break;
      case '|':
        if (i + 1 < n && source[i + 1] == '|') { push2("||"); continue; }
        break;
      default:
        break;
    }
    return util::Status::ParseError(
        util::StrFormat("line %d: unexpected character '%c'", line, c));
  }
  out.push_back({TokenType::kEnd, "", line});
  return out;
}

}  // namespace adprom::prog
