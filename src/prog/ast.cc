#include "prog/ast.h"

namespace adprom::prog {

std::unique_ptr<Expr> Expr::IntLit(int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLit;
  e->int_value = v;
  return e;
}

std::unique_ptr<Expr> Expr::RealLit(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kRealLit;
  e->real_value = v;
  return e;
}

std::unique_ptr<Expr> Expr::StrLit(std::string v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStrLit;
  e->str_value = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVar;
  e->name = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinOp op, std::unique_ptr<Expr> l,
                                   std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::Unary(UnOp op, std::unique_ptr<Expr> inner) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->lhs = std::move(inner);
  return e;
}

std::unique_ptr<Expr> Expr::Call(std::string callee,
                                 std::vector<std::unique_ptr<Expr>> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->name = std::move(callee);
  e->args = std::move(args);
  return e;
}

std::unique_ptr<Stmt> Stmt::VarDecl(std::string name,
                                    std::unique_ptr<Expr> value) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kVarDecl;
  s->target = std::move(name);
  s->expr = std::move(value);
  return s;
}

std::unique_ptr<Stmt> Stmt::Assign(std::string name,
                                   std::unique_ptr<Expr> value) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kAssign;
  s->target = std::move(name);
  s->expr = std::move(value);
  return s;
}

std::unique_ptr<Stmt> Stmt::If(std::unique_ptr<Expr> cond, StmtList then_b,
                               StmtList else_b) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kIf;
  s->expr = std::move(cond);
  s->then_body = std::move(then_b);
  s->else_body = std::move(else_b);
  return s;
}

std::unique_ptr<Stmt> Stmt::While(std::unique_ptr<Expr> cond, StmtList body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kWhile;
  s->expr = std::move(cond);
  s->then_body = std::move(body);
  return s;
}

std::unique_ptr<Stmt> Stmt::Return(std::unique_ptr<Expr> value) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kReturn;
  s->expr = std::move(value);
  return s;
}

std::unique_ptr<Stmt> Stmt::ExprStmt(std::unique_ptr<Expr> e) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kExpr;
  s->expr = std::move(e);
  return s;
}

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}

void CollectCalls(const Expr& e, std::vector<const Expr*>* out) {
  switch (e.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kRealLit:
    case ExprKind::kStrLit:
    case ExprKind::kVar:
      return;
    case ExprKind::kBinary:
      CollectCalls(*e.lhs, out);
      CollectCalls(*e.rhs, out);
      return;
    case ExprKind::kUnary:
      CollectCalls(*e.lhs, out);
      return;
    case ExprKind::kCall:
      for (const auto& arg : e.args) CollectCalls(*arg, out);
      out->push_back(&e);
      return;
  }
}

std::unique_ptr<Expr> CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->int_value = e.int_value;
  out->real_value = e.real_value;
  out->str_value = e.str_value;
  out->name = e.name;
  out->bin_op = e.bin_op;
  out->un_op = e.un_op;
  out->call_site_id = e.call_site_id;
  out->line = e.line;
  if (e.lhs != nullptr) out->lhs = CloneExpr(*e.lhs);
  if (e.rhs != nullptr) out->rhs = CloneExpr(*e.rhs);
  out->args.reserve(e.args.size());
  for (const auto& arg : e.args) out->args.push_back(CloneExpr(*arg));
  return out;
}

std::unique_ptr<Stmt> CloneStmt(const Stmt& s) {
  auto out = std::make_unique<Stmt>();
  out->kind = s.kind;
  out->target = s.target;
  out->line = s.line;
  if (s.expr != nullptr) out->expr = CloneExpr(*s.expr);
  out->then_body = CloneBody(s.then_body);
  out->else_body = CloneBody(s.else_body);
  return out;
}

StmtList CloneBody(const StmtList& body) {
  StmtList out;
  out.reserve(body.size());
  for (const auto& s : body) out.push_back(CloneStmt(*s));
  return out;
}

}  // namespace adprom::prog
