#include "prog/printer.h"

#include "util/strings.h"

namespace adprom::prog {

namespace {

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default: out += c; break;
    }
  }
  out += '"';
  return out;
}

void EmitBody(const StmtList& body, int indent, std::string* out);

void EmitStmt(const Stmt& s, int indent, std::string* out) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (s.kind) {
    case StmtKind::kVarDecl:
      *out += pad + "var " + s.target + " = " + ExprToSource(*s.expr) + ";\n";
      return;
    case StmtKind::kAssign:
      *out += pad + s.target + " = " + ExprToSource(*s.expr) + ";\n";
      return;
    case StmtKind::kIf:
      *out += pad + "if (" + ExprToSource(*s.expr) + ") {\n";
      EmitBody(s.then_body, indent + 1, out);
      if (s.else_body.empty()) {
        *out += pad + "}\n";
      } else {
        *out += pad + "} else {\n";
        EmitBody(s.else_body, indent + 1, out);
        *out += pad + "}\n";
      }
      return;
    case StmtKind::kWhile:
      *out += pad + "while (" + ExprToSource(*s.expr) + ") {\n";
      EmitBody(s.then_body, indent + 1, out);
      *out += pad + "}\n";
      return;
    case StmtKind::kReturn:
      if (s.expr != nullptr) {
        *out += pad + "return " + ExprToSource(*s.expr) + ";\n";
      } else {
        *out += pad + "return;\n";
      }
      return;
    case StmtKind::kExpr:
      *out += pad + ExprToSource(*s.expr) + ";\n";
      return;
  }
}

void EmitBody(const StmtList& body, int indent, std::string* out) {
  for (const auto& stmt : body) EmitStmt(*stmt, indent, out);
}

}  // namespace

std::string ExprToSource(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return std::to_string(e.int_value);
    case ExprKind::kRealLit:
      return util::StrFormat("%g", e.real_value);
    case ExprKind::kStrLit:
      return EscapeString(e.str_value);
    case ExprKind::kVar:
      return e.name;
    case ExprKind::kUnary:
      // "-3" round-trips through the parser as Neg(IntLit 3); printing it
      // back without parentheses keeps emission idempotent.
      if (e.un_op == UnOp::kNeg && e.lhs->kind == ExprKind::kIntLit) {
        return "-" + std::to_string(e.lhs->int_value);
      }
      return std::string(e.un_op == UnOp::kNot ? "!" : "-") + "(" +
             ExprToSource(*e.lhs) + ")";
    case ExprKind::kBinary:
      return "(" + ExprToSource(*e.lhs) + " " + BinOpName(e.bin_op) + " " +
             ExprToSource(*e.rhs) + ")";
    case ExprKind::kCall: {
      std::string out = e.name + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprToSource(*e.args[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

std::string ProgramToSource(const Program& program) {
  std::string out;
  for (const FunctionDef& fn : program.functions()) {
    out += "fn " + fn.name + "(";
    for (size_t i = 0; i < fn.params.size(); ++i) {
      if (i > 0) out += ", ";
      out += fn.params[i];
    }
    out += ") {\n";
    EmitBody(fn.body, 1, &out);
    out += "}\n\n";
  }
  return out;
}

}  // namespace adprom::prog
