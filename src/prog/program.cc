#include "prog/program.h"

#include <set>

#include "util/logging.h"
#include "util/strings.h"

namespace adprom::prog {

namespace {

/// Walks every expression in a body, assigning call-site ids in source
/// order and validating variable/function usage.
class Finalizer {
 public:
  Finalizer(const Program& program, int* next_id)
      : program_(program), next_id_(next_id) {}

  util::Status Run(FunctionDef& fn) {
    fn_name_ = fn.name;
    scopes_.clear();
    scopes_.emplace_back(fn.params.begin(), fn.params.end());
    return VisitBody(fn.body);
  }

 private:
  util::Status VisitBody(StmtList& body) {
    scopes_.emplace_back();
    for (auto& stmt : body) {
      ADPROM_RETURN_IF_ERROR(VisitStmt(*stmt));
    }
    scopes_.pop_back();
    return util::Status::Ok();
  }

  util::Status VisitStmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kVarDecl:
        ADPROM_RETURN_IF_ERROR(VisitExpr(*s.expr));
        scopes_.back().insert(s.target);
        return util::Status::Ok();
      case StmtKind::kAssign:
        if (!IsDeclared(s.target)) {
          return util::Status::InvalidArgument(util::StrFormat(
              "%s: line %d: assignment to undeclared variable '%s'",
              fn_name_.c_str(), s.line, s.target.c_str()));
        }
        return VisitExpr(*s.expr);
      case StmtKind::kIf: {
        ADPROM_RETURN_IF_ERROR(VisitExpr(*s.expr));
        ADPROM_RETURN_IF_ERROR(VisitBody(s.then_body));
        return VisitBody(s.else_body);
      }
      case StmtKind::kWhile:
        ADPROM_RETURN_IF_ERROR(VisitExpr(*s.expr));
        return VisitBody(s.then_body);
      case StmtKind::kReturn:
        if (s.expr != nullptr) return VisitExpr(*s.expr);
        return util::Status::Ok();
      case StmtKind::kExpr:
        return VisitExpr(*s.expr);
    }
    return util::Status::Internal("unhandled statement kind");
  }

  util::Status VisitExpr(Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kRealLit:
      case ExprKind::kStrLit:
        return util::Status::Ok();
      case ExprKind::kVar:
        if (!IsDeclared(e.name)) {
          return util::Status::InvalidArgument(util::StrFormat(
              "%s: line %d: use of undeclared variable '%s'",
              fn_name_.c_str(), e.line, e.name.c_str()));
        }
        return util::Status::Ok();
      case ExprKind::kBinary:
        ADPROM_RETURN_IF_ERROR(VisitExpr(*e.lhs));
        return VisitExpr(*e.rhs);
      case ExprKind::kUnary:
        return VisitExpr(*e.lhs);
      case ExprKind::kCall: {
        for (auto& arg : e.args) {
          ADPROM_RETURN_IF_ERROR(VisitExpr(*arg));
        }
        e.call_site_id = (*next_id_)++;
        if (program_.IsUserFunction(e.name)) {
          const FunctionDef* callee = program_.FindFunction(e.name);
          if (callee->params.size() != e.args.size()) {
            return util::Status::InvalidArgument(util::StrFormat(
                "%s: line %d: call to %s with %zu args, expected %zu",
                fn_name_.c_str(), e.line, e.name.c_str(), e.args.size(),
                callee->params.size()));
          }
        }
        return util::Status::Ok();
      }
    }
    return util::Status::Internal("unhandled expression kind");
  }

  bool IsDeclared(const std::string& name) const {
    for (const auto& scope : scopes_) {
      if (scope.contains(name)) return true;
    }
    return false;
  }

  const Program& program_;
  int* next_id_;
  std::string fn_name_;
  std::vector<std::set<std::string>> scopes_;
};

}  // namespace

util::Status Program::AddFunction(FunctionDef fn) {
  if (index_.contains(fn.name)) {
    return util::Status::AlreadyExists(util::StrFormat(
        "line %d: duplicate function '%s'", fn.line, fn.name.c_str()));
  }
  index_[fn.name] = functions_.size();
  functions_.push_back(std::move(fn));
  finalized_ = false;
  return util::Status::Ok();
}

util::Status Program::Finalize() {
  if (FindFunction("main") == nullptr) {
    return util::Status::InvalidArgument("program has no main()");
  }
  next_call_site_id_ = 0;
  for (FunctionDef& fn : functions_) {
    Finalizer finalizer(*this, &next_call_site_id_);
    ADPROM_RETURN_IF_ERROR(finalizer.Run(fn));
  }
  finalized_ = true;
  return util::Status::Ok();
}

const FunctionDef* Program::FindFunction(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &functions_[it->second];
}

FunctionDef* Program::FindMutableFunction(const std::string& name) {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  finalized_ = false;
  return &functions_[it->second];
}

bool Program::IsUserFunction(const std::string& name) const {
  return index_.contains(name);
}

Program Program::Clone() const {
  Program out;
  for (const FunctionDef& fn : functions_) {
    FunctionDef copy;
    copy.name = fn.name;
    copy.params = fn.params;
    copy.body = CloneBody(fn.body);
    copy.line = fn.line;
    // AddFunction cannot fail here: names were unique in the source.
    ADPROM_CHECK(out.AddFunction(std::move(copy)).ok());
  }
  out.next_call_site_id_ = next_call_site_id_;
  out.finalized_ = finalized_;
  return out;
}

}  // namespace adprom::prog
