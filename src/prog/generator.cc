#include "prog/generator.h"

#include <vector>

#include "util/strings.h"

namespace adprom::prog {

namespace {

/// Builds statements/expressions with simple int/str typing so the
/// generated program never hits a runtime type error.
class Generator {
 public:
  Generator(const GeneratorOptions& options, util::Rng& rng)
      : options_(options), rng_(rng) {}

  util::Result<Program> Generate() {
    // Function signatures first, so call targets and arities are known.
    // fi may call fj only for j > i — the call graph stays acyclic.
    signatures_.push_back({"main", {}, false});
    for (size_t i = 0; i < options_.num_functions; ++i) {
      FnSig sig;
      sig.name = "f" + std::to_string(i + 1);
      const size_t params = rng_.UniformU64(3);
      for (size_t p = 0; p < params; ++p) {
        sig.param_is_str.push_back(rng_.Bernoulli(0.5));
      }
      sig.returns_str = rng_.Bernoulli(0.4);
      signatures_.push_back(std::move(sig));
    }

    Program program;
    for (size_t i = 0; i < signatures_.size(); ++i) {
      ADPROM_RETURN_IF_ERROR(program.AddFunction(GenFunction(i)));
    }
    ADPROM_RETURN_IF_ERROR(program.Finalize());
    return std::move(program);
  }

 private:
  struct Var {
    std::string name;
    bool is_str;
  };
  struct FnSig {
    std::string name;
    std::vector<bool> param_is_str;
    bool returns_str;
  };

  std::string FreshName(const char* prefix) {
    return util::StrFormat("%s%d", prefix, var_counter_++);
  }

  FunctionDef GenFunction(size_t index) {
    const FnSig& sig = signatures_[index];
    FunctionDef fn;
    fn.name = sig.name;
    std::vector<Var> scope;
    for (size_t p = 0; p < sig.param_is_str.size(); ++p) {
      const std::string name = "p" + std::to_string(p);
      fn.params.push_back(name);
      scope.push_back({name, sig.param_is_str[p]});
    }
    // A few seed locals of each type.
    for (int i = 0; i < 2; ++i) {
      const bool is_str = i == 1;
      const std::string name = FreshName("v");
      fn.body.push_back(Stmt::VarDecl(name, GenLiteral(is_str)));
      scope.push_back({name, is_str});
    }
    StmtList body = GenBody(index, &scope, 0);
    for (auto& stmt : body) fn.body.push_back(std::move(stmt));
    fn.body.push_back(
        Stmt::Return(GenExpr(scope, 1, sig.returns_str)));
    return fn;
  }

  StmtList GenBody(size_t fn_index, std::vector<Var>* scope, size_t depth) {
    StmtList body;
    const size_t statements =
        1 + rng_.UniformU64(options_.max_block_statements);
    const size_t scope_mark = scope->size();
    for (size_t i = 0; i < statements; ++i) {
      body.push_back(GenStmt(fn_index, scope, depth));
    }
    scope->resize(scope_mark);  // block-local declarations go out of scope
    return body;
  }

  std::unique_ptr<Stmt> GenStmt(size_t fn_index, std::vector<Var>* scope,
                                size_t depth) {
    std::vector<double> weights = {options_.assign_weight,
                                   options_.call_weight,
                                   depth < options_.max_depth
                                       ? options_.if_weight
                                       : 0.0,
                                   depth < options_.max_depth
                                       ? options_.loop_weight
                                       : 0.0};
    switch (rng_.WeightedIndex(weights)) {
      case 0: {  // declaration or assignment
        if (!scope->empty() && rng_.Bernoulli(0.5)) {
          const Var& var = (*scope)[rng_.UniformU64(scope->size())];
          return Stmt::Assign(var.name, GenExpr(*scope, 2, var.is_str));
        }
        const bool is_str = rng_.Bernoulli(0.5);
        const std::string name = FreshName("v");
        auto stmt = Stmt::VarDecl(name, GenExpr(*scope, 2, is_str));
        scope->push_back({name, is_str});
        return stmt;
      }
      case 1:
        return GenCallStmt(fn_index, *scope);
      case 2: {  // if / if-else
        StmtList then_body = GenBody(fn_index, scope, depth + 1);
        StmtList else_body;
        if (rng_.Bernoulli(0.5)) {
          else_body = GenBody(fn_index, scope, depth + 1);
        }
        return Stmt::If(GenCondition(*scope), std::move(then_body),
                        std::move(else_body));
      }
      default: {  // counter-bounded while loop (always terminates)
        const std::string counter = FreshName("loop");
        const int64_t bound = 1 + static_cast<int64_t>(rng_.UniformU64(4));
        // The counter is *not* pushed into scope: the loop body cannot
        // overwrite it, so termination is guaranteed.
        StmtList loop_body = GenBody(fn_index, scope, depth + 1);
        loop_body.push_back(Stmt::Assign(
            counter, Expr::Binary(BinOp::kAdd, Expr::Var(counter),
                                  Expr::IntLit(1))));
        auto loop = Stmt::While(
            Expr::Binary(BinOp::kLt, Expr::Var(counter),
                         Expr::IntLit(bound)),
            std::move(loop_body));
        // Wrap: declare the counter, then loop. We return a synthetic
        // if(1) block holding both so GenStmt still returns one Stmt.
        StmtList wrapper;
        wrapper.push_back(Stmt::VarDecl(counter, Expr::IntLit(0)));
        wrapper.push_back(std::move(loop));
        return Stmt::If(Expr::IntLit(1), std::move(wrapper), {});
      }
    }
  }

  /// Emits a realistic DB round trip guarded by is_null/row-count checks:
  ///   var q = db_query("SELECT a, b FROM gen WHERE a <= <int>");
  ///   if (!is_null(q)) { if (db_ntuples(q) > 0) { print(getvalue...); } }
  std::unique_ptr<Stmt> GenDbBlock(const std::vector<Var>& scope) {
    const std::string handle = FreshName("q");
    const std::string count = FreshName("m");
    StmtList inner;
    {
      std::vector<std::unique_ptr<Expr>> query_args;
      query_args.push_back(Expr::Binary(
          BinOp::kAdd, Expr::StrLit("SELECT a, b FROM gen WHERE a <= "),
          GenExpr(scope, 1, false)));
      inner.push_back(
          Stmt::VarDecl(handle, Expr::Call("db_query",
                                           std::move(query_args))));
    }
    StmtList guarded;
    {
      std::vector<std::unique_ptr<Expr>> count_args;
      count_args.push_back(Expr::Var(handle));
      guarded.push_back(Stmt::VarDecl(
          count, Expr::Call("db_ntuples", std::move(count_args))));
      StmtList use;
      std::vector<std::unique_ptr<Expr>> value_args;
      value_args.push_back(Expr::Var(handle));
      value_args.push_back(Expr::IntLit(0));
      value_args.push_back(Expr::IntLit(
          static_cast<int64_t>(rng_.UniformU64(2))));
      std::vector<std::unique_ptr<Expr>> print_args;
      print_args.push_back(Expr::Call("db_getvalue",
                                      std::move(value_args)));
      use.push_back(Stmt::ExprStmt(Expr::Call(
          rng_.Bernoulli(0.7) ? "print" : "print_err",
          std::move(print_args))));
      guarded.push_back(Stmt::If(
          Expr::Binary(BinOp::kGt, Expr::Var(count), Expr::IntLit(0)),
          std::move(use), {}));
    }
    std::vector<std::unique_ptr<Expr>> null_args;
    null_args.push_back(Expr::Var(handle));
    inner.push_back(Stmt::If(
        Expr::Unary(UnOp::kNot, Expr::Call("is_null",
                                           std::move(null_args))),
        std::move(guarded), {}));
    return Stmt::If(Expr::IntLit(1), std::move(inner), {});
  }

  std::unique_ptr<Stmt> GenCallStmt(size_t fn_index,
                                    const std::vector<Var>& scope) {
    if (options_.with_db_calls && rng_.Bernoulli(0.25)) {
      return GenDbBlock(scope);
    }
    // Call a later user function sometimes; otherwise a library output.
    if (fn_index + 1 < signatures_.size() && rng_.Bernoulli(0.35)) {
      const size_t callee_index =
          fn_index + 1 +
          rng_.UniformU64(signatures_.size() - fn_index - 1);
      const FnSig& callee = signatures_[callee_index];
      std::vector<std::unique_ptr<Expr>> args;
      for (bool is_str : callee.param_is_str) {
        args.push_back(GenExpr(scope, 2, is_str));
      }
      return Stmt::ExprStmt(Expr::Call(callee.name, std::move(args)));
    }
    switch (rng_.UniformU64(3)) {
      case 0: {
        std::vector<std::unique_ptr<Expr>> args;
        args.push_back(GenExpr(scope, 2, rng_.Bernoulli(0.5)));
        return Stmt::ExprStmt(Expr::Call("print", std::move(args)));
      }
      case 1: {
        std::vector<std::unique_ptr<Expr>> args;
        args.push_back(GenExpr(scope, 2, true));
        return Stmt::ExprStmt(Expr::Call("print_err", std::move(args)));
      }
      default: {
        std::vector<std::unique_ptr<Expr>> args;
        args.push_back(Expr::StrLit("gen_out.txt"));
        args.push_back(GenExpr(scope, 2, true));
        return Stmt::ExprStmt(Expr::Call("write_file", std::move(args)));
      }
    }
  }

  std::unique_ptr<Expr> GenCondition(const std::vector<Var>& scope) {
    static constexpr BinOp kCmps[] = {BinOp::kLt, BinOp::kLe, BinOp::kGt,
                                      BinOp::kGe, BinOp::kEq, BinOp::kNe};
    const BinOp op = kCmps[rng_.UniformU64(6)];
    const bool is_str = rng_.Bernoulli(0.3);
    return Expr::Binary(op, GenExpr(scope, 1, is_str),
                        GenExpr(scope, 1, is_str));
  }

  std::unique_ptr<Expr> GenLiteral(bool is_str) {
    if (is_str) {
      static constexpr const char* kStrings[] = {"alpha", "beta", "gamma",
                                                 "delta", "", "omega"};
      return Expr::StrLit(kStrings[rng_.UniformU64(6)]);
    }
    return Expr::IntLit(rng_.UniformInt(-9, 99));
  }

  const Var* PickVar(const std::vector<Var>& scope, bool is_str) {
    std::vector<const Var*> matching;
    for (const Var& var : scope) {
      if (var.is_str == is_str) matching.push_back(&var);
    }
    if (matching.empty()) return nullptr;
    return matching[rng_.UniformU64(matching.size())];
  }

  std::unique_ptr<Expr> GenExpr(const std::vector<Var>& scope, size_t depth,
                                bool want_str) {
    if (depth == 0) {
      // Leaf: literal or variable of the wanted type.
      if (const Var* var = PickVar(scope, want_str);
          var != nullptr && rng_.Bernoulli(0.6)) {
        return Expr::Var(var->name);
      }
      return GenLiteral(want_str);
    }
    if (want_str) {
      switch (rng_.UniformU64(4)) {
        case 0:  // concatenation (always yields a string)
          return Expr::Binary(BinOp::kAdd, GenExpr(scope, depth - 1, true),
                              GenExpr(scope, depth - 1, rng_.Bernoulli(0.5)));
        case 1: {  // string library function
          static constexpr const char* kFns[] = {"upper", "lower", "trim",
                                                 "compress"};
          std::vector<std::unique_ptr<Expr>> args;
          args.push_back(GenExpr(scope, depth - 1, true));
          return Expr::Call(kFns[rng_.UniformU64(4)], std::move(args));
        }
        case 2: {  // str() of anything
          std::vector<std::unique_ptr<Expr>> args;
          args.push_back(GenExpr(scope, depth - 1, rng_.Bernoulli(0.5)));
          return Expr::Call("str", std::move(args));
        }
        default:
          return GenExpr(scope, 0, true);
      }
    }
    switch (rng_.UniformU64(4)) {
      case 0: {  // integer arithmetic (no division)
        static constexpr BinOp kOps[] = {BinOp::kAdd, BinOp::kSub,
                                         BinOp::kMul};
        return Expr::Binary(kOps[rng_.UniformU64(3)],
                            GenExpr(scope, depth - 1, false),
                            GenExpr(scope, depth - 1, false));
      }
      case 1: {  // int library function of a string
        static constexpr const char* kFns[] = {"len", "checksum", "to_int"};
        std::vector<std::unique_ptr<Expr>> args;
        args.push_back(GenExpr(scope, depth - 1, true));
        return Expr::Call(kFns[rng_.UniformU64(3)], std::move(args));
      }
      case 2:  // comparison as 0/1 value
        return GenCondition(scope);
      default:
        return GenExpr(scope, 0, false);
    }
  }

  GeneratorOptions options_;
  util::Rng& rng_;
  std::vector<FnSig> signatures_;
  int var_counter_ = 0;
};

}  // namespace

util::Result<Program> GenerateRandomProgram(const GeneratorOptions& options,
                                            util::Rng& rng) {
  Generator generator(options, rng);
  return generator.Generate();
}

}  // namespace adprom::prog
