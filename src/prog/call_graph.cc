#include "prog/call_graph.h"

#include <functional>

namespace adprom::prog {

namespace {

void CollectBodyCalls(const StmtList& body,
                      std::vector<const Expr*>* calls) {
  for (const auto& stmt : body) {
    if (stmt->expr != nullptr) CollectCalls(*stmt->expr, calls);
    CollectBodyCalls(stmt->then_body, calls);
    CollectBodyCalls(stmt->else_body, calls);
  }
}

}  // namespace

util::Result<CallGraph> CallGraph::Build(const Program& program) {
  if (!program.finalized()) {
    return util::Status::FailedPrecondition(
        "program must be finalized before call-graph construction");
  }
  CallGraph cg;
  for (const FunctionDef& fn : program.functions()) {
    cg.edges_[fn.name];  // Ensure every function is a vertex.
    std::vector<const Expr*> calls;
    CollectBodyCalls(fn.body, &calls);
    for (const Expr* call : calls) {
      if (program.IsUserFunction(call->name)) {
        cg.edges_[fn.name].insert(call->name);
      }
    }
  }

  // Iterative post-order DFS with cycle detection (colors: 0 white,
  // 1 on-stack, 2 done). Post-order of callees-first yields the reverse
  // topological order the aggregator needs.
  std::map<std::string, int> color;
  std::function<void(const std::string&)> dfs =
      [&](const std::string& name) {
        color[name] = 1;
        for (const std::string& callee : cg.edges_[name]) {
          const int c = color[callee];
          if (c == 1) {
            cg.has_recursion_ = true;
            cg.cyclic_edges_.insert({name, callee});
            continue;
          }
          if (c == 0) dfs(callee);
        }
        color[name] = 2;
        cg.reverse_topo_.push_back(name);
      };
  // Start from main so ordering is deterministic; sweep the remaining
  // functions (e.g. dead ones) afterwards.
  dfs("main");
  for (const auto& [name, callees] : cg.edges_) {
    if (color[name] == 0) dfs(name);
  }
  return std::move(cg);
}

const std::set<std::string>& CallGraph::Callees(
    const std::string& caller) const {
  auto it = edges_.find(caller);
  return it == edges_.end() ? empty_ : it->second;
}

}  // namespace adprom::prog
