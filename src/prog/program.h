#ifndef ADPROM_PROG_PROGRAM_H_
#define ADPROM_PROG_PROGRAM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "prog/ast.h"
#include "util/status.h"

namespace adprom::prog {

/// A complete MiniApp program: an ordered list of functions, one of which
/// must be `main`. After `Finalize()`, every call expression has a
/// program-unique `call_site_id` and user-function calls are
/// distinguishable from library calls.
class Program {
 public:
  Program() = default;

  // Owns a mutable AST; moves only.
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  /// Appends a function definition. Fails if a function with the same name
  /// already exists.
  util::Status AddFunction(FunctionDef fn);

  /// Assigns unique call-site ids (deterministic: source order) and checks
  /// basic semantic rules: `main` exists, user calls match arities, variable
  /// reads are preceded by a declaration or parameter. Must be called once
  /// after all functions are added, and re-called after mutation.
  util::Status Finalize();

  bool finalized() const { return finalized_; }

  const std::vector<FunctionDef>& functions() const { return functions_; }
  std::vector<FunctionDef>& mutable_functions() { return functions_; }

  const FunctionDef* FindFunction(const std::string& name) const;
  FunctionDef* FindMutableFunction(const std::string& name);

  /// True if `name` is a user-defined function in this program (as opposed
  /// to a library call).
  bool IsUserFunction(const std::string& name) const;

  int num_call_sites() const { return next_call_site_id_; }

  /// Deep copy, preserving call-site ids until the copy is re-finalized.
  Program Clone() const;

 private:
  std::vector<FunctionDef> functions_;
  std::map<std::string, size_t> index_;  // name -> position in functions_
  int next_call_site_id_ = 0;
  bool finalized_ = false;
};

/// Parses MiniApp source text into a finalized Program.
util::Result<Program> ParseProgram(const std::string& source);

}  // namespace adprom::prog

#endif  // ADPROM_PROG_PROGRAM_H_
