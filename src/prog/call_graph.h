#ifndef ADPROM_PROG_CALL_GRAPH_H_
#define ADPROM_PROG_CALL_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "prog/program.h"
#include "util/status.h"

namespace adprom::prog {

/// The call graph (CG) of a program: user-function call relationships.
/// Library calls are leaves and are not vertices here.
class CallGraph {
 public:
  /// Builds the CG of a finalized program.
  static util::Result<CallGraph> Build(const Program& program);

  const std::set<std::string>& Callees(const std::string& caller) const;

  /// Returns function names in reverse topological order (callees before
  /// callers) — the order the paper aggregates CTMs in ("f_i's matrix is
  /// aggregated in f_{i-1}'s"). Cycles (recursion) are broken
  /// deterministically and reported through `HasRecursion()`; the
  /// aggregator treats a cyclic call edge as an opaque pass-through.
  const std::vector<std::string>& reverse_topo_order() const {
    return reverse_topo_;
  }

  bool HasRecursion() const { return has_recursion_; }

  /// Edges that participate in a cycle (caller -> callee).
  const std::set<std::pair<std::string, std::string>>& cyclic_edges() const {
    return cyclic_edges_;
  }

 private:
  std::map<std::string, std::set<std::string>> edges_;
  std::vector<std::string> reverse_topo_;
  bool has_recursion_ = false;
  std::set<std::pair<std::string, std::string>> cyclic_edges_;
  std::set<std::string> empty_;
};

}  // namespace adprom::prog

#endif  // ADPROM_PROG_CALL_GRAPH_H_
