#ifndef ADPROM_PROG_AST_H_
#define ADPROM_PROG_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace adprom::prog {

/// The MiniApp language is the application-program substrate this library
/// analyzes and monitors. It is a small dynamically-typed imperative
/// language shaped like the C client programs in the paper: functions,
/// branches, loops, string concatenation for (unsafely) building SQL, and
/// calls to "library functions" (print, db_query, ...) or user functions.
/// The static analyzer consumes its CFG exactly as the paper's analyzer
/// consumes Dyninst CFGs.

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
};

enum class UnOp { kNot, kNeg };

enum class ExprKind {
  kIntLit,
  kRealLit,
  kStrLit,
  kVar,
  kBinary,
  kUnary,
  kCall,
};

/// Expression tree node. Call expressions carry a program-unique
/// `call_site_id` assigned by the parser; the CFG builder maps each site to
/// the basic-block id the call is issued from, which is the `[bid]` in the
/// paper's `printf_Q[bid]` labels.
struct Expr {
  ExprKind kind;

  int64_t int_value = 0;       // kIntLit
  double real_value = 0.0;     // kRealLit
  std::string str_value;       // kStrLit
  std::string name;            // kVar / kCall (callee name)
  BinOp bin_op = BinOp::kAdd;  // kBinary
  UnOp un_op = UnOp::kNot;     // kUnary
  std::unique_ptr<Expr> lhs;   // kBinary / kUnary (operand)
  std::unique_ptr<Expr> rhs;   // kBinary
  std::vector<std::unique_ptr<Expr>> args;  // kCall
  int call_site_id = -1;       // kCall: unique within the Program
  int line = 0;                // source line, for diagnostics

  static std::unique_ptr<Expr> IntLit(int64_t v);
  static std::unique_ptr<Expr> RealLit(double v);
  static std::unique_ptr<Expr> StrLit(std::string v);
  static std::unique_ptr<Expr> Var(std::string name);
  static std::unique_ptr<Expr> Binary(BinOp op, std::unique_ptr<Expr> l,
                                      std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> Unary(UnOp op, std::unique_ptr<Expr> e);
  static std::unique_ptr<Expr> Call(std::string callee,
                                    std::vector<std::unique_ptr<Expr>> args);
};

enum class StmtKind {
  kVarDecl,   // var x = expr;
  kAssign,    // x = expr;
  kIf,        // if (cond) {..} [else {..}]
  kWhile,     // while (cond) {..}
  kReturn,    // return [expr];
  kExpr,      // expr;  (usually a call)
};

struct Stmt;
using StmtList = std::vector<std::unique_ptr<Stmt>>;

/// Statement node.
struct Stmt {
  StmtKind kind;

  std::string target;          // kVarDecl / kAssign: variable name
  std::unique_ptr<Expr> expr;  // value / condition / return value (nullable)
  StmtList then_body;          // kIf then / kWhile body
  StmtList else_body;          // kIf else
  int line = 0;

  static std::unique_ptr<Stmt> VarDecl(std::string name,
                                       std::unique_ptr<Expr> value);
  static std::unique_ptr<Stmt> Assign(std::string name,
                                      std::unique_ptr<Expr> value);
  static std::unique_ptr<Stmt> If(std::unique_ptr<Expr> cond, StmtList then_b,
                                  StmtList else_b);
  static std::unique_ptr<Stmt> While(std::unique_ptr<Expr> cond,
                                     StmtList body);
  static std::unique_ptr<Stmt> Return(std::unique_ptr<Expr> value);
  static std::unique_ptr<Stmt> ExprStmt(std::unique_ptr<Expr> e);
};

/// A function definition.
struct FunctionDef {
  std::string name;
  std::vector<std::string> params;
  StmtList body;
  int line = 0;  // line of the `fn` keyword, for diagnostics
};

const char* BinOpName(BinOp op);

/// Collects pointers to every call expression inside `e` in evaluation
/// order (post-order, arguments left-to-right, then the call itself).
void CollectCalls(const Expr& e, std::vector<const Expr*>* out);

/// Deep copy helpers (used by the attack mutators to derive malicious
/// program variants from a benign AST).
std::unique_ptr<Expr> CloneExpr(const Expr& e);
std::unique_ptr<Stmt> CloneStmt(const Stmt& s);
StmtList CloneBody(const StmtList& body);

}  // namespace adprom::prog

#endif  // ADPROM_PROG_AST_H_
