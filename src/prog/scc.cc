#include "prog/scc.h"

#include <algorithm>

#include "util/logging.h"

namespace adprom::prog {

namespace {

/// Per-vertex bookkeeping for Tarjan's algorithm.
struct VertexInfo {
  int index = -1;    // discovery order, -1 = unvisited
  int lowlink = 0;   // smallest index reachable through the DFS subtree
  bool on_stack = false;
};

}  // namespace

SccDecomposition ComputeSccs(const std::vector<std::vector<int>>& adjacency) {
  const int n = static_cast<int>(adjacency.size());
  SccDecomposition out;
  out.component_of.assign(static_cast<size_t>(n), -1);

  std::vector<VertexInfo> info(static_cast<size_t>(n));
  std::vector<int> scc_stack;
  int next_index = 0;

  // Iterative DFS frame: vertex + how many successors were expanded.
  struct Frame {
    int v;
    size_t next_succ;
  };
  std::vector<Frame> dfs;

  for (int root = 0; root < n; ++root) {
    if (info[static_cast<size_t>(root)].index != -1) continue;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      VertexInfo& vi = info[static_cast<size_t>(frame.v)];
      if (frame.next_succ == 0) {
        vi.index = vi.lowlink = next_index++;
        vi.on_stack = true;
        scc_stack.push_back(frame.v);
      }
      if (frame.next_succ < adjacency[static_cast<size_t>(frame.v)].size()) {
        const int w = adjacency[static_cast<size_t>(frame.v)][frame.next_succ++];
        ADPROM_CHECK(w >= 0 && w < n);
        VertexInfo& wi = info[static_cast<size_t>(w)];
        if (wi.index == -1) {
          dfs.push_back({w, 0});
        } else if (wi.on_stack) {
          vi.lowlink = std::min(vi.lowlink, wi.index);
        }
        continue;
      }
      // All successors done: emit an SCC if frame.v is a root, then fold
      // the lowlink into the parent frame.
      if (vi.lowlink == vi.index) {
        std::vector<int> component;
        int w;
        do {
          w = scc_stack.back();
          scc_stack.pop_back();
          info[static_cast<size_t>(w)].on_stack = false;
          out.component_of[static_cast<size_t>(w)] =
              static_cast<int>(out.components.size());
          component.push_back(w);
        } while (w != frame.v);
        std::sort(component.begin(), component.end());
        out.components.push_back(std::move(component));
      }
      const int finished = frame.v;
      dfs.pop_back();
      if (!dfs.empty()) {
        VertexInfo& parent = info[static_cast<size_t>(dfs.back().v)];
        parent.lowlink =
            std::min(parent.lowlink,
                     info[static_cast<size_t>(finished)].lowlink);
      }
    }
  }

  // Tarjan emits components in reverse topological order already: a
  // component is popped only after every component it points to. Level =
  // 1 + max(level of successor components), computable in emission order.
  const size_t num_components = out.components.size();
  std::vector<int> level(num_components, 0);
  int max_level = -1;
  for (size_t c = 0; c < num_components; ++c) {
    int lvl = 0;
    for (int v : out.components[c]) {
      for (int w : adjacency[static_cast<size_t>(v)]) {
        const int wc = out.component_of[static_cast<size_t>(w)];
        if (wc != static_cast<int>(c)) {
          lvl = std::max(lvl, level[static_cast<size_t>(wc)] + 1);
        }
      }
    }
    level[c] = lvl;
    max_level = std::max(max_level, lvl);
  }
  out.levels.assign(static_cast<size_t>(max_level + 1), {});
  for (size_t c = 0; c < num_components; ++c) {
    out.levels[static_cast<size_t>(level[c])].push_back(static_cast<int>(c));
  }
  return out;
}

}  // namespace adprom::prog
