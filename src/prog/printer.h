#ifndef ADPROM_PROG_PRINTER_H_
#define ADPROM_PROG_PRINTER_H_

#include <string>

#include "prog/ast.h"
#include "prog/program.h"

namespace adprom::prog {

/// Renders an expression back to MiniApp source (fully parenthesized
/// where precedence is not obvious).
std::string ExprToSource(const Expr& e);

/// Renders a whole program back to parseable MiniApp source. Round-trip
/// property: ParseProgram(ProgramToSource(p)) succeeds and yields a
/// program with identical structure (tested on generated programs).
std::string ProgramToSource(const Program& program);

}  // namespace adprom::prog

#endif  // ADPROM_PROG_PRINTER_H_
