#include <memory>
#include <string>
#include <vector>

#include "prog/lexer.h"
#include "prog/program.h"
#include "util/strings.h"

namespace adprom::prog {

namespace {

/// Recursive-descent parser for MiniApp source.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  util::Result<Program> ParseAll() {
    Program program;
    while (Peek().type != TokenType::kEnd) {
      ADPROM_ASSIGN_OR_RETURN(FunctionDef fn, ParseFunction());
      ADPROM_RETURN_IF_ERROR(program.AddFunction(std::move(fn)));
    }
    ADPROM_RETURN_IF_ERROR(program.Finalize());
    return std::move(program);
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool MatchKeyword(const char* kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool MatchPunct(const char* p) {
    if (Peek().type == TokenType::kPunct && Peek().text == p) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool MatchOperator(const char* op) {
    if (Peek().type == TokenType::kOperator && Peek().text == op) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekPunct(const char* p) const {
    return Peek().type == TokenType::kPunct && Peek().text == p;
  }

  util::Status Error(const std::string& what) const {
    return util::Status::ParseError(util::StrFormat(
        "line %d: %s (at '%s')", Peek().line, what.c_str(),
        Peek().text.c_str()));
  }

  util::Status ExpectPunct(const char* p) {
    if (!MatchPunct(p)) return Error(std::string("expected '") + p + "'");
    return util::Status::Ok();
  }

  util::Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier)
      return Error("expected identifier");
    return Advance().text;
  }

  util::Result<FunctionDef> ParseFunction() {
    const int line = Peek().line;
    if (!MatchKeyword("fn")) return Error("expected 'fn'");
    FunctionDef fn;
    fn.line = line;
    ADPROM_ASSIGN_OR_RETURN(fn.name, ExpectIdentifier());
    ADPROM_RETURN_IF_ERROR(ExpectPunct("("));
    if (!PeekPunct(")")) {
      do {
        ADPROM_ASSIGN_OR_RETURN(std::string param, ExpectIdentifier());
        fn.params.push_back(std::move(param));
      } while (MatchPunct(","));
    }
    ADPROM_RETURN_IF_ERROR(ExpectPunct(")"));
    ADPROM_ASSIGN_OR_RETURN(fn.body, ParseBlock());
    return std::move(fn);
  }

  util::Result<StmtList> ParseBlock() {
    ADPROM_RETURN_IF_ERROR(ExpectPunct("{"));
    StmtList body;
    while (!PeekPunct("}")) {
      if (Peek().type == TokenType::kEnd) return Error("unclosed block");
      ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Stmt> s, ParseStmt());
      body.push_back(std::move(s));
    }
    ADPROM_RETURN_IF_ERROR(ExpectPunct("}"));
    return std::move(body);
  }

  util::Result<std::unique_ptr<Stmt>> ParseStmt() {
    const int line = Peek().line;
    if (MatchKeyword("var")) {
      ADPROM_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      if (!MatchOperator("="))
        return util::Result<std::unique_ptr<Stmt>>(
            Error("expected '=' in var declaration"));
      ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> value, ParseExpr());
      ADPROM_RETURN_IF_ERROR(ExpectPunct(";"));
      auto s = Stmt::VarDecl(std::move(name), std::move(value));
      s->line = line;
      return std::move(s);
    }
    if (MatchKeyword("if")) return ParseIf(line);
    if (MatchKeyword("while")) {
      ADPROM_RETURN_IF_ERROR(ExpectPunct("("));
      ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> cond, ParseExpr());
      ADPROM_RETURN_IF_ERROR(ExpectPunct(")"));
      ADPROM_ASSIGN_OR_RETURN(StmtList body, ParseBlock());
      auto s = Stmt::While(std::move(cond), std::move(body));
      s->line = line;
      return std::move(s);
    }
    if (MatchKeyword("return")) {
      std::unique_ptr<Expr> value;
      if (!PeekPunct(";")) {
        ADPROM_ASSIGN_OR_RETURN(value, ParseExpr());
      }
      ADPROM_RETURN_IF_ERROR(ExpectPunct(";"));
      auto s = Stmt::Return(std::move(value));
      s->line = line;
      return std::move(s);
    }
    // Assignment (IDENT '=' ...) vs expression statement: look ahead.
    if (Peek().type == TokenType::kIdentifier &&
        pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].type == TokenType::kOperator &&
        tokens_[pos_ + 1].text == "=") {
      std::string name = Advance().text;
      Advance();  // '='
      ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> value, ParseExpr());
      ADPROM_RETURN_IF_ERROR(ExpectPunct(";"));
      auto s = Stmt::Assign(std::move(name), std::move(value));
      s->line = line;
      return std::move(s);
    }
    ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
    ADPROM_RETURN_IF_ERROR(ExpectPunct(";"));
    auto s = Stmt::ExprStmt(std::move(e));
    s->line = line;
    return std::move(s);
  }

  util::Result<std::unique_ptr<Stmt>> ParseIf(int line) {
    ADPROM_RETURN_IF_ERROR(ExpectPunct("("));
    ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> cond, ParseExpr());
    ADPROM_RETURN_IF_ERROR(ExpectPunct(")"));
    ADPROM_ASSIGN_OR_RETURN(StmtList then_body, ParseBlock());
    StmtList else_body;
    if (MatchKeyword("else")) {
      if (MatchKeyword("if")) {
        // else-if chain: wrap the nested if in a single-statement body.
        ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Stmt> nested,
                                ParseIf(Peek().line));
        else_body.push_back(std::move(nested));
      } else {
        ADPROM_ASSIGN_OR_RETURN(else_body, ParseBlock());
      }
    }
    auto s = Stmt::If(std::move(cond), std::move(then_body),
                      std::move(else_body));
    s->line = line;
    return std::move(s);
  }

  // Expression grammar: || > && > comparison > +- > */% > unary > primary.
  util::Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  util::Result<std::unique_ptr<Expr>> ParseOr() {
    ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAnd());
    while (MatchOperator("||")) {
      ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAnd());
      lhs = Expr::Binary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return std::move(lhs);
  }

  util::Result<std::unique_ptr<Expr>> ParseAnd() {
    ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseCmp());
    while (MatchOperator("&&")) {
      ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseCmp());
      lhs = Expr::Binary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return std::move(lhs);
  }

  util::Result<std::unique_ptr<Expr>> ParseCmp() {
    ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAdd());
    static constexpr std::pair<const char*, BinOp> kOps[] = {
        {"<=", BinOp::kLe}, {">=", BinOp::kGe}, {"==", BinOp::kEq},
        {"!=", BinOp::kNe}, {"<", BinOp::kLt},  {">", BinOp::kGt},
    };
    for (const auto& [text, op] : kOps) {
      if (MatchOperator(text)) {
        ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdd());
        return Expr::Binary(op, std::move(lhs), std::move(rhs));
      }
    }
    return std::move(lhs);
  }

  util::Result<std::unique_ptr<Expr>> ParseAdd() {
    ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseMul());
    for (;;) {
      if (MatchOperator("+")) {
        ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseMul());
        lhs = Expr::Binary(BinOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (MatchOperator("-")) {
        ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseMul());
        lhs = Expr::Binary(BinOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return std::move(lhs);
      }
    }
  }

  util::Result<std::unique_ptr<Expr>> ParseMul() {
    ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnary());
    for (;;) {
      BinOp op;
      if (MatchOperator("*")) {
        op = BinOp::kMul;
      } else if (MatchOperator("/")) {
        op = BinOp::kDiv;
      } else if (MatchOperator("%")) {
        op = BinOp::kMod;
      } else {
        return std::move(lhs);
      }
      ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  util::Result<std::unique_ptr<Expr>> ParseUnary() {
    if (MatchOperator("!")) {
      ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseUnary());
      return Expr::Unary(UnOp::kNot, std::move(e));
    }
    if (MatchOperator("-")) {
      ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseUnary());
      return Expr::Unary(UnOp::kNeg, std::move(e));
    }
    return ParsePrimary();
  }

  util::Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    const int line = t.line;
    switch (t.type) {
      case TokenType::kIntLiteral: {
        Advance();
        auto e = Expr::IntLit(std::strtoll(t.text.c_str(), nullptr, 10));
        e->line = line;
        return std::move(e);
      }
      case TokenType::kRealLiteral: {
        Advance();
        auto e = Expr::RealLit(std::strtod(t.text.c_str(), nullptr));
        e->line = line;
        return std::move(e);
      }
      case TokenType::kStrLiteral: {
        Advance();
        auto e = Expr::StrLit(t.text);
        e->line = line;
        return std::move(e);
      }
      case TokenType::kIdentifier: {
        std::string name = Advance().text;
        if (MatchPunct("(")) {
          std::vector<std::unique_ptr<Expr>> args;
          if (!PeekPunct(")")) {
            do {
              ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParseExpr());
              args.push_back(std::move(arg));
            } while (MatchPunct(","));
          }
          ADPROM_RETURN_IF_ERROR(ExpectPunct(")"));
          auto e = Expr::Call(std::move(name), std::move(args));
          e->line = line;
          return std::move(e);
        }
        auto e = Expr::Var(std::move(name));
        e->line = line;
        return std::move(e);
      }
      case TokenType::kPunct:
        if (t.text == "(") {
          Advance();
          ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
          ADPROM_RETURN_IF_ERROR(ExpectPunct(")"));
          return std::move(e);
        }
        break;
      default:
        break;
    }
    return util::Result<std::unique_ptr<Expr>>(Error("expected expression"));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

util::Result<Program> ParseProgram(const std::string& source) {
  ADPROM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.ParseAll();
}

}  // namespace adprom::prog
