#ifndef ADPROM_PROG_CFG_H_
#define ADPROM_PROG_CFG_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "prog/program.h"
#include "util/status.h"

namespace adprom::prog {

/// A call issued by a CFG node: library call or user-function call.
struct CallRef {
  std::string callee;
  bool is_user_fn = false;
  int call_site_id = -1;  // the AST call site this node executes
  int line = 0;
};

/// A node in a function's control-flow graph. Mirrors the paper's model:
/// a node is a code block that makes at most one call; edges are control
/// flow. The entry node is the paper's ε and the exit node its ε'.
struct CfgNode {
  int id = -1;
  std::optional<CallRef> call;
  std::vector<int> succs;
  std::vector<int> preds;
};

/// One conditional branch of a function, recorded at construction so the
/// abstract-interpretation refiner can map facts about an `if`/`while`
/// statement back onto CFG edges. `cond_node` is the node holding the
/// final condition call (or the plain node evaluating a call-free
/// condition); its two outgoing edges lead to `true_target` and
/// `false_target`.
struct CfgBranch {
  const Stmt* stmt = nullptr;
  int cond_node = -1;
  int true_target = -1;
  int false_target = -1;
  bool is_loop = false;
};

/// Structural record of one `while` loop: the join header its back edge
/// re-enters, the branch node, the body entry, the node after the loop,
/// and the back-edge source (-1 when the body always returns, i.e. the
/// loop has no back edge).
struct CfgLoopInfo {
  const Stmt* stmt = nullptr;
  int header = -1;
  int cond_end = -1;
  int body_entry = -1;
  int after = -1;
  int back_src = -1;
};

/// The control-flow graph of one function.
class Cfg {
 public:
  const std::string& function_name() const { return function_name_; }
  int entry_id() const { return entry_id_; }
  int exit_id() const { return exit_id_; }

  const std::vector<CfgNode>& nodes() const { return nodes_; }
  const CfgNode& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  size_t size() const { return nodes_.size(); }

  /// Edges that close loops. The probability forecast ignores them (the
  /// paper: "AD-PROM does not handle loops ... each node is visited once");
  /// the HMM learns loop behaviour from traces instead.
  const std::set<std::pair<int, int>>& back_edges() const {
    return back_edges_;
  }
  bool IsBackEdge(int from, int to) const {
    return back_edges_.contains({from, to});
  }

  /// Every conditional branch, in construction (program) order.
  const std::vector<CfgBranch>& branches() const { return branches_; }
  /// Every `while` loop, in construction order.
  const std::vector<CfgLoopInfo>& loops() const { return loops_; }

  /// Marks the edge `from -> to` as statically infeasible: the abstract
  /// interpreter proved the branch condition constant, so no execution
  /// ever takes it. The probability forecast drops the edge and
  /// renormalizes the remaining successors.
  void MarkInfeasible(int from, int to) { infeasible_edges_.insert({from, to}); }
  bool IsInfeasible(int from, int to) const {
    return infeasible_edges_.contains({from, to});
  }
  const std::set<std::pair<int, int>>& infeasible_edges() const {
    return infeasible_edges_;
  }

  /// Attaches an exact trip count to the back edge `back_src -> header`.
  /// The forecast's loop-reweighting pass scales in-loop visit mass by it
  /// instead of assuming the body runs once.
  void SetLoopBound(int back_src, int header, int64_t trip_count) {
    loop_bounds_[{back_src, header}] = trip_count;
  }
  const std::map<std::pair<int, int>, int64_t>& loop_bounds() const {
    return loop_bounds_;
  }

  /// Acyclic view for the probability forecast: the successors of `id`
  /// with every back edge replaced by an edge to its loop's exit node
  /// ("the loop body runs once"). Flow therefore always reaches the exit
  /// and the CTM invariants (row/column sums of 1) hold exactly.
  /// Statically infeasible edges are dropped (unless that would leave the
  /// node with no successor at all, which refiners never produce but the
  /// forecast must survive).
  std::vector<int> ForecastSuccessors(int id) const;

  /// Topological order of all nodes over the forecast (acyclic) edges.
  std::vector<int> ForecastTopoOrder() const;

  /// Topological order of all nodes over forward (non-back) edges.
  const std::vector<int>& topo_order() const { return topo_order_; }

  /// Reverse post-order of a depth-first traversal from the entry over
  /// *all* edges (back edges included). This is the canonical iteration
  /// order for forward dataflow fixpoints: every node is visited after as
  /// many of its predecessors as the loop structure allows, so worklist
  /// solvers converge in O(loop-nesting-depth) sweeps. Deterministic
  /// (successors are explored in stored order); any node unreachable from
  /// the entry is appended at the end in id order.
  std::vector<int> ReversePostOrder() const;

  /// Maps an AST call-site id to the CFG node (block) that issues it.
  /// This block id is the `[bid]` of the paper's `printf_Q[bid]` labels.
  std::optional<int> NodeOfCallSite(int call_site_id) const;

  /// All nodes that make a call, in topological order.
  std::vector<int> CallNodes() const;

  /// Graphviz-style rendering for debugging and the quickstart example.
  std::string ToDot() const;

 private:
  friend class CfgBuilder;

  std::string function_name_;
  int entry_id_ = -1;
  int exit_id_ = -1;
  std::vector<CfgNode> nodes_;
  std::vector<CfgBranch> branches_;
  std::vector<CfgLoopInfo> loops_;
  std::set<std::pair<int, int>> infeasible_edges_;
  std::map<std::pair<int, int>, int64_t> loop_bounds_;
  std::set<std::pair<int, int>> back_edges_;
  // Maps a back edge to the node control reaches when the loop is not
  // re-entered (the statement after the loop).
  std::map<std::pair<int, int>, int> back_edge_exit_;
  std::vector<int> topo_order_;
  std::map<int, int> site_to_node_;
};

/// Builds the CFG of one function of a finalized program. Statements after
/// a `return` in the same block are unreachable and dropped. Calls inside
/// a condition are modeled in evaluation order; short-circuit skipping is
/// over-approximated as always-evaluated.
util::Result<Cfg> BuildCfg(const Program& program, const FunctionDef& fn);

/// Builds CFGs for every function, keyed by function name.
util::Result<std::map<std::string, Cfg>> BuildAllCfgs(const Program& program);

}  // namespace adprom::prog

#endif  // ADPROM_PROG_CFG_H_
