#include "ml/kmeans.h"

#include <cmath>
#include <limits>

namespace adprom::ml {

namespace {

double SquaredDistance(const util::Matrix& data, size_t row,
                       const util::Matrix& centroids, size_t c) {
  double d2 = 0.0;
  const double* a = data.RowData(row);
  const double* b = centroids.RowData(c);
  for (size_t i = 0; i < data.cols(); ++i) {
    const double diff = a[i] - b[i];
    d2 += diff * diff;
  }
  return d2;
}

/// k-means++ seeding: first centroid uniform, each next proportional to
/// squared distance from the nearest already-chosen centroid.
util::Matrix SeedPlusPlus(const util::Matrix& data, size_t k,
                          util::Rng& rng) {
  const size_t n = data.rows();
  util::Matrix centroids(k, data.cols());
  std::vector<double> min_d2(n, std::numeric_limits<double>::max());

  size_t first = rng.UniformU64(n);
  for (size_t c = 0; c < data.cols(); ++c)
    centroids.At(0, c) = data.At(first, c);

  for (size_t j = 1; j < k; ++j) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d2 = SquaredDistance(data, i, centroids, j - 1);
      min_d2[i] = std::min(min_d2[i], d2);
      total += min_d2[i];
    }
    size_t chosen;
    if (total <= 0.0) {
      chosen = rng.UniformU64(n);  // All points coincide with a centroid.
    } else {
      chosen = rng.WeightedIndex(min_d2);
    }
    for (size_t c = 0; c < data.cols(); ++c)
      centroids.At(j, c) = data.At(chosen, c);
  }
  return centroids;
}

}  // namespace

util::Result<KMeansResult> KMeansCluster(const util::Matrix& data, size_t k,
                                         util::Rng& rng,
                                         const KMeansOptions& options) {
  const size_t n = data.rows();
  if (k == 0) return util::Status::InvalidArgument("k must be positive");
  if (k > n) {
    return util::Status::InvalidArgument(
        "k exceeds the number of samples");
  }

  KMeansResult result;
  result.centroids = SeedPlusPlus(data, k, rng);
  result.assignment.assign(n, 0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_d2 = std::numeric_limits<double>::max();
      for (size_t c = 0; c < k; ++c) {
        const double d2 = SquaredDistance(data, i, result.centroids, c);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }

    // Update step.
    util::Matrix next(k, data.cols());
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = result.assignment[i];
      ++counts[c];
      for (size_t d = 0; d < data.cols(); ++d)
        next.At(c, d) += data.At(i, d);
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with the sample farthest from its
        // current centroid.
        size_t far = 0;
        double far_d2 = -1.0;
        for (size_t i = 0; i < n; ++i) {
          const double d2 = SquaredDistance(data, i, result.centroids,
                                            result.assignment[i]);
          if (d2 > far_d2) {
            far_d2 = d2;
            far = i;
          }
        }
        for (size_t d = 0; d < data.cols(); ++d)
          next.At(c, d) = data.At(far, d);
        continue;
      }
      for (size_t d = 0; d < data.cols(); ++d)
        next.At(c, d) /= static_cast<double>(counts[c]);
    }

    const double shift = next.MaxAbsDiff(result.centroids);
    result.centroids = std::move(next);
    if (!changed || shift < options.tolerance) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia +=
        SquaredDistance(data, i, result.centroids, result.assignment[i]);
  }
  return std::move(result);
}

}  // namespace adprom::ml
