#ifndef ADPROM_ML_PCA_H_
#define ADPROM_ML_PCA_H_

#include <vector>

#include "util/matrix.h"
#include "util/status.h"

namespace adprom::ml {

/// Result of fitting PCA: the mean vector, the eigenvalues (descending)
/// and the principal axes (one column per retained component).
struct PcaModel {
  std::vector<double> mean;
  std::vector<double> eigenvalues;   // descending, retained components only
  util::Matrix components;           // dims x retained (column = axis)
  double explained_variance = 0.0;   // fraction captured by the retained set

  /// Projects a single sample into the retained subspace.
  std::vector<double> Project(const std::vector<double>& sample) const;

  /// Projects every row of `data`.
  util::Matrix ProjectAll(const util::Matrix& data) const;
};

/// Options for FitPca. Exactly one of the two criteria bounds the retained
/// dimensionality; the tighter one wins when both are set.
struct PcaOptions {
  /// Keep the smallest number of components whose cumulative explained
  /// variance reaches this fraction (0 < v <= 1).
  double target_variance = 0.95;
  /// Hard cap on the number of retained components (0 = no cap).
  size_t max_components = 0;
};

/// Fits PCA on `data` (rows = samples, cols = features) using the
/// covariance matrix and a cyclic Jacobi eigensolver — adequate for the
/// small, sparse call-transition-vector matrices this library reduces.
/// Fails when data has fewer than 2 rows or zero columns.
util::Result<PcaModel> FitPca(const util::Matrix& data,
                              const PcaOptions& options = PcaOptions());

/// Eigen-decomposition of a symmetric matrix by the cyclic Jacobi method.
/// Outputs eigenvalues (descending) and matching unit eigenvectors as
/// columns of `eigenvectors`. Fails if `m` is not square/symmetric.
util::Status JacobiEigenSymmetric(const util::Matrix& m,
                                  std::vector<double>* eigenvalues,
                                  util::Matrix* eigenvectors,
                                  int max_sweeps = 64);

}  // namespace adprom::ml

#endif  // ADPROM_ML_PCA_H_
