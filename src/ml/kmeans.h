#ifndef ADPROM_ML_KMEANS_H_
#define ADPROM_ML_KMEANS_H_

#include <cstddef>
#include <vector>

#include "util/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace adprom::ml {

/// Output of k-means: per-sample cluster assignment plus the centroids.
struct KMeansResult {
  std::vector<size_t> assignment;  // one entry per sample, in [0, k)
  util::Matrix centroids;          // k x dims
  double inertia = 0.0;            // sum of squared distances to centroid
  int iterations = 0;
};

struct KMeansOptions {
  int max_iterations = 100;
  /// Convergence: stop when no assignment changes, or the centroid shift
  /// falls below this threshold.
  double tolerance = 1e-8;
};

/// Lloyd's algorithm with k-means++ seeding. `data` rows are samples.
/// Requires 1 <= k <= #samples. Deterministic given `rng`'s seed. Empty
/// clusters are re-seeded with the sample farthest from its centroid.
util::Result<KMeansResult> KMeansCluster(
    const util::Matrix& data, size_t k, util::Rng& rng,
    const KMeansOptions& options = KMeansOptions());

}  // namespace adprom::ml

#endif  // ADPROM_ML_KMEANS_H_
