#include "ml/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace adprom::ml {

util::Status JacobiEigenSymmetric(const util::Matrix& m,
                                  std::vector<double>* eigenvalues,
                                  util::Matrix* eigenvectors,
                                  int max_sweeps) {
  const size_t n = m.rows();
  if (m.cols() != n)
    return util::Status::InvalidArgument("matrix must be square");
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::fabs(m.At(i, j) - m.At(j, i)) > 1e-9) {
        return util::Status::InvalidArgument("matrix must be symmetric");
      }
    }
  }

  util::Matrix a = m;
  util::Matrix v = util::Matrix::Identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t i = 0; i < n; ++i)
      for (size_t j = i + 1; j < n; ++j) off += a.At(i, j) * a.At(i, j);
    if (off < 1e-20) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::fabs(apq) < 1e-15) continue;
        const double app = a.At(p, p);
        const double aqq = a.At(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double akp = a.At(k, p);
          const double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a.At(p, k);
          const double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v.At(k, p);
          const double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = a.At(i, i);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t x, size_t y) { return diag[x] > diag[y]; });

  eigenvalues->resize(n);
  *eigenvectors = util::Matrix(n, n);
  for (size_t c = 0; c < n; ++c) {
    (*eigenvalues)[c] = diag[order[c]];
    for (size_t r = 0; r < n; ++r)
      eigenvectors->At(r, c) = v.At(r, order[c]);
  }
  return util::Status::Ok();
}

std::vector<double> PcaModel::Project(
    const std::vector<double>& sample) const {
  ADPROM_CHECK_EQ(sample.size(), mean.size());
  std::vector<double> out(components.cols(), 0.0);
  for (size_t c = 0; c < components.cols(); ++c) {
    double dot = 0.0;
    for (size_t d = 0; d < sample.size(); ++d)
      dot += (sample[d] - mean[d]) * components.At(d, c);
    out[c] = dot;
  }
  return out;
}

util::Matrix PcaModel::ProjectAll(const util::Matrix& data) const {
  util::Matrix out(data.rows(), components.cols());
  for (size_t r = 0; r < data.rows(); ++r) {
    const std::vector<double> proj = Project(data.Row(r));
    for (size_t c = 0; c < proj.size(); ++c) out.At(r, c) = proj[c];
  }
  return out;
}

util::Result<PcaModel> FitPca(const util::Matrix& data,
                              const PcaOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (n < 2) return util::Status::InvalidArgument("need at least 2 samples");
  if (d == 0) return util::Status::InvalidArgument("need at least 1 feature");
  if (options.target_variance <= 0.0 || options.target_variance > 1.0) {
    return util::Status::InvalidArgument(
        "target_variance must be in (0, 1]");
  }

  PcaModel model;
  model.mean.assign(d, 0.0);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < d; ++c) model.mean[c] += data.At(r, c);
  for (double& m : model.mean) m /= static_cast<double>(n);

  util::Matrix cov(d, d);
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < d; ++i) {
      const double di = data.At(r, i) - model.mean[i];
      if (di == 0.0) continue;
      for (size_t j = i; j < d; ++j) {
        cov.At(i, j) += di * (data.At(r, j) - model.mean[j]);
      }
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) {
      cov.At(i, j) /= static_cast<double>(n - 1);
      cov.At(j, i) = cov.At(i, j);
    }
  }

  std::vector<double> eigenvalues;
  util::Matrix eigenvectors;
  ADPROM_RETURN_IF_ERROR(
      JacobiEigenSymmetric(cov, &eigenvalues, &eigenvectors));

  double total = 0.0;
  for (double v : eigenvalues) total += std::max(v, 0.0);
  size_t keep = 0;
  double captured = 0.0;
  if (total <= 0.0) {
    keep = 1;  // Degenerate (all-identical samples): keep one axis.
    captured = 0.0;
  } else {
    for (size_t i = 0; i < eigenvalues.size(); ++i) {
      captured += std::max(eigenvalues[i], 0.0);
      keep = i + 1;
      if (captured / total >= options.target_variance) break;
      if (options.max_components > 0 && keep >= options.max_components)
        break;
    }
  }
  if (options.max_components > 0) {
    keep = std::min(keep, options.max_components);
  }

  model.eigenvalues.assign(eigenvalues.begin(),
                           eigenvalues.begin() + static_cast<long>(keep));
  model.components = util::Matrix(d, keep);
  for (size_t c = 0; c < keep; ++c)
    for (size_t r = 0; r < d; ++r)
      model.components.At(r, c) = eigenvectors.At(r, c);
  double kept_var = 0.0;
  for (double v : model.eigenvalues) kept_var += std::max(v, 0.0);
  model.explained_variance = total > 0.0 ? kept_var / total : 1.0;
  return std::move(model);
}

}  // namespace adprom::ml
