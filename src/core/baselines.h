#ifndef ADPROM_CORE_BASELINES_H_
#define ADPROM_CORE_BASELINES_H_

#include "core/profile.h"

namespace adprom::core {

/// Profile options reproducing the CMarkov comparator (Xu et al., DSN'16):
/// the same CTM-initialized HMM pipeline, but *without* data-flow analysis
/// — observables are plain call names, so it can neither distinguish
/// same-named calls on different paths nor connect activity to the data
/// source.
inline ProfileOptions CMarkovOptions(ProfileOptions base = ProfileOptions()) {
  base.use_dd_labels = false;
  base.init = ProfileOptions::Init::kStatic;
  return base;
}

/// Profile options reproducing the Rand-HMM baseline (Guevara et al.):
/// identical training data and state count, but the HMM starts from a
/// random initialization instead of the program-analysis forecast.
inline ProfileOptions RandHmmOptions(ProfileOptions base = ProfileOptions()) {
  base.init = ProfileOptions::Init::kRandom;
  return base;
}

}  // namespace adprom::core

#endif  // ADPROM_CORE_BASELINES_H_
