#include "core/profile.h"

#include <cmath>
#include <sstream>

#include "util/strings.h"

namespace adprom::core {

Alphabet::Alphabet() {
  symbols_.push_back("<unk>");
  index_["<unk>"] = 0;
}

int Alphabet::Intern(const std::string& symbol) {
  auto it = index_.find(symbol);
  if (it != index_.end()) return it->second;
  const int id = static_cast<int>(symbols_.size());
  symbols_.push_back(symbol);
  index_[symbol] = id;
  return id;
}

int Alphabet::Lookup(const std::string& symbol) const {
  auto it = index_.find(symbol);
  return it == index_.end() ? unk_id() : it->second;
}

bool Alphabet::Contains(const std::string& symbol) const {
  return index_.contains(symbol);
}

std::string ApplicationProfile::ObservableOf(
    const runtime::CallEvent& event) const {
  std::string observable =
      options.use_dd_labels ? event.Observable() : event.callee;
  if (options.use_query_signatures && !event.query_signature.empty()) {
    observable += "#" + event.query_signature;
  }
  return observable;
}

hmm::ObservationSeq ApplicationProfile::Encode(
    std::span<const runtime::CallEvent> events) const {
  hmm::ObservationSeq seq;
  seq.reserve(events.size());
  for (const runtime::CallEvent& event : events) {
    seq.push_back(alphabet.Lookup(ObservableOf(event)));
  }
  return seq;
}

std::vector<std::span<const runtime::CallEvent>> SlidingWindows(
    const runtime::Trace& trace, size_t n) {
  std::vector<std::span<const runtime::CallEvent>> out;
  if (trace.empty()) return out;
  if (trace.size() <= n) {
    out.emplace_back(trace.data(), trace.size());
    return out;
  }
  out.reserve(trace.size() - n + 1);
  for (size_t i = 0; i + n <= trace.size(); ++i) {
    out.emplace_back(trace.data() + i, n);
  }
  return out;
}

std::string ApplicationProfile::Serialize() const {
  std::ostringstream out;
  out << "adprom-profile v2\n";
  out << "window_length " << options.window_length << "\n";
  out << "use_dd_labels " << (options.use_dd_labels ? 1 : 0) << "\n";
  out << "use_query_signatures " << (options.use_query_signatures ? 1 : 0)
      << "\n";
  out << "threshold " << util::StrFormat("%.17g", threshold) << "\n";
  out << "num_sites " << num_sites << "\n";
  out << "num_states " << num_states << "\n";
  out << "alphabet " << alphabet.size() << "\n";
  for (const std::string& s : alphabet.symbols()) out << s << "\n";
  out << "context_pairs " << context_pairs.size() << "\n";
  for (const auto& [caller, callee] : context_pairs) {
    out << caller << " " << callee << "\n";
  }
  out << "labeled_sources " << labeled_sources.size() << "\n";
  for (const auto& [observable, tables] : labeled_sources) {
    out << observable;
    for (const std::string& t : tables) out << " " << t;
    out << "\n";
  }
  const size_t n = model.num_states();
  const size_t m = model.num_symbols();
  out << "hmm " << n << " " << m << "\n";
  // v2: A row-by-row as `<nnz> <col> <val> ...`. %.17g round-trips every
  // double exactly, so serialize → deserialize reproduces A bit for bit.
  out << "a-sparse\n";
  for (size_t s = 0; s < n; ++s) {
    size_t nnz = 0;
    for (size_t t = 0; t < n; ++t) {
      if (model.a().At(s, t) != 0.0) ++nnz;
    }
    out << nnz;
    for (size_t t = 0; t < n; ++t) {
      const double v = model.a().At(s, t);
      if (v != 0.0) out << util::StrFormat(" %zu %.17g", t, v);
    }
    out << "\n";
  }
  for (size_t s = 0; s < n; ++s) {
    for (size_t o = 0; o < m; ++o) {
      out << util::StrFormat("%.17g%c", model.b().At(s, o),
                             o + 1 == m ? '\n' : ' ');
    }
  }
  for (size_t s = 0; s < n; ++s) {
    out << util::StrFormat("%.17g%c", model.pi()[s],
                           s + 1 == n ? '\n' : ' ');
  }
  return out.str();
}

namespace {

/// Sanity caps for deserialized profiles. Legitimate profiles are tiny
/// (the paper reports ~31 kB); the caps exist so a corrupted or hostile
/// size field fails with a clean ParseError instead of attempting a
/// multi-gigabyte allocation.
constexpr size_t kMaxWindowLength = 1u << 20;
constexpr size_t kMaxCount = 1u << 20;       // alphabet / pairs / sources
constexpr size_t kMaxMatrixCells = 1u << 26;  // per HMM parameter matrix

}  // namespace

util::Result<ApplicationProfile> ApplicationProfile::Deserialize(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  auto fail = [](const std::string& what) {
    return util::Status::ParseError("profile: " + what);
  };
  if (!std::getline(in, line)) return fail("bad header");
  int version = 0;
  if (line == "adprom-profile v1") {
    version = 1;
  } else if (line == "adprom-profile v2") {
    version = 2;
  } else {
    return fail("bad header");
  }
  ApplicationProfile profile;
  std::string key;
  size_t alphabet_size = 0;

  in >> key >> profile.options.window_length;
  if (key != "window_length") return fail("expected window_length");
  if (!in) return fail("bad window_length value");
  if (profile.options.window_length < 2 ||
      profile.options.window_length > kMaxWindowLength) {
    return fail("window_length out of range");
  }
  int labels = 0;
  in >> key >> labels;
  if (key != "use_dd_labels") return fail("expected use_dd_labels");
  profile.options.use_dd_labels = labels != 0;
  int signatures = 0;
  in >> key >> signatures;
  if (key != "use_query_signatures")
    return fail("expected use_query_signatures");
  profile.options.use_query_signatures = signatures != 0;
  in >> key >> profile.threshold;
  if (key != "threshold") return fail("expected threshold");
  if (!in) return fail("bad threshold value");
  if (!std::isfinite(profile.threshold)) {
    return fail("threshold is not finite");
  }
  in >> key >> profile.num_sites;
  if (key != "num_sites") return fail("expected num_sites");
  in >> key >> profile.num_states;
  if (key != "num_states") return fail("expected num_states");
  in >> key >> alphabet_size;
  if (key != "alphabet") return fail("expected alphabet");
  if (!in) return fail("bad header counts");
  if (alphabet_size == 0 || alphabet_size > kMaxCount) {
    return fail("alphabet size out of range");
  }
  std::getline(in, line);  // eat newline
  for (size_t i = 0; i < alphabet_size; ++i) {
    if (!std::getline(in, line)) return fail("truncated alphabet");
    if (i == 0) {
      if (line != "<unk>") return fail("alphabet must start with <unk>");
      continue;  // Already present.
    }
    profile.alphabet.Intern(line);
  }
  if (profile.alphabet.size() != alphabet_size) {
    return fail("duplicate alphabet symbol");
  }

  size_t pair_count = 0;
  in >> key >> pair_count;
  if (key != "context_pairs") return fail("expected context_pairs");
  if (!in || pair_count > kMaxCount) {
    return fail("context_pairs count out of range");
  }
  for (size_t i = 0; i < pair_count; ++i) {
    std::string caller, callee;
    if (!(in >> caller >> callee)) return fail("truncated context_pairs");
    profile.context_pairs.insert({caller, callee});
  }

  size_t source_count = 0;
  in >> key >> source_count;
  if (key != "labeled_sources") return fail("expected labeled_sources");
  if (!in || source_count > kMaxCount) {
    return fail("labeled_sources count out of range");
  }
  std::getline(in, line);
  for (size_t i = 0; i < source_count; ++i) {
    if (!std::getline(in, line)) return fail("truncated labeled_sources");
    const std::vector<std::string> parts = util::SplitWhitespace(line);
    if (parts.empty()) return fail("empty labeled_sources row");
    profile.labeled_sources[parts[0]] =
        std::vector<std::string>(parts.begin() + 1, parts.end());
  }

  size_t n = 0;
  size_t m = 0;
  in >> key >> n >> m;
  if (key != "hmm") return fail("expected hmm");
  if (!in) return fail("bad hmm dimensions");
  if (n == 0 || m == 0 || n * n > kMaxMatrixCells ||
      m > kMaxMatrixCells / n) {
    return fail("hmm dimensions out of range");
  }
  // The emission matrix must cover exactly the observation alphabet: a
  // symbol id emitted by Encode() indexes column id of B.
  if (m != alphabet_size) {
    return fail("hmm symbol count does not match alphabet size");
  }
  util::Matrix a(n, n);
  util::Matrix b(n, m);
  std::vector<double> pi(n);
  if (version >= 2) {
    in >> key;
    if (key != "a-sparse") return fail("expected a-sparse");
    for (size_t s = 0; s < n; ++s) {
      size_t nnz = 0;
      in >> nnz;
      if (!in || nnz > n) return fail("a-sparse row count out of range");
      size_t prev_col = 0;
      for (size_t k = 0; k < nnz; ++k) {
        size_t col = 0;
        double value = 0.0;
        in >> col >> value;
        if (!in) return fail("truncated a-sparse row");
        if (col >= n || (k > 0 && col <= prev_col)) {
          return fail("a-sparse columns must be increasing and in range");
        }
        a.At(s, col) = value;
        prev_col = col;
      }
    }
  } else {
    for (size_t s = 0; s < n; ++s) {
      for (size_t t = 0; t < n; ++t) in >> a.At(s, t);
    }
  }
  for (size_t s = 0; s < n; ++s) {
    for (size_t o = 0; o < m; ++o) in >> b.At(s, o);
  }
  for (size_t s = 0; s < n; ++s) in >> pi[s];
  if (!in) return fail("truncated hmm parameters");
  profile.model = hmm::HmmModel(std::move(a), std::move(b), std::move(pi));
  ADPROM_RETURN_IF_ERROR(profile.model.Validate(1e-3));
  return std::move(profile);
}

}  // namespace adprom::core
