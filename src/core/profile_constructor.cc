#include "core/profile_constructor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "hmm/batch_forward.h"
#include "hmm/inference.h"
#include "hmm/sparse.h"
#include "ml/kmeans.h"
#include "ml/pca.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace adprom::core {

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// A row whose mass stays below this after normalization received no
/// static probability at all (NormalizeRows leaves all-zero rows at zero,
/// every other row at exactly 1); such rows fall back to the uniform
/// distribution. Sites in statically dead code (infeasible branches
/// pruned by the absint refiner) are the main producers of zero rows.
constexpr double kRowMassEpsilon = 1e-12;

/// Observable of a pCTM site under the profile's labeling mode.
std::string SiteObservable(const analysis::Site& site, bool use_dd_labels) {
  return use_dd_labels ? site.observable : site.callee;
}

/// Builds the pCTV matrix: row per site, columns = incoming transition
/// probabilities (ε + every site) followed by outgoing ones (ε' + every
/// site); dimension 2(n+1), as in the paper's CTV definition. When the
/// dimension exceeds `input_cap`, the (very sparse) vectors are
/// feature-hashed down to `input_cap` dimensions so the PCA eigensolve
/// stays tractable for >900-site programs.
util::Matrix BuildCtvMatrix(const analysis::Ctm& pctm, size_t input_cap) {
  const size_t n = pctm.num_sites();
  const size_t dims = 2 * (n + 1);
  const bool hash = input_cap > 0 && dims > input_cap;
  const size_t out_dims = hash ? input_cap : dims;
  auto fold = [&](size_t j) {
    return hash ? (j * 2654435761ULL) % out_dims : j;
  };
  util::Matrix ctv(n, out_dims);
  for (size_t i = 0; i < n; ++i) {
    ctv.At(i, fold(0)) += pctm.entry_to(i);
    for (size_t j = 0; j < n; ++j)
      ctv.At(i, fold(1 + j)) += pctm.between(j, i);
    ctv.At(i, fold(n + 1)) += pctm.to_exit(i);
    for (size_t j = 0; j < n; ++j)
      ctv.At(i, fold(n + 2 + j)) += pctm.between(i, j);
  }
  return ctv;
}

}  // namespace

ProfileConstructor::ProfileConstructor(ProfileOptions options)
    : options_(std::move(options)) {}

util::Result<ApplicationProfile> ProfileConstructor::Construct(
    const AnalysisResult& analysis, const std::vector<runtime::Trace>& traces,
    ConstructionTimings* timings) const {
  if (traces.empty()) {
    return util::Status::InvalidArgument("no training traces");
  }
  ApplicationProfile profile;
  profile.options = options_;
  const analysis::Ctm& pctm = analysis.program_ctm;
  profile.num_sites = pctm.num_sites();
  if (profile.num_sites == 0) {
    return util::Status::FailedPrecondition(
        "program makes no library calls; nothing to profile");
  }

  // Context pairs: every statically feasible (caller, callee), plus any
  // pair observed during training (dynamic over static union, so training
  // can only widen what is legitimate).
  profile.context_pairs = analysis.ContextPairs();
  for (const runtime::Trace& trace : traces) {
    for (const runtime::CallEvent& event : trace) {
      profile.context_pairs.insert({event.caller, event.callee});
    }
  }

  // Alphabet: static observables first (deterministic order), then any
  // extra observables that only occur dynamically.
  for (size_t i = 0; i < profile.num_sites; ++i) {
    profile.alphabet.Intern(
        SiteObservable(pctm.site(i), options_.use_dd_labels));
    if (options_.use_dd_labels && pctm.site(i).labeled) {
      profile.labeled_sources[pctm.site(i).observable] =
          pctm.site(i).source_tables;
    }
  }
  for (const runtime::Trace& trace : traces) {
    for (const runtime::CallEvent& event : trace) {
      profile.alphabet.Intern(profile.ObservableOf(event));
    }
  }

  // --- Reduction: CTV -> PCA -> k-means (only past the threshold) -------
  auto t0 = std::chrono::steady_clock::now();
  util::Rng rng(options_.seed);
  const size_t n = profile.num_sites;
  std::vector<size_t> cluster_of(n);
  size_t num_states = n;
  if (n > options_.cluster_threshold) {
    const util::Matrix ctv = BuildCtvMatrix(pctm, options_.pca_input_cap);
    ml::PcaOptions pca_options;
    pca_options.target_variance = options_.pca_variance;
    pca_options.max_components = options_.pca_max_components;
    ADPROM_ASSIGN_OR_RETURN(ml::PcaModel pca, ml::FitPca(ctv, pca_options));
    const util::Matrix reduced = pca.ProjectAll(ctv);
    num_states = std::max<size_t>(
        2, static_cast<size_t>(
               std::ceil(options_.cluster_fraction * static_cast<double>(n))));
    ADPROM_ASSIGN_OR_RETURN(ml::KMeansResult clusters,
                            ml::KMeansCluster(reduced, num_states, rng));
    cluster_of = clusters.assignment;
  } else {
    for (size_t i = 0; i < n; ++i) cluster_of[i] = i;
  }
  profile.num_states = num_states;
  if (timings != nullptr) timings->reduction_seconds = SecondsSince(t0);

  // --- HMM initialization ------------------------------------------------
  t0 = std::chrono::steady_clock::now();
  const size_t m = profile.alphabet.size();
  if (options_.init == ProfileOptions::Init::kRandom) {
    profile.model = hmm::HmmModel::Random(num_states, m, rng);
  } else {
    util::Matrix a(num_states, num_states);
    util::Matrix b(num_states, m);
    std::vector<double> pi(num_states, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const size_t si = cluster_of[i];
      pi[si] += pctm.entry_to(i);
      // Emission mass: weight each member site by its total inflow (how
      // often the program reaches it), so a cluster's emission vector is
      // the usage-weighted average of its members' observables.
      const double weight = pctm.Inflow(i) + 1e-9;
      const int obs = profile.alphabet.Lookup(
          SiteObservable(pctm.site(i), options_.use_dd_labels));
      b.At(si, static_cast<size_t>(obs)) += weight;
      for (size_t j = 0; j < n; ++j) {
        const double p = pctm.between(i, j);
        if (p > 0.0) a.At(si, cluster_of[j]) += p;
      }
      // Last-call mass loops back to the initial distribution: traces are
      // windows cut from anywhere, and one run follows another.
      const double exit_mass = pctm.to_exit(i);
      if (exit_mass > 0.0) {
        for (size_t j = 0; j < n; ++j) {
          const double entry = pctm.entry_to(j);
          if (entry > 0.0) a.At(si, cluster_of[j]) += exit_mass * entry;
        }
      }
    }
    a.NormalizeRows();
    b.NormalizeRows();
    // Rows with no static mass fall back to uniform.
    for (size_t s = 0; s < num_states; ++s) {
      if (a.RowSum(s) < kRowMassEpsilon) {
        for (size_t t = 0; t < num_states; ++t)
          a.At(s, t) = 1.0 / static_cast<double>(num_states);
      }
      if (b.RowSum(s) < kRowMassEpsilon) {
        for (size_t o = 0; o < m; ++o)
          b.At(s, o) = 1.0 / static_cast<double>(m);
      }
    }
    double pi_total = 0.0;
    for (double v : pi) pi_total += v;
    for (size_t s = 0; s < num_states; ++s) {
      // Windows start mid-execution, so blend the static entry
      // distribution with uniform mass.
      const double entry_part = pi_total > 0.0 ? pi[s] / pi_total : 0.0;
      pi[s] = 0.5 * entry_part + 0.5 / static_cast<double>(num_states);
    }
    profile.model = hmm::HmmModel(std::move(a), std::move(b), std::move(pi));
  }
  // Structural smoothing: floor B and π but keep A's exact zeros — the
  // statically-infeasible transitions stay impossible, and their zero
  // pattern is what the CSR kernels (and the sparse profile format)
  // exploit. Every window still scores finitely: A's rows are stochastic
  // (uniform fallback above) and B is dense-positive after the floor, so
  // an observation a state "cannot" emit just costs ~log ε.
  profile.model.SmoothEmissions(options_.smoothing);
  ADPROM_RETURN_IF_ERROR(profile.model.Validate());
  if (timings != nullptr) timings->init_seconds = SecondsSince(t0);

  // --- Windows and CSDS split -------------------------------------------
  // The converge sub-dataset is held out at *trace* granularity (the
  // paper: "we kept about 1/5 of the normal data aside"): consecutive
  // windows of one trace overlap in 14 of 15 calls, so a window-level
  // split would leak the held-out data into training.
  std::vector<hmm::ObservationSeq> train_windows;
  std::vector<hmm::ObservationSeq> csds_windows;
  const size_t csds_every =
      options_.csds_fraction > 0.0
          ? std::max<size_t>(2, static_cast<size_t>(
                                    std::llround(1.0 / options_.csds_fraction)))
          : 0;
  size_t trace_index = 0;
  for (const runtime::Trace& trace : traces) {
    const bool hold_out =
        csds_every > 0 && traces.size() >= csds_every &&
        (trace_index++ % csds_every) == csds_every - 1;
    for (const auto& window :
         SlidingWindows(trace, options_.window_length)) {
      hmm::ObservationSeq seq = profile.Encode(window);
      if (hold_out) {
        csds_windows.push_back(std::move(seq));
      } else {
        train_windows.push_back(std::move(seq));
      }
    }
  }
  if (train_windows.empty()) {
    return util::Status::InvalidArgument(
        "training traces produced no windows");
  }
  // Keep the full window sets for the final threshold computation (the
  // threshold must sit below *every* normal window so training traffic is
  // never flagged), but bound the per-iteration work with deterministic
  // uniform subsamples.
  auto subsampled = [](const std::vector<hmm::ObservationSeq>& windows,
                       size_t cap) {
    std::vector<hmm::ObservationSeq> out;
    if (cap == 0 || windows.size() <= cap) {
      out = windows;
      return out;
    }
    const size_t stride = (windows.size() + cap - 1) / cap;
    out.reserve(cap);
    for (size_t i = 0; i < windows.size(); i += stride) {
      out.push_back(windows[i]);
    }
    return out;
  };
  std::vector<hmm::ObservationSeq> bw_windows =
      subsampled(train_windows, options_.max_training_windows);
  // The CSDS is scored after every Baum-Welch iteration; cap it in
  // proportion so early stopping stays cheap on huge trace corpora.
  const std::vector<hmm::ObservationSeq> csds_scored = subsampled(
      csds_windows, options_.max_training_windows == 0
                        ? 0
                        : std::max<size_t>(32,
                                           options_.max_training_windows / 4));

  // --- Baum-Welch with CSDS early stopping -------------------------------
  // One worker pool serves training (sharded E-step) and the final
  // threshold scan. The CSDS score stays serial — it is a float sum whose
  // order must not depend on the thread count — but reuses one forward
  // workspace so the per-iteration scoring allocates nothing.
  t0 = std::chrono::steady_clock::now();
  const size_t num_threads =
      util::ResolveThreadCount(options_.train.num_threads);
  std::unique_ptr<util::ThreadPool> pool;
  if (num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(num_threads);
  }
  hmm::ForwardWorkspace csds_workspace;
  hmm::BatchWorkspace csds_batch_ws;
  std::vector<double> csds_scores(csds_scored.size());
  const bool use_batch =
      !options_.dense_kernels && options_.batch_width > 0;
  hmm::BatchOptions batch_options;
  batch_options.width = std::max<size_t>(1, options_.batch_width);
  batch_options.no_simd = options_.no_simd;
  // Scores a run of consecutive equal-length windows from `windows`
  // through the batched engine, writing per-window scores into `out`
  // (bit-identical to PerSymbolLogLikelihood per window); falls back to
  // the per-window kernel if the batch is rejected. Returns the run end.
  auto score_run = [](const hmm::BatchScorer& scorer,
                      const std::vector<hmm::ObservationSeq>& windows,
                      size_t begin, size_t end, hmm::BatchWorkspace* ws,
                      std::vector<hmm::SymbolSpan>* spans, double* out) {
    size_t stop = begin + 1;
    while (stop < end &&
           windows[stop].size() == windows[begin].size()) {
      ++stop;
    }
    spans->clear();
    for (size_t i = begin; i < stop; ++i) spans->emplace_back(windows[i]);
    const auto status = scorer.ScoreBatch(
        *spans, /*triage_threshold=*/0.0, ws,
        std::span<double>(out + begin, stop - begin));
    if (!status.ok()) {
      hmm::ForwardWorkspace fallback;
      for (size_t i = begin; i < stop; ++i) {
        auto ll = hmm::PerSymbolLogLikelihood(*scorer.model(), windows[i],
                                              &fallback);
        out[i] = ll.ok() ? *ll : -1e9;
      }
    }
    return stop;
  };
  std::vector<hmm::SymbolSpan> csds_spans;
  auto csds_score = [&](const hmm::HmmModel& model) {
    if (csds_scored.empty()) return 0.0;
    // One CSR build per Baum-Welch iteration, amortized over the whole
    // held-out set (bit-identical to dense scoring by construction).
    hmm::SparseHmm sparse_model;
    const bool use_sparse = !options_.dense_kernels;
    if (use_sparse) sparse_model = hmm::SparseHmm(model);
    if (use_batch) {
      // Batched per-window scores, then a serial sum in the original
      // window order — each score is bit-identical to the per-window
      // kernel's and the sum order is unchanged, so the CSDS mean (and
      // the early-stopping decision) is bit-identical too.
      const hmm::BatchScorer scorer(&sparse_model, batch_options);
      for (size_t i = 0; i < csds_scored.size();) {
        i = score_run(scorer, csds_scored, i, csds_scored.size(),
                      &csds_batch_ws, &csds_spans, csds_scores.data());
      }
      double total = 0.0;
      for (const double score : csds_scores) total += score;
      return total / static_cast<double>(csds_scored.size());
    }
    double total = 0.0;
    for (const hmm::ObservationSeq& seq : csds_scored) {
      auto ll = use_sparse
                    ? hmm::PerSymbolLogLikelihood(sparse_model, seq,
                                                  &csds_workspace)
                    : hmm::PerSymbolLogLikelihood(model, seq,
                                                  &csds_workspace);
      total += ll.ok() ? *ll : -1e9;
    }
    return total / static_cast<double>(csds_scored.size());
  };

  hmm::TrainOptions train_options = options_.train;
  // Keep the pCTM's zero transitions through training (they are the
  // sparsity the CSR kernels rely on), and honour the ablation switches.
  train_options.smooth_transitions = false;
  train_options.dense_kernels = options_.dense_kernels;
  train_options.batch_width = options_.batch_width;
  train_options.no_simd = options_.no_simd;
  double best_csds = -std::numeric_limits<double>::infinity();
  int bad_rounds = 0;
  if (!csds_windows.empty()) {
    // Stop only when the held-out score *degrades* persistently: EM keeps
    // improving the training likelihood, and a flat CSDS score means the
    // model is still sharpening without overfitting. (A
    // stop-on-no-improvement rule quits after a handful of iterations with
    // a blurred model that scores repetition attacks as plausible.)
    constexpr double kDegradeTolerance = 0.02;
    train_options.keep_going = [&](int, const hmm::HmmModel& model) {
      const double score = csds_score(model);
      if (score > best_csds) best_csds = score;
      if (score < best_csds - kDegradeTolerance) {
        ++bad_rounds;
      } else {
        bad_rounds = 0;
      }
      return bad_rounds < options_.csds_patience;
    };
  }
  ADPROM_ASSIGN_OR_RETURN(
      profile.train_stats,
      hmm::BaumWelchTrain(&profile.model, bw_windows, train_options,
                          pool.get()));
  if (timings != nullptr) timings->training_seconds = SecondsSince(t0);

  // --- Threshold below every normal window --------------------------------
  // Both the held-out CSDS and the full training set enter the scored
  // pool: the guarantee is that nothing observed during training is ever
  // flagged. The scan fans window blocks across the workers — min is
  // order-independent, so the result does not depend on the thread count.
  std::vector<const hmm::ObservationSeq*> scored;
  scored.reserve(train_windows.size() + csds_windows.size());
  for (const auto* window_set : {&train_windows, &csds_windows}) {
    for (const hmm::ObservationSeq& seq : *window_set) scored.push_back(&seq);
  }
  const size_t num_blocks =
      pool == nullptr
          ? 1
          : std::min(scored.size(), 4 * pool->num_workers());
  std::vector<double> block_min(
      num_blocks, std::numeric_limits<double>::max());
  // One CSR view of the trained model, shared read-only by every block.
  hmm::SparseHmm sparse_model;
  const bool use_sparse = !options_.dense_kernels;
  if (use_sparse) sparse_model = hmm::SparseHmm(profile.model);
  const hmm::BatchScorer threshold_scorer(&sparse_model, batch_options);
  util::ParallelFor(pool.get(), num_blocks, [&](size_t blk) {
    const size_t begin = blk * scored.size() / num_blocks;
    const size_t end = (blk + 1) * scored.size() / num_blocks;
    if (use_batch) {
      // Runs of equal-length windows go through the batched scorer; each
      // per-window score is bit-identical to the per-window kernel's, and
      // min is order-independent, so the chosen threshold is bit-identical
      // for every batch width and thread count.
      hmm::BatchWorkspace ws;
      threshold_scorer.Reserve(&ws);
      std::vector<hmm::SymbolSpan> spans;
      std::vector<double> scores;
      for (size_t i = begin; i < end;) {
        size_t stop = i + 1;
        while (stop < end && scored[stop]->size() == scored[i]->size()) {
          ++stop;
        }
        spans.clear();
        for (size_t j = i; j < stop; ++j) spans.emplace_back(*scored[j]);
        scores.resize(stop - i);
        if (threshold_scorer
                .ScoreBatch(spans, /*triage_threshold=*/0.0, &ws,
                            std::span<double>(scores))
                .ok()) {
          for (const double score : scores) {
            block_min[blk] = std::min(block_min[blk], score);
          }
        } else {
          for (size_t j = i; j < stop; ++j) {
            auto ll = hmm::PerSymbolLogLikelihood(sparse_model, *scored[j],
                                                  &ws.forward);
            if (ll.ok()) block_min[blk] = std::min(block_min[blk], *ll);
          }
        }
        i = stop;
      }
      return;
    }
    hmm::ForwardWorkspace workspace;
    for (size_t i = begin; i < end; ++i) {
      auto ll = use_sparse ? hmm::PerSymbolLogLikelihood(
                                 sparse_model, *scored[i], &workspace)
                           : hmm::PerSymbolLogLikelihood(
                                 profile.model, *scored[i], &workspace);
      if (ll.ok()) block_min[blk] = std::min(block_min[blk], *ll);
    }
  });
  double min_score = std::numeric_limits<double>::max();
  for (double v : block_min) min_score = std::min(min_score, v);
  profile.threshold = min_score - options_.threshold_margin;
  return std::move(profile);
}

}  // namespace adprom::core
