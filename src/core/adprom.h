#ifndef ADPROM_CORE_ADPROM_H_
#define ADPROM_CORE_ADPROM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/detection_engine.h"
#include "core/profile.h"
#include "core/profile_constructor.h"
#include "db/database.h"
#include "prog/cfg.h"
#include "prog/program.h"
#include "runtime/interpreter.h"
#include "util/status.h"

namespace adprom::core {

/// One training/monitoring input: the stdin feed of a program run.
struct TestCase {
  std::vector<std::string> inputs;
};

/// Produces a fresh database (with schema + data) for each program run, so
/// runs are independent and reproducible. May be empty for programs that
/// issue no DB calls.
using DbFactory = std::function<std::unique_ptr<db::Database>()>;

/// Facade tying the whole system together: the training phase (Analyzer →
/// Calls Collector over the test suite → Profile Constructor) and the
/// detection phase (Calls Collector → Detection Engine).
class AdProm {
 public:
  /// Runs `program` once with `test_case` inputs, collecting the library
  /// call trace through the (light) Calls Collector. `io` optionally
  /// receives the run's captured output channels.
  static util::Result<runtime::Trace> CollectTrace(
      const prog::Program& program,
      const std::map<std::string, prog::Cfg>& cfgs,
      const DbFactory& db_factory, const TestCase& test_case,
      runtime::ProgramIo* io = nullptr);

  /// Collects one trace per test case.
  static util::Result<std::vector<runtime::Trace>> CollectTraces(
      const prog::Program& program,
      const std::map<std::string, prog::Cfg>& cfgs,
      const DbFactory& db_factory, const std::vector<TestCase>& test_cases);

  /// Full training phase: static analysis of `program`, trace collection
  /// over `test_cases`, profile construction. `timings` optionally
  /// receives the Profile Constructor step timings.
  static util::Result<AdProm> Train(const prog::Program& program,
                                    const DbFactory& db_factory,
                                    const std::vector<TestCase>& test_cases,
                                    ProfileOptions options = ProfileOptions(),
                                    ConstructionTimings* timings = nullptr);

  const ApplicationProfile& profile() const { return profile_; }
  const AnalysisResult& analysis() const { return analysis_; }
  const std::vector<runtime::Trace>& training_traces() const {
    return training_traces_;
  }

  /// Lowers the detection threshold (or raises it) — the "adaptive
  /// threshold" hook from the paper's threshold-selection discussion.
  void set_threshold(double threshold) { profile_.threshold = threshold; }

  /// Result of monitoring one run of a (possibly tampered) program build.
  struct MonitorResult {
    runtime::Trace trace;
    std::vector<Detection> detections;  // one per window
    runtime::ProgramIo io;

    /// The alarms among `detections`.
    std::vector<Detection> Alarms() const;
    bool HasAlarm() const;
    /// True if any alarm carries resolved DB provenance.
    bool ConnectedToSource() const;
  };

  /// Detection phase: runs the *deployed* program (its own CFGs are built
  /// here — the deployed binary may differ from the trained one, which is
  /// exactly what the attacks do) and scores the collected trace.
  util::Result<MonitorResult> Monitor(const prog::Program& deployed,
                                      const DbFactory& db_factory,
                                      const TestCase& test_case) const;

 private:
  AnalysisResult analysis_;
  ApplicationProfile profile_;
  std::vector<runtime::Trace> training_traces_;
};

}  // namespace adprom::core

#endif  // ADPROM_CORE_ADPROM_H_
