#ifndef ADPROM_CORE_ANALYZER_H_
#define ADPROM_CORE_ANALYZER_H_

#include <map>
#include <set>
#include <string>

#include "analysis/absint/cfg_refiner.h"
#include "analysis/absint/engine.h"
#include "analysis/aggregation.h"
#include "analysis/ctm.h"
#include "analysis/forecast.h"
#include "analysis/summary_cache.h"
#include "analysis/taint.h"
#include "db/schema.h"
#include "prog/call_graph.h"
#include "prog/cfg.h"
#include "prog/program.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace adprom::core {

/// Everything the static Analyzer derives from an application program:
/// CFGs, call graph, the DDG (taint) with labeled output sites, the
/// labeled per-function CTMs, and the aggregated program CTM (pCTM).
struct AnalysisResult {
  std::map<std::string, prog::Cfg> cfgs;
  prog::CallGraph call_graph;
  analysis::TaintResult taint;
  /// Branch facts and diagnostics from the abstract interpreter (empty
  /// when absint_refinement is off).
  analysis::absint::AbsintResult absint;
  /// Edges pruned / loops bounded by the CFG refiner.
  analysis::absint::RefinementSummary refinement;
  std::map<std::string, analysis::Ctm> function_ctms;
  analysis::Ctm program_ctm;
  /// Wall-clock seconds per step, for the Table VIII bench and
  /// `adprom analyze --stats`.
  double cfg_seconds = 0.0;
  double absint_seconds = 0.0;
  double taint_seconds = 0.0;
  double forecast_seconds = 0.0;
  double aggregation_seconds = 0.0;
  /// Hit/miss counts of the analyzer's aggregation memo for this run (all
  /// misses on an analyzer's first Analyze call, hits for every function
  /// whose transitive callee CTMs are unchanged on later calls).
  analysis::AggregationStats aggregation_stats;
  /// Per-pass summary-cache counters for this run (all zero when the
  /// incremental cache is disabled). The `ifds` slot stays zero here —
  /// the witness engine runs under `adprom lint`, not the Analyzer.
  analysis::AnalysisCacheStats cache_stats;

  /// All (caller function, callee) pairs that appear as call sites in the
  /// program — the context set the Detection Engine checks for the
  /// OutOfContext flag.
  std::set<std::pair<std::string, std::string>> ContextPairs() const;
};

struct AnalyzerOptions {
  analysis::TaintConfig taint_config = analysis::TaintConfig::Default();
  /// Ablation switch: label the DDG with the original flow-insensitive
  /// taint pass instead of the flow-sensitive dataflow framework. The
  /// flow-sensitive default labels a subset of the same sinks (strong
  /// updates kill stale taint), shrinking the DataLeak alphabet.
  bool flow_insensitive_taint = false;
  /// Abstract interpretation (constants + intervals) over each function:
  /// statically infeasible branch edges are pruned from the forecast and
  /// counted loops replace the run-once assumption with their exact trip
  /// count, sharpening the pCTM. Off (`--no-absint`) reproduces the
  /// unrefined pipeline bit for bit.
  bool absint_refinement = true;
  /// Column-level DDG provenance: labeled sites additionally carry the
  /// sorted `table.column` sets their sources can read, resolved from
  /// static query literals (`SELECT *` expands through `schemas`). The
  /// ablation (`--no-column-taint`) leaves `Site::source_columns` empty;
  /// everything else in the pCTM — and the serialized profile — is
  /// bit-identical either way.
  bool column_taint = true;
  /// CREATE TABLE schemas for the column expansion (may be empty).
  db::SchemaCatalog schemas;
  /// Optional pool for the flow-sensitive solver (call-graph SCCs of one
  /// level run concurrently); results are identical for any pool.
  util::ThreadPool* pool = nullptr;
  /// Master switch for the incremental per-function summary caches
  /// (taint, absint, forecast). Off reproduces the uncached pipeline —
  /// results are bit-identical either way (property-tested); only the
  /// warm-rerun cost and the reported cache stats change. The aggregation
  /// memo predates this switch and stays on regardless.
  bool incremental = true;
  /// Optional external cache (e.g. one loaded from an `--analysis-cache`
  /// directory and saved back after the run). When null the analyzer uses
  /// its own private cache, which survives across Analyze calls on the
  /// same analyzer but not across analyzers.
  analysis::AnalysisCache* analysis_cache = nullptr;
};

/// The paper's Analyzer component: performs the whole static phase —
/// CFG/CG extraction, data-flow (DDG) labeling, probability forecast, and
/// CTM aggregation — on one application program.
class Analyzer {
 public:
  Analyzer() : Analyzer(AnalyzerOptions()) {}
  explicit Analyzer(AnalyzerOptions options);
  explicit Analyzer(analysis::TaintConfig taint_config);

  /// Analyzes a finalized program. Repeated calls on the same analyzer
  /// reuse the per-function aggregation memo: functions whose own CTM and
  /// transitive callee CTMs are unchanged skip the (quadratic) elimination
  /// and copy the cached result, which keeps the pCTM bit-identical.
  util::Result<AnalysisResult> Analyze(const prog::Program& program) const;

 private:
  /// The cache in effect for this analyzer: the external one when
  /// `options_.analysis_cache` is set, else the private `cache_`.
  analysis::AnalysisCache* cache() const;

  AnalyzerOptions options_;
  /// Private cache (summary stores + aggregation memo) used when no
  /// external cache is supplied. It survives across Analyze calls but not
  /// across analyzers. Mutable: Analyze is logically const (identical
  /// output with or without the cache). Not thread-safe — don't call
  /// Analyze on one analyzer from several threads at once.
  mutable analysis::AnalysisCache cache_;
};

}  // namespace adprom::core

#endif  // ADPROM_CORE_ANALYZER_H_
