#ifndef ADPROM_CORE_ANALYZER_H_
#define ADPROM_CORE_ANALYZER_H_

#include <map>
#include <set>
#include <string>

#include "analysis/aggregation.h"
#include "analysis/ctm.h"
#include "analysis/forecast.h"
#include "analysis/taint.h"
#include "prog/call_graph.h"
#include "prog/cfg.h"
#include "prog/program.h"
#include "util/status.h"

namespace adprom::core {

/// Everything the static Analyzer derives from an application program:
/// CFGs, call graph, the DDG (taint) with labeled output sites, the
/// labeled per-function CTMs, and the aggregated program CTM (pCTM).
struct AnalysisResult {
  std::map<std::string, prog::Cfg> cfgs;
  prog::CallGraph call_graph;
  analysis::TaintResult taint;
  std::map<std::string, analysis::Ctm> function_ctms;
  analysis::Ctm program_ctm;
  /// Wall-clock seconds per step, for the Table VIII bench.
  double cfg_seconds = 0.0;
  double forecast_seconds = 0.0;
  double aggregation_seconds = 0.0;

  /// All (caller function, callee) pairs that appear as call sites in the
  /// program — the context set the Detection Engine checks for the
  /// OutOfContext flag.
  std::set<std::pair<std::string, std::string>> ContextPairs() const;
};

/// The paper's Analyzer component: performs the whole static phase —
/// CFG/CG extraction, data-flow (DDG) labeling, probability forecast, and
/// CTM aggregation — on one application program.
class Analyzer {
 public:
  explicit Analyzer(
      analysis::TaintConfig taint_config = analysis::TaintConfig::Default());

  /// Analyzes a finalized program.
  util::Result<AnalysisResult> Analyze(const prog::Program& program) const;

 private:
  analysis::TaintConfig taint_config_;
};

}  // namespace adprom::core

#endif  // ADPROM_CORE_ANALYZER_H_
