#include "core/detection_engine.h"

#include <set>

#include "hmm/inference.h"

namespace adprom::core {

DetectionEngine::DetectionEngine(const ApplicationProfile* profile)
    : profile_(profile) {}

Detection DetectionEngine::EvaluateWindow(
    std::span<const runtime::CallEvent> window, size_t window_start) const {
  Detection detection;
  detection.window_start = window_start;

  // Collect TD provenance present in the window. Only a profile built
  // with data-flow labels (AD-PROM) can see taint: the CMarkov baseline
  // observes plain call names and cannot connect activity to its source.
  std::set<std::string> sources;
  bool has_td_output = false;
  for (const runtime::CallEvent& event : window) {
    if (!profile_->options.use_dd_labels) break;
    if (event.td_output) {
      has_td_output = true;
      sources.insert(event.source_tables.begin(), event.source_tables.end());
      // Supplement with the statically resolved tables for this label.
      auto it = profile_->labeled_sources.find(event.Observable());
      if (it != profile_->labeled_sources.end()) {
        sources.insert(it->second.begin(), it->second.end());
      }
    }
  }

  // Out-of-context check: a library call issued from a function that never
  // issues it, statically or during training.
  for (const runtime::CallEvent& event : window) {
    if (profile_->context_pairs.count({event.caller, event.callee}) == 0) {
      detection.flag = DetectionFlag::kOutOfContext;
      detection.detail = event.callee + " called from " + event.caller;
      break;
    }
  }

  const hmm::ObservationSeq seq = profile_->Encode(window);
  auto score = hmm::PerSymbolLogLikelihood(profile_->model, seq);
  detection.score = score.ok() ? *score : -1e9;

  // A symbol outside the profile's alphabet is not a *legitimate call*
  // (paper §V-D footnote: calls observed during analysis and training).
  // Its true emission probability is zero — the smoothed model only
  // floors it for numerical stability — so the window's real P(cs|λ) is 0
  // and sits below any threshold.
  for (int symbol : seq) {
    if (symbol == profile_->alphabet.unk_id()) {
      detection.score = -1e9;
      if (detection.detail.empty()) detection.detail = "unknown call symbol";
      break;
    }
  }

  if (detection.flag != DetectionFlag::kOutOfContext) {
    if (detection.score < profile_->threshold) {
      detection.flag = has_td_output ? DetectionFlag::kDataLeak
                                     : DetectionFlag::kAnomalous;
    } else {
      detection.flag = DetectionFlag::kNormal;
    }
  }
  if (detection.IsAlarm() && has_td_output) {
    detection.source_tables.assign(sources.begin(), sources.end());
  }
  return detection;
}

std::vector<Detection> DetectionEngine::MonitorTrace(
    const runtime::Trace& trace) const {
  std::vector<Detection> out;
  const auto windows = SlidingWindows(trace, profile_->options.window_length);
  out.reserve(windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    out.push_back(EvaluateWindow(windows[i], i));
  }
  return out;
}

std::vector<Detection> DetectionEngine::Alarms(
    const runtime::Trace& trace) const {
  std::vector<Detection> out;
  for (Detection& d : MonitorTrace(trace)) {
    if (d.IsAlarm()) out.push_back(std::move(d));
  }
  return out;
}

}  // namespace adprom::core
