#include "core/detection_engine.h"

#include <algorithm>
#include <set>

namespace adprom::core {

DetectionEngine::DetectionEngine(const ApplicationProfile* profile)
    : profile_(profile), use_sparse_(!profile->options.dense_kernels) {
  if (use_sparse_) sparse_ = hmm::SparseHmm(profile->model);
}

Detection DetectionEngine::EvaluateEncoded(
    std::span<const runtime::CallEvent> window, hmm::SymbolSpan seq,
    size_t window_start, hmm::ForwardWorkspace* workspace) const {
  Detection detection;
  detection.window_start = window_start;

  // Out-of-context check: a library call issued from a function that never
  // issues it, statically or during training.
  for (const runtime::CallEvent& event : window) {
    if (profile_->context_pairs.count({event.caller, event.callee}) == 0) {
      detection.flag = DetectionFlag::kOutOfContext;
      detection.detail = event.callee + " called from " + event.caller;
      break;
    }
  }

  auto score =
      use_sparse_
          ? hmm::PerSymbolLogLikelihood(sparse_, seq, workspace)
          : hmm::PerSymbolLogLikelihood(profile_->model, seq, workspace);
  detection.score = score.ok() ? *score : -1e9;

  // A symbol outside the profile's alphabet is not a *legitimate call*
  // (paper §V-D footnote: calls observed during analysis and training).
  // Its true emission probability is zero — the smoothed model only
  // floors it for numerical stability — so the window's real P(cs|λ) is 0
  // and sits below any threshold.
  for (int symbol : seq) {
    if (symbol == profile_->alphabet.unk_id()) {
      detection.score = -1e9;
      if (detection.detail.empty()) detection.detail = "unknown call symbol";
      break;
    }
  }

  // TD presence in the window. Only a profile built with data-flow labels
  // (AD-PROM) can see taint: the CMarkov baseline observes plain call
  // names and cannot connect activity to its source — those profiles skip
  // the provenance scan entirely.
  bool has_td_output = false;
  if (profile_->options.use_dd_labels) {
    for (const runtime::CallEvent& event : window) {
      if (event.td_output) {
        has_td_output = true;
        break;
      }
    }
  }

  if (detection.flag != DetectionFlag::kOutOfContext) {
    if (detection.score < profile_->threshold) {
      detection.flag = has_td_output ? DetectionFlag::kDataLeak
                                     : DetectionFlag::kAnomalous;
    } else {
      detection.flag = DetectionFlag::kNormal;
    }
  }
  if (detection.IsAlarm() && has_td_output) {
    // Resolve the TD provenance only for windows that actually alarm: the
    // dynamic source tables, supplemented with the statically resolved
    // tables for each label.
    std::set<std::string> sources;
    for (const runtime::CallEvent& event : window) {
      if (!event.td_output) continue;
      sources.insert(event.source_tables.begin(), event.source_tables.end());
      auto it = profile_->labeled_sources.find(event.Observable());
      if (it != profile_->labeled_sources.end()) {
        sources.insert(it->second.begin(), it->second.end());
      }
    }
    detection.source_tables.assign(sources.begin(), sources.end());
  }
  return detection;
}

Detection DetectionEngine::EvaluateWindow(
    std::span<const runtime::CallEvent> window, size_t window_start) const {
  const hmm::ObservationSeq seq = profile_->Encode(window);
  hmm::ForwardWorkspace workspace;
  return EvaluateEncoded(window, seq, window_start, &workspace);
}

std::vector<Detection> DetectionEngine::MonitorTraceInto(
    const runtime::Trace& trace, hmm::ForwardWorkspace* workspace) const {
  std::vector<Detection> out;
  // Encode the whole trace once; window i's symbols are the slice
  // [i, i+len) of the buffer (Encode is per-event, so the slice equals
  // what encoding the window would produce).
  const hmm::ObservationSeq encoded = profile_->Encode(trace);
  const auto windows = SlidingWindows(trace, profile_->options.window_length);
  out.reserve(windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    const size_t offset =
        static_cast<size_t>(windows[i].data() - trace.data());
    const hmm::SymbolSpan seq(encoded.data() + offset, windows[i].size());
    out.push_back(EvaluateEncoded(windows[i], seq, i, workspace));
  }
  return out;
}

std::vector<Detection> DetectionEngine::MonitorTrace(
    const runtime::Trace& trace) const {
  hmm::ForwardWorkspace workspace;
  workspace.Reserve(profile_->options.window_length,
                    profile_->model.num_states());
  return MonitorTraceInto(trace, &workspace);
}

std::vector<std::vector<Detection>> DetectionEngine::MonitorTraces(
    const std::vector<runtime::Trace>& traces,
    util::ThreadPool* pool) const {
  std::vector<std::vector<Detection>> out(traces.size());
  if (traces.empty()) return out;
  // Block decomposition, one reserved workspace per block: every trace in
  // a block reuses the same alpha/scale buffers, so the steady-state batch
  // path allocates nothing per trace (the streaming service gets the same
  // property from its per-session workspaces).
  const size_t num_blocks =
      pool == nullptr ? 1
                      : std::min(traces.size(), 4 * pool->num_workers());
  util::ParallelFor(pool, num_blocks, [&](size_t blk) {
    hmm::ForwardWorkspace workspace;
    workspace.Reserve(profile_->options.window_length,
                      profile_->model.num_states());
    const size_t begin = blk * traces.size() / num_blocks;
    const size_t end = (blk + 1) * traces.size() / num_blocks;
    for (size_t i = begin; i < end; ++i) {
      out[i] = MonitorTraceInto(traces[i], &workspace);
    }
  });
  return out;
}

std::vector<Detection> DetectionEngine::Alarms(
    const runtime::Trace& trace) const {
  std::vector<Detection> out;
  for (Detection& d : MonitorTrace(trace)) {
    if (d.IsAlarm()) out.push_back(std::move(d));
  }
  return out;
}

}  // namespace adprom::core
