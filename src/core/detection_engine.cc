#include "core/detection_engine.h"

#include <algorithm>
#include <set>

namespace adprom::core {

DetectionEngine::DetectionEngine(const ApplicationProfile* profile)
    : profile_(profile), use_sparse_(!profile->options.dense_kernels) {
  if (use_sparse_) {
    sparse_ = hmm::SparseHmm(profile->model);
    if (profile->options.batch_width > 0) {
      hmm::BatchOptions batch_options;
      batch_options.width = profile->options.batch_width;
      batch_options.no_simd = profile->options.no_simd;
      batch_options.triage = profile->options.triage;
      batch_ = hmm::BatchScorer(&sparse_, batch_options);
    }
  }
}

Detection DetectionEngine::AssembleVerdict(
    std::span<const runtime::CallEvent> window, hmm::SymbolSpan seq,
    size_t window_start, double score) const {
  Detection detection;
  detection.window_start = window_start;
  detection.score = score;

  // Out-of-context check: a library call issued from a function that never
  // issues it, statically or during training.
  for (const runtime::CallEvent& event : window) {
    if (!profile_->context_pairs.contains({event.caller, event.callee})) {
      detection.flag = DetectionFlag::kOutOfContext;
      detection.detail = event.callee + " called from " + event.caller;
      break;
    }
  }

  // A symbol outside the profile's alphabet is not a *legitimate call*
  // (paper §V-D footnote: calls observed during analysis and training).
  // Its true emission probability is zero — the smoothed model only
  // floors it for numerical stability — so the window's real P(cs|λ) is 0
  // and sits below any threshold.
  for (int symbol : seq) {
    if (symbol == profile_->alphabet.unk_id()) {
      detection.score = -1e9;
      if (detection.detail.empty()) detection.detail = "unknown call symbol";
      break;
    }
  }

  // TD presence in the window. Only a profile built with data-flow labels
  // (AD-PROM) can see taint: the CMarkov baseline observes plain call
  // names and cannot connect activity to its source — those profiles skip
  // the provenance scan entirely.
  bool has_td_output = false;
  if (profile_->options.use_dd_labels) {
    for (const runtime::CallEvent& event : window) {
      if (event.td_output) {
        has_td_output = true;
        break;
      }
    }
  }

  if (detection.flag != DetectionFlag::kOutOfContext) {
    if (detection.score < profile_->threshold) {
      detection.flag = has_td_output ? DetectionFlag::kDataLeak
                                     : DetectionFlag::kAnomalous;
    } else {
      detection.flag = DetectionFlag::kNormal;
    }
  }
  if (detection.IsAlarm() && has_td_output) {
    // Resolve the TD provenance only for windows that actually alarm: the
    // dynamic source tables, supplemented with the statically resolved
    // tables for each label.
    std::set<std::string> sources;
    for (const runtime::CallEvent& event : window) {
      if (!event.td_output) continue;
      sources.insert(event.source_tables.begin(), event.source_tables.end());
      auto it = profile_->labeled_sources.find(event.Observable());
      if (it != profile_->labeled_sources.end()) {
        sources.insert(it->second.begin(), it->second.end());
      }
    }
    detection.source_tables.assign(sources.begin(), sources.end());
  }
  return detection;
}

Detection DetectionEngine::EvaluateEncoded(
    std::span<const runtime::CallEvent> window, hmm::SymbolSpan seq,
    size_t window_start, hmm::ForwardWorkspace* workspace) const {
  auto score =
      use_sparse_
          ? hmm::PerSymbolLogLikelihood(sparse_, seq, workspace)
          : hmm::PerSymbolLogLikelihood(profile_->model, seq, workspace);
  return AssembleVerdict(window, seq, window_start,
                         score.ok() ? *score : -1e9);
}

void DetectionEngine::ScoreWindows(std::span<const hmm::SymbolSpan> seqs,
                                   hmm::BatchWorkspace* ws,
                                   std::span<double> out) const {
  if (seqs.empty()) return;
  if (batch_.enabled()) {
    // The triage threshold is the profile threshold: a certified window's
    // exact score provably clears it, so AssembleVerdict's comparison
    // lands on the same side either way.
    util::Status status =
        batch_.ScoreBatch(seqs, profile_->threshold, ws, out);
    if (status.ok()) return;
    // Fall through to the window-at-a-time path (mixed-length or invalid
    // input; EvaluateEncoded's score semantics apply per window).
  }
  for (size_t i = 0; i < seqs.size(); ++i) {
    auto score =
        use_sparse_
            ? hmm::PerSymbolLogLikelihood(sparse_, seqs[i], &ws->forward)
            : hmm::PerSymbolLogLikelihood(profile_->model, seqs[i],
                                          &ws->forward);
    out[i] = score.ok() ? *score : -1e9;
  }
}

void DetectionEngine::ReserveWorkspace(hmm::BatchWorkspace* ws) const {
  ws->forward.Reserve(profile_->options.window_length,
                      profile_->model.num_states());
  if (batch_.enabled()) batch_.Reserve(ws);
}

Detection DetectionEngine::EvaluateWindow(
    std::span<const runtime::CallEvent> window, size_t window_start) const {
  const hmm::ObservationSeq seq = profile_->Encode(window);
  hmm::ForwardWorkspace workspace;
  return EvaluateEncoded(window, seq, window_start, &workspace);
}

std::vector<Detection> DetectionEngine::MonitorTraceInto(
    const runtime::Trace& trace, hmm::BatchWorkspace* ws) const {
  std::vector<Detection> out;
  // Encode the whole trace once; window i's symbols are the slice
  // [i, i+len) of the buffer (Encode is per-event, so the slice equals
  // what encoding the window would produce).
  const hmm::ObservationSeq encoded = profile_->Encode(trace);
  const auto windows = SlidingWindows(trace, profile_->options.window_length);
  out.reserve(windows.size());
  // Stage every window span — SlidingWindows guarantees they share one
  // length — score the whole trace through the batch engine, then
  // assemble the verdicts.
  ws->spans.clear();
  for (const auto& window : windows) {
    const size_t offset = static_cast<size_t>(window.data() - trace.data());
    ws->spans.emplace_back(encoded.data() + offset, window.size());
  }
  ws->scores.resize(windows.size());
  ScoreWindows(ws->spans, ws, ws->scores);
  for (size_t i = 0; i < windows.size(); ++i) {
    out.push_back(AssembleVerdict(windows[i], ws->spans[i], i,
                                  ws->scores[i]));
  }
  return out;
}

std::vector<Detection> DetectionEngine::MonitorTrace(
    const runtime::Trace& trace) const {
  hmm::BatchWorkspace workspace;
  ReserveWorkspace(&workspace);
  return MonitorTraceInto(trace, &workspace);
}

std::vector<std::vector<Detection>> DetectionEngine::MonitorTraces(
    const std::vector<runtime::Trace>& traces,
    util::ThreadPool* pool) const {
  std::vector<std::vector<Detection>> out(traces.size());
  if (traces.empty()) return out;
  // Block decomposition, one reserved workspace per block: every trace in
  // a block reuses the same activation/alpha buffers, so the steady-state
  // batch path allocates nothing per trace (the streaming service gets the
  // same property from its per-session workspaces).
  const size_t num_blocks =
      pool == nullptr ? 1
                      : std::min(traces.size(), 4 * pool->num_workers());
  util::ParallelFor(pool, num_blocks, [&](size_t blk) {
    hmm::BatchWorkspace workspace;
    ReserveWorkspace(&workspace);
    const size_t begin = blk * traces.size() / num_blocks;
    const size_t end = (blk + 1) * traces.size() / num_blocks;
    for (size_t i = begin; i < end; ++i) {
      out[i] = MonitorTraceInto(traces[i], &workspace);
    }
  });
  return out;
}

std::vector<Detection> DetectionEngine::Alarms(
    const runtime::Trace& trace) const {
  std::vector<Detection> out;
  for (Detection& d : MonitorTrace(trace)) {
    if (d.IsAlarm()) out.push_back(std::move(d));
  }
  return out;
}

}  // namespace adprom::core
