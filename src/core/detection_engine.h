#ifndef ADPROM_CORE_DETECTION_ENGINE_H_
#define ADPROM_CORE_DETECTION_ENGINE_H_

#include <span>
#include <vector>

#include "core/flags.h"
#include "core/profile.h"
#include "hmm/batch_forward.h"
#include "hmm/inference.h"
#include "hmm/sparse.h"
#include "runtime/call_event.h"
#include "util/thread_pool.h"

namespace adprom::core {

/// The paper's Detection Engine: receives n-length call sequences from the
/// Calls Collector, computes P(cs | λ) with the trained HMM, compares it
/// to the profile threshold, and raises one of the four flags. With
/// data-flow labels enabled it also reports which DB tables the involved
/// targeted data came from.
///
/// Throughput design: MonitorTrace encodes the trace into HMM symbols
/// *once* and scores each overlapping window as a slice of that buffer —
/// zero per-window heap allocations in steady state. Ready windows are
/// scored through the batched engine (hmm::BatchScorer): up to
/// ProfileOptions::batch_width windows advance together per forward step,
/// sweeping the transition CSR once per step instead of once per window,
/// with lane-per-window SIMD kernels that stay bit-identical to scalar
/// ForwardInto. MonitorTraces cuts the traces into blocks fanned across a
/// worker pool; each block reuses one reserved workspace for all of its
/// traces. Set ProfileOptions::dense_kernels or batch_width = 0 before
/// constructing the engine to force the original window-at-a-time path.
class DetectionEngine {
 public:
  /// `profile` must outlive the engine.
  explicit DetectionEngine(const ApplicationProfile* profile);

  /// The batch scorer holds a pointer to this engine's CSR compilation, so
  /// an engine cannot be copied or moved without dangling it.
  DetectionEngine(const DetectionEngine&) = delete;
  DetectionEngine& operator=(const DetectionEngine&) = delete;

  /// Scores one n-window starting at `window_start` of the trace.
  Detection EvaluateWindow(std::span<const runtime::CallEvent> window,
                           size_t window_start) const;

  /// Slides over a full trace (stride 1) and returns every verdict.
  std::vector<Detection> MonitorTrace(const runtime::Trace& trace) const;

  /// Batch variant: monitors every trace, fanning the independent traces
  /// across `pool` (null pool = serial). Result i holds trace i's
  /// verdicts, identical to MonitorTrace(traces[i]).
  std::vector<std::vector<Detection>> MonitorTraces(
      const std::vector<runtime::Trace>& traces,
      util::ThreadPool* pool = nullptr) const;

  /// Convenience: the alarms only.
  std::vector<Detection> Alarms(const runtime::Trace& trace) const;

  /// The single shared verdict implementation: `window` and its
  /// pre-encoded symbols `seq` (same length, same order); the workspace is
  /// reused across calls. Both the batch paths above and the streaming
  /// service (service::StreamingMonitor) funnel through this method (or
  /// through ScoreWindows + AssembleVerdict, which compose to the same
  /// result), which is what makes streaming verdicts bit-identical to
  /// batch by construction.
  Detection EvaluateEncoded(std::span<const runtime::CallEvent> window,
                            hmm::SymbolSpan seq, size_t window_start,
                            hmm::ForwardWorkspace* workspace) const;

  /// Scores a group of equal-length windows into `out` (same size as
  /// `seqs`) through the batched engine, falling back to the scalar
  /// workspace path when batching is disabled. Exact-tier scores are
  /// bit-identical to what EvaluateEncoded would compute per window; with
  /// the triage tier enabled, certified-benign windows report their lower
  /// bound instead (AssembleVerdict reaches the same flag either way).
  void ScoreWindows(std::span<const hmm::SymbolSpan> seqs,
                    hmm::BatchWorkspace* ws, std::span<double> out) const;

  /// The verdict-assembly half of EvaluateEncoded: out-of-context scan,
  /// unknown-symbol override, threshold comparison, flag selection, and
  /// alarm provenance — everything except computing `score`.
  Detection AssembleVerdict(std::span<const runtime::CallEvent> window,
                            hmm::SymbolSpan seq, size_t window_start,
                            double score) const;

  /// Pre-sizes `ws` for this engine's window length, state count and batch
  /// width, so steady-state scoring through it allocates nothing.
  void ReserveWorkspace(hmm::BatchWorkspace* ws) const;

  /// The batched scoring engine (disabled under dense kernels or
  /// batch_width = 0; see ProfileOptions).
  const hmm::BatchScorer& batch_scorer() const { return batch_; }

 private:
  /// MonitorTrace body against a caller-owned (reserved) workspace, so the
  /// batch path can reuse one workspace across many traces.
  std::vector<Detection> MonitorTraceInto(const runtime::Trace& trace,
                                          hmm::BatchWorkspace* ws) const;

  const ApplicationProfile* profile_;
  /// CSR compilation of profile_->model, built once at construction
  /// (empty and unused when the profile asks for dense kernels).
  hmm::SparseHmm sparse_;
  bool use_sparse_ = false;
  /// Batched scoring engine over sparse_ (disabled when dense kernels are
  /// forced or batch_width is 0).
  hmm::BatchScorer batch_;
};

}  // namespace adprom::core

#endif  // ADPROM_CORE_DETECTION_ENGINE_H_
