#ifndef ADPROM_CORE_DETECTION_ENGINE_H_
#define ADPROM_CORE_DETECTION_ENGINE_H_

#include <span>
#include <vector>

#include "core/flags.h"
#include "core/profile.h"
#include "hmm/inference.h"
#include "hmm/sparse.h"
#include "runtime/call_event.h"
#include "util/thread_pool.h"

namespace adprom::core {

/// The paper's Detection Engine: receives n-length call sequences from the
/// Calls Collector, computes P(cs | λ) with the trained HMM, compares it
/// to the profile threshold, and raises one of the four flags. With
/// data-flow labels enabled it also reports which DB tables the involved
/// targeted data came from.
///
/// Throughput design: MonitorTrace encodes the trace into HMM symbols
/// *once* and scores each overlapping window as a slice of that buffer
/// through a pre-reserved hmm::ForwardWorkspace — zero per-window heap
/// allocations in steady state. MonitorTraces cuts the traces into blocks
/// fanned across a worker pool; each block reuses one reserved workspace
/// for all of its traces. Scoring runs on a CSR compilation of the
/// profile's HMM (bit-identical to dense; set
/// ProfileOptions::dense_kernels before constructing the engine to force
/// the original dense path).
class DetectionEngine {
 public:
  /// `profile` must outlive the engine.
  explicit DetectionEngine(const ApplicationProfile* profile);

  /// Scores one n-window starting at `window_start` of the trace.
  Detection EvaluateWindow(std::span<const runtime::CallEvent> window,
                           size_t window_start) const;

  /// Slides over a full trace (stride 1) and returns every verdict.
  std::vector<Detection> MonitorTrace(const runtime::Trace& trace) const;

  /// Batch variant: monitors every trace, fanning the independent traces
  /// across `pool` (null pool = serial). Result i holds trace i's
  /// verdicts, identical to MonitorTrace(traces[i]).
  std::vector<std::vector<Detection>> MonitorTraces(
      const std::vector<runtime::Trace>& traces,
      util::ThreadPool* pool = nullptr) const;

  /// Convenience: the alarms only.
  std::vector<Detection> Alarms(const runtime::Trace& trace) const;

  /// The single shared verdict implementation: `window` and its
  /// pre-encoded symbols `seq` (same length, same order); the workspace is
  /// reused across calls. Both the batch paths above and the streaming
  /// service (service::StreamingMonitor) funnel through this method, which
  /// is what makes streaming verdicts bit-identical to batch by
  /// construction.
  Detection EvaluateEncoded(std::span<const runtime::CallEvent> window,
                            hmm::SymbolSpan seq, size_t window_start,
                            hmm::ForwardWorkspace* workspace) const;

 private:
  /// MonitorTrace body against a caller-owned (reserved) workspace, so the
  /// batch path can reuse one workspace across many traces.
  std::vector<Detection> MonitorTraceInto(
      const runtime::Trace& trace, hmm::ForwardWorkspace* workspace) const;

  const ApplicationProfile* profile_;
  /// CSR compilation of profile_->model, built once at construction
  /// (empty and unused when the profile asks for dense kernels).
  hmm::SparseHmm sparse_;
  bool use_sparse_ = false;
};

}  // namespace adprom::core

#endif  // ADPROM_CORE_DETECTION_ENGINE_H_
