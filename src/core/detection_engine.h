#ifndef ADPROM_CORE_DETECTION_ENGINE_H_
#define ADPROM_CORE_DETECTION_ENGINE_H_

#include <span>
#include <vector>

#include "core/flags.h"
#include "core/profile.h"
#include "runtime/call_event.h"

namespace adprom::core {

/// The paper's Detection Engine: receives n-length call sequences from the
/// Calls Collector, computes P(cs | λ) with the trained HMM, compares it
/// to the profile threshold, and raises one of the four flags. With
/// data-flow labels enabled it also reports which DB tables the involved
/// targeted data came from.
class DetectionEngine {
 public:
  /// `profile` must outlive the engine.
  explicit DetectionEngine(const ApplicationProfile* profile);

  /// Scores one n-window starting at `window_start` of the trace.
  Detection EvaluateWindow(std::span<const runtime::CallEvent> window,
                           size_t window_start) const;

  /// Slides over a full trace (stride 1) and returns every verdict.
  std::vector<Detection> MonitorTrace(const runtime::Trace& trace) const;

  /// Convenience: the alarms only.
  std::vector<Detection> Alarms(const runtime::Trace& trace) const;

 private:
  const ApplicationProfile* profile_;
};

}  // namespace adprom::core

#endif  // ADPROM_CORE_DETECTION_ENGINE_H_
