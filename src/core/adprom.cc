#include "core/adprom.h"

#include <memory>

#include "runtime/collector.h"
#include "util/thread_pool.h"

namespace adprom::core {

util::Result<runtime::Trace> AdProm::CollectTrace(
    const prog::Program& program,
    const std::map<std::string, prog::Cfg>& cfgs,
    const DbFactory& db_factory, const TestCase& test_case,
    runtime::ProgramIo* io) {
  std::unique_ptr<db::Database> database;
  if (db_factory) database = db_factory();
  runtime::Interpreter interpreter(program, cfgs, database.get());
  runtime::LightCollector collector;
  interpreter.set_collector(&collector);
  ADPROM_ASSIGN_OR_RETURN(runtime::RtValue result,
                          interpreter.Run(test_case.inputs));
  (void)result;
  if (io != nullptr) *io = interpreter.io();
  return collector.TakeTrace();
}

util::Result<std::vector<runtime::Trace>> AdProm::CollectTraces(
    const prog::Program& program,
    const std::map<std::string, prog::Cfg>& cfgs,
    const DbFactory& db_factory, const std::vector<TestCase>& test_cases) {
  std::vector<runtime::Trace> traces;
  traces.reserve(test_cases.size());
  for (const TestCase& test_case : test_cases) {
    ADPROM_ASSIGN_OR_RETURN(
        runtime::Trace trace,
        CollectTrace(program, cfgs, db_factory, test_case));
    traces.push_back(std::move(trace));
  }
  return std::move(traces);
}

util::Result<AdProm> AdProm::Train(const prog::Program& program,
                                   const DbFactory& db_factory,
                                   const std::vector<TestCase>& test_cases,
                                   ProfileOptions options,
                                   ConstructionTimings* timings) {
  AdProm system;
  AnalyzerOptions analyzer_options;
  analyzer_options.flow_insensitive_taint = options.flow_insensitive_taint;
  analyzer_options.absint_refinement = options.absint_refinement;
  std::unique_ptr<util::ThreadPool> analysis_pool;
  const size_t analysis_threads =
      util::ResolveThreadCount(options.train.num_threads);
  if (analysis_threads > 1) {
    analysis_pool = std::make_unique<util::ThreadPool>(analysis_threads);
    analyzer_options.pool = analysis_pool.get();
  }
  Analyzer analyzer(std::move(analyzer_options));
  ADPROM_ASSIGN_OR_RETURN(system.analysis_, analyzer.Analyze(program));
  ADPROM_ASSIGN_OR_RETURN(
      system.training_traces_,
      CollectTraces(program, system.analysis_.cfgs, db_factory, test_cases));
  ProfileConstructor constructor(options);
  ADPROM_ASSIGN_OR_RETURN(
      system.profile_,
      constructor.Construct(system.analysis_, system.training_traces_,
                            timings));
  return std::move(system);
}

std::vector<Detection> AdProm::MonitorResult::Alarms() const {
  std::vector<Detection> out;
  for (const Detection& d : detections) {
    if (d.IsAlarm()) out.push_back(d);
  }
  return out;
}

bool AdProm::MonitorResult::HasAlarm() const {
  for (const Detection& d : detections) {
    if (d.IsAlarm()) return true;
  }
  return false;
}

bool AdProm::MonitorResult::ConnectedToSource() const {
  for (const Detection& d : detections) {
    if (d.IsAlarm() && !d.source_tables.empty()) return true;
  }
  return false;
}

util::Result<AdProm::MonitorResult> AdProm::Monitor(
    const prog::Program& deployed, const DbFactory& db_factory,
    const TestCase& test_case) const {
  // The deployed build may be a tampered variant: instrument it with its
  // own CFGs (this is the dynamic instrumentation step of the paper's
  // detection phase).
  auto cfgs_result = prog::BuildAllCfgs(deployed);
  if (!cfgs_result.ok()) return cfgs_result.status();
  const std::map<std::string, prog::Cfg> cfgs = std::move(cfgs_result).value();
  MonitorResult result;
  ADPROM_ASSIGN_OR_RETURN(
      result.trace,
      CollectTrace(deployed, cfgs, db_factory, test_case, &result.io));
  DetectionEngine engine(&profile_);
  result.detections = engine.MonitorTrace(result.trace);
  return std::move(result);
}

}  // namespace adprom::core
