#include "core/flags.h"

namespace adprom::core {

const char* DetectionFlagName(DetectionFlag flag) {
  switch (flag) {
    case DetectionFlag::kNormal:
      return "Normal";
    case DetectionFlag::kAnomalous:
      return "Anomalous";
    case DetectionFlag::kDataLeak:
      return "DataLeak";
    case DetectionFlag::kOutOfContext:
      return "OutOfContext";
  }
  return "?";
}

}  // namespace adprom::core
