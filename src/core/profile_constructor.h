#ifndef ADPROM_CORE_PROFILE_CONSTRUCTOR_H_
#define ADPROM_CORE_PROFILE_CONSTRUCTOR_H_

#include <vector>

#include "core/analyzer.h"
#include "core/profile.h"
#include "runtime/call_event.h"
#include "util/status.h"

namespace adprom::core {

/// Timing of the construction steps, reported for the Table VIII bench.
struct ConstructionTimings {
  double reduction_seconds = 0.0;  // CTV + PCA + k-means
  double init_seconds = 0.0;       // HMM initialization
  double training_seconds = 0.0;   // Baum-Welch
};

/// The paper's Profile Constructor: turns the Analyzer's pCTM and the
/// Calls Collector's training traces into a trained ApplicationProfile.
///
/// Pipeline (paper §IV-C4): build one call-transition vector (CTV) per
/// pCTM site (incoming column + outgoing row, size 2(n+1)); if the site
/// count exceeds options.cluster_threshold, reduce with PCA and cluster
/// with k-means (K = cluster_fraction · n) so similar calls share a hidden
/// state; initialize A/B/π from the (cluster-averaged) pCTM; train with
/// multi-sequence Baum-Welch, early-stopped on the held-out converge
/// sub-dataset (CSDS); finally pick the detection threshold from the CSDS
/// score distribution.
class ProfileConstructor {
 public:
  explicit ProfileConstructor(ProfileOptions options = ProfileOptions());

  /// Builds the profile from static analysis plus normal training traces.
  /// `timings`, when non-null, receives per-step wall-clock seconds.
  util::Result<ApplicationProfile> Construct(
      const AnalysisResult& analysis,
      const std::vector<runtime::Trace>& traces,
      ConstructionTimings* timings = nullptr) const;

 private:
  ProfileOptions options_;
};

}  // namespace adprom::core

#endif  // ADPROM_CORE_PROFILE_CONSTRUCTOR_H_
