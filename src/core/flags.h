#ifndef ADPROM_CORE_FLAGS_H_
#define ADPROM_CORE_FLAGS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace adprom::core {

/// The four flags the Detection Engine raises to the security admin
/// (paper §V-C): OutOfContext — a library call issued from a function that
/// never issues it; DataLeak — an anomalous window containing an output
/// call carrying targeted data; Anomalous — an anomalous window without TD
/// output; Normal — everything else.
enum class DetectionFlag { kNormal, kAnomalous, kDataLeak, kOutOfContext };

const char* DetectionFlagName(DetectionFlag flag);

/// One Detection Engine verdict for a window of n calls.
struct Detection {
  DetectionFlag flag = DetectionFlag::kNormal;
  /// Per-symbol log-likelihood of the window under the profile's HMM.
  double score = 0.0;
  /// Index of the first call of the window within the monitored trace.
  size_t window_start = 0;
  /// DB tables the involved targeted data was retrieved from (the "connect
  /// the activity to its source" capability CMarkov lacks). Empty when no
  /// TD was involved or the provenance could not be resolved.
  std::vector<std::string> source_tables;
  /// Human-readable context, e.g. the offending (caller, callee) pair.
  std::string detail;

  bool IsAlarm() const { return flag != DetectionFlag::kNormal; }
};

}  // namespace adprom::core

#endif  // ADPROM_CORE_FLAGS_H_
