#ifndef ADPROM_CORE_PROFILE_H_
#define ADPROM_CORE_PROFILE_H_

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "hmm/baum_welch.h"
#include "hmm/hmm_model.h"
#include "runtime/call_event.h"
#include "util/status.h"

namespace adprom::core {

/// Interned observation symbols. Id 0 is always "<unk>", the catch-all for
/// symbols never seen during analysis/training (their tiny smoothed
/// emission probability is what makes novel calls score anomalously).
class Alphabet {
 public:
  Alphabet();

  /// Returns the id of `symbol`, interning it if new.
  int Intern(const std::string& symbol);

  /// Returns the id of `symbol`, or the <unk> id when absent.
  int Lookup(const std::string& symbol) const;

  bool Contains(const std::string& symbol) const;
  int unk_id() const { return 0; }
  size_t size() const { return symbols_.size(); }
  const std::string& symbol(int id) const {
    return symbols_[static_cast<size_t>(id)];
  }
  const std::vector<std::string>& symbols() const { return symbols_; }

 private:
  std::vector<std::string> symbols_;
  std::map<std::string, int> index_;
};

/// Tuning knobs for profile construction. The defaults follow the paper's
/// evaluation setup (window length 15, clustering only past 900 states with
/// K = 0.3·n, 1/5 converge sub-dataset).
struct ProfileOptions {
  /// n — the length of the call sequences the Detection Engine scores.
  size_t window_length = 15;
  /// true = AD-PROM (data-flow labels, `print_Q...` observables and source
  /// connection); false = the CMarkov baseline (plain call names).
  bool use_dd_labels = true;
  /// Record normalized query signatures in DB-call observables
  /// (`db_query#SELECT ... WHERE id = ?`). Off by default — it is the
  /// paper's §VII mitigation for attackers who swap in a different query
  /// of similar selectivity, not part of the baseline system.
  bool use_query_signatures = false;
  /// Ablation: label the DDG with the original flow-insensitive taint
  /// pass instead of the flow-sensitive dataflow framework (which is the
  /// default and labels a subset of the same output sites).
  bool flow_insensitive_taint = false;
  /// Ablation: prune statically infeasible CFG edges and reweight counted
  /// loops with the abstract-interpretation engine before the forecast
  /// (`--no-absint` turns it off and reproduces the unrefined pCTM bit
  /// for bit).
  bool absint_refinement = true;
  /// kStatic = initialize the HMM from the pCTM (AD-PROM / CMarkov);
  /// kRandom = random initialization (the Rand-HMM baseline).
  enum class Init { kStatic, kRandom };
  Init init = Init::kStatic;
  /// Apply PCA + k-means state reduction when the program has more call
  /// sites than this (paper: "more than 900").
  size_t cluster_threshold = 900;
  /// K as a fraction of the site count when clustering (paper: 0.3).
  double cluster_fraction = 0.3;
  double pca_variance = 0.95;
  size_t pca_max_components = 64;
  /// CTVs have dimension 2(n+1); past this cap they are feature-hashed
  /// (sparse, so collisions are rare) before PCA, keeping the eigensolve
  /// tractable for >900-site programs.
  size_t pca_input_cap = 256;
  /// Baum-Welch settings; keep_going is overridden by the CSDS logic.
  hmm::TrainOptions train;
  /// Fraction of normal windows held out as the converge sub-dataset.
  double csds_fraction = 0.2;
  /// Stop training once the CSDS score fails to improve this many times.
  int csds_patience = 2;
  /// Cap on Baum-Welch training windows (0 = use all). When the cap is
  /// hit, windows are subsampled uniformly (deterministically), bounding
  /// training cost on very large trace corpora such as the bash-like app.
  size_t max_training_windows = 0;
  /// Post-init/training probability smoothing. Applied structurally
  /// (HmmModel::SmoothEmissions): B and π get the floor, A keeps the
  /// pCTM's exact zeros so the CSR detection/training kernels have real
  /// sparsity to exploit.
  double smoothing = 1e-6;
  /// Runtime-only ablation switch (never serialized): score and train with
  /// the original dense kernels instead of the CSR ones. The two paths are
  /// bit-identical; this exists for benchmarks, differential tests and the
  /// --dense-kernels CLI flag.
  bool dense_kernels = false;
  /// Runtime-only (never serialized): W for the batched scoring engine —
  /// how many ready windows advance together per forward step
  /// (`--batch-width`). 0 disables batching and scores window-at-a-time.
  size_t batch_width = 16;
  /// Runtime-only: pin the batched kernels to the scalar flavour even where
  /// the CPU offers AVX2/NEON (`--no-simd`). Bit-identical either way;
  /// exists for ablation and CI fallback coverage.
  bool no_simd = false;
  /// Runtime-only: enable the quantized triage tier (`--triage`) — windows
  /// whose cheap int16 lower bound already clears the threshold skip the
  /// exact forward pass. Verdicts are unchanged by construction.
  bool triage = false;
  /// Default threshold = min CSDS window score − margin (per-symbol log
  /// space; 0.5 ≈ a factor e^{7.5} on a 15-call window, small enough that
  /// a single out-of-alphabet call — emission ~1e-9 — crosses it).
  double threshold_margin = 0.5;
  uint64_t seed = 42;
};

/// The trained behaviour profile of one application program: the HMM, the
/// observation alphabet, the (caller, callee) context set, the detection
/// threshold, and the provenance map for labeled output sites.
struct ApplicationProfile {
  ProfileOptions options;
  Alphabet alphabet;
  hmm::HmmModel model;
  /// (caller function, library callee) pairs that are legitimate.
  std::set<std::pair<std::string, std::string>> context_pairs;
  /// Per-symbol log-likelihood below which a window is anomalous.
  double threshold = -1e9;
  /// Labeled observable -> statically resolved source tables.
  std::map<std::string, std::vector<std::string>> labeled_sources;
  size_t num_sites = 0;
  size_t num_states = 0;
  hmm::TrainStats train_stats;

  /// The symbol the profile observes for an event (honours use_dd_labels).
  std::string ObservableOf(const runtime::CallEvent& event) const;

  /// Encodes events into HMM symbol ids (unknown -> <unk>).
  hmm::ObservationSeq Encode(std::span<const runtime::CallEvent> events) const;

  /// Line-based text serialization (the profile artifact a deployment
  /// stores per application; paper reports ~31 kB profiles). Writes the
  /// "adprom-profile v2" format, whose transition matrix is stored as a
  /// sparse `a-sparse` section (one `<nnz> <col> <val> ...` row per
  /// state) — structurally-smoothed profiles keep A's zeros, so this is
  /// both smaller on disk and an exact record of the sparsity pattern.
  std::string Serialize() const;
  /// Accepts both the current v2 format and the original dense
  /// "adprom-profile v1" format (old stored profiles keep loading).
  static util::Result<ApplicationProfile> Deserialize(
      const std::string& text);
};

/// Cuts a trace into overlapping windows of `n` events (stride 1). Traces
/// shorter than `n` yield one window with the whole trace.
std::vector<std::span<const runtime::CallEvent>> SlidingWindows(
    const runtime::Trace& trace, size_t n);

}  // namespace adprom::core

#endif  // ADPROM_CORE_PROFILE_H_
