#include "core/analyzer.h"

#include <chrono>

#include "analysis/dataflow/taint_flow.h"
#include "analysis/labeling.h"

namespace adprom::core {

namespace {

double SecondsSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

std::set<std::pair<std::string, std::string>> AnalysisResult::ContextPairs()
    const {
  std::set<std::pair<std::string, std::string>> out;
  for (const auto& [name, cfg] : cfgs) {
    for (const prog::CfgNode& node : cfg.nodes()) {
      if (node.call.has_value() && !node.call->is_user_fn) {
        out.insert({name, node.call->callee});
      }
    }
  }
  return out;
}

Analyzer::Analyzer(AnalyzerOptions options) : options_(std::move(options)) {}

Analyzer::Analyzer(analysis::TaintConfig taint_config) {
  options_.taint_config = std::move(taint_config);
}

util::Result<AnalysisResult> Analyzer::Analyze(
    const prog::Program& program) const {
  if (!program.finalized()) {
    return util::Status::FailedPrecondition(
        "program must be finalized before analysis");
  }
  AnalysisResult out;

  auto t0 = std::chrono::steady_clock::now();
  ADPROM_ASSIGN_OR_RETURN(out.cfgs, prog::BuildAllCfgs(program));
  ADPROM_ASSIGN_OR_RETURN(out.call_graph, prog::CallGraph::Build(program));
  out.cfg_seconds = SecondsSince(t0);

  // Abstract interpretation, then CFG refinement: infeasible branch edges
  // and counted-loop bounds feed the probability forecast below.
  if (options_.absint_refinement) {
    t0 = std::chrono::steady_clock::now();
    analysis::absint::AbsintOptions absint_options;
    absint_options.pool = options_.pool;
    ADPROM_ASSIGN_OR_RETURN(
        out.absint,
        analysis::absint::RunAbstractInterpretation(program, absint_options));
    out.refinement = analysis::absint::RefineCfgs(out.absint, &out.cfgs);
    out.absint_seconds = SecondsSince(t0);
  }

  // Data-flow (DDG) labeling, then the per-function probability forecast.
  t0 = std::chrono::steady_clock::now();
  if (options_.flow_insensitive_taint) {
    ADPROM_ASSIGN_OR_RETURN(
        out.taint,
        analysis::RunTaintAnalysis(program, options_.taint_config));
  } else {
    ADPROM_ASSIGN_OR_RETURN(
        out.taint, analysis::dataflow::RunFlowSensitiveTaint(
                       program, options_.taint_config, options_.pool));
  }
  for (const auto& [name, cfg] : out.cfgs) {
    ADPROM_ASSIGN_OR_RETURN(analysis::FunctionForecast forecast,
                            analysis::ComputeForecast(cfg));
    if (options_.column_taint) {
      analysis::ApplyTaintLabels(out.taint, program, options_.schemas,
                                 &forecast.ctm);
    } else {
      analysis::ApplyTaintLabels(out.taint, program, &forecast.ctm);
    }
    out.function_ctms.emplace(name, std::move(forecast.ctm));
  }
  out.forecast_seconds = SecondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  ADPROM_ASSIGN_OR_RETURN(
      out.program_ctm,
      analysis::AggregateProgramCtm(out.function_ctms, out.call_graph,
                                    &aggregation_cache_,
                                    &out.aggregation_stats));
  out.aggregation_seconds = SecondsSince(t0);
  return std::move(out);
}

}  // namespace adprom::core
