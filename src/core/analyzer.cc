#include "core/analyzer.h"

#include <chrono>

#include "analysis/dataflow/taint_flow.h"
#include "analysis/hashing.h"
#include "analysis/incremental.h"
#include "analysis/labeling.h"
#include "util/logging.h"

namespace adprom::core {

namespace {

double SecondsSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Value hash of the branch facts feeding one function's CFG refinement.
/// The refined CFG — and with it the pre-label forecast CTM — is a pure
/// function of (body, these facts), so the forecast cache keys on both.
uint64_t HashAbsintFacts(const analysis::absint::FunctionAbsint* fn) {
  if (fn == nullptr) return 0;
  analysis::Hasher h;
  h.Size(fn->branches.size());
  for (const analysis::absint::BranchFact& b : fn->branches) {
    h.Bool(b.is_loop)
        .I64(b.line)
        .Bool(b.condition_is_literal)
        .U64(static_cast<uint64_t>(b.verdict))
        .Bool(b.entered)
        .I64(b.trip_count);
  }
  return h.digest();
}

}  // namespace

std::set<std::pair<std::string, std::string>> AnalysisResult::ContextPairs()
    const {
  std::set<std::pair<std::string, std::string>> out;
  for (const auto& [name, cfg] : cfgs) {
    for (const prog::CfgNode& node : cfg.nodes()) {
      if (node.call.has_value() && !node.call->is_user_fn) {
        out.insert({name, node.call->callee});
      }
    }
  }
  return out;
}

Analyzer::Analyzer(AnalyzerOptions options) : options_(std::move(options)) {}

Analyzer::Analyzer(analysis::TaintConfig taint_config) {
  options_.taint_config = std::move(taint_config);
}

analysis::AnalysisCache* Analyzer::cache() const {
  return options_.analysis_cache != nullptr ? options_.analysis_cache
                                            : &cache_;
}

util::Result<AnalysisResult> Analyzer::Analyze(
    const prog::Program& program) const {
  if (!program.finalized()) {
    return util::Status::FailedPrecondition(
        "program must be finalized before analysis");
  }
  AnalysisResult out;
  analysis::AnalysisCache* cache = this->cache();
  const bool incremental = options_.incremental;

  auto t0 = std::chrono::steady_clock::now();
  ADPROM_ASSIGN_OR_RETURN(out.cfgs, prog::BuildAllCfgs(program));
  ADPROM_ASSIGN_OR_RETURN(out.call_graph, prog::CallGraph::Build(program));
  out.cfg_seconds = SecondsSince(t0);

  // Abstract interpretation, then CFG refinement: infeasible branch edges
  // and counted-loop bounds feed the probability forecast below.
  if (options_.absint_refinement) {
    t0 = std::chrono::steady_clock::now();
    analysis::absint::AbsintOptions absint_options;
    absint_options.pool = options_.pool;
    if (incremental) absint_options.summary_cache = &cache->absint;
    ADPROM_ASSIGN_OR_RETURN(
        out.absint,
        analysis::absint::RunAbstractInterpretation(program, absint_options));
    out.cache_stats.absint = out.absint.cache_stats;
    out.refinement = analysis::absint::RefineCfgs(out.absint, &out.cfgs);
    out.absint_seconds = SecondsSince(t0);
  }

  // Data-flow (DDG) labeling. The flow-insensitive ablation is a single
  // global fixpoint with no per-function summaries, so it has nothing to
  // cache.
  t0 = std::chrono::steady_clock::now();
  if (options_.flow_insensitive_taint) {
    ADPROM_ASSIGN_OR_RETURN(
        out.taint,
        analysis::RunTaintAnalysis(program, options_.taint_config));
  } else {
    ADPROM_ASSIGN_OR_RETURN(
        out.taint, analysis::dataflow::RunFlowSensitiveTaint(
                       program, options_.taint_config, options_.pool,
                       incremental ? &cache->taint : nullptr,
                       &out.cache_stats.taint));
  }
  out.taint_seconds = SecondsSince(t0);

  // Per-function probability forecast. The cache holds the *pre-label*
  // CTM (a pure function of the body and its refinement facts); taint
  // labeling always re-runs, because a labeled site's table/column
  // provenance reaches across functions through the DDG.
  t0 = std::chrono::steady_clock::now();
  const uint64_t forecast_fp = analysis::Hasher()
                                   .Str("forecast")
                                   .Bool(options_.absint_refinement)
                                   .digest();
  for (const auto& [name, cfg] : out.cfgs) {
    uint64_t key = 0;
    analysis::Ctm ctm("");
    bool have_ctm = false;
    if (incremental) {
      const prog::FunctionDef* fn = program.FindFunction(name);
      ADPROM_CHECK_MSG(fn != nullptr, "CFG for unknown function " + name);
      analysis::Hasher h(analysis::HashFunctionBody(*fn));
      const auto facts = out.absint.functions.find(name);
      h.U64(HashAbsintFacts(facts == out.absint.functions.end()
                                ? nullptr
                                : &facts->second));
      key = h.digest();
      std::string payload;
      if (cache->forecast.Lookup(forecast_fp, name, key, &payload,
                                 &out.cache_stats.forecast)) {
        analysis::BinaryReader r(payload);
        ctm = analysis::DecodeCtm(&r);
        ADPROM_CHECK_MSG(r.ok() && r.AtEnd(),
                         "corrupt forecast cache entry for " + name);
        have_ctm = true;
      }
    }
    if (!have_ctm) {
      ADPROM_ASSIGN_OR_RETURN(analysis::FunctionForecast forecast,
                              analysis::ComputeForecast(cfg));
      ctm = std::move(forecast.ctm);
      if (incremental) {
        analysis::BinaryWriter w;
        analysis::EncodeCtm(ctm, &w);
        cache->forecast.Store(forecast_fp, name, key, w.Take());
      }
    }
    if (options_.column_taint) {
      analysis::ApplyTaintLabels(out.taint, program, options_.schemas,
                                 &ctm);
    } else {
      analysis::ApplyTaintLabels(out.taint, program, &ctm);
    }
    out.function_ctms.emplace(name, std::move(ctm));
  }
  out.forecast_seconds = SecondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  ADPROM_ASSIGN_OR_RETURN(
      out.program_ctm,
      analysis::AggregateProgramCtm(out.function_ctms, out.call_graph,
                                    &cache->aggregation,
                                    &out.aggregation_stats));
  out.aggregation_seconds = SecondsSince(t0);
  return std::move(out);
}

}  // namespace adprom::core
