#include "apps/corpus.h"
#include "util/rng.h"
#include "util/strings.h"

namespace adprom::apps {

namespace {

/// Shared word pool for generated text inputs.
constexpr const char* kWords[] = {
    "alpha", "bravo",  "charlie", "delta", "echo",  "foxtrot",
    "golf",  "hotel",  "india",   "juliet", "kilo",  "lima",
    "mike",  "error",  "warning", "info",   "debug", "trace",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

std::string RandomLine(util::Rng& rng) {
  std::string line;
  const size_t words = 2 + rng.UniformU64(5);
  for (size_t w = 0; w < words; ++w) {
    if (w > 0) line += " ";
    line += kWords[rng.UniformU64(kNumWords)];
  }
  return line;
}

// ---------------------------------------------------------------------
// App1: grep-like pattern matcher.
// ---------------------------------------------------------------------

constexpr const char* kGrepSource = R"__(
fn main() {
  var mode = scan();
  var pattern = scan();
  if (is_null(mode) || is_null(pattern)) {
    print_err("usage: MODE PATTERN [lines...]");
    return;
  }
  var matched = 0;
  var total = 0;
  while (has_input()) {
    var line = scan();
    total = total + 1;
    matched = matched + process_line(mode, pattern, line);
  }
  report(mode, matched, total);
}

fn process_line(mode, pattern, line) {
  var hit = like_match(line, pattern);
  if (mode == "invert") {
    if (!hit) {
      print(line);
      return 1;
    }
    return 0;
  }
  if (hit) {
    if (mode == "match") {
      print(line);
    }
    if (mode == "loud") {
      print(upper(line));
    }
    return 1;
  }
  return 0;
}

fn report(mode, matched, total) {
  if (mode == "count") {
    print(matched);
    return;
  }
  if (matched == 0) {
    print_err("no matches in " + total + " lines");
  } else {
    print("matched " + matched + " of " + total);
  }
}
)__";

std::vector<core::TestCase> GrepTestCases(size_t count, uint64_t seed) {
  util::Rng rng(seed);
  const char* modes[] = {"match", "count", "invert", "loud"};
  std::vector<core::TestCase> cases;
  cases.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    core::TestCase tc;
    tc.inputs.push_back(modes[rng.UniformU64(4)]);
    // Patterns: contains-word, prefix, or never-matching.
    switch (rng.UniformU64(3)) {
      case 0:
        tc.inputs.push_back(std::string("%") +
                            kWords[rng.UniformU64(kNumWords)] + "%");
        break;
      case 1:
        tc.inputs.push_back(std::string(kWords[rng.UniformU64(kNumWords)]) +
                            "%");
        break;
      default:
        tc.inputs.push_back("%zzz-not-there%");
        break;
    }
    const size_t lines = 3 + rng.UniformU64(12);
    for (size_t l = 0; l < lines; ++l) tc.inputs.push_back(RandomLine(rng));
    cases.push_back(std::move(tc));
  }
  return cases;
}

// ---------------------------------------------------------------------
// App2: gzip-like compressor (run-length toy codec + checksums).
// ---------------------------------------------------------------------

constexpr const char* kGzipSource = R"__(
fn main() {
  var mode = scan();
  var in_bytes = 0;
  var out_bytes = 0;
  var blocks = 0;
  var digest = 0;
  while (has_input()) {
    var block = scan();
    blocks = blocks + 1;
    in_bytes = in_bytes + len(block);
    digest = mix(digest, block);
    if (mode == "pack") {
      var packed = compress(block);
      out_bytes = out_bytes + len(packed);
      emit_block(packed);
    } else if (mode == "check") {
      verify_block(block);
    } else {
      print_err("unknown mode " + mode);
      return;
    }
  }
  trailer(mode, blocks, in_bytes, out_bytes, digest);
}

fn mix(digest, block) {
  var h = checksum(block);
  return (digest * 31 + h) % 1000000007;
}

fn emit_block(packed) {
  if (len(packed) > 40) {
    write_file("archive.bin", substr(packed, 0, 40));
    write_file("archive.bin", substr(packed, 40, len(packed)));
  } else {
    write_file("archive.bin", packed);
  }
}

fn verify_block(block) {
  var h = checksum(block);
  if (h % 2 == 0) {
    print("block ok " + h);
  } else {
    print("block ok " + h);
  }
}

fn trailer(mode, blocks, in_bytes, out_bytes, digest) {
  print("blocks " + blocks);
  print("bytes in " + in_bytes);
  if (mode == "pack") {
    print("bytes out " + out_bytes);
    if (out_bytes > in_bytes) {
      print_err("incompressible input");
    }
  }
  write_file("manifest.txt", "digest " + digest);
}
)__";

std::vector<core::TestCase> GzipTestCases(size_t count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::TestCase> cases;
  cases.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    core::TestCase tc;
    tc.inputs.push_back(rng.Bernoulli(0.7) ? "pack" : "check");
    const size_t blocks = 2 + rng.UniformU64(8);
    for (size_t b = 0; b < blocks; ++b) {
      // Repetitive blocks compress well; random ones do not.
      if (rng.Bernoulli(0.5)) {
        tc.inputs.push_back(std::string(5 + rng.UniformU64(60),
                                        'a' + static_cast<char>(
                                                  rng.UniformU64(4))));
      } else {
        tc.inputs.push_back(RandomLine(rng));
      }
    }
    cases.push_back(std::move(tc));
  }
  return cases;
}

// ---------------------------------------------------------------------
// App3: sed-like stream editor (substitute / delete / print commands).
// ---------------------------------------------------------------------

constexpr const char* kSedSource = R"__(
fn main() {
  var command = scan();
  var old_text = scan();
  var new_text = scan();
  var changed = 0;
  var removed = 0;
  var lineno = 0;
  while (has_input()) {
    var line = scan();
    lineno = lineno + 1;
    if (command == "s") {
      changed = changed + substitute(line, old_text, new_text);
    } else if (command == "d") {
      if (contains(line, old_text)) {
        removed = removed + 1;
      } else {
        print(line);
      }
    } else if (command == "p") {
      numbered_print(lineno, line);
    } else {
      print_err("bad command " + command);
      return;
    }
  }
  summary(command, changed, removed, lineno);
}

fn substitute(line, old_text, new_text) {
  if (contains(line, old_text)) {
    print(replace(line, old_text, new_text));
    return 1;
  }
  print(line);
  return 0;
}

fn numbered_print(lineno, line) {
  if (len(line) == 0) {
    print(lineno + ":");
    return;
  }
  print(lineno + ": " + line);
}

fn summary(command, changed, removed, lineno) {
  if (command == "s") {
    print_err("substituted " + changed + " lines");
  }
  if (command == "d") {
    print_err("deleted " + removed + " of " + lineno);
  }
}
)__";

std::vector<core::TestCase> SedTestCases(size_t count, uint64_t seed) {
  util::Rng rng(seed);
  const char* commands[] = {"s", "d", "p"};
  std::vector<core::TestCase> cases;
  cases.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    core::TestCase tc;
    tc.inputs.push_back(commands[rng.UniformU64(3)]);
    tc.inputs.push_back(kWords[rng.UniformU64(kNumWords)]);
    tc.inputs.push_back(kWords[rng.UniformU64(kNumWords)]);
    const size_t lines = 3 + rng.UniformU64(10);
    for (size_t l = 0; l < lines; ++l) tc.inputs.push_back(RandomLine(rng));
    cases.push_back(std::move(tc));
  }
  return cases;
}

// ---------------------------------------------------------------------
// App4: bash-like command interpreter (generated source).
// ---------------------------------------------------------------------

/// Emits one builtin handler. Bodies rotate through six templates so the
/// generated program has diverse control flow and call mixes, like real
/// shell builtins.
std::string BuiltinSource(size_t i) {
  const std::string name = "builtin_" + std::to_string(i);
  switch (i % 6) {
    case 0:
      return "fn " + name + R"__((arg) {
  if (len(arg) == 0) {
    print_err("missing operand");
    return 1;
  }
  print(upper(arg));
  print("done " + len(arg));
  return 0;
}
)__";
    case 1:
      return "fn " + name + R"__((arg) {
  var i = 0;
  var acc = 0;
  while (i < to_int(arg) % 5) {
    acc = acc + checksum(arg + i);
    i = i + 1;
  }
  print("acc " + acc % 997);
  return acc % 2;
}
)__";
    case 2:
      return "fn " + name + R"__((arg) {
  if (contains(arg, "x")) {
    write_file("shell.log", "flagged " + arg);
    print_err("suspicious operand");
  } else {
    print(lower(arg));
  }
  return 0;
}
)__";
    case 3:
      return "fn " + name + R"__((arg) {
  var packed = compress(arg);
  if (len(packed) < len(arg)) {
    print("saved " + (len(arg) - len(packed)));
  } else {
    print("stored " + len(arg));
  }
  write_file("state.bin", packed);
  return 0;
}
)__";
    case 4:
      return "fn " + name + R"__((arg) {
  var t = trim(arg);
  if (like_match(t, "%err%")) {
    print_err("operand looks like an error: " + t);
    return 1;
  }
  print(substr(t, 0, 8));
  return 0;
}
)__";
    default:
      return "fn " + name + R"__((arg) {
  print("run " + arg);
  var code = to_int(arg) % 3;
  if (code == 0) {
    print("ok");
  } else {
    if (code == 1) {
      print_err("soft failure");
    } else {
      write_file("shell.log", "hard failure on " + arg);
    }
  }
  return code;
}
)__";
  }
}

std::string BashLikeSource(size_t num_builtins) {
  std::string source = R"__(
fn main() {
  print("minishell started");
  var status = 0;
  var cmd = scan();
  while (!is_null(cmd)) {
    var arg = scan();
    if (is_null(arg)) {
      arg = "";
    }
    status = dispatch(cmd, arg);
    cmd = scan();
  }
  print("exit status " + status);
}

fn dispatch(cmd, arg) {
)__";
  for (size_t i = 0; i < num_builtins; ++i) {
    source += (i == 0 ? "  if" : "  } else if");
    source += " (cmd == \"cmd" + std::to_string(i) + "\") {\n";
    source += "    return builtin_" + std::to_string(i) + "(arg);\n";
  }
  source += R"__(  } else {
    print_err("command not found: " + cmd);
    return 127;
  }
}

)__";
  for (size_t i = 0; i < num_builtins; ++i) source += BuiltinSource(i);
  return source;
}

std::vector<core::TestCase> BashTestCases(size_t num_builtins, size_t count,
                                          uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::TestCase> cases;
  cases.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    core::TestCase tc;
    const size_t commands = 4 + rng.UniformU64(12);
    for (size_t c = 0; c < commands; ++c) {
      if (rng.Bernoulli(0.05)) {
        tc.inputs.push_back("no_such_builtin");
      } else {
        tc.inputs.push_back(
            "cmd" + std::to_string(rng.UniformU64(num_builtins)));
      }
      tc.inputs.push_back(rng.Bernoulli(0.2)
                              ? std::to_string(rng.UniformU64(50))
                              : RandomLine(rng));
    }
    cases.push_back(std::move(tc));
  }
  return cases;
}

}  // namespace

CorpusApp MakeGrepLike(size_t num_test_cases, uint64_t seed) {
  CorpusApp app;
  app.name = "App1";
  app.role = "grep-like pattern matcher";
  app.dbms = "-";
  app.source = kGrepSource;
  app.test_cases = GrepTestCases(num_test_cases, seed);
  return app;
}

CorpusApp MakeGzipLike(size_t num_test_cases, uint64_t seed) {
  CorpusApp app;
  app.name = "App2";
  app.role = "gzip-like compressor";
  app.dbms = "-";
  app.source = kGzipSource;
  app.test_cases = GzipTestCases(num_test_cases, seed);
  return app;
}

CorpusApp MakeSedLike(size_t num_test_cases, uint64_t seed) {
  CorpusApp app;
  app.name = "App3";
  app.role = "sed-like stream editor";
  app.dbms = "-";
  app.source = kSedSource;
  app.test_cases = SedTestCases(num_test_cases, seed);
  return app;
}

CorpusApp MakeBashLike(size_t num_builtins, size_t num_test_cases,
                       uint64_t seed) {
  CorpusApp app;
  app.name = "App4";
  app.role = "bash-like command interpreter (generated, " +
             std::to_string(num_builtins) + " builtins)";
  app.dbms = "-";
  app.source = BashLikeSource(num_builtins);
  app.test_cases = BashTestCases(num_builtins, num_test_cases, seed);
  return app;
}

std::vector<CorpusApp> MakeFullCorpus() {
  std::vector<CorpusApp> corpus;
  corpus.push_back(MakeHospitalApp());
  corpus.push_back(MakeBankingApp());
  corpus.push_back(MakeSupermarketApp());
  corpus.push_back(MakeGrepLike());
  corpus.push_back(MakeGzipLike());
  corpus.push_back(MakeSedLike());
  corpus.push_back(MakeBashLike());
  return corpus;
}

}  // namespace adprom::apps
