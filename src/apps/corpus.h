#ifndef ADPROM_APPS_CORPUS_H_
#define ADPROM_APPS_CORPUS_H_

#include <string>
#include <vector>

#include "core/adprom.h"

namespace adprom::apps {

/// One corpus application: MiniApp source, the database behind it (empty
/// factory for the SIR-style programs, which are plain text-processing
/// tools), and a test-case suite for trace collection. These stand in for
/// the paper's CA-dataset (three GitHub DB clients) and SIR-dataset
/// (grep/gzip/sed/bash with SIR test suites).
struct CorpusApp {
  std::string name;   // "App_h", "App_b", "App_s", "App1".."App4"
  std::string role;   // human description ("mini hospital client")
  std::string dbms;   // "PostgreSQL" / "MySQL" / "-"
  std::string source;
  core::DbFactory db_factory;  // empty when the app uses no DB
  std::vector<core::TestCase> test_cases;
};

/// CA-dataset: App_h — a mini hospital client application
/// (PostgreSQL-style API; patients/doctors/visits schema).
CorpusApp MakeHospitalApp();

/// CA-dataset: App_b — a small banking system (MySQL-style API). Its
/// find_client transaction builds the query by string concatenation — the
/// paper's Attack 5 target.
CorpusApp MakeBankingApp();

/// CA-dataset: App_s — a supermarket management program (MySQL-style API),
/// the largest of the three clients.
CorpusApp MakeSupermarketApp();

/// SIR-dataset: App1 — a grep-like pattern matcher over input lines.
CorpusApp MakeGrepLike(size_t num_test_cases = 120, uint64_t seed = 1001);

/// SIR-dataset: App2 — a gzip-like compressor with checksums.
CorpusApp MakeGzipLike(size_t num_test_cases = 80, uint64_t seed = 1002);

/// SIR-dataset: App3 — a sed-like stream editor (substitution commands).
CorpusApp MakeSedLike(size_t num_test_cases = 100, uint64_t seed = 1003);

/// SIR-dataset: App4 — a bash-like command interpreter. The source is
/// *generated*: `num_builtins` handler functions, each with several call
/// sites, so the program crosses the paper's 900-hidden-state threshold
/// that triggers PCA + k-means reduction (bash: 1366 states in the paper).
CorpusApp MakeBashLike(size_t num_builtins = 170, size_t num_test_cases = 60,
                       uint64_t seed = 1004);

/// Future work implemented (paper §VIII: "we plan to consider ... web
/// applications"): App_w — a web-portal request handler whose sessions
/// are HTTP-ish request streams. The pipeline treats it like any client.
CorpusApp MakeWebPortalApp();

/// All seven paper corpus apps with default sizes (App_w is separate: it
/// reproduces future work, not the paper's datasets).
std::vector<CorpusApp> MakeFullCorpus();

}  // namespace adprom::apps

#endif  // ADPROM_APPS_CORPUS_H_
