#include <memory>

#include "apps/corpus.h"

namespace adprom::apps {

namespace {

// App_h: a mini hospital client. Transactions cover patient registration,
// visit recording, per-doctor schedules, billing aggregation, lookup and
// discharge. Queries are built with to_int-sanitized ids (this client is
// not the injection target).
constexpr const char* kSource = R"__(
fn main() {
  print("hospital client ready");
  var cmd = scan();
  while (!is_null(cmd)) {
    dispatch(cmd);
    cmd = scan();
  }
  print("session closed");
}

fn dispatch(cmd) {
  if (cmd == "register") {
    register_patient();
  } else if (cmd == "visit") {
    record_visit();
  } else if (cmd == "patients") {
    list_patients();
  } else if (cmd == "schedule") {
    doctor_schedule();
  } else if (cmd == "bill") {
    billing_report();
  } else if (cmd == "lookup") {
    lookup_patient();
  } else if (cmd == "discharge") {
    discharge_patient();
  } else {
    print_err("unknown command: " + cmd);
  }
}

fn register_patient() {
  var name = scan();
  var age = scan();
  var doctor = scan();
  var q = "INSERT INTO patients (name, age, doctor_id) VALUES ('" + name +
          "', " + to_int(age) + ", " + to_int(doctor) + ")";
  var r = db_query(q);
  if (is_null(r)) {
    print_err("registration failed for " + name);
  } else {
    print("registered patient " + name);
  }
}

fn record_visit() {
  var patient = scan();
  var fee = scan();
  var check = db_query("SELECT COUNT(*) FROM patients WHERE id = " +
                       to_int(patient));
  if (is_null(check)) {
    print_err("visit check failed");
    return;
  }
  var known = db_getvalue(check, 0, 0);
  if (to_int(known) == 0) {
    print_err("no such patient " + patient);
    return;
  }
  var q = "INSERT INTO visits (patient_id, fee) VALUES (" +
          to_int(patient) + ", " + to_int(fee) + ")";
  var r = db_query(q);
  if (is_null(r)) {
    print_err("visit insert failed");
  } else {
    print("visit recorded for patient " + patient);
  }
}

fn list_patients() {
  var r = db_query("SELECT id, name, age FROM patients ORDER BY id");
  if (is_null(r)) {
    print_err("patient listing failed");
    return;
  }
  var n = db_ntuples(r);
  print("patients: " + n);
  var i = 0;
  while (i < n) {
    var line = db_getvalue(r, i, 0) + " " + db_getvalue(r, i, 1) +
               " (age " + db_getvalue(r, i, 2) + ")";
    print(line);
    i = i + 1;
  }
}

fn doctor_schedule() {
  var doctor = scan();
  var info = db_query("SELECT name, dept FROM doctors WHERE id = " +
                      to_int(doctor));
  if (is_null(info)) {
    print_err("schedule query failed");
    return;
  }
  if (db_ntuples(info) == 0) {
    print_err("no such doctor " + doctor);
    return;
  }
  print("schedule for dr " + db_getvalue(info, 0, 0));
  var r = db_query("SELECT name FROM patients WHERE doctor_id = " +
                   to_int(doctor) + " ORDER BY name");
  var n = db_ntuples(r);
  var i = 0;
  while (i < n) {
    print("  patient " + db_getvalue(r, i, 0));
    i = i + 1;
  }
  print("  total " + n);
}

fn billing_report() {
  var totals = db_query("SELECT COUNT(*), SUM(fee), AVG(fee) FROM visits");
  if (is_null(totals)) {
    print_err("billing query failed");
    return;
  }
  var visits = db_getvalue(totals, 0, 0);
  var sum = db_getvalue(totals, 0, 1);
  if (to_int(visits) == 0) {
    print("no visits recorded");
    return;
  }
  print("visits " + visits + " revenue " + sum);
  var high = db_query("SELECT patient_id, fee FROM visits WHERE fee >= 500");
  var n = db_ntuples(high);
  var i = 0;
  while (i < n) {
    write_file("billing_audit.txt", "patient " + db_getvalue(high, i, 0) +
               " fee " + db_getvalue(high, i, 1));
    i = i + 1;
  }
  print("flagged " + n + " high-fee visits");
}

fn lookup_patient() {
  var id = scan();
  var r = db_query("SELECT name, age, doctor_id FROM patients WHERE id = " +
                   to_int(id));
  if (is_null(r)) {
    print_err("lookup failed");
    return;
  }
  if (db_ntuples(r) == 0) {
    print("not found: " + id);
    return;
  }
  print("name " + db_getvalue(r, 0, 0));
  print("age " + db_getvalue(r, 0, 1));
}

fn discharge_patient() {
  var id = scan();
  var r = db_query("DELETE FROM visits WHERE patient_id = " + to_int(id));
  var p = db_query("DELETE FROM patients WHERE id = " + to_int(id));
  if (is_null(p)) {
    print_err("discharge failed");
  } else {
    print("discharged patient " + id);
  }
}
)__";

core::DbFactory MakeDbFactory() {
  return []() {
    auto database = std::make_unique<db::Database>();
    database->Execute(
        "CREATE TABLE patients (id INT, name TEXT, age INT, doctor_id INT)");
    database->Execute("CREATE TABLE doctors (id INT, name TEXT, dept TEXT)");
    database->Execute(
        "CREATE TABLE visits (patient_id INT, fee INT)");
    database->Execute("INSERT INTO doctors VALUES (1, 'gray', 'surgery')");
    database->Execute("INSERT INTO doctors VALUES (2, 'house', 'diag')");
    database->Execute("INSERT INTO doctors VALUES (3, 'wilson', 'onco')");
    const char* names[] = {"ada", "bob", "cid", "dot", "eve", "fin",
                           "gus", "hal", "ivy", "joe", "kim", "lou"};
    for (int i = 0; i < 12; ++i) {
      database->Execute("INSERT INTO patients VALUES (" + std::to_string(i) +
                        ", '" + names[i] + "', " +
                        std::to_string(20 + i * 3) + ", " +
                        std::to_string(1 + i % 3) + ")");
      database->Execute("INSERT INTO visits VALUES (" + std::to_string(i) +
                        ", " + std::to_string(100 + (i * 97) % 600) + ")");
    }
    return database;
  };
}

std::vector<core::TestCase> MakeTestCases() {
  std::vector<core::TestCase> cases;
  cases.push_back({{"patients"}});
  cases.push_back({{"bill"}});
  cases.push_back({{"schedule", "1"}});
  cases.push_back({{"schedule", "2"}});
  cases.push_back({{"schedule", "9"}});  // missing doctor
  cases.push_back({{"lookup", "3"}});
  cases.push_back({{"lookup", "77"}});  // missing patient
  cases.push_back({{"register", "max", "44", "2", "patients"}});
  cases.push_back({{"visit", "4", "250"}});
  cases.push_back({{"visit", "99", "100"}});  // unknown patient
  cases.push_back({{"discharge", "11", "patients"}});
  cases.push_back({{"nonsense", "patients"}});
  cases.push_back({{"register", "zoe", "29", "1", "visit", "5", "620",
                    "bill"}});
  cases.push_back({{"lookup", "2", "schedule", "3", "bill"}});
  cases.push_back({{"patients", "bill", "patients"}});
  for (int i = 0; i < 8; ++i) {
    cases.push_back({{"lookup", std::to_string(i), "schedule",
                      std::to_string(1 + i % 3), "patients"}});
  }
  for (int i = 0; i < 6; ++i) {
    cases.push_back({{"visit", std::to_string(i), std::to_string(150 + i * 80),
                      "bill"}});
  }
  return cases;
}

}  // namespace

CorpusApp MakeHospitalApp() {
  CorpusApp app;
  app.name = "App_h";
  app.role = "mini hospital client application";
  app.dbms = "PostgreSQL";
  app.source = kSource;
  app.db_factory = MakeDbFactory();
  app.test_cases = MakeTestCases();
  return app;
}

}  // namespace adprom::apps
