#include <memory>

#include "apps/corpus.h"
#include "util/strings.h"

namespace adprom::apps {

namespace {

// App_w: a web-portal request handler — the paper's stated *future work*
// ("we plan to consider types of applications other than desktop ones,
// i.e., web applications"). The program is a request loop: each input is
// an HTTP-ish request line (`GET /patients`, `GET /patient?id=3`,
// `POST /note ...`), handlers query the DB and render responses. The
// AD-PROM pipeline runs on it unchanged: request handlers are just
// functions, responses are output calls, and the rendered query results
// carry TD labels.
constexpr const char* kSource = R"__(
fn main() {
  var request = scan();
  while (!is_null(request)) {
    route_request(request);
    request = scan();
  }
  print("server shutting down");
}

fn route_request(request) {
  if (request == "GET /patients") {
    handle_list();
  } else if (request == "GET /patient") {
    handle_detail(scan());
  } else if (request == "POST /note") {
    handle_note(scan(), scan());
  } else if (request == "GET /health") {
    handle_health();
  } else if (request == "GET /export") {
    handle_export();
  } else {
    respond_error(404, "no route for " + request);
  }
}

fn respond(status, body) {
  print("HTTP/1.1 " + status);
  print(body);
}

fn respond_error(status, why) {
  print_err("HTTP/1.1 " + status + " " + why);
  write_file("access.log", status + " " + why);
}

fn handle_list() {
  var r = db_query("SELECT id, name FROM patients ORDER BY id");
  if (is_null(r)) {
    respond_error(500, "query failed");
    return;
  }
  var n = db_ntuples(r);
  var body = "<ul>";
  var i = 0;
  while (i < n) {
    body = body + "<li>" + db_getvalue(r, i, 1) + "</li>";
    i = i + 1;
  }
  body = body + "</ul>";
  respond(200, body);
  write_file("access.log", "200 GET /patients");
}

fn handle_detail(id) {
  var r = db_query("SELECT name, diagnosis FROM patients WHERE id = " +
                   to_int(id));
  if (is_null(r)) {
    respond_error(500, "query failed");
    return;
  }
  if (db_ntuples(r) == 0) {
    respond_error(404, "patient " + id);
    return;
  }
  var page = "<h1>" + db_getvalue(r, 0, 0) + "</h1><p>" +
             db_getvalue(r, 0, 1) + "</p>";
  respond(200, page);
  write_file("access.log", "200 GET /patient?id=" + id);
}

fn handle_note(id, text) {
  if (len(text) == 0) {
    respond_error(400, "empty note");
    return;
  }
  var r = db_query("INSERT INTO notes (patient_id, body) VALUES (" +
                   to_int(id) + ", '" + replace(text, "'", "") + "')");
  if (is_null(r)) {
    respond_error(500, "insert failed");
    return;
  }
  respond(201, "note stored");
}

fn handle_health() {
  var r = db_query("SELECT COUNT(*) FROM patients");
  if (is_null(r)) {
    respond(503, "db unreachable");
    return;
  }
  respond(200, "ok, " + db_getvalue(r, 0, 0) + " records");
}

fn handle_export() {
  var r = db_query("SELECT id, name, diagnosis FROM patients ORDER BY id");
  var n = db_ntuples(r);
  var i = 0;
  while (i < n) {
    write_file("export.csv", db_getvalue(r, i, 0) + "," +
               db_getvalue(r, i, 1) + "," + db_getvalue(r, i, 2));
    i = i + 1;
  }
  respond(200, "exported " + n + " rows");
}
)__";

core::DbFactory MakeDbFactory() {
  return []() {
    auto database = std::make_unique<db::Database>();
    database->Execute(
        "CREATE TABLE patients (id INT, name TEXT, diagnosis TEXT)");
    database->Execute("CREATE TABLE notes (patient_id INT, body TEXT)");
    const char* names[] = {"iris", "jack", "kira", "liam", "maya",
                           "nico", "opal", "pete"};
    const char* diagnoses[] = {"flu", "cold", "sprain", "allergy"};
    for (int i = 0; i < 8; ++i) {
      database->Execute(util::StrFormat(
          "INSERT INTO patients VALUES (%d, '%s', '%s')", i, names[i],
          diagnoses[i % 4]));
    }
    return database;
  };
}

std::vector<core::TestCase> MakeTestCases() {
  std::vector<core::TestCase> cases;
  cases.push_back({{"GET /patients"}});
  cases.push_back({{"GET /health"}});
  cases.push_back({{"GET /patient", "3"}});
  cases.push_back({{"GET /patient", "99"}});
  cases.push_back({{"POST /note", "2", "doing well"}});
  cases.push_back({{"POST /note", "2", ""}});
  cases.push_back({{"GET /export"}});
  cases.push_back({{"DELETE /everything"}});
  cases.push_back({{"GET /patients", "GET /health"}});
  cases.push_back({{"GET /patient", "1", "POST /note", "1", "follow-up",
                    "GET /patient", "1"}});
  cases.push_back({{"GET /export", "GET /patients"}});
  for (int i = 0; i < 6; ++i) {
    cases.push_back({{"GET /patient", std::to_string(i), "GET /health"}});
  }
  for (int i = 0; i < 4; ++i) {
    cases.push_back({{"GET /patients", "GET /patient", std::to_string(i),
                      "GET /export"}});
  }
  return cases;
}

}  // namespace

CorpusApp MakeWebPortalApp() {
  CorpusApp app;
  app.name = "App_w";
  app.role = "web portal request handler (paper future work)";
  app.dbms = "PostgreSQL";
  app.source = kSource;
  app.db_factory = MakeDbFactory();
  app.test_cases = MakeTestCases();
  return app;
}

}  // namespace adprom::apps
