#include <memory>

#include "apps/corpus.h"
#include "util/strings.h"

namespace adprom::apps {

namespace {

// App_b: a small banking system. NOTE the deliberately vulnerable
// find_client transaction: the query is assembled by string concatenation
// from raw user input (the paper's Fig. 2 pattern), making it the Attack 5
// (tautology SQL injection) target. All other transactions sanitize ids
// through to_int.
constexpr const char* kSource = R"__(
fn main() {
  print("bank teller console");
  var cmd = scan();
  while (!is_null(cmd)) {
    route(cmd);
    cmd = scan();
  }
  audit("session end");
  print("goodbye");
}

fn route(cmd) {
  if (cmd == "open") {
    open_account();
  } else if (cmd == "deposit") {
    deposit();
  } else if (cmd == "withdraw") {
    withdraw();
  } else if (cmd == "transfer") {
    transfer();
  } else if (cmd == "statement") {
    statement();
  } else if (cmd == "client") {
    find_client();
  } else if (cmd == "report") {
    monthly_report();
  } else if (cmd == "close") {
    close_account();
  } else if (cmd == "rates") {
    show_rates();
  } else {
    print_err("no such operation: " + cmd);
    audit("rejected command " + cmd);
  }
}

fn audit(msg) {
  write_file("audit.log", msg);
}

fn balance_of(acc) {
  var r = db_query("SELECT balance FROM accounts WHERE acc_no = " +
                   to_int(acc));
  if (is_null(r)) {
    return 0 - 1;
  }
  if (db_ntuples(r) == 0) {
    return 0 - 1;
  }
  return to_int(db_getvalue(r, 0, 0));
}

fn open_account() {
  var client = scan();
  var kind = scan();
  var initial = scan();
  var owner = db_query("SELECT name FROM clients WHERE id = " +
                       to_int(client));
  if (is_null(owner)) {
    print_err("owner query failed");
    return;
  }
  if (db_ntuples(owner) == 0) {
    print_err("unknown client " + client);
    return;
  }
  var next = db_query("SELECT MAX(acc_no) FROM accounts");
  var acc = to_int(db_getvalue(next, 0, 0)) + 1;
  var r = db_query("INSERT INTO accounts VALUES (" + acc + ", " +
                   to_int(client) + ", " + to_int(initial) + ", '" + kind +
                   "')");
  if (is_null(r)) {
    print_err("account creation failed");
    return;
  }
  print("opened account " + acc + " for " + db_getvalue(owner, 0, 0));
  audit("open account " + acc);
}

fn deposit() {
  var acc = scan();
  var amount = scan();
  if (to_int(amount) <= 0) {
    print_err("deposit must be positive");
    return;
  }
  var before = balance_of(acc);
  if (before < 0) {
    print_err("no such account " + acc);
    return;
  }
  var after = before + to_int(amount);
  db_query("UPDATE accounts SET balance = " + after + " WHERE acc_no = " +
           to_int(acc));
  db_query("INSERT INTO transactions (acc_no, amount, kind) VALUES (" +
           to_int(acc) + ", " + to_int(amount) + ", 'deposit')");
  print("deposit ok, new balance " + after);
}

fn withdraw() {
  var acc = scan();
  var amount = scan();
  var before = balance_of(acc);
  if (before < 0) {
    print_err("no such account " + acc);
    return;
  }
  if (before < to_int(amount)) {
    print_err("insufficient funds on " + acc);
    audit("overdraft attempt on " + acc);
    return;
  }
  var after = before - to_int(amount);
  db_query("UPDATE accounts SET balance = " + after + " WHERE acc_no = " +
           to_int(acc));
  db_query("INSERT INTO transactions (acc_no, amount, kind) VALUES (" +
           to_int(acc) + ", " + to_int(amount) + ", 'withdraw')");
  print("withdrawal ok, new balance " + after);
}

fn transfer() {
  var src = scan();
  var dst = scan();
  var amount = scan();
  var have = balance_of(src);
  if (have < to_int(amount)) {
    print_err("transfer refused");
    return;
  }
  var target = balance_of(dst);
  if (target < 0) {
    print_err("no target account " + dst);
    return;
  }
  db_query("UPDATE accounts SET balance = " + (have - to_int(amount)) +
           " WHERE acc_no = " + to_int(src));
  db_query("UPDATE accounts SET balance = " + (target + to_int(amount)) +
           " WHERE acc_no = " + to_int(dst));
  db_query("INSERT INTO transactions (acc_no, amount, kind) VALUES (" +
           to_int(src) + ", " + to_int(amount) + ", 'transfer')");
  print("transferred " + amount + " from " + src + " to " + dst);
  audit("transfer " + src + "->" + dst);
}

fn statement() {
  var acc = scan();
  var r = db_query("SELECT kind, amount FROM transactions WHERE acc_no = " +
                   to_int(acc) + " ORDER BY id");
  if (is_null(r)) {
    print_err("statement failed");
    return;
  }
  var n = db_ntuples(r);
  print("statement for account " + acc + " (" + n + " entries)");
  var i = 0;
  while (i < n) {
    print("  " + db_getvalue(r, i, 0) + " " + db_getvalue(r, i, 1));
    i = i + 1;
  }
  var bal = balance_of(acc);
  if (bal >= 0) {
    print("closing balance " + bal);
  }
}

fn find_client() {
  var needle = scan();
  var query = "SELECT id, name, ssn FROM clients WHERE id='";
  query = query + needle;
  query = query + "'";
  var result = db_query(query);
  if (is_null(result)) {
    print_err("client search failed");
    return;
  }
  var row = db_fetch_row(result);
  while (!is_null(row)) {
    print("client " + row_get(row, 0) + ": " + row_get(row, 1) + " ssn " +
          row_get(row, 2));
    row = db_fetch_row(result);
  }
}

fn monthly_report() {
  var base = "SELECT COUNT(*), SUM(amount) FROM transactions WHERE kind = ";
  var deposits = db_query(base + "'deposit'");
  var withdrawals = db_query(base + "'withdraw'");
  if (is_null(deposits) || is_null(withdrawals)) {
    print_err("report queries failed");
    return;
  }
  print("deposits " + db_getvalue(deposits, 0, 0) + " totaling " +
        db_getvalue(deposits, 0, 1));
  print("withdrawals " + db_getvalue(withdrawals, 0, 0) + " totaling " +
        db_getvalue(withdrawals, 0, 1));
  var rich = db_query(
      "SELECT acc_no, balance FROM accounts WHERE balance >= 10000");
  var n = db_ntuples(rich);
  var i = 0;
  while (i < n) {
    write_file("regulator.txt", "account " + db_getvalue(rich, i, 0) +
               " balance " + db_getvalue(rich, i, 1));
    i = i + 1;
  }
  print("reported " + n + " high-value accounts");
}

fn close_account() {
  var acc = scan();
  var bal = balance_of(acc);
  if (bal < 0) {
    print_err("no such account " + acc);
    return;
  }
  if (bal > 0) {
    print_err("account " + acc + " still holds " + bal);
    return;
  }
  db_query("DELETE FROM accounts WHERE acc_no = " + to_int(acc));
  print("closed account " + acc);
  audit("close account " + acc);
}

fn show_rates() {
  var r = db_query("SELECT kind, rate FROM rates ORDER BY kind");
  var n = db_ntuples(r);
  var i = 0;
  while (i < n) {
    print("rate " + db_getvalue(r, i, 0) + " = " + db_getvalue(r, i, 1));
    i = i + 1;
  }
}
)__";

core::DbFactory MakeDbFactory() {
  return []() {
    auto database = std::make_unique<db::Database>();
    database->Execute(
        "CREATE TABLE clients (id INT, name TEXT, ssn TEXT, phone TEXT)");
    database->Execute(
        "CREATE TABLE accounts (acc_no INT, client_id INT, balance INT, "
        "kind TEXT)");
    database->Execute(
        "CREATE TABLE transactions (id INT, acc_no INT, amount INT, "
        "kind TEXT)");
    database->Execute("CREATE TABLE rates (kind TEXT, rate REAL)");
    database->Execute("INSERT INTO rates VALUES ('checking', 0.1)");
    database->Execute("INSERT INTO rates VALUES ('savings', 2.4)");
    const char* names[] = {"alice", "bruno", "carla", "derek", "elena",
                           "felix", "gemma", "henry", "irene", "jonas",
                           "karla", "leo",   "mona",  "nils",  "olga"};
    for (int i = 0; i < 15; ++i) {
      database->Execute(util::StrFormat(
          "INSERT INTO clients VALUES (%d, '%s', 'ssn-%04d', '555-%04d')",
          100 + i, names[i], 1000 + i * 7, 2000 + i * 13));
      database->Execute(util::StrFormat(
          "INSERT INTO accounts VALUES (%d, %d, %d, '%s')", 500 + i, 100 + i,
          (i * 1237) % 15000, i % 2 == 0 ? "checking" : "savings"));
    }
    for (int i = 0; i < 25; ++i) {
      database->Execute(util::StrFormat(
          "INSERT INTO transactions VALUES (%d, %d, %d, '%s')", i,
          500 + i % 15, 50 + (i * 331) % 900,
          i % 3 == 0 ? "deposit" : (i % 3 == 1 ? "withdraw" : "transfer")));
    }
    return database;
  };
}

std::vector<core::TestCase> MakeTestCases() {
  std::vector<core::TestCase> cases;
  cases.push_back({{"rates"}});
  cases.push_back({{"report"}});
  cases.push_back({{"statement", "503"}});
  cases.push_back({{"client", "104"}});
  cases.push_back({{"client", "999"}});  // no match
  cases.push_back({{"deposit", "505", "300"}});
  cases.push_back({{"deposit", "505", "-5"}});  // rejected
  cases.push_back({{"withdraw", "506", "10"}});
  cases.push_back({{"withdraw", "506", "999999"}});  // overdraft
  cases.push_back({{"withdraw", "99", "10"}});       // bad account
  cases.push_back({{"transfer", "507", "508", "25"}});
  cases.push_back({{"transfer", "507", "9999", "1"}});
  cases.push_back({{"open", "101", "savings", "150", "statement", "515"}});
  cases.push_back({{"close", "99"}});
  cases.push_back({{"typo", "rates"}});
  cases.push_back({{"client", "108", "statement", "508", "report"}});
  cases.push_back({{"deposit", "509", "40", "withdraw", "509", "15",
                    "statement", "509"}});
  for (int i = 0; i < 10; ++i) {
    cases.push_back({{"client", std::to_string(100 + i), "statement",
                      std::to_string(500 + i)}});
  }
  for (int i = 0; i < 8; ++i) {
    cases.push_back({{"deposit", std::to_string(500 + i),
                      std::to_string(20 + i * 11), "report"}});
  }
  for (int i = 0; i < 6; ++i) {
    cases.push_back({{"transfer", std::to_string(500 + i),
                      std::to_string(501 + i), "5", "rates"}});
  }
  return cases;
}

}  // namespace

CorpusApp MakeBankingApp() {
  CorpusApp app;
  app.name = "App_b";
  app.role = "small banking system";
  app.dbms = "MySQL";
  app.source = kSource;
  app.db_factory = MakeDbFactory();
  app.test_cases = MakeTestCases();
  return app;
}

}  // namespace adprom::apps
