#include <memory>

#include "apps/corpus.h"
#include "util/strings.h"

namespace adprom::apps {

namespace {

// App_s: a supermarket management program — the largest CA-dataset client
// (the paper reports 229 states for its counterpart). Inventory, sales, suppliers,
// employees; reporting transactions export data to files.
constexpr const char* kSource = R"__(
fn main() {
  print("supermarket management system");
  var cmd = scan();
  while (!is_null(cmd)) {
    handle(cmd);
    cmd = scan();
  }
  closing_tasks();
}

fn handle(cmd) {
  if (cmd == "sell") {
    sell();
  } else if (cmd == "restock") {
    restock();
  } else if (cmd == "price") {
    price_update();
  } else if (cmd == "inventory") {
    inventory_report();
  } else if (cmd == "suppliers") {
    supplier_report();
  } else if (cmd == "top") {
    top_sellers();
  } else if (cmd == "low") {
    low_stock_alert();
  } else if (cmd == "refund") {
    refund();
  } else if (cmd == "shift") {
    shift_summary();
  } else if (cmd == "export") {
    export_inventory();
  } else if (cmd == "hire") {
    hire_employee();
  } else if (cmd == "audit") {
    audit_books();
  } else if (cmd == "promo") {
    apply_promo();
  } else if (cmd == "writeoff") {
    write_off();
  } else {
    print_err("unrecognized action: " + cmd);
  }
}

fn item_stock(item) {
  var r = db_query("SELECT stock FROM items WHERE id = " + to_int(item));
  if (is_null(r)) {
    return 0 - 1;
  }
  if (db_ntuples(r) == 0) {
    return 0 - 1;
  }
  return to_int(db_getvalue(r, 0, 0));
}

fn item_price(item) {
  var r = db_query("SELECT price FROM items WHERE id = " + to_int(item));
  if (is_null(r)) {
    return 0;
  }
  if (db_ntuples(r) == 0) {
    return 0;
  }
  return to_int(db_getvalue(r, 0, 0));
}

fn sell() {
  var item = scan();
  var qty = scan();
  var cashier = scan();
  var stock = item_stock(item);
  if (stock < 0) {
    print_err("unknown item " + item);
    return;
  }
  if (stock < to_int(qty)) {
    print_err("only " + stock + " left of item " + item);
    return;
  }
  var price = item_price(item);
  var total = price * to_int(qty);
  db_query("UPDATE items SET stock = " + (stock - to_int(qty)) +
           " WHERE id = " + to_int(item));
  db_query("INSERT INTO sales (item_id, qty, total, cashier) VALUES (" +
           to_int(item) + ", " + to_int(qty) + ", " + total + ", " +
           to_int(cashier) + ")");
  print("sold " + qty + " of item " + item + " for " + total);
}

fn restock() {
  var item = scan();
  var qty = scan();
  var stock = item_stock(item);
  if (stock < 0) {
    print_err("cannot restock unknown item " + item);
    return;
  }
  db_query("UPDATE items SET stock = " + (stock + to_int(qty)) +
           " WHERE id = " + to_int(item));
  print("restocked item " + item + " to " + (stock + to_int(qty)));
}

fn price_update() {
  var item = scan();
  var new_price = scan();
  if (to_int(new_price) <= 0) {
    print_err("price must be positive");
    return;
  }
  var old = item_price(item);
  var r = db_query("UPDATE items SET price = " + to_int(new_price) +
                   " WHERE id = " + to_int(item));
  if (is_null(r)) {
    print_err("price update failed");
    return;
  }
  print("price of item " + item + " changed " + old + " -> " + new_price);
  if (to_int(new_price) > old * 2) {
    print_err("price more than doubled; flagging for review");
    write_file("pricing_review.txt",
               "item " + item + " " + old + " -> " + new_price);
  }
}

fn inventory_report() {
  var r = db_query("SELECT id, name, stock, price FROM items ORDER BY id");
  if (is_null(r)) {
    print_err("inventory query failed");
    return;
  }
  var n = db_ntuples(r);
  print("inventory of " + n + " items");
  var i = 0;
  var value = 0;
  while (i < n) {
    var line = "#" + db_getvalue(r, i, 0) + " " + db_getvalue(r, i, 1) +
               " x" + db_getvalue(r, i, 2);
    print(line);
    value = value + to_int(db_getvalue(r, i, 2)) *
            to_int(db_getvalue(r, i, 3));
    i = i + 1;
  }
  print("total inventory value " + value);
}

fn supplier_report() {
  var r = db_query("SELECT id, name, city FROM suppliers ORDER BY name");
  var n = db_ntuples(r);
  var i = 0;
  while (i < n) {
    var sid = db_getvalue(r, i, 0);
    print("supplier " + db_getvalue(r, i, 1) + " (" +
          db_getvalue(r, i, 2) + ")");
    var items = db_query("SELECT COUNT(*) FROM items WHERE supplier_id = " +
                         to_int(sid));
    print("  supplies " + db_getvalue(items, 0, 0) + " items");
    i = i + 1;
  }
}

fn top_sellers() {
  var r = db_query(
      "SELECT item_id, qty, total FROM sales ORDER BY total DESC LIMIT 5");
  if (is_null(r)) {
    print_err("sales query failed");
    return;
  }
  var n = db_ntuples(r);
  print("top " + n + " sales");
  var i = 0;
  while (i < n) {
    var item = db_getvalue(r, i, 0);
    var name = db_query("SELECT name FROM items WHERE id = " +
                        to_int(item));
    if (db_ntuples(name) > 0) {
      print("  " + db_getvalue(name, 0, 0) + " qty " +
            db_getvalue(r, i, 1) + " total " + db_getvalue(r, i, 2));
    } else {
      print("  item " + item + " (delisted) total " +
            db_getvalue(r, i, 2));
    }
    i = i + 1;
  }
}

fn low_stock_alert() {
  var threshold = scan();
  var r = db_query("SELECT id, name, stock FROM items WHERE stock < " +
                   to_int(threshold) + " ORDER BY stock");
  var n = db_ntuples(r);
  if (n == 0) {
    print("no items below " + threshold);
    return;
  }
  var i = 0;
  while (i < n) {
    print_err("LOW: item " + db_getvalue(r, i, 0) + " " +
              db_getvalue(r, i, 1) + " stock " + db_getvalue(r, i, 2));
    i = i + 1;
  }
  print(n + " items need restocking");
}

fn refund() {
  var sale = scan();
  var r = db_query("SELECT item_id, qty, total FROM sales WHERE id = " +
                   to_int(sale));
  if (is_null(r)) {
    print_err("refund lookup failed");
    return;
  }
  if (db_ntuples(r) == 0) {
    print_err("no such sale " + sale);
    return;
  }
  var item = db_getvalue(r, 0, 0);
  var qty = db_getvalue(r, 0, 1);
  var stock = item_stock(item);
  if (stock >= 0) {
    db_query("UPDATE items SET stock = " + (stock + to_int(qty)) +
             " WHERE id = " + to_int(item));
  }
  db_query("DELETE FROM sales WHERE id = " + to_int(sale));
  print("refunded sale " + sale + " (" + db_getvalue(r, 0, 2) + ")");
}

fn shift_summary() {
  var cashier = scan();
  var who = db_query("SELECT name FROM employees WHERE id = " +
                     to_int(cashier));
  if (is_null(who)) {
    print_err("employee lookup failed");
    return;
  }
  if (db_ntuples(who) == 0) {
    print_err("unknown employee " + cashier);
    return;
  }
  var totals = db_query(
      "SELECT COUNT(*), SUM(total) FROM sales WHERE cashier = " +
      to_int(cashier));
  var count = db_getvalue(totals, 0, 0);
  print("cashier " + db_getvalue(who, 0, 0) + " rang " + count + " sales");
  if (to_int(count) > 0) {
    print("  takings " + db_getvalue(totals, 0, 1));
  }
}

fn export_inventory() {
  var r = db_query("SELECT id, name, stock, price FROM items ORDER BY id");
  var n = db_ntuples(r);
  var i = 0;
  while (i < n) {
    var row = db_getvalue(r, i, 0) + "," + db_getvalue(r, i, 1) + "," +
              db_getvalue(r, i, 2) + "," + db_getvalue(r, i, 3);
    write_file("inventory.csv", row);
    i = i + 1;
  }
  print("exported " + n + " rows");
}

fn hire_employee() {
  var name = scan();
  var next = db_query("SELECT MAX(id) FROM employees");
  var id = to_int(db_getvalue(next, 0, 0)) + 1;
  var r = db_query("INSERT INTO employees VALUES (" + id + ", '" + name +
                   "')");
  if (is_null(r)) {
    print_err("hiring failed");
    return;
  }
  print("hired " + name + " with id " + id);
}

fn audit_books() {
  var sales = db_query("SELECT COUNT(*), SUM(total) FROM sales");
  var count = db_getvalue(sales, 0, 0);
  var revenue = db_getvalue(sales, 0, 1);
  print("audit: " + count + " sales on the books");
  if (to_int(count) == 0) {
    print("nothing to audit");
    return;
  }
  var orphans = db_query(
      "SELECT COUNT(*) FROM sales WHERE cashier > 50");
  var bad = db_getvalue(orphans, 0, 0);
  if (to_int(bad) > 0) {
    print_err("audit found " + bad + " sales with unknown cashiers");
    write_file("audit_findings.txt", "orphaned sales: " + bad);
  } else {
    print("cashier references consistent");
  }
  var negatives = db_query("SELECT COUNT(*) FROM items WHERE stock < 0");
  if (to_int(db_getvalue(negatives, 0, 0)) > 0) {
    print_err("negative stock detected");
    write_file("audit_findings.txt", "negative stock present");
  }
  write_file("audit_findings.txt", "revenue " + revenue);
  print("audit complete");
}

fn apply_promo() {
  var item = scan();
  var percent = scan();
  if (to_int(percent) <= 0 || to_int(percent) >= 90) {
    print_err("promo must be between 1 and 89 percent");
    return;
  }
  var old = item_price(item);
  if (old <= 0) {
    print_err("no price on record for item " + item);
    return;
  }
  var discounted = old - old * to_int(percent) / 100;
  if (discounted < 1) {
    discounted = 1;
  }
  db_query("UPDATE items SET price = " + discounted + " WHERE id = " +
           to_int(item));
  print("promo: item " + item + " now " + discounted + " (was " + old +
        ")");
  write_file("promos.txt", "item " + item + " -" + percent + "%");
}

fn write_off() {
  var item = scan();
  var qty = scan();
  var stock = item_stock(item);
  if (stock < 0) {
    print_err("cannot write off unknown item " + item);
    return;
  }
  var removed = to_int(qty);
  if (removed > stock) {
    removed = stock;
  }
  db_query("UPDATE items SET stock = " + (stock - removed) +
           " WHERE id = " + to_int(item));
  var cost = removed * item_price(item);
  print("wrote off " + removed + " of item " + item + " (loss " + cost +
        ")");
  if (cost > 100) {
    print_err("large write-off; manager approval logged");
    write_file("writeoffs.txt", "item " + item + " loss " + cost);
  }
}

fn closing_tasks() {
  var day = db_query("SELECT COUNT(*), SUM(total) FROM sales");
  print("day closed with " + db_getvalue(day, 0, 0) + " sales");
  write_file("eod.txt", "sales " + db_getvalue(day, 0, 0) + " revenue " +
             db_getvalue(day, 0, 1));
  print("end of day complete");
}
)__";

core::DbFactory MakeDbFactory() {
  return []() {
    auto database = std::make_unique<db::Database>();
    database->Execute(
        "CREATE TABLE items (id INT, name TEXT, stock INT, price INT, "
        "supplier_id INT)");
    database->Execute(
        "CREATE TABLE suppliers (id INT, name TEXT, city TEXT)");
    database->Execute(
        "CREATE TABLE sales (id INT, item_id INT, qty INT, total INT, "
        "cashier INT)");
    database->Execute("CREATE TABLE employees (id INT, name TEXT)");
    const char* products[] = {"milk",  "bread", "eggs",   "rice",  "salt",
                              "soap",  "tea",   "coffee", "jam",   "oats",
                              "pasta", "tuna",  "honey",  "flour", "sugar",
                              "beans"};
    for (int i = 0; i < 16; ++i) {
      database->Execute(util::StrFormat(
          "INSERT INTO items VALUES (%d, '%s', %d, %d, %d)", i, products[i],
          5 + (i * 13) % 60, 2 + (i * 7) % 30, 1 + i % 4));
    }
    const char* cities[] = {"lyon", "turin", "porto", "ghent"};
    for (int i = 1; i <= 4; ++i) {
      database->Execute(util::StrFormat(
          "INSERT INTO suppliers VALUES (%d, 'supplier%d', '%s')", i, i,
          cities[i - 1]));
    }
    const char* staff[] = {"pam", "quinn", "rosa", "sven"};
    for (int i = 1; i <= 4; ++i) {
      database->Execute(util::StrFormat(
          "INSERT INTO employees VALUES (%d, '%s')", i, staff[i - 1]));
    }
    for (int i = 0; i < 20; ++i) {
      database->Execute(util::StrFormat(
          "INSERT INTO sales VALUES (%d, %d, %d, %d, %d)", i, i % 16,
          1 + i % 4, (1 + i % 4) * (2 + ((i % 16) * 7) % 30), 1 + i % 4));
    }
    return database;
  };
}

std::vector<core::TestCase> MakeTestCases() {
  std::vector<core::TestCase> cases;
  cases.push_back({{"inventory"}});
  cases.push_back({{"suppliers"}});
  cases.push_back({{"top"}});
  cases.push_back({{"low", "10"}});
  cases.push_back({{"low", "0"}});
  cases.push_back({{"shift", "2"}});
  cases.push_back({{"shift", "44"}});
  cases.push_back({{"export"}});
  cases.push_back({{"sell", "3", "2", "1"}});
  cases.push_back({{"sell", "3", "9999", "1"}});  // over stock
  cases.push_back({{"sell", "77", "1", "1"}});    // unknown item
  cases.push_back({{"restock", "5", "25", "inventory"}});
  cases.push_back({{"price", "4", "9"}});
  cases.push_back({{"price", "4", "-2"}});
  cases.push_back({{"price", "2", "500", "inventory"}});  // doubled flag
  cases.push_back({{"refund", "3", "top"}});
  cases.push_back({{"refund", "999"}});
  cases.push_back({{"hire", "tessa", "shift", "5"}});
  cases.push_back({{"oops", "inventory"}});
  cases.push_back({{"sell", "1", "1", "2", "sell", "2", "1", "2", "shift",
                    "2"}});
  for (int i = 0; i < 8; ++i) {
    cases.push_back({{"sell", std::to_string(i % 16),
                      std::to_string(1 + i % 3), std::to_string(1 + i % 4),
                      "top"}});
  }
  for (int i = 0; i < 6; ++i) {
    cases.push_back({{"restock", std::to_string(i), "10", "low",
                      std::to_string(15 + i)}});
  }
  for (int i = 0; i < 5; ++i) {
    cases.push_back({{"price", std::to_string(i), std::to_string(5 + i),
                      "inventory", "export"}});
  }
  cases.push_back({{"audit"}});
  cases.push_back({{"audit", "audit"}});
  cases.push_back({{"promo", "3", "25", "inventory"}});
  cases.push_back({{"promo", "3", "95"}});   // rejected range
  cases.push_back({{"promo", "88", "10"}});  // unknown item
  cases.push_back({{"writeoff", "2", "4", "audit"}});
  cases.push_back({{"writeoff", "4", "999", "inventory"}});  // clamped
  cases.push_back({{"writeoff", "77", "1"}});                // unknown
  for (int i = 0; i < 4; ++i) {
    cases.push_back({{"promo", std::to_string(i * 3), "15", "writeoff",
                      std::to_string(i * 2), "2", "audit"}});
  }
  return cases;
}

}  // namespace

CorpusApp MakeSupermarketApp() {
  CorpusApp app;
  app.name = "App_s";
  app.role = "supermarket management system";
  app.dbms = "MySQL";
  app.source = kSource;
  app.db_factory = MakeDbFactory();
  app.test_cases = MakeTestCases();
  return app;
}

}  // namespace adprom::apps
