#include "hmm/hmm_model.h"

#include <cmath>

#include "util/strings.h"

namespace adprom::hmm {

namespace {

std::vector<double> RandomDistribution(size_t n, util::Rng& rng) {
  std::vector<double> out(n);
  double total = 0.0;
  for (double& v : out) {
    v = 0.1 + rng.UniformDouble();  // Bounded away from zero.
    total += v;
  }
  for (double& v : out) v /= total;
  return out;
}

}  // namespace

HmmModel HmmModel::Random(size_t num_states, size_t num_symbols,
                          util::Rng& rng) {
  HmmModel model;
  model.a_ = util::Matrix(num_states, num_states);
  model.b_ = util::Matrix(num_states, num_symbols);
  for (size_t s = 0; s < num_states; ++s) {
    const std::vector<double> a_row = RandomDistribution(num_states, rng);
    for (size_t t = 0; t < num_states; ++t) model.a_.At(s, t) = a_row[t];
    const std::vector<double> b_row = RandomDistribution(num_symbols, rng);
    for (size_t m = 0; m < num_symbols; ++m) model.b_.At(s, m) = b_row[m];
  }
  model.pi_ = RandomDistribution(num_states, rng);
  return model;
}

HmmModel::HmmModel(util::Matrix a, util::Matrix b, std::vector<double> pi)
    : a_(std::move(a)), b_(std::move(b)), pi_(std::move(pi)) {}

util::Status HmmModel::Validate(double tolerance) const {
  const size_t n = num_states();
  if (a_.cols() != n)
    return util::Status::InvalidArgument("A must be square");
  if (b_.rows() != n)
    return util::Status::InvalidArgument("B must have N rows");
  if (pi_.size() != n)
    return util::Status::InvalidArgument("pi must have N entries");

  auto check_row = [&](const char* what, const double* row,
                       size_t len) -> util::Status {
    double sum = 0.0;
    for (size_t i = 0; i < len; ++i) {
      // NaN fails every comparison, so without this check a NaN entry
      // would sail through both the negativity and the row-sum test.
      if (!std::isfinite(row[i])) {
        return util::Status::FailedPrecondition(
            util::StrFormat("%s has a non-finite entry", what));
      }
      if (row[i] < -tolerance) {
        return util::Status::FailedPrecondition(
            util::StrFormat("%s has a negative entry: %g", what, row[i]));
      }
      sum += row[i];
    }
    if (std::fabs(sum - 1.0) > tolerance) {
      return util::Status::FailedPrecondition(
          util::StrFormat("%s row sums to %g, expected 1", what, sum));
    }
    return util::Status::Ok();
  };

  for (size_t s = 0; s < n; ++s) {
    ADPROM_RETURN_IF_ERROR(check_row("A", a_.RowData(s), n));
    ADPROM_RETURN_IF_ERROR(check_row("B", b_.RowData(s), num_symbols()));
  }
  return check_row("pi", pi_.data(), n);
}

void HmmModel::Smooth(double epsilon) {
  for (size_t s = 0; s < num_states(); ++s) {
    for (size_t t = 0; t < num_states(); ++t) a_.At(s, t) += epsilon;
    for (size_t m = 0; m < num_symbols(); ++m) b_.At(s, m) += epsilon;
  }
  a_.NormalizeRows();
  b_.NormalizeRows();
  double total = 0.0;
  for (double& v : pi_) {
    v += epsilon;
    total += v;
  }
  for (double& v : pi_) v /= total;
}

void HmmModel::SmoothEmissions(double epsilon) {
  for (size_t s = 0; s < num_states(); ++s) {
    for (size_t m = 0; m < num_symbols(); ++m) b_.At(s, m) += epsilon;
  }
  b_.NormalizeRows();
  double total = 0.0;
  for (double& v : pi_) {
    v += epsilon;
    total += v;
  }
  for (double& v : pi_) v /= total;
}

}  // namespace adprom::hmm
