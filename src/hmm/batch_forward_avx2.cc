// AVX2 instantiation of the batched kernels. This translation unit is the
// only one compiled with -mavx2 (see src/CMakeLists.txt), so the rest of
// the library stays runnable on baseline x86-64; the dispatcher only calls
// through this table after __builtin_cpu_supports("avx2") says yes.

#include "hmm/batch_kernels.h"

namespace adprom::hmm::internal {

#if defined(ADPROM_BATCH_AVX2) && defined(__AVX2__)
const BatchKernels* Avx2Kernels() {
  static const BatchKernels kernels = {
      &ForwardBlock<util::Avx2Arch>, &TriageBlock<util::Avx2Arch>,
      util::Avx2Arch::kLanes, util::Avx2Arch::kILanes, "avx2"};
  return &kernels;
}
#endif

}  // namespace adprom::hmm::internal
