#ifndef ADPROM_HMM_BAUM_WELCH_H_
#define ADPROM_HMM_BAUM_WELCH_H_

#include <functional>
#include <string>
#include <vector>

#include "hmm/hmm_model.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace adprom::hmm {

/// Options for Baum-Welch training.
struct TrainOptions {
  int max_iterations = 50;
  /// Stop when the mean per-sequence log-likelihood improves by less than
  /// this amount between iterations.
  double tolerance = 1e-4;
  /// Probability floor applied after each re-estimation so no parameter
  /// collapses to exactly zero.
  double smoothing = 1e-9;
  /// When true (the default) the post-M-step floor is HmmModel::Smooth,
  /// which densifies A. When false it is HmmModel::SmoothEmissions, which
  /// floors only B and π and preserves A's exact-zero pattern — the pCTM
  /// structure the sparse kernels exploit. Baum-Welch itself never turns a
  /// zero transition nonzero (its expected count stays zero), so with this
  /// off the zero pattern survives every iteration.
  bool smooth_transitions = true;
  /// Ablation switch: when true the E-step runs the original dense
  /// forward/backward/xi loops instead of the CSR kernels. Both paths are
  /// bit-identical by construction; this exists so benchmarks and tests
  /// can compare them.
  bool dense_kernels = false;
  /// The CSR E-step only pays when A is actually sparse: its gathers cost
  /// ~3 memory ops per stored entry against the dense loop's contiguous
  /// (vectorizable) row sweeps, so past roughly this transition density
  /// the skipped zeros no longer cover the indirection (measured crossover
  /// on the clustered bash-like corpus app, ~28% dense, where CSR is ~1.4x
  /// *slower*). Models at or below the cutoff use the CSR kernels; denser
  /// ones silently fall back to the dense loops — output is bit-identical
  /// either way. Set to 1.0 to force CSR regardless of density.
  double sparse_density_cutoff = 0.15;
  /// Batch width W for the batched SIMD E-step engine: runs of up to W
  /// equal-length sequences advance together through lane-per-window
  /// forward/backward blocks (see batch_baum_welch.h). 0 pins the legacy
  /// per-sequence kernels; dense_kernels overrides this entirely. Every
  /// width trains the bit-identical model.
  size_t batch_width = 16;
  /// Pins the batched engine's kernels to the scalar flavour regardless of
  /// what the CPU supports (the `--no-simd` ablation switch). Bit-identical
  /// by the engine's contract; this exists for benchmarks and tests.
  bool no_simd = false;
  /// Worker threads for the E-step: 0 = hardware concurrency, 1 = serial.
  /// The expected-count accumulation is sharded over the sequences with a
  /// shard layout that depends only on the corpus size, and the per-shard
  /// accumulators are merged in fixed shard order — so the trained model
  /// is bit-identical for every thread count.
  int num_threads = 0;
  /// Optional early-stopping hook, called after every iteration with the
  /// iteration index. Returning false stops training. The paper's
  /// "converge sub-dataset" (CSDS) early stopping plugs in here: the
  /// Profile Constructor scores a held-out fifth of the normal data and
  /// halts once the held-out score stops improving.
  std::function<bool(int iteration, const HmmModel& model)> keep_going;
};

/// Summary of a training run.
struct TrainStats {
  int iterations = 0;
  /// Mean per-sequence training log-likelihood after each iteration.
  std::vector<double> log_likelihood_curve;
  bool converged = false;
  bool stopped_by_callback = false;
  /// Which E-step path the final iteration executed: "batch" (the batched
  /// SIMD engine), "csr" (per-sequence sparse kernels), or "dense" (the
  /// scalar reference). All three train the bit-identical model; this is
  /// reporting, so `adprom train` can say how a profile was produced.
  std::string kernel = "dense";
  /// The SIMD dispatch the batched engine used ("scalar"/"neon"/"avx2";
  /// "scalar" whenever the batched engine was not in play).
  std::string simd_level = "scalar";
};

/// Multi-sequence Baum-Welch (EM) re-estimation with Rabiner scaling.
/// Trains `model` in place on `sequences`. Sequences the current model
/// assigns ~zero probability are skipped for that iteration (they would
/// otherwise poison the expected counts). Fails when `sequences` is empty
/// or a symbol is out of range. When `pool` is non-null it is used for the
/// E-step instead of an internally created pool (options.num_threads then
/// only matters for the serial fast path when it equals 1).
util::Result<TrainStats> BaumWelchTrain(
    HmmModel* model, const std::vector<ObservationSeq>& sequences,
    const TrainOptions& options = TrainOptions(),
    util::ThreadPool* pool = nullptr);

}  // namespace adprom::hmm

#endif  // ADPROM_HMM_BAUM_WELCH_H_
