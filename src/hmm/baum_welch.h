#ifndef ADPROM_HMM_BAUM_WELCH_H_
#define ADPROM_HMM_BAUM_WELCH_H_

#include <functional>
#include <vector>

#include "hmm/hmm_model.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace adprom::hmm {

/// Options for Baum-Welch training.
struct TrainOptions {
  int max_iterations = 50;
  /// Stop when the mean per-sequence log-likelihood improves by less than
  /// this amount between iterations.
  double tolerance = 1e-4;
  /// Probability floor applied after each re-estimation so no parameter
  /// collapses to exactly zero.
  double smoothing = 1e-9;
  /// Worker threads for the E-step: 0 = hardware concurrency, 1 = serial.
  /// The expected-count accumulation is sharded over the sequences with a
  /// shard layout that depends only on the corpus size, and the per-shard
  /// accumulators are merged in fixed shard order — so the trained model
  /// is bit-identical for every thread count.
  int num_threads = 0;
  /// Optional early-stopping hook, called after every iteration with the
  /// iteration index. Returning false stops training. The paper's
  /// "converge sub-dataset" (CSDS) early stopping plugs in here: the
  /// Profile Constructor scores a held-out fifth of the normal data and
  /// halts once the held-out score stops improving.
  std::function<bool(int iteration, const HmmModel& model)> keep_going;
};

/// Summary of a training run.
struct TrainStats {
  int iterations = 0;
  /// Mean per-sequence training log-likelihood after each iteration.
  std::vector<double> log_likelihood_curve;
  bool converged = false;
  bool stopped_by_callback = false;
};

/// Multi-sequence Baum-Welch (EM) re-estimation with Rabiner scaling.
/// Trains `model` in place on `sequences`. Sequences the current model
/// assigns ~zero probability are skipped for that iteration (they would
/// otherwise poison the expected counts). Fails when `sequences` is empty
/// or a symbol is out of range. When `pool` is non-null it is used for the
/// E-step instead of an internally created pool (options.num_threads then
/// only matters for the serial fast path when it equals 1).
util::Result<TrainStats> BaumWelchTrain(
    HmmModel* model, const std::vector<ObservationSeq>& sequences,
    const TrainOptions& options = TrainOptions(),
    util::ThreadPool* pool = nullptr);

}  // namespace adprom::hmm

#endif  // ADPROM_HMM_BAUM_WELCH_H_
