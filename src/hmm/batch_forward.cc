#include "hmm/batch_forward.h"

#include <algorithm>
#include <cmath>

#include "hmm/batch_kernels.h"

namespace adprom::hmm {

namespace internal {

const BatchKernels& ScalarKernels() {
  static const BatchKernels kernels = {
      &ForwardBlock<util::ScalarArch>, &TriageBlock<util::ScalarArch>,
      util::ScalarArch::kLanes, util::ScalarArch::kILanes, "scalar"};
  return kernels;
}

#if defined(__aarch64__)
const BatchKernels* NeonKernels() {
  static const BatchKernels kernels = {
      &ForwardBlock<util::NeonArch>, &TriageBlock<util::NeonArch>,
      util::NeonArch::kLanes, util::NeonArch::kILanes, "neon"};
  return &kernels;
}
#else
const BatchKernels* NeonKernels() { return nullptr; }
#endif

#if !defined(ADPROM_BATCH_AVX2)
// The AVX2 table lives in batch_forward_avx2.cc (compiled with -mavx2);
// builds without that translation unit dispatch to scalar instead.
const BatchKernels* Avx2Kernels() { return nullptr; }
#endif

namespace {

const BatchKernels& KernelsFor(util::SimdLevel level) {
  switch (level) {
    case util::SimdLevel::kAvx2:
      if (const BatchKernels* kernels = Avx2Kernels()) return *kernels;
      return ScalarKernels();
    case util::SimdLevel::kNeon:
      if (const BatchKernels* kernels = NeonKernels()) return *kernels;
      return ScalarKernels();
    case util::SimdLevel::kScalar:
      return ScalarKernels();
  }
  return ScalarKernels();
}

}  // namespace

}  // namespace internal

namespace {

/// Quantizes one probability for the triage tables: floor keeps the
/// stored log at or below the true log (the lower-bound direction), and
/// the extra LSB absorbs the at-most-1-ulp error of std::log itself.
///
/// A log below int16 range (EM can leave stored probabilities under
/// ~1.2e-14) must NOT clamp up to INT16_MIN — a raised log would let the
/// max-plus bound overshoot the exact score and falsely certify windows.
/// Such entries become kSentinel, which the kernel expands to -inf.
int16_t QuantizeLog(double p) {
  if (!(p > 0.0)) return TriageTables::kSentinel;
  const double scaled = std::floor(std::log(p) * TriageTables::kScale) - 1.0;
  if (scaled <= static_cast<double>(INT16_MIN)) {
    return TriageTables::kSentinel;
  }
  return static_cast<int16_t>(std::min(scaled, 0.0));
}

}  // namespace

TriageTables::TriageTables(const SparseHmm& model) {
  const size_t n = model.num_states();
  const size_t m = model.num_symbols();
  qpi_.resize(n);
  for (size_t s = 0; s < n; ++s) qpi_[s] = QuantizeLog(model.pi()[s]);
  const CsrMatrix& at = model.a_transpose();
  qa_transpose_.resize(at.nnz());
  for (size_t k = 0; k < at.nnz(); ++k) {
    qa_transpose_[k] = QuantizeLog(at.val[k]);
  }
  qb_transpose_.resize(m * n);
  for (size_t o = 0; o < m; ++o) {
    const double* row = model.b_transpose().RowData(o);
    for (size_t s = 0; s < n; ++s) {
      qb_transpose_[o * n + s] = QuantizeLog(row[s]);
    }
  }
  // The kernel expands pi/A sentinels on the scalar (broadcast) side, but
  // emission logs are gathered per lane with no room for a per-lane
  // expansion. Smoothed profiles keep every b(s,o) >= ~1e-6 (log >= -14),
  // so a sentinel here means an unsmoothed model: degrade gracefully by
  // disabling the triage tier for it rather than risking the bound.
  for (const int16_t q : qb_transpose_) {
    if (q == kSentinel) {
      qpi_.clear();
      qa_transpose_.clear();
      qb_transpose_.clear();
      return;
    }
  }
}

void BatchWorkspace::Reserve(size_t num_states, size_t width) {
  act_a.resize(num_states * width);
  act_b.resize(num_states * width);
  totals.resize(width);
  loglik.resize(width);
  emit_rows.resize(width);
  tri_a.resize(num_states * width);
  tri_b.resize(num_states * width);
  tri_best.resize(width);
  tri_rows.resize(width);
  pending.reserve(width);
  lane_index.reserve(width);
  spans.reserve(width);
  scores.reserve(width);
}

BatchScorer::BatchScorer(const SparseHmm* model, BatchOptions options)
    : model_(model), options_(options) {
  options_.width = std::max<size_t>(1, options_.width);
  level_ = options_.no_simd ? util::SimdLevel::kScalar
                            : util::DetectSimdLevel();
  if (options_.triage) triage_ = TriageTables(*model);
}

void BatchScorer::Reserve(BatchWorkspace* ws) const {
  if (model_ == nullptr) return;
  ws->Reserve(model_->num_states(), options_.width);
}

util::Status BatchScorer::ScoreBatch(std::span<const SymbolSpan> seqs,
                                     double triage_threshold,
                                     BatchWorkspace* ws,
                                     std::span<double> out) const {
  if (model_ == nullptr) {
    return util::Status::FailedPrecondition("BatchScorer has no model");
  }
  if (out.size() != seqs.size()) {
    return util::Status::InvalidArgument("ScoreBatch output size mismatch");
  }
  if (seqs.empty()) return util::Status::Ok();
  const size_t t_len = seqs[0].size();
  for (const SymbolSpan& seq : seqs) {
    if (seq.size() != t_len) {
      return util::Status::InvalidArgument(
          "ScoreBatch sequences must share one length");
    }
    ADPROM_RETURN_IF_ERROR(ValidateSequence(model_->num_symbols(), seq));
  }
  Reserve(ws);

  const internal::BatchKernels& kernels = internal::KernelsFor(level_);
  const bool triage =
      options_.triage && !triage_.empty() && t_len <= TriageTables::kMaxLen;
  const double per_symbol_scale =
      static_cast<double>(TriageTables::kScale) * static_cast<double>(t_len);

  // Runs the exact tier over `width` sequence pointers and writes their
  // per-symbol log-likelihoods through `emit` — SIMD over the largest
  // lane-aligned prefix, scalar kernel over the remainder lanes. Both
  // kernels are bit-identical per lane, so the split is invisible.
  auto exact_block = [&](const int* const* block_seqs, size_t width,
                         auto&& emit) {
    internal::ForwardBlockArgs args;
    args.model = model_;
    args.t_len = t_len;
    args.totals = ws->totals.data();
    args.loglik = ws->loglik.data();
    args.emit_rows = ws->emit_rows.data();
    size_t done = 0;
    const size_t aligned = width - width % kernels.lanes;
    for (const size_t part : {aligned, width - aligned}) {
      if (part == 0) continue;
      args.seqs = block_seqs + done;
      args.width = part;
      args.cur = ws->act_a.data();
      args.next = ws->act_b.data();
      (done == 0 && part == aligned ? kernels.forward
                                    : internal::ScalarKernels().forward)(
          args);
      for (size_t w = 0; w < part; ++w) {
        emit(done + w,
             ws->loglik[w] / static_cast<double>(t_len));
      }
      done += part;
    }
  };

  ws->stats.windows += seqs.size();
  for (size_t base = 0; base < seqs.size(); base += options_.width) {
    const size_t chunk = std::min(options_.width, seqs.size() - base);
    // Stage the chunk's sequence pointers (spans stay owned by the
    // caller; the kernels read raw int pointers).
    ws->pending.clear();
    for (size_t i = 0; i < chunk; ++i) {
      ws->pending.push_back(seqs[base + i].data());
    }
    const int* const* chunk_seqs = ws->pending.data();

    if (!triage) {
      exact_block(chunk_seqs, chunk,
                  [&](size_t w, double score) { out[base + w] = score; });
      continue;
    }

    // Triage tier: certified-benign lanes keep their bound; the rest are
    // compacted into a narrower exact block.
    {
      internal::TriageBlockArgs args;
      args.model = model_;
      args.tables = &triage_;
      args.t_len = t_len;
      args.best = ws->tri_best.data();
      args.emit_rows = ws->tri_rows.data();
      size_t done = 0;
      const size_t aligned = chunk - chunk % kernels.ilanes;
      for (const size_t part : {aligned, chunk - aligned}) {
        if (part == 0) continue;
        args.seqs = chunk_seqs + done;
        args.width = part;
        args.cur = ws->tri_a.data();
        args.next = ws->tri_b.data();
        (done == 0 && part == aligned ? kernels.triage
                                      : internal::ScalarKernels().triage)(
            args);
        for (size_t w = 0; w < part; ++w) {
          // A lane at or below kNegInf hit the kernel's saturation floor
          // (a sentinel factor or an underflowing path); its value is no
          // longer a proven path sum, so it must never certify.
          ws->totals[done + w] =
              ws->tri_best[w] > TriageTables::kNegInf
                  ? static_cast<double>(ws->tri_best[w]) / per_symbol_scale
                  : -HUGE_VAL;
        }
        done += part;
      }
    }
    // Partition: compact the uncertified sequence pointers to the front of
    // `pending` (reads stay ahead of writes, so in-place is safe) and
    // remember each one's original chunk lane.
    size_t uncertified = 0;
    ws->lane_index.clear();
    for (size_t w = 0; w < chunk; ++w) {
      const double bound = ws->totals[w];
      if (bound >= triage_threshold + TriageTables::kSlack) {
        out[base + w] = bound;
        ++ws->stats.triage_certified;
      } else {
        ws->pending[uncertified] = chunk_seqs[w];
        ws->lane_index.push_back(w);
        ++uncertified;
      }
    }
    if (uncertified == 0) continue;
    exact_block(ws->pending.data(), uncertified, [&](size_t w,
                                                     double score) {
      out[base + ws->lane_index[w]] = score;
    });
  }
  return util::Status::Ok();
}

}  // namespace adprom::hmm
