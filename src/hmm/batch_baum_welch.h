#ifndef ADPROM_HMM_BATCH_BAUM_WELCH_H_
#define ADPROM_HMM_BATCH_BAUM_WELCH_H_

// Batched SIMD Baum-Welch E-step engine: W equal-length sequences advance
// together through column-major (state-major, window-minor) forward AND
// backward activation blocks with lane-per-window kernels, then a fused
// per-window gamma/xi sweep adds their expected counts in exactly the
// scalar reference's term order. Results are bit-identical to the dense
// reference in baum_welch.cc for any batch width, SIMD level, and thread
// count; BaumWelchTrain routes through this engine unless
// TrainOptions::dense_kernels pins the reference or batch_width == 0 pins
// the per-sequence kernels.

#include <cstddef>
#include <span>
#include <vector>

#include "hmm/hmm_model.h"
#include "hmm/sparse.h"
#include "util/matrix.h"
#include "util/simd.h"

namespace adprom::hmm {

/// Expected-count accumulators for one shard of the training corpus.
/// (Shared by the per-sequence reference loops and the batched engine —
/// both add the same terms in the same order.)
struct EStepAccumulators {
  util::Matrix a_num;
  std::vector<double> a_den;
  util::Matrix b_num;
  std::vector<double> b_den;
  std::vector<double> pi_acc;
  double total_ll = 0.0;
  size_t used = 0;

  void Reset(size_t n, size_t m) {
    a_num.Reshape(n, n);
    a_den.assign(n, 0.0);
    b_num.Reshape(n, m);
    b_den.assign(n, 0.0);
    pi_acc.assign(n, 0.0);
    total_ll = 0.0;
    used = 0;
  }

  /// Element-wise merge. Called in fixed shard order, which keeps the
  /// floating-point summation order independent of the thread count.
  void MergeFrom(const EStepAccumulators& other) {
    const size_t n = a_den.size();
    const size_t m = b_num.cols();
    for (size_t s = 0; s < n; ++s) {
      double* a_row = a_num.RowData(s);
      const double* oa_row = other.a_num.RowData(s);
      for (size_t q = 0; q < n; ++q) a_row[q] += oa_row[q];
      double* b_row = b_num.RowData(s);
      const double* ob_row = other.b_num.RowData(s);
      for (size_t o = 0; o < m; ++o) b_row[o] += ob_row[o];
      a_den[s] += other.a_den[s];
      b_den[s] += other.b_den[s];
      pi_acc[s] += other.pi_acc[s];
    }
    total_ll += other.total_ll;
    used += other.used;
  }
};

/// Reusable buffers for one shard's batched E-step. Reserve() sizes
/// everything up front so AccumulateBlock allocates nothing in steady
/// state (property-tested with the operator-new hook, like
/// BatchWorkspace).
struct BatchTrainWorkspace {
  // Persistent activation history: t_len x num_states x width blocks,
  // state-major within a step, window-minor within a state.
  std::vector<double> alpha;
  std::vector<double> beta;
  std::vector<double> scale;   // t_len x width (post-floor totals)
  std::vector<double> loglik;  // width
  // Backward scratch: the b(q, o_{t+1}) * beta_{t+1}(q) block, n x width.
  std::vector<double> emit_block;
  std::vector<const double*> emit_rows;  // width emission-row pointers
  std::vector<const int*> seq_ptrs;      // width staged sequence pointers
  // Per-window sweep scratch: one lane de-strided into contiguous
  // t_len x num_states panels so the gamma/xi loops run cache-resident.
  std::vector<double> alpha_w;
  std::vector<double> beta_w;
  std::vector<double> scale_w;
  // The hoisted b(q, o_{t+1}) * beta_{t+1}(q) factors for every step of
  // the window at once (t_len x num_states), so the xi sweep can run
  // source-state-major with each A/a_num row pair cache-hot across t.
  std::vector<double> emit_panel;
  // Per-source-state compaction of the steps with nonzero alpha: their
  // alpha values and emit_panel row pointers, in ascending-t order.
  std::vector<double> xi_alpha;
  std::vector<const double*> xi_emit;

  void Reserve(size_t num_states, size_t width, size_t max_len);
};

/// The batched E-step engine: owns the dispatch decision (runtime SIMD
/// level, scalar pin) and the block width; stateless across calls apart
/// from that, so one instance is shared by all shards of a training run.
class BatchEStep {
 public:
  explicit BatchEStep(size_t width = 16, bool no_simd = false);

  size_t width() const { return width_; }
  util::SimdLevel simd_level() const { return level_; }
  const char* kernel_name() const;

  /// Sizes `ws` for blocks of up to width() sequences of length
  /// <= max_len over a num_states-state model.
  void Reserve(size_t num_states, size_t max_len,
               BatchTrainWorkspace* ws) const;

  /// Adds the expected counts of `seqs` (equal-length, seqs.size() <=
  /// width(), symbols already validated) to `acc`, bit-identically to
  /// running the dense reference over them in order. Forward/backward
  /// walk `sparse`'s CSR structure; the xi sweep uses the CSR rows when
  /// `csr_xi` is set and the dense rows of `model` otherwise (the same
  /// density decision the per-sequence kernels make).
  void AccumulateBlock(const HmmModel& model, const SparseHmm& sparse,
                       bool csr_xi, std::span<const ObservationSeq> seqs,
                       BatchTrainWorkspace* ws, EStepAccumulators* acc) const;

 private:
  size_t width_;
  util::SimdLevel level_;
};

}  // namespace adprom::hmm

#endif  // ADPROM_HMM_BATCH_BAUM_WELCH_H_
