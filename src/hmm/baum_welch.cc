#include "hmm/baum_welch.h"

#include <cmath>

#include "hmm/inference.h"

namespace adprom::hmm {

util::Result<TrainStats> BaumWelchTrain(
    HmmModel* model, const std::vector<ObservationSeq>& sequences,
    const TrainOptions& options) {
  if (sequences.empty())
    return util::Status::InvalidArgument("no training sequences");
  for (const ObservationSeq& seq : sequences) {
    if (seq.empty())
      return util::Status::InvalidArgument("empty training sequence");
  }

  const size_t n = model->num_states();
  const size_t m = model->num_symbols();
  TrainStats stats;
  double prev_mean_ll = -std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Expected-count accumulators across all sequences.
    util::Matrix a_num(n, n);
    std::vector<double> a_den(n, 0.0);
    util::Matrix b_num(n, m);
    std::vector<double> b_den(n, 0.0);
    std::vector<double> pi_acc(n, 0.0);

    double total_ll = 0.0;
    size_t used = 0;
    for (const ObservationSeq& seq : sequences) {
      ADPROM_ASSIGN_OR_RETURN(ForwardVariables fw, Forward(*model, seq));
      if (fw.log_likelihood < -1e17) continue;  // ~zero-probability outlier
      ADPROM_ASSIGN_OR_RETURN(util::Matrix beta,
                              Backward(*model, seq, fw.scale));
      total_ll += fw.log_likelihood;
      ++used;
      const size_t t_len = seq.size();

      // gamma_t(s) ∝ alpha_t(s) * beta_t(s); with Rabiner scaling the
      // product needs a factor scale[t] to be a proper distribution.
      for (size_t t = 0; t < t_len; ++t) {
        const double* alpha_t = fw.alpha.RowData(t);
        const double* beta_t = beta.RowData(t);
        const double scale_t = fw.scale[t];
        for (size_t s = 0; s < n; ++s) {
          const double gamma = alpha_t[s] * beta_t[s] * scale_t;
          if (t == 0) pi_acc[s] += gamma;
          b_num.At(s, seq[t]) += gamma;
          b_den[s] += gamma;
          if (t + 1 < t_len) a_den[s] += gamma;
        }
      }
      // xi_t(s,q) = alpha_t(s) A(s,q) B(q,o_{t+1}) beta_{t+1}(q); the
      // emission*beta factor is hoisted per (t, q).
      std::vector<double> emit_next(n);
      for (size_t t = 0; t + 1 < t_len; ++t) {
        const double* alpha_t = fw.alpha.RowData(t);
        const double* beta_next = beta.RowData(t + 1);
        for (size_t q = 0; q < n; ++q) {
          emit_next[q] = model->b().At(q, seq[t + 1]) * beta_next[q];
        }
        for (size_t s = 0; s < n; ++s) {
          const double alpha_ts = alpha_t[s];
          if (alpha_ts == 0.0) continue;
          const double* a_row = model->a().RowData(s);
          double* out_row = a_num.RowData(s);
          for (size_t q = 0; q < n; ++q) {
            out_row[q] += alpha_ts * a_row[q] * emit_next[q];
          }
        }
      }
    }

    if (used == 0) {
      return util::Status::FailedPrecondition(
          "model assigns zero probability to every training sequence");
    }

    // Re-estimate with a smoothing floor.
    for (size_t s = 0; s < n; ++s) {
      for (size_t q = 0; q < n; ++q) {
        model->mutable_a().At(s, q) =
            a_den[s] > 0.0 ? a_num.At(s, q) / a_den[s] : model->a().At(s, q);
      }
      for (size_t o = 0; o < m; ++o) {
        model->mutable_b().At(s, o) =
            b_den[s] > 0.0 ? b_num.At(s, o) / b_den[s] : model->b().At(s, o);
      }
    }
    double pi_total = 0.0;
    for (double v : pi_acc) pi_total += v;
    if (pi_total > 0.0) {
      for (size_t s = 0; s < n; ++s)
        model->mutable_pi()[s] = pi_acc[s] / pi_total;
    }
    if (options.smoothing > 0.0) model->Smooth(options.smoothing);

    const double mean_ll = total_ll / static_cast<double>(used);
    stats.log_likelihood_curve.push_back(mean_ll);
    stats.iterations = iter + 1;

    if (options.keep_going && !options.keep_going(iter, *model)) {
      stats.stopped_by_callback = true;
      break;
    }
    if (iter > 0 && mean_ll - prev_mean_ll < options.tolerance) {
      stats.converged = true;
      break;
    }
    prev_mean_ll = mean_ll;
  }
  return std::move(stats);
}

}  // namespace adprom::hmm
