#include "hmm/baum_welch.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>

#include "hmm/batch_baum_welch.h"
#include "hmm/inference.h"
#include "hmm/sparse.h"
#include "util/logging.h"
#include "util/strings.h"

namespace adprom::hmm {

namespace {

/// Upper bound on E-step shards. The shard layout must not depend on the
/// thread count (that is what makes parallel training bit-identical to
/// serial), so the corpus is always cut into min(kMaxShards, #sequences)
/// contiguous blocks and the per-shard partial sums are merged in shard
/// order. 16 shards keep the peak accumulator memory modest (each shard
/// holds an N x N + N x M count matrix) while still feeding 16 workers.
constexpr size_t kMaxShards = 16;

// EStepAccumulators lives in batch_baum_welch.h now, shared between these
// per-sequence reference loops and the batched engine.

/// Adds one sequence's expected counts to `acc`. The arithmetic (and its
/// order) is exactly the seed serial implementation's; only the buffers
/// are reused across calls. When `sparse` is non-null the forward/backward
/// passes and the xi accumulation iterate only A's stored nonzeros, in the
/// same index order as the dense loops — the skipped terms are exact
/// zeros, so the result is bit-identical.
void AccumulateSequence(const HmmModel& model, const SparseHmm* sparse,
                        const ObservationSeq& seq, ForwardWorkspace* fw_ws,
                        BackwardWorkspace* bw_ws,
                        std::vector<double>* emit_scratch,
                        EStepAccumulators* acc) {
  const size_t n = model.num_states();
  auto fw = sparse != nullptr ? ForwardInto(*sparse, seq, fw_ws)
                              : ForwardInto(model, seq, fw_ws);
  ADPROM_CHECK(fw.ok());  // symbols were validated before training began
  if (*fw < -1e17) return;  // ~zero-probability outlier
  if (sparse != nullptr) {
    ADPROM_CHECK(BackwardInto(*sparse, seq, fw_ws->scale, bw_ws).ok());
  } else {
    ADPROM_CHECK(BackwardInto(model, seq, fw_ws->scale, bw_ws).ok());
  }
  acc->total_ll += *fw;
  ++acc->used;
  const size_t t_len = seq.size();
  const util::Matrix& alpha = fw_ws->alpha;
  const util::Matrix& beta = bw_ws->beta;

  // gamma_t(s) ∝ alpha_t(s) * beta_t(s); with Rabiner scaling the
  // product needs a factor scale[t] to be a proper distribution.
  for (size_t t = 0; t < t_len; ++t) {
    const double* alpha_t = alpha.RowData(t);
    const double* beta_t = beta.RowData(t);
    const double scale_t = fw_ws->scale[t];
    for (size_t s = 0; s < n; ++s) {
      const double gamma = alpha_t[s] * beta_t[s] * scale_t;
      if (t == 0) acc->pi_acc[s] += gamma;
      acc->b_num.At(s, seq[t]) += gamma;
      acc->b_den[s] += gamma;
      if (t + 1 < t_len) acc->a_den[s] += gamma;
    }
  }
  // xi_t(s,q) = alpha_t(s) A(s,q) B(q,o_{t+1}) beta_{t+1}(q); the
  // emission*beta factor is hoisted per (t, q).
  std::vector<double>& emit_next = *emit_scratch;
  emit_next.assign(n, 0.0);
  for (size_t t = 0; t + 1 < t_len; ++t) {
    const double* alpha_t = alpha.RowData(t);
    const double* beta_next = beta.RowData(t + 1);
    for (size_t q = 0; q < n; ++q) {
      emit_next[q] = model.b().At(q, seq[t + 1]) * beta_next[q];
    }
    if (sparse != nullptr) {
      const CsrMatrix& a = sparse->a();
      for (size_t s = 0; s < n; ++s) {
        const double alpha_ts = alpha_t[s];
        if (alpha_ts == 0.0) continue;
        double* out_row = acc->a_num.RowData(s);
        for (size_t k = a.row_ptr[s]; k < a.row_ptr[s + 1]; ++k) {
          const size_t q = a.col[k];
          out_row[q] += alpha_ts * a.val[k] * emit_next[q];
        }
      }
    } else {
      for (size_t s = 0; s < n; ++s) {
        const double alpha_ts = alpha_t[s];
        if (alpha_ts == 0.0) continue;
        const double* a_row = model.a().RowData(s);
        double* out_row = acc->a_num.RowData(s);
        for (size_t q = 0; q < n; ++q) {
          out_row[q] += alpha_ts * a_row[q] * emit_next[q];
        }
      }
    }
  }
}

/// Per-shard state: the accumulators plus the reused inference buffers.
struct Shard {
  size_t begin = 0;
  size_t end = 0;
  EStepAccumulators acc;
  ForwardWorkspace fw_ws;
  BackwardWorkspace bw_ws;
  std::vector<double> emit_scratch;
  BatchTrainWorkspace batch_ws;
};

}  // namespace

util::Result<TrainStats> BaumWelchTrain(
    HmmModel* model, const std::vector<ObservationSeq>& sequences,
    const TrainOptions& options, util::ThreadPool* pool) {
  if (sequences.empty())
    return util::Status::InvalidArgument("no training sequences");
  for (const ObservationSeq& seq : sequences) {
    if (seq.empty())
      return util::Status::InvalidArgument("empty training sequence");
    for (int symbol : seq) {
      if (symbol < 0 ||
          static_cast<size_t>(symbol) >= model->num_symbols()) {
        return util::Status::OutOfRange(util::StrFormat(
            "symbol %d out of range [0, %zu)", symbol,
            model->num_symbols()));
      }
    }
  }

  const size_t n = model->num_states();
  const size_t m = model->num_symbols();
  TrainStats stats;
  stats.log_likelihood_curve.reserve(
      static_cast<size_t>(std::max(options.max_iterations, 0)));
  double prev_mean_ll = -std::numeric_limits<double>::infinity();

  // Contiguous shard layout, a function of the corpus size only.
  const size_t num_shards = std::min(kMaxShards, sequences.size());
  std::vector<Shard> shards(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    shards[k].begin = k * sequences.size() / num_shards;
    shards[k].end = (k + 1) * sequences.size() / num_shards;
  }

  // The batched engine advances runs of equal-length sequences together;
  // dense_kernels pins the scalar reference and batch_width == 0 the
  // per-sequence kernels (all three paths train the bit-identical model).
  const bool batched = !options.dense_kernels && options.batch_width > 0;
  const BatchEStep estep(options.batch_width, options.no_simd);
  if (batched) {
    size_t max_len = 0;
    for (const ObservationSeq& seq : sequences) {
      max_len = std::max(max_len, seq.size());
    }
    for (Shard& shard : shards) {
      estep.Reserve(n, max_len, &shard.batch_ws);
    }
  }

  // The caller's pool, or an internal one when more than one thread is
  // requested and there is more than one shard to fan out.
  std::unique_ptr<util::ThreadPool> owned_pool;
  if (pool == nullptr && num_shards > 1) {
    const size_t threads = util::ResolveThreadCount(options.num_threads);
    if (threads > 1) {
      owned_pool = std::make_unique<util::ThreadPool>(
          std::min(threads, num_shards));
      pool = owned_pool.get();
    }
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Rebuild the CSR view of the (just re-estimated) model. The O(N²)
    // scan is negligible next to the O(ΣT·nnz) E-step, and the read-only
    // SparseHmm is shared safely across the shard workers.
    SparseHmm sparse_model;
    const SparseHmm* sparse = nullptr;
    if (!options.dense_kernels) {
      sparse_model = SparseHmm(*model);
      // Past the density cutoff the gathers cost more than the skipped
      // zeros; run the dense loops instead (bit-identical either way).
      if (sparse_model.transition_density() <=
          options.sparse_density_cutoff) {
        sparse = &sparse_model;
      }
    }

    // E-step: every shard accumulates its block of sequences. The batched
    // path advances maximal runs of consecutive equal-length sequences
    // (capped at batch_width) through the block kernels; runs are formed
    // in corpus order, so the accumulation order — and the result — is
    // exactly the per-sequence path's.
    util::ParallelFor(pool, num_shards, [&](size_t k) {
      Shard& shard = shards[k];
      shard.acc.Reset(n, m);
      if (batched) {
        const bool csr_xi = sparse != nullptr;
        size_t i = shard.begin;
        while (i < shard.end) {
          size_t run = 1;
          const size_t len = sequences[i].size();
          while (i + run < shard.end && run < estep.width() &&
                 sequences[i + run].size() == len) {
            ++run;
          }
          estep.AccumulateBlock(
              *model, sparse_model, csr_xi,
              std::span<const ObservationSeq>(&sequences[i], run),
              &shard.batch_ws, &shard.acc);
          i += run;
        }
        return;
      }
      for (size_t i = shard.begin; i < shard.end; ++i) {
        AccumulateSequence(*model, sparse, sequences[i], &shard.fw_ws,
                           &shard.bw_ws, &shard.emit_scratch, &shard.acc);
      }
    });

    // Merge in fixed shard order (shard 0 is the merge target).
    EStepAccumulators& total = shards[0].acc;
    for (size_t k = 1; k < num_shards; ++k) total.MergeFrom(shards[k].acc);

    if (total.used == 0) {
      return util::Status::FailedPrecondition(
          "model assigns zero probability to every training sequence");
    }

    // M-step: re-estimate with a smoothing floor.
    for (size_t s = 0; s < n; ++s) {
      for (size_t q = 0; q < n; ++q) {
        model->mutable_a().At(s, q) =
            total.a_den[s] > 0.0 ? total.a_num.At(s, q) / total.a_den[s]
                                 : model->a().At(s, q);
      }
      for (size_t o = 0; o < m; ++o) {
        model->mutable_b().At(s, o) =
            total.b_den[s] > 0.0 ? total.b_num.At(s, o) / total.b_den[s]
                                 : model->b().At(s, o);
      }
    }
    double pi_total = 0.0;
    for (double v : total.pi_acc) pi_total += v;
    if (pi_total > 0.0) {
      for (size_t s = 0; s < n; ++s)
        model->mutable_pi()[s] = total.pi_acc[s] / pi_total;
    }
    if (options.smoothing > 0.0) {
      if (options.smooth_transitions) {
        model->Smooth(options.smoothing);
      } else {
        model->SmoothEmissions(options.smoothing);
      }
    }

    const double mean_ll =
        total.total_ll / static_cast<double>(total.used);
    stats.log_likelihood_curve.push_back(mean_ll);
    stats.iterations = iter + 1;
    // The executed path can flip between iterations (Smooth densifies A,
    // which moves the density across the CSR cutoff); report the last one.
    stats.kernel = batched ? "batch" : (sparse != nullptr ? "csr" : "dense");
    stats.simd_level = batched ? estep.kernel_name() : "scalar";

    if (options.keep_going && !options.keep_going(iter, *model)) {
      stats.stopped_by_callback = true;
      break;
    }
    if (iter > 0 && mean_ll - prev_mean_ll < options.tolerance) {
      stats.converged = true;
      break;
    }
    prev_mean_ll = mean_ll;
  }
  return std::move(stats);
}

}  // namespace adprom::hmm
