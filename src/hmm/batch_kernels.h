#ifndef ADPROM_HMM_BATCH_KERNELS_H_
#define ADPROM_HMM_BATCH_KERNELS_H_

// Internal header: the templated kernel bodies behind BatchScorer. Each
// ISA-specific translation unit (batch_forward.cc for scalar/NEON,
// batch_forward_avx2.cc for AVX2) instantiates ForwardBlock / TriageBlock
// with its util::simd.h Arch and exports them through a BatchKernels
// function table; the dispatcher in batch_forward.cc picks a table at
// runtime. These TUs are compiled with -ffp-contract=off so no flavour can
// fuse a multiply-add the scalar reference keeps separate.

#include <cmath>
#include <cstdint>

#include "hmm/batch_forward.h"
#include "hmm/sparse.h"

namespace adprom::hmm::internal {

/// One block of W equal-length windows for the exact tier. `width` must be
/// a multiple of the instantiating Arch's lane count (the dispatcher peels
/// the remainder onto the scalar kernel, which accepts any width).
struct ForwardBlockArgs {
  const SparseHmm* model = nullptr;
  const int* const* seqs = nullptr;  // width sequence pointers
  size_t width = 0;
  size_t t_len = 0;
  double* cur = nullptr;             // num_states x width, state-major
  double* next = nullptr;            // num_states x width scratch
  double* totals = nullptr;          // width
  double* loglik = nullptr;          // width (written)
  const double** emit_rows = nullptr;  // width scratch
};

/// One block of W equal-length windows for the quantized triage tier.
struct TriageBlockArgs {
  const SparseHmm* model = nullptr;
  const TriageTables* tables = nullptr;
  const int* const* seqs = nullptr;
  size_t width = 0;
  size_t t_len = 0;
  int32_t* cur = nullptr;            // num_states x width
  int32_t* next = nullptr;
  int32_t* best = nullptr;           // width (written): quantized bound
  const int16_t** emit_rows = nullptr;  // width scratch
};

using ForwardBlockFn = void (*)(const ForwardBlockArgs&);
using TriageBlockFn = void (*)(const TriageBlockArgs&);

struct BatchKernels {
  ForwardBlockFn forward = nullptr;
  TriageBlockFn triage = nullptr;
  /// Double lanes (the exact tier's width granularity).
  size_t lanes = 1;
  /// Int32 lanes (the triage tier's width granularity — wider than
  /// `lanes` where the ISA packs more int32 than doubles per register).
  size_t ilanes = 1;
  const char* name = "scalar";
};

/// One t>0 step of the exact tier for a tile of U lane-groups (U * kLanes
/// windows): destination-major gather over Aᵀ with the emission multiply
/// and per-step total fused in. U accumulators share each nonzero's
/// broadcast and CSR decode, so larger tiles amortize the sweep's
/// structure traffic; U is a compile-time constant so the accumulators
/// stay in registers.
template <class Arch, size_t U>
inline void ForwardStepTile(const CsrMatrix& at, size_t n, size_t width,
                            size_t w0, const double* cur, double* next,
                            const double* const* emit_rows, double* totals) {
  using D = typename Arch::D;
  constexpr size_t kL = Arch::kLanes;
  D total[U];
  for (size_t u = 0; u < U; ++u) total[u] = Arch::ZeroD();
  for (size_t s = 0; s < n; ++s) {
    D acc[U];
    for (size_t u = 0; u < U; ++u) acc[u] = Arch::ZeroD();
    const size_t end = at.row_ptr[s + 1];
    for (size_t k = at.row_ptr[s]; k < end; ++k) {
      const D val = Arch::BroadcastD(at.val[k]);
      const double* alpha = cur + at.col[k] * width + w0;
      for (size_t u = 0; u < U; ++u) {
        acc[u] =
            Arch::AddD(acc[u], Arch::MulD(Arch::LoadD(alpha + u * kL), val));
      }
    }
    for (size_t u = 0; u < U; ++u) {
      const D v =
          Arch::MulD(acc[u], Arch::GatherD(emit_rows + w0 + u * kL, s));
      Arch::StoreD(next + s * width + w0 + u * kL, v);
      total[u] = Arch::AddD(total[u], v);
    }
  }
  for (size_t u = 0; u < U; ++u) {
    Arch::StoreD(totals + w0 + u * kL, total[u]);
  }
}

/// The exact tier: the scaled forward recursion of ForwardInto, advanced
/// one time-step per pass for all `width` windows at once. Lane w runs
/// the scalar recursion verbatim — same mul/add/div/max sequence in the
/// same order — so its result is bit-identical to
/// ForwardInto(model, seqs[w], ...).
///
/// The transition sweep runs destination-major over Aᵀ so each
/// destination's accumulator lives in a register for its whole reduction
/// (a scatter re-loads and re-stores the next-block cell once per
/// nonzero; on profile-sized models that traffic is the kernel's
/// bottleneck). Bit-identity survives the transposed order: ForwardInto's
/// source-major scatter applies each destination's updates in ascending
/// predecessor order, and Aᵀ's CSR rows list predecessors ascending, so
/// the gather reduces the exact same terms in the exact same order.
/// Predecessors ForwardInto skips (alpha_p == 0.0, or cells absent from
/// the CSR) contribute `0.0 * val == +0.0` to a non-negative accumulator
/// — a bitwise no-op.
template <class Arch>
void ForwardBlock(const ForwardBlockArgs& g) {
  using D = typename Arch::D;
  constexpr size_t kL = Arch::kLanes;
  const CsrMatrix& at = g.model->a_transpose();
  const util::Matrix& bt = g.model->b_transpose();
  const double* pi = g.model->pi().data();
  const size_t n = g.model->num_states();
  const size_t width = g.width;
  const D floor_v = Arch::BroadcastD(kScaleFloor);

  double* cur = g.cur;
  double* next = g.next;
  for (size_t w = 0; w < width; ++w) g.loglik[w] = 0.0;

  for (size_t t = 0; t < g.t_len; ++t) {
    for (size_t w = 0; w < width; ++w) {
      g.emit_rows[w] = bt.RowData(static_cast<size_t>(g.seqs[w][t]));
    }
    if (t == 0) {
      // alpha_0(s) = pi(s) * b(s, o_0), with the per-step total fused in
      // — the same single multiply and s-ascending total accumulation the
      // scalar kernel uses.
      for (size_t w0 = 0; w0 < width; w0 += kL) {
        D total = Arch::ZeroD();
        for (size_t s = 0; s < n; ++s) {
          const D v = Arch::MulD(Arch::BroadcastD(pi[s]),
                                 Arch::GatherD(g.emit_rows + w0, s));
          Arch::StoreD(cur + s * width + w0, v);
          total = Arch::AddD(total, v);
        }
        Arch::StoreD(g.totals + w0, total);
      }
    } else {
      // Greedy tile schedule: widest tiles first, singles for whatever
      // lane-groups remain (width is always a multiple of kLanes).
      size_t w0 = 0;
      while (w0 < width) {
        const size_t groups = (width - w0) / kL;
        if (groups >= 4) {
          ForwardStepTile<Arch, 4>(at, n, width, w0, cur, next,
                                   g.emit_rows, g.totals);
          w0 += 4 * kL;
        } else if (groups >= 2) {
          ForwardStepTile<Arch, 2>(at, n, width, w0, cur, next,
                                   g.emit_rows, g.totals);
          w0 += 2 * kL;
        } else {
          ForwardStepTile<Arch, 1>(at, n, width, w0, cur, next,
                                   g.emit_rows, g.totals);
          w0 += kL;
        }
      }
      double* swap = cur;
      cur = next;
      next = swap;
    }
    // Floored scale and renormalization — the same op sequence per lane
    // as the scalar kernel's tail loops.
    for (size_t w0 = 0; w0 < width; w0 += kL) {
      const D total =
          Arch::FloorScaleD(floor_v, Arch::LoadD(g.totals + w0));
      Arch::StoreD(g.totals + w0, total);
      for (size_t s = 0; s < n; ++s) {
        double* cell = cur + s * width + w0;
        Arch::StoreD(cell, Arch::DivD(Arch::LoadD(cell), total));
      }
    }
    for (size_t w = 0; w < width; ++w) {
      g.loglik[w] += std::log(g.totals[w]);
    }
  }
}

/// One t>0 step of the triage tier for a tile of U int-lane-groups,
/// mirroring ForwardStepTile: U best-trackers share each nonzero's
/// broadcast and CSR decode. Integer max-plus is exact, so tiling cannot
/// change the bounds.
template <class Arch, size_t U>
inline void TriageStepTile(const CsrMatrix& at, size_t n, size_t width,
                           size_t w0, const int32_t* cur, int32_t* next,
                           const int16_t* const* emit_rows,
                           const int16_t* qa, typename Arch::I neg_inf) {
  using I = typename Arch::I;
  constexpr size_t kIL = Arch::kILanes;
  const auto expand = [](int16_t q) -> int32_t {
    return q == TriageTables::kSentinel ? TriageTables::kNegInf : q;
  };
  for (size_t s = 0; s < n; ++s) {
    I best[U];
    for (size_t u = 0; u < U; ++u) best[u] = neg_inf;
    const size_t end = at.row_ptr[s + 1];
    for (size_t k = at.row_ptr[s]; k < end; ++k) {
      const I qv = Arch::BroadcastI(expand(qa[k]));
      const int32_t* c = cur + at.col[k] * width + w0;
      for (size_t u = 0; u < U; ++u) {
        best[u] =
            Arch::MaxI(best[u], Arch::AddI(Arch::LoadI(c + u * kIL), qv));
      }
    }
    for (size_t u = 0; u < U; ++u) {
      const I v = Arch::AddI(best[u],
                             Arch::GatherI16(emit_rows + w0 + u * kIL, s));
      Arch::StoreI(next + s * width + w0 + u * kIL, Arch::MaxI(v, neg_inf));
    }
  }
}

/// The triage tier: a max-plus Viterbi pass over the prepared int16 log
/// tables with int32 accumulation. best[w] / (kScale * t_len) is a sound
/// lower bound on lane w's exact per-symbol log-likelihood (quantization
/// rounds down; the best path never exceeds the path sum). Integer adds
/// and maxes are exact, so lane order is irrelevant here — every arch
/// computes the same bounds.
///
/// pi/A sentinels (logs below int16 range) expand to kNegInf on the
/// scalar broadcast side, and every write saturates at kNegInf. The
/// saturation keeps the accumulators provably inside int32 — cur stays in
/// [kNegInf, 0], so cur + qa >= 2*kNegInf == INT32_MIN never wraps — at
/// the price that a lane whose winning chain ever touched the floor ends
/// at <= kNegInf with a value that is no longer a faithful path sum
/// (factors after the floor only subtract, re-floors only restore
/// kNegInf). The dispatcher therefore refuses to certify lanes that
/// finish at or below kNegInf; lanes above it never saturated, so their
/// bound is proven.
template <class Arch>
void TriageBlock(const TriageBlockArgs& g) {
  using I = typename Arch::I;
  constexpr size_t kL = Arch::kILanes;
  const CsrMatrix& at = g.model->a_transpose();
  const TriageTables& tables = *g.tables;
  const int16_t* qb = tables.qb_transpose().data();
  const int16_t* qa = tables.qa_transpose().data();
  const int16_t* qpi = tables.qpi().data();
  const size_t n = g.model->num_states();
  const size_t width = g.width;
  const I neg_inf = Arch::BroadcastI(TriageTables::kNegInf);
  const auto expand = [](int16_t q) -> int32_t {
    return q == TriageTables::kSentinel ? TriageTables::kNegInf : q;
  };

  int32_t* cur = g.cur;
  int32_t* next = g.next;
  for (size_t t = 0; t < g.t_len; ++t) {
    for (size_t w = 0; w < width; ++w) {
      g.emit_rows[w] = qb + static_cast<size_t>(g.seqs[w][t]) * n;
    }
    if (t == 0) {
      for (size_t w0 = 0; w0 < width; w0 += kL) {
        for (size_t s = 0; s < n; ++s) {
          const I v = Arch::AddI(Arch::BroadcastI(expand(qpi[s])),
                                 Arch::GatherI16(g.emit_rows + w0, s));
          Arch::StoreI(cur + s * width + w0, Arch::MaxI(v, neg_inf));
        }
      }
      continue;
    }
    size_t w0 = 0;
    while (w0 < width) {
      const size_t groups = (width - w0) / kL;
      if (groups >= 4) {
        TriageStepTile<Arch, 4>(at, n, width, w0, cur, next, g.emit_rows,
                                qa, neg_inf);
        w0 += 4 * kL;
      } else if (groups >= 2) {
        TriageStepTile<Arch, 2>(at, n, width, w0, cur, next, g.emit_rows,
                                qa, neg_inf);
        w0 += 2 * kL;
      } else {
        TriageStepTile<Arch, 1>(at, n, width, w0, cur, next, g.emit_rows,
                                qa, neg_inf);
        w0 += kL;
      }
    }
    int32_t* swap = cur;
    cur = next;
    next = swap;
  }
  for (size_t w = 0; w < width; ++w) {
    int32_t best = TriageTables::kNegInf;
    for (size_t s = 0; s < n; ++s) {
      const int32_t v = cur[s * width + w];
      if (v > best) best = v;
    }
    g.best[w] = best;
  }
}

/// The scalar table (always available; accepts any width).
const BatchKernels& ScalarKernels();
/// The AVX2 table, or null when the build lacks the AVX2 translation unit.
const BatchKernels* Avx2Kernels();
/// The NEON table, or null off AArch64.
const BatchKernels* NeonKernels();

}  // namespace adprom::hmm::internal

#endif  // ADPROM_HMM_BATCH_KERNELS_H_
