#include "hmm/sparse.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace adprom::hmm {

CsrMatrix CsrMatrix::FromDense(const util::Matrix& dense) {
  CsrMatrix out;
  out.rows = dense.rows();
  out.cols = dense.cols();
  out.row_ptr.assign(out.rows + 1, 0);
  size_t nnz = 0;
  for (size_t r = 0; r < out.rows; ++r) {
    const double* row = dense.RowData(r);
    for (size_t c = 0; c < out.cols; ++c) nnz += row[c] != 0.0;
  }
  out.col.reserve(nnz);
  out.val.reserve(nnz);
  for (size_t r = 0; r < out.rows; ++r) {
    const double* row = dense.RowData(r);
    for (size_t c = 0; c < out.cols; ++c) {
      if (row[c] != 0.0) {
        out.col.push_back(c);
        out.val.push_back(row[c]);
      }
    }
    out.row_ptr[r + 1] = out.col.size();
  }
  return out;
}

double CsrMatrix::Density() const {
  const size_t cells = rows * cols;
  if (cells == 0) return 1.0;
  return static_cast<double>(nnz()) / static_cast<double>(cells);
}

SparseHmm::SparseHmm(const HmmModel& model)
    : a_(CsrMatrix::FromDense(model.a())),
      a_transpose_(CsrMatrix::FromDense(model.a().Transpose())),
      b_transpose_(model.b().Transpose()),
      pi_(model.pi()) {}

util::Result<double> ForwardInto(const SparseHmm& model, SymbolSpan seq,
                                 ForwardWorkspace* ws) {
  ADPROM_RETURN_IF_ERROR(ValidateSequence(model.num_symbols(), seq));
  const size_t n = model.num_states();
  const size_t t_len = seq.size();

  ws->alpha.Reshape(t_len, n);
  ws->scale.assign(t_len, 0.0);

  // t = 0: π and B are dense (the emission smoothing keeps them positive),
  // so this step is the dense one verbatim, just with B's column read as a
  // contiguous Bᵀ row.
  double total = 0.0;
  {
    const double* b0 = model.b_transpose().RowData(seq[0]);
    double* row0 = ws->alpha.RowData(0);
    for (size_t s = 0; s < n; ++s) {
      const double v = model.pi()[s] * b0[s];
      row0[s] = v;
      total += v;
    }
    total = std::max(total, kScaleFloor);
    ws->scale[0] = total;
    for (size_t s = 0; s < n; ++s) row0[s] /= total;
  }

  // t > 0: the O(N²) scatter visits only A's stored nonzeros. A skipped
  // cell contributes `alpha_p * 0.0 == +0.0` in the dense loop, and adding
  // +0.0 to the (non-negative) accumulator is a bitwise no-op, so the
  // result is identical.
  const CsrMatrix& a = model.a();
  for (size_t t = 1; t < t_len; ++t) {
    total = 0.0;
    const double* prev = ws->alpha.RowData(t - 1);
    double* cur = ws->alpha.RowData(t);
    for (size_t s = 0; s < n; ++s) cur[s] = 0.0;
    for (size_t p = 0; p < n; ++p) {
      const double alpha_p = prev[p];
      if (alpha_p == 0.0) continue;
      const size_t end = a.row_ptr[p + 1];
      for (size_t k = a.row_ptr[p]; k < end; ++k) {
        cur[a.col[k]] += alpha_p * a.val[k];
      }
    }
    const double* b_col = model.b_transpose().RowData(seq[t]);
    for (size_t s = 0; s < n; ++s) {
      cur[s] *= b_col[s];
      total += cur[s];
    }
    total = std::max(total, kScaleFloor);
    ws->scale[t] = total;
    for (size_t s = 0; s < n; ++s) cur[s] /= total;
  }

  double log_likelihood = 0.0;
  for (double c : ws->scale) log_likelihood += std::log(c);
  return log_likelihood;
}

util::Result<double> PerSymbolLogLikelihood(const SparseHmm& model,
                                            SymbolSpan seq,
                                            ForwardWorkspace* workspace) {
  ADPROM_ASSIGN_OR_RETURN(double log_likelihood,
                          ForwardInto(model, seq, workspace));
  return log_likelihood / static_cast<double>(seq.size());
}

util::Status BackwardInto(const SparseHmm& model, SymbolSpan seq,
                          const std::vector<double>& scale,
                          BackwardWorkspace* ws) {
  ADPROM_RETURN_IF_ERROR(ValidateSequence(model.num_symbols(), seq));
  if (scale.size() != seq.size())
    return util::Status::InvalidArgument("scale size mismatch");
  const size_t n = model.num_states();
  const size_t t_len = seq.size();

  ws->beta.Reshape(t_len, n);
  ws->emit_next.assign(n, 0.0);
  util::Matrix& beta = ws->beta;
  std::vector<double>& emit_next = ws->emit_next;
  for (size_t s = 0; s < n; ++s)
    beta.At(t_len - 1, s) = 1.0 / scale[t_len - 1];
  const CsrMatrix& a = model.a();
  for (size_t t = t_len - 1; t-- > 0;) {
    const double* next = beta.RowData(t + 1);
    double* cur = beta.RowData(t);
    const double* b_next = model.b_transpose().RowData(seq[t + 1]);
    for (size_t q = 0; q < n; ++q) emit_next[q] = b_next[q] * next[q];
    for (size_t s = 0; s < n; ++s) {
      double acc = 0.0;
      const size_t end = a.row_ptr[s + 1];
      for (size_t k = a.row_ptr[s]; k < end; ++k) {
        acc += a.val[k] * emit_next[a.col[k]];
      }
      cur[s] = acc / scale[t];
    }
  }
  return util::Status::Ok();
}

util::Result<std::vector<size_t>> Viterbi(const SparseHmm& model,
                                          SymbolSpan seq) {
  ADPROM_RETURN_IF_ERROR(ValidateSequence(model.num_symbols(), seq));
  const size_t n = model.num_states();
  const size_t t_len = seq.size();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  constexpr double kLogZero = -1e18;  // dense safe_log(0)

  auto safe_log = [](double v) { return v > 0.0 ? std::log(v) : kLogZero; };

  util::Matrix delta(t_len, n, kNegInf);
  std::vector<size_t> psi(t_len * n, 0);
  {
    const double* b0 = model.b_transpose().RowData(seq[0]);
    for (size_t s = 0; s < n; ++s) {
      delta.At(0, s) = safe_log(model.pi()[s]) + safe_log(b0[s]);
    }
  }
  // Column-wise argmax over Aᵀ's rows. The dense loop also considers the
  // zero cells, each worth delta[p] + kLogZero — usually hopeless, but δ
  // spreads past 1e18 once emissions hit exact zeros, so whenever the best
  // such candidate could win *or tie* (ties matter: the dense argmax keeps
  // the smallest p), the column is rescanned in exact dense order. The
  // bound below is safe because rounding is monotone: every zero
  // candidate's dense value is <= fl(row_max + kLogZero).
  const CsrMatrix& at = model.a_transpose();
  for (size_t t = 1; t < t_len; ++t) {
    const double* prev = delta.RowData(t - 1);
    double row_max = kNegInf;
    for (size_t p = 0; p < n; ++p) row_max = std::max(row_max, prev[p]);
    const double zero_bound = row_max + kLogZero;
    const double* b_col = model.b_transpose().RowData(seq[t]);
    for (size_t s = 0; s < n; ++s) {
      double best = kNegInf;
      size_t best_prev = 0;
      const size_t begin = at.row_ptr[s];
      const size_t end = at.row_ptr[s + 1];
      for (size_t k = begin; k < end; ++k) {
        const double v = prev[at.col[k]] + std::log(at.val[k]);
        if (v > best) {
          best = v;
          best_prev = at.col[k];
        }
      }
      if (!(best > zero_bound)) {
        // Exact fallback: walk every predecessor in dense order, reading
        // stored values where present and safe_log(0) elsewhere.
        best = kNegInf;
        best_prev = 0;
        size_t k = begin;
        for (size_t p = 0; p < n; ++p) {
          double lg = kLogZero;
          if (k < end && at.col[k] == p) {
            lg = std::log(at.val[k]);
            ++k;
          }
          const double v = prev[p] + lg;
          if (v > best) {
            best = v;
            best_prev = p;
          }
        }
      }
      delta.At(t, s) = best + safe_log(b_col[s]);
      psi[t * n + s] = best_prev;
    }
  }

  std::vector<size_t> path(t_len, 0);
  double best = kNegInf;
  for (size_t s = 0; s < n; ++s) {
    if (delta.At(t_len - 1, s) > best) {
      best = delta.At(t_len - 1, s);
      path[t_len - 1] = s;
    }
  }
  for (size_t t = t_len - 1; t-- > 0;)
    path[t] = psi[(t + 1) * n + path[t + 1]];
  return std::move(path);
}

}  // namespace adprom::hmm
