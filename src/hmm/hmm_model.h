#ifndef ADPROM_HMM_HMM_MODEL_H_
#define ADPROM_HMM_HMM_MODEL_H_

#include <cstddef>
#include <vector>

#include "util/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace adprom::hmm {

/// An observation sequence: symbol ids in [0, num_symbols).
using ObservationSeq = std::vector<int>;

/// A discrete-observation hidden Markov model λ = (A, B, π):
///   A — N x N state-transition probabilities,
///   B — N x M emission probabilities,
///   π — initial state distribution.
/// This is the from-scratch replacement for the Jahmm library the paper's
/// Profile Constructor and Detection Engine rely on.
class HmmModel {
 public:
  HmmModel() = default;

  /// Uniform-ish random initialization (the Rand-HMM baseline, Guevara et
  /// al. style): each row of A/B and π drawn from a symmetric Dirichlet.
  static HmmModel Random(size_t num_states, size_t num_symbols,
                         util::Rng& rng);

  /// Constructs from explicit parameters; call Validate() afterwards.
  HmmModel(util::Matrix a, util::Matrix b, std::vector<double> pi);

  size_t num_states() const { return a_.rows(); }
  size_t num_symbols() const { return b_.cols(); }

  const util::Matrix& a() const { return a_; }
  const util::Matrix& b() const { return b_; }
  const std::vector<double>& pi() const { return pi_; }

  util::Matrix& mutable_a() { return a_; }
  util::Matrix& mutable_b() { return b_; }
  std::vector<double>& mutable_pi() { return pi_; }

  /// Checks stochasticity: every row of A and B and π sums to 1 (within
  /// tolerance) and all entries are non-negative.
  util::Status Validate(double tolerance = 1e-6) const;

  /// Adds `epsilon` to every A/B/π entry and renormalizes. Keeps
  /// statically-infeasible transitions merely *unlikely* instead of
  /// impossible, so Baum-Welch can still adjust them and detection never
  /// hits hard zeros.
  void Smooth(double epsilon);

  /// Structural variant of Smooth: adds `epsilon` only to B and π and
  /// renormalizes them, leaving A's exact zeros in place. Every window
  /// still has positive probability — A's rows stay stochastic, so the
  /// forward mass never dies, and the dense-positive B lets any state
  /// explain any symbol (at tiny probability) — while the transition
  /// matrix keeps the pCTM's sparsity for the CSR kernels. Baum-Welch
  /// preserves A's zero pattern (a zero transition accrues zero expected
  /// count), so the sparsity survives training.
  void SmoothEmissions(double epsilon);

 private:
  util::Matrix a_;
  util::Matrix b_;
  std::vector<double> pi_;
};

}  // namespace adprom::hmm

#endif  // ADPROM_HMM_HMM_MODEL_H_
