#ifndef ADPROM_HMM_BATCH_TRAIN_KERNELS_H_
#define ADPROM_HMM_BATCH_TRAIN_KERNELS_H_

// Internal header: the templated kernel bodies behind BatchEStep. Each
// ISA-specific translation unit (batch_baum_welch.cc for scalar/NEON,
// batch_baum_welch_avx2.cc for AVX2) instantiates the training blocks
// with its util::simd.h Arch and exports them through a BatchTrainKernels
// function table; the dispatcher in batch_baum_welch.cc picks a table at
// runtime. These TUs are compiled with -ffp-contract=off so no flavour
// can fuse a multiply-add the scalar reference keeps separate.

#include <cmath>
#include <cstddef>

#include "hmm/batch_kernels.h"
#include "hmm/inference.h"
#include "hmm/sparse.h"

namespace adprom::hmm::internal {

/// One block of W equal-length training sequences. Unlike the scoring
/// tier's ping-pong buffers, training persists every time step: `alpha`
/// and `beta` are t_len x num_states x width blocks (state-major,
/// window-minor) and `scale` keeps the post-floor per-step totals the
/// gamma/xi sweep re-applies. `width` must be a multiple of the
/// instantiating Arch's lane count (the dispatcher peels the remainder
/// onto the scalar kernel, which accepts any width).
struct TrainBlockArgs {
  const SparseHmm* model = nullptr;
  const int* const* seqs = nullptr;  // width sequence pointers
  size_t width = 0;
  size_t t_len = 0;
  double* alpha = nullptr;       // t_len x num_states x width
  double* beta = nullptr;        // t_len x num_states x width
  double* scale = nullptr;       // t_len x width
  double* loglik = nullptr;      // width (written by forward)
  double* emit_block = nullptr;  // num_states x width backward scratch
  const double** emit_rows = nullptr;  // width scratch
};

using TrainBlockFn = void (*)(const TrainBlockArgs&);
/// All of one window's dense xi terms for source state s at once:
/// out_row[q] += alphas[i] * a_row[q] * emits[i][q] for each active step
/// i in [0, count) in ascending-t order, for q in [0, n). The caller
/// compacts the steps whose alpha is nonzero (the reference's skip).
using XiDenseRowsFn = void (*)(const double* alphas,
                               const double* const* emits, size_t count,
                               const double* a_row, double* out_row,
                               size_t n);

struct BatchTrainKernels {
  TrainBlockFn forward = nullptr;
  TrainBlockFn backward = nullptr;
  XiDenseRowsFn xi_dense_rows = nullptr;
  size_t lanes = 1;
  const char* name = "scalar";
};

/// The scaled forward recursion with full history: ForwardBlock's exact
/// math (destination-major gather over Aᵀ, fused emission multiply,
/// s-ascending totals, floored scale, per-step log accumulation — see the
/// bit-identity argument on ForwardBlock), except each step writes its
/// own alpha panel and its floored total into the persistent blocks
/// instead of ping-ponging two rows. Lane w therefore holds exactly the
/// alpha/scale/loglik that ForwardInto(model, seqs[w], ...) produces.
template <class Arch>
void TrainForwardBlock(const TrainBlockArgs& g) {
  using D = typename Arch::D;
  constexpr size_t kL = Arch::kLanes;
  const CsrMatrix& at = g.model->a_transpose();
  const util::Matrix& bt = g.model->b_transpose();
  const double* pi = g.model->pi().data();
  const size_t n = g.model->num_states();
  const size_t width = g.width;
  const D floor_v = Arch::BroadcastD(kScaleFloor);

  for (size_t w = 0; w < width; ++w) g.loglik[w] = 0.0;

  for (size_t t = 0; t < g.t_len; ++t) {
    for (size_t w = 0; w < width; ++w) {
      g.emit_rows[w] = bt.RowData(static_cast<size_t>(g.seqs[w][t]));
    }
    double* cur = g.alpha + t * n * width;
    double* totals = g.scale + t * width;
    if (t == 0) {
      for (size_t w0 = 0; w0 < width; w0 += kL) {
        D total = Arch::ZeroD();
        for (size_t s = 0; s < n; ++s) {
          const D v = Arch::MulD(Arch::BroadcastD(pi[s]),
                                 Arch::GatherD(g.emit_rows + w0, s));
          Arch::StoreD(cur + s * width + w0, v);
          total = Arch::AddD(total, v);
        }
        Arch::StoreD(totals + w0, total);
      }
    } else {
      const double* prev = g.alpha + (t - 1) * n * width;
      size_t w0 = 0;
      while (w0 < width) {
        const size_t groups = (width - w0) / kL;
        if (groups >= 4) {
          ForwardStepTile<Arch, 4>(at, n, width, w0, prev, cur,
                                   g.emit_rows, totals);
          w0 += 4 * kL;
        } else if (groups >= 2) {
          ForwardStepTile<Arch, 2>(at, n, width, w0, prev, cur,
                                   g.emit_rows, totals);
          w0 += 2 * kL;
        } else {
          ForwardStepTile<Arch, 1>(at, n, width, w0, prev, cur,
                                   g.emit_rows, totals);
          w0 += kL;
        }
      }
    }
    for (size_t w0 = 0; w0 < width; w0 += kL) {
      const D total = Arch::FloorScaleD(floor_v, Arch::LoadD(totals + w0));
      Arch::StoreD(totals + w0, total);
      for (size_t s = 0; s < n; ++s) {
        double* cell = cur + s * width + w0;
        Arch::StoreD(cell, Arch::DivD(Arch::LoadD(cell), total));
      }
    }
    for (size_t w = 0; w < width; ++w) {
      g.loglik[w] += std::log(totals[w]);
    }
  }
}

/// One t<T-1 backward step for a tile of U lane-groups: the source-major
/// sweep over A's CSR rows with the accumulator in registers. Per lane
/// this is BackwardInto's inner loop verbatim — acc += a(s,q) *
/// emit_next(q) over q ascending (A's CSR rows list columns ascending;
/// skipped zeros contribute 0.0 * emit == +0.0 to a non-negative
/// accumulator, a bitwise no-op), then one divide by the step's scale.
template <class Arch, size_t U>
inline void BackwardStepTile(const CsrMatrix& a, size_t n, size_t width,
                             size_t w0, const double* emit_block,
                             double* cur, const double* scale_row) {
  using D = typename Arch::D;
  constexpr size_t kL = Arch::kLanes;
  D scale_v[U];
  for (size_t u = 0; u < U; ++u) {
    scale_v[u] = Arch::LoadD(scale_row + w0 + u * kL);
  }
  for (size_t s = 0; s < n; ++s) {
    D acc[U];
    for (size_t u = 0; u < U; ++u) acc[u] = Arch::ZeroD();
    const size_t end = a.row_ptr[s + 1];
    for (size_t k = a.row_ptr[s]; k < end; ++k) {
      const D val = Arch::BroadcastD(a.val[k]);
      const double* e = emit_block + a.col[k] * width + w0;
      for (size_t u = 0; u < U; ++u) {
        acc[u] = Arch::AddD(acc[u], Arch::MulD(val, Arch::LoadD(e + u * kL)));
      }
    }
    for (size_t u = 0; u < U; ++u) {
      Arch::StoreD(cur + s * width + w0 + u * kL,
                   Arch::DivD(acc[u], scale_v[u]));
    }
  }
}

/// The scaled backward recursion over the whole block: lane w runs
/// BackwardInto(model, seqs[w], scale_w, ...) verbatim. beta_{T-1} is
/// 1/scale[T-1]; each earlier step first builds the shared
/// emit(q) = b(q, o_{t+1}) * beta_{t+1}(q) block (the same single multiply
/// the scalar kernel hoists per (t, q)), then sweeps A's rows
/// source-major. A source-major sweep is already destination-major from
/// the register accumulator's point of view here — beta reduces along the
/// row, not across it — so no transpose is needed for the backward
/// direction.
template <class Arch>
void TrainBackwardBlock(const TrainBlockArgs& g) {
  using D = typename Arch::D;
  constexpr size_t kL = Arch::kLanes;
  const CsrMatrix& a = g.model->a();
  const util::Matrix& bt = g.model->b_transpose();
  const size_t n = g.model->num_states();
  const size_t width = g.width;
  const size_t t_len = g.t_len;

  double* last = g.beta + (t_len - 1) * n * width;
  const double* scale_last = g.scale + (t_len - 1) * width;
  const D one = Arch::BroadcastD(1.0);
  for (size_t w0 = 0; w0 < width; w0 += kL) {
    const D inv = Arch::DivD(one, Arch::LoadD(scale_last + w0));
    for (size_t s = 0; s < n; ++s) {
      Arch::StoreD(last + s * width + w0, inv);
    }
  }

  for (size_t t = t_len - 1; t-- > 0;) {
    for (size_t w = 0; w < width; ++w) {
      g.emit_rows[w] = bt.RowData(static_cast<size_t>(g.seqs[w][t + 1]));
    }
    const double* next = g.beta + (t + 1) * n * width;
    for (size_t w0 = 0; w0 < width; w0 += kL) {
      for (size_t q = 0; q < n; ++q) {
        const D v = Arch::MulD(Arch::GatherD(g.emit_rows + w0, q),
                               Arch::LoadD(next + q * width + w0));
        Arch::StoreD(g.emit_block + q * width + w0, v);
      }
    }
    double* cur = g.beta + t * n * width;
    const double* scale_row = g.scale + t * width;
    size_t w0 = 0;
    while (w0 < width) {
      const size_t groups = (width - w0) / kL;
      if (groups >= 4) {
        BackwardStepTile<Arch, 4>(a, n, width, w0, g.emit_block, cur,
                                  scale_row);
        w0 += 4 * kL;
      } else if (groups >= 2) {
        BackwardStepTile<Arch, 2>(a, n, width, w0, g.emit_block, cur,
                                  scale_row);
        w0 += 2 * kL;
      } else {
        BackwardStepTile<Arch, 1>(a, n, width, w0, g.emit_block, cur,
                                  scale_row);
        w0 += kL;
      }
    }
  }
}

/// One window's dense xi rows for a source state, vectorized across q
/// with the destination cells held in registers across the t loop. Legal
/// despite the strict term-order contract on two counts: each a_num cell
/// is an independent accumulator (vectorizing across q reorders nothing),
/// and within a cell the register chain ((out + v_0) + v_1) + ... adds the
/// very terms the reference's repeated `out_row[q] += ...` adds, in the
/// same ascending-t order with the same (alpha * a) * emit association.
/// Keeping the accumulator and A's row resident in registers across all
/// count steps is what turns the sweep from store-bound to FLOP-bound.
template <class Arch>
void XiDenseRows(const double* alphas, const double* const* emits,
                 size_t count, const double* a_row, double* out_row,
                 size_t n) {
  using D = typename Arch::D;
  constexpr size_t kL = Arch::kLanes;
  size_t q = 0;
  for (; q + kL <= n; q += kL) {
    D acc = Arch::LoadD(out_row + q);
    const D a = Arch::LoadD(a_row + q);
    for (size_t i = 0; i < count; ++i) {
      const D v = Arch::MulD(Arch::MulD(Arch::BroadcastD(alphas[i]), a),
                             Arch::LoadD(emits[i] + q));
      acc = Arch::AddD(acc, v);
    }
    Arch::StoreD(out_row + q, acc);
  }
  for (; q < n; ++q) {
    double acc = out_row[q];
    for (size_t i = 0; i < count; ++i) {
      acc += alphas[i] * a_row[q] * emits[i][q];
    }
    out_row[q] = acc;
  }
}

/// The scalar table (always available; accepts any width).
const BatchTrainKernels& ScalarTrainKernels();
/// The AVX2 table, or null when the build lacks the AVX2 translation unit.
const BatchTrainKernels* Avx2TrainKernels();
/// The NEON table, or null off AArch64.
const BatchTrainKernels* NeonTrainKernels();

}  // namespace adprom::hmm::internal

#endif  // ADPROM_HMM_BATCH_TRAIN_KERNELS_H_
