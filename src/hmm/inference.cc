#include "hmm/inference.h"

#include <cmath>
#include <limits>

#include "util/strings.h"

namespace adprom::hmm {

namespace {

constexpr double kScaleFloor = 1e-300;

util::Status CheckSequence(const HmmModel& model,
                           const ObservationSeq& seq) {
  if (seq.empty())
    return util::Status::InvalidArgument("empty observation sequence");
  for (int symbol : seq) {
    if (symbol < 0 || static_cast<size_t>(symbol) >= model.num_symbols()) {
      return util::Status::OutOfRange(util::StrFormat(
          "symbol %d out of range [0, %zu)", symbol, model.num_symbols()));
    }
  }
  return util::Status::Ok();
}

}  // namespace

util::Result<ForwardVariables> Forward(const HmmModel& model,
                                       const ObservationSeq& seq) {
  ADPROM_RETURN_IF_ERROR(CheckSequence(model, seq));
  const size_t n = model.num_states();
  const size_t t_len = seq.size();

  ForwardVariables fw;
  fw.alpha = util::Matrix(t_len, n);
  fw.scale.assign(t_len, 0.0);

  // t = 0.
  double total = 0.0;
  for (size_t s = 0; s < n; ++s) {
    const double v = model.pi()[s] * model.b().At(s, seq[0]);
    fw.alpha.At(0, s) = v;
    total += v;
  }
  total = std::max(total, kScaleFloor);
  fw.scale[0] = total;
  for (size_t s = 0; s < n; ++s) fw.alpha.At(0, s) /= total;

  // t > 0. Raw-pointer loops: this is the library's hottest path (called
  // once per window per Baum-Welch iteration and per detection score).
  for (size_t t = 1; t < t_len; ++t) {
    total = 0.0;
    const double* prev = fw.alpha.RowData(t - 1);
    double* cur = fw.alpha.RowData(t);
    for (size_t s = 0; s < n; ++s) cur[s] = 0.0;
    for (size_t p = 0; p < n; ++p) {
      const double alpha_p = prev[p];
      if (alpha_p == 0.0) continue;
      const double* a_row = model.a().RowData(p);
      for (size_t s = 0; s < n; ++s) cur[s] += alpha_p * a_row[s];
    }
    for (size_t s = 0; s < n; ++s) {
      cur[s] *= model.b().At(s, seq[t]);
      total += cur[s];
    }
    total = std::max(total, kScaleFloor);
    fw.scale[t] = total;
    for (size_t s = 0; s < n; ++s) cur[s] /= total;
  }

  fw.log_likelihood = 0.0;
  for (double c : fw.scale) fw.log_likelihood += std::log(c);
  return std::move(fw);
}

util::Result<double> LogLikelihood(const HmmModel& model,
                                   const ObservationSeq& seq) {
  ADPROM_ASSIGN_OR_RETURN(ForwardVariables fw, Forward(model, seq));
  return fw.log_likelihood;
}

util::Result<double> PerSymbolLogLikelihood(const HmmModel& model,
                                            const ObservationSeq& seq) {
  ADPROM_ASSIGN_OR_RETURN(ForwardVariables fw, Forward(model, seq));
  return fw.log_likelihood / static_cast<double>(seq.size());
}

util::Result<util::Matrix> Backward(const HmmModel& model,
                                    const ObservationSeq& seq,
                                    const std::vector<double>& scale) {
  ADPROM_RETURN_IF_ERROR(CheckSequence(model, seq));
  if (scale.size() != seq.size())
    return util::Status::InvalidArgument("scale size mismatch");
  const size_t n = model.num_states();
  const size_t t_len = seq.size();

  util::Matrix beta(t_len, n);
  for (size_t s = 0; s < n; ++s)
    beta.At(t_len - 1, s) = 1.0 / scale[t_len - 1];
  std::vector<double> emit_next(n);
  for (size_t t = t_len - 1; t-- > 0;) {
    const double* next = beta.RowData(t + 1);
    double* cur = beta.RowData(t);
    for (size_t q = 0; q < n; ++q)
      emit_next[q] = model.b().At(q, seq[t + 1]) * next[q];
    for (size_t s = 0; s < n; ++s) {
      const double* a_row = model.a().RowData(s);
      double acc = 0.0;
      for (size_t q = 0; q < n; ++q) acc += a_row[q] * emit_next[q];
      cur[s] = acc / scale[t];
    }
  }
  return std::move(beta);
}

util::Result<std::vector<size_t>> Viterbi(const HmmModel& model,
                                          const ObservationSeq& seq) {
  ADPROM_RETURN_IF_ERROR(CheckSequence(model, seq));
  const size_t n = model.num_states();
  const size_t t_len = seq.size();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  auto safe_log = [](double v) {
    return v > 0.0 ? std::log(v) : -1e18;
  };

  util::Matrix delta(t_len, n, kNegInf);
  std::vector<std::vector<size_t>> psi(t_len, std::vector<size_t>(n, 0));
  for (size_t s = 0; s < n; ++s) {
    delta.At(0, s) =
        safe_log(model.pi()[s]) + safe_log(model.b().At(s, seq[0]));
  }
  for (size_t t = 1; t < t_len; ++t) {
    for (size_t s = 0; s < n; ++s) {
      double best = kNegInf;
      size_t best_prev = 0;
      for (size_t p = 0; p < n; ++p) {
        const double v = delta.At(t - 1, p) + safe_log(model.a().At(p, s));
        if (v > best) {
          best = v;
          best_prev = p;
        }
      }
      delta.At(t, s) = best + safe_log(model.b().At(s, seq[t]));
      psi[t][s] = best_prev;
    }
  }

  std::vector<size_t> path(t_len, 0);
  double best = kNegInf;
  for (size_t s = 0; s < n; ++s) {
    if (delta.At(t_len - 1, s) > best) {
      best = delta.At(t_len - 1, s);
      path[t_len - 1] = s;
    }
  }
  for (size_t t = t_len - 1; t-- > 0;) path[t] = psi[t + 1][path[t + 1]];
  return std::move(path);
}

}  // namespace adprom::hmm
