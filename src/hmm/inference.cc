#include "hmm/inference.h"

#include <cmath>
#include <limits>

#include "util/strings.h"

namespace adprom::hmm {

util::Status ValidateSequence(size_t num_symbols, SymbolSpan seq) {
  if (seq.empty())
    return util::Status::InvalidArgument("empty observation sequence");
  for (int symbol : seq) {
    if (symbol < 0 || static_cast<size_t>(symbol) >= num_symbols) {
      return util::Status::OutOfRange(util::StrFormat(
          "symbol %d out of range [0, %zu)", symbol, num_symbols));
    }
  }
  return util::Status::Ok();
}

namespace {

util::Status CheckSequence(const HmmModel& model, SymbolSpan seq) {
  return ValidateSequence(model.num_symbols(), seq);
}

}  // namespace

void ForwardWorkspace::Reserve(size_t max_len, size_t num_states) {
  alpha.Reshape(max_len, num_states);
  scale.reserve(max_len);
}

util::Result<double> ForwardInto(const HmmModel& model, SymbolSpan seq,
                                 ForwardWorkspace* ws) {
  ADPROM_RETURN_IF_ERROR(CheckSequence(model, seq));
  const size_t n = model.num_states();
  const size_t t_len = seq.size();

  ws->alpha.Reshape(t_len, n);
  ws->scale.assign(t_len, 0.0);

  // t = 0.
  double total = 0.0;
  for (size_t s = 0; s < n; ++s) {
    const double v = model.pi()[s] * model.b().At(s, seq[0]);
    ws->alpha.At(0, s) = v;
    total += v;
  }
  total = std::max(total, kScaleFloor);
  ws->scale[0] = total;
  for (size_t s = 0; s < n; ++s) ws->alpha.At(0, s) /= total;

  // t > 0. Raw-pointer loops: this is the library's hottest path (called
  // once per window per Baum-Welch iteration and per detection score).
  for (size_t t = 1; t < t_len; ++t) {
    total = 0.0;
    const double* prev = ws->alpha.RowData(t - 1);
    double* cur = ws->alpha.RowData(t);
    for (size_t s = 0; s < n; ++s) cur[s] = 0.0;
    for (size_t p = 0; p < n; ++p) {
      const double alpha_p = prev[p];
      if (alpha_p == 0.0) continue;
      const double* a_row = model.a().RowData(p);
      for (size_t s = 0; s < n; ++s) cur[s] += alpha_p * a_row[s];
    }
    for (size_t s = 0; s < n; ++s) {
      cur[s] *= model.b().At(s, seq[t]);
      total += cur[s];
    }
    total = std::max(total, kScaleFloor);
    ws->scale[t] = total;
    for (size_t s = 0; s < n; ++s) cur[s] /= total;
  }

  double log_likelihood = 0.0;
  for (double c : ws->scale) log_likelihood += std::log(c);
  return log_likelihood;
}

util::Result<ForwardVariables> Forward(const HmmModel& model,
                                       SymbolSpan seq) {
  ForwardWorkspace ws;
  ADPROM_ASSIGN_OR_RETURN(double log_likelihood,
                          ForwardInto(model, seq, &ws));
  ForwardVariables fw;
  fw.alpha = std::move(ws.alpha);
  fw.scale = std::move(ws.scale);
  fw.log_likelihood = log_likelihood;
  return std::move(fw);
}

util::Result<double> LogLikelihood(const HmmModel& model, SymbolSpan seq) {
  ForwardWorkspace ws;
  return ForwardInto(model, seq, &ws);
}

util::Result<double> PerSymbolLogLikelihood(const HmmModel& model,
                                            SymbolSpan seq) {
  ForwardWorkspace ws;
  return PerSymbolLogLikelihood(model, seq, &ws);
}

util::Result<double> PerSymbolLogLikelihood(const HmmModel& model,
                                            SymbolSpan seq,
                                            ForwardWorkspace* workspace) {
  ADPROM_ASSIGN_OR_RETURN(double log_likelihood,
                          ForwardInto(model, seq, workspace));
  return log_likelihood / static_cast<double>(seq.size());
}

util::Status BackwardInto(const HmmModel& model, SymbolSpan seq,
                          const std::vector<double>& scale,
                          BackwardWorkspace* ws) {
  ADPROM_RETURN_IF_ERROR(CheckSequence(model, seq));
  if (scale.size() != seq.size())
    return util::Status::InvalidArgument("scale size mismatch");
  const size_t n = model.num_states();
  const size_t t_len = seq.size();

  ws->beta.Reshape(t_len, n);
  ws->emit_next.assign(n, 0.0);
  util::Matrix& beta = ws->beta;
  std::vector<double>& emit_next = ws->emit_next;
  for (size_t s = 0; s < n; ++s)
    beta.At(t_len - 1, s) = 1.0 / scale[t_len - 1];
  for (size_t t = t_len - 1; t-- > 0;) {
    const double* next = beta.RowData(t + 1);
    double* cur = beta.RowData(t);
    for (size_t q = 0; q < n; ++q)
      emit_next[q] = model.b().At(q, seq[t + 1]) * next[q];
    for (size_t s = 0; s < n; ++s) {
      const double* a_row = model.a().RowData(s);
      double acc = 0.0;
      for (size_t q = 0; q < n; ++q) acc += a_row[q] * emit_next[q];
      cur[s] = acc / scale[t];
    }
  }
  return util::Status::Ok();
}

util::Result<util::Matrix> Backward(const HmmModel& model, SymbolSpan seq,
                                    const std::vector<double>& scale) {
  BackwardWorkspace ws;
  ADPROM_RETURN_IF_ERROR(BackwardInto(model, seq, scale, &ws));
  return std::move(ws.beta);
}

util::Result<std::vector<size_t>> Viterbi(const HmmModel& model,
                                          SymbolSpan seq) {
  ADPROM_RETURN_IF_ERROR(CheckSequence(model, seq));
  const size_t n = model.num_states();
  const size_t t_len = seq.size();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  auto safe_log = [](double v) {
    return v > 0.0 ? std::log(v) : -1e18;
  };

  util::Matrix delta(t_len, n, kNegInf);
  // Backpointers in one contiguous T x N buffer (psi[t*n + s]) instead of
  // a vector-of-vectors: one allocation instead of T small ones.
  std::vector<size_t> psi(t_len * n, 0);
  for (size_t s = 0; s < n; ++s) {
    delta.At(0, s) =
        safe_log(model.pi()[s]) + safe_log(model.b().At(s, seq[0]));
  }
  for (size_t t = 1; t < t_len; ++t) {
    for (size_t s = 0; s < n; ++s) {
      double best = kNegInf;
      size_t best_prev = 0;
      for (size_t p = 0; p < n; ++p) {
        const double v = delta.At(t - 1, p) + safe_log(model.a().At(p, s));
        if (v > best) {
          best = v;
          best_prev = p;
        }
      }
      delta.At(t, s) = best + safe_log(model.b().At(s, seq[t]));
      psi[t * n + s] = best_prev;
    }
  }

  std::vector<size_t> path(t_len, 0);
  double best = kNegInf;
  for (size_t s = 0; s < n; ++s) {
    if (delta.At(t_len - 1, s) > best) {
      best = delta.At(t_len - 1, s);
      path[t_len - 1] = s;
    }
  }
  for (size_t t = t_len - 1; t-- > 0;)
    path[t] = psi[(t + 1) * n + path[t + 1]];
  return std::move(path);
}

}  // namespace adprom::hmm
