#ifndef ADPROM_HMM_INFERENCE_H_
#define ADPROM_HMM_INFERENCE_H_

#include <vector>

#include "hmm/hmm_model.h"
#include "util/status.h"

namespace adprom::hmm {

/// Scaled forward-pass variables: alpha_hat (T x N, each row normalized)
/// and the per-step scaling factors c_t with log P(O|λ) = -Σ log c_t⁻¹,
/// kept so the backward pass and Baum-Welch can reuse them.
struct ForwardVariables {
  util::Matrix alpha;            // T x N, scaled
  std::vector<double> scale;     // T entries, each >= some tiny floor
  double log_likelihood = 0.0;   // log P(O | λ)
};

/// Runs the numerically-scaled forward algorithm (Rabiner's method). Fails
/// on an empty sequence or an out-of-range symbol. Sequences the model
/// assigns (near-)zero probability get a floored scale and a very negative
/// log-likelihood instead of NaN.
util::Result<ForwardVariables> Forward(const HmmModel& model,
                                       const ObservationSeq& seq);

/// The paper's *evaluation problem*: log P(O | λ).
util::Result<double> LogLikelihood(const HmmModel& model,
                                   const ObservationSeq& seq);

/// Length-normalized score used by the Detection Engine so windows of
/// different lengths are comparable: log P(O|λ) / |O|.
util::Result<double> PerSymbolLogLikelihood(const HmmModel& model,
                                            const ObservationSeq& seq);

/// Scaled backward pass (beta, scaled with the forward's factors).
util::Result<util::Matrix> Backward(const HmmModel& model,
                                    const ObservationSeq& seq,
                                    const std::vector<double>& scale);

/// The paper's *decoding problem*: most likely hidden-state sequence
/// (Viterbi, in log space).
util::Result<std::vector<size_t>> Viterbi(const HmmModel& model,
                                          const ObservationSeq& seq);

}  // namespace adprom::hmm

#endif  // ADPROM_HMM_INFERENCE_H_
