#ifndef ADPROM_HMM_INFERENCE_H_
#define ADPROM_HMM_INFERENCE_H_

#include <span>
#include <vector>

#include "hmm/hmm_model.h"
#include "util/status.h"

namespace adprom::hmm {

/// A read-only view of an observation sequence. ObservationSeq converts
/// implicitly, and the Detection Engine passes window-sized slices of a
/// once-encoded trace buffer so overlapping windows are never re-encoded.
using SymbolSpan = std::span<const int>;

/// Floor on the per-step forward scale factor, shared by the dense and
/// sparse kernels (they must floor identically to stay bit-identical).
inline constexpr double kScaleFloor = 1e-300;

/// Validates an observation sequence against an alphabet size: empty
/// sequences and out-of-range symbols fail. Shared by the dense and sparse
/// kernels.
util::Status ValidateSequence(size_t num_symbols, SymbolSpan seq);

/// Scaled forward-pass variables: alpha_hat (T x N, each row normalized)
/// and the per-step scaling factors c_t with log P(O|λ) = -Σ log c_t⁻¹,
/// kept so the backward pass and Baum-Welch can reuse them.
struct ForwardVariables {
  util::Matrix alpha;            // T x N, scaled
  std::vector<double> scale;     // T entries, each >= some tiny floor
  double log_likelihood = 0.0;   // log P(O | λ)
};

/// Reusable buffers for the forward pass. Feed the same workspace to many
/// calls (one per scored window) and the alpha/scale storage is recycled:
/// zero heap allocations in steady state once the buffers have grown to
/// the working window length. Not thread-safe — use one per worker.
struct ForwardWorkspace {
  util::Matrix alpha;         // grown to T x N on demand
  std::vector<double> scale;  // grown to T on demand

  /// Pre-grows the buffers for sequences of up to `max_len` symbols under
  /// a `num_states`-state model, so even the *first* ForwardInto call
  /// allocates nothing. The streaming service calls this at session setup;
  /// it is optional everywhere else (buffers also grow on first use).
  void Reserve(size_t max_len, size_t num_states);
};

/// Reusable buffers for the backward pass (Baum-Welch E-step).
struct BackwardWorkspace {
  util::Matrix beta;               // grown to T x N on demand
  std::vector<double> emit_next;   // N scratch entries
};

/// Runs the numerically-scaled forward algorithm (Rabiner's method). Fails
/// on an empty sequence or an out-of-range symbol. Sequences the model
/// assigns (near-)zero probability get a floored scale and a very negative
/// log-likelihood instead of NaN.
util::Result<ForwardVariables> Forward(const HmmModel& model, SymbolSpan seq);

/// Allocation-free variant: runs the same forward pass into `workspace`
/// and returns log P(O | λ). The alpha/scale results stay readable in the
/// workspace until the next call.
util::Result<double> ForwardInto(const HmmModel& model, SymbolSpan seq,
                                 ForwardWorkspace* workspace);

/// The paper's *evaluation problem*: log P(O | λ).
util::Result<double> LogLikelihood(const HmmModel& model, SymbolSpan seq);

/// Length-normalized score used by the Detection Engine so windows of
/// different lengths are comparable: log P(O|λ) / |O|.
util::Result<double> PerSymbolLogLikelihood(const HmmModel& model,
                                            SymbolSpan seq);

/// Workspace variant of PerSymbolLogLikelihood for the hot scoring loop.
util::Result<double> PerSymbolLogLikelihood(const HmmModel& model,
                                            SymbolSpan seq,
                                            ForwardWorkspace* workspace);

/// Scaled backward pass (beta, scaled with the forward's factors).
util::Result<util::Matrix> Backward(const HmmModel& model, SymbolSpan seq,
                                    const std::vector<double>& scale);

/// Allocation-free variant of Backward: fills workspace->beta.
util::Status BackwardInto(const HmmModel& model, SymbolSpan seq,
                          const std::vector<double>& scale,
                          BackwardWorkspace* workspace);

/// The paper's *decoding problem*: most likely hidden-state sequence
/// (Viterbi, in log space).
util::Result<std::vector<size_t>> Viterbi(const HmmModel& model,
                                          SymbolSpan seq);

}  // namespace adprom::hmm

#endif  // ADPROM_HMM_INFERENCE_H_
