#include "hmm/batch_baum_welch.h"

#include <algorithm>

#include "hmm/batch_train_kernels.h"

namespace adprom::hmm {

namespace internal {

const BatchTrainKernels& ScalarTrainKernels() {
  static const BatchTrainKernels kernels = {
      &TrainForwardBlock<util::ScalarArch>,
      &TrainBackwardBlock<util::ScalarArch>, &XiDenseRows<util::ScalarArch>,
      util::ScalarArch::kLanes, "scalar"};
  return kernels;
}

#if defined(__aarch64__)
const BatchTrainKernels* NeonTrainKernels() {
  static const BatchTrainKernels kernels = {
      &TrainForwardBlock<util::NeonArch>, &TrainBackwardBlock<util::NeonArch>,
      &XiDenseRows<util::NeonArch>, util::NeonArch::kLanes, "neon"};
  return &kernels;
}
#else
const BatchTrainKernels* NeonTrainKernels() { return nullptr; }
#endif

#if !defined(ADPROM_BATCH_AVX2)
// The AVX2 table lives in batch_baum_welch_avx2.cc (compiled with -mavx2);
// builds without that translation unit dispatch to scalar instead.
const BatchTrainKernels* Avx2TrainKernels() { return nullptr; }
#endif

namespace {

const BatchTrainKernels& TrainKernelsFor(util::SimdLevel level) {
  switch (level) {
    case util::SimdLevel::kAvx2:
      if (const BatchTrainKernels* kernels = Avx2TrainKernels())
        return *kernels;
      return ScalarTrainKernels();
    case util::SimdLevel::kNeon:
      if (const BatchTrainKernels* kernels = NeonTrainKernels())
        return *kernels;
      return ScalarTrainKernels();
    case util::SimdLevel::kScalar:
      return ScalarTrainKernels();
  }
  return ScalarTrainKernels();
}

}  // namespace

}  // namespace internal

void BatchTrainWorkspace::Reserve(size_t num_states, size_t width,
                                  size_t max_len) {
  alpha.resize(max_len * num_states * width);
  beta.resize(max_len * num_states * width);
  scale.resize(max_len * width);
  loglik.resize(width);
  emit_block.resize(num_states * width);
  emit_rows.resize(width);
  seq_ptrs.reserve(width);
  alpha_w.resize(max_len * num_states);
  beta_w.resize(max_len * num_states);
  scale_w.resize(max_len);
  emit_panel.resize(max_len * num_states);
  xi_alpha.resize(max_len);
  xi_emit.resize(max_len);
}

BatchEStep::BatchEStep(size_t width, bool no_simd)
    : width_(std::max<size_t>(1, width)),
      level_(no_simd ? util::SimdLevel::kScalar : util::DetectSimdLevel()) {}

const char* BatchEStep::kernel_name() const {
  return internal::TrainKernelsFor(level_).name;
}

void BatchEStep::Reserve(size_t num_states, size_t max_len,
                         BatchTrainWorkspace* ws) const {
  ws->Reserve(num_states, width_, max_len);
}

namespace {

/// Adds one sub-block's expected counts to `acc`, window by window in
/// sequence order. Each window's lane is first de-strided into contiguous
/// t_len x n panels (a bit-preserving copy that keeps the hot gamma/xi
/// loops out of the strided activation blocks), after which the sweep is
/// the scalar reference's accumulation body verbatim — same terms, same
/// order, into the same accumulator cells.
void SweepSubBlock(const HmmModel& model, const SparseHmm& sparse,
                   bool csr_xi, std::span<const ObservationSeq> seqs,
                   size_t width, internal::XiDenseRowsFn xi_dense_rows,
                   BatchTrainWorkspace* ws, EStepAccumulators* acc) {
  const size_t n = model.num_states();
  const size_t t_len = seqs[0].size();
  double* alpha_w = ws->alpha_w.data();
  double* beta_w = ws->beta_w.data();
  double* scale_w = ws->scale_w.data();
  double* emit_panel = ws->emit_panel.data();

  for (size_t w = 0; w < seqs.size(); ++w) {
    if (ws->loglik[w] < -1e17) continue;  // ~zero-probability outlier
    for (size_t cell = 0; cell < t_len * n; ++cell) {
      alpha_w[cell] = ws->alpha[cell * width + w];
      beta_w[cell] = ws->beta[cell * width + w];
    }
    for (size_t t = 0; t < t_len; ++t) {
      scale_w[t] = ws->scale[t * width + w];
    }
    acc->total_ll += ws->loglik[w];
    ++acc->used;
    const ObservationSeq& seq = seqs[w];

    // gamma_t(s) ∝ alpha_t(s) * beta_t(s); with Rabiner scaling the
    // product needs a factor scale[t] to be a proper distribution.
    for (size_t t = 0; t < t_len; ++t) {
      const double* alpha_t = alpha_w + t * n;
      const double* beta_t = beta_w + t * n;
      const double scale_t = scale_w[t];
      for (size_t s = 0; s < n; ++s) {
        const double gamma = alpha_t[s] * beta_t[s] * scale_t;
        if (t == 0) acc->pi_acc[s] += gamma;
        acc->b_num.At(s, seq[t]) += gamma;
        acc->b_den[s] += gamma;
        if (t + 1 < t_len) acc->a_den[s] += gamma;
      }
    }
    // xi_t(s,q) = alpha_t(s) A(s,q) B(q,o_{t+1}) beta_{t+1}(q); the
    // emission*beta factor is hoisted per (t, q) into a panel covering
    // the whole window, and the accumulation runs source-state-major
    // with t innermost: A's row s and a_num's row s stay register/cache
    // resident across every step of the window instead of both full
    // matrices streaming through once per step. The interchange is
    // bit-invisible — each addend alpha_t(s)*A(s,q)*emit_t(q) is the
    // same product, and per accumulator cell (s,q) the addends still
    // arrive in ascending-t order within each window. The steps with a
    // nonzero alpha (the reference's skip) are compacted once per s so
    // the kernels run over a dense step list.
    for (size_t t = 0; t + 1 < t_len; ++t) {
      const double* beta_next = beta_w + (t + 1) * n;
      double* emit_t = emit_panel + t * n;
      for (size_t q = 0; q < n; ++q) {
        emit_t[q] = model.b().At(q, seq[t + 1]) * beta_next[q];
      }
    }
    double* xi_alpha = ws->xi_alpha.data();
    const double** xi_emit = ws->xi_emit.data();
    for (size_t s = 0; s < n; ++s) {
      size_t count = 0;
      for (size_t t = 0; t + 1 < t_len; ++t) {
        const double alpha_ts = alpha_w[t * n + s];
        if (alpha_ts == 0.0) continue;
        xi_alpha[count] = alpha_ts;
        xi_emit[count] = emit_panel + t * n;
        ++count;
      }
      if (count == 0) continue;
      double* out_row = acc->a_num.RowData(s);
      if (csr_xi) {
        const CsrMatrix& a = sparse.a();
        for (size_t k = a.row_ptr[s]; k < a.row_ptr[s + 1]; ++k) {
          const size_t q = a.col[k];
          const double a_sq = a.val[k];
          double cell = out_row[q];
          for (size_t i = 0; i < count; ++i) {
            cell += xi_alpha[i] * a_sq * xi_emit[i][q];
          }
          out_row[q] = cell;
        }
      } else {
        xi_dense_rows(xi_alpha, xi_emit, count, model.a().RowData(s),
                      out_row, n);
      }
    }
  }
}

}  // namespace

void BatchEStep::AccumulateBlock(const HmmModel& model,
                                 const SparseHmm& sparse, bool csr_xi,
                                 std::span<const ObservationSeq> seqs,
                                 BatchTrainWorkspace* ws,
                                 EStepAccumulators* acc) const {
  if (seqs.empty()) return;
  const size_t n = model.num_states();
  const size_t count = seqs.size();
  const size_t t_len = seqs[0].size();
  // Steady state never re-sizes: BaumWelchTrain reserves each shard's
  // workspace for the corpus max length up front. The guard only fires
  // for direct callers that skipped Reserve.
  if (ws->alpha.size() < t_len * n * width_ || ws->loglik.size() < width_ ||
      ws->alpha_w.size() < t_len * n) {
    ws->Reserve(n, width_, t_len);
  }
  ws->seq_ptrs.clear();
  for (const ObservationSeq& seq : seqs) ws->seq_ptrs.push_back(seq.data());

  const internal::BatchTrainKernels& kernels = internal::TrainKernelsFor(
      level_);
  // SIMD over the largest lane-aligned prefix, scalar kernel over the
  // remainder lanes. Each part is a complete forward→backward→sweep pass,
  // run in sequence order, so the split is invisible: both kernels are
  // bit-identical per lane and the sweep adds windows in corpus order.
  internal::TrainBlockArgs args;
  args.model = &sparse;
  args.t_len = t_len;
  args.alpha = ws->alpha.data();
  args.beta = ws->beta.data();
  args.scale = ws->scale.data();
  args.loglik = ws->loglik.data();
  args.emit_block = ws->emit_block.data();
  args.emit_rows = ws->emit_rows.data();
  size_t done = 0;
  const size_t aligned = count - count % kernels.lanes;
  for (const size_t part : {aligned, count - aligned}) {
    if (part == 0) continue;
    const internal::BatchTrainKernels& table =
        done == 0 && part == aligned ? kernels
                                     : internal::ScalarTrainKernels();
    args.seqs = ws->seq_ptrs.data() + done;
    args.width = part;
    table.forward(args);
    table.backward(args);
    SweepSubBlock(model, sparse, csr_xi, seqs.subspan(done, part), part,
                  kernels.xi_dense_rows, ws, acc);
    done += part;
  }
}

}  // namespace adprom::hmm
