#ifndef ADPROM_HMM_SPARSE_H_
#define ADPROM_HMM_SPARSE_H_

#include <cstddef>
#include <vector>

#include "hmm/hmm_model.h"
#include "hmm/inference.h"
#include "util/matrix.h"
#include "util/status.h"

namespace adprom::hmm {

/// Compressed-sparse-row view of a matrix: only the exact nonzeros are
/// stored, in row-major order with ascending column indices inside each
/// row — the same index order the dense kernels visit, which is what makes
/// the sparse kernels below bit-identical to their dense counterparts.
struct CsrMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<size_t> row_ptr;  // rows + 1 offsets into col/val
  std::vector<size_t> col;      // ascending within each row
  std::vector<double> val;      // val[k] = dense(row, col[k]) != 0.0

  static CsrMatrix FromDense(const util::Matrix& dense);

  size_t nnz() const { return val.size(); }
  /// nnz / (rows * cols); 1.0 for an empty matrix so density-gated code
  /// treats it as "nothing to skip".
  double Density() const;
};

/// A read-only sparse compilation of an HmmModel for the inference hot
/// loops. The transition matrix A is stored twice — row-compressed for the
/// forward/backward/E-step scatter-gather and column-compressed (CSR of
/// Aᵀ) for the Viterbi column argmax — while B is kept dense but
/// *transposed* (M x N) so the per-step emission factor b(s, o_t) is a
/// contiguous row. π is copied.
///
/// The struct owns plain copies of the parameters (no back-pointer), so a
/// SparseHmm stays valid after the source model is mutated or destroyed;
/// Baum-Welch rebuilds one per iteration, the DetectionEngine builds one
/// per engine. Profile-constructed models keep the pCTM's exact transition
/// zeros (HmmModel::SmoothEmissions smooths only B and π), which is where
/// the nnz win comes from; fully-smoothed models degrade gracefully to
/// density 1 with identical results.
class SparseHmm {
 public:
  SparseHmm() = default;
  explicit SparseHmm(const HmmModel& model);

  size_t num_states() const { return pi_.size(); }
  size_t num_symbols() const { return b_transpose_.rows(); }

  const CsrMatrix& a() const { return a_; }
  const CsrMatrix& a_transpose() const { return a_transpose_; }
  const util::Matrix& b_transpose() const { return b_transpose_; }
  const std::vector<double>& pi() const { return pi_; }

  double transition_density() const { return a_.Density(); }

 private:
  CsrMatrix a_;
  CsrMatrix a_transpose_;
  util::Matrix b_transpose_;  // M x N
  std::vector<double> pi_;
};

/// Sparse forward pass: bit-identical to ForwardInto(model, ...) for the
/// model the SparseHmm was built from (skipped terms are exact zeros whose
/// dense contribution is `x + 0.0 == x`; the surviving terms are combined
/// in the same order).
util::Result<double> ForwardInto(const SparseHmm& model, SymbolSpan seq,
                                 ForwardWorkspace* workspace);

/// Sparse variant of the detection score; bit-identical to the dense one.
util::Result<double> PerSymbolLogLikelihood(const SparseHmm& model,
                                            SymbolSpan seq,
                                            ForwardWorkspace* workspace);

/// Sparse backward pass; bit-identical to BackwardInto(model, ...).
util::Status BackwardInto(const SparseHmm& model, SymbolSpan seq,
                          const std::vector<double>& scale,
                          BackwardWorkspace* workspace);

/// Sparse Viterbi; bit-identical path (including argmax tie-breaking) to
/// Viterbi(model, ...). Columns where a skipped zero transition could win
/// or tie the argmax — possible because safe_log(0) is the large-but-
/// finite -1e18 — fall back to an exact dense-order scan of that column.
util::Result<std::vector<size_t>> Viterbi(const SparseHmm& model,
                                          SymbolSpan seq);

}  // namespace adprom::hmm

#endif  // ADPROM_HMM_SPARSE_H_
