#ifndef ADPROM_HMM_BATCH_FORWARD_H_
#define ADPROM_HMM_BATCH_FORWARD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "hmm/inference.h"
#include "hmm/sparse.h"
#include "util/simd.h"
#include "util/status.h"

namespace adprom::hmm {

/// Tuning knobs for the batched scoring engine (runtime-only, never
/// serialized).
struct BatchOptions {
  /// W — how many windows advance together per block. Each forward step
  /// then sweeps the transition CSR once for all W windows instead of once
  /// per window; W * num_states doubles must stay cache-resident, so very
  /// large widths lose again. 16 doubles = one four-group AVX2 tile, and
  /// keeps two profile-sized activation blocks inside a 48K L1d.
  size_t width = 16;
  /// Force the scalar kernels even where the CPU offers AVX2/NEON
  /// (`--no-simd`). The SIMD and scalar kernels are bit-identical; this
  /// exists for ablation and for exercising the fallback in CI.
  bool no_simd = false;
  /// Enable the quantized triage tier (`--triage`): windows whose cheap
  /// int16 lower bound already clears the anomaly threshold skip the exact
  /// forward pass. Never changes a verdict — see TriageTables.
  bool triage = false;
};

/// Prepared quantized tables for the triage tier, in the spirit of
/// pre-quantized int8/int16 GEMM weights: log-probabilities pre-scaled by
/// 2^kScaleBits and stored as int16, accumulated in int32.
///
/// The triage score is a max-plus (Viterbi) pass over these tables. It is
/// a *certified lower bound* on the exact per-symbol log-likelihood:
///   log P(O|λ) >= max-path log-prob >= quantized max-path / 2^kScaleBits
/// because every quantized log is rounded *down* (floor, minus one LSB to
/// absorb libm rounding) and the best single path never exceeds the sum
/// over all paths. A window whose bound clears the threshold is therefore
/// provably not anomalous and can skip the exact tier; every other window
/// is re-scored exactly, so the exact tier remains the verdict authority.
///
/// Rounding *down* is the load-bearing direction, so a log too negative
/// for int16 (EM can drive stored transition probabilities arbitrarily
/// close to zero) must NOT clamp up to INT16_MIN — that would let the
/// bound overshoot the exact score. Such entries store the kSentinel
/// value instead, which the kernel expands to kNegInf (-inf). Paths
/// through a sentinel saturate at kNegInf rather than accumulate further
/// down, so a saturated result is no longer a faithful path sum — which
/// is why ScoreBatch refuses to certify any window whose best path ends
/// at or below kNegInf (the bound it would report is not proven).
class TriageTables {
 public:
  /// log-probabilities are stored as floor(log(p) * 2^kScaleBits) - 1.
  static constexpr int kScaleBits = 10;
  static constexpr int32_t kScale = 1 << kScaleBits;
  /// Table value meaning "log too negative for int16" (includes log 0).
  /// The kernel expands it to kNegInf before accumulating.
  static constexpr int16_t kSentinel = INT16_MIN;
  /// Quantized stand-in for -inf: the max identity, the sentinel
  /// expansion, and the per-step saturation floor. Far enough from
  /// INT32_MIN that one add of two kNegInf-floored operands cannot wrap.
  static constexpr int32_t kNegInf = INT32_MIN / 2;
  /// Triage certifies only when bound >= threshold + kSlack; the slack
  /// absorbs the final double divisions' rounding.
  static constexpr double kSlack = 1e-9;
  /// Sequences longer than this skip triage (keeps the int32 accumulators
  /// provably clear of overflow). Detection windows are tens of symbols.
  static constexpr size_t kMaxLen = 16384;

  TriageTables() = default;
  /// Builds the quantized tables. If any *emission* log underflows int16
  /// range (only possible for unsmoothed models — smoothing floors b at
  /// ~1e-6), the tables come out empty() and the triage tier stays
  /// disabled for that model: emission logs are gathered per lane, so
  /// unlike pi/A they have no sentinel-expansion path in the kernel.
  explicit TriageTables(const SparseHmm& model);

  bool empty() const { return qpi_.empty(); }
  size_t num_states() const { return qpi_.size(); }
  /// Prepared-table footprint in bytes (what `adprom info` reports).
  size_t SizeBytes() const {
    return (qpi_.size() + qa_transpose_.size() + qb_transpose_.size()) *
           sizeof(int16_t);
  }

  /// Quantized log π, N entries.
  const std::vector<int16_t>& qpi() const { return qpi_; }
  /// Quantized log A values aligned with SparseHmm::a_transpose()'s nnz
  /// order (predecessor-major per destination state).
  const std::vector<int16_t>& qa_transpose() const { return qa_transpose_; }
  /// Quantized log Bᵀ, M x N row-major (row = symbol, col = state).
  const std::vector<int16_t>& qb_transpose() const { return qb_transpose_; }

 private:
  std::vector<int16_t> qpi_;
  std::vector<int16_t> qa_transpose_;
  std::vector<int16_t> qb_transpose_;
};

/// Reusable buffers for the batched engine — the BatchScorer analogue of
/// ForwardWorkspace. Reserve() pre-sizes everything for the scorer's batch
/// width, after which ScoreBatch performs zero heap allocations (asserted
/// by a counting operator-new test). Not thread-safe — one per worker.
struct BatchWorkspace {
  // Exact tier: two N x W column-major activation blocks (state-major,
  // window-minor) ping-ponged between steps, plus per-lane scratch.
  std::vector<double> act_a;
  std::vector<double> act_b;
  std::vector<double> totals;        // W per-step scale factors
  std::vector<double> loglik;        // W running log-likelihoods
  std::vector<const double*> emit_rows;  // W per-step Bᵀ row pointers

  // Triage tier: the same block layout in int32.
  std::vector<int32_t> tri_a;
  std::vector<int32_t> tri_b;
  std::vector<int32_t> tri_best;
  std::vector<const int16_t*> tri_rows;
  std::vector<const int*> pending;   // sequences the triage could not clear
  std::vector<size_t> lane_index;    // pending[i]'s original chunk lane

  // Caller-side staging (DetectionEngine / StreamingMonitor batch paths).
  std::vector<SymbolSpan> spans;
  std::vector<double> scores;
  /// Scalar workspace for the per-window fallback paths (dense-kernel
  /// ablation, single-window EvaluateEncoded).
  ForwardWorkspace forward;

  struct Stats {
    size_t windows = 0;
    /// Windows whose triage bound cleared the threshold (skipped exact).
    size_t triage_certified = 0;
  };
  Stats stats;

  /// Pre-sizes every buffer for `num_states` states at batch width
  /// `width`, so even the first ScoreBatch call allocates nothing.
  void Reserve(size_t num_states, size_t width);
};

/// The batched, vectorized detection scoring engine. Packs up to
/// `options.width` equal-length windows into a column-major activation
/// block and advances all of them one time-step per pass, sweeping the
/// transition CSR once per step instead of once per window. The inner
/// kernels are lane-per-window SIMD (AVX2/NEON behind util::simd.h,
/// runtime-dispatched via cpuid, scalar fallback): each lane holds a
/// distinct window, so per-window accumulation order is unchanged and the
/// scores are bit-identical to scalar ForwardInto for every width, lane
/// count, and ISA.
class BatchScorer {
 public:
  BatchScorer() = default;
  /// `model` must outlive the scorer. Builds the quantized triage tables
  /// when options.triage is set.
  BatchScorer(const SparseHmm* model, BatchOptions options);

  bool enabled() const { return model_ != nullptr; }
  const SparseHmm* model() const { return model_; }
  const BatchOptions& options() const { return options_; }
  /// The kernel flavour dispatch selected (after --no-simd and the
  /// ADPROM_FORCE_SCALAR override).
  util::SimdLevel simd_level() const { return level_; }
  const TriageTables& triage_tables() const { return triage_; }

  /// Pre-sizes `ws` for this scorer (ForwardWorkspace::Reserve analogue).
  void Reserve(BatchWorkspace* ws) const;

  /// Scores every sequence in `seqs` — all non-empty, of one common
  /// length, with symbols inside the model's alphabet — and writes the
  /// per-symbol log-likelihoods to `out` (same size as `seqs`).
  ///
  /// Exact tier results are bit-identical to PerSymbolLogLikelihood /
  /// scalar ForwardInto, window by window. With triage enabled, windows
  /// whose certified lower bound reaches `triage_threshold` +
  /// TriageTables::kSlack report that bound instead of the exact score;
  /// because bound <= exact, any consumer comparing against
  /// `triage_threshold` reaches the same verdict either way.
  util::Status ScoreBatch(std::span<const SymbolSpan> seqs,
                          double triage_threshold, BatchWorkspace* ws,
                          std::span<double> out) const;

 private:
  const SparseHmm* model_ = nullptr;
  BatchOptions options_;
  util::SimdLevel level_ = util::SimdLevel::kScalar;
  TriageTables triage_;
};

}  // namespace adprom::hmm

#endif  // ADPROM_HMM_BATCH_FORWARD_H_
