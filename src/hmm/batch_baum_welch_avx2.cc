// AVX2 instantiation of the batched training kernels. Like
// batch_forward_avx2.cc, this translation unit is compiled with -mavx2
// (see src/hmm/CMakeLists.txt) so the rest of the library stays runnable
// on baseline x86-64; the dispatcher only calls through this table after
// __builtin_cpu_supports("avx2") says yes.

#include "hmm/batch_train_kernels.h"

namespace adprom::hmm::internal {

#if defined(ADPROM_BATCH_AVX2) && defined(__AVX2__)
const BatchTrainKernels* Avx2TrainKernels() {
  static const BatchTrainKernels kernels = {
      &TrainForwardBlock<util::Avx2Arch>, &TrainBackwardBlock<util::Avx2Arch>,
      &XiDenseRows<util::Avx2Arch>, util::Avx2Arch::kLanes, "avx2"};
  return &kernels;
}
#endif

}  // namespace adprom::hmm::internal
