#ifndef ADPROM_ATTACK_MUTATORS_H_
#define ADPROM_ATTACK_MUTATORS_H_

#include <string>

#include "prog/program.h"
#include "util/status.h"

namespace adprom::attack {

/// AST surgery reproducing the paper's five attack classes (§V-C). Every
/// mutator clones the benign program, applies the change, and re-finalizes
/// the clone — the result is the "deployed, tampered build" the Detection
/// Engine monitors against the profile trained on the original.

/// Where to insert an injected statement inside a function body.
enum class InsertWhere {
  kEnd,             // append to the function body
  kElseOfFirstIf,   // into the else branch of the first if (Attack 1:
                    // a print similar to the one in the other branch)
  kThenOfFirstIf,   // into the then branch of the first if
  kAfterIndex,      // after the index-th top-level statement
  kBodyOfFirstWhile  // inside the first while body (amplifies per row)
};

struct InsertOutputSpec {
  std::string function;         // function to tamper with
  std::string variable;         // in-scope variable whose value is leaked
  std::string output_call = "print";  // print / write_file / send_net
  std::string channel_arg;      // file name / host for 2-arg output calls
  InsertWhere where = InsertWhere::kEnd;
  int index = 0;                // for kAfterIndex
};

/// Attacks 1, 2 and 4: insert a new output statement that leaks
/// `variable`. (Attack 4 — the Dyninst binary patch — performs the same
/// insertion at the "binary" level; on the MiniApp substrate both reduce
/// to the same AST edit on the deployed build.)
util::Result<prog::Program> InsertOutputStatement(
    const prog::Program& benign, const InsertOutputSpec& spec);

/// Attack 3: reuse an existing output command — replace argument
/// `arg_index` of the `occurrence`-th call to `callee` inside `function`
/// with the variable `new_variable` (e.g. make an existing printf print a
/// query-result field). The call sequence is unchanged; only data flow
/// differs.
util::Result<prog::Program> ReplaceCallArgument(
    const prog::Program& benign, const std::string& function,
    const std::string& callee, int occurrence, size_t arg_index,
    const std::string& new_variable);

/// Fig. 1-style attack: tamper with an embedded query string (e.g. turn
/// "ID = 10" into "ID >= 10" to exfiltrate more rows). Replaces the first
/// occurrence of `old_fragment` in any string literal of `function`.
util::Result<prog::Program> ModifyStringLiteral(
    const prog::Program& benign, const std::string& function,
    const std::string& old_fragment, const std::string& new_fragment);

/// Attack 5 (tautology SQL injection) is an *input*, not a code change:
/// the canonical payload from the paper, to be fed to a vulnerable
/// program's scan() (yields ...WHERE id='1' OR '1'='1').
std::string TautologyPayload();

}  // namespace adprom::attack

#endif  // ADPROM_ATTACK_MUTATORS_H_
