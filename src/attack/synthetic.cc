#include "attack/synthetic.h"

#include <set>

#include "util/logging.h"
#include "util/strings.h"

namespace adprom::attack {

SyntheticAnomalyGenerator::SyntheticAnomalyGenerator(
    std::vector<runtime::Trace> normal_windows, uint64_t seed)
    : windows_(std::move(normal_windows)), rng_(seed) {
  ADPROM_CHECK(!windows_.empty());
  std::set<std::string> seen;
  for (const runtime::Trace& window : windows_) {
    for (const runtime::CallEvent& event : window) {
      if (seen.insert(event.Observable()).second) {
        pool_.push_back(event);
      }
    }
  }
  ADPROM_CHECK(!pool_.empty());
}

const runtime::Trace& SyntheticAnomalyGenerator::RandomWindow() {
  return windows_[rng_.UniformU64(windows_.size())];
}

runtime::Trace SyntheticAnomalyGenerator::MakeAS1(size_t replaced_tail) {
  runtime::Trace out = RandomWindow();
  const size_t start = out.size() > replaced_tail
                           ? out.size() - replaced_tail
                           : 0;
  for (size_t i = start; i < out.size(); ++i) {
    out[i] = pool_[rng_.UniformU64(pool_.size())];
  }
  return out;
}

runtime::Trace SyntheticAnomalyGenerator::MakeAS2(size_t injected) {
  runtime::Trace out = RandomWindow();
  for (size_t k = 0; k < injected && !out.empty(); ++k) {
    runtime::CallEvent evil;
    evil.callee =
        util::StrFormat("rogue_call_%llu",
                        static_cast<unsigned long long>(rng_.UniformU64(8)));
    // Issued from a function that exists, so only the call itself is new.
    evil.caller = out[0].caller;
    evil.block_id = 9000 + static_cast<int>(k);
    evil.call_site_id = 900000 + static_cast<int>(rng_.UniformU64(1000));
    const size_t pos = rng_.UniformU64(out.size());
    out[static_cast<size_t>(pos)] = evil;
  }
  return out;
}

runtime::Trace SyntheticAnomalyGenerator::MakeAS3() {
  runtime::Trace out = RandomWindow();
  if (out.size() < 2) return out;
  // Pick one event and repeat it over a run of positions, emulating the
  // higher call frequency of a selectivity attack.
  const size_t src = rng_.UniformU64(out.size());
  const size_t run = 3 + rng_.UniformU64(out.size() / 2);
  const size_t start = rng_.UniformU64(out.size());
  for (size_t k = 0; k < run; ++k) {
    out[(start + k) % out.size()] = out[src];
  }
  return out;
}

std::vector<runtime::Trace> SyntheticAnomalyGenerator::MakeBatch1(
    size_t count) {
  std::vector<runtime::Trace> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(MakeAS1());
  return out;
}

std::vector<runtime::Trace> SyntheticAnomalyGenerator::MakeBatch2(
    size_t count) {
  std::vector<runtime::Trace> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(MakeAS2());
  return out;
}

std::vector<runtime::Trace> SyntheticAnomalyGenerator::MakeBatch3(
    size_t count) {
  std::vector<runtime::Trace> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(MakeAS3());
  return out;
}

}  // namespace adprom::attack
