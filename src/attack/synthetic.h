#ifndef ADPROM_ATTACK_SYNTHETIC_H_
#define ADPROM_ATTACK_SYNTHETIC_H_

#include <vector>

#include "runtime/call_event.h"
#include "util/rng.h"

namespace adprom::attack {

/// Generates the paper's three synthetic anomalous-sequence families
/// (§V-D) from a pool of normal windows:
///   A-S1 — replace the tail (last 5 calls) of a normal window with random
///          calls drawn from the *legitimate* call set;
///   A-S2 — splice in library calls that do not belong to the legitimate
///          set at all;
///   A-S3 — inflate the frequency of one legitimate call (the repetition
///          signature of selectivity/injection attacks).
class SyntheticAnomalyGenerator {
 public:
  /// `normal_windows` are n-length windows of real traces; the legitimate
  /// call pool is derived from them (unique events by observable).
  SyntheticAnomalyGenerator(std::vector<runtime::Trace> normal_windows,
                            uint64_t seed);

  /// Number of distinct legitimate events available for sampling.
  size_t pool_size() const { return pool_.size(); }

  runtime::Trace MakeAS1(size_t replaced_tail = 5);
  runtime::Trace MakeAS2(size_t injected = 3);
  runtime::Trace MakeAS3();

  /// Batch helpers.
  std::vector<runtime::Trace> MakeBatch1(size_t count);
  std::vector<runtime::Trace> MakeBatch2(size_t count);
  std::vector<runtime::Trace> MakeBatch3(size_t count);

 private:
  const runtime::Trace& RandomWindow();

  std::vector<runtime::Trace> windows_;
  std::vector<runtime::CallEvent> pool_;  // unique legitimate events
  util::Rng rng_;
};

}  // namespace adprom::attack

#endif  // ADPROM_ATTACK_SYNTHETIC_H_
