#include "attack/mutators.h"

#include <vector>

#include "util/strings.h"

namespace adprom::attack {

namespace {

/// Builds the injected output statement for InsertOutputStatement.
std::unique_ptr<prog::Stmt> MakeOutputStmt(const InsertOutputSpec& spec) {
  std::vector<std::unique_ptr<prog::Expr>> args;
  if (!spec.channel_arg.empty()) {
    args.push_back(prog::Expr::StrLit(spec.channel_arg));
  }
  args.push_back(prog::Expr::Var(spec.variable));
  return prog::Stmt::ExprStmt(
      prog::Expr::Call(spec.output_call, std::move(args)));
}

prog::Stmt* FindFirst(prog::StmtList& body, prog::StmtKind kind) {
  for (auto& stmt : body) {
    if (stmt->kind == kind) return stmt.get();
    if (prog::Stmt* inner = FindFirst(stmt->then_body, kind);
        inner != nullptr) {
      return inner;
    }
    if (prog::Stmt* inner = FindFirst(stmt->else_body, kind);
        inner != nullptr) {
      return inner;
    }
  }
  return nullptr;
}

/// Finds the `occurrence`-th call to `callee` anywhere in an expression.
prog::Expr* FindCallInExpr(prog::Expr& e, const std::string& callee,
                           int* remaining) {
  if (e.kind == prog::ExprKind::kCall) {
    for (auto& arg : e.args) {
      if (prog::Expr* found = FindCallInExpr(*arg, callee, remaining);
          found != nullptr) {
        return found;
      }
    }
    if (e.name == callee && --(*remaining) < 0) return &e;
    return nullptr;
  }
  if (e.lhs != nullptr) {
    if (prog::Expr* found = FindCallInExpr(*e.lhs, callee, remaining);
        found != nullptr) {
      return found;
    }
  }
  if (e.rhs != nullptr) {
    if (prog::Expr* found = FindCallInExpr(*e.rhs, callee, remaining);
        found != nullptr) {
      return found;
    }
  }
  return nullptr;
}

prog::Expr* FindCallInBody(prog::StmtList& body, const std::string& callee,
                           int* remaining) {
  for (auto& stmt : body) {
    if (stmt->expr != nullptr) {
      if (prog::Expr* found = FindCallInExpr(*stmt->expr, callee, remaining);
          found != nullptr) {
        return found;
      }
    }
    if (prog::Expr* found = FindCallInBody(stmt->then_body, callee,
                                           remaining);
        found != nullptr) {
      return found;
    }
    if (prog::Expr* found = FindCallInBody(stmt->else_body, callee,
                                           remaining);
        found != nullptr) {
      return found;
    }
  }
  return nullptr;
}

bool ReplaceLiteralInExpr(prog::Expr& e, const std::string& old_fragment,
                          const std::string& new_fragment) {
  if (e.kind == prog::ExprKind::kStrLit) {
    const size_t pos = e.str_value.find(old_fragment);
    if (pos != std::string::npos) {
      e.str_value.replace(pos, old_fragment.size(), new_fragment);
      return true;
    }
    return false;
  }
  if (e.lhs != nullptr &&
      ReplaceLiteralInExpr(*e.lhs, old_fragment, new_fragment)) {
    return true;
  }
  if (e.rhs != nullptr &&
      ReplaceLiteralInExpr(*e.rhs, old_fragment, new_fragment)) {
    return true;
  }
  for (auto& arg : e.args) {
    if (ReplaceLiteralInExpr(*arg, old_fragment, new_fragment)) return true;
  }
  return false;
}

bool ReplaceLiteralInBody(prog::StmtList& body,
                          const std::string& old_fragment,
                          const std::string& new_fragment) {
  for (auto& stmt : body) {
    if (stmt->expr != nullptr &&
        ReplaceLiteralInExpr(*stmt->expr, old_fragment, new_fragment)) {
      return true;
    }
    if (ReplaceLiteralInBody(stmt->then_body, old_fragment, new_fragment)) {
      return true;
    }
    if (ReplaceLiteralInBody(stmt->else_body, old_fragment, new_fragment)) {
      return true;
    }
  }
  return false;
}

}  // namespace

util::Result<prog::Program> InsertOutputStatement(
    const prog::Program& benign, const InsertOutputSpec& spec) {
  prog::Program tampered = benign.Clone();
  prog::FunctionDef* fn = tampered.FindMutableFunction(spec.function);
  if (fn == nullptr) {
    return util::Status::NotFound("no such function: " + spec.function);
  }
  std::unique_ptr<prog::Stmt> stmt = MakeOutputStmt(spec);
  switch (spec.where) {
    case InsertWhere::kEnd:
      fn->body.push_back(std::move(stmt));
      break;
    case InsertWhere::kElseOfFirstIf:
    case InsertWhere::kThenOfFirstIf: {
      prog::Stmt* target = FindFirst(fn->body, prog::StmtKind::kIf);
      if (target == nullptr) {
        return util::Status::NotFound(spec.function + " has no if statement");
      }
      if (spec.where == InsertWhere::kElseOfFirstIf) {
        target->else_body.push_back(std::move(stmt));
      } else {
        target->then_body.push_back(std::move(stmt));
      }
      break;
    }
    case InsertWhere::kAfterIndex: {
      const size_t at = static_cast<size_t>(spec.index) + 1;
      if (at > fn->body.size()) {
        return util::Status::OutOfRange("statement index out of range");
      }
      fn->body.insert(fn->body.begin() + static_cast<long>(at),
                      std::move(stmt));
      break;
    }
    case InsertWhere::kBodyOfFirstWhile: {
      prog::Stmt* target = FindFirst(fn->body, prog::StmtKind::kWhile);
      if (target == nullptr) {
        return util::Status::NotFound(spec.function + " has no while loop");
      }
      target->then_body.push_back(std::move(stmt));
      break;
    }
  }
  ADPROM_RETURN_IF_ERROR(tampered.Finalize());
  return std::move(tampered);
}

util::Result<prog::Program> ReplaceCallArgument(
    const prog::Program& benign, const std::string& function,
    const std::string& callee, int occurrence, size_t arg_index,
    const std::string& new_variable) {
  prog::Program tampered = benign.Clone();
  prog::FunctionDef* fn = tampered.FindMutableFunction(function);
  if (fn == nullptr) {
    return util::Status::NotFound("no such function: " + function);
  }
  int remaining = occurrence;
  prog::Expr* call = FindCallInBody(fn->body, callee, &remaining);
  if (call == nullptr) {
    return util::Status::NotFound(util::StrFormat(
        "call %s (occurrence %d) not found in %s", callee.c_str(),
        occurrence, function.c_str()));
  }
  if (arg_index >= call->args.size()) {
    return util::Status::OutOfRange("argument index out of range");
  }
  call->args[arg_index] = prog::Expr::Var(new_variable);
  ADPROM_RETURN_IF_ERROR(tampered.Finalize());
  return std::move(tampered);
}

util::Result<prog::Program> ModifyStringLiteral(
    const prog::Program& benign, const std::string& function,
    const std::string& old_fragment, const std::string& new_fragment) {
  prog::Program tampered = benign.Clone();
  prog::FunctionDef* fn = tampered.FindMutableFunction(function);
  if (fn == nullptr) {
    return util::Status::NotFound("no such function: " + function);
  }
  if (!ReplaceLiteralInBody(fn->body, old_fragment, new_fragment)) {
    return util::Status::NotFound("literal fragment not found: " +
                                  old_fragment);
  }
  ADPROM_RETURN_IF_ERROR(tampered.Finalize());
  return std::move(tampered);
}

std::string TautologyPayload() { return "1' OR '1'='1"; }

}  // namespace adprom::attack
