#include "analysis/labeling.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "analysis/dataflow/ifds.h"
#include "util/strings.h"

namespace adprom::analysis {

namespace {

void IndexExpr(const prog::Expr& e, std::map<int, const prog::Expr*>* out) {
  if (e.kind == prog::ExprKind::kCall) {
    (*out)[e.call_site_id] = &e;
  }
  if (e.lhs != nullptr) IndexExpr(*e.lhs, out);
  if (e.rhs != nullptr) IndexExpr(*e.rhs, out);
  for (const auto& arg : e.args) IndexExpr(*arg, out);
}

void IndexBody(const prog::StmtList& body,
               std::map<int, const prog::Expr*>* out) {
  for (const auto& stmt : body) {
    if (stmt->expr != nullptr) IndexExpr(*stmt->expr, out);
    IndexBody(stmt->then_body, out);
    IndexBody(stmt->else_body, out);
  }
}

void CollectStringLiterals(const prog::Expr& e,
                           std::vector<std::string>* out) {
  if (e.kind == prog::ExprKind::kStrLit) out->push_back(e.str_value);
  if (e.lhs != nullptr) CollectStringLiterals(*e.lhs, out);
  if (e.rhs != nullptr) CollectStringLiterals(*e.rhs, out);
  for (const auto& arg : e.args) CollectStringLiterals(*arg, out);
}

/// Finds the identifier following `keyword` (case-insensitive word match)
/// in a SQL fragment, e.g. the table after FROM / INTO / UPDATE.
void ExtractTableAfter(const std::string& text, const std::string& keyword,
                       std::set<std::string>* tables) {
  const std::string lower = util::ToLower(text);
  const std::string needle = util::ToLower(keyword);
  size_t pos = 0;
  while ((pos = lower.find(needle, pos)) != std::string::npos) {
    const bool word_start =
        pos == 0 || !std::isalnum(static_cast<unsigned char>(lower[pos - 1]));
    const size_t after = pos + needle.size();
    const bool word_end =
        after >= lower.size() ||
        !std::isalnum(static_cast<unsigned char>(lower[after]));
    pos = after;
    if (!word_start || !word_end) continue;
    size_t i = after;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    size_t start = i;
    while (i < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[i])) ||
            text[i] == '_'))
      ++i;
    if (i > start) tables->insert(text.substr(start, i - start));
  }
}

}  // namespace

std::string LabeledObservable(const std::string& callee,
                              const std::string& function, int block_id) {
  return util::StrFormat("%s_Q%s_%d", callee.c_str(), function.c_str(),
                         block_id);
}

std::map<int, const prog::Expr*> IndexCallSites(
    const prog::Program& program) {
  std::map<int, const prog::Expr*> out;
  for (const prog::FunctionDef& fn : program.functions()) {
    IndexBody(fn.body, &out);
  }
  return out;
}

std::vector<std::string> StaticSourceTables(
    const prog::Program& program, const std::set<int>& source_sites) {
  const std::map<int, const prog::Expr*> index = IndexCallSites(program);
  std::set<std::string> tables;
  for (int site : source_sites) {
    auto it = index.find(site);
    if (it == index.end()) continue;
    std::vector<std::string> literals;
    for (const auto& arg : it->second->args) {
      CollectStringLiterals(*arg, &literals);
    }
    for (const std::string& lit : literals) {
      ExtractTableAfter(lit, "from", &tables);
      ExtractTableAfter(lit, "into", &tables);
      ExtractTableAfter(lit, "update", &tables);
    }
  }
  return std::vector<std::string>(tables.begin(), tables.end());
}

std::vector<std::string> StaticSourceColumns(
    const prog::Program& program, const std::set<int>& source_sites,
    const db::SchemaCatalog& schemas) {
  const std::map<int, const prog::Expr*> index = IndexCallSites(program);
  std::set<std::string> columns;
  for (int site : source_sites) {
    auto it = index.find(site);
    if (it == index.end()) continue;
    for (const std::string& column :
         dataflow::SourceColumnsForCall(*it->second, schemas)) {
      columns.insert(column);
    }
  }
  return std::vector<std::string>(columns.begin(), columns.end());
}

void ApplyTaintLabels(const TaintResult& taint, const prog::Program& program,
                      Ctm* ctm) {
  for (size_t i = 0; i < ctm->num_sites(); ++i) {
    Site& site = ctm->mutable_site(i);
    auto it = taint.labeled_sinks.find(site.call_site_id);
    if (it == taint.labeled_sinks.end()) continue;
    site.labeled = true;
    site.observable =
        LabeledObservable(site.callee, site.function, site.block_id);
    site.source_tables = StaticSourceTables(program, it->second);
  }
}

void ApplyTaintLabels(const TaintResult& taint, const prog::Program& program,
                      const db::SchemaCatalog& schemas, Ctm* ctm) {
  ApplyTaintLabels(taint, program, ctm);
  for (size_t i = 0; i < ctm->num_sites(); ++i) {
    Site& site = ctm->mutable_site(i);
    if (!site.labeled) continue;
    auto it = taint.labeled_sinks.find(site.call_site_id);
    if (it == taint.labeled_sinks.end()) continue;
    site.source_columns = StaticSourceColumns(program, it->second, schemas);
  }
}

}  // namespace adprom::analysis
