#ifndef ADPROM_ANALYSIS_FORECAST_H_
#define ADPROM_ANALYSIS_FORECAST_H_

#include <map>
#include <string>

#include "analysis/ctm.h"
#include "prog/cfg.h"
#include "util/status.h"

namespace adprom::analysis {

/// The probability forecast of one function (paper §IV-C2):
///  - conditional probability of each CFG edge (eq. 1),
///  - reachability probability of each node (eq. 2),
///  - the function's call-transition matrix (eq. 3).
struct FunctionForecast {
  Ctm ctm;
  /// P^r per CFG node id.
  std::map<int, double> reachability;
  /// P^c per edge (from, to) over the acyclic forecast view.
  std::map<std::pair<int, int>, double> conditional;
};

/// Computes the forecast for `cfg`.
///
/// Equations implemented:
///   (1) P^c_{xy} = 1 / #outgoing forecast edges of x
///   (2) P^r_y    = Σ_{x ∈ parents(y)} P^r_x · P^c_{xy}   (topological order)
///   (3) P^t for a call pair (c_i at node x → c_j at node y) =
///       P^r_x · Σ over call-free paths x→y of Π P^c along the path
/// (3) generalizes the paper's single-path product to a sum over all
/// call-free paths, which reduces to eq. 3 when the path is unique (as in
/// the paper's worked example) and is what makes the CTM exactly
/// flow-conserving. Loops use the acyclic forecast view (back edges run
/// once); the HMM later learns true loop behaviour from traces.
util::Result<FunctionForecast> ComputeForecast(const prog::Cfg& cfg);

}  // namespace adprom::analysis

#endif  // ADPROM_ANALYSIS_FORECAST_H_
