#include "analysis/forecast.h"

#include <algorithm>
#include <set>
#include <vector>

#include "util/logging.h"

namespace adprom::analysis {

namespace {

/// The natural loop of the back edge `back_src -> header`: the header plus
/// every node that reaches `back_src` over predecessor edges without
/// passing through the header.
std::set<int> NaturalLoopRegion(const prog::Cfg& cfg, int back_src,
                                int header) {
  std::set<int> region;
  region.insert(header);
  std::vector<int> stack = {back_src};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (!region.insert(v).second) continue;
    for (int pred : cfg.node(v).preds) stack.push_back(pred);
  }
  return region;
}

}  // namespace

util::Result<FunctionForecast> ComputeForecast(const prog::Cfg& cfg) {
  FunctionForecast out;
  out.ctm = Ctm(cfg.function_name());

  const size_t n = cfg.size();
  const std::vector<int> topo = cfg.ForecastTopoOrder();
  std::vector<size_t> topo_pos(n, 0);
  for (size_t i = 0; i < topo.size(); ++i)
    topo_pos[static_cast<size_t>(topo[i])] = i;

  // (1) Conditional probabilities, as weighted adjacency lists. Parallel
  // edges to the same successor (e.g. a collapsed branch) merge.
  std::vector<std::vector<std::pair<int, double>>> adj(n);
  for (const prog::CfgNode& node : cfg.nodes()) {
    const std::vector<int> succs = cfg.ForecastSuccessors(node.id);
    if (succs.empty()) continue;
    const double p = 1.0 / static_cast<double>(succs.size());
    for (int s : succs) {
      bool merged = false;
      for (auto& [to, w] : adj[static_cast<size_t>(node.id)]) {
        if (to == s) {
          w += p;
          merged = true;
          break;
        }
      }
      if (!merged) adj[static_cast<size_t>(node.id)].emplace_back(s, p);
      out.conditional[{node.id, s}] += p;
    }
  }

  // (2) Reachability in topological order.
  std::vector<double> reach(n, 0.0);
  reach[static_cast<size_t>(cfg.entry_id())] = 1.0;
  for (int id : topo) {
    const double r = reach[static_cast<size_t>(id)];
    if (r == 0.0) continue;
    for (const auto& [to, p] : adj[static_cast<size_t>(id)]) {
      reach[static_cast<size_t>(to)] += r * p;
    }
  }
  for (const prog::CfgNode& node : cfg.nodes())
    out.reachability[node.id] = reach[static_cast<size_t>(node.id)];

  // Register every call node as a CTM site (topological order keeps site
  // indices deterministic).
  std::map<int, size_t> node_to_site;
  for (int id : topo) {
    const prog::CfgNode& node = cfg.node(id);
    if (!node.call.has_value()) continue;
    Site site;
    site.function = cfg.function_name();
    site.block_id = node.id;
    site.callee = node.call->callee;
    site.is_user_fn = node.call->is_user_fn;
    site.call_site_id = node.call->call_site_id;
    site.reachability = reach[static_cast<size_t>(node.id)];
    node_to_site[node.id] = out.ctm.AddSite(std::move(site));
  }

  // (3) Transition probabilities: from each origin (entry or call node),
  // propagate weight through call-free nodes in topological order; the
  // weight arriving at a call node or the exit becomes a CTM entry. This
  // sums over all call-free paths, so flow is conserved exactly.
  auto run_origin = [&](int origin) {
    std::vector<double> g(n, 0.0);
    for (const auto& [to, p] : adj[static_cast<size_t>(origin)]) {
      g[static_cast<size_t>(to)] += p;
    }
    const double origin_reach = reach[static_cast<size_t>(origin)];
    const size_t origin_pos = topo_pos[static_cast<size_t>(origin)];
    for (size_t i = origin_pos + 1; i < topo.size(); ++i) {
      const int v = topo[i];
      const double w = g[static_cast<size_t>(v)];
      if (w == 0.0) continue;
      const prog::CfgNode& node = cfg.node(v);
      const bool is_call = node.call.has_value();
      const bool is_exit = v == cfg.exit_id();
      if (is_call || is_exit) {
        const double weight = origin_reach * w;
        if (origin == cfg.entry_id()) {
          if (is_exit) {
            out.ctm.add_entry_to_exit(weight);
          } else {
            out.ctm.add_entry_to(node_to_site[v], weight);
          }
        } else {
          const size_t from_site = node_to_site[origin];
          if (is_exit) {
            out.ctm.add_to_exit(from_site, weight);
          } else {
            out.ctm.add_between(from_site, node_to_site[v], weight);
          }
        }
        continue;  // Weight is consumed at a call/exit node.
      }
      for (const auto& [to, p] : adj[static_cast<size_t>(v)]) {
        g[static_cast<size_t>(to)] += w * p;
      }
    }
  };

  run_origin(cfg.entry_id());
  for (const auto& [node_id, site_idx] : node_to_site) {
    (void)site_idx;
    run_origin(node_id);
  }

  // (4) Counted-loop reweighting. When the abstract interpreter proved a
  // loop executes exactly k >= 2 iterations, the run-once CTM mass of the
  // loop body is off by a factor of k. Within-region call pairs occur once
  // per iteration (scale by k) and each of the k-1 iteration boundaries
  // contributes a wrap pair: the last call of one iteration followed by
  // the first call of the next. Applied innermost-first so an outer
  // loop's scaling covers its inner loops' already-refined mass. The
  // transform is exactly flow-conserving, which CheckInvariants verifies
  // downstream.
  if (!cfg.loop_bounds().empty()) {
    struct BoundedLoop {
      int back_src;
      int header;
      int64_t trips;
      std::set<int> region;
    };
    std::vector<BoundedLoop> loops;
    for (const auto& [edge, trips] : cfg.loop_bounds()) {
      if (trips < 2) continue;
      BoundedLoop loop;
      loop.back_src = edge.first;
      loop.header = edge.second;
      loop.trips = trips;
      loop.region = NaturalLoopRegion(cfg, edge.first, edge.second);
      loops.push_back(std::move(loop));
    }
    std::sort(loops.begin(), loops.end(),
              [](const BoundedLoop& a, const BoundedLoop& b) {
                if (a.region.size() != b.region.size()) {
                  return a.region.size() < b.region.size();
                }
                return std::pair(a.back_src, a.header) <
                       std::pair(b.back_src, b.header);
              });

    for (const BoundedLoop& loop : loops) {
      const std::set<int>& region = loop.region;
      const auto h = static_cast<size_t>(loop.header);
      const double w_header = reach[h];
      if (w_header == 0.0) continue;
      // User-function sites are later eliminated by the aggregator, whose
      // splice requires the run-once structure; only reweight loops whose
      // calls all target library functions.
      bool only_library = true;
      for (int v : region) {
        const auto& call = cfg.node(v).call;
        if (call.has_value() && call->is_user_fn) only_library = false;
      }
      if (!only_library) continue;

      // fw: weight from the header along call-free prefixes, consumed at
      // call nodes — fw[f] is the probability f is an iteration's first
      // call; fw[back_src] the probability an iteration makes no call at
      // all. The latter must be exactly zero: iterations without calls
      // would make "pairs per boundary" fractional.
      std::vector<double> fw(n, 0.0);
      for (const auto& [to, p] : adj[h]) {
        if (region.contains(to)) fw[static_cast<size_t>(to)] += p;
      }
      for (size_t i = topo_pos[h] + 1; i < topo.size(); ++i) {
        const int v = topo[i];
        if (!region.contains(v)) continue;
        const double w = fw[static_cast<size_t>(v)];
        if (w == 0.0 || cfg.node(v).call.has_value()) continue;
        for (const auto& [to, p] : adj[static_cast<size_t>(v)]) {
          if (region.contains(to)) fw[static_cast<size_t>(to)] += w * p;
        }
      }
      if (fw[static_cast<size_t>(loop.back_src)] != 0.0) continue;

      // rr: per-iteration reachability from the header (calls do not
      // consume it).
      std::vector<double> rr(n, 0.0);
      rr[h] = 1.0;
      for (size_t i = topo_pos[h]; i < topo.size(); ++i) {
        const int v = topo[i];
        if (!region.contains(v)) continue;
        const double w = rr[static_cast<size_t>(v)];
        if (w == 0.0) continue;
        for (const auto& [to, p] : adj[static_cast<size_t>(v)]) {
          if (region.contains(to)) rr[static_cast<size_t>(to)] += w * p;
        }
      }

      // bw: probability of flowing from a node to the back-edge source
      // with no further call — bw[l] at a call l makes rr[l] * bw[l] the
      // probability l is an iteration's last call.
      std::vector<double> bw(n, 0.0);
      bw[static_cast<size_t>(loop.back_src)] = 1.0;
      for (size_t i = topo.size(); i-- > topo_pos[h];) {
        const int v = topo[i];
        if (!region.contains(v) || v == loop.back_src) continue;
        double acc = 0.0;
        for (const auto& [to, p] : adj[static_cast<size_t>(v)]) {
          if (!region.contains(to)) continue;
          acc += p * (cfg.node(to).call.has_value()
                          ? 0.0
                          : bw[static_cast<size_t>(to)]);
        }
        bw[static_cast<size_t>(v)] = acc;
      }

      std::vector<int> region_calls;
      for (const auto& [node_id, site_idx] : node_to_site) {
        (void)site_idx;
        if (region.contains(node_id)) region_calls.push_back(node_id);
      }
      const double scale = static_cast<double>(loop.trips);
      for (int a : region_calls) {
        for (int b : region_calls) {
          const size_t sa = node_to_site[a];
          const size_t sb = node_to_site[b];
          const double w = out.ctm.between(sa, sb);
          if (w != 0.0) out.ctm.set_between(sa, sb, w * scale);
        }
      }
      const double boundaries = static_cast<double>(loop.trips - 1);
      for (int last : region_calls) {
        const double u = rr[static_cast<size_t>(last)] *
                         bw[static_cast<size_t>(last)];
        if (u == 0.0) continue;
        for (int first : region_calls) {
          const double v = fw[static_cast<size_t>(first)];
          if (v == 0.0) continue;
          out.ctm.add_between(node_to_site[last], node_to_site[first],
                              boundaries * w_header * u * v);
        }
      }
    }
  }

  return std::move(out);
}

}  // namespace adprom::analysis
