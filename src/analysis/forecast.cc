#include "analysis/forecast.h"

#include <vector>

#include "util/logging.h"

namespace adprom::analysis {

util::Result<FunctionForecast> ComputeForecast(const prog::Cfg& cfg) {
  FunctionForecast out;
  out.ctm = Ctm(cfg.function_name());

  const size_t n = cfg.size();
  const std::vector<int> topo = cfg.ForecastTopoOrder();
  std::vector<size_t> topo_pos(n, 0);
  for (size_t i = 0; i < topo.size(); ++i)
    topo_pos[static_cast<size_t>(topo[i])] = i;

  // (1) Conditional probabilities, as weighted adjacency lists. Parallel
  // edges to the same successor (e.g. a collapsed branch) merge.
  std::vector<std::vector<std::pair<int, double>>> adj(n);
  for (const prog::CfgNode& node : cfg.nodes()) {
    const std::vector<int> succs = cfg.ForecastSuccessors(node.id);
    if (succs.empty()) continue;
    const double p = 1.0 / static_cast<double>(succs.size());
    for (int s : succs) {
      bool merged = false;
      for (auto& [to, w] : adj[static_cast<size_t>(node.id)]) {
        if (to == s) {
          w += p;
          merged = true;
          break;
        }
      }
      if (!merged) adj[static_cast<size_t>(node.id)].emplace_back(s, p);
      out.conditional[{node.id, s}] += p;
    }
  }

  // (2) Reachability in topological order.
  std::vector<double> reach(n, 0.0);
  reach[static_cast<size_t>(cfg.entry_id())] = 1.0;
  for (int id : topo) {
    const double r = reach[static_cast<size_t>(id)];
    if (r == 0.0) continue;
    for (const auto& [to, p] : adj[static_cast<size_t>(id)]) {
      reach[static_cast<size_t>(to)] += r * p;
    }
  }
  for (const prog::CfgNode& node : cfg.nodes())
    out.reachability[node.id] = reach[static_cast<size_t>(node.id)];

  // Register every call node as a CTM site (topological order keeps site
  // indices deterministic).
  std::map<int, size_t> node_to_site;
  for (int id : topo) {
    const prog::CfgNode& node = cfg.node(id);
    if (!node.call.has_value()) continue;
    Site site;
    site.function = cfg.function_name();
    site.block_id = node.id;
    site.callee = node.call->callee;
    site.is_user_fn = node.call->is_user_fn;
    site.call_site_id = node.call->call_site_id;
    site.reachability = reach[static_cast<size_t>(node.id)];
    node_to_site[node.id] = out.ctm.AddSite(std::move(site));
  }

  // (3) Transition probabilities: from each origin (entry or call node),
  // propagate weight through call-free nodes in topological order; the
  // weight arriving at a call node or the exit becomes a CTM entry. This
  // sums over all call-free paths, so flow is conserved exactly.
  auto run_origin = [&](int origin) {
    std::vector<double> g(n, 0.0);
    for (const auto& [to, p] : adj[static_cast<size_t>(origin)]) {
      g[static_cast<size_t>(to)] += p;
    }
    const double origin_reach = reach[static_cast<size_t>(origin)];
    const size_t origin_pos = topo_pos[static_cast<size_t>(origin)];
    for (size_t i = origin_pos + 1; i < topo.size(); ++i) {
      const int v = topo[i];
      const double w = g[static_cast<size_t>(v)];
      if (w == 0.0) continue;
      const prog::CfgNode& node = cfg.node(v);
      const bool is_call = node.call.has_value();
      const bool is_exit = v == cfg.exit_id();
      if (is_call || is_exit) {
        const double weight = origin_reach * w;
        if (origin == cfg.entry_id()) {
          if (is_exit) {
            out.ctm.add_entry_to_exit(weight);
          } else {
            out.ctm.add_entry_to(node_to_site[v], weight);
          }
        } else {
          const size_t from_site = node_to_site[origin];
          if (is_exit) {
            out.ctm.add_to_exit(from_site, weight);
          } else {
            out.ctm.add_between(from_site, node_to_site[v], weight);
          }
        }
        continue;  // Weight is consumed at a call/exit node.
      }
      for (const auto& [to, p] : adj[static_cast<size_t>(v)]) {
        g[static_cast<size_t>(to)] += w * p;
      }
    }
  };

  run_origin(cfg.entry_id());
  for (const auto& [node_id, site_idx] : node_to_site) {
    (void)site_idx;
    run_origin(node_id);
  }

  return std::move(out);
}

}  // namespace adprom::analysis
