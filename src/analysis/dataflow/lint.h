#ifndef ADPROM_ANALYSIS_DATAFLOW_LINT_H_
#define ADPROM_ANALYSIS_DATAFLOW_LINT_H_

#include <set>
#include <string>
#include <vector>

#include "analysis/dataflow/ifds.h"
#include "analysis/taint.h"
#include "db/schema.h"
#include "prog/program.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace adprom::analysis::dataflow {

/// Static vetting of a MiniApp program before deployment (`adprom lint`).
/// Complements the run-time monitor: the App_b-style concatenated-query
/// injection is caught here before the program ever reaches a database.
struct LintOptions {
  /// The source/sink sets the deployed monitor labels with; the exfil
  /// check reports taint reaching an output channel *outside* this sink
  /// set (data the monitor would never label).
  TaintConfig monitored = TaintConfig::Default();
  /// Calls treated as neutralizing user input for the injection check.
  std::set<std::string> sanitizer_calls = {"to_int", "to_real", "len",
                                           "is_null"};
  bool check_injection = true;
  bool check_uninitialized = true;
  bool check_unreachable = true;
  bool check_dead_stores = true;
  bool check_exfil = true;
  /// Interval-powered checks (abstract interpretation): conditions that
  /// are provably always true/false, possible division by zero, and
  /// constant indices out of a fixed-size collection's bounds. Branch
  /// conditions that are bare literals (`while (1)`) are treated as
  /// intentional and skipped.
  bool check_infeasible_branch = true;
  bool check_div_zero = true;
  bool check_const_index = true;
  /// CREATE TABLE schemas for `SELECT *` column expansion in the exfil
  /// check (may be empty; `adprom lint --db <seed.sql>` fills it).
  db::SchemaCatalog schemas;
  /// Resolve the `table.column` sets an exfil finding can leak and
  /// mention them in the diagnostic.
  bool column_taint = true;
  /// Attach a source->sink witness path to every taint finding
  /// (`adprom lint --witnesses`).
  bool witnesses = false;
  util::ThreadPool* pool = nullptr;
  /// Optional incremental cache: the absint, injection (taint-flow) and
  /// exfil/witness (IFDS) passes store per-function summaries in the
  /// matching stores, keyed so that a warm rerun only re-solves the
  /// transitive dependents of changed functions. Findings and witnesses
  /// are field-identical with or without it (property-tested). nullptr
  /// runs every pass cold.
  AnalysisCache* cache = nullptr;
};

/// Per-pass wall time and summary-cache counters for one RunLint call
/// (`adprom lint --stats`). The cache counters stay zero when
/// `LintOptions::cache` is null.
struct LintStats {
  double structural_seconds = 0.0;  // unreachable/uninit/dead-store checks
  double absint_seconds = 0.0;
  double injection_seconds = 0.0;  // taint-flow pass (+ optional witnesses)
  double exfil_seconds = 0.0;      // IFDS pass
  PassCacheStats absint_cache;
  PassCacheStats taint_cache;
  PassCacheStats ifds_cache;
};

struct LintFinding {
  std::string category;  // sql-injection, maybe-uninit, unreachable, ...
  std::string function;
  int line = 0;
  std::string message;
  /// Index into LintReport::witnesses, or -1 when the finding has no
  /// witness (non-taint findings, or witnesses disabled).
  int witness = -1;
};

struct LintReport {
  /// Sorted by (line, category, function, message, witness); identical
  /// findings are deduplicated.
  std::vector<LintFinding> findings;
  /// Witness paths referenced by `LintFinding::witness` (empty unless
  /// `LintOptions::witnesses`). The exfil check's *pruned* facts are
  /// appended after the referenced ones, so the report can also explain
  /// why a would-be finding was discarded.
  std::vector<LeakWitness> witnesses;
  size_t functions_checked = 0;
  /// Per-pass timing and cache counters (not part of the JSON rendering,
  /// which must stay byte-identical across cold and warm runs).
  LintStats stats;

  /// One diagnostic per line: "<file>:<line>: [category] message (in fn)".
  std::string Format(const std::string& file_label) const;

  /// Machine-readable rendering with a stable field order:
  /// {"file", "findings": [{"line", "category", "function", "message"
  /// (, "witness")}], "witnesses", "functions_checked"}.
  std::string FormatJson(const std::string& file_label) const;
};

/// Runs every enabled check. Requires a finalized program.
util::Result<LintReport> RunLint(const prog::Program& program,
                                 const LintOptions& options = {});

}  // namespace adprom::analysis::dataflow

#endif  // ADPROM_ANALYSIS_DATAFLOW_LINT_H_
