#include "analysis/dataflow/reaching_defs.h"

#include <algorithm>
#include <utility>

#include "analysis/dataflow/solver.h"

namespace adprom::analysis::dataflow {

namespace {

/// Gen/kill client: a kDef node replaces the variable's definition set
/// with {node.id}; every other node is the identity.
class ReachingDefsClient {
 public:
  using Domain = std::map<std::string, std::set<int>>;

  ReachingDefsClient(const FlowGraph& graph,
                     const std::vector<std::string>& params) {
    // The variable universe must be seeded at the entry so a path that
    // never defines a variable still contributes kUninitDef at joins.
    for (const FlowNode& node : graph.nodes()) {
      if (node.op == FlowOp::kDef) boundary_[node.def] = {kUninitDef};
      if (node.expr != nullptr) {
        std::vector<std::string> reads;
        CollectVarReads(*node.expr, &reads);
        for (std::string& name : reads) {
          boundary_.emplace(std::move(name), std::set<int>{kUninitDef});
        }
      }
    }
    for (const std::string& param : params) {
      boundary_[param] = {kParamDef};
    }
  }

  Domain Boundary() const { return boundary_; }

  void Join(Domain* into, const Domain& from) const {
    for (const auto& [var, defs] : from) {
      (*into)[var].insert(defs.begin(), defs.end());
    }
  }

  Domain Transfer(const FlowNode& node, const Domain& in) const {
    if (node.op != FlowOp::kDef) return in;
    Domain out = in;
    out[node.def] = {node.id};
    return out;
  }

 private:
  Domain boundary_;
};

}  // namespace

ReachingDefsResult ComputeReachingDefs(
    const FlowGraph& graph, const std::vector<std::string>& params) {
  ReachingDefsClient client(graph, params);
  const SolveResult<ReachingDefsClient> solved =
      Solve(graph, Direction::kForward, &client);

  ReachingDefsResult result;
  result.in_states.reserve(solved.states.size());
  for (const auto& states : solved.states) {
    result.in_states.push_back(states.in);
  }

  std::set<std::pair<std::string, int>> reported;
  for (const FlowNode& node : graph.nodes()) {
    if (node.expr == nullptr) continue;
    std::vector<std::string> reads;
    CollectVarReads(*node.expr, &reads);
    const auto& in = result.in_states[static_cast<size_t>(node.id)];
    for (const std::string& var : reads) {
      auto it = in.find(var);
      const bool uninit = it == in.end() || it->second.contains(kUninitDef);
      if (uninit && reported.insert({var, node.line}).second) {
        result.maybe_uninit.push_back({var, node.line});
      }
    }
  }
  std::sort(result.maybe_uninit.begin(), result.maybe_uninit.end(),
            [](const auto& a, const auto& b) {
              return std::tie(a.line, a.variable) < std::tie(b.line, b.variable);
            });
  return result;
}

}  // namespace adprom::analysis::dataflow
