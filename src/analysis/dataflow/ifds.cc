#include "analysis/dataflow/ifds.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <deque>
#include <optional>
#include <tuple>
#include <utility>

#include "analysis/absint/replay.h"
#include "analysis/dataflow/flow_graph.h"
#include "analysis/dataflow/solver.h"
#include "analysis/hashing.h"
#include "analysis/incremental.h"
#include "analysis/labeling.h"
#include "prog/scc.h"
#include "util/logging.h"

namespace adprom::analysis::dataflow {

namespace {

/// Same token space as the flow-sensitive engine: negative tokens are
/// symbolic parameters (t == -1 - k), non-negative ones concrete source
/// call sites. The IFDS engine tracks no concat tokens — the injection
/// vetter keeps using the flow engine for those.
bool IsParamToken(int t) { return t < 0; }
int ParamToken(size_t k) { return -1 - static_cast<int>(k); }
size_t ParamIndexOf(int t) { return static_cast<size_t>(-1 - t); }

struct FnSummary {
  std::set<int> ret_tokens;
  std::map<size_t, std::set<int>> param_sinks;

  bool operator==(const FnSummary&) const = default;
};

/// The value an expression carries, extended with the provenance the
/// witness tiers need: which in-state variables contributed tokens, and
/// which tokens are *born* inside the expression itself (source calls and
/// concrete callee-return tokens).
struct Flow {
  std::set<int> tokens;
  std::set<std::string> vars;
  std::set<int> gens;
};

void MergeFlow(Flow* into, const Flow& from) {
  into->tokens.insert(from.tokens.begin(), from.tokens.end());
  into->vars.insert(from.vars.begin(), from.vars.end());
  into->gens.insert(from.gens.begin(), from.gens.end());
}

void EncodeFlow(const Flow& f, BinaryWriter* w) {
  Put(*w, f.tokens);
  Put(*w, f.vars);
  Put(*w, f.gens);
}

Flow DecodeFlow(BinaryReader* r) {
  Flow f;
  f.tokens = Get<std::set<int>>(*r);
  f.vars = Get<std::set<std::string>>(*r);
  f.gens = Get<std::set<int>>(*r);
  return f;
}

/// One sink obligation observed at a node: token `token` (concrete or a
/// parameter of the observing function) may reach sink `site`, either at
/// a direct sink call here (`via_callee` empty) or by being passed as
/// `via_param` into `via_callee` whose summary carries the obligation.
struct SinkFact {
  int site = -1;
  int token = 0;
  int node = -1;
  std::string via_callee;
  size_t via_param = 0;
  std::set<std::string> vars;  // in-state vars feeding the observed flow
  bool from_gen = false;       // token born inside this node's expression
  /// Sealed after the conditioned feasibility pass (true when the filter
  /// is off or skipped); cached with the fact so warm runs skip the
  /// conditioned solves entirely.
  bool locally_feasible = true;
};

/// Where a concrete token enters a function: the node whose expression
/// births it (its own source call, or a call returning it).
struct Birth {
  int node = -1;
  std::string call;
};

/// Mirrors the flow-sensitive TaintClient's expression semantics on the
/// extended Flow value. With a Recorder attached (the post-fixpoint
/// observation pass) it also emits sink facts, births, summary edges and
/// the diagnostic parameter map; transfer functions run it bare.
class TokenEval {
 public:
  using Domain = std::map<std::string, std::set<int>>;

  struct Recorder {
    int node = -1;
    std::vector<SinkFact>* facts = nullptr;
    std::map<int, std::vector<Birth>>* births = nullptr;
    std::map<std::string, std::map<std::string, std::set<int>>>* param_vars =
        nullptr;
    std::map<size_t, std::set<int>>* param_sinks = nullptr;
    size_t* summary_edges = nullptr;
  };

  TokenEval(const prog::Program& program, const IfdsOptions& options,
            const std::vector<FnSummary>& summaries,
            const std::map<std::string, size_t>& fn_index)
      : program_(program),
        options_(options),
        summaries_(summaries),
        fn_index_(fn_index) {}

  Flow Eval(const prog::Expr& e, const Domain& state, Recorder* rec) const {
    switch (e.kind) {
      case prog::ExprKind::kIntLit:
      case prog::ExprKind::kRealLit:
      case prog::ExprKind::kStrLit:
        return {};
      case prog::ExprKind::kVar: {
        auto it = state.find(e.name);
        if (it == state.end() || it->second.empty()) return {};
        Flow out;
        out.tokens = it->second;
        out.vars.insert(e.name);
        return out;
      }
      case prog::ExprKind::kBinary: {
        Flow out = Eval(*e.lhs, state, rec);
        MergeFlow(&out, Eval(*e.rhs, state, rec));
        return out;
      }
      case prog::ExprKind::kUnary:
        return Eval(*e.lhs, state, rec);
      case prog::ExprKind::kCall:
        return EvalCall(e, state, rec);
    }
    return {};
  }

 private:
  Flow EvalCall(const prog::Expr& call, const Domain& state,
                Recorder* rec) const {
    std::vector<Flow> args;
    args.reserve(call.args.size());
    Flow merged;
    for (const auto& arg : call.args) {
      args.push_back(Eval(*arg, state, rec));
      MergeFlow(&merged, args.back());
    }

    if (program_.IsUserFunction(call.name)) {
      const FnSummary& summary = summaries_[fn_index_.at(call.name)];
      const prog::FunctionDef* callee = program_.FindFunction(call.name);
      if (rec != nullptr) {
        for (const auto& [k, sites] : summary.param_sinks) {
          if (k >= args.size()) continue;
          for (int t : args[k].tokens) {
            if (rec->summary_edges != nullptr) {
              *rec->summary_edges += sites.size();
            }
            if (IsParamToken(t) && rec->param_sinks != nullptr) {
              (*rec->param_sinks)[ParamIndexOf(t)].insert(sites.begin(),
                                                          sites.end());
            }
            for (int site : sites) {
              rec->facts->push_back({site, t, rec->node, call.name, k,
                                     args[k].vars,
                                     args[k].gens.contains(t)});
            }
          }
        }
        for (size_t k = 0; k < args.size() && k < callee->params.size();
             ++k) {
          for (int t : args[k].tokens) {
            if (!IsParamToken(t)) {
              (*rec->param_vars)[call.name][callee->params[k]].insert(t);
            }
          }
        }
      }
      Flow ret;
      for (int t : summary.ret_tokens) {
        if (rec != nullptr && rec->summary_edges != nullptr) {
          ++*rec->summary_edges;  // return-flow summary instantiation
        }
        if (IsParamToken(t)) {
          const size_t k = ParamIndexOf(t);
          if (k < args.size()) MergeFlow(&ret, args[k]);
        } else {
          ret.tokens.insert(t);
          ret.gens.insert(t);
          if (rec != nullptr) RecordBirth(rec, t, call.name);
        }
      }
      return ret;
    }

    if (options_.sanitizer_calls.contains(call.name)) return {};
    if (options_.config.sink_calls.contains(call.name) && rec != nullptr) {
      for (int t : merged.tokens) {
        if (IsParamToken(t) && rec->param_sinks != nullptr) {
          (*rec->param_sinks)[ParamIndexOf(t)].insert(call.call_site_id);
        }
        rec->facts->push_back({call.call_site_id, t, rec->node, "", 0,
                               merged.vars, merged.gens.contains(t)});
      }
    }
    if (options_.config.source_calls.contains(call.name)) {
      Flow out = std::move(merged);
      out.tokens.insert(call.call_site_id);
      out.gens.insert(call.call_site_id);
      if (rec != nullptr) RecordBirth(rec, call.call_site_id, call.name);
      return out;
    }
    return merged;
  }

  static void RecordBirth(Recorder* rec, int token, const std::string& call) {
    if (rec->births == nullptr) return;
    std::vector<Birth>& list = (*rec->births)[token];
    for (const Birth& b : list) {
      if (b.node == rec->node) return;
    }
    list.push_back({rec->node, call});
  }

  const prog::Program& program_;
  const IfdsOptions& options_;
  const std::vector<FnSummary>& summaries_;
  const std::map<std::string, size_t>& fn_index_;
};

/// The per-function reachability client: identical lattice and transfer
/// as the flow-sensitive TaintClient (strong updates on assignment), with
/// every observation deferred to the post-fixpoint pass.
class IfdsClient {
 public:
  using Domain = TokenEval::Domain;

  IfdsClient(const TokenEval& eval, const prog::FunctionDef& fn)
      : eval_(eval), fn_(fn) {}

  Domain Boundary() const {
    Domain out;
    for (size_t k = 0; k < fn_.params.size(); ++k) {
      out[fn_.params[k]] = {ParamToken(k)};
    }
    return out;
  }

  void Join(Domain* into, const Domain& from) const {
    for (const auto& [var, tokens] : from) {
      if (tokens.empty()) continue;
      (*into)[var].insert(tokens.begin(), tokens.end());
    }
  }

  Domain Transfer(const FlowNode& node, const Domain& in) {
    if (node.op != FlowOp::kDef) return in;
    Domain out = in;
    Flow value = eval_.Eval(*node.expr, in, nullptr);
    if (value.tokens.empty()) {
      out.erase(node.def);
    } else {
      out[node.def] = std::move(value.tokens);
    }
    return out;
  }

 private:
  const TokenEval& eval_;
  const prog::FunctionDef& fn_;
};

bool HasToken(const TokenEval::Domain& state, const std::string& var,
              int token) {
  auto it = state.find(var);
  return it != state.end() && it->second.contains(token);
}

// ---------------------------------------------------------------------------
// Conditioned feasibility solve.
// ---------------------------------------------------------------------------

/// The feasibility domain for one demanded token: `lambda` is the plain
/// path-insensitive abstract state (what the absint engine computes), and
/// `carriers` holds, per variable currently carrying the token, the
/// abstract state joined only over the CFG paths the token flowed along.
/// Every carrier state is below lambda; branch refinement that empties a
/// carrier proves every path realizing that flow infeasible.
struct CondState {
  absint::AbsState lambda;
  std::map<std::string, absint::AbsState> carriers;

  bool operator==(const CondState&) const = default;
};

class CondClient {
 public:
  using Domain = CondState;

  CondClient(const FlowGraph& graph, const prog::FunctionDef& fn,
             std::optional<size_t> param_index,
             const std::set<int>& birth_defs, const std::set<int>& carries,
             const std::map<int, std::set<std::string>>& contributors,
             const std::map<std::string, absint::AbsValue>& returns)
      : fn_(fn),
        param_index_(param_index),
        birth_defs_(birth_defs),
        carries_(carries),
        contributors_(contributors),
        returns_(returns),
        loop_head_joins_(graph.size(), 0) {}

  Domain Boundary() const {
    Domain d;
    d.lambda.reachable = true;
    if (param_index_.has_value() && *param_index_ < fn_.params.size()) {
      d.carriers[fn_.params[*param_index_]] = d.lambda;
    }
    return d;
  }

  void Join(Domain* into, const Domain& from) const {
    JoinInto(&into->lambda, from.lambda);
    for (const auto& [var, state] : from.carriers) {
      if (!state.reachable) continue;
      JoinInto(&into->carriers[var], state);
    }
  }

  Domain Transfer(const FlowNode& node, const Domain& in) {
    if (node.op != FlowOp::kDef) return in;
    Domain out = in;
    ApplyDef(node, &out.lambda);
    for (auto& [var, state] : out.carriers) ApplyDef(node, &state);
    if (carries_.contains(node.id)) {
      absint::AbsState carrier;  // bottom: joined over contributing paths
      auto it = contributors_.find(node.id);
      if (it != contributors_.end()) {
        for (const std::string& var : it->second) {
          auto c = in.carriers.find(var);
          if (c != in.carriers.end()) JoinInto(&carrier, c->second);
        }
      }
      if (birth_defs_.contains(node.id)) JoinInto(&carrier, in.lambda);
      if (carrier.reachable) {
        ApplyDef(node, &carrier);
        out.carriers[node.def] = std::move(carrier);
      } else {
        out.carriers.erase(node.def);
      }
    } else {
      out.carriers.erase(node.def);  // strong update kills the flow
    }
    return out;
  }

  Domain TransferEdge(const FlowNode& pred, int to_id,
                      const Domain& out) const {
    if (pred.op != FlowOp::kBranch || pred.expr == nullptr ||
        pred.true_succ == pred.false_succ) {
      return out;
    }
    if (!out.lambda.reachable && out.carriers.empty()) return out;
    bool assume = false;
    if (to_id == pred.true_succ) {
      assume = true;
    } else if (to_id != pred.false_succ) {
      return out;
    }
    Domain refined = out;
    if (refined.lambda.reachable &&
        !AssumeCondition(*pred.expr, assume, &refined.lambda, returns_)) {
      return Domain{};  // the edge is infeasible outright
    }
    for (auto it = refined.carriers.begin(); it != refined.carriers.end();) {
      if (!AssumeCondition(*pred.expr, assume, &it->second, returns_)) {
        it = refined.carriers.erase(it);  // every realizing path contradicts
      } else {
        ++it;
      }
    }
    return refined;
  }

  Domain WidenJoin(const FlowNode& node, const Domain& previous,
                   const Domain& joined) {
    if (!node.is_loop_head) return joined;
    constexpr int kWidenDelay = 3;
    const int visits = ++loop_head_joins_[static_cast<size_t>(node.id)];
    if (visits <= kWidenDelay) return joined;
    Domain widened = joined;
    WidenState(&widened.lambda, previous.lambda);
    for (auto& [var, state] : widened.carriers) {
      auto prev = previous.carriers.find(var);
      if (prev != previous.carriers.end()) WidenState(&state, prev->second);
    }
    return widened;
  }

 private:
  void ApplyDef(const FlowNode& node, absint::AbsState* state) const {
    if (!state->reachable) return;
    absint::AbsValue value = EvalExpr(*node.expr, *state, returns_);
    if (value.IsTop()) {
      state->vars.erase(node.def);
    } else {
      state->vars[node.def] = std::move(value);
    }
  }

  static void WidenState(absint::AbsState* state,
                         const absint::AbsState& previous) {
    if (!state->reachable || !previous.reachable) return;
    for (auto& [name, value] : state->vars) {
      auto prev = previous.vars.find(name);
      if (prev == previous.vars.end()) continue;
      if (value.kind() == absint::AbsValue::Kind::kInt &&
          prev->second.kind() == absint::AbsValue::Kind::kInt) {
        value = absint::AbsValue::Int(
            value.interval().WidenFrom(prev->second.interval()));
      }
    }
    for (auto it = state->vars.begin(); it != state->vars.end();) {
      if (it->second.IsTop()) {
        it = state->vars.erase(it);
      } else {
        ++it;
      }
    }
  }

  const prog::FunctionDef& fn_;
  std::optional<size_t> param_index_;
  const std::set<int>& birth_defs_;
  const std::set<int>& carries_;
  const std::map<int, std::set<std::string>>& contributors_;
  const std::map<std::string, absint::AbsValue>& returns_;
  std::vector<int> loop_head_joins_;
};

/// Per node: did the conditioned lambda reach it, and which carriers
/// survived into its in-state. Enough to decide every fact verdict.
struct CondDigest {
  std::vector<std::pair<bool, std::set<std::string>>> in;
};

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

std::string ExprToText(const prog::Expr& e) {
  switch (e.kind) {
    case prog::ExprKind::kIntLit:
      return std::to_string(e.int_value);
    case prog::ExprKind::kRealLit: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", e.real_value);
      return buf;
    }
    case prog::ExprKind::kStrLit:
      return "\"" + e.str_value + "\"";
    case prog::ExprKind::kVar:
      return e.name;
    case prog::ExprKind::kBinary:
      return "(" + ExprToText(*e.lhs) + " " + prog::BinOpName(e.bin_op) +
             " " + ExprToText(*e.rhs) + ")";
    case prog::ExprKind::kUnary:
      return (e.un_op == prog::UnOp::kNot ? "!" : "-") + ExprToText(*e.lhs);
    case prog::ExprKind::kCall: {
      std::string out = e.name + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprToText(*e.args[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

std::string NodeText(const FlowNode& node) {
  switch (node.op) {
    case FlowOp::kEntry:
      return "entry";
    case FlowOp::kExit:
      return "exit";
    case FlowOp::kJoin:
      return "join";
    case FlowOp::kDef:
      return (node.is_decl ? "var " : "") + node.def + " = " +
             ExprToText(*node.expr);
    case FlowOp::kBranch: {
      const bool is_while =
          node.stmt != nullptr && node.stmt->kind == prog::StmtKind::kWhile;
      return std::string(is_while ? "while " : "if ") +
             ExprToText(*node.expr);
    }
    case FlowOp::kReturn:
      return node.expr == nullptr ? "return"
                                  : "return " + ExprToText(*node.expr);
    case FlowOp::kEval:
      return ExprToText(*node.expr);
  }
  return "?";
}

std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

void CollectLiteralText(const prog::Expr& e, std::string* out) {
  switch (e.kind) {
    case prog::ExprKind::kStrLit:
      *out += e.str_value;
      return;
    case prog::ExprKind::kBinary:
      CollectLiteralText(*e.lhs, out);
      CollectLiteralText(*e.rhs, out);
      return;
    case prog::ExprKind::kUnary:
      CollectLiteralText(*e.lhs, out);
      return;
    case prog::ExprKind::kCall:
      for (const auto& arg : e.args) CollectLiteralText(*arg, out);
      return;
    default:
      return;
  }
}

std::string Trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

class IfdsEngine {
 public:
  IfdsEngine(const prog::Program& program, const IfdsOptions& options)
      : program_(program),
        options_(options),
        eval_(program, options, summaries_, fn_index_) {}

  IfdsResult Run() {
    const auto& fns = program_.functions();
    const size_t count = fns.size();
    for (size_t i = 0; i < count; ++i) fn_index_[fns[i].name] = i;
    for (const prog::FunctionDef& fn : fns) {
      returns_top_[fn.name] = absint::AbsValue::Top();
    }

    graphs_.reserve(count);
    std::vector<std::vector<int>> adjacency(count);
    for (size_t i = 0; i < count; ++i) {
      graphs_.push_back(FlowGraph::Build(fns[i]));
      std::set<int> callees;
      CollectCallees(fns[i].body, &callees);
      adjacency[i].assign(callees.begin(), callees.end());
    }

    summaries_.assign(count, {});
    solved_.resize(count);
    solved_valid_.assign(count, 0);
    facts_.assign(count, {});
    births_.assign(count, {});
    def_flows_.assign(count, {});
    var_tokens_.assign(count, {});
    param_vars_.assign(count, {});
    summary_edges_.assign(count, 0);
    cond_.assign(count, {});
    demanded_count_.assign(count, 0);
    feasible_obligations_.assign(count, {});
    filter_skipped_.assign(count, 0);
    prov_.resize(count);

    cache_ = options_.summary_cache;
    if (cache_ != nullptr) {
      body_hash_.resize(count);
      for (size_t i = 0; i < count; ++i) {
        body_hash_[i] = HashFunctionBody(fns[i]);
      }
      summary_hash_.assign(count, 0);
      Hasher fp;
      fp.Str("ifds");
      auto chain_set = [&fp](const std::set<std::string>& s) {
        fp.Size(s.size());
        for (const std::string& e : s) fp.Str(e);
      };
      chain_set(options_.config.source_calls);
      chain_set(options_.config.sink_calls);
      chain_set(options_.sanitizer_calls);
      fp.Bool(options_.feasibility_filter);
      // The schema catalog feeds column resolution; fold it into the
      // fingerprint so a schema edit conservatively invalidates.
      fp.U64(HashSchemaCatalog(&options_.schemas));
      config_fp_ = fp.digest();
    }

    const prog::SccDecomposition scc = prog::ComputeSccs(adjacency);
    for (const std::vector<int>& level : scc.levels) {
      util::ParallelFor(options_.pool, level.size(), [&](size_t i) {
        SolveComponent(scc.components[static_cast<size_t>(level[i])],
                       adjacency);
      });
    }

    return Assemble();
  }

 private:
  // -- plain reachability tier ------------------------------------------

  void CollectCallees(const prog::StmtList& body, std::set<int>* out) const {
    for (const auto& stmt : body) {
      if (stmt->expr != nullptr) {
        std::vector<const prog::Expr*> calls;
        prog::CollectCalls(*stmt->expr, &calls);
        for (const prog::Expr* call : calls) {
          auto it = fn_index_.find(call->name);
          if (it != fn_index_.end()) {
            out->insert(static_cast<int>(it->second));
          }
        }
      }
      CollectCallees(stmt->then_body, out);
      CollectCallees(stmt->else_body, out);
    }
  }

  void SolveFunction(size_t index) {
    const prog::FunctionDef& fn = program_.functions()[index];
    IfdsClient client(eval_, fn);
    solved_[index] = Solve(graphs_[index], Direction::kForward, &client);
    solved_valid_[index] = 1;
    PostPass(index);
  }

  /// Re-solves the plain reachability fixpoint of a cache-hit function on
  /// demand (the witness tier walks the solved states, which are not part
  /// of the cached payload). The converged summaries are already in
  /// place, so one solve reproduces the cold fixpoint exactly. Called
  /// only from the serial witness-reconstruction tier.
  void EnsureSolved(size_t index) {
    if (solved_valid_[index]) return;
    solved_valid_[index] = 1;
    IfdsClient client(eval_, program_.functions()[index]);
    solved_[index] = Solve(graphs_[index], Direction::kForward, &client);
  }

  /// Recomputes every observation of `index` against the solved fixpoint:
  /// sink facts, births, summary (return tokens + parameter obligations),
  /// diagnostic maps. Deterministic — nodes are walked in id order.
  void PostPass(size_t index) {
    facts_[index].clear();
    births_[index].clear();
    def_flows_[index].clear();
    var_tokens_[index].clear();
    param_vars_[index].clear();
    summary_edges_[index] = 0;
    FnSummary summary;

    TokenEval::Recorder rec;
    rec.facts = &facts_[index];
    rec.births = &births_[index];
    rec.param_vars = &param_vars_[index];
    rec.param_sinks = &summary.param_sinks;
    rec.summary_edges = &summary_edges_[index];

    const FlowGraph& graph = graphs_[index];
    for (const FlowNode& node : graph.nodes()) {
      if (node.expr == nullptr) continue;
      if (node.op != FlowOp::kDef && node.op != FlowOp::kBranch &&
          node.op != FlowOp::kEval && node.op != FlowOp::kReturn) {
        continue;
      }
      rec.node = node.id;
      const Flow flow = eval_.Eval(
          *node.expr, solved_[index].states[static_cast<size_t>(node.id)].in,
          &rec);
      if (node.op == FlowOp::kDef) {
        def_flows_[index][node.id] = flow;
      } else if (node.op == FlowOp::kReturn) {
        summary.ret_tokens.insert(flow.tokens.begin(), flow.tokens.end());
      }
    }
    for (const auto& states : solved_[index].states) {
      for (const auto& [var, tokens] : states.out) {
        for (int t : tokens) {
          if (!IsParamToken(t)) var_tokens_[index][var].insert(t);
        }
      }
    }
    summaries_[index] = std::move(summary);
  }

  void SolveComponent(const std::vector<int>& members,
                      const std::vector<std::vector<int>>& adjacency) {
    bool recursive = members.size() > 1;
    if (!recursive) {
      const int v = members[0];
      const auto& succs = adjacency[static_cast<size_t>(v)];
      recursive = std::find(succs.begin(), succs.end(), v) != succs.end();
    }
    if (!recursive) {
      const size_t index = static_cast<size_t>(members[0]);
      const std::string& name = program_.functions()[index].name;
      uint64_t key = 0;
      if (cache_ != nullptr) {
        key = EntryKey(index, adjacency);
        std::string payload;
        if (cache_->Lookup(config_fp_, name, key, &payload, &cache_stats_)) {
          ADPROM_CHECK_MSG(DecodeEntry(index, payload),
                           "corrupt ifds cache entry for " + name);
          summary_hash_[index] = CalleeVisibleHash(index);
          return;
        }
      }
      SolveFunction(index);
      if (options_.feasibility_filter) CondPass(index);
      demanded_count_[index] = cond_[index].size();
      SealFacts(index);
      FinishObligations(index);
      if (cache_ != nullptr) {
        cache_->Store(config_fp_, name, key, EncodeEntry(index));
        summary_hash_[index] = CalleeVisibleHash(index);
      }
      return;
    }

    // Recursive components cache as a unit under one component key (the
    // mutual fixpoint reads every member body): all-or-nothing, with the
    // group's counters folded in under the store lock.
    std::vector<int> ordered(members);
    std::sort(ordered.begin(), ordered.end(), [&](int a, int b) {
      return program_.functions()[static_cast<size_t>(a)].name <
             program_.functions()[static_cast<size_t>(b)].name;
    });
    std::vector<uint64_t> member_keys(ordered.size(), 0);
    if (cache_ != nullptr) {
      const std::set<int> member_set(members.begin(), members.end());
      const uint64_t comp_key = ComponentKey(ordered, adjacency, member_set);
      PassCacheStats probe;
      std::vector<std::string> payloads(ordered.size());
      bool all_hit = true;
      for (size_t i = 0; i < ordered.size(); ++i) {
        const auto vi = static_cast<size_t>(ordered[i]);
        member_keys[i] =
            Hasher(comp_key).Str(program_.functions()[vi].name).digest();
        if (!cache_->Lookup(config_fp_, program_.functions()[vi].name,
                            member_keys[i], &payloads[i], &probe)) {
          all_hit = false;
        }
      }
      if (all_hit) {
        for (size_t i = 0; i < ordered.size(); ++i) {
          const auto vi = static_cast<size_t>(ordered[i]);
          ADPROM_CHECK_MSG(DecodeEntry(vi, payloads[i]),
                           "corrupt ifds cache entry for " +
                               program_.functions()[vi].name);
          summary_hash_[vi] = CalleeVisibleHash(vi);
        }
        cache_->Count(&cache_stats_, ordered.size(), 0, 0);
        return;
      }
      cache_->Count(&cache_stats_, 0, ordered.size(), probe.invalidated);
    }

    constexpr int kMaxIterations = 1000;
    for (int iter = 0; iter < kMaxIterations; ++iter) {
      bool changed = false;
      for (int v : members) {
        const FnSummary before = summaries_[static_cast<size_t>(v)];
        SolveFunction(static_cast<size_t>(v));
        if (!(summaries_[static_cast<size_t>(v)] == before)) changed = true;
      }
      if (!changed) break;
      ADPROM_CHECK_MSG(iter + 1 < kMaxIterations,
                       "recursive taint summaries failed to converge");
    }
    // Feasibility is not conditioned through a cycle: recursive members
    // keep every plain fact (sound — the filter only ever discards).
    for (int v : members) {
      const size_t index = static_cast<size_t>(v);
      filter_skipped_[index] = 1;
      SealFacts(index);
      FinishObligations(index);
    }
    if (cache_ != nullptr) {
      for (size_t i = 0; i < ordered.size(); ++i) {
        const auto vi = static_cast<size_t>(ordered[i]);
        cache_->Store(config_fp_, program_.functions()[vi].name,
                      member_keys[i], EncodeEntry(vi));
        summary_hash_[vi] = CalleeVisibleHash(vi);
      }
    }
  }

  // -- incremental summary cache ----------------------------------------

  /// Chains one callee's caller-visible surface: name, parameter names
  /// (the caller's diagnostic observations key on them) and the hash of
  /// the state callers actually consume (summary + feasible obligations).
  void ChainCallee(Hasher* h, size_t callee) const {
    const prog::FunctionDef& fn = program_.functions()[callee];
    h->Str(fn.name);
    h->Size(fn.params.size());
    for (const std::string& param : fn.params) h->Str(param);
    h->U64(summary_hash_[callee]);
  }

  uint64_t EntryKey(size_t index,
                    const std::vector<std::vector<int>>& adjacency) const {
    Hasher h;
    h.U64(body_hash_[index]);
    for (int c : adjacency[index]) {
      ChainCallee(&h, static_cast<size_t>(c));
    }
    return h.digest();
  }

  uint64_t ComponentKey(const std::vector<int>& ordered,
                        const std::vector<std::vector<int>>& adjacency,
                        const std::set<int>& member_set) const {
    Hasher h;
    h.U64(kRecursionMarker);
    for (int v : ordered) {
      const auto vi = static_cast<size_t>(v);
      h.Str(program_.functions()[vi].name);
      h.U64(body_hash_[vi]);
    }
    std::set<int> external;
    for (int v : ordered) {
      for (int c : adjacency[static_cast<size_t>(v)]) {
        if (!member_set.contains(c)) external.insert(c);
      }
    }
    for (int c : external) {
      ChainCallee(&h, static_cast<size_t>(c));
    }
    return h.digest();
  }

  void EncodeSummary(size_t index, BinaryWriter* w) const {
    const FnSummary& s = summaries_[index];
    Put(*w, s.ret_tokens);
    w->U64(s.param_sinks.size());
    for (const auto& [k, sites] : s.param_sinks) {
      w->U64(k);
      Put(*w, sites);
    }
  }

  void EncodeObligations(size_t index, BinaryWriter* w) const {
    w->U64(feasible_obligations_[index].size());
    for (const auto& [k, site] : feasible_obligations_[index]) {
      w->U64(k);
      w->I32(site);
    }
  }

  /// Value hash of the state callers read from this function: the
  /// converged summary and the feasibility-filtered obligations. A
  /// callee whose re-solve reproduces both leaves caller keys unchanged
  /// (early cutoff).
  uint64_t CalleeVisibleHash(size_t index) const {
    BinaryWriter w;
    EncodeSummary(index, &w);
    EncodeObligations(index, &w);
    return Hasher().Str(w.buffer()).digest();
  }

  std::string EncodeEntry(size_t index) const {
    BinaryWriter w;
    EncodeSummary(index, &w);
    w.U64(facts_[index].size());
    for (const SinkFact& f : facts_[index]) {
      w.I32(f.site);
      w.I32(f.token);
      w.I32(f.node);
      w.Str(f.via_callee);
      w.U64(f.via_param);
      Put(w, f.vars);
      w.B(f.from_gen);
      w.B(f.locally_feasible);
    }
    w.U64(births_[index].size());
    for (const auto& [token, list] : births_[index]) {
      w.I32(token);
      w.U64(list.size());
      for (const Birth& b : list) {
        w.I32(b.node);
        w.Str(b.call);
      }
    }
    w.U64(def_flows_[index].size());
    for (const auto& [node, flow] : def_flows_[index]) {
      w.I32(node);
      EncodeFlow(flow, &w);
    }
    Put(w, var_tokens_[index]);
    Put(w, param_vars_[index]);
    w.U64(summary_edges_[index]);
    w.U64(demanded_count_[index]);
    w.B(filter_skipped_[index] != 0);
    EncodeObligations(index, &w);
    return w.Take();
  }

  bool DecodeEntry(size_t index, const std::string& payload) {
    BinaryReader r(payload);
    FnSummary summary;
    summary.ret_tokens = Get<std::set<int>>(r);
    const uint64_t num_params = r.U64();
    for (uint64_t i = 0; i < num_params && r.ok(); ++i) {
      const auto k = static_cast<size_t>(r.U64());
      summary.param_sinks[k] = Get<std::set<int>>(r);
    }
    summaries_[index] = std::move(summary);
    const uint64_t num_facts = r.U64();
    for (uint64_t i = 0; i < num_facts && r.ok(); ++i) {
      SinkFact f;
      f.site = r.I32();
      f.token = r.I32();
      f.node = r.I32();
      f.via_callee = r.Str();
      f.via_param = static_cast<size_t>(r.U64());
      f.vars = Get<std::set<std::string>>(r);
      f.from_gen = r.B();
      f.locally_feasible = r.B();
      facts_[index].push_back(std::move(f));
    }
    const uint64_t num_births = r.U64();
    for (uint64_t i = 0; i < num_births && r.ok(); ++i) {
      const int token = r.I32();
      const uint64_t n = r.U64();
      std::vector<Birth>& list = births_[index][token];
      for (uint64_t j = 0; j < n && r.ok(); ++j) {
        Birth b;
        b.node = r.I32();
        b.call = r.Str();
        list.push_back(std::move(b));
      }
    }
    const uint64_t num_flows = r.U64();
    for (uint64_t i = 0; i < num_flows && r.ok(); ++i) {
      const int node = r.I32();
      def_flows_[index][node] = DecodeFlow(&r);
    }
    var_tokens_[index] = Get<std::map<std::string, std::set<int>>>(r);
    param_vars_[index] =
        Get<std::map<std::string, std::map<std::string, std::set<int>>>>(r);
    summary_edges_[index] = static_cast<size_t>(r.U64());
    demanded_count_[index] = static_cast<size_t>(r.U64());
    filter_skipped_[index] = r.B() ? 1 : 0;
    const uint64_t num_obligations = r.U64();
    for (uint64_t i = 0; i < num_obligations && r.ok(); ++i) {
      const auto k = static_cast<size_t>(r.U64());
      const int site = r.I32();
      feasible_obligations_[index].insert({k, site});
    }
    return r.ok() && r.AtEnd();
  }

  /// Bakes each fact's conditioned-replay verdict into the fact itself,
  /// so downstream consumers (and warm runs) never need the digests.
  void SealFacts(size_t index) {
    for (SinkFact& fact : facts_[index]) {
      fact.locally_feasible = LocallyFeasible(index, fact);
    }
  }

  // -- feasibility tier -------------------------------------------------

  /// Runs one conditioned solve per token demanded by this function's
  /// sink facts and digests the per-node verdict inputs.
  void CondPass(size_t index) {
    std::set<int> demanded;
    for (const SinkFact& fact : facts_[index]) demanded.insert(fact.token);
    if (demanded.empty()) return;

    const FlowGraph& graph = graphs_[index];
    const prog::FunctionDef& fn = program_.functions()[index];
    for (int token : demanded) {
      std::set<int> birth_defs;
      std::set<int> carries;
      std::map<int, std::set<std::string>> contributors;
      for (const FlowNode& node : graph.nodes()) {
        if (node.op != FlowOp::kDef) continue;
        const auto& states =
            solved_[index].states[static_cast<size_t>(node.id)];
        if (!HasToken(states.out, node.def, token)) continue;
        carries.insert(node.id);
        auto flow = def_flows_[index].find(node.id);
        if (flow == def_flows_[index].end()) continue;
        for (const std::string& var : flow->second.vars) {
          if (HasToken(states.in, var, token)) {
            contributors[node.id].insert(var);
          }
        }
        if (flow->second.gens.contains(token)) birth_defs.insert(node.id);
      }
      std::optional<size_t> param_index;
      if (IsParamToken(token)) param_index = ParamIndexOf(token);

      CondClient client(graph, fn, param_index, birth_defs, carries,
                        contributors, returns_top_);
      const SolveResult<CondClient> solved =
          Solve(graph, Direction::kForward, &client);

      CondDigest digest;
      digest.in.reserve(solved.states.size());
      for (const auto& states : solved.states) {
        std::set<std::string> keys;
        for (const auto& [var, state] : states.in.carriers) {
          if (state.reachable) keys.insert(var);
        }
        digest.in.emplace_back(states.in.lambda.reachable, std::move(keys));
      }
      cond_[index][token] = std::move(digest);
    }
  }

  /// True when the conditioned solve kept a realizing carrier (or the
  /// birth point itself) alive at the fact's node.
  bool LocallyFeasible(size_t index, const SinkFact& fact) const {
    if (!options_.feasibility_filter || filter_skipped_[index]) return true;
    auto it = cond_[index].find(fact.token);
    if (it == cond_[index].end()) return true;
    const auto& [lambda, carriers] =
        it->second.in[static_cast<size_t>(fact.node)];
    if (fact.from_gen && lambda) return true;
    const auto& in = solved_[index].states[static_cast<size_t>(fact.node)].in;
    for (const std::string& var : fact.vars) {
      if (carriers.contains(var) && HasToken(in, var, fact.token)) {
        return true;
      }
    }
    return false;
  }

  bool FactFeasible(const SinkFact& fact) const {
    if (!fact.locally_feasible) return false;
    if (fact.via_callee.empty()) return true;
    const size_t callee = fn_index_.at(fact.via_callee);
    return feasible_obligations_[callee].contains(
        {fact.via_param, fact.site});
  }

  /// Projects the function's feasible parameter obligations — the
  /// filtered variant of its summary's param_sinks, consumed by callers.
  void FinishObligations(size_t index) {
    if (!options_.feasibility_filter || filter_skipped_[index]) {
      for (const auto& [k, sites] : summaries_[index].param_sinks) {
        for (int site : sites) {
          feasible_obligations_[index].insert({k, site});
        }
      }
      return;
    }
    for (const SinkFact& fact : facts_[index]) {
      if (!IsParamToken(fact.token)) continue;
      if (FactFeasible(fact)) {
        feasible_obligations_[index].insert(
            {ParamIndexOf(fact.token), fact.site});
      }
    }
  }

  // -- witness tier -----------------------------------------------------

  struct ProvKey {
    int node = -1;
    int token = 0;
    std::string var;

    bool operator<(const ProvKey& o) const {
      return std::tie(node, token, var) < std::tie(o.node, o.token, o.var);
    }
  };

  struct ProvEntry {
    int dist = 0;
    bool has_parent = false;
    ProvKey parent;
  };

  struct FnProv {
    bool built = false;
    std::map<ProvKey, ProvEntry> reach;
  };

  /// Breadth-first forward walk of the function's exploded graph — the
  /// states (node, var, token) with the token in the var's out-state —
  /// from the fact roots (entry parameters and token births). Restricted
  /// to the solved fixpoint, so every recorded edge is a CFG edge the
  /// fact really flows along, and BFS order makes reconstructed paths
  /// shortest.
  void EnsureProv(size_t index) {
    FnProv& prov = prov_[index];
    if (prov.built) return;
    prov.built = true;
    EnsureSolved(index);
    const FlowGraph& graph = graphs_[index];
    const prog::FunctionDef& fn = program_.functions()[index];
    const auto& states = solved_[index].states;

    std::deque<ProvKey> queue;
    auto seed = [&](const ProvKey& key) {
      if (prov.reach.emplace(key, ProvEntry{0, false, {}}).second) {
        queue.push_back(key);
      }
    };
    for (size_t k = 0; k < fn.params.size(); ++k) {
      seed({graph.entry_id(), ParamToken(k), fn.params[k]});
    }
    for (const auto& [token, births] : births_[index]) {
      for (const Birth& birth : births) {
        const FlowNode& node = graph.node(birth.node);
        if (node.op != FlowOp::kDef) continue;
        if (!HasToken(states[static_cast<size_t>(birth.node)].out, node.def,
                      token)) {
          continue;
        }
        seed({birth.node, token, node.def});
      }
    }

    auto extend = [&](const ProvKey& from, const ProvKey& to) {
      const int dist = prov.reach.at(from).dist + 1;
      if (prov.reach.emplace(to, ProvEntry{dist, true, from}).second) {
        queue.push_back(to);
      }
    };
    while (!queue.empty()) {
      const ProvKey cur = queue.front();
      queue.pop_front();
      for (int m : graph.node(cur.node).succs) {
        const FlowNode& node = graph.node(m);
        const auto& out = states[static_cast<size_t>(m)].out;
        if (node.op == FlowOp::kDef) {
          auto flow = def_flows_[index].find(m);
          const bool contributes =
              flow != def_flows_[index].end() &&
              flow->second.vars.contains(cur.var) &&
              HasToken(states[static_cast<size_t>(m)].in, cur.var,
                       cur.token);
          if (node.def != cur.var && HasToken(out, cur.var, cur.token)) {
            extend(cur, {m, cur.token, cur.var});
          }
          if (contributes && HasToken(out, node.def, cur.token)) {
            extend(cur, {m, cur.token, node.def});
          }
        } else if (HasToken(out, cur.var, cur.token)) {
          extend(cur, {m, cur.token, cur.var});
        }
      }
    }
  }

  /// Plain shortest CFG path entry -> target (inclusive), for segments
  /// whose fact is born inside the target node itself.
  std::vector<int> CfgPath(size_t index, int target) const {
    const FlowGraph& graph = graphs_[index];
    std::vector<int> parent(graph.size(), -2);
    std::deque<int> queue;
    parent[static_cast<size_t>(graph.entry_id())] = -1;
    queue.push_back(graph.entry_id());
    while (!queue.empty()) {
      const int n = queue.front();
      queue.pop_front();
      if (n == target) break;
      for (int m : graph.node(n).succs) {
        if (parent[static_cast<size_t>(m)] == -2) {
          parent[static_cast<size_t>(m)] = n;
          queue.push_back(m);
        }
      }
    }
    if (parent[static_cast<size_t>(target)] == -2) return {};
    std::vector<int> path;
    for (int n = target; n != -1; n = parent[static_cast<size_t>(n)]) {
      path.push_back(n);
    }
    std::reverse(path.begin(), path.end());
    return path;
  }

  /// The node path (within `index`) from the function entry to — but not
  /// including — the fact's observing node, covering how the token got
  /// there.
  std::vector<int> SegmentNodes(size_t index, const SinkFact& fact) {
    EnsureProv(index);
    const FlowGraph& graph = graphs_[index];
    const auto& in = solved_[index].states[static_cast<size_t>(fact.node)].in;

    const ProvEntry* best = nullptr;
    ProvKey best_key;
    std::vector<int> preds = graph.node(fact.node).preds;
    std::sort(preds.begin(), preds.end());
    for (int p : preds) {
      for (const std::string& var : fact.vars) {
        if (!HasToken(in, var, fact.token)) continue;
        auto it = prov_[index].reach.find({p, fact.token, var});
        if (it == prov_[index].reach.end()) continue;
        if (best == nullptr || it->second.dist < best->dist) {
          best = &it->second;
          best_key = it->first;
        }
      }
    }
    if (best == nullptr) {
      // Born inside the observing node (or no recorded flow): the plain
      // shortest control path reaches it.
      std::vector<int> path = CfgPath(index, fact.node);
      if (!path.empty()) path.pop_back();
      return path;
    }

    std::vector<int> chain;
    ProvKey key = best_key;
    while (true) {
      chain.push_back(key.node);
      const ProvEntry& entry = prov_[index].reach.at(key);
      if (!entry.has_parent) break;
      key = entry.parent;
    }
    std::reverse(chain.begin(), chain.end());
    std::vector<int> path;
    if (chain.front() != graph.entry_id()) {
      path = CfgPath(index, chain.front());
      if (!path.empty()) path.pop_back();  // chain starts at the birth node
    }
    path.insert(path.end(), chain.begin(), chain.end());
    return path;
  }

  void RenderNodePath(size_t index, const std::vector<int>& nodes,
                      std::vector<WitnessStep>* steps) const {
    const FlowGraph& graph = graphs_[index];
    const std::string& name = program_.functions()[index].name;
    for (size_t i = 0; i < nodes.size(); ++i) {
      const FlowNode& node = graph.node(nodes[i]);
      if (node.op == FlowOp::kJoin || node.op == FlowOp::kExit) continue;
      WitnessStep step;
      step.function = name;
      step.node_id = node.id;
      step.line = node.line;
      step.text = NodeText(node);
      if (node.op == FlowOp::kBranch && i + 1 < nodes.size() &&
          node.true_succ != node.false_succ) {
        if (nodes[i + 1] == node.true_succ) {
          step.is_branch = true;
          step.branch_taken = true;
        } else if (nodes[i + 1] == node.false_succ) {
          step.is_branch = true;
          step.branch_taken = false;
        }
      }
      steps->push_back(std::move(step));
    }
  }

  /// Full step list for a fact: the caller-side segment, then (for facts
  /// observed at a call into a summarized callee) the callee's own
  /// segment for the same obligation, spliced recursively down to the
  /// actual sink call.
  std::vector<WitnessStep> BuildSteps(
      size_t index, const SinkFact& fact, int depth,
      std::set<std::tuple<size_t, int, int>>* guard) {
    std::vector<WitnessStep> steps;
    if (depth > 32 || !guard->insert({index, fact.site, fact.token}).second) {
      return steps;
    }
    std::vector<int> nodes = SegmentNodes(index, fact);
    nodes.push_back(fact.node);
    RenderNodePath(index, nodes, &steps);
    if (!fact.via_callee.empty()) {
      auto callee = fn_index_.find(fact.via_callee);
      if (callee != fn_index_.end()) {
        const int needle = ParamToken(fact.via_param);
        for (const SinkFact& cf : facts_[callee->second]) {
          if (cf.site == fact.site && cf.token == needle) {
            std::vector<WitnessStep> inner =
                BuildSteps(callee->second, cf, depth + 1, guard);
            steps.insert(steps.end(), inner.begin(), inner.end());
            break;
          }
        }
      }
    }
    return steps;
  }

  /// Replays the rendered path through the interval engine and records
  /// the first branch whose condition the accumulated path state refutes.
  /// For a pruned fact the joined carrier state is empty at the sink, so
  /// the replay of any realizing path must hit a contradiction.
  void ReplayPrune(LeakWitness* w) const {
    absint::AbsState state;
    state.reachable = true;
    std::string current;
    for (const WitnessStep& step : w->steps) {
      if (step.function != current) {
        current = step.function;
        state = {};
        state.reachable = true;  // fresh frame: parameters unconstrained
      }
      const FlowGraph& graph = graphs_[fn_index_.at(step.function)];
      const FlowNode& node = graph.node(step.node_id);
      if (node.op == FlowOp::kDef) {
        absint::AbsValue value = EvalExpr(*node.expr, state, returns_top_);
        if (value.IsTop()) {
          state.vars.erase(node.def);
        } else {
          state.vars[node.def] = std::move(value);
        }
      } else if (node.op == FlowOp::kBranch && step.is_branch) {
        if (!AssumeCondition(*node.expr, step.branch_taken, &state,
                             returns_top_)) {
          w->pruned_line = node.line;
          w->pruned_condition = ExprToText(*node.expr);
          return;
        }
      }
    }
    if (!w->steps.empty()) w->pruned_line = w->steps.back().line;
    w->pruned_condition = "the joined path constraints are contradictory";
  }

  // -- assembly ---------------------------------------------------------

  IfdsResult Assemble() {
    IfdsResult out;
    const auto& fns = program_.functions();
    out.stats.functions = fns.size();

    for (size_t f = 0; f < fns.size(); ++f) {
      for (const auto& [var, tokens] : var_tokens_[f]) {
        if (tokens.empty()) continue;
        out.taint.tainted_vars[fns[f].name][var].insert(tokens.begin(),
                                                        tokens.end());
      }
      for (const auto& [callee, params] : param_vars_[f]) {
        for (const auto& [var, tokens] : params) {
          if (tokens.empty()) continue;
          out.taint.tainted_vars[callee][var].insert(tokens.begin(),
                                                     tokens.end());
        }
      }
      out.stats.summary_edges += summary_edges_[f];
      out.stats.demanded_solves += demanded_count_[f];
    }
    out.cache_stats = cache_stats_;

    // A concrete (sink, source) fact can manifest in several functions
    // (the token is born wherever its defining call's summary is
    // instantiated); the fact is kept if *any* manifestation is feasible.
    struct Manifest {
      size_t fn = 0;
      size_t fact = 0;
      bool feasible = false;
    };
    std::map<std::pair<int, int>, std::vector<Manifest>> manifests;
    for (size_t f = 0; f < fns.size(); ++f) {
      for (size_t i = 0; i < facts_[f].size(); ++i) {
        const SinkFact& fact = facts_[f][i];
        if (IsParamToken(fact.token)) continue;
        manifests[{fact.site, fact.token}].push_back(
            {f, i, FactFeasible(fact)});
      }
    }
    out.stats.sink_facts = manifests.size();
    for (const auto& [key, ms] : manifests) {
      const bool feasible = std::any_of(
          ms.begin(), ms.end(), [](const Manifest& m) { return m.feasible; });
      if (feasible) {
        out.taint.labeled_sinks[key.first].insert(key.second);
      } else {
        out.pruned_sinks[key.first].insert(key.second);
        ++out.stats.pruned_facts;
      }
    }

    const std::map<int, const prog::Expr*> sites = IndexCallSites(program_);
    if (options_.column_taint) {
      std::set<int> tokens;
      for (const auto& [key, ms] : manifests) tokens.insert(key.second);
      for (int t : tokens) {
        auto it = sites.find(t);
        if (it == sites.end()) continue;
        std::vector<std::string> columns =
            SourceColumnsForCall(*it->second, options_.schemas);
        if (!columns.empty()) out.source_columns[t] = std::move(columns);
      }
      for (const auto& [site, srcs] : out.taint.labeled_sinks) {
        std::set<std::string> merged;
        for (int t : srcs) {
          auto it = out.source_columns.find(t);
          if (it != out.source_columns.end()) {
            merged.insert(it->second.begin(), it->second.end());
          }
        }
        if (!merged.empty()) {
          out.sink_columns[site].assign(merged.begin(), merged.end());
        }
      }
    }

    if (options_.witnesses) {
      for (const auto& [key, ms] : manifests) {
        const Manifest* pick = &ms.front();
        for (const Manifest& m : ms) {
          if (m.feasible) {
            pick = &m;
            break;
          }
        }
        LeakWitness w;
        w.sink_site = key.first;
        w.source_site = key.second;
        auto sink_it = sites.find(w.sink_site);
        if (sink_it != sites.end()) w.sink_call = sink_it->second->name;
        auto src_it = sites.find(w.source_site);
        if (src_it != sites.end()) w.source_call = src_it->second->name;
        auto col_it = out.source_columns.find(w.source_site);
        if (col_it != out.source_columns.end()) w.columns = col_it->second;
        std::set<std::tuple<size_t, int, int>> guard;
        w.steps = BuildSteps(pick->fn, facts_[pick->fn][pick->fact], 0,
                             &guard);
        w.feasible = pick->feasible;
        if (!w.feasible) ReplayPrune(&w);
        out.witnesses.push_back(std::move(w));
      }
      for (const FnProv& prov : prov_) {
        out.stats.exploded_nodes += prov.reach.size();
      }
    }
    return out;
  }

  const prog::Program& program_;
  const IfdsOptions& options_;
  std::map<std::string, size_t> fn_index_;
  std::map<std::string, absint::AbsValue> returns_top_;
  TokenEval eval_;
  std::vector<FlowGraph> graphs_;
  std::vector<FnSummary> summaries_;
  std::vector<SolveResult<IfdsClient>> solved_;
  std::vector<std::vector<SinkFact>> facts_;
  std::vector<std::map<int, std::vector<Birth>>> births_;
  std::vector<std::map<int, Flow>> def_flows_;
  std::vector<std::map<std::string, std::set<int>>> var_tokens_;
  std::vector<std::map<std::string, std::map<std::string, std::set<int>>>>
      param_vars_;
  std::vector<size_t> summary_edges_;
  std::vector<std::map<int, CondDigest>> cond_;
  /// Conditioned solves run (or, warm, recorded) per function — kept
  /// apart from `cond_` so cache hits reproduce the cold stats.
  std::vector<size_t> demanded_count_;
  std::vector<std::set<std::pair<size_t, int>>> feasible_obligations_;
  /// vector<char>, not vector<bool>: slots are written concurrently for
  /// different functions under ParallelFor, and vector<bool> packs bits.
  std::vector<char> filter_skipped_;
  std::vector<char> solved_valid_;
  std::vector<FnProv> prov_;

  SummaryStore* cache_ = nullptr;
  uint64_t config_fp_ = 0;
  std::vector<uint64_t> body_hash_;
  /// Callee-visible value hashes (summary + obligations), written by the
  /// worker that owns the function and read by callers in later levels
  /// after the ParallelFor barrier.
  std::vector<uint64_t> summary_hash_;
  PassCacheStats cache_stats_;
};

}  // namespace

util::Result<IfdsResult> RunIfdsTaint(const prog::Program& program,
                                      const IfdsOptions& options) {
  if (!program.finalized()) {
    return util::Status::FailedPrecondition(
        "program must be finalized before IFDS taint analysis");
  }
  IfdsEngine engine(program, options);
  return engine.Run();
}

std::string FormatWitness(const LeakWitness& w) {
  std::string out = "witness " + w.source_call + "#" +
                    std::to_string(w.source_site) + " -> " + w.sink_call +
                    "#" + std::to_string(w.sink_site) +
                    (w.feasible ? " [feasible]" : " [infeasible]") + "\n";
  if (!w.columns.empty()) {
    out += "  columns:";
    for (const std::string& c : w.columns) out += " " + c;
    out += "\n";
  }
  for (const WitnessStep& s : w.steps) {
    out += "  " + s.function + ":" + std::to_string(s.line) + ": " + s.text;
    if (s.is_branch) {
      out += s.branch_taken ? "  [takes true]" : "  [takes false]";
    }
    out += "\n";
  }
  if (!w.feasible) {
    out += "  pruned: line " + std::to_string(w.pruned_line) + " refutes " +
           w.pruned_condition + "\n";
  }
  return out;
}

std::string WitnessToDot(const LeakWitness& w) {
  std::string out =
      "digraph witness {\n  rankdir=TB;\n"
      "  node [shape=box, fontname=\"monospace\"];\n"
      "  label=\"" +
      DotEscape(w.source_call) + " -> " + DotEscape(w.sink_call) +
      (w.feasible ? " (feasible)" : " (infeasible)") + "\";\n";
  bool pruned_marked = false;
  for (size_t i = 0; i < w.steps.size(); ++i) {
    const WitnessStep& s = w.steps[i];
    std::string label = s.function + ":" + std::to_string(s.line) + "\\n" +
                        DotEscape(s.text);
    std::string attrs;
    if (!w.feasible && !pruned_marked && s.is_branch &&
        s.line == w.pruned_line) {
      label += "\\nREFUTED: " + DotEscape(w.pruned_condition);
      attrs = ", color=red, penwidth=2";
      pruned_marked = true;
    } else if (i + 1 == w.steps.size()) {
      attrs = ", style=filled, fillcolor=lightgrey";
    }
    out += "  n" + std::to_string(i) + " [label=\"" + label + "\"" + attrs +
           "];\n";
  }
  for (size_t i = 0; i + 1 < w.steps.size(); ++i) {
    out += "  n" + std::to_string(i) + " -> n" + std::to_string(i + 1);
    if (w.steps[i].is_branch) {
      out += std::string(" [label=\"") +
             (w.steps[i].branch_taken ? "true" : "false") + "\"]";
    }
    out += ";\n";
  }
  return out + "}\n";
}

std::vector<std::string> SourceColumnsForCall(
    const prog::Expr& call, const db::SchemaCatalog& schemas) {
  if (call.kind != prog::ExprKind::kCall || call.name != "db_query") {
    return {};
  }
  std::string text;
  CollectLiteralText(call, &text);
  const std::string lower = ToLower(text);
  const size_t sel = lower.find("select");
  if (sel == std::string::npos) return {};
  const size_t from = lower.find("from", sel + 6);
  if (from == std::string::npos) return {};

  std::string table;
  size_t pos = from + 4;
  while (pos < lower.size() &&
         std::isspace(static_cast<unsigned char>(lower[pos]))) {
    ++pos;
  }
  while (pos < lower.size() &&
         (std::isalnum(static_cast<unsigned char>(lower[pos])) ||
          lower[pos] == '_')) {
    table += lower[pos++];
  }
  if (table.empty()) return {};

  std::set<std::string> columns;
  bool star = false;
  const std::string list = text.substr(sel + 6, from - (sel + 6));
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const std::string item =
        Trim(comma == std::string::npos ? list.substr(start)
                                        : list.substr(start, comma - start));
    if (item == "*") {
      star = true;
    } else if (!item.empty()) {
      columns.insert(table + "." + ToLower(item));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (star) {
    auto schema = schemas.find(table);
    if (schema == schemas.end()) {
      columns.insert(table + ".*");
    } else {
      for (const db::Column& c : schema->second.columns()) {
        columns.insert(table + "." + ToLower(c.name));
      }
    }
  }
  return {columns.begin(), columns.end()};
}

}  // namespace adprom::analysis::dataflow
