#include "analysis/dataflow/flow_graph.h"

#include <utility>

namespace adprom::analysis::dataflow {

/// Lowers a function body into a FlowGraph. Mirrors prog::CfgBuilder's
/// handling of structured control flow, but at statement granularity.
class FlowGraphBuilder {
 public:
  explicit FlowGraphBuilder(const prog::FunctionDef& fn) : fn_(fn) {}

  FlowGraph Build() {
    graph_.function_name_ = fn_.name;
    graph_.entry_id_ = NewNode(FlowOp::kEntry, nullptr);
    graph_.exit_id_ = NewNode(FlowOp::kExit, nullptr);
    const BodyEnd end = VisitBody(fn_.body, graph_.entry_id_);
    if (!end.terminated) AddEdge(end.node, graph_.exit_id_);
    return std::move(graph_);
  }

 private:
  /// Node control ends in after lowering a statement list, and whether
  /// control already left via `return`.
  struct BodyEnd {
    int node;
    bool terminated;
  };

  int NewNode(FlowOp op, const prog::Stmt* stmt) {
    const int id = static_cast<int>(graph_.nodes_.size());
    FlowNode node;
    node.id = id;
    node.op = op;
    node.stmt = stmt;
    if (stmt != nullptr) {
      node.expr = stmt->expr.get();
      node.line = stmt->line;
    }
    graph_.nodes_.push_back(std::move(node));
    return id;
  }

  void AddEdge(int from, int to) {
    graph_.nodes_[static_cast<size_t>(from)].succs.push_back(to);
    graph_.nodes_[static_cast<size_t>(to)].preds.push_back(from);
  }

  FlowNode& Node(int id) { return graph_.nodes_[static_cast<size_t>(id)]; }

  BodyEnd VisitBody(const prog::StmtList& body, int cur) {
    for (size_t i = 0; i < body.size(); ++i) {
      const BodyEnd end = VisitStmt(*body[i], cur);
      if (end.terminated) {
        if (i + 1 < body.size()) {
          graph_.unreachable_lines_.push_back(body[i + 1]->line);
        }
        return end;
      }
      cur = end.node;
    }
    return {cur, false};
  }

  BodyEnd VisitStmt(const prog::Stmt& s, int cur) {
    switch (s.kind) {
      case prog::StmtKind::kVarDecl:
      case prog::StmtKind::kAssign: {
        const int node = NewNode(FlowOp::kDef, &s);
        graph_.nodes_[static_cast<size_t>(node)].def = s.target;
        graph_.nodes_[static_cast<size_t>(node)].is_decl =
            s.kind == prog::StmtKind::kVarDecl;
        AddEdge(cur, node);
        return {node, false};
      }
      case prog::StmtKind::kExpr: {
        const int node = NewNode(FlowOp::kEval, &s);
        AddEdge(cur, node);
        return {node, false};
      }
      case prog::StmtKind::kReturn: {
        const int node = NewNode(FlowOp::kReturn, &s);
        AddEdge(cur, node);
        AddEdge(node, graph_.exit_id_);
        return {node, true};
      }
      case prog::StmtKind::kIf: {
        const int cond = NewNode(FlowOp::kBranch, &s);
        AddEdge(cur, cond);
        const BodyEnd then_end = VisitBody(s.then_body, cond);
        // The then-entry edge is the first successor the body visit added
        // (none when the then branch is empty: control falls through).
        const int then_entry =
            Node(cond).succs.empty() ? -1 : Node(cond).succs.front();
        if (s.else_body.empty()) {
          const int merge = NewNode(FlowOp::kJoin, nullptr);
          AddEdge(cond, merge);  // The fall-through (condition false) edge.
          if (!then_end.terminated) AddEdge(then_end.node, merge);
          Node(cond).true_succ = then_entry >= 0 ? then_entry : merge;
          Node(cond).false_succ = merge;
          return {merge, false};
        }
        const size_t then_edges = Node(cond).succs.size();
        const BodyEnd else_end = VisitBody(s.else_body, cond);
        const int else_entry = Node(cond).succs.size() > then_edges
                                   ? Node(cond).succs[then_edges]
                                   : -1;
        if (then_end.terminated && else_end.terminated) {
          Node(cond).true_succ = then_entry;
          Node(cond).false_succ = else_entry;
          return {cond, true};
        }
        const int merge = NewNode(FlowOp::kJoin, nullptr);
        if (!then_end.terminated) AddEdge(then_end.node, merge);
        if (!else_end.terminated) AddEdge(else_end.node, merge);
        Node(cond).true_succ = then_entry >= 0 ? then_entry : merge;
        Node(cond).false_succ = else_entry >= 0 ? else_entry : merge;
        return {merge, false};
      }
      case prog::StmtKind::kWhile: {
        const int header = NewNode(FlowOp::kJoin, nullptr);
        AddEdge(cur, header);
        const int cond = NewNode(FlowOp::kBranch, &s);
        AddEdge(header, cond);
        const int after = NewNode(FlowOp::kJoin, nullptr);
        const BodyEnd body_end = VisitBody(s.then_body, cond);
        const int body_entry =
            Node(cond).succs.empty() ? -1 : Node(cond).succs.front();
        AddEdge(cond, after);
        Node(header).is_loop_head = true;
        if (!body_end.terminated) {
          AddEdge(body_end.node, header);
          Node(header).loop_back_pred = body_end.node;
        }
        // An empty body loops straight back to the header.
        Node(cond).true_succ = body_entry >= 0 ? body_entry : header;
        Node(cond).false_succ = after;
        return {after, false};
      }
    }
    return {cur, false};
  }

  const prog::FunctionDef& fn_;
  FlowGraph graph_;
};

FlowGraph FlowGraph::Build(const prog::FunctionDef& fn) {
  FlowGraphBuilder builder(fn);
  return builder.Build();
}

std::vector<int> FlowGraph::DepthFirstOrder(int start, bool backward) const {
  const size_t n = nodes_.size();
  std::vector<char> visited(n, 0);
  std::vector<int> post;
  post.reserve(n);
  std::vector<std::pair<int, size_t>> stack;
  stack.push_back({start, 0});
  visited[static_cast<size_t>(start)] = 1;
  while (!stack.empty()) {
    auto& [id, next] = stack.back();
    const std::vector<int>& edges =
        backward ? nodes_[static_cast<size_t>(id)].preds
                 : nodes_[static_cast<size_t>(id)].succs;
    if (next < edges.size()) {
      const int to = edges[next++];
      if (!visited[static_cast<size_t>(to)]) {
        visited[static_cast<size_t>(to)] = 1;
        stack.push_back({to, 0});
      }
      continue;
    }
    post.push_back(id);
    stack.pop_back();
  }
  std::vector<int> order(post.rbegin(), post.rend());
  for (size_t i = 0; i < n; ++i) {
    if (!visited[i]) order.push_back(static_cast<int>(i));
  }
  return order;
}

std::vector<int> FlowGraph::ReversePostOrder() const {
  return DepthFirstOrder(entry_id_, /*backward=*/false);
}

std::vector<int> FlowGraph::BackwardReversePostOrder() const {
  return DepthFirstOrder(exit_id_, /*backward=*/true);
}

void CollectVarReads(const prog::Expr& e, std::vector<std::string>* out) {
  switch (e.kind) {
    case prog::ExprKind::kIntLit:
    case prog::ExprKind::kRealLit:
    case prog::ExprKind::kStrLit:
      return;
    case prog::ExprKind::kVar:
      out->push_back(e.name);
      return;
    case prog::ExprKind::kBinary:
      CollectVarReads(*e.lhs, out);
      CollectVarReads(*e.rhs, out);
      return;
    case prog::ExprKind::kUnary:
      CollectVarReads(*e.lhs, out);
      return;
    case prog::ExprKind::kCall:
      for (const auto& arg : e.args) CollectVarReads(*arg, out);
      return;
  }
}

}  // namespace adprom::analysis::dataflow
