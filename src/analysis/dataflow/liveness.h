#ifndef ADPROM_ANALYSIS_DATAFLOW_LIVENESS_H_
#define ADPROM_ANALYSIS_DATAFLOW_LIVENESS_H_

#include <set>
#include <string>
#include <vector>

#include "analysis/dataflow/flow_graph.h"

namespace adprom::analysis::dataflow {

/// Backward live-variable analysis over one function.
struct LivenessResult {
  /// Per FlowNode id: variables whose value may still be read after the
  /// node executes.
  std::vector<std::set<std::string>> live_out;

  /// A kDef node whose target is not live-out: the stored value is never
  /// read. `rhs_has_call` marks stores whose right-hand side performs
  /// calls — the store is still dead, but the statement has effects, so
  /// the vetter does not report it.
  struct DeadStore {
    std::string variable;
    int line = 0;
    bool rhs_has_call = false;
  };
  std::vector<DeadStore> dead_stores;
};

LivenessResult ComputeLiveness(const FlowGraph& graph);

}  // namespace adprom::analysis::dataflow

#endif  // ADPROM_ANALYSIS_DATAFLOW_LIVENESS_H_
