#ifndef ADPROM_ANALYSIS_DATAFLOW_FLOW_GRAPH_H_
#define ADPROM_ANALYSIS_DATAFLOW_FLOW_GRAPH_H_

#include <string>
#include <vector>

#include "prog/ast.h"

namespace adprom::analysis::dataflow {

/// The operation a flow node performs. Structural nodes (entry/exit/join)
/// have no effect; the rest evaluate `expr` and, for kDef, write `def`.
enum class FlowOp {
  kEntry,   // function entry; binds the parameters
  kExit,    // function exit
  kJoin,    // control-flow merge point, no effect
  kDef,     // `var x = e;` or `x = e;` — evaluates expr, writes def
  kBranch,  // `if`/`while` condition evaluation
  kReturn,  // `return [e];`
  kEval,    // expression statement
};

/// One node of the statement-level control-flow graph the dataflow solver
/// iterates over. Unlike `prog::Cfg` (whose node ids are the paper's
/// `[bid]` block labels and therefore frozen), this graph gives every
/// statement its own node so transfer functions can model strong updates.
struct FlowNode {
  int id = -1;
  FlowOp op = FlowOp::kJoin;
  const prog::Stmt* stmt = nullptr;  // source statement (null = structural)
  const prog::Expr* expr = nullptr;  // evaluated expression (nullable)
  std::string def;                   // kDef: the variable written
  bool is_decl = false;              // kDef: `var x = e` vs `x = e`
  int line = 0;
  std::vector<int> succs;
  std::vector<int> preds;
  /// kBranch only: the successor taken when the condition is true /
  /// false. When both branches merge immediately (an empty `then`), the
  /// two coincide and edge-sensitive analyses must not refine on them.
  int true_succ = -1;
  int false_succ = -1;
  /// kJoin headers of `while` loops. `loop_back_pred` is the predecessor
  /// that closes the loop; every other predecessor enters it. -1 when the
  /// body always returns (no back edge).
  bool is_loop_head = false;
  int loop_back_pred = -1;
};

/// Statement-level CFG of one function. Construction cannot fail (the AST
/// is structured by construction) and does not require a finalized
/// program, so analyses can run on hand-built ASTs in tests.
class FlowGraph {
 public:
  /// Builds the graph of `fn`. Statements that can never execute (code
  /// after a `return`, or after an `if` whose branches both return) are
  /// not lowered; their lines are reported via `unreachable_lines()`.
  static FlowGraph Build(const prog::FunctionDef& fn);

  const std::string& function_name() const { return function_name_; }
  int entry_id() const { return entry_id_; }
  int exit_id() const { return exit_id_; }
  const std::vector<FlowNode>& nodes() const { return nodes_; }
  const FlowNode& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  size_t size() const { return nodes_.size(); }

  /// First line of each statically unreachable statement region.
  const std::vector<int>& unreachable_lines() const {
    return unreachable_lines_;
  }

  /// Reverse post-order over successor edges from the entry — the forward
  /// solver's iteration order. Deterministic; nodes unreachable from the
  /// entry (none for graphs this builder produces) append in id order.
  std::vector<int> ReversePostOrder() const;

  /// Reverse post-order over predecessor edges from the exit — the
  /// backward solver's iteration order.
  std::vector<int> BackwardReversePostOrder() const;

 private:
  friend class FlowGraphBuilder;

  std::vector<int> DepthFirstOrder(int start, bool backward) const;

  std::string function_name_;
  int entry_id_ = -1;
  int exit_id_ = -1;
  std::vector<FlowNode> nodes_;
  std::vector<int> unreachable_lines_;
};

/// Collects the names of every variable read by `e`, in evaluation order
/// (duplicates preserved; callers dedup as needed).
void CollectVarReads(const prog::Expr& e, std::vector<std::string>* out);

}  // namespace adprom::analysis::dataflow

#endif  // ADPROM_ANALYSIS_DATAFLOW_FLOW_GRAPH_H_
