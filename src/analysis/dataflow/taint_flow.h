#ifndef ADPROM_ANALYSIS_DATAFLOW_TAINT_FLOW_H_
#define ADPROM_ANALYSIS_DATAFLOW_TAINT_FLOW_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/summary_cache.h"
#include "analysis/taint.h"
#include "prog/program.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace adprom::analysis::dataflow {

/// Configuration of the flow-sensitive taint engine. The plain
/// `TaintConfig` names the source/sink library calls; the extras below are
/// what the `adprom lint` vetter layers on top.
struct TaintFlowOptions {
  TaintConfig config = TaintConfig::Default();
  /// Library calls whose result is considered clean regardless of
  /// argument taint (e.g. `to_int` neutralizes a tautology-injection
  /// payload). Empty for DDG labeling — the paper's analysis has no
  /// sanitizers.
  std::set<std::string> sanitizer_calls;
  /// Register every `v = v + <tainted>` reassignment (the paper's Fig. 2
  /// strcat-style incremental query construction) and report which sink
  /// sites receive values built through such appends.
  bool track_concat_builds = false;
  /// Optional pool: independent call-graph SCCs of one condensation level
  /// are solved concurrently. Results are bit-identical for any pool.
  util::ThreadPool* pool = nullptr;
  /// Optional incremental store: per-function {summary, observations}
  /// entries keyed by the function's body hash chained with its callees'
  /// summary value hashes and an options fingerprint. A hit skips the
  /// fixpoint solve; results are bit-identical with or without the cache
  /// (property-tested). nullptr disables caching.
  SummaryStore* summary_cache = nullptr;
};

/// A registered incremental string-append site (`v = v + ...` carrying
/// taint), when `track_concat_builds` is on.
struct ConcatBuildSite {
  std::string function;
  std::string variable;
  int line = 0;
};

struct TaintFlowResult {
  /// Same shape as the flow-insensitive `RunTaintAnalysis` result; for
  /// identical configs it is a subset of it (strong updates kill taint on
  /// reassignment, and per-call-site summary instantiation never invents
  /// flows the global union lacks). `tainted_vars` is diagnostic and
  /// reports direct flows only.
  TaintResult taint;
  /// All registered append sites, in deterministic program order.
  std::vector<ConcatBuildSite> concat_sites;
  /// Sink call_site_id -> indices into `concat_sites` whose appended
  /// value may reach it. A sink present both here and (with a non-empty
  /// source set) in `taint.labeled_sinks` receives user-controlled data
  /// built by incremental concatenation — the App_b injection pattern.
  std::map<int, std::set<int>> sink_concat_builds;
  /// Summary-cache counters for this run (all zero when no cache is set).
  PassCacheStats cache_stats;
};

/// Runs the interprocedural flow-sensitive may-taint analysis: one
/// forward worklist fixpoint per function (strong updates on assignment),
/// composed bottom-up over call-graph SCCs with per-function summaries
/// (return-value tokens and parameter-to-sink obligations, instantiated
/// at each call site). Requires a finalized program.
util::Result<TaintFlowResult> RunTaintFlowAnalysis(
    const prog::Program& program, const TaintFlowOptions& options = {});

/// Drop-in flow-sensitive replacement for `RunTaintAnalysis` (no
/// sanitizers, no concat tracking): labels a subset of the sinks the
/// flow-insensitive pass labels while still over-approximating the
/// interpreter's dynamic taint. `cache`/`stats`, when set, enable the
/// incremental summary store exactly as in `TaintFlowOptions`.
util::Result<TaintResult> RunFlowSensitiveTaint(
    const prog::Program& program, const TaintConfig& config,
    util::ThreadPool* pool = nullptr, SummaryStore* cache = nullptr,
    PassCacheStats* stats = nullptr);

}  // namespace adprom::analysis::dataflow

#endif  // ADPROM_ANALYSIS_DATAFLOW_TAINT_FLOW_H_
