#ifndef ADPROM_ANALYSIS_DATAFLOW_REACHING_DEFS_H_
#define ADPROM_ANALYSIS_DATAFLOW_REACHING_DEFS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/dataflow/flow_graph.h"

namespace adprom::analysis::dataflow {

/// Pseudo-definition ids used alongside real FlowNode ids.
inline constexpr int kParamDef = -1;  // bound at function entry
inline constexpr int kUninitDef = -2; // no definition on some path

/// Forward reaching-definitions over one function: which definitions
/// (FlowNode ids of kDef nodes, or the pseudo-defs above) may produce the
/// value of each variable at each program point.
struct ReachingDefsResult {
  /// Per FlowNode id: variable -> reaching definition ids at node entry.
  std::vector<std::map<std::string, std::set<int>>> in_states;

  /// A variable read whose reaching definitions include kUninitDef —
  /// i.e. some path reaches the read without ever assigning the variable.
  /// MiniApp's scope checker rejects such programs, so on checked
  /// programs this is empty; it exists as defense in depth for ASTs
  /// built programmatically (mutators, generators).
  struct MaybeUninitUse {
    std::string variable;
    int line = 0;
  };
  std::vector<MaybeUninitUse> maybe_uninit;
};

/// Runs the analysis on `graph` for a function with `params`.
ReachingDefsResult ComputeReachingDefs(const FlowGraph& graph,
                                       const std::vector<std::string>& params);

}  // namespace adprom::analysis::dataflow

#endif  // ADPROM_ANALYSIS_DATAFLOW_REACHING_DEFS_H_
