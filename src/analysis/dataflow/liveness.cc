#include "analysis/dataflow/liveness.h"

#include <algorithm>
#include <utility>

#include "analysis/dataflow/solver.h"

namespace adprom::analysis::dataflow {

namespace {

class LivenessClient {
 public:
  using Domain = std::set<std::string>;

  Domain Boundary() const { return {}; }

  void Join(Domain* into, const Domain& from) const {
    into->insert(from.begin(), from.end());
  }

  /// Backward transfer: live-before = (live-after \ def) ∪ uses.
  Domain Transfer(const FlowNode& node, const Domain& after) const {
    Domain before = after;
    if (node.op == FlowOp::kDef) before.erase(node.def);
    if (node.expr != nullptr) {
      std::vector<std::string> reads;
      CollectVarReads(*node.expr, &reads);
      before.insert(reads.begin(), reads.end());
    }
    return before;
  }
};

bool HasCall(const prog::Expr& e) {
  std::vector<const prog::Expr*> calls;
  prog::CollectCalls(e, &calls);
  return !calls.empty();
}

}  // namespace

LivenessResult ComputeLiveness(const FlowGraph& graph) {
  LivenessClient client;
  const SolveResult<LivenessClient> solved =
      Solve(graph, Direction::kBackward, &client);

  LivenessResult result;
  result.live_out.reserve(solved.states.size());
  for (const auto& states : solved.states) {
    // In the backward solve the iteration "in" is the state at the
    // node's exit — exactly live-out.
    result.live_out.push_back(states.in);
  }

  for (const FlowNode& node : graph.nodes()) {
    if (node.op != FlowOp::kDef) continue;
    if (result.live_out[static_cast<size_t>(node.id)].contains(node.def)) {
      continue;
    }
    result.dead_stores.push_back(
        {node.def, node.line, node.expr != nullptr && HasCall(*node.expr)});
  }
  std::sort(result.dead_stores.begin(), result.dead_stores.end(),
            [](const auto& a, const auto& b) {
              return std::tie(a.line, a.variable) < std::tie(b.line, b.variable);
            });
  return result;
}

}  // namespace adprom::analysis::dataflow
