#include "analysis/dataflow/taint_flow.h"

#include <algorithm>
#include <utility>

#include "analysis/dataflow/flow_graph.h"
#include "analysis/dataflow/solver.h"
#include "analysis/hashing.h"
#include "analysis/incremental.h"
#include "prog/scc.h"
#include "util/logging.h"

namespace adprom::analysis::dataflow {

namespace {

/// Taint tokens are ints sharing one space with three ranges:
///   t < 0            — symbolic parameter k of the function under
///                      analysis (t == -1 - k); instantiated by callers.
///   0 <= t < base    — a concrete source call site (the DDG edge target).
///   t >= base        — a concat-build site (index t - base into the
///                      registry); concrete, flows like a source token.
constexpr int kConcatBase = 1 << 30;

bool IsParamToken(int t) { return t < 0; }
bool IsConcatToken(int t) { return t >= kConcatBase; }
int ParamToken(size_t k) { return -1 - static_cast<int>(k); }
size_t ParamIndexOf(int t) { return static_cast<size_t>(-1 - t); }

/// What one function exposes to its callers, computed at its fixpoint.
struct FnSummary {
  /// Tokens the return value may carry: concrete tokens plus param
  /// tokens (the caller substitutes the argument's tokens for those).
  std::set<int> ret_tokens;
  /// Param index -> sink call sites (here or transitively in callees)
  /// that data passed through that parameter may reach.
  std::map<size_t, std::set<int>> param_sinks;

  bool operator==(const FnSummary&) const = default;
};

/// Concrete (caller-independent) observations of one function's solve.
struct FnObservations {
  std::map<int, std::set<int>> sinks;         // sink site -> concrete tokens
  std::map<std::string, std::set<int>> vars;  // local var -> source tokens
  /// callee -> param variable -> source tokens passed at call sites here
  /// (direct flows only; mirrors the flow-insensitive diagnostic map).
  std::map<std::string, std::map<std::string, std::set<int>>> param_vars;
};

/// The per-function dataflow client: domain maps each variable to its
/// token set; assignment is a strong update (the killed taint is what
/// makes this pass strictly tighter than the flow-insensitive one).
class TaintClient {
 public:
  using Domain = std::map<std::string, std::set<int>>;

  TaintClient(const prog::Program& program, const TaintFlowOptions& options,
              const prog::FunctionDef& fn,
              const std::vector<FnSummary>& summaries,
              const std::map<std::string, size_t>& fn_index,
              const std::map<const prog::Stmt*, int>& concat_tokens)
      : program_(program),
        options_(options),
        fn_(fn),
        summaries_(summaries),
        fn_index_(fn_index),
        concat_tokens_(concat_tokens) {}

  Domain Boundary() const {
    Domain out;
    for (size_t k = 0; k < fn_.params.size(); ++k) {
      out[fn_.params[k]] = {ParamToken(k)};
    }
    return out;
  }

  void Join(Domain* into, const Domain& from) const {
    for (const auto& [var, tokens] : from) {
      if (tokens.empty()) continue;
      (*into)[var].insert(tokens.begin(), tokens.end());
    }
  }

  Domain Transfer(const FlowNode& node, const Domain& in) {
    switch (node.op) {
      case FlowOp::kDef: {
        Domain out = in;
        std::set<int> value = Eval(*node.expr, in);
        auto it = concat_tokens_.find(node.stmt);
        if (it != concat_tokens_.end() && !value.empty()) {
          value.insert(it->second);
        }
        if (value.empty()) {
          out.erase(node.def);  // Strong update: the old taint is dead.
        } else {
          out[node.def] = std::move(value);
        }
        return out;
      }
      case FlowOp::kBranch:
      case FlowOp::kEval:
        Eval(*node.expr, in);  // Observe sink/source effects only.
        return in;
      case FlowOp::kReturn:
        if (node.expr != nullptr) {
          const std::set<int> value = Eval(*node.expr, in);
          ret_tokens_.insert(value.begin(), value.end());
        }
        return in;
      case FlowOp::kEntry:
      case FlowOp::kExit:
      case FlowOp::kJoin:
        return in;
    }
    return in;
  }

  FnSummary TakeSummary() {
    FnSummary summary;
    summary.ret_tokens = std::move(ret_tokens_);
    summary.param_sinks = std::move(param_sinks_);
    return summary;
  }

  FnObservations TakeObservations() { return std::move(obs_); }

  /// Folds the concrete source tokens of every variable state into the
  /// diagnostic var map (param/concat tokens are internal and stripped).
  void RecordVarStates(const SolveResult<TaintClient>& solved) {
    for (const auto& states : solved.states) {
      for (const auto& [var, tokens] : states.out) {
        for (int t : tokens) {
          if (!IsParamToken(t) && !IsConcatToken(t)) obs_.vars[var].insert(t);
        }
      }
    }
  }

 private:
  std::set<int> Eval(const prog::Expr& e, const Domain& state) {
    switch (e.kind) {
      case prog::ExprKind::kIntLit:
      case prog::ExprKind::kRealLit:
      case prog::ExprKind::kStrLit:
        return {};
      case prog::ExprKind::kVar: {
        auto it = state.find(e.name);
        return it == state.end() ? std::set<int>{} : it->second;
      }
      case prog::ExprKind::kBinary: {
        std::set<int> out = Eval(*e.lhs, state);
        const std::set<int> rhs = Eval(*e.rhs, state);
        out.insert(rhs.begin(), rhs.end());
        return out;
      }
      case prog::ExprKind::kUnary:
        return Eval(*e.lhs, state);
      case prog::ExprKind::kCall:
        return EvalCall(e, state);
    }
    return {};
  }

  std::set<int> EvalCall(const prog::Expr& call, const Domain& state) {
    std::vector<std::set<int>> args;
    args.reserve(call.args.size());
    std::set<int> merged;
    for (const auto& arg : call.args) {
      args.push_back(Eval(*arg, state));
      merged.insert(args.back().begin(), args.back().end());
    }

    if (program_.IsUserFunction(call.name)) {
      const FnSummary& summary = summaries_[fn_index_.at(call.name)];
      const prog::FunctionDef* callee = program_.FindFunction(call.name);
      // Instantiate the callee's sink obligations with this call's
      // arguments: concrete tokens land in the sink map directly; our own
      // param tokens become obligations for *our* callers.
      for (const auto& [k, sites] : summary.param_sinks) {
        if (k >= args.size()) continue;
        for (int t : args[k]) {
          if (IsParamToken(t)) {
            param_sinks_[ParamIndexOf(t)].insert(sites.begin(), sites.end());
          } else {
            for (int site : sites) obs_.sinks[site].insert(t);
          }
        }
      }
      for (size_t k = 0; k < args.size() && k < callee->params.size(); ++k) {
        for (int t : args[k]) {
          if (!IsParamToken(t) && !IsConcatToken(t)) {
            obs_.param_vars[call.name][callee->params[k]].insert(t);
          }
        }
      }
      // Instantiate the return value.
      std::set<int> ret;
      for (int t : summary.ret_tokens) {
        if (IsParamToken(t)) {
          const size_t k = ParamIndexOf(t);
          if (k < args.size()) ret.insert(args[k].begin(), args[k].end());
        } else {
          ret.insert(t);
        }
      }
      return ret;
    }

    // Library call.
    if (options_.sanitizer_calls.contains(call.name)) return {};
    if (options_.config.sink_calls.contains(call.name)) {
      for (int t : merged) {
        if (IsParamToken(t)) {
          param_sinks_[ParamIndexOf(t)].insert(call.call_site_id);
        } else {
          obs_.sinks[call.call_site_id].insert(t);
        }
      }
    }
    if (options_.config.source_calls.contains(call.name)) {
      // The call itself is a fresh source; its result also carries its
      // arguments' taint (db_getvalue(result, ...) stays linked to the
      // db_query that produced `result`).
      std::set<int> out = std::move(merged);
      out.insert(call.call_site_id);
      return out;
    }
    // Other library calls (string helpers etc.) pass taint through.
    return merged;
  }

  const prog::Program& program_;
  const TaintFlowOptions& options_;
  const prog::FunctionDef& fn_;
  const std::vector<FnSummary>& summaries_;
  const std::map<std::string, size_t>& fn_index_;
  const std::map<const prog::Stmt*, int>& concat_tokens_;

  std::set<int> ret_tokens_;
  std::map<size_t, std::set<int>> param_sinks_;
  FnObservations obs_;
};

// ---- Incremental cache codec ----------------------------------------------
//
// One cache entry per function: its summary plus its concrete observations
// (everything Assemble reads). The payload is canonical — sets and maps
// encode in sorted order — so the value hash of a summary is stable across
// solve/decode round trips, which is what gives the Merkle keys early
// cutoff: a re-solved callee with an unchanged summary leaves caller keys
// unchanged.

void EncodeTaintSummary(const FnSummary& s, BinaryWriter* w) {
  Put(*w, s.ret_tokens);
  w->U64(s.param_sinks.size());
  for (const auto& [k, sites] : s.param_sinks) {
    w->U64(k);
    Put(*w, sites);
  }
}

FnSummary DecodeTaintSummary(BinaryReader* r) {
  FnSummary s;
  s.ret_tokens = Get<std::set<int>>(*r);
  const uint64_t n = r->U64();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    const size_t k = static_cast<size_t>(r->U64());
    s.param_sinks[k] = Get<std::set<int>>(*r);
  }
  return s;
}

uint64_t HashTaintSummary(const FnSummary& s) {
  BinaryWriter w;
  EncodeTaintSummary(s, &w);
  return Hasher().Str(w.buffer()).digest();
}

void EncodeTaintEntry(const FnSummary& summary, const FnObservations& obs,
                      BinaryWriter* w) {
  EncodeTaintSummary(summary, w);
  Put(*w, obs.sinks);
  Put(*w, obs.vars);
  Put(*w, obs.param_vars);
}

bool DecodeTaintEntry(const std::string& payload, FnSummary* summary,
                      FnObservations* obs) {
  BinaryReader r(payload);
  *summary = DecodeTaintSummary(&r);
  obs->sinks = Get<std::map<int, std::set<int>>>(r);
  obs->vars = Get<std::map<std::string, std::set<int>>>(r);
  obs->param_vars =
      Get<std::map<std::string, std::map<std::string, std::set<int>>>>(r);
  return r.ok() && r.AtEnd();
}

/// True for `v = <expr>` where the RHS is a `+` expression reading `v`
/// itself — the incremental strcat-style build-up of Fig. 2.
bool IsSelfAppend(const prog::Stmt& s) {
  if (s.kind != prog::StmtKind::kAssign) return false;
  if (s.expr == nullptr || s.expr->kind != prog::ExprKind::kBinary ||
      s.expr->bin_op != prog::BinOp::kAdd) {
    return false;
  }
  std::vector<std::string> reads;
  CollectVarReads(*s.expr, &reads);
  return std::find(reads.begin(), reads.end(), s.target) != reads.end();
}

void RegisterConcatSites(const prog::FunctionDef& fn,
                         const prog::StmtList& body,
                         std::vector<ConcatBuildSite>* registry,
                         std::map<const prog::Stmt*, int>* tokens) {
  for (const auto& stmt : body) {
    if (IsSelfAppend(*stmt)) {
      (*tokens)[stmt.get()] =
          kConcatBase + static_cast<int>(registry->size());
      registry->push_back({fn.name, stmt->target, stmt->line});
    }
    RegisterConcatSites(fn, stmt->then_body, registry, tokens);
    RegisterConcatSites(fn, stmt->else_body, registry, tokens);
  }
}

/// Orchestrates the per-function solves bottom-up over call-graph SCCs.
class TaintFlowEngine {
 public:
  TaintFlowEngine(const prog::Program& program,
                  const TaintFlowOptions& options)
      : program_(program), options_(options) {}

  TaintFlowResult Run() {
    const auto& fns = program_.functions();
    const size_t count = fns.size();
    for (size_t i = 0; i < count; ++i) fn_index_[fns[i].name] = i;

    if (options_.track_concat_builds) {
      for (const prog::FunctionDef& fn : fns) {
        RegisterConcatSites(fn, fn.body, &concat_sites_, &concat_tokens_);
      }
    }

    graphs_.reserve(count);
    std::vector<std::vector<int>> adjacency(count);
    for (size_t i = 0; i < count; ++i) {
      graphs_.push_back(FlowGraph::Build(fns[i]));
      std::set<int> callees;
      CollectCallees(fns[i].body, &callees);
      adjacency[i].assign(callees.begin(), callees.end());
    }

    summaries_.assign(count, {});
    observations_.assign(count, {});

    if (options_.summary_cache != nullptr) {
      body_hash_.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        body_hash_.push_back(HashFunctionBody(fns[i]));
      }
      // Which concat tokens were assigned to each function: the registry
      // is program-ordered and tokens are global indices, so a function's
      // key must cover its own indices (an append site added *elsewhere*
      // shifts them even when this function's text is unchanged).
      std::vector<Hasher> concat(count);
      for (size_t i = 0; i < concat_sites_.size(); ++i) {
        concat[fn_index_.at(concat_sites_[i].function)].U64(i);
      }
      concat_hash_.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        concat_hash_.push_back(concat[i].digest());
      }
      summary_hash_.assign(count, 0);
      Hasher fp;
      fp.Str("taint-flow");
      fp.Size(options_.config.source_calls.size());
      for (const std::string& s : options_.config.source_calls) fp.Str(s);
      fp.Size(options_.config.sink_calls.size());
      for (const std::string& s : options_.config.sink_calls) fp.Str(s);
      fp.Size(options_.sanitizer_calls.size());
      for (const std::string& s : options_.sanitizer_calls) fp.Str(s);
      fp.Bool(options_.track_concat_builds);
      config_fp_ = fp.digest();
    }

    // Bottom-up over the condensation: every component only reads the
    // summaries of strictly lower levels (plus its own, single-threaded),
    // so the components of one level solve concurrently yet the fixpoint
    // is independent of the schedule.
    const prog::SccDecomposition scc = prog::ComputeSccs(adjacency);
    for (const std::vector<int>& level : scc.levels) {
      util::ParallelFor(options_.pool, level.size(), [&](size_t i) {
        SolveComponent(scc.components[static_cast<size_t>(level[i])],
                       adjacency);
      });
    }

    return Assemble();
  }

 private:
  void CollectCallees(const prog::StmtList& body, std::set<int>* out) const {
    for (const auto& stmt : body) {
      if (stmt->expr != nullptr) {
        std::vector<const prog::Expr*> calls;
        prog::CollectCalls(*stmt->expr, &calls);
        for (const prog::Expr* call : calls) {
          auto it = fn_index_.find(call->name);
          if (it != fn_index_.end()) out->insert(static_cast<int>(it->second));
        }
      }
      CollectCallees(stmt->then_body, out);
      CollectCallees(stmt->else_body, out);
    }
  }

  void SolveFunction(size_t index) {
    const prog::FunctionDef& fn = program_.functions()[index];
    TaintClient client(program_, options_, fn, summaries_, fn_index_,
                       concat_tokens_);
    const SolveResult<TaintClient> solved =
        Solve(graphs_[index], Direction::kForward, &client);
    client.RecordVarStates(solved);
    observations_[index] = client.TakeObservations();
    summaries_[index] = client.TakeSummary();
  }

  /// Chains one callee's caller-visible surface: its name, its parameter
  /// names (the caller's diagnostic observations are keyed by them, so a
  /// rename must invalidate even when the summary value is unchanged) and
  /// its summary value hash.
  void ChainCallee(Hasher* h, size_t callee) const {
    const prog::FunctionDef& fn = program_.functions()[callee];
    h->Str(fn.name);
    h->Size(fn.params.size());
    for (const std::string& param : fn.params) h->Str(param);
    h->U64(summary_hash_[callee]);
  }

  /// Merkle key of a non-recursive function: body hash × assigned concat
  /// tokens × caller-visible surface of every resolved callee.
  uint64_t EntryKey(size_t index,
                    const std::vector<std::vector<int>>& adjacency) const {
    Hasher h;
    h.U64(body_hash_[index]);
    h.U64(concat_hash_[index]);
    for (int c : adjacency[index]) {
      ChainCallee(&h, static_cast<size_t>(c));
    }
    return h.digest();
  }

  /// Recursive components key as a unit: every member's body (the mutual
  /// fixpoint reads them all) plus every external callee's summary hash.
  uint64_t ComponentKey(const std::vector<int>& members,
                        const std::vector<std::vector<int>>& adjacency,
                        const std::set<int>& member_set) const {
    Hasher h;
    h.U64(kRecursionMarker);
    for (int v : members) {
      const size_t i = static_cast<size_t>(v);
      h.Str(program_.functions()[i].name);
      h.U64(body_hash_[i]);
      h.U64(concat_hash_[i]);
    }
    std::set<int> external;
    for (int v : members) {
      for (int c : adjacency[static_cast<size_t>(v)]) {
        if (!member_set.contains(c)) external.insert(c);
      }
    }
    for (int c : external) {
      ChainCallee(&h, static_cast<size_t>(c));
    }
    return h.digest();
  }

  void StoreEntry(size_t index, uint64_t key) {
    BinaryWriter w;
    EncodeTaintEntry(summaries_[index], observations_[index], &w);
    options_.summary_cache->Store(
        config_fp_, program_.functions()[index].name, key, w.Take());
  }

  void SolveComponent(const std::vector<int>& members,
                      const std::vector<std::vector<int>>& adjacency) {
    SummaryStore* cache = options_.summary_cache;
    bool recursive = members.size() > 1;
    if (!recursive) {
      const int v = members[0];
      const auto& succs = adjacency[static_cast<size_t>(v)];
      recursive = std::find(succs.begin(), succs.end(), v) != succs.end();
    }
    if (!recursive) {
      const size_t index = static_cast<size_t>(members[0]);
      if (cache == nullptr) {
        SolveFunction(index);
        return;
      }
      const std::string& name = program_.functions()[index].name;
      const uint64_t key = EntryKey(index, adjacency);
      std::string payload;
      if (cache->Lookup(config_fp_, name, key, &payload, &cache_stats_)) {
        ADPROM_CHECK_MSG(DecodeTaintEntry(payload, &summaries_[index],
                                          &observations_[index]),
                         "corrupt taint cache entry for " + name);
      } else {
        SolveFunction(index);
        StoreEntry(index, key);
      }
      summary_hash_[index] = HashTaintSummary(summaries_[index]);
      return;
    }

    const std::set<int> member_set(members.begin(), members.end());
    std::vector<int> ordered(members.begin(), members.end());
    std::sort(ordered.begin(), ordered.end());
    uint64_t key = 0;
    if (cache != nullptr) {
      key = ComponentKey(ordered, adjacency, member_set);
      // All-or-nothing: the members' summaries form one mutual fixpoint,
      // so either every cached member is reused or the whole component
      // recomputes. Probe with local stats first so the real counters
      // reflect the group decision.
      PassCacheStats probe;
      std::vector<std::string> payloads(ordered.size());
      bool all_hit = true;
      for (size_t i = 0; i < ordered.size(); ++i) {
        const size_t v = static_cast<size_t>(ordered[i]);
        const std::string& name = program_.functions()[v].name;
        const uint64_t member_key = Hasher(key).Str(name).digest();
        if (!cache->Lookup(config_fp_, name, member_key, &payloads[i],
                           &probe)) {
          all_hit = false;
        }
      }
      if (all_hit) {
        for (size_t i = 0; i < ordered.size(); ++i) {
          const size_t v = static_cast<size_t>(ordered[i]);
          ADPROM_CHECK_MSG(
              DecodeTaintEntry(payloads[i], &summaries_[v],
                               &observations_[v]),
              "corrupt taint cache entry for " +
                  program_.functions()[v].name);
          summary_hash_[v] = HashTaintSummary(summaries_[v]);
        }
        cache->Count(&cache_stats_, ordered.size(), 0, 0);
        return;
      }
      cache->Count(&cache_stats_, 0, ordered.size(), probe.invalidated);
    }

    // Recursive component: iterate members (ascending index, so the
    // result is schedule-independent) until their summaries stabilize.
    // Summaries only grow, so this terminates on the finite token space.
    constexpr int kMaxIterations = 1000;
    bool converged = false;
    for (int iter = 0; iter < kMaxIterations && !converged; ++iter) {
      bool changed = false;
      for (int v : members) {
        const FnSummary before = summaries_[static_cast<size_t>(v)];
        SolveFunction(static_cast<size_t>(v));
        if (!(summaries_[static_cast<size_t>(v)] == before)) changed = true;
      }
      converged = !changed;
    }
    ADPROM_CHECK_MSG(converged,
                     "recursive taint summaries failed to converge");
    if (cache != nullptr) {
      for (int v : ordered) {
        const size_t i = static_cast<size_t>(v);
        const std::string& name = program_.functions()[i].name;
        StoreEntry(i, Hasher(key).Str(name).digest());
        summary_hash_[i] = HashTaintSummary(summaries_[i]);
      }
    }
  }

  TaintFlowResult Assemble() const {
    TaintFlowResult out;
    out.cache_stats = cache_stats_;
    out.concat_sites = concat_sites_;
    const auto& fns = program_.functions();
    for (size_t f = 0; f < fns.size(); ++f) {
      const FnObservations& obs = observations_[f];
      for (const auto& [site, tokens] : obs.sinks) {
        for (int t : tokens) {
          if (IsConcatToken(t)) {
            out.sink_concat_builds[site].insert(t - kConcatBase);
          } else {
            out.taint.labeled_sinks[site].insert(t);
          }
        }
      }
      for (const auto& [var, tokens] : obs.vars) {
        if (tokens.empty()) continue;
        out.taint.tainted_vars[fns[f].name][var].insert(tokens.begin(),
                                                        tokens.end());
      }
      for (const auto& [callee, params] : obs.param_vars) {
        for (const auto& [var, tokens] : params) {
          if (tokens.empty()) continue;
          out.taint.tainted_vars[callee][var].insert(tokens.begin(),
                                                     tokens.end());
        }
      }
    }
    return out;
  }

  const prog::Program& program_;
  const TaintFlowOptions& options_;
  std::map<std::string, size_t> fn_index_;
  std::vector<ConcatBuildSite> concat_sites_;
  std::map<const prog::Stmt*, int> concat_tokens_;
  std::vector<FlowGraph> graphs_;
  std::vector<FnSummary> summaries_;
  std::vector<FnObservations> observations_;

  // Incremental-cache state (set iff options_.summary_cache != nullptr).
  uint64_t config_fp_ = 0;
  std::vector<uint64_t> body_hash_;
  std::vector<uint64_t> concat_hash_;
  // Value hash of each solved/decoded summary; written by the worker that
  // owns the function's component, read only by strictly later levels
  // (the ParallelFor barrier between levels orders the accesses).
  std::vector<uint64_t> summary_hash_;
  PassCacheStats cache_stats_;
};

}  // namespace

util::Result<TaintFlowResult> RunTaintFlowAnalysis(
    const prog::Program& program, const TaintFlowOptions& options) {
  if (!program.finalized()) {
    return util::Status::FailedPrecondition(
        "program must be finalized before taint analysis");
  }
  TaintFlowEngine engine(program, options);
  return engine.Run();
}

util::Result<TaintResult> RunFlowSensitiveTaint(const prog::Program& program,
                                                const TaintConfig& config,
                                                util::ThreadPool* pool,
                                                SummaryStore* cache,
                                                PassCacheStats* stats) {
  TaintFlowOptions options;
  options.config = config;
  options.pool = pool;
  options.summary_cache = cache;
  ADPROM_ASSIGN_OR_RETURN(TaintFlowResult result,
                          RunTaintFlowAnalysis(program, options));
  if (stats != nullptr) *stats = result.cache_stats;
  return std::move(result.taint);
}

}  // namespace adprom::analysis::dataflow
