#include "analysis/dataflow/lint.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <tuple>
#include <utility>

#include "analysis/absint/engine.h"
#include "analysis/dataflow/flow_graph.h"
#include "analysis/dataflow/ifds.h"
#include "analysis/dataflow/liveness.h"
#include "analysis/dataflow/reaching_defs.h"
#include "analysis/dataflow/taint_flow.h"
#include "util/strings.h"

namespace adprom::analysis::dataflow {

namespace {

/// Call sites the exfil check watches: output channels that move data out
/// of the process (as opposed to the interactive screen).
const std::set<std::string>& ExfilCalls() {
  static const std::set<std::string> kCalls = {"send_net", "send_file",
                                               "write_file", "fprint"};
  return kCalls;
}

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void AddStats(const PassCacheStats& in, PassCacheStats* out) {
  out->hits += in.hits;
  out->misses += in.misses;
  out->invalidated += in.invalidated;
}

struct SiteInfo {
  std::string function;
  std::string callee;
  int line = 0;
};

void IndexCallSites(const prog::FunctionDef& fn, const prog::StmtList& body,
                    std::map<int, SiteInfo>* out) {
  for (const auto& stmt : body) {
    if (stmt->expr != nullptr) {
      std::vector<const prog::Expr*> calls;
      prog::CollectCalls(*stmt->expr, &calls);
      for (const prog::Expr* call : calls) {
        (*out)[call->call_site_id] = {fn.name, call->name, call->line};
      }
    }
    IndexCallSites(fn, stmt->then_body, out);
    IndexCallSites(fn, stmt->else_body, out);
  }
}

std::string JoinComma(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

/// Appends the first feasible witness ending at `sink_site` (if any) to
/// the report and returns its index, -1 otherwise.
int AttachWitness(const IfdsResult& result, int sink_site,
                  LintReport* report) {
  for (const LeakWitness& w : result.witnesses) {
    if (w.sink_site == sink_site && w.feasible) {
      report->witnesses.push_back(w);
      return static_cast<int>(report->witnesses.size()) - 1;
    }
  }
  return -1;
}

void CheckInjection(const prog::Program& program, const LintOptions& options,
                    const std::map<int, SiteInfo>& sites,
                    LintReport* report) {
  TaintFlowOptions taint_options;
  taint_options.config.source_calls = {"scan"};
  taint_options.config.sink_calls = {"db_query"};
  taint_options.sanitizer_calls = options.sanitizer_calls;
  taint_options.track_concat_builds = true;
  taint_options.pool = options.pool;
  if (options.cache != nullptr) {
    taint_options.summary_cache = &options.cache->taint;
  }
  auto result = RunTaintFlowAnalysis(program, taint_options);
  if (!result.ok()) return;  // RunLint validated the program already.
  AddStats(result->cache_stats, &report->stats.taint_cache);

  // Witness reconstruction for the scan -> db_query flow; the finding
  // set itself stays defined by the concat-build criterion below.
  IfdsResult witness_result;
  if (options.witnesses) {
    IfdsOptions ifds_options;
    ifds_options.config = taint_options.config;
    ifds_options.sanitizer_calls = options.sanitizer_calls;
    ifds_options.feasibility_filter = false;
    ifds_options.column_taint = false;
    ifds_options.pool = options.pool;
    if (options.cache != nullptr) {
      ifds_options.summary_cache = &options.cache->ifds;
    }
    auto witnesses = RunIfdsTaint(program, ifds_options);
    if (witnesses.ok()) {
      witness_result = std::move(*witnesses);
      AddStats(witness_result.cache_stats, &report->stats.ifds_cache);
    }
  }

  for (const auto& [site, builds] : result->sink_concat_builds) {
    // Flag only queries that both carry unsanitized user input and were
    // assembled by incremental concatenation — the Fig. 2 pattern that
    // distinguishes App_b's find_client from parameterized-style
    // single-expression construction.
    auto labeled = result->taint.labeled_sinks.find(site);
    if (labeled == result->taint.labeled_sinks.end() ||
        labeled->second.empty()) {
      continue;
    }
    const SiteInfo& info = sites.at(site);
    std::string built_at;
    for (int idx : builds) {
      const ConcatBuildSite& build =
          result->concat_sites[static_cast<size_t>(idx)];
      built_at += util::StrFormat("%s'%s' at line %d",
                                  built_at.empty() ? "" : ", ",
                                  build.variable.c_str(), build.line);
    }
    report->findings.push_back(
        {"sql-injection", info.function, info.line,
         util::StrFormat("db_query receives a query concatenated from "
                         "unsanitized user input (built via %s)",
                         built_at.c_str()),
         AttachWitness(witness_result, site, report)});
  }
}

void CheckExfil(const prog::Program& program, const LintOptions& options,
                const std::map<int, SiteInfo>& sites, LintReport* report) {
  IfdsOptions ifds_options;
  ifds_options.config.source_calls = options.monitored.source_calls;
  ifds_options.config.sink_calls.clear();
  for (const std::string& call : ExfilCalls()) {
    if (!options.monitored.sink_calls.contains(call)) {
      ifds_options.config.sink_calls.insert(call);
    }
  }
  if (ifds_options.config.sink_calls.empty()) return;
  ifds_options.schemas = options.schemas;
  ifds_options.column_taint = options.column_taint;
  ifds_options.witnesses = options.witnesses;
  ifds_options.pool = options.pool;
  if (options.cache != nullptr) {
    ifds_options.summary_cache = &options.cache->ifds;
  }
  auto result = RunIfdsTaint(program, ifds_options);
  if (!result.ok()) return;
  AddStats(result->cache_stats, &report->stats.ifds_cache);

  // Only feasibility-surviving facts become findings: a flow whose every
  // realizing path is provably contradictory is not a leak.
  for (const auto& [site, sources] : result->taint.labeled_sinks) {
    if (sources.empty()) continue;
    const SiteInfo& info = sites.at(site);
    std::string message = util::StrFormat(
        "DB data flows into '%s', which is outside the monitored sink set "
        "— the monitor would not label this output",
        info.callee.c_str());
    auto columns = result->sink_columns.find(site);
    if (columns != result->sink_columns.end()) {
      message += util::StrFormat(" (reads %s)",
                                 JoinComma(columns->second).c_str());
    }
    report->findings.push_back({"unlabeled-exfil", info.function, info.line,
                                std::move(message),
                                AttachWitness(*result, site, report)});
  }
  if (options.witnesses) {
    // Pruned facts never become findings, but their witnesses explain
    // what was discarded and why (rendered after the referenced ones).
    for (const LeakWitness& w : result->witnesses) {
      if (!w.feasible) report->witnesses.push_back(w);
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonStringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(items[i]) + "\"";
  }
  return out + "]";
}

std::string WitnessJson(const LeakWitness& w, const std::string& indent) {
  std::string out = indent + "{\n";
  out += indent + "  \"source\": \"" + JsonEscape(w.source_call) + "\",\n";
  out += indent + "  \"source_site\": " + std::to_string(w.source_site) +
         ",\n";
  out += indent + "  \"sink\": \"" + JsonEscape(w.sink_call) + "\",\n";
  out += indent + "  \"sink_site\": " + std::to_string(w.sink_site) + ",\n";
  out += indent + "  \"feasible\": " + (w.feasible ? "true" : "false") +
         ",\n";
  out += indent + "  \"columns\": " + JsonStringArray(w.columns) + ",\n";
  out += indent + "  \"steps\": [";
  for (size_t i = 0; i < w.steps.size(); ++i) {
    const WitnessStep& s = w.steps[i];
    out += i == 0 ? "\n" : ",\n";
    out += indent + "    {\"function\": \"" + JsonEscape(s.function) +
           "\", \"line\": " + std::to_string(s.line) + ", \"text\": \"" +
           JsonEscape(s.text) + "\"";
    if (s.is_branch) {
      out += std::string(", \"takes\": ") + (s.branch_taken ? "true"
                                                            : "false");
    }
    out += "}";
  }
  if (!w.steps.empty()) out += "\n" + indent + "  ";
  out += "]";
  if (!w.feasible) {
    out += ",\n" + indent +
           "  \"pruned_line\": " + std::to_string(w.pruned_line) + ",\n";
    out += indent + "  \"pruned_condition\": \"" +
           JsonEscape(w.pruned_condition) + "\"\n";
  } else {
    out += "\n";
  }
  return out + indent + "}";
}

}  // namespace

std::string LintReport::Format(const std::string& file_label) const {
  std::string out;
  for (const LintFinding& finding : findings) {
    out += util::StrFormat("%s:%d: [%s] %s (in %s)\n", file_label.c_str(),
                           finding.line, finding.category.c_str(),
                           finding.message.c_str(),
                           finding.function.c_str());
  }
  out += util::StrFormat("%zu finding%s across %zu function%s\n",
                         findings.size(), findings.size() == 1 ? "" : "s",
                         functions_checked, functions_checked == 1 ? "" : "s");
  return out;
}

std::string LintReport::FormatJson(const std::string& file_label) const {
  std::string out = "{\n";
  out += "  \"file\": \"" + JsonEscape(file_label) + "\",\n";
  out += "  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"line\": " + std::to_string(f.line) + ",\n";
    out += "      \"category\": \"" + JsonEscape(f.category) + "\",\n";
    out += "      \"function\": \"" + JsonEscape(f.function) + "\",\n";
    out += "      \"message\": \"" + JsonEscape(f.message) + "\"";
    if (f.witness >= 0) {
      out += ",\n      \"witness\": " + std::to_string(f.witness) + "\n";
    } else {
      out += "\n";
    }
    out += "    }";
  }
  if (!findings.empty()) out += "\n  ";
  out += "],\n";
  out += "  \"witnesses\": [";
  for (size_t i = 0; i < witnesses.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += WitnessJson(witnesses[i], "    ");
  }
  if (!witnesses.empty()) out += "\n  ";
  out += "],\n";
  out += "  \"functions_checked\": " + std::to_string(functions_checked) +
         "\n";
  return out + "}\n";
}

util::Result<LintReport> RunLint(const prog::Program& program,
                                 const LintOptions& options) {
  if (!program.finalized()) {
    return util::Status::FailedPrecondition(
        "program must be finalized before linting");
  }
  LintReport report;
  report.functions_checked = program.functions().size();

  std::map<int, SiteInfo> sites;
  for (const prog::FunctionDef& fn : program.functions()) {
    IndexCallSites(fn, fn.body, &sites);
  }

  // Per-function structural checks.
  auto t0 = std::chrono::steady_clock::now();
  for (const prog::FunctionDef& fn : program.functions()) {
    const FlowGraph graph = FlowGraph::Build(fn);
    if (options.check_unreachable) {
      for (int line : graph.unreachable_lines()) {
        report.findings.push_back({"unreachable", fn.name, line,
                                   "statement can never execute"});
      }
    }
    if (options.check_uninitialized) {
      const ReachingDefsResult defs = ComputeReachingDefs(graph, fn.params);
      for (const auto& use : defs.maybe_uninit) {
        report.findings.push_back(
            {"maybe-uninit", fn.name, use.line,
             util::StrFormat("variable '%s' may be read before it is "
                             "assigned",
                             use.variable.c_str())});
      }
    }
    if (options.check_dead_stores) {
      const LivenessResult live = ComputeLiveness(graph);
      for (const auto& store : live.dead_stores) {
        if (store.rhs_has_call) continue;  // The statement still has effects.
        report.findings.push_back(
            {"dead-store", fn.name, store.line,
             util::StrFormat("value stored to '%s' is never read",
                             store.variable.c_str())});
      }
    }
  }
  report.stats.structural_seconds = SecondsSince(t0);

  // Interval-powered checks from the abstract interpreter.
  if (options.check_infeasible_branch || options.check_div_zero ||
      options.check_const_index) {
    t0 = std::chrono::steady_clock::now();
    absint::AbsintOptions absint_options;
    absint_options.pool = options.pool;
    if (options.cache != nullptr) {
      absint_options.summary_cache = &options.cache->absint;
    }
    auto absint_result =
        absint::RunAbstractInterpretation(program, absint_options);
    if (absint_result.ok()) {
      AddStats(absint_result->cache_stats, &report.stats.absint_cache);
      for (const auto& [fn_name, facts] : absint_result->functions) {
        if (options.check_infeasible_branch) {
          for (const absint::BranchFact& fact : facts.branches) {
            // Literal conditions (`if (1)`, `while (1)`) are deliberate
            // idioms, not bugs; the CFG refiner still exploits them.
            if (fact.condition_is_literal ||
                fact.verdict == absint::Tri::kUnknown) {
              continue;
            }
            const bool always = fact.verdict == absint::Tri::kTrue;
            const char* what = fact.is_loop
                                   ? (always ? "loop condition is always "
                                               "true (loop never exits)"
                                             : "loop condition is always "
                                               "false (body never runs)")
                                   : (always ? "condition is always true"
                                             : "condition is always false");
            report.findings.push_back(
                {"infeasible-branch", fn_name, fact.line, what});
          }
        }
        for (const absint::Diagnostic& diag : facts.diagnostics) {
          if (diag.category == "div-by-zero" && !options.check_div_zero) {
            continue;
          }
          if (diag.category == "const-index-oob" &&
              !options.check_const_index) {
            continue;
          }
          report.findings.push_back(
              {diag.category, diag.function, diag.line, diag.message});
        }
      }
    }
    report.stats.absint_seconds = SecondsSince(t0);
  }

  // Whole-program taint checks.
  if (options.check_injection) {
    t0 = std::chrono::steady_clock::now();
    CheckInjection(program, options, sites, &report);
    report.stats.injection_seconds = SecondsSince(t0);
  }
  if (options.check_exfil) {
    t0 = std::chrono::steady_clock::now();
    CheckExfil(program, options, sites, &report);
    report.stats.exfil_seconds = SecondsSince(t0);
  }

  // Fully deterministic order (the witness index breaks any remaining
  // tie), then drop findings identical in every user-visible field.
  std::sort(report.findings.begin(), report.findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              return std::tie(a.line, a.category, a.function, a.message,
                              a.witness) < std::tie(b.line, b.category,
                                                    b.function, b.message,
                                                    b.witness);
            });
  report.findings.erase(
      std::unique(report.findings.begin(), report.findings.end(),
                  [](const LintFinding& a, const LintFinding& b) {
                    return std::tie(a.line, a.category, a.function,
                                    a.message) ==
                           std::tie(b.line, b.category, b.function,
                                    b.message);
                  }),
      report.findings.end());
  return std::move(report);
}

}  // namespace adprom::analysis::dataflow
