#ifndef ADPROM_ANALYSIS_DATAFLOW_IFDS_H_
#define ADPROM_ANALYSIS_DATAFLOW_IFDS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/summary_cache.h"
#include "analysis/taint.h"
#include "db/schema.h"
#include "prog/program.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace adprom::analysis::dataflow {

/// Demand-driven leakage-witness engine.
///
/// Solves the flow-sensitive taint problem as reachability on the IFDS
/// exploded supergraph: the facts are (variable, source-token) pairs per
/// flow node, the per-call-site summary edges are the per-function
/// (return-tokens, parameter-to-sink obligation) summaries instantiated
/// at every call, and the solve is scheduled bottom-up over call-graph
/// SCC levels exactly like the flow-sensitive engine — its labeled-sink
/// facts are the same set, so IFDS facts are a subset of (and before
/// filtering equal to) the flow-sensitive result, which is itself a
/// subset of the flow-insensitive one.
///
/// On top of plain reachability the engine adds the demand-driven tier
/// the paper's labeling cannot express:
///   * witnesses — for every source->sink fact, a shortest CFG-realizable
///     path from the source call to the sink call, reconstructed by a
///     breadth-first walk of the exploded graph restricted to the solved
///     fixpoint (so every step is a real CFG edge along which the fact
///     flows), spliced through callees via the summary that carried it;
///   * feasibility — per demanded (function, token) a conditioned
///     abstract-interpretation fixpoint that carries, next to the plain
///     path state ("lambda"), one abstract state per taint-carrying
///     variable joined only over the paths the token actually flowed on.
///     Branch refinements (replayed through the absint Interval engine)
///     drop a carrier when they contradict its state; a sink fact whose
///     carriers are all dropped is *provably* infeasible — the carrier
///     state over-approximates every concrete path that could realize the
///     flow — and is discarded from the result;
///   * columns — source call sites whose query text is a static literal
///     are resolved to the `table.column` sets they can read, expanding
///     `SELECT *` through the DB schema catalog.
struct IfdsOptions {
  TaintConfig config = TaintConfig::Default();
  /// Library calls whose result is clean regardless of argument taint.
  std::set<std::string> sanitizer_calls;
  /// CREATE TABLE schemas for `SELECT *` expansion (may be empty).
  db::SchemaCatalog schemas;
  /// Resolve per-source `table.column` sets from static query literals.
  bool column_taint = true;
  /// Discard sink facts whose conditioned replay proves every realizing
  /// path infeasible. Off => the result equals the plain flow-sensitive
  /// taint facts.
  bool feasibility_filter = true;
  /// Reconstruct a witness path per (sink, source) fact.
  bool witnesses = true;
  /// Optional pool; results are bit-identical for any pool size.
  util::ThreadPool* pool = nullptr;
  /// Optional incremental store: per-function {summary, sink facts with
  /// sealed feasibility verdicts, witness provenance inputs, feasible
  /// obligations} keyed by the function's body hash chained with each
  /// callee's caller-visible surface (name, parameter names, summary
  /// value hash) and an options fingerprint (schemas included — a schema
  /// edit conservatively invalidates). A hit skips the fixpoint, the
  /// conditioned feasibility solves and the post-pass; functions on a
  /// demanded witness path are lazily re-solved during reconstruction.
  /// Results are bit-identical with or without the cache
  /// (property-tested). nullptr disables caching.
  SummaryStore* summary_cache = nullptr;
};

/// One step of a witness path: a flow-graph node of `function`, rendered.
struct WitnessStep {
  std::string function;
  int node_id = -1;
  int line = 0;
  std::string text;
  bool is_branch = false;
  /// Valid when `is_branch`: the branch direction the path takes.
  bool branch_taken = false;

  bool operator==(const WitnessStep&) const = default;
};

/// A source->sink leakage witness: the shortest realizable path the taint
/// fact flows along, plus the feasibility verdict of its conditioned
/// replay.
struct LeakWitness {
  int sink_site = -1;    // call_site_id of the sink call
  int source_site = -1;  // call_site_id of the source call (the token)
  std::string sink_call;
  std::string source_call;
  /// `table.column` set the source can read (empty when not static).
  std::vector<std::string> columns;
  std::vector<WitnessStep> steps;
  bool feasible = true;
  /// When infeasible: the first branch of the rendered path whose
  /// condition the interval replay refutes, and the refuted condition.
  int pruned_line = 0;
  std::string pruned_condition;
};

struct IfdsStats {
  size_t functions = 0;
  /// Conditioned feasibility solves run (one per demanded fn x token).
  size_t demanded_solves = 0;
  /// Exploded-graph states visited by the witness reconstruction walks.
  size_t exploded_nodes = 0;
  /// Instantiated summary-edge applications observed at call sites.
  size_t summary_edges = 0;
  size_t sink_facts = 0;    // distinct (sink, source) facts before filter
  size_t pruned_facts = 0;  // facts discarded as provably infeasible
};

struct IfdsResult {
  /// Feasibility-filtered taint facts (labeled_sinks ⊆ the flow-sensitive
  /// result; equal when the filter is off or nothing is infeasible).
  TaintResult taint;
  /// sink site -> source tokens discarded as provably infeasible.
  std::map<int, std::set<int>> pruned_sinks;
  /// source site -> sorted `table.column` set it can read.
  std::map<int, std::vector<std::string>> source_columns;
  /// sink site -> sorted union of its *feasible* sources' columns.
  std::map<int, std::vector<std::string>> sink_columns;
  /// One witness per (sink, source) fact — feasible and pruned ones —
  /// sorted by (sink, source). Empty when `witnesses` is off.
  std::vector<LeakWitness> witnesses;
  IfdsStats stats;
  /// Summary-cache counters for this run (all zero when no cache is set).
  PassCacheStats cache_stats;
};

/// Runs the engine over a finalized program. Deterministic: bit-identical
/// results for any thread pool.
util::Result<IfdsResult> RunIfdsTaint(const prog::Program& program,
                                      const IfdsOptions& options = {});

/// Renders a witness as an annotated per-line path.
std::string FormatWitness(const LeakWitness& w);

/// Renders a witness as a Graphviz digraph; when the witness is pruned
/// the refuted branch step is highlighted.
std::string WitnessToDot(const LeakWitness& w);

/// The `table.column` set a source call can read, resolved from the
/// string literals of its argument expression: `SELECT a, b FROM t` gives
/// {"t.a", "t.b"}; `SELECT *` expands through `schemas` (or "t.*" when
/// the table is not in the catalog). Empty for non-query sources and
/// non-static query texts.
std::vector<std::string> SourceColumnsForCall(const prog::Expr& call,
                                              const db::SchemaCatalog& schemas);

}  // namespace adprom::analysis::dataflow

#endif  // ADPROM_ANALYSIS_DATAFLOW_IFDS_H_
