#ifndef ADPROM_ANALYSIS_DATAFLOW_SOLVER_H_
#define ADPROM_ANALYSIS_DATAFLOW_SOLVER_H_

#include <concepts>
#include <set>
#include <utility>
#include <vector>

#include "analysis/dataflow/flow_graph.h"
#include "util/logging.h"

namespace adprom::analysis::dataflow {

enum class Direction { kForward, kBackward };

/// True when the client refines values flowing along a specific edge
/// (e.g. branch-condition refinement in the abstract interpreter).
template <typename Client>
concept HasTransferEdge = requires(Client c, const FlowNode& node,
                                   const typename Client::Domain& d) {
  { c.TransferEdge(node, 0, d) } -> std::same_as<typename Client::Domain>;
};

/// True when the client accelerates convergence by widening: the solver
/// hands it the previous and the freshly joined input state and uses
/// whatever the client returns (which must be >= the join for soundness).
template <typename Client>
concept HasWidenJoin = requires(Client c, const FlowNode& node,
                                const typename Client::Domain& d) {
  { c.WidenJoin(node, d, d) } -> std::same_as<typename Client::Domain>;
};

/// The generic monotone-framework worklist solver.
///
/// A Client models one dataflow problem:
///
///   using Domain = ...;             // a join-semilattice element;
///                                   // default-constructed == bottom,
///                                   // operator== required
///   Domain Boundary() const;        // value at entry (fwd) / exit (bwd)
///   void Join(Domain* into, const Domain& from) const;   // lattice join
///   Domain Transfer(const FlowNode& node, const Domain& in);
///
/// Two optional hooks extend the framework to abstract interpretation:
///
///   // Refine the predecessor's out-state for the edge pred -> to_id
///   // (infinite-lattice clients also use this for path feasibility).
///   Domain TransferEdge(const FlowNode& pred, int to_id, const Domain&);
///   // Combine the previous input with the new join, widening at
///   // client-chosen points so infinite ascending chains terminate.
///   Domain WidenJoin(const FlowNode& node, const Domain& previous,
///                    const Domain& joined);
///
/// `Transfer` must be monotone: a larger input never produces a smaller
/// output. It may accumulate observations (e.g. "taint reached this sink")
/// into the client; because iteration starts at bottom and only climbs,
/// every node's final visit sees its fixpoint input, so the accumulated
/// union equals the observation at the fixpoint.
///
/// Nodes are scheduled by reverse post-order position with a set-based
/// worklist (always the smallest pending position), which makes the solve
/// deterministic: same graph + same client => bit-identical states,
/// independent of how many functions other threads are solving.
template <typename Client>
struct SolveResult {
  /// Per node id: the joined state entering the node in iteration
  /// direction (before Transfer) and the state Transfer produced. For a
  /// backward problem `in` is the state at the node's *exit* (e.g.
  /// live-out) and `out` the state at its entry (live-in).
  struct NodeStates {
    typename Client::Domain in;
    typename Client::Domain out;
  };
  std::vector<NodeStates> states;
};

template <typename Client>
SolveResult<Client> Solve(const FlowGraph& graph, Direction direction,
                          Client* client) {
  using Domain = typename Client::Domain;
  const size_t n = graph.size();
  const bool forward = direction == Direction::kForward;
  const std::vector<int> order =
      forward ? graph.ReversePostOrder() : graph.BackwardReversePostOrder();
  ADPROM_CHECK_EQ(order.size(), n);
  std::vector<int> position(n, 0);
  for (size_t i = 0; i < n; ++i) {
    position[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  const int boundary_id = forward ? graph.entry_id() : graph.exit_id();

  SolveResult<Client> result;
  result.states.resize(n);
  std::set<int> worklist;
  for (size_t i = 0; i < n; ++i) worklist.insert(static_cast<int>(i));

  // Monotone transfers over finite lattices converge; the cap only guards
  // against a non-monotone client, which would otherwise loop forever.
  constexpr size_t kMaxSteps = 10'000'000;
  size_t steps = 0;
  while (!worklist.empty()) {
    ADPROM_CHECK_MSG(++steps < kMaxSteps,
                     "dataflow solver failed to converge (non-monotone "
                     "transfer function?)");
    const int pos = *worklist.begin();
    worklist.erase(worklist.begin());
    const FlowNode& node = graph.node(order[static_cast<size_t>(pos)]);
    auto& slot = result.states[static_cast<size_t>(node.id)];

    Domain in{};
    if (node.id == boundary_id) client->Join(&in, client->Boundary());
    for (int from : forward ? node.preds : node.succs) {
      const Domain& from_out = result.states[static_cast<size_t>(from)].out;
      if constexpr (HasTransferEdge<Client>) {
        client->Join(&in, client->TransferEdge(
                              graph.node(from), node.id, from_out));
      } else {
        client->Join(&in, from_out);
      }
    }
    if constexpr (HasWidenJoin<Client>) {
      in = client->WidenJoin(node, slot.in, in);
    }
    Domain out = client->Transfer(node, in);
    slot.in = std::move(in);
    if (out == slot.out) continue;
    slot.out = std::move(out);
    for (int to : forward ? node.succs : node.preds) {
      worklist.insert(position[static_cast<size_t>(to)]);
    }
  }
  return result;
}

}  // namespace adprom::analysis::dataflow

#endif  // ADPROM_ANALYSIS_DATAFLOW_SOLVER_H_
