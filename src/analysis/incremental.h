#ifndef ADPROM_ANALYSIS_INCREMENTAL_H_
#define ADPROM_ANALYSIS_INCREMENTAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "db/schema.h"
#include "prog/program.h"

namespace adprom::analysis {

/// Per-function content hashes: the root of every incremental cache key.
///
/// `body[i]` covers everything any pass reads out of function i itself —
/// its name, parameter list, and the full AST walk (statement/expression
/// kinds, literals by bit pattern, variable and callee names, the
/// program-global call-site ids, and source line numbers, which lint
/// findings and witness steps surface). Each pass then chains the body hash
/// with the *value hashes* of the callee summaries it consumed (a Merkle
/// key with early cutoff: if a callee was re-solved but its summary came
/// out identical, callers still hit) plus a fingerprint of its own options.
/// Under that rule a cached summary is reused iff nothing it was computed
/// from changed, so a warm run recomputes exactly the edited functions and
/// their transitive dependents — and is bit-identical to a cold run.
struct ProgramHashes {
  std::vector<uint64_t> body;
  /// Distinct user-function callees per function, as indices into the
  /// program's function order, sorted by callee name (the deterministic
  /// order every pass uses when chaining callee hashes into its keys).
  std::vector<std::vector<size_t>> callees;
  std::map<std::string, size_t> fn_index;
  /// Hash of the schema catalog (lowercased table name → ordered typed
  /// columns). Mixed into the fingerprints of passes that expand SELECT *
  /// through the catalog.
  uint64_t schema_hash = 0;

  static ProgramHashes Compute(const prog::Program& program,
                               const db::SchemaCatalog* schemas = nullptr);
};

/// Hash of one function's definition (see ProgramHashes::body).
uint64_t HashFunctionBody(const prog::FunctionDef& fn);

/// Hash of a schema catalog; 0-seeded offset for a null/empty catalog.
uint64_t HashSchemaCatalog(const db::SchemaCatalog* schemas);

}  // namespace adprom::analysis

#endif  // ADPROM_ANALYSIS_INCREMENTAL_H_
