#include "analysis/ctm.h"

#include <cmath>

#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace adprom::analysis {

std::string Site::Key() const {
  return function + ":" + std::to_string(block_id);
}

size_t Ctm::AddSite(Site site) {
  const std::string key = site.Key();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  if (site.observable.empty()) site.observable = site.callee;
  const size_t idx = sites_.size();
  index_[key] = idx;
  sites_.push_back(std::move(site));

  // Grow the matrix by one row and one column, preserving entries.
  util::Matrix grown(sites_.size() + 1, sites_.size() + 1);
  for (size_t r = 0; r < m_.rows(); ++r)
    for (size_t c = 0; c < m_.cols(); ++c) grown.At(r, c) = m_.At(r, c);
  m_ = std::move(grown);
  return idx;
}

int Ctm::IndexOfKey(const std::string& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

double Ctm::entry_to(size_t j) const { return m_.At(0, j + 1); }
double Ctm::to_exit(size_t i) const { return m_.At(i + 1, 0); }
double Ctm::between(size_t i, size_t j) const { return m_.At(i + 1, j + 1); }
double Ctm::entry_to_exit() const { return m_.At(0, 0); }
void Ctm::set_entry_to(size_t j, double v) { m_.At(0, j + 1) = v; }
void Ctm::set_to_exit(size_t i, double v) { m_.At(i + 1, 0) = v; }
void Ctm::set_between(size_t i, size_t j, double v) {
  m_.At(i + 1, j + 1) = v;
}
void Ctm::set_entry_to_exit(double v) { m_.At(0, 0) = v; }
void Ctm::add_entry_to(size_t j, double v) { m_.At(0, j + 1) += v; }
void Ctm::add_to_exit(size_t i, double v) { m_.At(i + 1, 0) += v; }
void Ctm::add_between(size_t i, size_t j, double v) {
  m_.At(i + 1, j + 1) += v;
}
void Ctm::add_entry_to_exit(double v) { m_.At(0, 0) += v; }

double Ctm::Inflow(size_t i) const {
  ADPROM_CHECK_LT(i, sites_.size());
  return m_.ColSum(i + 1);
}

double Ctm::Outflow(size_t i) const {
  ADPROM_CHECK_LT(i, sites_.size());
  return m_.RowSum(i + 1);
}

util::Status Ctm::CheckInvariants(double tolerance) const {
  const double row_eps = m_.RowSum(0);
  if (std::fabs(row_eps - 1.0) > tolerance) {
    return util::Status::FailedPrecondition(util::StrFormat(
        "CTM(%s): entry row sums to %g, expected 1", function_.c_str(),
        row_eps));
  }
  const double col_eps = m_.ColSum(0);
  if (std::fabs(col_eps - 1.0) > tolerance) {
    return util::Status::FailedPrecondition(util::StrFormat(
        "CTM(%s): exit column sums to %g, expected 1", function_.c_str(),
        col_eps));
  }
  for (size_t i = 0; i < sites_.size(); ++i) {
    const double in = Inflow(i);
    const double out = Outflow(i);
    if (std::fabs(in - out) > tolerance) {
      return util::Status::FailedPrecondition(util::StrFormat(
          "CTM(%s): site %s inflow %g != outflow %g", function_.c_str(),
          sites_[i].Key().c_str(), in, out));
    }
  }
  return util::Status::Ok();
}

std::string Ctm::ToString(int precision) const {
  std::vector<std::string> header = {function_ + "()", "eps'"};
  for (const Site& site : sites_) header.push_back(site.observable);
  util::TablePrinter printer(std::move(header));

  auto render_row = [&](const std::string& name, size_t row) {
    std::vector<std::string> cells = {name};
    for (size_t c = 0; c < m_.cols(); ++c) {
      cells.push_back(util::StrFormat("%.*f", precision, m_.At(row, c)));
    }
    printer.AddRow(std::move(cells));
  };
  render_row("eps", 0);
  for (size_t i = 0; i < sites_.size(); ++i) {
    render_row(sites_[i].observable, i + 1);
  }
  return printer.ToString();
}

void Ctm::RemoveSite(size_t i) {
  ADPROM_CHECK_LT(i, sites_.size());
  util::Matrix shrunk(m_.rows() - 1, m_.cols() - 1);
  for (size_t r = 0, nr = 0; r < m_.rows(); ++r) {
    if (r == i + 1) continue;
    for (size_t c = 0, nc = 0; c < m_.cols(); ++c) {
      if (c == i + 1) continue;
      shrunk.At(nr, nc) = m_.At(r, c);
      ++nc;
    }
    ++nr;
  }
  m_ = std::move(shrunk);
  index_.erase(sites_[i].Key());
  sites_.erase(sites_.begin() + static_cast<long>(i));
  // Reindex the remaining sites.
  for (auto& [key, idx] : index_) {
    if (idx > i) --idx;
  }
}

}  // namespace adprom::analysis
