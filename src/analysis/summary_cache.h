#ifndef ADPROM_ANALYSIS_SUMMARY_CACHE_H_
#define ADPROM_ANALYSIS_SUMMARY_CACHE_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/aggregation.h"
#include "analysis/ctm.h"
#include "util/status.h"

namespace adprom::analysis {

/// Per-pass cache counters for one analysis run. `invalidated` counts the
/// lookups that found an entry for the function under a *different* key —
/// the function or one of its transitive dependencies changed — and is a
/// subset of `misses` (the rest are functions never seen before).
struct PassCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t invalidated = 0;
};

/// One run's counters for every incrementally cached pass. Aggregation keeps
/// its original `AggregationStats` (hit/miss only; its memo predates this).
struct AnalysisCacheStats {
  PassCacheStats taint;
  PassCacheStats absint;
  PassCacheStats ifds;
  PassCacheStats forecast;
};

// ---- Binary payload codec -------------------------------------------------
//
// Cache payloads are flat byte strings: each pass encodes its per-function
// summary with the writer below and decodes on a hit. Single-host format
// (native endianness/width); the disk file carries a version header and is
// rejected wholesale on any mismatch, so no cross-version decoding exists.

class BinaryWriter {
 public:
  void Raw(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }
  void U8(uint8_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void B(bool v) { U8(v ? 1 : 0); }
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader; any overrun clears ok() and yields zero values,
/// so a truncated payload is detected by a single check after decoding.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& buf) : buf_(&buf) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == buf_->size(); }

  bool Raw(void* out, size_t len) {
    if (!ok_ || buf_->size() - pos_ < len) {
      ok_ = false;
      std::memset(out, 0, len);
      return false;
    }
    std::memcpy(out, buf_->data() + pos_, len);
    pos_ += len;
    return true;
  }
  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  bool B() { return U8() != 0; }
  double F64() {
    const uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint64_t len = U64();
    if (!ok_ || buf_->size() - pos_ < len) {
      ok_ = false;
      return std::string();
    }
    std::string s(buf_->data() + pos_, len);
    pos_ += len;
    return s;
  }

 private:
  const std::string* buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Serde<T>: uniform Put/Get for the container shapes the passes cache.
template <typename T>
struct Serde;

template <>
struct Serde<bool> {
  static void Put(BinaryWriter& w, bool v) { w.B(v); }
  static bool Get(BinaryReader& r) { return r.B(); }
};
template <>
struct Serde<int> {
  static void Put(BinaryWriter& w, int v) { w.I32(v); }
  static int Get(BinaryReader& r) { return r.I32(); }
};
template <>
struct Serde<uint64_t> {
  static void Put(BinaryWriter& w, uint64_t v) { w.U64(v); }
  static uint64_t Get(BinaryReader& r) { return r.U64(); }
};
template <>
struct Serde<int64_t> {
  static void Put(BinaryWriter& w, int64_t v) { w.I64(v); }
  static int64_t Get(BinaryReader& r) { return r.I64(); }
};
template <>
struct Serde<double> {
  static void Put(BinaryWriter& w, double v) { w.F64(v); }
  static double Get(BinaryReader& r) { return r.F64(); }
};
template <>
struct Serde<std::string> {
  static void Put(BinaryWriter& w, const std::string& v) { w.Str(v); }
  static std::string Get(BinaryReader& r) { return r.Str(); }
};
template <typename A, typename B>
struct Serde<std::pair<A, B>> {
  static void Put(BinaryWriter& w, const std::pair<A, B>& v) {
    Serde<A>::Put(w, v.first);
    Serde<B>::Put(w, v.second);
  }
  static std::pair<A, B> Get(BinaryReader& r) {
    A a = Serde<A>::Get(r);
    B b = Serde<B>::Get(r);
    return {std::move(a), std::move(b)};
  }
};
template <typename T>
struct Serde<std::vector<T>> {
  static void Put(BinaryWriter& w, const std::vector<T>& v) {
    w.U64(v.size());
    for (const T& e : v) Serde<T>::Put(w, e);
  }
  static std::vector<T> Get(BinaryReader& r) {
    const uint64_t n = r.U64();
    std::vector<T> v;
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
      v.push_back(Serde<T>::Get(r));
    }
    return v;
  }
};
template <typename T>
struct Serde<std::set<T>> {
  static void Put(BinaryWriter& w, const std::set<T>& v) {
    w.U64(v.size());
    for (const T& e : v) Serde<T>::Put(w, e);
  }
  static std::set<T> Get(BinaryReader& r) {
    const uint64_t n = r.U64();
    std::set<T> v;
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
      v.insert(Serde<T>::Get(r));
    }
    return v;
  }
};
template <typename K, typename V>
struct Serde<std::map<K, V>> {
  static void Put(BinaryWriter& w, const std::map<K, V>& v) {
    w.U64(v.size());
    for (const auto& [key, value] : v) {
      Serde<K>::Put(w, key);
      Serde<V>::Put(w, value);
    }
  }
  static std::map<K, V> Get(BinaryReader& r) {
    const uint64_t n = r.U64();
    std::map<K, V> v;
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
      K key = Serde<K>::Get(r);
      v.emplace(std::move(key), Serde<V>::Get(r));
    }
    return v;
  }
};

template <typename T>
void Put(BinaryWriter& w, const T& v) {
  Serde<T>::Put(w, v);
}
template <typename T>
T Get(BinaryReader& r) {
  return Serde<T>::Get(r);
}

/// Exact (bit-identical) CTM codec, used by both the aggregation memo's disk
/// image and the per-function forecast cache.
void EncodeCtm(const Ctm& ctm, BinaryWriter* w);
Ctm DecodeCtm(BinaryReader* r);

// ---- Per-pass summary store -----------------------------------------------

/// One pass's cache: (config fingerprint, function name) → (Merkle key,
/// encoded payload). The fingerprint shards entries by pass options (lint's
/// injection and exfil passes reuse one store without colliding); the key is
/// the function's content hash chained through its dependencies, so a lookup
/// hits iff nothing the summary depends on changed. Lookup/Store are
/// thread-safe (the SCC-level solvers run under ParallelFor); everything
/// else is single-threaded orchestration.
class SummaryStore {
 public:
  struct Entry {
    uint64_t key = 0;
    std::string payload;
  };
  using Map = std::map<std::pair<uint64_t, std::string>, Entry>;

  /// On a key match copies the payload and counts a hit. On mismatch or
  /// absence counts a miss (mismatch also counts `invalidated`) and returns
  /// false. `stats` may be null.
  bool Lookup(uint64_t config_fp, const std::string& name, uint64_t key,
              std::string* payload, PassCacheStats* stats);
  void Store(uint64_t config_fp, const std::string& name, uint64_t key,
             std::string payload);
  /// Adds counters to `stats` under the store's lock. Engines use this for
  /// group decisions (recursive components hit or miss as a unit) because
  /// the run's stats object is shared across ParallelFor workers.
  void Count(PassCacheStats* stats, size_t hits, size_t misses,
             size_t invalidated);

  size_t size() const;
  void Clear();
  const Map& entries() const { return entries_; }
  Map& mutable_entries() { return entries_; }

 private:
  mutable std::mutex mu_;
  Map entries_;
};

/// Every incremental store plus the pCTM aggregation memo. One per
/// long-lived analyzer (core::Analyzer owns one) or per `--analysis-cache`
/// directory; a single cache may serve `analyze` and `lint` runs with
/// different configs side by side (fingerprint sharding).
struct AnalysisCache {
  SummaryStore taint;
  SummaryStore absint;
  SummaryStore ifds;
  SummaryStore forecast;
  AggregationCache aggregation;

  void Clear();
  /// Total entries across all stores (aggregation included).
  size_t TotalEntries() const;
};

// ---- Disk persistence -----------------------------------------------------

/// Bumped whenever any payload encoding or key derivation changes; a file
/// written by any other version is rejected wholesale (fail-closed), never
/// partially decoded.
inline constexpr uint32_t kAnalysisCacheVersion = 1;

/// Name of the cache image inside an `--analysis-cache` directory.
inline constexpr const char kAnalysisCacheFile[] = "analysis.cache";

/// Writes the whole cache to `<dir>/analysis.cache` (creating `dir` if
/// needed).
util::Status SaveAnalysisCache(const AnalysisCache& cache,
                               const std::string& dir);

/// Loads `<dir>/analysis.cache` into `cache` (replacing its contents).
/// A missing file is OK (leaves `cache` empty — a cold start); a present
/// file with a bad magic, version, or structure is an error and `cache` is
/// left empty — the caller must not warm-start from it.
util::Status LoadAnalysisCache(const std::string& dir, AnalysisCache* cache);

}  // namespace adprom::analysis

#endif  // ADPROM_ANALYSIS_SUMMARY_CACHE_H_
