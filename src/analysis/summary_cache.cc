#include "analysis/summary_cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace adprom::analysis {

namespace {

/// File magic: "ADPROMAC" as raw bytes, ahead of the version word.
constexpr char kMagic[8] = {'A', 'D', 'P', 'R', 'O', 'M', 'A', 'C'};

void EncodeSite(const Site& site, BinaryWriter* w) {
  w->Str(site.function);
  w->I32(site.block_id);
  w->Str(site.callee);
  w->B(site.is_user_fn);
  w->I32(site.call_site_id);
  w->B(site.labeled);
  w->Str(site.observable);
  w->F64(site.reachability);
  Put(*w, site.source_tables);
  Put(*w, site.source_columns);
}

Site DecodeSite(BinaryReader* r) {
  Site site;
  site.function = r->Str();
  site.block_id = r->I32();
  site.callee = r->Str();
  site.is_user_fn = r->B();
  site.call_site_id = r->I32();
  site.labeled = r->B();
  site.observable = r->Str();
  site.reachability = r->F64();
  site.source_tables = Get<std::vector<std::string>>(*r);
  site.source_columns = Get<std::vector<std::string>>(*r);
  return site;
}

void EncodeStore(const SummaryStore& store, BinaryWriter* w) {
  w->U64(store.entries().size());
  for (const auto& [id, entry] : store.entries()) {
    w->U64(id.first);
    w->Str(id.second);
    w->U64(entry.key);
    w->Str(entry.payload);
  }
}

void DecodeStore(BinaryReader* r, SummaryStore* store) {
  const uint64_t n = r->U64();
  for (uint64_t i = 0; i < n && r->ok(); ++i) {
    const uint64_t fp = r->U64();
    std::string name = r->Str();
    SummaryStore::Entry entry;
    entry.key = r->U64();
    entry.payload = r->Str();
    store->mutable_entries().emplace(
        std::make_pair(fp, std::move(name)), std::move(entry));
  }
}

}  // namespace

void EncodeCtm(const Ctm& ctm, BinaryWriter* w) {
  w->Str(ctm.function());
  const size_t n = ctm.num_sites();
  w->U64(n);
  for (size_t i = 0; i < n; ++i) EncodeSite(ctm.site(i), w);
  w->F64(ctm.entry_to_exit());
  for (size_t i = 0; i < n; ++i) {
    w->F64(ctm.entry_to(i));
    w->F64(ctm.to_exit(i));
    for (size_t j = 0; j < n; ++j) w->F64(ctm.between(i, j));
  }
}

Ctm DecodeCtm(BinaryReader* r) {
  Ctm ctm(r->Str());
  const uint64_t n = r->U64();
  for (uint64_t i = 0; i < n && r->ok(); ++i) ctm.AddSite(DecodeSite(r));
  if (!r->ok() || ctm.num_sites() != n) return ctm;
  ctm.set_entry_to_exit(r->F64());
  for (size_t i = 0; i < n; ++i) {
    ctm.set_entry_to(i, r->F64());
    ctm.set_to_exit(i, r->F64());
    for (size_t j = 0; j < n; ++j) ctm.set_between(i, j, r->F64());
  }
  return ctm;
}

bool SummaryStore::Lookup(uint64_t config_fp, const std::string& name,
                          uint64_t key, std::string* payload,
                          PassCacheStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(std::make_pair(config_fp, name));
  if (it != entries_.end() && it->second.key == key) {
    if (stats != nullptr) ++stats->hits;
    *payload = it->second.payload;
    return true;
  }
  if (stats != nullptr) {
    ++stats->misses;
    if (it != entries_.end()) ++stats->invalidated;
  }
  return false;
}

void SummaryStore::Count(PassCacheStats* stats, size_t hits, size_t misses,
                         size_t invalidated) {
  if (stats == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  stats->hits += hits;
  stats->misses += misses;
  stats->invalidated += invalidated;
}

void SummaryStore::Store(uint64_t config_fp, const std::string& name,
                         uint64_t key, std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[std::make_pair(config_fp, name)] = Entry{key, std::move(payload)};
}

size_t SummaryStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void SummaryStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

void AnalysisCache::Clear() {
  taint.Clear();
  absint.Clear();
  ifds.Clear();
  forecast.Clear();
  aggregation.entries().clear();
}

size_t AnalysisCache::TotalEntries() const {
  return taint.size() + absint.size() + ifds.size() + forecast.size() +
         aggregation.entries().size();
}

util::Status SaveAnalysisCache(const AnalysisCache& cache,
                               const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::Status::Internal("cannot create cache directory " + dir +
                                  ": " + ec.message());
  }
  BinaryWriter w;
  w.Raw(kMagic, sizeof(kMagic));
  w.U32(kAnalysisCacheVersion);
  EncodeStore(cache.taint, &w);
  EncodeStore(cache.absint, &w);
  EncodeStore(cache.ifds, &w);
  EncodeStore(cache.forecast, &w);
  w.U64(cache.aggregation.entries().size());
  for (const auto& [fn, entry] : cache.aggregation.entries()) {
    w.Str(fn);
    w.U64(entry.key);
    EncodeCtm(entry.aggregated, &w);
  }

  const std::string path = dir + "/" + kAnalysisCacheFile;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::Internal("cannot open cache file for writing: " +
                                  path);
  }
  out.write(w.buffer().data(),
            static_cast<std::streamsize>(w.buffer().size()));
  out.flush();
  if (!out) {
    return util::Status::Internal("short write to cache file: " + path);
  }
  return util::Status::Ok();
}

util::Status LoadAnalysisCache(const std::string& dir, AnalysisCache* cache) {
  cache->Clear();
  const std::string path = dir + "/" + kAnalysisCacheFile;
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::Ok();  // No image yet: a cold start.
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string buf = contents.str();

  BinaryReader r(buf);
  char magic[sizeof(kMagic)] = {};
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument("analysis cache " + path +
                                         ": bad magic (not a cache file)");
  }
  const uint32_t version = r.U32();
  if (version != kAnalysisCacheVersion) {
    return util::Status::InvalidArgument(
        "analysis cache " + path + ": version " + std::to_string(version) +
        " does not match expected " +
        std::to_string(kAnalysisCacheVersion) + "; refusing to warm-start");
  }
  DecodeStore(&r, &cache->taint);
  DecodeStore(&r, &cache->absint);
  DecodeStore(&r, &cache->ifds);
  DecodeStore(&r, &cache->forecast);
  const uint64_t agg_entries = r.U64();
  for (uint64_t i = 0; i < agg_entries && r.ok(); ++i) {
    std::string fn = r.Str();
    AggregationCache::Entry entry;
    entry.key = r.U64();
    entry.aggregated = DecodeCtm(&r);
    cache->aggregation.entries().emplace(std::move(fn), std::move(entry));
  }
  if (!r.ok() || !r.AtEnd()) {
    cache->Clear();
    return util::Status::InvalidArgument(
        "analysis cache " + path +
        ": truncated or trailing bytes; refusing to warm-start");
  }
  return util::Status::Ok();
}

}  // namespace adprom::analysis
