#ifndef ADPROM_ANALYSIS_CTM_H_
#define ADPROM_ANALYSIS_CTM_H_

#include <map>
#include <string>
#include <vector>

#include "util/matrix.h"
#include "util/status.h"

namespace adprom::analysis {

/// A call site tracked by a CTM. Two printf calls at different blocks are
/// distinct sites (the paper's printf' vs printf''); the *observable* both
/// emit at run time is just "printf" — unless the data-flow labeler marked
/// the site as outputting targeted data, in which case the observable is
/// "printf_Q<block>" and the site carries its DB provenance.
struct Site {
  std::string function;   // function the call is issued from
  int block_id = -1;      // CFG node id within that function
  std::string callee;     // called name (library function or user function)
  bool is_user_fn = false;
  int call_site_id = -1;  // program-unique AST id
  bool labeled = false;   // outputs targeted data (in the DDG)
  std::string observable; // symbol the Calls Collector emits for this site
  /// Local reachability P^r of the block inside `function` (conditional on
  /// the function being entered). Used by the aggregator when eliminating
  /// the site; meaningless for sites inlined from callees.
  double reachability = 0.0;
  /// DB tables this site's output data may come from (labeled sites only).
  std::vector<std::string> source_tables;
  /// Column-level provenance: sorted `table.column` names the site's
  /// sources can read, resolved from static query literals (and the
  /// schema catalog for `SELECT *`). Additive — empty when the
  /// column-taint pass is off, leaving the default pCTM unchanged.
  std::vector<std::string> source_columns;

  /// Unique identity of the site within a program.
  std::string Key() const;
};

/// A call-transition matrix: rows are {ε} ∪ sites, columns are
/// {ε'} ∪ sites. Entry (ε, s) is the probability the function's first call
/// is s; (s, ε') that s is the last call; (s, t) the paper's P^t transition
/// probability of the call pair s → t; (ε, ε') the weight of call-free
/// executions of the function.
class Ctm {
 public:
  Ctm() = default;
  explicit Ctm(std::string function) : function_(std::move(function)) {}

  const std::string& function() const { return function_; }
  size_t num_sites() const { return sites_.size(); }
  const std::vector<Site>& sites() const { return sites_; }
  const Site& site(size_t i) const { return sites_[i]; }
  Site& mutable_site(size_t i) { return sites_[i]; }

  /// Adds a site (probabilities initialized to zero) and returns its index.
  /// If a site with the same Key() exists, returns the existing index.
  size_t AddSite(Site site);

  /// Index lookup by site key; -1 if absent.
  int IndexOfKey(const std::string& key) const;

  /// Accessors. Indices are site indices in [0, num_sites()).
  double entry_to(size_t j) const;
  double to_exit(size_t i) const;
  double between(size_t i, size_t j) const;
  double entry_to_exit() const;
  void set_entry_to(size_t j, double v);
  void set_to_exit(size_t i, double v);
  void set_between(size_t i, size_t j, double v);
  void set_entry_to_exit(double v);
  void add_entry_to(size_t j, double v);
  void add_to_exit(size_t i, double v);
  void add_between(size_t i, size_t j, double v);
  void add_entry_to_exit(double v);

  /// Total inflow into site i: entry_to(i) + Σ_j between(j, i).
  double Inflow(size_t i) const;
  /// Total outflow from site i: to_exit(i) + Σ_j between(i, j).
  double Outflow(size_t i) const;

  /// Checks the paper's pCTM properties: the ε row sums to 1, the ε'
  /// column sums to 1, and each site's inflow equals its outflow.
  util::Status CheckInvariants(double tolerance = 1e-6) const;

  /// Pretty table (sites as rows/cols with ε/ε' borders).
  std::string ToString(int precision = 4) const;

  /// Removes site `i`, dropping its row and column (used after the
  /// aggregator has redistributed its probability mass).
  void RemoveSite(size_t i);

 private:
  // Matrix layout: (num_sites+1) x (num_sites+1); row 0 = ε, col 0 = ε';
  // row i+1 / col i+1 correspond to sites_[i].
  std::string function_;
  std::vector<Site> sites_;
  std::map<std::string, size_t> index_;
  util::Matrix m_{1, 1};
};

}  // namespace adprom::analysis

#endif  // ADPROM_ANALYSIS_CTM_H_
