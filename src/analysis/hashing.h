#ifndef ADPROM_ANALYSIS_HASHING_H_
#define ADPROM_ANALYSIS_HASHING_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace adprom::analysis {

// FNV-1a, the content-hash scheme the aggregation memo introduced; the
// incremental engine keys every per-function summary with it, so the
// constants and the length-prefixing discipline live here, shared.
inline constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr uint64_t kFnvPrime = 1099511628211ULL;
/// Mixed in for a callee whose combined key is not yet known at hash time,
/// i.e. a cyclic (recursive) call/dependency edge.
inline constexpr uint64_t kRecursionMarker = 0x9e3779b97f4a7c15ULL;

/// Incremental FNV-1a accumulator. Every variable-length field is hashed
/// length-first so adjacent fields cannot alias ({"ab","c"} vs {"a","bc"});
/// doubles are hashed by bit pattern so a key changes iff the value is not
/// bit-identical.
class Hasher {
 public:
  Hasher() = default;
  explicit Hasher(uint64_t seed) : h_(seed) {}

  Hasher& Bytes(const void* data, size_t len) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h_ ^= bytes[i];
      h_ *= kFnvPrime;
    }
    return *this;
  }
  Hasher& U64(uint64_t v) { return Bytes(&v, sizeof(v)); }
  Hasher& I64(int64_t v) { return U64(static_cast<uint64_t>(v)); }
  Hasher& Size(size_t v) { return U64(static_cast<uint64_t>(v)); }
  Hasher& Bool(bool v) { return U64(v ? 1 : 0); }
  Hasher& F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return U64(bits);
  }
  Hasher& Str(const std::string& s) {
    U64(s.size());
    return Bytes(s.data(), s.size());
  }

  uint64_t digest() const { return h_; }

 private:
  uint64_t h_ = kFnvOffset;
};

}  // namespace adprom::analysis

#endif  // ADPROM_ANALYSIS_HASHING_H_
