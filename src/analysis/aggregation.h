#ifndef ADPROM_ANALYSIS_AGGREGATION_H_
#define ADPROM_ANALYSIS_AGGREGATION_H_

#include <cstdint>
#include <map>
#include <string>

#include "analysis/ctm.h"
#include "prog/call_graph.h"
#include "util/status.h"

namespace adprom::analysis {

/// Hit/miss counters for the aggregation memo (one "function" per entry in
/// the reverse topological order).
struct AggregationStats {
  size_t functions = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
};

/// Memo of fully-aggregated per-function CTMs, keyed per function by a
/// Merkle-style content hash: the FNV-1a hash of the function's *own* CTM
/// mixed with the combined keys of its callees (so an edit anywhere in a
/// function's transitive callee set changes its key, while unrelated edits
/// leave it untouched and the cached elimination result is reused).
/// Owned by whoever re-analyzes the same program repeatedly (core::Analyzer
/// keeps one per instance); not thread-safe.
class AggregationCache {
 public:
  struct Entry {
    uint64_t key = 0;
    Ctm aggregated;
  };

  std::map<std::string, Entry>& entries() { return entries_; }
  const std::map<std::string, Entry>& entries() const { return entries_; }

 private:
  std::map<std::string, Entry> entries_;
};

/// Aggregates the per-function CTMs into the whole-program pCTM
/// (paper §IV-C3). Functions are inlined callee-first (reverse topological
/// order of the call graph); after inlining, every site that remains is a
/// library call.
///
/// Implementation note: the paper's four aggregation cases (eqs. 4-10) are
/// realized as repeated *elimination* of user-function call sites. When a
/// caller site s invoking callee f is eliminated:
///   - call-free pass-through (generalizes case 4):
///       m[r][c] += m[r][s] · f[ε][ε'] · m[s][c] / P^r(s)
///     (the division by the site's local reachability removes the double
///     counting in the paper's eq. 10, which is exact only when P^r = 1);
///   - case 1 (first calls of f):  m[r][f_k] += m[r][s] · f[ε][f_k];
///   - case 2 (last calls of f):   m[f_k][c] += f[f_k][ε'] · m[s][c];
///   - case 3 (pairs inside f):    m[f_k][f_l] += inflow(s) · f[f_k][f_l],
///     where inflow(s) is measured at elimination time, which also covers
///     chained invocations (the paper's Σ_i; its trailing P^t_{f,m_i}
///     factor in eqs. 8-9 is treated as a typo — keeping it breaks the
///     flow-conservation property the paper itself states for the pCTM).
/// Recursive call edges (cycles in the CG) are eliminated as opaque
/// pass-throughs with weight 1, matching the paper's "recursion is not
/// handled statically".
///
/// The result satisfies Ctm::CheckInvariants (the paper's three pCTM
/// properties) exactly, which the test suite asserts on every corpus
/// program.
///
/// When `cache` is non-null, each function whose content key matches the
/// cached entry skips the elimination and reuses the cached matrix (the
/// Ctm copy is bit-identical, so the returned pCTM is too); `stats`, when
/// non-null, receives the per-run hit/miss counts.
util::Result<Ctm> AggregateProgramCtm(
    const std::map<std::string, Ctm>& function_ctms,
    const prog::CallGraph& call_graph, AggregationCache* cache = nullptr,
    AggregationStats* stats = nullptr);

}  // namespace adprom::analysis

#endif  // ADPROM_ANALYSIS_AGGREGATION_H_
