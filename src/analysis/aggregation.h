#ifndef ADPROM_ANALYSIS_AGGREGATION_H_
#define ADPROM_ANALYSIS_AGGREGATION_H_

#include <map>
#include <string>

#include "analysis/ctm.h"
#include "prog/call_graph.h"
#include "util/status.h"

namespace adprom::analysis {

/// Aggregates the per-function CTMs into the whole-program pCTM
/// (paper §IV-C3). Functions are inlined callee-first (reverse topological
/// order of the call graph); after inlining, every site that remains is a
/// library call.
///
/// Implementation note: the paper's four aggregation cases (eqs. 4-10) are
/// realized as repeated *elimination* of user-function call sites. When a
/// caller site s invoking callee f is eliminated:
///   - call-free pass-through (generalizes case 4):
///       m[r][c] += m[r][s] · f[ε][ε'] · m[s][c] / P^r(s)
///     (the division by the site's local reachability removes the double
///     counting in the paper's eq. 10, which is exact only when P^r = 1);
///   - case 1 (first calls of f):  m[r][f_k] += m[r][s] · f[ε][f_k];
///   - case 2 (last calls of f):   m[f_k][c] += f[f_k][ε'] · m[s][c];
///   - case 3 (pairs inside f):    m[f_k][f_l] += inflow(s) · f[f_k][f_l],
///     where inflow(s) is measured at elimination time, which also covers
///     chained invocations (the paper's Σ_i; its trailing P^t_{f,m_i}
///     factor in eqs. 8-9 is treated as a typo — keeping it breaks the
///     flow-conservation property the paper itself states for the pCTM).
/// Recursive call edges (cycles in the CG) are eliminated as opaque
/// pass-throughs with weight 1, matching the paper's "recursion is not
/// handled statically".
///
/// The result satisfies Ctm::CheckInvariants (the paper's three pCTM
/// properties) exactly, which the test suite asserts on every corpus
/// program.
util::Result<Ctm> AggregateProgramCtm(
    const std::map<std::string, Ctm>& function_ctms,
    const prog::CallGraph& call_graph);

}  // namespace adprom::analysis

#endif  // ADPROM_ANALYSIS_AGGREGATION_H_
