#include "analysis/taint.h"

#include <vector>

namespace adprom::analysis {

namespace {

/// Mutable fixpoint state shared across the whole program.
struct TaintState {
  // function -> variable -> source call sites.
  std::map<std::string, std::map<std::string, std::set<int>>> vars;
  // function -> source call sites its return value may carry.
  std::map<std::string, std::set<int>> returns;
  // sink call_site_id -> source call sites.
  std::map<int, std::set<int>> sinks;
  bool changed = false;

  /// Merges `sources` into `into`; flags change.
  void Merge(std::set<int>* into, const std::set<int>& sources) {
    for (int s : sources) {
      if (into->insert(s).second) changed = true;
    }
  }
};

class TaintPass {
 public:
  TaintPass(const prog::Program& program, const TaintConfig& config,
            TaintState* state)
      : program_(program), config_(config), state_(state) {}

  void VisitFunction(const prog::FunctionDef& fn) {
    fn_ = &fn;
    VisitBody(fn.body);
  }

 private:
  void VisitBody(const prog::StmtList& body) {
    for (const auto& stmt : body) VisitStmt(*stmt);
  }

  void VisitStmt(const prog::Stmt& s) {
    switch (s.kind) {
      case prog::StmtKind::kVarDecl:
      case prog::StmtKind::kAssign: {
        const std::set<int> sources = EvalExpr(*s.expr);
        if (!sources.empty()) {
          state_->Merge(&state_->vars[fn_->name][s.target], sources);
        }
        return;
      }
      case prog::StmtKind::kIf:
        EvalExpr(*s.expr);  // Calls inside the condition still propagate.
        VisitBody(s.then_body);
        VisitBody(s.else_body);
        return;
      case prog::StmtKind::kWhile:
        EvalExpr(*s.expr);
        VisitBody(s.then_body);
        return;
      case prog::StmtKind::kReturn:
        if (s.expr != nullptr) {
          const std::set<int> sources = EvalExpr(*s.expr);
          if (!sources.empty()) {
            state_->Merge(&state_->returns[fn_->name], sources);
          }
        }
        return;
      case prog::StmtKind::kExpr:
        EvalExpr(*s.expr);
        return;
    }
  }

  /// Returns the source call sites whose data may flow into the value of
  /// `e`, recording sink observations and argument propagation on the way.
  std::set<int> EvalExpr(const prog::Expr& e) {
    switch (e.kind) {
      case prog::ExprKind::kIntLit:
      case prog::ExprKind::kRealLit:
      case prog::ExprKind::kStrLit:
        return {};
      case prog::ExprKind::kVar: {
        auto fn_it = state_->vars.find(fn_->name);
        if (fn_it == state_->vars.end()) return {};
        auto var_it = fn_it->second.find(e.name);
        if (var_it == fn_it->second.end()) return {};
        return var_it->second;
      }
      case prog::ExprKind::kBinary: {
        std::set<int> out = EvalExpr(*e.lhs);
        const std::set<int> rhs = EvalExpr(*e.rhs);
        out.insert(rhs.begin(), rhs.end());
        return out;
      }
      case prog::ExprKind::kUnary:
        return EvalExpr(*e.lhs);
      case prog::ExprKind::kCall:
        return EvalCall(e);
    }
    return {};
  }

  std::set<int> EvalCall(const prog::Expr& call) {
    std::vector<std::set<int>> arg_sources;
    arg_sources.reserve(call.args.size());
    std::set<int> merged_args;
    for (const auto& arg : call.args) {
      arg_sources.push_back(EvalExpr(*arg));
      merged_args.insert(arg_sources.back().begin(),
                         arg_sources.back().end());
    }

    if (program_.IsUserFunction(call.name)) {
      const prog::FunctionDef* callee = program_.FindFunction(call.name);
      // Propagate argument taint into the callee's parameters.
      for (size_t i = 0; i < arg_sources.size(); ++i) {
        if (arg_sources[i].empty()) continue;
        state_->Merge(&state_->vars[call.name][callee->params[i]],
                      arg_sources[i]);
      }
      auto ret_it = state_->returns.find(call.name);
      if (ret_it == state_->returns.end()) return {};
      return ret_it->second;
    }

    // Library call.
    if (config_.sink_calls.contains(call.name) && !merged_args.empty()) {
      state_->Merge(&state_->sinks[call.call_site_id], merged_args);
    }
    if (config_.source_calls.contains(call.name)) {
      // The call itself is a fresh source; its result also carries any
      // taint of its arguments (db_getvalue(result, ...) stays linked to
      // the db_query that produced `result`).
      std::set<int> out = merged_args;
      out.insert(call.call_site_id);
      return out;
    }
    // Other library calls (string helpers etc.) pass taint through.
    return merged_args;
  }

  const prog::Program& program_;
  const TaintConfig& config_;
  TaintState* state_;
  const prog::FunctionDef* fn_ = nullptr;
};

}  // namespace

TaintConfig TaintConfig::Default() {
  TaintConfig config;
  config.source_calls = {"db_query", "db_fetch_row", "db_getvalue",
                         "db_ntuples", "row_get"};
  config.sink_calls = {"print", "print_err", "write_file", "fprint",
                       "send_net", "send_file"};
  return config;
}

util::Result<TaintResult> RunTaintAnalysis(const prog::Program& program,
                                           const TaintConfig& config) {
  if (!program.finalized()) {
    return util::Status::FailedPrecondition(
        "program must be finalized before taint analysis");
  }
  TaintState state;
  // Fixpoint: re-run passes until nothing new is tainted. Each pass is
  // monotone over a finite lattice, so this terminates.
  constexpr int kMaxPasses = 64;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    state.changed = false;
    TaintPass visitor(program, config, &state);
    for (const prog::FunctionDef& fn : program.functions()) {
      visitor.VisitFunction(fn);
    }
    if (!state.changed) break;
  }
  TaintResult result;
  result.labeled_sinks = std::move(state.sinks);
  result.tainted_vars = std::move(state.vars);
  return std::move(result);
}

}  // namespace adprom::analysis
