#include "analysis/absint/abstract_value.h"

#include <utility>

#include "util/strings.h"

namespace adprom::analysis::absint {

AbsValue AbsValue::Int(Interval iv) {
  AbsValue v;
  if (iv.IsTop()) return v;  // a full-range integer adds no information
  v.kind_ = Kind::kInt;
  v.interval_ = iv;
  return v;
}

AbsValue AbsValue::RealConstant(double value) {
  AbsValue v;
  v.kind_ = Kind::kRealConst;
  v.real_ = value;
  return v;
}

AbsValue AbsValue::StrConstant(std::string value) {
  AbsValue v;
  v.kind_ = Kind::kStrConst;
  v.str_ = std::move(value);
  return v;
}

AbsValue AbsValue::Null() {
  AbsValue v;
  v.kind_ = Kind::kNull;
  return v;
}

AbsValue AbsValue::DbResult(int columns) {
  AbsValue v;
  v.kind_ = Kind::kDbResult;
  v.db_columns_ = columns;
  return v;
}

AbsValue AbsValue::Join(const AbsValue& other) const {
  if (kind_ != other.kind_) return Top();
  switch (kind_) {
    case Kind::kTop:
      return Top();
    case Kind::kInt:
      return Int(interval_.Join(other.interval_));
    case Kind::kRealConst:
      return real_ == other.real_ ? *this : Top();
    case Kind::kStrConst:
      return str_ == other.str_ ? *this : Top();
    case Kind::kNull:
      return *this;
    case Kind::kDbResult:
      return DbResult(db_columns_ == other.db_columns_ ? db_columns_ : -1);
  }
  return Top();
}

Tri AbsValue::Truthiness() const {
  switch (kind_) {
    case Kind::kTop:
      return Tri::kUnknown;
    case Kind::kInt:
      if (interval_ == Interval::Constant(0)) return Tri::kFalse;
      if (!interval_.ContainsZero()) return Tri::kTrue;
      return Tri::kUnknown;
    case Kind::kRealConst:
      return real_ != 0.0 ? Tri::kTrue : Tri::kFalse;
    case Kind::kStrConst:
      return str_.empty() ? Tri::kFalse : Tri::kTrue;
    case Kind::kNull:
      return Tri::kFalse;
    case Kind::kDbResult:
      // db_query returns the null sentinel when the SQL fails
      // (mysql_query error-code semantics), so a result value is
      // "handle or null" and its truthiness cannot be decided.
      return Tri::kUnknown;
  }
  return Tri::kUnknown;
}

Interval AbsValue::AsIntRange() const {
  switch (kind_) {
    case Kind::kTop:
      return Interval::Top();
    case Kind::kInt:
      return interval_;
    default:
      return Interval::Empty();
  }
}

std::string AbsValue::ToString() const {
  switch (kind_) {
    case Kind::kTop:
      return "top";
    case Kind::kInt:
      return interval_.ToString();
    case Kind::kRealConst:
      return util::StrFormat("%g", real_);
    case Kind::kStrConst:
      return "\"" + str_ + "\"";
    case Kind::kNull:
      return "null";
    case Kind::kDbResult:
      return db_columns_ >= 0
                 ? util::StrFormat("db_result(%d cols)", db_columns_)
                 : "db_result";
  }
  return "top";
}

}  // namespace adprom::analysis::absint
