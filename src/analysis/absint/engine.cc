#include "analysis/absint/engine.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <set>
#include <utility>

#include "analysis/absint/replay.h"
#include "analysis/dataflow/flow_graph.h"
#include "analysis/dataflow/solver.h"
#include "analysis/hashing.h"
#include "analysis/incremental.h"
#include "prog/scc.h"
#include "util/logging.h"
#include "util/strings.h"

namespace adprom::analysis {

/// Exact AbsValue codec. Every stored value was built through the public
/// factories, and decoding goes back through them, so round-trips preserve
/// operator== (which compares all fields, including the ones a kind
/// ignores — the factories zero those deterministically).
template <>
struct Serde<absint::AbsValue> {
  static void Put(BinaryWriter& w, const absint::AbsValue& v) {
    using Kind = absint::AbsValue::Kind;
    w.U8(static_cast<uint8_t>(v.kind()));
    switch (v.kind()) {
      case Kind::kTop:
      case Kind::kNull:
        break;
      case Kind::kInt:
        w.I64(v.interval().lo());
        w.I64(v.interval().hi());
        break;
      case Kind::kRealConst:
        w.F64(v.real_value());
        break;
      case Kind::kStrConst:
        w.Str(v.str_value());
        break;
      case Kind::kDbResult:
        w.I32(v.db_columns());
        break;
    }
  }
  static absint::AbsValue Get(BinaryReader& r) {
    using Kind = absint::AbsValue::Kind;
    switch (static_cast<Kind>(r.U8())) {
      case Kind::kTop:
        break;
      case Kind::kNull:
        return absint::AbsValue::Null();
      case Kind::kInt: {
        const int64_t lo = r.I64();
        const int64_t hi = r.I64();
        return absint::AbsValue::Int(absint::Interval(lo, hi));
      }
      case Kind::kRealConst:
        return absint::AbsValue::RealConstant(r.F64());
      case Kind::kStrConst:
        return absint::AbsValue::StrConstant(r.Str());
      case Kind::kDbResult:
        return absint::AbsValue::DbResult(r.I32());
    }
    return absint::AbsValue::Top();
  }
};

}  // namespace adprom::analysis

namespace adprom::analysis::absint {

namespace {

using dataflow::FlowGraph;
using dataflow::FlowNode;
using dataflow::FlowOp;

/// The dataflow client: forward abstract interpretation with branch-edge
/// refinement and delayed widening at loop heads.
class AbsintClient {
 public:
  using Domain = AbsState;

  AbsintClient(const FlowGraph& graph,
               const std::map<std::string, AbsValue>* user_fn_returns,
               std::map<std::string, AbsValue> param_values, int widen_delay)
      : user_fn_returns_(*user_fn_returns),
        param_values_(std::move(param_values)),
        widen_delay_(widen_delay),
        loop_head_joins_(graph.size(), 0) {}

  Domain Boundary() const {
    Domain d;
    d.reachable = true;
    for (const auto& [name, value] : param_values_) {
      if (!value.IsTop()) d.vars[name] = value;
    }
    return d;
  }

  void Join(Domain* into, const Domain& from) const { JoinInto(into, from); }

  Domain Transfer(const FlowNode& node, const Domain& in) {
    if (!in.reachable) return in;
    if (node.op != FlowOp::kDef) return in;
    Domain out = in;
    const AbsValue v = EvalExpr(*node.expr, in, user_fn_returns_);
    if (v.IsTop()) {
      out.vars.erase(node.def);
    } else {
      out.vars[node.def] = v;
    }
    return out;
  }

  Domain TransferEdge(const FlowNode& pred, int to_id,
                      const Domain& out) const {
    if (!out.reachable || pred.op != FlowOp::kBranch ||
        pred.expr == nullptr || pred.true_succ == pred.false_succ) {
      return out;
    }
    bool assume = false;
    if (to_id == pred.true_succ) {
      assume = true;
    } else if (to_id != pred.false_succ) {
      return out;
    }
    Domain refined = out;
    if (!AssumeCondition(*pred.expr, assume, &refined, user_fn_returns_)) {
      return Domain{};  // infeasible edge contributes bottom
    }
    return refined;
  }

  Domain WidenJoin(const FlowNode& node, const Domain& previous,
                   const Domain& joined) {
    if (!node.is_loop_head) return joined;
    const int visits = ++loop_head_joins_[static_cast<size_t>(node.id)];
    if (visits <= widen_delay_ || !previous.reachable || !joined.reachable) {
      return joined;
    }
    Domain widened = joined;
    for (auto& [name, value] : widened.vars) {
      auto prev = previous.vars.find(name);
      if (prev == previous.vars.end()) continue;
      if (value.kind() == AbsValue::Kind::kInt &&
          prev->second.kind() == AbsValue::Kind::kInt) {
        const Interval w = value.interval().WidenFrom(prev->second.interval());
        value = AbsValue::Int(w);
      }
    }
    // Erase values that widened all the way to top so state equality
    // keeps meaning lattice equality.
    for (auto it = widened.vars.begin(); it != widened.vars.end();) {
      if (it->second.IsTop()) {
        it = widened.vars.erase(it);
      } else {
        ++it;
      }
    }
    return widened;
  }

  const std::map<std::string, AbsValue>& returns() const {
    return user_fn_returns_;
  }

 private:
  const std::map<std::string, AbsValue>& user_fn_returns_;
  std::map<std::string, AbsValue> param_values_;
  int widen_delay_;
  std::vector<int> loop_head_joins_;
};

using Solved = dataflow::SolveResult<AbsintClient>;

/// One descending (narrowing) sweep in reverse post-order: every in-state
/// is recomputed from the current out-states without widening and every
/// out-state re-transferred. From a post-fixpoint this stays above the
/// least fixpoint (transfer is monotone), so the tightened states remain
/// sound while shedding most of the widening's precision loss.
void NarrowingSweep(const FlowGraph& graph, AbsintClient* client,
                    Solved* solved) {
  for (int id : graph.ReversePostOrder()) {
    const FlowNode& node = graph.node(id);
    AbsState in;
    if (id == graph.entry_id()) client->Join(&in, client->Boundary());
    for (int from : node.preds) {
      const AbsState& from_out =
          solved->states[static_cast<size_t>(from)].out;
      client->Join(&in, client->TransferEdge(graph.node(from), id, from_out));
    }
    auto& slot = solved->states[static_cast<size_t>(id)];
    slot.in = std::move(in);
    slot.out = client->Transfer(node, slot.in);
  }
}

// --- Counted-loop trip-count analysis ----------------------------------

/// Counts assignments (kAssign or kVarDecl) to `name` in `body`,
/// recursively.
void CountAssignments(const prog::StmtList& body, const std::string& name,
                      int* count) {
  for (const auto& stmt : body) {
    if ((stmt->kind == prog::StmtKind::kAssign ||
         stmt->kind == prog::StmtKind::kVarDecl) &&
        stmt->target == name) {
      ++(*count);
    }
    CountAssignments(stmt->then_body, name, count);
    CountAssignments(stmt->else_body, name, count);
  }
}

bool BodyContainsReturn(const prog::StmtList& body) {
  for (const auto& stmt : body) {
    if (stmt->kind == prog::StmtKind::kReturn) return true;
    if (BodyContainsReturn(stmt->then_body)) return true;
    if (BodyContainsReturn(stmt->else_body)) return true;
  }
  return false;
}

void CollectAssignedVars(const prog::StmtList& body,
                         std::set<std::string>* out) {
  for (const auto& stmt : body) {
    if (stmt->kind == prog::StmtKind::kAssign ||
        stmt->kind == prog::StmtKind::kVarDecl) {
      out->insert(stmt->target);
    }
    CollectAssignedVars(stmt->then_body, out);
    CollectAssignedVars(stmt->else_body, out);
  }
}

bool ExprContainsCall(const prog::Expr& e) {
  if (e.kind == prog::ExprKind::kCall) return true;
  if (e.lhs != nullptr && ExprContainsCall(*e.lhs)) return true;
  if (e.rhs != nullptr && ExprContainsCall(*e.rhs)) return true;
  for (const auto& arg : e.args) {
    if (ExprContainsCall(*arg)) return true;
  }
  return false;
}

/// Matches `i = i + c`, `i = c + i`, `i = i - c` (c a non-zero integer
/// literal) and returns the signed step.
bool MatchCounterStep(const prog::Stmt& s, const std::string& var,
                      int64_t* step) {
  if (s.kind != prog::StmtKind::kAssign || s.target != var ||
      s.expr == nullptr || s.expr->kind != prog::ExprKind::kBinary) {
    return false;
  }
  const prog::Expr& e = *s.expr;
  const bool add = e.bin_op == prog::BinOp::kAdd;
  const bool sub = e.bin_op == prog::BinOp::kSub;
  if (!add && !sub) return false;
  const prog::Expr* lit_side = nullptr;
  if (e.lhs->kind == prog::ExprKind::kVar && e.lhs->name == var &&
      e.rhs->kind == prog::ExprKind::kIntLit) {
    lit_side = e.rhs.get();
  } else if (add && e.rhs->kind == prog::ExprKind::kVar &&
             e.rhs->name == var && e.lhs->kind == prog::ExprKind::kIntLit) {
    lit_side = e.lhs.get();
  } else {
    return false;
  }
  const int64_t c = lit_side->int_value;
  if (c == 0) return false;
  *step = sub ? -c : c;
  return true;
}

/// Exact trip count of `while (i REL bound) { ...; i = i +/- c; }` given
/// the state on the loop-entry edge. Returns -1 when the pattern does not
/// apply or the count exceeds `max_trip_count`. Zero-trip loops are
/// reported as 0 (the caller already knows `entered` separately).
int64_t ComputeTripCount(const prog::Stmt& loop, const AbsState& entry_state,
                         const std::map<std::string, AbsValue>& returns,
                         int64_t max_trip_count) {
  if (loop.expr == nullptr || loop.expr->kind != prog::ExprKind::kBinary) {
    return -1;
  }
  const prog::Expr& cond = *loop.expr;
  prog::BinOp rel = cond.bin_op;
  const prog::Expr* var_expr = nullptr;
  const prog::Expr* bound_expr = nullptr;
  if (cond.lhs->kind == prog::ExprKind::kVar) {
    var_expr = cond.lhs.get();
    bound_expr = cond.rhs.get();
  } else if (cond.rhs->kind == prog::ExprKind::kVar) {
    var_expr = cond.rhs.get();
    bound_expr = cond.lhs.get();
    rel = MirrorRel(rel);
  } else {
    return -1;
  }
  if (rel != prog::BinOp::kLt && rel != prog::BinOp::kLe &&
      rel != prog::BinOp::kGt && rel != prog::BinOp::kGe) {
    return -1;
  }
  const std::string& var = var_expr->name;
  if (ExprContainsCall(*bound_expr)) return -1;

  // The bound must be loop-invariant: none of its variables are assigned
  // in the body, and it folds to an integer constant on entry.
  std::set<std::string> assigned;
  CollectAssignedVars(loop.then_body, &assigned);
  std::vector<std::string> bound_reads;
  dataflow::CollectVarReads(*bound_expr, &bound_reads);
  for (const std::string& read : bound_reads) {
    if (assigned.contains(read)) return -1;
  }
  const AbsValue bound_value = EvalExpr(*bound_expr, entry_state, returns);
  if (!bound_value.IsIntConstant()) return -1;
  const int64_t bound = bound_value.int_constant();

  const AbsValue init_value = EvalExpr(*var_expr, entry_state, returns);
  if (!init_value.IsIntConstant()) return -1;
  const int64_t init = init_value.int_constant();

  // Exactly one update of the counter, as a top-level body statement.
  int assignments = 0;
  CountAssignments(loop.then_body, var, &assignments);
  if (assignments != 1) return -1;
  int64_t step = 0;
  bool top_level = false;
  for (const auto& stmt : loop.then_body) {
    if (MatchCounterStep(*stmt, var, &step)) top_level = true;
  }
  if (!top_level) return -1;
  if (BodyContainsReturn(loop.then_body)) return -1;

  const bool upward = rel == prog::BinOp::kLt || rel == prog::BinOp::kLe;
  if (upward && step <= 0) return -1;
  if (!upward && step >= 0) return -1;

  // All quantities fit easily in __int128, so no overflow anywhere.
  const __int128 distance = upward
                                ? static_cast<__int128>(bound) - init
                                : static_cast<__int128>(init) - bound;
  const __int128 magnitude = step < 0 ? -static_cast<__int128>(step) : step;
  __int128 count = 0;
  if (rel == prog::BinOp::kLt || rel == prog::BinOp::kGt) {
    count = distance <= 0 ? 0 : (distance + magnitude - 1) / magnitude;
  } else {
    count = distance < 0 ? 0 : distance / magnitude + 1;
  }
  if (count > max_trip_count) return -1;
  return static_cast<int64_t>(count);
}

// --- Diagnostics -------------------------------------------------------

/// Walks `e` recursively, evaluating subexpressions against `state` and
/// recording division-by-zero and constant out-of-bounds findings.
/// Short-circuit operands are checked under the refined state their
/// evaluation is guarded by (`a != 0 && x / a` stays clean).
void CollectExprDiagnostics(const prog::Expr& e, const AbsState& state,
                            const std::map<std::string, AbsValue>& returns,
                            const std::string& function, int fallback_line,
                            std::vector<Diagnostic>* out) {
  // Only primary expressions carry a source line; operators report the
  // line of the statement that evaluates them.
  const int line = e.line > 0 ? e.line : fallback_line;
  switch (e.kind) {
    case prog::ExprKind::kIntLit:
    case prog::ExprKind::kRealLit:
    case prog::ExprKind::kStrLit:
    case prog::ExprKind::kVar:
      return;
    case prog::ExprKind::kUnary:
      CollectExprDiagnostics(*e.lhs, state, returns, function, line, out);
      return;
    case prog::ExprKind::kBinary: {
      CollectExprDiagnostics(*e.lhs, state, returns, function, line, out);
      if (e.bin_op == prog::BinOp::kAnd || e.bin_op == prog::BinOp::kOr) {
        AbsState guarded = state;
        const bool assume = e.bin_op == prog::BinOp::kAnd;
        if (!AssumeCondition(*e.lhs, assume, &guarded, returns)) {
          return;  // the right operand can never be evaluated
        }
        CollectExprDiagnostics(*e.rhs, guarded, returns, function, line, out);
        return;
      }
      CollectExprDiagnostics(*e.rhs, state, returns, function, line, out);
      if (e.bin_op != prog::BinOp::kDiv && e.bin_op != prog::BinOp::kMod) {
        return;
      }
      const AbsValue divisor = EvalExpr(*e.rhs, state, returns);
      const char* op_name = e.bin_op == prog::BinOp::kDiv ? "/" : "%";
      if (divisor.kind() == AbsValue::Kind::kInt) {
        const Interval range = divisor.interval();
        if (range == Interval::Constant(0)) {
          out->push_back(
              {"div-by-zero", function, line,
               util::StrFormat("right operand of '%s' is always zero",
                               op_name)});
        } else if (range.ContainsZero() && !range.IsTop()) {
          out->push_back(
              {"div-by-zero", function, line,
               util::StrFormat("right operand of '%s' can be zero (range %s)",
                               op_name, range.ToString().c_str())});
        }
      } else if (divisor.kind() == AbsValue::Kind::kRealConst &&
                 divisor.real_value() == 0.0 &&
                 e.bin_op == prog::BinOp::kMod) {
        out->push_back({"div-by-zero", function, line,
                        "right operand of '%' is always zero"});
      }
      return;
    }
    case prog::ExprKind::kCall: {
      for (const auto& arg : e.args) {
        CollectExprDiagnostics(*arg, state, returns, function, line, out);
      }
      if (e.name == "db_getvalue" && e.args.size() == 3) {
        const AbsValue result = EvalExpr(*e.args[0], state, returns);
        const AbsValue row = EvalExpr(*e.args[1], state, returns);
        const AbsValue col = EvalExpr(*e.args[2], state, returns);
        if (row.IsIntConstant() && row.int_constant() < 0) {
          out->push_back(
              {"const-index-oob", function, line,
               util::StrFormat("db_getvalue row index %lld is negative",
                               (long long)row.int_constant())});
        }
        if (col.IsIntConstant()) {
          const int64_t c = col.int_constant();
          const int columns =
              result.kind() == AbsValue::Kind::kDbResult
                  ? result.db_columns()
                  : -1;
          if (c < 0) {
            out->push_back(
                {"const-index-oob", function, line,
                 util::StrFormat("db_getvalue column index %lld is negative",
                                 (long long)c)});
          } else if (columns >= 0 && c >= columns) {
            out->push_back(
                {"const-index-oob", function, line,
                 util::StrFormat("db_getvalue column index %lld is out of "
                                 "range for a query producing %d column%s",
                                 (long long)c, columns,
                                 columns == 1 ? "" : "s")});
          }
        }
      }
      if (e.name == "row_get" && e.args.size() == 2) {
        const AbsValue index = EvalExpr(*e.args[1], state, returns);
        if (index.IsIntConstant() && index.int_constant() < 0) {
          out->push_back(
              {"const-index-oob", function, line,
               util::StrFormat("row_get index %lld is negative",
                               (long long)index.int_constant())});
        }
      }
      return;
    }
  }
}

// --- Per-function analysis --------------------------------------------

struct FunctionAnalysis {
  FunctionAbsint facts;
  /// Joined abstract argument values per user callee, in call-site order.
  std::map<std::string, std::vector<AbsValue>> callee_args;
};

bool IsLiteralCondition(const prog::Expr& e) {
  return e.kind == prog::ExprKind::kIntLit ||
         e.kind == prog::ExprKind::kRealLit ||
         e.kind == prog::ExprKind::kStrLit;
}

/// Solves one function to fixpoint (with narrowing) and extracts branch
/// facts, diagnostics, the return summary and callee argument facts.
FunctionAnalysis AnalyzeFunction(
    const prog::FunctionDef& fn, const FlowGraph& graph,
    const std::map<std::string, AbsValue>& user_fn_returns,
    const std::map<std::string, AbsValue>& param_values,
    const std::map<std::string, size_t>& user_fn_arity,
    const AbsintOptions& options) {
  AbsintClient client(graph, &user_fn_returns, param_values,
                      options.widen_delay);
  Solved solved = dataflow::Solve(graph, dataflow::Direction::kForward,
                                  &client);
  NarrowingSweep(graph, &client, &solved);

  FunctionAnalysis out;

  // Branch facts, in node order (== program order for a structured AST).
  for (const FlowNode& node : graph.nodes()) {
    if (node.op != FlowOp::kBranch || node.expr == nullptr) continue;
    const AbsState& in = solved.states[static_cast<size_t>(node.id)].in;
    if (!in.reachable) continue;
    BranchFact fact;
    fact.stmt = node.stmt;
    fact.is_loop = node.stmt->kind == prog::StmtKind::kWhile;
    fact.line = node.line;
    fact.condition_is_literal = IsLiteralCondition(*node.expr);
    fact.verdict = EvalExpr(*node.expr, in, user_fn_returns).Truthiness();
    if (fact.is_loop) {
      // The first-iteration state flows in over the loop-entry edge: the
      // header's predecessors minus the back edge.
      ADPROM_CHECK_EQ(node.preds.size(), 1u);
      const FlowNode& header = graph.node(node.preds[0]);
      AbsState entry;
      for (int from : header.preds) {
        if (from == header.loop_back_pred) continue;
        client.Join(&entry,
                    client.TransferEdge(
                        graph.node(from), header.id,
                        solved.states[static_cast<size_t>(from)].out));
      }
      if (graph.entry_id() == header.id) {
        client.Join(&entry, client.Boundary());
      }
      if (entry.reachable) {
        fact.entered =
            EvalExpr(*node.expr, entry, user_fn_returns).Truthiness() ==
            Tri::kTrue;
        const int64_t k = ComputeTripCount(*node.stmt, entry, user_fn_returns,
                                           options.max_trip_count);
        if (k >= 1) fact.trip_count = k;
        if (k == 0) fact.verdict = Tri::kFalse;  // never entered, never true
      }
    }
    out.facts.branches.push_back(fact);
  }

  // Diagnostics for every reachable evaluated expression.
  for (const FlowNode& node : graph.nodes()) {
    if (node.expr == nullptr) continue;
    const AbsState& in = solved.states[static_cast<size_t>(node.id)].in;
    if (!in.reachable) continue;
    CollectExprDiagnostics(*node.expr, in, user_fn_returns, fn.name,
                           node.line, &out.facts.diagnostics);
  }

  // Return summary: join over everything flowing into the exit node.
  bool any_return = false;
  AbsValue summary;
  auto add_return = [&](const AbsValue& v) {
    summary = any_return ? summary.Join(v) : v;
    any_return = true;
  };
  for (int from : graph.node(graph.exit_id()).preds) {
    const FlowNode& pred = graph.node(from);
    const AbsState& pred_in = solved.states[static_cast<size_t>(from)].in;
    if (!pred_in.reachable) continue;
    if (pred.op == FlowOp::kReturn && pred.expr != nullptr) {
      add_return(EvalExpr(*pred.expr, pred_in, user_fn_returns));
    } else {
      add_return(AbsValue::Null());  // bare return / fall off the end
    }
  }
  out.facts.return_value = any_return ? summary : AbsValue::Top();

  // Joined abstract arguments per user callee (for phase 2), visiting
  // call sites in node order for determinism.
  for (const FlowNode& node : graph.nodes()) {
    if (node.expr == nullptr) continue;
    const AbsState& in = solved.states[static_cast<size_t>(node.id)].in;
    if (!in.reachable) continue;
    std::vector<const prog::Expr*> calls;
    prog::CollectCalls(*node.expr, &calls);
    for (const prog::Expr* call : calls) {
      auto arity = user_fn_arity.find(call->name);
      if (arity == user_fn_arity.end()) continue;
      const auto [slot, first_site] = out.callee_args.try_emplace(
          call->name,
          std::vector<AbsValue>(arity->second, AbsValue::Top()));
      std::vector<AbsValue>& joined = slot->second;
      for (size_t i = 0; i < joined.size(); ++i) {
        const AbsValue arg = i < call->args.size()
                                 ? EvalExpr(*call->args[i], in,
                                            user_fn_returns)
                                 : AbsValue::Null();
        joined[i] = first_site ? arg : joined[i].Join(arg);
      }
    }
  }
  return out;
}

// --- Incremental summary cache ----------------------------------------

uint64_t HashAbsValue(const AbsValue& v) {
  BinaryWriter w;
  Put(w, v);
  return Hasher().Str(w.buffer()).digest();
}

/// Branch facts are stored with their FlowGraph node id (facts skip
/// unreachable branches, so a positional zip against the graph's branch
/// nodes would mis-bind) and the `stmt` pointer is re-bound on decode.
/// Keys include the body hash, so a hit's graph is structurally identical
/// to the one the payload was encoded against.
void EncodeFunctionAnalysis(const FunctionAnalysis& analysis,
                            const FlowGraph& graph, BinaryWriter* w) {
  w->U64(analysis.facts.branches.size());
  size_t next = 0;
  for (const FlowNode& node : graph.nodes()) {
    if (next >= analysis.facts.branches.size()) break;
    if (node.op != FlowOp::kBranch) continue;
    const BranchFact& fact = analysis.facts.branches[next];
    if (node.stmt != fact.stmt) continue;  // branch was unreachable
    ++next;
    w->U32(static_cast<uint32_t>(node.id));
    w->B(fact.is_loop);
    w->I32(fact.line);
    w->B(fact.condition_is_literal);
    w->U8(static_cast<uint8_t>(fact.verdict));
    w->B(fact.entered);
    w->I64(fact.trip_count);
  }
  ADPROM_CHECK_EQ(next, analysis.facts.branches.size());
  w->U64(analysis.facts.diagnostics.size());
  for (const Diagnostic& d : analysis.facts.diagnostics) {
    w->Str(d.category);
    w->Str(d.function);
    w->I32(d.line);
    w->Str(d.message);
  }
  Put(*w, analysis.facts.return_value);
  Put(*w, analysis.callee_args);
}

bool DecodeFunctionAnalysis(const std::string& payload,
                            const FlowGraph& graph,
                            FunctionAnalysis* analysis) {
  BinaryReader r(payload);
  const uint64_t num_branches = r.U64();
  for (uint64_t i = 0; i < num_branches && r.ok(); ++i) {
    const uint32_t node_id = r.U32();
    if (node_id >= graph.size()) return false;
    BranchFact fact;
    fact.stmt = graph.node(static_cast<int>(node_id)).stmt;
    fact.is_loop = r.B();
    fact.line = r.I32();
    fact.condition_is_literal = r.B();
    fact.verdict = static_cast<Tri>(r.U8());
    fact.entered = r.B();
    fact.trip_count = r.I64();
    analysis->facts.branches.push_back(fact);
  }
  const uint64_t num_diagnostics = r.U64();
  for (uint64_t i = 0; i < num_diagnostics && r.ok(); ++i) {
    Diagnostic d;
    d.category = r.Str();
    d.function = r.Str();
    d.line = r.I32();
    d.message = r.Str();
    analysis->facts.diagnostics.push_back(std::move(d));
  }
  analysis->facts.return_value = Get<AbsValue>(r);
  analysis->callee_args = Get<std::map<std::string, std::vector<AbsValue>>>(r);
  return r.ok() && r.AtEnd();
}

}  // namespace

size_t AbsintResult::NumInfeasibleBranches() const {
  size_t count = 0;
  for (const auto& [name, fn] : functions) {
    (void)name;
    for (const BranchFact& fact : fn.branches) {
      if (fact.verdict != Tri::kUnknown) ++count;
    }
  }
  return count;
}

size_t AbsintResult::NumBoundedLoops() const {
  size_t count = 0;
  for (const auto& [name, fn] : functions) {
    (void)name;
    for (const BranchFact& fact : fn.branches) {
      if (fact.is_loop && fact.trip_count >= 1) ++count;
    }
  }
  return count;
}

int CountSelectColumns(const std::string& sql) {
  size_t pos = 0;
  while (pos < sql.size() && std::isspace(static_cast<unsigned char>(sql[pos]))) {
    ++pos;
  }
  auto matches = [&](const char* word) {
    const size_t len = std::strlen(word);
    if (pos + len > sql.size()) return false;
    for (size_t i = 0; i < len; ++i) {
      if (std::tolower(static_cast<unsigned char>(sql[pos + i])) != word[i]) {
        return false;
      }
    }
    return pos + len == sql.size() ||
           std::isspace(static_cast<unsigned char>(sql[pos + len]));
  };
  if (!matches("select")) return -1;
  pos += 6;

  int depth = 0;
  int columns = 1;
  bool saw_item = false;
  for (; pos < sql.size(); ++pos) {
    const char c = sql[pos];
    if (c == '(') ++depth;
    else if (c == ')') --depth;
    else if (depth == 0) {
      if (c == '*') {
        // `SELECT *` (or `t.*`) — column count depends on the schema.
        return -1;
      }
      if (c == ',') {
        ++columns;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        // Check for the FROM keyword terminating the select list.
        size_t w = pos + 1;
        while (w < sql.size() &&
               std::isspace(static_cast<unsigned char>(sql[w]))) {
          ++w;
        }
        if (w + 4 <= sql.size() &&
            std::tolower(static_cast<unsigned char>(sql[w])) == 'f' &&
            std::tolower(static_cast<unsigned char>(sql[w + 1])) == 'r' &&
            std::tolower(static_cast<unsigned char>(sql[w + 2])) == 'o' &&
            std::tolower(static_cast<unsigned char>(sql[w + 3])) == 'm' &&
            (w + 4 == sql.size() ||
             std::isspace(static_cast<unsigned char>(sql[w + 4])))) {
          return saw_item ? columns : -1;
        }
        continue;
      }
      saw_item = true;
    }
  }
  // SELECT without FROM (e.g. `SELECT 1`) still yields its select list.
  return saw_item ? columns : -1;
}

util::Result<AbsintResult> RunAbstractInterpretation(
    const prog::Program& program, const AbsintOptions& options) {
  if (!program.finalized()) {
    return util::Status::FailedPrecondition(
        "program must be finalized before abstract interpretation");
  }
  const auto& fns = program.functions();
  const size_t count = fns.size();

  std::map<std::string, size_t> fn_index;
  std::map<std::string, size_t> fn_arity;
  for (size_t i = 0; i < count; ++i) {
    fn_index[fns[i].name] = i;
    fn_arity[fns[i].name] = fns[i].params.size();
  }

  std::vector<FlowGraph> graphs;
  graphs.reserve(count);
  std::vector<std::vector<int>> adjacency(count);
  for (size_t i = 0; i < count; ++i) {
    graphs.push_back(FlowGraph::Build(fns[i]));
    std::set<int> callees;
    std::vector<const prog::Expr*> calls;
    for (const FlowNode& node : graphs[i].nodes()) {
      if (node.expr == nullptr) continue;
      calls.clear();
      prog::CollectCalls(*node.expr, &calls);
      for (const prog::Expr* call : calls) {
        auto it = fn_index.find(call->name);
        if (it != fn_index.end()) callees.insert(static_cast<int>(it->second));
      }
    }
    adjacency[i].assign(callees.begin(), callees.end());
  }

  const prog::SccDecomposition scc = prog::ComputeSccs(adjacency);
  std::vector<bool> recursive(count, false);
  for (size_t c = 0; c < scc.components.size(); ++c) {
    const std::vector<int>& members = scc.components[c];
    bool self = members.size() > 1;
    for (int v : members) {
      for (int callee : adjacency[static_cast<size_t>(v)]) {
        if (callee == v) self = true;
      }
    }
    if (self) {
      for (int v : members) recursive[static_cast<size_t>(v)] = true;
    }
  }

  // Incremental-cache state. Each slot of `return_hash` is written by the
  // worker that owns the function and read only by callers in later
  // levels, after the ParallelFor barrier. The phases use distinct
  // fingerprints: one function has two entries (return summary, facts)
  // that invalidate independently.
  SummaryStore* cache = options.summary_cache;
  PassCacheStats cache_stats;
  std::vector<uint64_t> body_hash;
  std::vector<uint64_t> return_hash;
  uint64_t returns_fp = 0;
  uint64_t facts_fp = 0;
  if (cache != nullptr) {
    body_hash.resize(count);
    for (size_t i = 0; i < count; ++i) {
      body_hash[i] = HashFunctionBody(fns[i]);
    }
    return_hash.assign(count, HashAbsValue(AbsValue::Top()));
    returns_fp = Hasher()
                     .Str("absint-returns")
                     .I64(options.widen_delay)
                     .I64(options.max_trip_count)
                     .digest();
    facts_fp = Hasher()
                   .Str("absint-facts")
                   .I64(options.widen_delay)
                   .I64(options.max_trip_count)
                   .digest();
  }
  // Chains every callee's identity and current return-summary hash into
  // `key`. Arity rides along because the caller's joined argument vectors
  // are shaped by it even when the callee's summary value is unchanged.
  auto chain_callees = [&](Hasher* key, size_t vi) {
    for (int c : adjacency[vi]) {
      const auto ci = static_cast<size_t>(c);
      key->Str(fns[ci].name)
          .Size(fns[ci].params.size())
          .U64(return_hash[ci]);
    }
  };

  // Phase 1 — bottom-up return summaries with unconstrained parameters.
  // Members of recursive components keep the sound default (top), so
  // their (unwritten) return hashes stay at top's hash and callers' keys
  // remain stable.
  std::map<std::string, AbsValue> returns;
  for (size_t i = 0; i < count; ++i) returns[fns[i].name] = AbsValue::Top();
  for (const std::vector<int>& level : scc.levels) {
    util::ParallelFor(options.pool, level.size(), [&](size_t task) {
      for (int v : scc.components[static_cast<size_t>(level[task])]) {
        const auto vi = static_cast<size_t>(v);
        if (recursive[vi]) continue;
        uint64_t key = 0;
        if (cache != nullptr) {
          Hasher h(body_hash[vi]);
          chain_callees(&h, vi);
          key = h.digest();
          std::string payload;
          if (cache->Lookup(returns_fp, fns[vi].name, key, &payload,
                            &cache_stats)) {
            BinaryReader r(payload);
            const AbsValue rv = Get<AbsValue>(r);
            ADPROM_CHECK_MSG(r.ok() && r.AtEnd(),
                             "corrupt absint return cache entry for " +
                                 fns[vi].name);
            returns[fns[vi].name] = rv;
            return_hash[vi] = HashAbsValue(rv);
            continue;
          }
        }
        const FunctionAnalysis analysis =
            AnalyzeFunction(fns[vi], graphs[vi], returns, {}, fn_arity,
                            options);
        // Distinct map slots exist for every function up front, so
        // concurrent writes to different functions never race.
        returns[fns[vi].name] = analysis.facts.return_value;
        if (cache != nullptr) {
          return_hash[vi] = HashAbsValue(analysis.facts.return_value);
          BinaryWriter w;
          Put(w, analysis.facts.return_value);
          cache->Store(returns_fp, fns[vi].name, key, w.Take());
        }
      }
    });
  }

  // Phase 2 — top-down (callers first): join abstract argument values
  // over every reachable call site, then solve each function once with
  // its refined parameters and keep those final facts. Functions in one
  // level never call each other, and all callers live in later levels of
  // this reversed iteration, so every function sees its final argument
  // facts. Recursive components stay at top (their internal call sites
  // would feed back into themselves).
  std::vector<bool> called(count, false);
  std::vector<std::vector<AbsValue>> arg_facts(count);
  AbsintResult result;
  for (auto level_it = scc.levels.rbegin(); level_it != scc.levels.rend();
       ++level_it) {
    const std::vector<int>& level = *level_it;
    std::vector<FunctionAnalysis> analyses(count);
    std::vector<int> solved_fns;
    for (int c : level) {
      for (int v : scc.components[static_cast<size_t>(c)]) {
        solved_fns.push_back(v);
      }
    }
    util::ParallelFor(options.pool, solved_fns.size(), [&](size_t task) {
      const auto vi = static_cast<size_t>(solved_fns[task]);
      const bool use_params = !recursive[vi] && called[vi];
      std::map<std::string, AbsValue> params;
      if (use_params) {
        for (size_t p = 0; p < fns[vi].params.size(); ++p) {
          params[fns[vi].params[p]] = arg_facts[vi][p];
        }
      }
      uint64_t key = 0;
      if (cache != nullptr) {
        // Recursive members are cacheable too: they solve with empty
        // parameters against same-component summaries pinned at top.
        Hasher h(body_hash[vi]);
        h.Bool(recursive[vi]).Bool(use_params);
        if (use_params) {
          for (const AbsValue& arg : arg_facts[vi]) {
            h.U64(HashAbsValue(arg));
          }
        }
        chain_callees(&h, vi);
        key = h.digest();
        std::string payload;
        if (cache->Lookup(facts_fp, fns[vi].name, key, &payload,
                          &cache_stats)) {
          ADPROM_CHECK_MSG(
              DecodeFunctionAnalysis(payload, graphs[vi], &analyses[vi]),
              "corrupt absint fact cache entry for " + fns[vi].name);
          return;
        }
      }
      analyses[vi] =
          AnalyzeFunction(fns[vi], graphs[vi], returns, params, fn_arity,
                          options);
      if (cache != nullptr) {
        BinaryWriter w;
        EncodeFunctionAnalysis(analyses[vi], graphs[vi], &w);
        cache->Store(facts_fp, fns[vi].name, key, w.Take());
      }
    });
    // Deterministic merge of this level's callee argument facts and
    // results, in ascending function order.
    std::sort(solved_fns.begin(), solved_fns.end());
    for (int v : solved_fns) {
      const auto vi = static_cast<size_t>(v);
      FunctionAnalysis& analysis = analyses[vi];
      for (const auto& [callee, args] : analysis.callee_args) {
        const size_t ci = fn_index.at(callee);
        if (!called[ci]) {
          called[ci] = true;
          arg_facts[ci] = args;
        } else {
          for (size_t p = 0; p < arg_facts[ci].size(); ++p) {
            arg_facts[ci][p] = arg_facts[ci][p].Join(args[p]);
          }
        }
      }
      result.functions[fns[vi].name] = std::move(analysis.facts);
    }
  }
  result.cache_stats = cache_stats;
  return std::move(result);
}

}  // namespace adprom::analysis::absint
