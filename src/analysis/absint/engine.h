#ifndef ADPROM_ANALYSIS_ABSINT_ENGINE_H_
#define ADPROM_ANALYSIS_ABSINT_ENGINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/absint/abstract_value.h"
#include "analysis/summary_cache.h"
#include "prog/program.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace adprom::analysis::absint {

/// What the abstract interpreter proved about one `if` or `while`
/// condition. `stmt` identifies the branch across representations (the
/// same pointer is visible to the statement-level FlowGraph and to the
/// block-level CfgBuilder); it is only valid while the analyzed Program
/// is alive and must never be dereferenced by consumers.
struct BranchFact {
  const prog::Stmt* stmt = nullptr;
  bool is_loop = false;
  int line = 0;
  /// The condition is a bare literal (`if (1)` / `while (1)`) — an
  /// intentional idiom the linter skips; the CFG refiner still uses it.
  bool condition_is_literal = false;
  /// Truth of the condition joined over every evaluation that can reach
  /// it. kTrue/kFalse prove one side of the branch infeasible (for a
  /// loop, kFalse proves the body never runs; kTrue a loop that can
  /// never exit).
  Tri verdict = Tri::kUnknown;
  /// Loops only: the first evaluation is provably true, i.e. the
  /// zero-iteration exit is infeasible.
  bool entered = false;
  /// Loops only: exact iteration count when the loop matches the
  /// counted-loop pattern (constant init, constant bound, single
  /// constant-step update, no early exit); -1 when unknown.
  int64_t trip_count = -1;
};

/// An interval-powered lint diagnostic (division by zero, constant
/// out-of-bounds index).
struct Diagnostic {
  std::string category;
  std::string function;
  int line = 0;
  std::string message;
};

/// Per-function results of the abstract interpretation.
struct FunctionAbsint {
  /// Facts for every reachable `if`/`while`, in program order.
  std::vector<BranchFact> branches;
  std::vector<Diagnostic> diagnostics;
  /// Join of every value the function can return (phase-1 summary,
  /// computed with unconstrained parameters).
  AbsValue return_value;
};

struct AbsintOptions {
  /// Optional pool: call-graph SCC levels fan out with ParallelFor.
  /// Results are bit-identical for any pool size (including none).
  util::ThreadPool* pool = nullptr;
  /// Joins observed at a loop head before unstable interval bounds widen
  /// to infinity. Small counted loops stabilize before this kicks in.
  int widen_delay = 3;
  /// Trip counts above this are treated as unbounded (the forecast gains
  /// nothing from scaling by huge counts, and it bounds the arithmetic).
  int64_t max_trip_count = 1'000'000;
  /// Optional incremental store. Phase-1 return summaries and phase-2
  /// facts are cached separately, each keyed by the function's body hash
  /// chained with its callees' (name, arity, return-summary hash) — plus,
  /// for phase 2, the joined abstract argument values its callers feed it.
  /// Results are bit-identical with or without the cache
  /// (property-tested). nullptr disables caching.
  SummaryStore* summary_cache = nullptr;
};

struct AbsintResult {
  std::map<std::string, FunctionAbsint> functions;
  /// Summary-cache counters for this run (all zero when no cache is set).
  /// Every function is looked up once per phase (recursive functions skip
  /// phase 1), so the totals are schedule-independent.
  PassCacheStats cache_stats;

  /// Convenience counters over all functions.
  size_t NumInfeasibleBranches() const;
  size_t NumBoundedLoops() const;
};

/// Runs the two-phase interprocedural abstract interpretation over every
/// function of a finalized program: phase 1 computes return-value
/// summaries bottom-up over call-graph SCCs; phase 2 propagates joined
/// constant/interval argument facts top-down (callers first) and collects
/// the final branch facts and diagnostics. Deterministic for any thread
/// count: every join iterates functions and call sites in program order.
util::Result<AbsintResult> RunAbstractInterpretation(
    const prog::Program& program, const AbsintOptions& options = {});

/// Counts the columns a constant SELECT produces, -1 when unknown
/// (non-SELECT, `SELECT *`, or unparseable). Exposed for tests.
int CountSelectColumns(const std::string& sql);

}  // namespace adprom::analysis::absint

#endif  // ADPROM_ANALYSIS_ABSINT_ENGINE_H_
