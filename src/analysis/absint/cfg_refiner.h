#ifndef ADPROM_ANALYSIS_ABSINT_CFG_REFINER_H_
#define ADPROM_ANALYSIS_ABSINT_CFG_REFINER_H_

#include <cstddef>
#include <map>
#include <string>

#include "analysis/absint/engine.h"
#include "prog/cfg.h"

namespace adprom::analysis::absint {

/// What the refiner changed across all CFGs.
struct RefinementSummary {
  size_t pruned_edges = 0;
  size_t bounded_loops = 0;
};

/// Maps the abstract interpreter's branch facts onto the block-level CFGs:
/// edges out of a branch whose condition is a proven constant are marked
/// infeasible, loops provably entered lose their zero-iteration skip edge,
/// and counted loops get their exact trip count attached to the back edge.
/// Statements are matched by AST pointer (both representations were built
/// from the same Program). CFGs of functions absent from `absint` are left
/// untouched.
RefinementSummary RefineCfgs(const AbsintResult& absint,
                             std::map<std::string, prog::Cfg>* cfgs);

}  // namespace adprom::analysis::absint

#endif  // ADPROM_ANALYSIS_ABSINT_CFG_REFINER_H_
