#ifndef ADPROM_ANALYSIS_ABSINT_INTERVAL_H_
#define ADPROM_ANALYSIS_ABSINT_INTERVAL_H_

#include <cstdint>
#include <string>

namespace adprom::analysis::absint {

/// A closed integer interval [lo, hi] with +/- infinity sentinels — the
/// interval lattice of the abstract interpreter. The empty interval (the
/// lattice bottom) is represented by lo > hi and normalized to a single
/// canonical value so operator== doubles as lattice equality.
///
/// All arithmetic saturates at the infinities; finite arithmetic that
/// would overflow int64 widens the affected bound to infinity instead of
/// wrapping, so every operation is a sound over-approximation.
class Interval {
 public:
  static constexpr int64_t kNegInf = INT64_MIN;
  static constexpr int64_t kPosInf = INT64_MAX;

  /// Full range (top of the interval lattice).
  constexpr Interval() = default;
  constexpr Interval(int64_t lo, int64_t hi) : lo_(lo), hi_(hi) {
    if (lo_ > hi_) {  // normalize every empty interval to the same value
      lo_ = 1;
      hi_ = 0;
    }
  }

  static constexpr Interval Constant(int64_t v) { return {v, v}; }
  static constexpr Interval Top() { return {}; }
  static constexpr Interval Empty() { return {1, 0}; }
  /// [0, +inf) — the shape of lengths and row counts.
  static constexpr Interval NonNegative() { return {0, kPosInf}; }
  /// The boolean range {0, 1} comparison operators evaluate to.
  static constexpr Interval Bool() { return {0, 1}; }
  static constexpr Interval True() { return {1, 1}; }
  static constexpr Interval False() { return {0, 0}; }

  int64_t lo() const { return lo_; }
  int64_t hi() const { return hi_; }
  bool IsEmpty() const { return lo_ > hi_; }
  bool IsConstant() const { return lo_ == hi_; }
  bool IsTop() const { return lo_ == kNegInf && hi_ == kPosInf; }
  bool Contains(int64_t v) const { return lo_ <= v && v <= hi_; }
  bool ContainsZero() const { return Contains(0); }

  bool operator==(const Interval& other) const = default;

  /// Lattice join (interval hull) and meet (intersection).
  Interval Join(const Interval& other) const;
  Interval Meet(const Interval& other) const;
  /// Standard widening: bounds that grew since `previous` jump to
  /// infinity, guaranteeing termination of ascending chains.
  Interval WidenFrom(const Interval& previous) const;

  Interval Add(const Interval& other) const;
  Interval Sub(const Interval& other) const;
  Interval Mul(const Interval& other) const;
  /// C++ truncating division / remainder; empty when `other` is exactly
  /// [0,0] (unconditional runtime error). Over-approximates otherwise.
  Interval Div(const Interval& other) const;
  Interval Mod(const Interval& other) const;
  Interval Negate() const;

  std::string ToString() const;

 private:
  int64_t lo_ = kNegInf;
  int64_t hi_ = kPosInf;
};

}  // namespace adprom::analysis::absint

#endif  // ADPROM_ANALYSIS_ABSINT_INTERVAL_H_
