#include "analysis/absint/interval.h"

#include <algorithm>

#include "util/strings.h"

namespace adprom::analysis::absint {

namespace {

bool IsInf(int64_t v) {
  return v == Interval::kNegInf || v == Interval::kPosInf;
}

/// v + w with saturation; infinite operands dominate. `inf_sign` decides
/// which infinity an inf+inf mix collapses to (callers never mix opposite
/// infinities — interval bounds keep lo <= hi).
int64_t SatAdd(int64_t v, int64_t w) {
  if (v == Interval::kNegInf || w == Interval::kNegInf)
    return Interval::kNegInf;
  if (v == Interval::kPosInf || w == Interval::kPosInf)
    return Interval::kPosInf;
  int64_t out = 0;
  if (__builtin_add_overflow(v, w, &out)) {
    return v > 0 ? Interval::kPosInf : Interval::kNegInf;
  }
  return out;
}

int64_t SatNeg(int64_t v) {
  if (v == Interval::kNegInf) return Interval::kPosInf;
  if (v == Interval::kPosInf) return Interval::kNegInf;
  return -v;
}

int64_t SatMul(int64_t v, int64_t w) {
  if (v == 0 || w == 0) return 0;
  const bool negative = (v < 0) != (w < 0);
  if (IsInf(v) || IsInf(w)) {
    return negative ? Interval::kNegInf : Interval::kPosInf;
  }
  int64_t out = 0;
  if (__builtin_mul_overflow(v, w, &out)) {
    return negative ? Interval::kNegInf : Interval::kPosInf;
  }
  return out;
}

}  // namespace

Interval Interval::Join(const Interval& other) const {
  if (IsEmpty()) return other;
  if (other.IsEmpty()) return *this;
  return {std::min(lo_, other.lo_), std::max(hi_, other.hi_)};
}

Interval Interval::Meet(const Interval& other) const {
  if (IsEmpty() || other.IsEmpty()) return Empty();
  return {std::max(lo_, other.lo_), std::min(hi_, other.hi_)};
}

Interval Interval::WidenFrom(const Interval& previous) const {
  if (previous.IsEmpty()) return *this;
  if (IsEmpty()) return previous;
  const int64_t lo = lo_ < previous.lo_ ? kNegInf : previous.lo_;
  const int64_t hi = hi_ > previous.hi_ ? kPosInf : previous.hi_;
  return {lo, hi};
}

Interval Interval::Add(const Interval& other) const {
  if (IsEmpty() || other.IsEmpty()) return Empty();
  return {SatAdd(lo_, other.lo_), SatAdd(hi_, other.hi_)};
}

Interval Interval::Sub(const Interval& other) const {
  if (IsEmpty() || other.IsEmpty()) return Empty();
  return {SatAdd(lo_, SatNeg(other.hi_)), SatAdd(hi_, SatNeg(other.lo_))};
}

Interval Interval::Mul(const Interval& other) const {
  if (IsEmpty() || other.IsEmpty()) return Empty();
  const int64_t candidates[4] = {
      SatMul(lo_, other.lo_), SatMul(lo_, other.hi_),
      SatMul(hi_, other.lo_), SatMul(hi_, other.hi_)};
  return {*std::min_element(candidates, candidates + 4),
          *std::max_element(candidates, candidates + 4)};
}

Interval Interval::Div(const Interval& other) const {
  if (IsEmpty() || other.IsEmpty()) return Empty();
  if (other == Constant(0)) return Empty();  // unconditional runtime error
  // Precise only for a constant non-zero divisor and finite, sign-stable
  // dividends; anything else over-approximates to top. That covers the
  // lint-relevant cases (constant folding) without re-deriving the full
  // interval-division case split.
  if (other.IsConstant() && !IsInf(other.lo_) && !IsInf(lo_) &&
      !IsInf(hi_)) {
    const int64_t d = other.lo_;
    const int64_t a = lo_ / d;
    const int64_t b = hi_ / d;
    return {std::min(a, b), std::max(a, b)};
  }
  return Top();
}

Interval Interval::Mod(const Interval& other) const {
  if (IsEmpty() || other.IsEmpty()) return Empty();
  if (other == Constant(0)) return Empty();  // unconditional runtime error
  if (other.IsConstant() && IsConstant() && !IsInf(other.lo_) &&
      !IsInf(lo_)) {
    return Constant(lo_ % other.lo_);
  }
  // x % d for non-negative x and a positive divisor range lands in
  // [0, max_d - 1].
  if (lo_ >= 0 && other.lo_ > 0 && other.hi_ != kPosInf) {
    return {0, other.hi_ - 1};
  }
  return Top();
}

Interval Interval::Negate() const {
  if (IsEmpty()) return Empty();
  return {SatNeg(hi_), SatNeg(lo_)};
}

std::string Interval::ToString() const {
  if (IsEmpty()) return "[empty]";
  const std::string lo =
      lo_ == kNegInf ? "-inf" : util::StrFormat("%lld", (long long)lo_);
  const std::string hi =
      hi_ == kPosInf ? "+inf" : util::StrFormat("%lld", (long long)hi_);
  return "[" + lo + ", " + hi + "]";
}

}  // namespace adprom::analysis::absint
