#ifndef ADPROM_ANALYSIS_ABSINT_ABSTRACT_VALUE_H_
#define ADPROM_ANALYSIS_ABSINT_ABSTRACT_VALUE_H_

#include <string>

#include "analysis/absint/interval.h"

namespace adprom::analysis::absint {

/// Three-valued truth used by the branch-feasibility evaluator.
enum class Tri { kFalse, kTrue, kUnknown };

/// The value lattice of the abstract interpreter: a reduced product of
/// constant propagation and intervals over MiniApp's dynamic types.
///
///                      kTop (any runtime value)
///       |        |         |        |           |
///    kInt     kRealConst  kStrConst  kNull   kDbResult
///  (interval;  (one real)  (one      (the    (query handle,
///   constant              string)    null    column count if
///   iff lo==hi)                      value)  statically known)
///
/// Integers carry a full interval — constants are the singleton case —
/// while reals and strings only track single constants (enough to fold
/// lengths, query texts and arithmetic seeds; their join is kTop).
/// kDbResult models db_query's return: a result handle *or* the null
/// sentinel (db_query yields null on a SQL error), so its truthiness is
/// unknown; `db_columns` >= 0 when the SELECT list of a constant query
/// string could be parsed. There is no per-value bottom: unreachability is a
/// property of the abstract *state*, and infeasible refinements surface
/// as empty intervals at the refinement site.
class AbsValue {
 public:
  enum class Kind { kTop, kInt, kRealConst, kStrConst, kNull, kDbResult };

  AbsValue() = default;  // top

  static AbsValue Top() { return AbsValue(); }
  static AbsValue Int(Interval iv);
  static AbsValue IntConstant(int64_t v) {
    return Int(Interval::Constant(v));
  }
  static AbsValue RealConstant(double v);
  static AbsValue StrConstant(std::string v);
  static AbsValue Null();
  static AbsValue DbResult(int columns);

  Kind kind() const { return kind_; }
  bool IsTop() const { return kind_ == Kind::kTop; }
  const Interval& interval() const { return interval_; }
  double real_value() const { return real_; }
  const std::string& str_value() const { return str_; }
  int db_columns() const { return db_columns_; }

  bool IsIntConstant() const {
    return kind_ == Kind::kInt && interval_.IsConstant();
  }
  int64_t int_constant() const { return interval_.lo(); }

  bool operator==(const AbsValue& other) const = default;

  /// Lattice join; mixed kinds meet at kTop (except two kDbResult values,
  /// which join to a handle with unknown column count).
  AbsValue Join(const AbsValue& other) const;

  /// MiniApp truthiness: null/0/0.0/"" are false; a db result is
  /// handle-or-null, so its truthiness is unknown.
  Tri Truthiness() const;

  /// The value as an integer range: the interval for kInt, full range for
  /// kTop (a top value *may* be any integer), empty for kinds that can
  /// never be an integer.
  Interval AsIntRange() const;

  std::string ToString() const;

 private:
  Kind kind_ = Kind::kTop;
  Interval interval_ = Interval::Empty();  // kInt
  double real_ = 0.0;                      // kRealConst
  std::string str_;                        // kStrConst
  int db_columns_ = -1;                    // kDbResult (-1 = unknown)
};

/// Negation of a three-valued truth.
inline Tri TriNot(Tri t) {
  if (t == Tri::kTrue) return Tri::kFalse;
  if (t == Tri::kFalse) return Tri::kTrue;
  return Tri::kUnknown;
}

}  // namespace adprom::analysis::absint

#endif  // ADPROM_ANALYSIS_ABSINT_ABSTRACT_VALUE_H_
