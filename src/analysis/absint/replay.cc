#include "analysis/absint/replay.h"

#include <cstdint>
#include <utility>

#include "analysis/absint/engine.h"

namespace adprom::analysis::absint {

namespace {

/// Comparison folding is only trusted while int64 -> double conversion is
/// injective (the runtime compares numerics as doubles).
constexpr int64_t kExactDoubleBound = int64_t{1} << 53;

bool WithinExactDoubleRange(const Interval& iv) {
  return iv.lo() >= -kExactDoubleBound && iv.hi() <= kExactDoubleBound;
}

bool IsRelOp(prog::BinOp op) {
  switch (op) {
    case prog::BinOp::kLt:
    case prog::BinOp::kLe:
    case prog::BinOp::kGt:
    case prog::BinOp::kGe:
    case prog::BinOp::kEq:
    case prog::BinOp::kNe:
      return true;
    default:
      return false;
  }
}

prog::BinOp NegateRel(prog::BinOp op) {
  switch (op) {
    case prog::BinOp::kLt: return prog::BinOp::kGe;
    case prog::BinOp::kLe: return prog::BinOp::kGt;
    case prog::BinOp::kGt: return prog::BinOp::kLe;
    case prog::BinOp::kGe: return prog::BinOp::kLt;
    case prog::BinOp::kEq: return prog::BinOp::kNe;
    case prog::BinOp::kNe: return prog::BinOp::kEq;
    default: return op;
  }
}

/// Narrows `state` under the assumption `var REL value` holds. Returns
/// false when the assumption is infeasible (caller marks the edge dead).
bool RefineVarAgainst(AbsState* state, const std::string& var,
                      prog::BinOp rel, const AbsValue& value) {
  auto it = state->vars.find(var);
  const AbsValue current =
      it == state->vars.end() ? AbsValue::Top() : it->second;
  // Equality against any constant pins the variable to it.
  if (rel == prog::BinOp::kEq) {
    using Kind = AbsValue::Kind;
    if (value.kind() == Kind::kStrConst || value.kind() == Kind::kRealConst ||
        value.kind() == Kind::kNull || value.IsIntConstant()) {
      if (current.IsTop()) {
        state->vars[var] = value;
        return true;
      }
      // Keep whatever is more precise; contradictions fold to infeasible
      // for comparable kinds.
      const Tri eq = CompareTri(prog::BinOp::kEq, current, value);
      if (eq == Tri::kFalse) return false;
      if (value.kind() != Kind::kTop) state->vars[var] = value;
      return true;
    }
  }
  // Interval narrowing for numeric relations.
  if (current.kind() != AbsValue::Kind::kInt && !current.IsTop()) {
    return true;  // not (necessarily) an integer; leave as-is
  }
  const Interval bound = value.AsIntRange();
  if (bound.IsEmpty()) return true;  // RHS can never be an integer
  Interval allowed = Interval::Top();
  switch (rel) {
    case prog::BinOp::kLt:
      allowed = Interval(Interval::kNegInf,
                         bound.hi() == Interval::kPosInf ? Interval::kPosInf
                                                        : bound.hi() - 1);
      break;
    case prog::BinOp::kLe:
      allowed = Interval(Interval::kNegInf, bound.hi());
      break;
    case prog::BinOp::kGt:
      allowed = Interval(bound.lo() == Interval::kNegInf ? Interval::kNegInf
                                                         : bound.lo() + 1,
                         Interval::kPosInf);
      break;
    case prog::BinOp::kGe:
      allowed = Interval(bound.lo(), Interval::kPosInf);
      break;
    case prog::BinOp::kEq:
      allowed = bound;
      break;
    case prog::BinOp::kNe: {
      Interval range = current.AsIntRange();
      if (bound.IsConstant() && !range.IsEmpty()) {
        if (range.lo() == bound.lo() && range.lo() != Interval::kPosInf) {
          range = Interval(range.lo() + 1, range.hi());
        }
        if (range.hi() == bound.lo() && range.hi() != Interval::kNegInf) {
          range = Interval(range.lo(), range.hi() - 1);
        }
        if (range.IsEmpty()) return false;
        if (current.IsTop() && range.IsTop()) return true;
        state->vars[var] = AbsValue::Int(range);
      }
      return true;
    }
    default:
      return true;
  }
  const Interval narrowed = current.AsIntRange().Meet(allowed);
  // An empty meet on a known-integer variable proves the edge dead; a top
  // variable may hold a non-integer, for which the relation could still
  // hold (string comparison), so only narrow, never kill, on top.
  if (narrowed.IsEmpty()) {
    return current.kind() == AbsValue::Kind::kInt ? false : true;
  }
  if (!(current.IsTop() && narrowed.IsTop())) {
    if (current.IsTop()) {
      // Narrowing a top variable to an interval is only sound for
      // numeric relations when the other side is numeric; a top variable
      // compared to a string would compare lexicographically. Restrict to
      // genuinely numeric bounds.
      if (value.kind() == AbsValue::Kind::kInt) {
        state->vars[var] = AbsValue::Int(narrowed);
      }
    } else {
      state->vars[var] = AbsValue::Int(narrowed);
    }
  }
  return true;
}

}  // namespace

void JoinInto(AbsState* into, const AbsState& from) {
  if (!from.reachable) return;
  if (!into->reachable) {
    *into = from;
    return;
  }
  for (auto it = into->vars.begin(); it != into->vars.end();) {
    auto other = from.vars.find(it->first);
    if (other == from.vars.end()) {
      it = into->vars.erase(it);  // top on the other path
      continue;
    }
    AbsValue joined = it->second.Join(other->second);
    if (joined.IsTop()) {
      it = into->vars.erase(it);
    } else {
      it->second = std::move(joined);
      ++it;
    }
  }
}

Tri CompareTri(prog::BinOp op, const AbsValue& lhs, const AbsValue& rhs) {
  using Kind = AbsValue::Kind;
  // Null is incomparable to everything but null. A db result may itself
  // be null (db_query yields null on a SQL error), so it stays unknown.
  if (lhs.kind() == Kind::kNull || rhs.kind() == Kind::kNull) {
    if (lhs.kind() != rhs.kind()) {
      if (lhs.IsTop() || rhs.IsTop() ||
          lhs.kind() == Kind::kDbResult || rhs.kind() == Kind::kDbResult) {
        return Tri::kUnknown;
      }
      switch (op) {
        case prog::BinOp::kEq: return Tri::kFalse;
        case prog::BinOp::kNe: return Tri::kTrue;
        default: return Tri::kFalse;  // incomparable: all orderings false
      }
    }
    switch (op) {  // null vs null compares equal
      case prog::BinOp::kLe:
      case prog::BinOp::kGe:
      case prog::BinOp::kEq: return Tri::kTrue;
      default: return Tri::kFalse;
    }
  }
  if (lhs.kind() == Kind::kStrConst && rhs.kind() == Kind::kStrConst) {
    const int c = lhs.str_value().compare(rhs.str_value());
    switch (op) {
      case prog::BinOp::kLt: return c < 0 ? Tri::kTrue : Tri::kFalse;
      case prog::BinOp::kLe: return c <= 0 ? Tri::kTrue : Tri::kFalse;
      case prog::BinOp::kGt: return c > 0 ? Tri::kTrue : Tri::kFalse;
      case prog::BinOp::kGe: return c >= 0 ? Tri::kTrue : Tri::kFalse;
      case prog::BinOp::kEq: return c == 0 ? Tri::kTrue : Tri::kFalse;
      case prog::BinOp::kNe: return c != 0 ? Tri::kTrue : Tri::kFalse;
      default: return Tri::kUnknown;
    }
  }
  // Numeric comparison via interval ordering. Real constants degrade to
  // the surrounding integer interval only when exact.
  auto numeric_range = [](const AbsValue& v, Interval* out) {
    if (v.kind() == Kind::kInt) {
      *out = v.interval();
      return WithinExactDoubleRange(*out);
    }
    if (v.kind() == Kind::kRealConst) {
      const double d = v.real_value();
      const auto i = static_cast<int64_t>(d);
      if (static_cast<double>(i) != d) return false;  // non-integral real
      *out = Interval::Constant(i);
      return WithinExactDoubleRange(*out);
    }
    return false;
  };
  Interval a, b;
  if (!numeric_range(lhs, &a) || !numeric_range(rhs, &b)) {
    return Tri::kUnknown;
  }
  if (a.IsEmpty() || b.IsEmpty()) return Tri::kUnknown;
  switch (op) {
    case prog::BinOp::kLt:
      if (a.hi() < b.lo()) return Tri::kTrue;
      if (a.lo() >= b.hi()) return Tri::kFalse;
      return Tri::kUnknown;
    case prog::BinOp::kLe:
      if (a.hi() <= b.lo()) return Tri::kTrue;
      if (a.lo() > b.hi()) return Tri::kFalse;
      return Tri::kUnknown;
    case prog::BinOp::kGt:
      if (a.lo() > b.hi()) return Tri::kTrue;
      if (a.hi() <= b.lo()) return Tri::kFalse;
      return Tri::kUnknown;
    case prog::BinOp::kGe:
      if (a.lo() >= b.hi()) return Tri::kTrue;
      if (a.hi() < b.lo()) return Tri::kFalse;
      return Tri::kUnknown;
    case prog::BinOp::kEq:
      if (a.IsConstant() && a == b) return Tri::kTrue;
      if (a.hi() < b.lo() || b.hi() < a.lo()) return Tri::kFalse;
      return Tri::kUnknown;
    case prog::BinOp::kNe:
      return TriNot(CompareTri(prog::BinOp::kEq, lhs, rhs));
    default:
      return Tri::kUnknown;
  }
}

AbsValue TriToValue(Tri t) {
  switch (t) {
    case Tri::kTrue: return AbsValue::Int(Interval::True());
    case Tri::kFalse: return AbsValue::Int(Interval::False());
    case Tri::kUnknown: return AbsValue::Int(Interval::Bool());
  }
  return AbsValue::Int(Interval::Bool());
}

AbsValue EvalLibraryCall(const std::string& name,
                         const std::vector<AbsValue>& args) {
  using Kind = AbsValue::Kind;
  if (name == "len") {
    if (args.size() == 1 && args[0].kind() == Kind::kStrConst) {
      return AbsValue::IntConstant(
          static_cast<int64_t>(args[0].str_value().size()));
    }
    return AbsValue::Int(Interval::NonNegative());
  }
  if (name == "to_int") {
    // Identity on integers; string parsing is not modeled.
    if (args.size() == 1 && args[0].kind() == Kind::kInt) return args[0];
    return AbsValue::Top();
  }
  if (name == "is_null") {
    if (args.size() != 1) return AbsValue::Top();
    switch (args[0].kind()) {
      case Kind::kNull: return TriToValue(Tri::kTrue);
      case Kind::kInt:
      case Kind::kRealConst:
      case Kind::kStrConst: return TriToValue(Tri::kFalse);
      // A db result is "handle or null": db_query yields null on a SQL
      // error, so the defensive is_null(r) checks apps write are live.
      case Kind::kDbResult:
      case Kind::kTop: return TriToValue(Tri::kUnknown);
    }
    return AbsValue::Top();
  }
  if (name == "db_query") {
    if (args.size() == 1 && args[0].kind() == Kind::kStrConst) {
      return AbsValue::DbResult(CountSelectColumns(args[0].str_value()));
    }
    return AbsValue::DbResult(-1);
  }
  if (name == "db_ntuples") return AbsValue::Int(Interval::NonNegative());
  if (name == "db_nfields") {
    if (args.size() == 1 && args[0].kind() == Kind::kDbResult &&
        args[0].db_columns() >= 0) {
      return AbsValue::IntConstant(args[0].db_columns());
    }
    return AbsValue::Int(Interval::NonNegative());
  }
  if (name == "contains" || name == "like_match" || name == "has_input") {
    return AbsValue::Int(Interval::Bool());
  }
  return AbsValue::Top();
}

AbsValue EvalExpr(const prog::Expr& e, const AbsState& state,
                  const std::map<std::string, AbsValue>& user_fn_returns) {
  using Kind = AbsValue::Kind;
  switch (e.kind) {
    case prog::ExprKind::kIntLit:
      return AbsValue::IntConstant(e.int_value);
    case prog::ExprKind::kRealLit:
      return AbsValue::RealConstant(e.real_value);
    case prog::ExprKind::kStrLit:
      return AbsValue::StrConstant(e.str_value);
    case prog::ExprKind::kVar: {
      auto it = state.vars.find(e.name);
      return it == state.vars.end() ? AbsValue::Top() : it->second;
    }
    case prog::ExprKind::kUnary: {
      const AbsValue v = EvalExpr(*e.lhs, state, user_fn_returns);
      if (e.un_op == prog::UnOp::kNot) return TriToValue(TriNot(v.Truthiness()));
      if (v.kind() == Kind::kInt) return AbsValue::Int(v.interval().Negate());
      if (v.kind() == Kind::kRealConst) {
        return AbsValue::RealConstant(-v.real_value());
      }
      return AbsValue::Top();
    }
    case prog::ExprKind::kBinary: {
      const AbsValue lhs = EvalExpr(*e.lhs, state, user_fn_returns);
      const AbsValue rhs = EvalExpr(*e.rhs, state, user_fn_returns);
      switch (e.bin_op) {
        case prog::BinOp::kAdd:
          if (lhs.kind() == Kind::kStrConst && rhs.kind() == Kind::kStrConst) {
            return AbsValue::StrConstant(lhs.str_value() + rhs.str_value());
          }
          if (lhs.kind() == Kind::kStrConst && rhs.IsIntConstant()) {
            return AbsValue::StrConstant(
                lhs.str_value() + std::to_string(rhs.int_constant()));
          }
          if (lhs.IsIntConstant() && rhs.kind() == Kind::kStrConst) {
            return AbsValue::StrConstant(
                std::to_string(lhs.int_constant()) + rhs.str_value());
          }
          if (lhs.kind() == Kind::kInt && rhs.kind() == Kind::kInt) {
            return AbsValue::Int(lhs.interval().Add(rhs.interval()));
          }
          return AbsValue::Top();
        case prog::BinOp::kSub:
          if (lhs.kind() == Kind::kInt && rhs.kind() == Kind::kInt) {
            return AbsValue::Int(lhs.interval().Sub(rhs.interval()));
          }
          return AbsValue::Top();
        case prog::BinOp::kMul:
          if (lhs.kind() == Kind::kInt && rhs.kind() == Kind::kInt) {
            return AbsValue::Int(lhs.interval().Mul(rhs.interval()));
          }
          return AbsValue::Top();
        case prog::BinOp::kDiv:
          if (lhs.kind() == Kind::kInt && rhs.kind() == Kind::kInt) {
            const Interval q = lhs.interval().Div(rhs.interval());
            // Division by a provable zero never produces a value (the
            // runtime errors out); top keeps the result sound for the
            // "divisor range includes zero" case.
            return q.IsEmpty() ? AbsValue::Top() : AbsValue::Int(q);
          }
          return AbsValue::Top();
        case prog::BinOp::kMod:
          if (lhs.kind() == Kind::kInt && rhs.kind() == Kind::kInt) {
            const Interval q = lhs.interval().Mod(rhs.interval());
            return q.IsEmpty() ? AbsValue::Top() : AbsValue::Int(q);
          }
          return AbsValue::Top();
        case prog::BinOp::kLt:
        case prog::BinOp::kLe:
        case prog::BinOp::kGt:
        case prog::BinOp::kGe:
        case prog::BinOp::kEq:
        case prog::BinOp::kNe:
          return TriToValue(CompareTri(e.bin_op, lhs, rhs));
        case prog::BinOp::kAnd: {
          const Tri l = lhs.Truthiness();
          const Tri r = rhs.Truthiness();
          if (l == Tri::kFalse || r == Tri::kFalse) return TriToValue(Tri::kFalse);
          if (l == Tri::kTrue && r == Tri::kTrue) return TriToValue(Tri::kTrue);
          return TriToValue(Tri::kUnknown);
        }
        case prog::BinOp::kOr: {
          const Tri l = lhs.Truthiness();
          const Tri r = rhs.Truthiness();
          if (l == Tri::kTrue || r == Tri::kTrue) return TriToValue(Tri::kTrue);
          if (l == Tri::kFalse && r == Tri::kFalse) return TriToValue(Tri::kFalse);
          return TriToValue(Tri::kUnknown);
        }
      }
      return AbsValue::Top();
    }
    case prog::ExprKind::kCall: {
      std::vector<AbsValue> args;
      args.reserve(e.args.size());
      for (const auto& arg : e.args) {
        args.push_back(EvalExpr(*arg, state, user_fn_returns));
      }
      auto it = user_fn_returns.find(e.name);
      if (it != user_fn_returns.end()) return it->second;
      return EvalLibraryCall(e.name, args);
    }
  }
  return AbsValue::Top();
}

prog::BinOp MirrorRel(prog::BinOp op) {
  switch (op) {
    case prog::BinOp::kLt: return prog::BinOp::kGt;
    case prog::BinOp::kLe: return prog::BinOp::kGe;
    case prog::BinOp::kGt: return prog::BinOp::kLt;
    case prog::BinOp::kGe: return prog::BinOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

bool AssumeCondition(const prog::Expr& cond, bool assume, AbsState* state,
                     const std::map<std::string, AbsValue>& returns) {
  const AbsValue v = EvalExpr(cond, *state, returns);
  const Tri t = v.Truthiness();
  if ((t == Tri::kTrue && !assume) || (t == Tri::kFalse && assume)) {
    return false;
  }
  switch (cond.kind) {
    case prog::ExprKind::kUnary:
      if (cond.un_op == prog::UnOp::kNot) {
        return AssumeCondition(*cond.lhs, !assume, state, returns);
      }
      return true;
    case prog::ExprKind::kBinary: {
      if (cond.bin_op == prog::BinOp::kAnd && assume) {
        return AssumeCondition(*cond.lhs, true, state, returns) &&
               AssumeCondition(*cond.rhs, true, state, returns);
      }
      if (cond.bin_op == prog::BinOp::kOr && !assume) {
        return AssumeCondition(*cond.lhs, false, state, returns) &&
               AssumeCondition(*cond.rhs, false, state, returns);
      }
      if (!IsRelOp(cond.bin_op)) return true;
      const prog::BinOp rel =
          assume ? cond.bin_op : NegateRel(cond.bin_op);
      if (cond.lhs->kind == prog::ExprKind::kVar) {
        const AbsValue rhs = EvalExpr(*cond.rhs, *state, returns);
        if (!RefineVarAgainst(state, cond.lhs->name, rel, rhs)) return false;
      }
      if (cond.rhs->kind == prog::ExprKind::kVar) {
        const AbsValue lhs = EvalExpr(*cond.lhs, *state, returns);
        if (!RefineVarAgainst(state, cond.rhs->name, MirrorRel(rel), lhs)) {
          return false;
        }
      }
      return true;
    }
    case prog::ExprKind::kVar: {
      // `if (x)` / `if (!x)` on an integer variable trims the zero
      // boundary (true) or pins to zero (false).
      auto it = state->vars.find(cond.name);
      if (it == state->vars.end() ||
          it->second.kind() != AbsValue::Kind::kInt) {
        return true;
      }
      Interval range = it->second.interval();
      if (assume) {
        if (range.lo() == 0) range = Interval(1, range.hi());
        else if (range.hi() == 0) range = Interval(range.lo(), -1);
        if (range.IsEmpty()) return false;
      } else {
        range = range.Meet(Interval::Constant(0));
        if (range.IsEmpty()) return false;
      }
      it->second = AbsValue::Int(range);
      return true;
    }
    default:
      return true;
  }
}

}  // namespace adprom::analysis::absint
