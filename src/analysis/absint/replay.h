#ifndef ADPROM_ANALYSIS_ABSINT_REPLAY_H_
#define ADPROM_ANALYSIS_ABSINT_REPLAY_H_

/// Reusable abstract-evaluation primitives: the expression evaluator,
/// library-call models, and branch-assumption narrowing that the absint
/// engine solves fixpoints with. Exposed so other passes (the IFDS
/// witness engine's feasibility filter, path replay) can evaluate the
/// same semantics without owning a full engine run.

#include <map>
#include <string>
#include <vector>

#include "analysis/absint/abstract_value.h"
#include "prog/ast.h"

namespace adprom::analysis::absint {

/// The abstract state at a program point: unreachable (bottom), or a
/// variable environment where an absent variable means "any value" (top).
/// Default-constructed == bottom, as the dataflow solver requires.
struct AbsState {
  bool reachable = false;
  std::map<std::string, AbsValue> vars;

  bool operator==(const AbsState&) const = default;
};

/// Lattice join: `into` becomes the join of both states.
void JoinInto(AbsState* into, const AbsState& from);

/// Three-valued comparison over abstract values, mirroring the runtime's
/// numeric/string comparison semantics.
Tri CompareTri(prog::BinOp op, const AbsValue& lhs, const AbsValue& rhs);

/// Encodes a three-valued truth as a {0,1}-interval abstract value.
AbsValue TriToValue(Tri t);

/// Abstract evaluation of library calls. Anything not listed is top.
AbsValue EvalLibraryCall(const std::string& name,
                         const std::vector<AbsValue>& args);

/// Forward abstract evaluation (effect-free: MiniApp calls cannot write
/// locals of the evaluating function).
AbsValue EvalExpr(const prog::Expr& e, const AbsState& state,
                  const std::map<std::string, AbsValue>& user_fn_returns);

/// Swaps the sides of a relational operator (`a < b` ⇔ `b > a`).
prog::BinOp MirrorRel(prog::BinOp op);

/// Assumes `cond` evaluates to `assume` and narrows `state` accordingly.
/// Returns false when the assumption is contradictory (edge infeasible).
bool AssumeCondition(const prog::Expr& cond, bool assume, AbsState* state,
                     const std::map<std::string, AbsValue>& returns);

}  // namespace adprom::analysis::absint

#endif  // ADPROM_ANALYSIS_ABSINT_REPLAY_H_
