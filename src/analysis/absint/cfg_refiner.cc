#include "analysis/absint/cfg_refiner.h"

namespace adprom::analysis::absint {

namespace {

/// Applies one function's branch facts to its CFG.
RefinementSummary RefineOne(const FunctionAbsint& facts, prog::Cfg* cfg) {
  RefinementSummary summary;
  std::map<const prog::Stmt*, const prog::CfgBranch*> branch_of;
  for (const prog::CfgBranch& branch : cfg->branches()) {
    branch_of[branch.stmt] = &branch;
  }
  std::map<const prog::Stmt*, const prog::CfgLoopInfo*> loop_of;
  for (const prog::CfgLoopInfo& loop : cfg->loops()) {
    loop_of[loop.stmt] = &loop;
  }

  for (const BranchFact& fact : facts.branches) {
    auto it = branch_of.find(fact.stmt);
    if (it == branch_of.end()) continue;
    const prog::CfgBranch& branch = *it->second;
    const prog::CfgLoopInfo* loop = nullptr;
    if (fact.is_loop) {
      auto lit = loop_of.find(fact.stmt);
      if (lit != loop_of.end()) loop = lit->second;
    }

    if (fact.verdict == Tri::kFalse) {
      // The true side can never execute (for a loop: the body never runs).
      cfg->MarkInfeasible(branch.cond_node, branch.true_target);
      ++summary.pruned_edges;
      continue;
    }

    const bool always_true = fact.verdict == Tri::kTrue;
    if (!fact.is_loop) {
      if (always_true) {
        cfg->MarkInfeasible(branch.cond_node, branch.false_target);
        ++summary.pruned_edges;
      }
      continue;
    }

    // Loops: dropping the zero-iteration skip edge requires a back edge,
    // otherwise nothing would carry flow to the code after the loop.
    const bool has_back_edge = loop != nullptr && loop->back_src >= 0;
    if ((always_true || fact.entered || fact.trip_count >= 1) &&
        has_back_edge) {
      cfg->MarkInfeasible(branch.cond_node, branch.false_target);
      ++summary.pruned_edges;
    }
    if (fact.trip_count >= 2 && has_back_edge) {
      cfg->SetLoopBound(loop->back_src, loop->header, fact.trip_count);
      ++summary.bounded_loops;
    }
  }
  return summary;
}

}  // namespace

RefinementSummary RefineCfgs(const AbsintResult& absint,
                             std::map<std::string, prog::Cfg>* cfgs) {
  RefinementSummary total;
  for (auto& [name, cfg] : *cfgs) {
    auto it = absint.functions.find(name);
    if (it == absint.functions.end()) continue;
    const RefinementSummary one = RefineOne(it->second, &cfg);
    total.pruned_edges += one.pruned_edges;
    total.bounded_loops += one.bounded_loops;
  }
  return total;
}

}  // namespace adprom::analysis::absint
