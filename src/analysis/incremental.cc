#include "analysis/incremental.h"

#include <algorithm>
#include <set>

#include "analysis/hashing.h"
#include "db/value.h"
#include "prog/ast.h"

namespace adprom::analysis {

namespace {

void HashExpr(const prog::Expr& e, Hasher* h) {
  h->U64(static_cast<uint64_t>(e.kind));
  h->I64(e.line);
  switch (e.kind) {
    case prog::ExprKind::kIntLit:
      h->I64(e.int_value);
      break;
    case prog::ExprKind::kRealLit:
      h->F64(e.real_value);
      break;
    case prog::ExprKind::kStrLit:
      h->Str(e.str_value);
      break;
    case prog::ExprKind::kVar:
      h->Str(e.name);
      break;
    case prog::ExprKind::kBinary:
      h->U64(static_cast<uint64_t>(e.bin_op));
      HashExpr(*e.lhs, h);
      HashExpr(*e.rhs, h);
      break;
    case prog::ExprKind::kUnary:
      h->U64(static_cast<uint64_t>(e.un_op));
      HashExpr(*e.lhs, h);
      break;
    case prog::ExprKind::kCall:
      h->Str(e.name);
      // The program-global site id: labeled sinks, CTM sites, and taint
      // tokens are all keyed by it, so an id shift elsewhere in the
      // program (an inserted call) correctly invalidates this function.
      h->I64(e.call_site_id);
      h->Size(e.args.size());
      for (const auto& arg : e.args) HashExpr(*arg, h);
      break;
  }
}

void HashBody(const prog::StmtList& body, Hasher* h) {
  h->Size(body.size());
  for (const auto& stmt : body) {
    h->U64(static_cast<uint64_t>(stmt->kind));
    h->I64(stmt->line);
    h->Str(stmt->target);
    h->Bool(stmt->expr != nullptr);
    if (stmt->expr != nullptr) HashExpr(*stmt->expr, h);
    HashBody(stmt->then_body, h);
    HashBody(stmt->else_body, h);
  }
}

}  // namespace

uint64_t HashFunctionBody(const prog::FunctionDef& fn) {
  Hasher h;
  h.Str(fn.name);
  h.Size(fn.params.size());
  for (const std::string& param : fn.params) h.Str(param);
  HashBody(fn.body, &h);
  return h.digest();
}

uint64_t HashSchemaCatalog(const db::SchemaCatalog* schemas) {
  // A null catalog means the same thing as an empty one (no SELECT *
  // expansion possible), so both hash to the 0-sized digest.
  static const db::SchemaCatalog kEmpty;
  if (schemas == nullptr) schemas = &kEmpty;
  Hasher h;
  h.Size(schemas->size());
  for (const auto& [table, schema] : *schemas) {
    h.Str(table);
    h.Size(schema.size());
    for (const db::Column& column : schema.columns()) {
      h.Str(column.name);
      h.U64(static_cast<uint64_t>(column.type));
    }
  }
  return h.digest();
}

ProgramHashes ProgramHashes::Compute(const prog::Program& program,
                                     const db::SchemaCatalog* schemas) {
  ProgramHashes out;
  const auto& functions = program.functions();
  out.body.reserve(functions.size());
  out.callees.resize(functions.size());
  for (size_t i = 0; i < functions.size(); ++i) {
    out.fn_index[functions[i].name] = i;
    out.body.push_back(HashFunctionBody(functions[i]));
  }
  for (size_t i = 0; i < functions.size(); ++i) {
    std::set<std::string> seen;
    // Deterministic walk over every nested statement list, collecting the
    // user-function callee names.
    std::vector<const prog::StmtList*> work = {&functions[i].body};
    while (!work.empty()) {
      const prog::StmtList* body = work.back();
      work.pop_back();
      for (const auto& stmt : *body) {
        if (stmt->expr != nullptr) {
          std::vector<const prog::Expr*> stmt_calls;
          prog::CollectCalls(*stmt->expr, &stmt_calls);
          for (const prog::Expr* call : stmt_calls) {
            if (out.fn_index.contains(call->name)) seen.insert(call->name);
          }
        }
        if (!stmt->then_body.empty()) work.push_back(&stmt->then_body);
        if (!stmt->else_body.empty()) work.push_back(&stmt->else_body);
      }
    }
    for (const std::string& name : seen) {
      out.callees[i].push_back(out.fn_index.at(name));
    }
  }
  out.schema_hash = HashSchemaCatalog(schemas);
  return out;
}

}  // namespace adprom::analysis
