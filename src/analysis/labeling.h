#ifndef ADPROM_ANALYSIS_LABELING_H_
#define ADPROM_ANALYSIS_LABELING_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/ctm.h"
#include "analysis/taint.h"
#include "db/schema.h"
#include "prog/program.h"

namespace adprom::analysis {

/// Builds the observable symbol of a TD-output site, the paper's
/// `printf_Q[bid]` decorated with the owning function so block ids stay
/// unique program-wide (e.g. "print_Qmain_12").
std::string LabeledObservable(const std::string& callee,
                              const std::string& function, int block_id);

/// Collects every call expression of the program keyed by call-site id.
std::map<int, const prog::Expr*> IndexCallSites(
    const prog::Program& program);

/// Best-effort static extraction of the DB tables a set of source call
/// sites read: scans string literals inside each source call's argument
/// expressions for FROM/INTO/UPDATE table references. Dynamic provenance
/// (carried on tainted values at run time) supplements this when the query
/// text is not a static literal.
std::vector<std::string> StaticSourceTables(
    const prog::Program& program, const std::set<int>& source_sites);

/// Column-level provenance for a set of source call sites: the sorted
/// union of the `table.column` sets their static query literals can read
/// (`SELECT *` expands through `schemas`). Empty for dynamic query text.
std::vector<std::string> StaticSourceColumns(
    const prog::Program& program, const std::set<int>& source_sites,
    const db::SchemaCatalog& schemas);

/// Applies the taint result to a function's CTM: sites whose call_site_id
/// is a labeled sink get `labeled = true`, the `_Q` observable, and their
/// statically resolvable source tables.
void ApplyTaintLabels(const TaintResult& taint, const prog::Program& program,
                      Ctm* ctm);

/// Same, plus column-level provenance (`Site::source_columns`) resolved
/// through the schema catalog. The table-level labels are identical to
/// the overload above — columns are strictly additive.
void ApplyTaintLabels(const TaintResult& taint, const prog::Program& program,
                      const db::SchemaCatalog& schemas, Ctm* ctm);

}  // namespace adprom::analysis

#endif  // ADPROM_ANALYSIS_LABELING_H_
