#ifndef ADPROM_ANALYSIS_TAINT_H_
#define ADPROM_ANALYSIS_TAINT_H_

#include <map>
#include <set>
#include <string>

#include "prog/program.h"
#include "util/status.h"

namespace adprom::analysis {

/// Which library calls introduce targeted data (TD) and which ones output
/// it. These mirror the paper's input statements (PQexec, mysql_query, the
/// fetch/getvalue family) and output statements (printf, fprintf, write...).
struct TaintConfig {
  std::set<std::string> source_calls;
  std::set<std::string> sink_calls;

  /// Default MiniApp bindings:
  ///   sources: db_query, db_fetch_row, db_getvalue, db_ntuples, row_get
  ///   sinks:   print, print_err, write_file, fprint, send_net
  static TaintConfig Default();
};

/// The program's data-dependency graph restricted to what AD-PROM needs:
/// for every output call site that may emit TD, the set of DB-input call
/// sites the data can originate from. Also reports which variables carry
/// taint, for diagnostics.
struct TaintResult {
  /// sink call_site_id -> set of source call_site_ids (the DDG edges).
  std::map<int, std::set<int>> labeled_sinks;
  /// function -> tainted variable -> contributing source call_site_ids.
  std::map<std::string, std::map<std::string, std::set<int>>> tainted_vars;

  bool IsLabeledSink(int call_site_id) const {
    return labeled_sinks.contains(call_site_id);
  }
};

/// Flow-insensitive, interprocedural may-taint analysis over a finalized
/// program. Taint enters at source calls, propagates through assignments,
/// expressions, user-function arguments and return values, and is observed
/// at sink calls. Over-approximates the dynamic taint the interpreter
/// tracks exactly (every dynamically labeled event corresponds to a
/// statically labeled site — tested as a property). Implicit flows
/// (through branch conditions) are not tracked, matching the paper.
util::Result<TaintResult> RunTaintAnalysis(const prog::Program& program,
                                           const TaintConfig& config);

}  // namespace adprom::analysis

#endif  // ADPROM_ANALYSIS_TAINT_H_
