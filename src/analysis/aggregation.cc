#include "analysis/aggregation.h"

#include <vector>

#include "util/logging.h"
#include "util/strings.h"

namespace adprom::analysis {

namespace {

/// A CTM entry endpoint: -1 denotes ε (as a row) or ε' (as a column);
/// other values are site indices.
constexpr int kBorder = -1;

void Add(Ctm* m, int r, int c, double v) {
  if (v == 0.0) return;
  if (r == kBorder && c == kBorder) {
    m->add_entry_to_exit(v);
  } else if (r == kBorder) {
    m->add_entry_to(static_cast<size_t>(c), v);
  } else if (c == kBorder) {
    m->add_to_exit(static_cast<size_t>(r), v);
  } else {
    m->add_between(static_cast<size_t>(r), static_cast<size_t>(c), v);
  }
}

struct Endpoint {
  int index;      // kBorder or site index
  double weight;
};

/// Collects the non-zero inflow into site `s` (rows, including ε) and the
/// non-zero outflow (columns, including ε'), excluding the s↔s cell, which
/// must be zero for sites produced by the acyclic forecast.
void GatherFlows(const Ctm& m, size_t s, std::vector<Endpoint>* in,
                 std::vector<Endpoint>* out) {
  const int si = static_cast<int>(s);
  ADPROM_CHECK_MSG(m.between(s, s) == 0.0,
                   "self-transition on an eliminated site");
  if (m.entry_to(s) > 0.0) in->push_back({kBorder, m.entry_to(s)});
  if (m.to_exit(s) > 0.0) out->push_back({kBorder, m.to_exit(s)});
  for (size_t i = 0; i < m.num_sites(); ++i) {
    if (static_cast<int>(i) == si) continue;
    if (m.between(i, s) > 0.0)
      in->push_back({static_cast<int>(i), m.between(i, s)});
    if (m.between(s, i) > 0.0)
      out->push_back({static_cast<int>(i), m.between(s, i)});
  }
}

/// Eliminates caller site `s` (which invokes the fully aggregated callee
/// matrix `f`), splicing f's first/last/internal call-pair probabilities
/// into `m` per the four cases documented in the header.
void InlineSite(Ctm* m, size_t s, const Ctm& f) {
  const double reach = m->site(s).reachability;
  std::vector<Endpoint> in;
  std::vector<Endpoint> out;
  GatherFlows(*m, s, &in, &out);
  double inflow = 0.0;
  for (const Endpoint& e : in) inflow += e.weight;

  // Import f's sites (deduplicated by key: a callee inlined through
  // several paths contributes one copy, with summed weights).
  std::vector<size_t> fmap(f.num_sites());
  for (size_t k = 0; k < f.num_sites(); ++k) {
    fmap[k] = m->AddSite(f.site(k));
  }

  // Case 1 — transitions into f's first calls.
  for (const Endpoint& r : in) {
    for (size_t k = 0; k < f.num_sites(); ++k) {
      const double p = f.entry_to(k);
      if (p > 0.0) Add(m, r.index, static_cast<int>(fmap[k]), r.weight * p);
    }
  }
  // Case 2 — transitions out of f's last calls.
  for (const Endpoint& c : out) {
    for (size_t k = 0; k < f.num_sites(); ++k) {
      const double p = f.to_exit(k);
      if (p > 0.0) Add(m, static_cast<int>(fmap[k]), c.index, p * c.weight);
    }
  }
  // Case 3 — call pairs inside f, weighted by the total inflow into this
  // invocation site.
  if (inflow > 0.0) {
    for (size_t k = 0; k < f.num_sites(); ++k) {
      for (size_t l = 0; l < f.num_sites(); ++l) {
        const double p = f.between(k, l);
        if (p > 0.0) {
          Add(m, static_cast<int>(fmap[k]), static_cast<int>(fmap[l]),
              inflow * p);
        }
      }
    }
  }
  // Case 4 / pass-through — call-free executions of f bridge the caller's
  // surrounding pairs. The division by the site's local reachability keeps
  // the matrix flow-conserving (see header).
  const double pass = f.entry_to_exit();
  if (pass > 0.0 && reach > 0.0) {
    for (const Endpoint& r : in) {
      for (const Endpoint& c : out) {
        Add(m, r.index, c.index, r.weight * pass * c.weight / reach);
      }
    }
  }
  m->RemoveSite(s);
}

/// Eliminates a recursive call site as an opaque pass-through of weight 1
/// (static analysis does not expand recursion).
void InlineRecursivePassthrough(Ctm* m, size_t s) {
  const double reach = m->site(s).reachability;
  std::vector<Endpoint> in;
  std::vector<Endpoint> out;
  GatherFlows(*m, s, &in, &out);
  if (reach > 0.0) {
    for (const Endpoint& r : in) {
      for (const Endpoint& c : out) {
        Add(m, r.index, c.index, r.weight * c.weight / reach);
      }
    }
  }
  m->RemoveSite(s);
}

}  // namespace

util::Result<Ctm> AggregateProgramCtm(
    const std::map<std::string, Ctm>& function_ctms,
    const prog::CallGraph& call_graph) {
  std::map<std::string, Ctm> aggregated;
  for (const std::string& fn : call_graph.reverse_topo_order()) {
    auto it = function_ctms.find(fn);
    if (it == function_ctms.end()) {
      return util::Status::NotFound("no CTM for function: " + fn);
    }
    Ctm ctm = it->second;  // Working copy.
    // Eliminate user-function sites until only library calls remain.
    for (;;) {
      int target = -1;
      for (size_t i = 0; i < ctm.num_sites(); ++i) {
        if (ctm.site(i).is_user_fn) {
          target = static_cast<int>(i);
          break;
        }
      }
      if (target < 0) break;
      const std::string callee = ctm.site(static_cast<size_t>(target)).callee;
      auto agg_it = aggregated.find(callee);
      if (agg_it == aggregated.end()) {
        // Callee not aggregated yet => a cyclic (recursive) CG edge.
        InlineRecursivePassthrough(&ctm, static_cast<size_t>(target));
      } else {
        InlineSite(&ctm, static_cast<size_t>(target), agg_it->second);
      }
    }
    aggregated.emplace(fn, std::move(ctm));
  }
  auto main_it = aggregated.find("main");
  if (main_it == aggregated.end()) {
    return util::Status::NotFound("call graph has no main()");
  }
  return std::move(main_it->second);
}

}  // namespace adprom::analysis
