#include "analysis/aggregation.h"

#include <vector>

#include "analysis/hashing.h"
#include "util/logging.h"
#include "util/strings.h"

namespace adprom::analysis {

namespace {

/// FNV-1a over everything the elimination reads from a function's own CTM:
/// the site identities (including reachability and provenance) and every
/// probability cell.
uint64_t HashCtm(const Ctm& ctm) {
  Hasher h;
  h.Str(ctm.function());
  const size_t n = ctm.num_sites();
  h.Size(n);
  for (size_t i = 0; i < n; ++i) {
    const Site& site = ctm.site(i);
    h.Str(site.function);
    h.I64(site.block_id);
    h.Str(site.callee);
    h.Bool(site.is_user_fn);
    h.I64(site.call_site_id);
    h.Bool(site.labeled);
    h.Str(site.observable);
    h.F64(site.reachability);
    h.Size(site.source_tables.size());
    for (const std::string& table : site.source_tables) h.Str(table);
    h.Size(site.source_columns.size());
    for (const std::string& column : site.source_columns) h.Str(column);
  }
  h.F64(ctm.entry_to_exit());
  for (size_t i = 0; i < n; ++i) {
    h.F64(ctm.entry_to(i));
    h.F64(ctm.to_exit(i));
    for (size_t j = 0; j < n; ++j) h.F64(ctm.between(i, j));
  }
  return h.digest();
}

/// A CTM entry endpoint: -1 denotes ε (as a row) or ε' (as a column);
/// other values are site indices.
constexpr int kBorder = -1;

void Add(Ctm* m, int r, int c, double v) {
  if (v == 0.0) return;
  if (r == kBorder && c == kBorder) {
    m->add_entry_to_exit(v);
  } else if (r == kBorder) {
    m->add_entry_to(static_cast<size_t>(c), v);
  } else if (c == kBorder) {
    m->add_to_exit(static_cast<size_t>(r), v);
  } else {
    m->add_between(static_cast<size_t>(r), static_cast<size_t>(c), v);
  }
}

struct Endpoint {
  int index;      // kBorder or site index
  double weight;
};

/// Collects the non-zero inflow into site `s` (rows, including ε) and the
/// non-zero outflow (columns, including ε'), excluding the s↔s cell, which
/// must be zero for sites produced by the acyclic forecast.
void GatherFlows(const Ctm& m, size_t s, std::vector<Endpoint>* in,
                 std::vector<Endpoint>* out) {
  const int si = static_cast<int>(s);
  ADPROM_CHECK_MSG(m.between(s, s) == 0.0,
                   "self-transition on an eliminated site");
  if (m.entry_to(s) > 0.0) in->push_back({kBorder, m.entry_to(s)});
  if (m.to_exit(s) > 0.0) out->push_back({kBorder, m.to_exit(s)});
  for (size_t i = 0; i < m.num_sites(); ++i) {
    if (static_cast<int>(i) == si) continue;
    if (m.between(i, s) > 0.0)
      in->push_back({static_cast<int>(i), m.between(i, s)});
    if (m.between(s, i) > 0.0)
      out->push_back({static_cast<int>(i), m.between(s, i)});
  }
}

/// Eliminates caller site `s` (which invokes the fully aggregated callee
/// matrix `f`), splicing f's first/last/internal call-pair probabilities
/// into `m` per the four cases documented in the header.
void InlineSite(Ctm* m, size_t s, const Ctm& f) {
  const double reach = m->site(s).reachability;
  std::vector<Endpoint> in;
  std::vector<Endpoint> out;
  GatherFlows(*m, s, &in, &out);
  double inflow = 0.0;
  for (const Endpoint& e : in) inflow += e.weight;

  // Import f's sites (deduplicated by key: a callee inlined through
  // several paths contributes one copy, with summed weights).
  std::vector<size_t> fmap(f.num_sites());
  for (size_t k = 0; k < f.num_sites(); ++k) {
    fmap[k] = m->AddSite(f.site(k));
  }

  // Case 1 — transitions into f's first calls.
  for (const Endpoint& r : in) {
    for (size_t k = 0; k < f.num_sites(); ++k) {
      const double p = f.entry_to(k);
      if (p > 0.0) Add(m, r.index, static_cast<int>(fmap[k]), r.weight * p);
    }
  }
  // Case 2 — transitions out of f's last calls.
  for (const Endpoint& c : out) {
    for (size_t k = 0; k < f.num_sites(); ++k) {
      const double p = f.to_exit(k);
      if (p > 0.0) Add(m, static_cast<int>(fmap[k]), c.index, p * c.weight);
    }
  }
  // Case 3 — call pairs inside f, weighted by the total inflow into this
  // invocation site.
  if (inflow > 0.0) {
    for (size_t k = 0; k < f.num_sites(); ++k) {
      for (size_t l = 0; l < f.num_sites(); ++l) {
        const double p = f.between(k, l);
        if (p > 0.0) {
          Add(m, static_cast<int>(fmap[k]), static_cast<int>(fmap[l]),
              inflow * p);
        }
      }
    }
  }
  // Case 4 / pass-through — call-free executions of f bridge the caller's
  // surrounding pairs. The division by the site's local reachability keeps
  // the matrix flow-conserving (see header).
  const double pass = f.entry_to_exit();
  if (pass > 0.0 && reach > 0.0) {
    for (const Endpoint& r : in) {
      for (const Endpoint& c : out) {
        Add(m, r.index, c.index, r.weight * pass * c.weight / reach);
      }
    }
  }
  m->RemoveSite(s);
}

/// Eliminates a recursive call site as an opaque pass-through of weight 1
/// (static analysis does not expand recursion).
void InlineRecursivePassthrough(Ctm* m, size_t s) {
  const double reach = m->site(s).reachability;
  std::vector<Endpoint> in;
  std::vector<Endpoint> out;
  GatherFlows(*m, s, &in, &out);
  if (reach > 0.0) {
    for (const Endpoint& r : in) {
      for (const Endpoint& c : out) {
        Add(m, r.index, c.index, r.weight * c.weight / reach);
      }
    }
  }
  m->RemoveSite(s);
}

}  // namespace

util::Result<Ctm> AggregateProgramCtm(
    const std::map<std::string, Ctm>& function_ctms,
    const prog::CallGraph& call_graph, AggregationCache* cache,
    AggregationStats* stats) {
  std::map<std::string, Ctm> aggregated;
  // Combined (Merkle) key per aggregated function: hash of its own CTM
  // mixed with its callees' combined keys in deterministic (set) order.
  std::map<std::string, uint64_t> combined_keys;
  for (const std::string& fn : call_graph.reverse_topo_order()) {
    auto it = function_ctms.find(fn);
    if (it == function_ctms.end()) {
      return util::Status::NotFound("no CTM for function: " + fn);
    }
    Hasher key_hash(HashCtm(it->second));
    for (const std::string& callee : call_graph.Callees(fn)) {
      key_hash.Str(callee);
      auto ck = combined_keys.find(callee);
      // A callee with no combined key yet is either a library function or
      // a cyclic edge — both are eliminated without a callee matrix, so
      // the marker (mixed with the name above) identifies them stably.
      key_hash.U64(ck == combined_keys.end() ? kRecursionMarker : ck->second);
    }
    const uint64_t key = key_hash.digest();
    combined_keys[fn] = key;
    if (stats != nullptr) ++stats->functions;

    if (cache != nullptr) {
      auto entry = cache->entries().find(fn);
      if (entry != cache->entries().end() && entry->second.key == key) {
        if (stats != nullptr) ++stats->cache_hits;
        aggregated.emplace(fn, entry->second.aggregated);
        continue;
      }
    }
    if (stats != nullptr) ++stats->cache_misses;

    Ctm ctm = it->second;  // Working copy.
    // Eliminate user-function sites until only library calls remain.
    for (;;) {
      int target = -1;
      for (size_t i = 0; i < ctm.num_sites(); ++i) {
        if (ctm.site(i).is_user_fn) {
          target = static_cast<int>(i);
          break;
        }
      }
      if (target < 0) break;
      const std::string callee = ctm.site(static_cast<size_t>(target)).callee;
      auto agg_it = aggregated.find(callee);
      if (agg_it == aggregated.end()) {
        // Callee not aggregated yet => a cyclic (recursive) CG edge.
        InlineRecursivePassthrough(&ctm, static_cast<size_t>(target));
      } else {
        InlineSite(&ctm, static_cast<size_t>(target), agg_it->second);
      }
    }
    if (cache != nullptr) cache->entries()[fn] = {key, ctm};
    aggregated.emplace(fn, std::move(ctm));
  }
  auto main_it = aggregated.find("main");
  if (main_it == aggregated.end()) {
    return util::Status::NotFound("call graph has no main()");
  }
  return std::move(main_it->second);
}

}  // namespace adprom::analysis
