#include "runtime/trace_io.h"

#include <cstdlib>

#include "util/strings.h"

namespace adprom::runtime {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t': out += "%09"; break;
      case '\n': out += "%0A"; break;
      case '%': out += "%25"; break;
      case ',': out += "%2C"; break;
      default: out += c; break;
    }
  }
  return out;
}

util::Result<std::string> Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) {
      return util::Status::ParseError("truncated escape in trace field");
    }
    const std::string hex = s.substr(i + 1, 2);
    char* end = nullptr;
    const long value = std::strtol(hex.c_str(), &end, 16);
    if (end != hex.c_str() + 2) {
      return util::Status::ParseError("bad escape in trace field: %" + hex);
    }
    out += static_cast<char>(value);
    i += 2;
  }
  return std::move(out);
}

}  // namespace

std::string SerializeTrace(const Trace& trace) {
  std::string out;
  for (const CallEvent& event : trace) {
    out += Escape(event.callee);
    out += '\t';
    out += Escape(event.caller);
    out += '\t';
    out += std::to_string(event.block_id);
    out += '\t';
    out += std::to_string(event.call_site_id);
    out += '\t';
    out += event.td_output ? '1' : '0';
    out += '\t';
    out += Escape(event.query_signature);
    out += '\t';
    for (size_t i = 0; i < event.source_tables.size(); ++i) {
      if (i > 0) out += ',';
      out += Escape(event.source_tables[i]);
    }
    out += '\n';
  }
  return out;
}

util::Result<Trace> ParseTrace(const std::string& text) {
  Trace trace;
  size_t line_no = 0;
  for (const std::string& line : util::Split(text, '\n')) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = util::Split(line, '\t');
    if (fields.size() != 7) {
      return util::Status::ParseError(util::StrFormat(
          "trace line %zu: expected 7 fields, got %zu", line_no,
          fields.size()));
    }
    CallEvent event;
    ADPROM_ASSIGN_OR_RETURN(event.callee, Unescape(fields[0]));
    ADPROM_ASSIGN_OR_RETURN(event.caller, Unescape(fields[1]));
    event.block_id = static_cast<int>(std::strtol(fields[2].c_str(),
                                                  nullptr, 10));
    event.call_site_id = static_cast<int>(std::strtol(fields[3].c_str(),
                                                      nullptr, 10));
    if (fields[4] != "0" && fields[4] != "1") {
      return util::Status::ParseError(util::StrFormat(
          "trace line %zu: td flag must be 0/1", line_no));
    }
    event.td_output = fields[4] == "1";
    ADPROM_ASSIGN_OR_RETURN(event.query_signature, Unescape(fields[5]));
    if (!fields[6].empty()) {
      for (const std::string& table : util::Split(fields[6], ',')) {
        ADPROM_ASSIGN_OR_RETURN(std::string unescaped, Unescape(table));
        event.source_tables.push_back(std::move(unescaped));
      }
    }
    trace.push_back(std::move(event));
  }
  return std::move(trace);
}

}  // namespace adprom::runtime
