#include "runtime/trace_io.h"

#include <cstdlib>

#include "util/strings.h"

namespace adprom::runtime {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t': out += "%09"; break;
      case '\n': out += "%0A"; break;
      case '%': out += "%25"; break;
      case ',': out += "%2C"; break;
      default: out += c; break;
    }
  }
  return out;
}

util::Result<std::string> Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) {
      return util::Status::ParseError("truncated escape in trace field");
    }
    const std::string hex = s.substr(i + 1, 2);
    char* end = nullptr;
    const long value = std::strtol(hex.c_str(), &end, 16);
    if (end != hex.c_str() + 2) {
      return util::Status::ParseError("bad escape in trace field: %" + hex);
    }
    out += static_cast<char>(value);
    i += 2;
  }
  return std::move(out);
}

/// Strict base-10 integer: optional sign, at least one digit, nothing
/// else. strtol alone would silently turn garbage into 0.
util::Result<int> ParseIntField(const std::string& field,
                                const char* what) {
  if (field.empty()) {
    return util::Status::ParseError(std::string(what) + " field is empty");
  }
  char* end = nullptr;
  const long value = std::strtol(field.c_str(), &end, 10);
  if (end != field.c_str() + field.size()) {
    return util::Status::ParseError(std::string(what) +
                                    " field is not an integer: " + field);
  }
  return static_cast<int>(value);
}

}  // namespace

std::string SerializeEvent(const CallEvent& event) {
  std::string out;
  out += Escape(event.callee);
  out += '\t';
  out += Escape(event.caller);
  out += '\t';
  out += std::to_string(event.block_id);
  out += '\t';
  out += std::to_string(event.call_site_id);
  out += '\t';
  out += event.td_output ? '1' : '0';
  out += '\t';
  out += Escape(event.query_signature);
  out += '\t';
  for (size_t i = 0; i < event.source_tables.size(); ++i) {
    if (i > 0) out += ',';
    out += Escape(event.source_tables[i]);
  }
  return out;
}

std::string SerializeTrace(const Trace& trace) {
  std::string out;
  for (const CallEvent& event : trace) {
    out += SerializeEvent(event);
    out += '\n';
  }
  return out;
}

util::Result<CallEvent> ParseTraceLine(const std::string& line) {
  const std::vector<std::string> fields = util::Split(line, '\t');
  if (fields.size() != 7) {
    return util::Status::ParseError(util::StrFormat(
        "expected 7 fields, got %zu", fields.size()));
  }
  CallEvent event;
  ADPROM_ASSIGN_OR_RETURN(event.callee, Unescape(fields[0]));
  ADPROM_ASSIGN_OR_RETURN(event.caller, Unescape(fields[1]));
  ADPROM_ASSIGN_OR_RETURN(event.block_id,
                          ParseIntField(fields[2], "block id"));
  ADPROM_ASSIGN_OR_RETURN(event.call_site_id,
                          ParseIntField(fields[3], "call site id"));
  if (fields[4] != "0" && fields[4] != "1") {
    return util::Status::ParseError("td flag must be 0/1");
  }
  event.td_output = fields[4] == "1";
  ADPROM_ASSIGN_OR_RETURN(event.query_signature, Unescape(fields[5]));
  if (!fields[6].empty()) {
    for (const std::string& table : util::Split(fields[6], ',')) {
      ADPROM_ASSIGN_OR_RETURN(std::string unescaped, Unescape(table));
      event.source_tables.push_back(std::move(unescaped));
    }
  }
  return std::move(event);
}

util::Result<Trace> ParseTrace(const std::string& text) {
  Trace trace;
  size_t line_no = 0;
  for (const std::string& line : util::Split(text, '\n')) {
    ++line_no;
    if (line.empty()) continue;
    auto event = ParseTraceLine(line);
    if (!event.ok()) {
      return util::Status::ParseError(util::StrFormat(
          "trace line %zu: %s", line_no,
          event.status().message().c_str()));
    }
    trace.push_back(std::move(event).value());
  }
  return std::move(trace);
}

util::Result<bool> TraceReader::Next(CallEvent* event) {
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_number_;
    if (line.empty()) continue;
    auto parsed = ParseTraceLine(line);
    if (!parsed.ok()) {
      return util::Status::ParseError(util::StrFormat(
          "trace line %zu: %s", line_number_,
          parsed.status().message().c_str()));
    }
    *event = std::move(parsed).value();
    return true;
  }
  return false;
}

}  // namespace adprom::runtime
