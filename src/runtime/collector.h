#ifndef ADPROM_RUNTIME_COLLECTOR_H_
#define ADPROM_RUNTIME_COLLECTOR_H_

#include <map>
#include <string>
#include <vector>

#include "runtime/call_event.h"
#include "runtime/value.h"

namespace adprom::runtime {

/// Instrumentation hook the interpreter invokes on every library call,
/// after argument evaluation. `args` are the evaluated arguments (visible
/// to the hook exactly as Dyninst instrumentation sees the registers).
class CallCollector {
 public:
  virtual ~CallCollector() = default;
  virtual void OnCall(const CallEvent& event,
                      const std::vector<RtValue>& args) = 0;
};

/// The paper's Calls Collector: records only the call name, caller and
/// block id (plus the TD label). This minimalism is why it beats ltrace by
/// ~78% in Table VI.
class LightCollector : public CallCollector {
 public:
  void OnCall(const CallEvent& event,
              const std::vector<RtValue>& args) override;

  const Trace& trace() const { return trace_; }
  Trace TakeTrace() { return std::move(trace_); }
  void Clear() { trace_.clear(); }

 private:
  Trace trace_;
};

/// An ltrace-like tracer: formats every argument into a text line and
/// translates the call site "address" to a caller symbol through a lookup
/// table (the addr2line step the paper's baseline pays for). Kept as the
/// Table VI comparison baseline.
class HeavyTracer : public CallCollector {
 public:
  void OnCall(const CallEvent& event,
              const std::vector<RtValue>& args) override;

  const std::vector<std::string>& lines() const { return lines_; }
  const Trace& trace() const { return trace_; }
  void Clear() {
    lines_.clear();
    trace_.clear();
  }

 private:
  std::vector<std::string> lines_;
  Trace trace_;
  // Simulated symbol table: "address" (site id) -> resolved description.
  std::map<int, std::string> symbol_cache_;
};

/// Discards events; used to measure the interpreter's un-instrumented
/// baseline cost.
class NullCollector : public CallCollector {
 public:
  void OnCall(const CallEvent& event,
              const std::vector<RtValue>& args) override;
  size_t count() const { return count_; }

 private:
  size_t count_ = 0;
};

}  // namespace adprom::runtime

#endif  // ADPROM_RUNTIME_COLLECTOR_H_
