#ifndef ADPROM_RUNTIME_TRACE_IO_H_
#define ADPROM_RUNTIME_TRACE_IO_H_

#include <istream>
#include <string>

#include "runtime/call_event.h"
#include "util/status.h"

namespace adprom::runtime {

/// Text serialization of call traces. In a deployment the Calls Collector
/// runs next to the application while the Detection Engine may run
/// elsewhere (the paper's architecture diagrams the two as separate
/// components); this is the wire/storage format between them.
///
/// One line per event, tab-separated:
///   callee <TAB> caller <TAB> block <TAB> site <TAB> td <TAB>
///   signature <TAB> table[,table...]
/// Text fields are percent-escaped for tab/newline/percent/comma.
std::string SerializeTrace(const Trace& trace);

/// Serializes one event as one line (no trailing newline) — the unit the
/// streaming wire format frames.
std::string SerializeEvent(const CallEvent& event);

/// Parses one serialized event line (no trailing newline). Every field is
/// validated — field count, integer ids, the 0/1 td flag, escapes — and
/// malformed input fails with a clean ParseError, never a crash.
util::Result<CallEvent> ParseTraceLine(const std::string& line);

/// Parses a serialized trace; fails with ParseError on malformed lines.
util::Result<Trace> ParseTrace(const std::string& text);

/// Incremental reader for services that score events as they arrive: pulls
/// one event per line off a stream without materializing the whole trace.
/// Blank lines are skipped; parse errors name the offending line.
class TraceReader {
 public:
  /// `in` must outlive the reader.
  explicit TraceReader(std::istream* in) : in_(in) {}

  /// Reads the next event into `*event`. Returns true on success, false
  /// on clean end-of-stream, and ParseError on a malformed line.
  util::Result<bool> Next(CallEvent* event);

  /// 1-based number of the last line consumed.
  size_t line_number() const { return line_number_; }

 private:
  std::istream* in_;
  size_t line_number_ = 0;
};

}  // namespace adprom::runtime

#endif  // ADPROM_RUNTIME_TRACE_IO_H_
