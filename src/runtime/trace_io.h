#ifndef ADPROM_RUNTIME_TRACE_IO_H_
#define ADPROM_RUNTIME_TRACE_IO_H_

#include <string>

#include "runtime/call_event.h"
#include "util/status.h"

namespace adprom::runtime {

/// Text serialization of call traces. In a deployment the Calls Collector
/// runs next to the application while the Detection Engine may run
/// elsewhere (the paper's architecture diagrams the two as separate
/// components); this is the wire/storage format between them.
///
/// One line per event, tab-separated:
///   callee <TAB> caller <TAB> block <TAB> site <TAB> td <TAB>
///   signature <TAB> table[,table...]
/// Text fields are percent-escaped for tab/newline/percent/comma.
std::string SerializeTrace(const Trace& trace);

/// Parses a serialized trace; fails with ParseError on malformed lines.
util::Result<Trace> ParseTrace(const std::string& text);

}  // namespace adprom::runtime

#endif  // ADPROM_RUNTIME_TRACE_IO_H_
