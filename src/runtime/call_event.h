#ifndef ADPROM_RUNTIME_CALL_EVENT_H_
#define ADPROM_RUNTIME_CALL_EVENT_H_

#include <string>
#include <vector>

namespace adprom::runtime {

/// One intercepted library call — what the paper's Calls Collector records
/// (call name + caller) extended with the block id and the dynamic
/// taint/provenance the Dyninst instrumentation provides.
struct CallEvent {
  std::string callee;      // raw library function name ("print")
  std::string caller;      // function the call was issued from
  int block_id = -1;       // CFG node id of the call site
  int call_site_id = -1;   // program-unique AST site id
  bool td_output = false;  // an output call that received targeted data
  std::vector<std::string> source_tables;  // provenance of the TD
  /// For DB input calls: the normalized signature of the submitted query
  /// (the §VII mitigation — profiles may include it in the observable).
  std::string query_signature;

  /// The symbol the Detection Engine observes: `callee`, or the labeled
  /// form `callee_Q<fn>_<block>` when td_output is set.
  std::string Observable() const;
};

/// A program trace: the sequence of intercepted library calls of one run.
using Trace = std::vector<CallEvent>;

}  // namespace adprom::runtime

#endif  // ADPROM_RUNTIME_CALL_EVENT_H_
