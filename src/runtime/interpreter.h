#ifndef ADPROM_RUNTIME_INTERPRETER_H_
#define ADPROM_RUNTIME_INTERPRETER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/taint.h"
#include "db/database.h"
#include "prog/cfg.h"
#include "prog/program.h"
#include "runtime/collector.h"
#include "runtime/value.h"
#include "util/status.h"

namespace adprom::runtime {

/// A file written by the interpreted program. Files accumulate the
/// provenance of everything written into them — the paper's §VII
/// mitigation "when a call like fprintf/write stores TD, the file is
/// labeled; actions on such files are monitored".
struct FileState {
  std::vector<std::string> lines;
  std::set<std::string> provenance;  // tables whose data reached the file

  bool tainted() const { return !provenance.empty(); }
  size_t size() const { return lines.size(); }
};

/// Captured I/O of one program run: what the program printed, wrote to
/// files, and sent over the network. Tests assert data leakage against
/// these channels.
struct ProgramIo {
  std::vector<std::string> inputs;  // consumed by scan()/input_int()
  size_t input_cursor = 0;
  std::vector<std::string> screen;          // print / print_err
  std::map<std::string, FileState> files;   // write_file / fprint
  std::vector<std::string> network;         // send_net / send_file
};

struct InterpreterOptions {
  /// Aborts runs that exceed this many evaluated statements/expressions
  /// (guards against accidental infinite loops in corpus programs).
  size_t max_steps = 5'000'000;
};

/// Executes a MiniApp program against the in-memory database, tracking
/// value provenance (dynamic taint) and reporting every library call to
/// the attached collector — the substitute for running the real client
/// binary under Dyninst instrumentation.
///
/// Built-in library functions:
///   I/O       : scan, input_int, has_input, print, print_err, fprint,
///               write_file, read_file, send_net, send_file
///   DB client : db_query, db_ntuples, db_nfields, db_getvalue,
///               db_fetch_row, row_get, is_null
///   strings   : str, len, substr, to_int, upper, lower, contains, trim,
///               replace, like_match, checksum, compress
///
/// Files written by the program are *labeled* with the provenance of the
/// data stored in them; read_file returns tainted data from a labeled
/// file and send_file of a labeled file is reported as a TD output even
/// though its direct arguments are plain strings (§VII mitigation).
class Interpreter {
 public:
  /// `program` must be finalized; `cfgs` must come from BuildAllCfgs on
  /// the same program (block ids must match). `database` may be null for
  /// programs that issue no DB calls.
  Interpreter(const prog::Program& program,
              const std::map<std::string, prog::Cfg>& cfgs,
              db::Database* database,
              InterpreterOptions options = InterpreterOptions());

  /// The sink set used for dynamic TD labeling; defaults to
  /// analysis::TaintConfig::Default().
  void set_taint_config(analysis::TaintConfig config);

  void set_collector(CallCollector* collector) { collector_ = collector; }

  /// Runs main() with the given input feed. Returns main's return value.
  /// The captured I/O of the run is available via io() afterwards.
  util::Result<RtValue> Run(std::vector<std::string> inputs);

  const ProgramIo& io() const { return io_; }

 private:
  friend class Frame;

  struct ExecResult;

  util::Result<RtValue> CallFunction(const prog::FunctionDef& fn,
                                     std::vector<RtValue> args);
  util::Result<RtValue> EvalExpr(const prog::Expr& e,
                                 std::map<std::string, RtValue>* locals,
                                 const std::string& fn_name);
  util::Result<RtValue> EvalCall(const prog::Expr& call,
                                 std::map<std::string, RtValue>* locals,
                                 const std::string& fn_name);
  util::Result<RtValue> CallLibrary(const std::string& name,
                                    std::vector<RtValue>& args,
                                    const prog::Expr& call_expr,
                                    const std::string& caller);
  util::Status Step();

  const prog::Program& program_;
  const std::map<std::string, prog::Cfg>& cfgs_;
  db::Database* database_;
  InterpreterOptions options_;
  analysis::TaintConfig taint_config_;
  CallCollector* collector_ = nullptr;
  ProgramIo io_;
  size_t steps_ = 0;
};

}  // namespace adprom::runtime

#endif  // ADPROM_RUNTIME_INTERPRETER_H_
