#ifndef ADPROM_RUNTIME_VALUE_H_
#define ADPROM_RUNTIME_VALUE_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "db/query_result.h"

namespace adprom::runtime {

/// A handle to a query result held by the interpreted program, with the
/// cursor state db_fetch_row advances (the analogue of MYSQL_RES* /
/// PGresult*).
struct DbResultHandle {
  db::QueryResult result;
  size_t cursor = 0;
};

/// A fetched row handle (the analogue of MYSQL_ROW).
struct DbRowHandle {
  db::Row cells;
  std::string source_table;
};

/// A dynamically-typed runtime value of the interpreted program. Every
/// value carries *provenance*: the set of database tables its data was
/// derived from. Non-empty provenance == tainted (targeted data). This is
/// the exact dynamic counterpart of the static taint analysis; the paper
/// obtains it by instrumenting the running program with Dyninst.
class RtValue {
 public:
  RtValue() = default;  // null

  static RtValue Null() { return RtValue(); }
  static RtValue Int(int64_t v);
  static RtValue Real(double v);
  static RtValue Str(std::string v);
  static RtValue DbResult(std::shared_ptr<DbResultHandle> handle);
  static RtValue DbRow(std::shared_ptr<DbRowHandle> handle);

  bool is_null() const {
    return std::holds_alternative<std::monostate>(data_);
  }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_real() const { return std::holds_alternative<double>(data_); }
  bool is_str() const { return std::holds_alternative<std::string>(data_); }
  bool is_db_result() const {
    return std::holds_alternative<std::shared_ptr<DbResultHandle>>(data_);
  }
  bool is_db_row() const {
    return std::holds_alternative<std::shared_ptr<DbRowHandle>>(data_);
  }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsReal() const { return std::get<double>(data_); }
  const std::string& AsStr() const { return std::get<std::string>(data_); }
  const std::shared_ptr<DbResultHandle>& AsDbResult() const {
    return std::get<std::shared_ptr<DbResultHandle>>(data_);
  }
  const std::shared_ptr<DbRowHandle>& AsDbRow() const {
    return std::get<std::shared_ptr<DbRowHandle>>(data_);
  }

  /// Numeric view (int -> double); false for non-numeric values.
  bool TryNumeric(double* out) const;

  /// Truthiness for conditions: null/0/0.0/"" are false, everything else
  /// (including handles) is true; an exhausted row handle is false.
  bool Truthy() const;

  /// Human-readable rendering (used by print and the heavy tracer).
  std::string ToString() const;

  /// Provenance: DB tables this value's data derives from.
  const std::set<std::string>& provenance() const { return provenance_; }
  bool tainted() const { return !provenance_.empty(); }
  void AddProvenance(const std::string& table);
  void MergeProvenance(const RtValue& other);

 private:
  std::variant<std::monostate, int64_t, double, std::string,
               std::shared_ptr<DbResultHandle>,
               std::shared_ptr<DbRowHandle>>
      data_;
  std::set<std::string> provenance_;
};

}  // namespace adprom::runtime

#endif  // ADPROM_RUNTIME_VALUE_H_
