#include "runtime/value.h"

#include "util/strings.h"

namespace adprom::runtime {

RtValue RtValue::Int(int64_t v) {
  RtValue out;
  out.data_ = v;
  return out;
}

RtValue RtValue::Real(double v) {
  RtValue out;
  out.data_ = v;
  return out;
}

RtValue RtValue::Str(std::string v) {
  RtValue out;
  out.data_ = std::move(v);
  return out;
}

RtValue RtValue::DbResult(std::shared_ptr<DbResultHandle> handle) {
  RtValue out;
  if (!handle->result.source_table.empty()) {
    out.provenance_.insert(handle->result.source_table);
  }
  out.data_ = std::move(handle);
  return out;
}

RtValue RtValue::DbRow(std::shared_ptr<DbRowHandle> handle) {
  RtValue out;
  if (!handle->source_table.empty()) {
    out.provenance_.insert(handle->source_table);
  }
  out.data_ = std::move(handle);
  return out;
}

bool RtValue::TryNumeric(double* out) const {
  if (is_int()) {
    *out = static_cast<double>(AsInt());
    return true;
  }
  if (is_real()) {
    *out = AsReal();
    return true;
  }
  return false;
}

bool RtValue::Truthy() const {
  if (is_null()) return false;
  if (is_int()) return AsInt() != 0;
  if (is_real()) return AsReal() != 0.0;
  if (is_str()) return !AsStr().empty();
  if (is_db_result()) return true;
  if (is_db_row()) return !AsDbRow()->cells.empty();
  return false;
}

std::string RtValue::ToString() const {
  if (is_null()) return "null";
  if (is_int()) return std::to_string(AsInt());
  if (is_real()) return util::StrFormat("%g", AsReal());
  if (is_str()) return AsStr();
  if (is_db_result()) {
    return util::StrFormat("<db_result rows=%zu>",
                           AsDbResult()->result.num_rows());
  }
  if (is_db_row()) {
    std::string out = "<row";
    for (const db::Value& v : AsDbRow()->cells) out += " " + v.ToString();
    return out + ">";
  }
  return "?";
}

void RtValue::AddProvenance(const std::string& table) {
  provenance_.insert(table.empty() ? "<unknown>" : table);
}

void RtValue::MergeProvenance(const RtValue& other) {
  provenance_.insert(other.provenance_.begin(), other.provenance_.end());
}

}  // namespace adprom::runtime
