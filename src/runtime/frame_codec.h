#ifndef ADPROM_RUNTIME_FRAME_CODEC_H_
#define ADPROM_RUNTIME_FRAME_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/call_event.h"
#include "util/status.h"

namespace adprom::runtime {

/// The binary wire protocol of the fleet node's event feed.
///
/// Every frame starts with a 10-byte header:
///
///   offset  size  field
///   0       4     magic "ADPF" (0x41 0x44 0x50 0x46)
///   4       1     version (currently 1)
///   5       1     frame type (1 = event, 2 = end-of-session)
///   6       4     payload length, uint32 little-endian
///
/// followed by exactly `payload length` payload bytes. All integers are
/// little-endian; all strings are length-prefixed, never NUL-terminated.
///
/// Event payload (type 1):
///   u16 tenant_len,  tenant bytes
///   u16 session_len, session-key bytes
///   i32 block_id
///   i32 call_site_id
///   u8  td_output (0 or 1, strictly)
///   u32 callee_len,  callee bytes
///   u32 caller_len,  caller bytes
///   u32 query_signature_len, bytes
///   u16 num_source_tables, then per table: u32 len, bytes
///
/// End-of-session payload (type 2):
///   u16 tenant_len,  tenant bytes
///   u16 session_len, session-key bytes
///
/// The payload must be consumed exactly: trailing bytes are an error.
/// Decoding is fail-closed — any malformed frame poisons the decoder
/// (length-prefixed streams cannot resync reliably after corruption, and
/// guessing would risk misattributing events across sessions).

/// Frame type tags on the wire.
enum class FrameType : uint8_t {
  kEvent = 1,
  kEndSession = 2,
};

/// One decoded frame: the routing identifiers plus, for event frames, the
/// event itself.
struct Frame {
  FrameType type = FrameType::kEvent;
  std::string tenant;
  std::string session;
  CallEvent event;  // meaningful only when type == kEvent
};

/// Hard limits the decoder enforces before allocating anything, so a
/// corrupt or hostile length field cannot request gigabytes.
struct FrameLimits {
  static constexpr size_t kMaxPayload = 1 << 20;  // 1 MiB per frame
  static constexpr size_t kMaxId = 4096;          // tenant / session key
};

/// Appends the binary encoding of an event frame to `out`.
void EncodeEventFrame(const std::string& tenant, const std::string& session,
                      const CallEvent& event, std::string* out);

/// Appends the binary encoding of an end-of-session frame to `out`.
void EncodeEndFrame(const std::string& tenant, const std::string& session,
                    std::string* out);

/// Incremental, fail-closed decoder for a stream of frames. Feed bytes in
/// arbitrary chunks (network reads, file blocks); Next() yields one frame
/// at a time:
///
///   decoder.Feed(chunk);
///   while (true) {
///     auto frame = decoder.Next();
///     if (!frame.ok()) { /* poisoned: report frame.status() and stop */ }
///     if (!frame->has_value()) break;  // need more bytes
///     Handle(**frame);
///   }
///
/// After the first error the decoder is poisoned: every further Next()
/// and Finish() returns the same error, and Feed() is ignored. Errors
/// carry the byte offset and frame index for diagnosis.
class FrameDecoder {
 public:
  /// Appends raw bytes to the internal buffer. No-op once poisoned.
  void Feed(std::string_view bytes);

  /// Decodes the next complete frame: a Frame when one is buffered,
  /// nullopt when more bytes are needed, or the poisoning error.
  util::Result<std::optional<Frame>> Next();

  /// Declares end-of-stream: fails if a partial frame is buffered
  /// (truncation must not pass silently). Idempotent on success.
  util::Status Finish();

  /// Total bytes consumed (accepted frames only — the poisoned tail is
  /// not counted), e.g. for throughput accounting.
  uint64_t bytes_consumed() const { return bytes_consumed_; }
  /// Frames successfully decoded so far.
  uint64_t frames_decoded() const { return frames_decoded_; }
  bool poisoned() const { return !status_.ok(); }

 private:
  /// Marks the stream bad and returns the error (with offset context).
  util::Status Poison(const std::string& message);
  /// Parses one complete frame sitting at buffer_[0..10+payload_len).
  util::Result<Frame> ParsePayload(FrameType type,
                                   std::string_view payload);

  std::string buffer_;
  uint64_t bytes_consumed_ = 0;
  uint64_t frames_decoded_ = 0;
  util::Status status_ = util::Status::Ok();
};

}  // namespace adprom::runtime

#endif  // ADPROM_RUNTIME_FRAME_CODEC_H_
