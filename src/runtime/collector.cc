#include "runtime/collector.h"

#include "util/strings.h"

namespace adprom::runtime {

void LightCollector::OnCall(const CallEvent& event,
                            const std::vector<RtValue>& args) {
  (void)args;  // Names only — deliberately cheap.
  trace_.push_back(event);
}

void HeavyTracer::OnCall(const CallEvent& event,
                         const std::vector<RtValue>& args) {
  // Simulated addr2line: resolve the call-site "address" to a symbol,
  // formatting and caching like the real tool chain would.
  auto it = symbol_cache_.find(event.call_site_id);
  if (it == symbol_cache_.end()) {
    it = symbol_cache_
             .emplace(event.call_site_id,
                      util::StrFormat("%s+0x%x [%s]", event.caller.c_str(),
                                      event.call_site_id * 0x10,
                                      event.callee.c_str()))
             .first;
  }
  // ltrace-style line: callee(arg, arg, ...) = <resolved caller>.
  std::string line = event.callee + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) line += ", ";
    line += "\"" + args[i].ToString() + "\"";
  }
  line += ") <- " + it->second;
  lines_.push_back(std::move(line));
  trace_.push_back(event);
}

void NullCollector::OnCall(const CallEvent& event,
                           const std::vector<RtValue>& args) {
  (void)event;
  (void)args;
  ++count_;
}

}  // namespace adprom::runtime
