#include "runtime/frame_codec.h"

#include <cstring>
#include <utility>

namespace adprom::runtime {

namespace {

constexpr char kMagic[4] = {'A', 'D', 'P', 'F'};
constexpr uint8_t kVersion = 1;
constexpr size_t kHeaderSize = 10;

void PutU16(uint16_t value, std::string* out) {
  out->push_back(static_cast<char>(value & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
}

void PutU32(uint32_t value, std::string* out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutI32(int32_t value, std::string* out) {
  PutU32(static_cast<uint32_t>(value), out);
}

void PutString16(const std::string& text, std::string* out) {
  PutU16(static_cast<uint16_t>(text.size()), out);
  out->append(text);
}

void PutString32(const std::string& text, std::string* out) {
  PutU32(static_cast<uint32_t>(text.size()), out);
  out->append(text);
}

void PutHeader(FrameType type, size_t payload_len, std::string* out) {
  out->append(kMagic, sizeof(kMagic));
  out->push_back(static_cast<char>(kVersion));
  out->push_back(static_cast<char>(type));
  PutU32(static_cast<uint32_t>(payload_len), out);
}

/// Bounds-checked little-endian cursor over one frame payload.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : payload_(payload) {}

  bool ReadU8(uint8_t* out) {
    if (pos_ + 1 > payload_.size()) return false;
    *out = static_cast<uint8_t>(payload_[pos_++]);
    return true;
  }

  bool ReadU16(uint16_t* out) {
    if (pos_ + 2 > payload_.size()) return false;
    *out = static_cast<uint16_t>(
        static_cast<uint8_t>(payload_[pos_]) |
        (static_cast<uint16_t>(static_cast<uint8_t>(payload_[pos_ + 1]))
         << 8));
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* out) {
    if (pos_ + 4 > payload_.size()) return false;
    uint32_t value = 0;
    for (int i = 3; i >= 0; --i) {
      value = (value << 8) |
              static_cast<uint8_t>(payload_[pos_ + static_cast<size_t>(i)]);
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool ReadI32(int32_t* out) {
    uint32_t raw = 0;
    if (!ReadU32(&raw)) return false;
    std::memcpy(out, &raw, sizeof(raw));
    return true;
  }

  bool ReadBytes(size_t len, std::string* out) {
    if (pos_ + len > payload_.size()) return false;
    out->assign(payload_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return payload_.size() - pos_; }
  size_t pos() const { return pos_; }

 private:
  std::string_view payload_;
  size_t pos_ = 0;
};

}  // namespace

void EncodeEventFrame(const std::string& tenant, const std::string& session,
                      const CallEvent& event, std::string* out) {
  std::string payload;
  PutString16(tenant, &payload);
  PutString16(session, &payload);
  PutI32(event.block_id, &payload);
  PutI32(event.call_site_id, &payload);
  payload.push_back(event.td_output ? '\x01' : '\x00');
  PutString32(event.callee, &payload);
  PutString32(event.caller, &payload);
  PutString32(event.query_signature, &payload);
  PutU16(static_cast<uint16_t>(event.source_tables.size()), &payload);
  for (const std::string& table : event.source_tables) {
    PutString32(table, &payload);
  }
  PutHeader(FrameType::kEvent, payload.size(), out);
  out->append(payload);
}

void EncodeEndFrame(const std::string& tenant, const std::string& session,
                    std::string* out) {
  std::string payload;
  PutString16(tenant, &payload);
  PutString16(session, &payload);
  PutHeader(FrameType::kEndSession, payload.size(), out);
  out->append(payload);
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (poisoned()) return;
  buffer_.append(bytes.data(), bytes.size());
}

util::Status FrameDecoder::Poison(const std::string& message) {
  status_ = util::Status::InvalidArgument(
      "frame " + std::to_string(frames_decoded_) + " at byte offset " +
      std::to_string(bytes_consumed_) + ": " + message);
  buffer_.clear();
  return status_;
}

util::Result<Frame> FrameDecoder::ParsePayload(FrameType type,
                                               std::string_view payload) {
  PayloadReader reader(payload);
  Frame frame;
  frame.type = type;
  uint16_t tenant_len = 0;
  uint16_t session_len = 0;
  if (!reader.ReadU16(&tenant_len)) return Poison("truncated tenant id");
  if (tenant_len > FrameLimits::kMaxId) {
    return Poison("tenant id exceeds " +
                  std::to_string(FrameLimits::kMaxId) + " bytes");
  }
  if (!reader.ReadBytes(tenant_len, &frame.tenant)) {
    return Poison("truncated tenant id");
  }
  if (!reader.ReadU16(&session_len)) return Poison("truncated session key");
  if (session_len > FrameLimits::kMaxId) {
    return Poison("session key exceeds " +
                  std::to_string(FrameLimits::kMaxId) + " bytes");
  }
  if (!reader.ReadBytes(session_len, &frame.session)) {
    return Poison("truncated session key");
  }
  if (type == FrameType::kEvent) {
    if (!reader.ReadI32(&frame.event.block_id) ||
        !reader.ReadI32(&frame.event.call_site_id)) {
      return Poison("truncated block/call-site ids");
    }
    uint8_t td = 0;
    if (!reader.ReadU8(&td)) return Poison("truncated td_output flag");
    if (td > 1) {
      return Poison("td_output flag must be 0 or 1, got " +
                    std::to_string(td));
    }
    frame.event.td_output = td == 1;
    uint32_t len = 0;
    if (!reader.ReadU32(&len) || !reader.ReadBytes(len, &frame.event.callee)) {
      return Poison("truncated callee");
    }
    if (!reader.ReadU32(&len) || !reader.ReadBytes(len, &frame.event.caller)) {
      return Poison("truncated caller");
    }
    if (!reader.ReadU32(&len) ||
        !reader.ReadBytes(len, &frame.event.query_signature)) {
      return Poison("truncated query signature");
    }
    uint16_t num_tables = 0;
    if (!reader.ReadU16(&num_tables)) {
      return Poison("truncated source-table count");
    }
    frame.event.source_tables.reserve(num_tables);
    for (uint16_t i = 0; i < num_tables; ++i) {
      std::string table;
      if (!reader.ReadU32(&len) || !reader.ReadBytes(len, &table)) {
        return Poison("truncated source table " + std::to_string(i));
      }
      frame.event.source_tables.push_back(std::move(table));
    }
  }
  if (reader.remaining() != 0) {
    return Poison(std::to_string(reader.remaining()) +
                  " trailing payload bytes after a complete frame body");
  }
  return frame;
}

util::Result<std::optional<Frame>> FrameDecoder::Next() {
  if (poisoned()) return status_;
  if (buffer_.size() < kHeaderSize) return std::optional<Frame>();
  if (std::memcmp(buffer_.data(), kMagic, sizeof(kMagic)) != 0) {
    return Poison("bad magic (expected \"ADPF\")");
  }
  const uint8_t version = static_cast<uint8_t>(buffer_[4]);
  if (version != kVersion) {
    return Poison("unsupported protocol version " + std::to_string(version) +
                  " (this decoder speaks version " + std::to_string(kVersion) +
                  ")");
  }
  const uint8_t raw_type = static_cast<uint8_t>(buffer_[5]);
  if (raw_type != static_cast<uint8_t>(FrameType::kEvent) &&
      raw_type != static_cast<uint8_t>(FrameType::kEndSession)) {
    return Poison("unknown frame type " + std::to_string(raw_type));
  }
  uint32_t payload_len = 0;
  for (int i = 3; i >= 0; --i) {
    payload_len = (payload_len << 8) |
                  static_cast<uint8_t>(buffer_[6 + static_cast<size_t>(i)]);
  }
  if (payload_len > FrameLimits::kMaxPayload) {
    return Poison("payload length " + std::to_string(payload_len) +
                  " exceeds the " +
                  std::to_string(FrameLimits::kMaxPayload) + "-byte limit");
  }
  const size_t frame_size = kHeaderSize + payload_len;
  if (buffer_.size() < frame_size) return std::optional<Frame>();
  const std::string_view payload(buffer_.data() + kHeaderSize, payload_len);
  util::Result<Frame> frame =
      ParsePayload(static_cast<FrameType>(raw_type), payload);
  if (!frame.ok()) return frame.status();
  buffer_.erase(0, frame_size);
  bytes_consumed_ += frame_size;
  ++frames_decoded_;
  return std::optional<Frame>(std::move(frame).value());
}

util::Status FrameDecoder::Finish() {
  if (poisoned()) return status_;
  if (!buffer_.empty()) {
    return Poison("stream ends mid-frame with " +
                  std::to_string(buffer_.size()) + " unconsumed bytes");
  }
  return util::Status::Ok();
}

}  // namespace adprom::runtime
