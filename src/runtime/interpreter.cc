#include "runtime/interpreter.h"

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>

#include "db/query_signature.h"
#include "db/sql_eval.h"
#include "util/strings.h"

namespace adprom::runtime {

namespace {

util::Status TypeError(const std::string& what, int line) {
  return util::Status::InvalidArgument(
      util::StrFormat("line %d: %s", line, what.c_str()));
}

// The mini language's integers wrap with two's-complement semantics on
// overflow (generated programs multiply freely); routing through uint64_t
// keeps that defined under -fsanitize=undefined.
int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}

int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}

int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}

/// FNV-1a — the "checksum" library function for the gzip-like corpus app.
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Interpreter::Interpreter(const prog::Program& program,
                         const std::map<std::string, prog::Cfg>& cfgs,
                         db::Database* database, InterpreterOptions options)
    : program_(program),
      cfgs_(cfgs),
      database_(database),
      options_(options),
      taint_config_(analysis::TaintConfig::Default()) {}

void Interpreter::set_taint_config(analysis::TaintConfig config) {
  taint_config_ = std::move(config);
}

util::Status Interpreter::Step() {
  if (++steps_ > options_.max_steps) {
    return util::Status::FailedPrecondition(
        "step limit exceeded (possible infinite loop)");
  }
  return util::Status::Ok();
}

util::Result<RtValue> Interpreter::Run(std::vector<std::string> inputs) {
  if (!program_.finalized()) {
    return util::Status::FailedPrecondition("program not finalized");
  }
  io_ = ProgramIo();
  io_.inputs = std::move(inputs);
  steps_ = 0;
  const prog::FunctionDef* main_fn = program_.FindFunction("main");
  if (main_fn == nullptr) return util::Status::NotFound("no main()");
  return CallFunction(*main_fn, {});
}

/// Statement execution: runs a body; a filled optional means `return` was
/// executed with that value.
struct Interpreter::ExecResult {
  std::optional<RtValue> returned;
};

namespace {
// Forward declaration helper type for the recursive body executor.
}  // namespace

util::Result<RtValue> Interpreter::CallFunction(const prog::FunctionDef& fn,
                                                std::vector<RtValue> args) {
  std::map<std::string, RtValue> locals;
  for (size_t i = 0; i < fn.params.size(); ++i) {
    locals[fn.params[i]] = std::move(args[i]);
  }

  // Local recursive executor over statement lists.
  std::function<util::Result<ExecResult>(const prog::StmtList&)> exec_body =
      [&](const prog::StmtList& body) -> util::Result<ExecResult> {
    for (const auto& stmt : body) {
      ADPROM_RETURN_IF_ERROR(Step());
      switch (stmt->kind) {
        case prog::StmtKind::kVarDecl:
        case prog::StmtKind::kAssign: {
          ADPROM_ASSIGN_OR_RETURN(RtValue v,
                                  EvalExpr(*stmt->expr, &locals, fn.name));
          locals[stmt->target] = std::move(v);
          break;
        }
        case prog::StmtKind::kIf: {
          ADPROM_ASSIGN_OR_RETURN(RtValue cond,
                                  EvalExpr(*stmt->expr, &locals, fn.name));
          const prog::StmtList& branch =
              cond.Truthy() ? stmt->then_body : stmt->else_body;
          ADPROM_ASSIGN_OR_RETURN(ExecResult r, exec_body(branch));
          if (r.returned.has_value()) return r;
          break;
        }
        case prog::StmtKind::kWhile: {
          for (;;) {
            ADPROM_RETURN_IF_ERROR(Step());
            ADPROM_ASSIGN_OR_RETURN(RtValue cond,
                                    EvalExpr(*stmt->expr, &locals, fn.name));
            if (!cond.Truthy()) break;
            ADPROM_ASSIGN_OR_RETURN(ExecResult r,
                                    exec_body(stmt->then_body));
            if (r.returned.has_value()) return r;
          }
          break;
        }
        case prog::StmtKind::kReturn: {
          ExecResult r;
          if (stmt->expr != nullptr) {
            ADPROM_ASSIGN_OR_RETURN(RtValue v,
                                    EvalExpr(*stmt->expr, &locals, fn.name));
            r.returned = std::move(v);
          } else {
            r.returned = RtValue::Null();
          }
          return r;
        }
        case prog::StmtKind::kExpr: {
          ADPROM_ASSIGN_OR_RETURN(RtValue v,
                                  EvalExpr(*stmt->expr, &locals, fn.name));
          (void)v;
          break;
        }
      }
    }
    return ExecResult{};
  };

  ADPROM_ASSIGN_OR_RETURN(ExecResult result, exec_body(fn.body));
  if (result.returned.has_value()) return *std::move(result.returned);
  return RtValue::Null();
}

util::Result<RtValue> Interpreter::EvalExpr(
    const prog::Expr& e, std::map<std::string, RtValue>* locals,
    const std::string& fn_name) {
  ADPROM_RETURN_IF_ERROR(Step());
  switch (e.kind) {
    case prog::ExprKind::kIntLit:
      return RtValue::Int(e.int_value);
    case prog::ExprKind::kRealLit:
      return RtValue::Real(e.real_value);
    case prog::ExprKind::kStrLit:
      return RtValue::Str(e.str_value);
    case prog::ExprKind::kVar: {
      auto it = locals->find(e.name);
      if (it == locals->end()) {
        return TypeError("unbound variable " + e.name, e.line);
      }
      return it->second;
    }
    case prog::ExprKind::kUnary: {
      ADPROM_ASSIGN_OR_RETURN(RtValue v, EvalExpr(*e.lhs, locals, fn_name));
      if (e.un_op == prog::UnOp::kNot) {
        RtValue out = RtValue::Int(v.Truthy() ? 0 : 1);
        out.MergeProvenance(v);
        return out;
      }
      double d;
      if (!v.TryNumeric(&d)) return TypeError("negating non-number", e.line);
      RtValue out = v.is_int() ? RtValue::Int(-v.AsInt()) : RtValue::Real(-d);
      out.MergeProvenance(v);
      return out;
    }
    case prog::ExprKind::kBinary: {
      // Short-circuit logical operators evaluate lazily, like the source
      // language they model; the CFG over-approximates this.
      if (e.bin_op == prog::BinOp::kAnd || e.bin_op == prog::BinOp::kOr) {
        ADPROM_ASSIGN_OR_RETURN(RtValue lhs,
                                EvalExpr(*e.lhs, locals, fn_name));
        const bool lt = lhs.Truthy();
        if (e.bin_op == prog::BinOp::kAnd && !lt) return RtValue::Int(0);
        if (e.bin_op == prog::BinOp::kOr && lt) return RtValue::Int(1);
        ADPROM_ASSIGN_OR_RETURN(RtValue rhs,
                                EvalExpr(*e.rhs, locals, fn_name));
        return RtValue::Int(rhs.Truthy() ? 1 : 0);
      }
      ADPROM_ASSIGN_OR_RETURN(RtValue lhs, EvalExpr(*e.lhs, locals, fn_name));
      ADPROM_ASSIGN_OR_RETURN(RtValue rhs, EvalExpr(*e.rhs, locals, fn_name));
      RtValue out;
      switch (e.bin_op) {
        case prog::BinOp::kAdd: {
          if (lhs.is_str() || rhs.is_str()) {
            out = RtValue::Str(lhs.ToString() + rhs.ToString());
            break;
          }
          double a, b;
          if (!lhs.TryNumeric(&a) || !rhs.TryNumeric(&b))
            return TypeError("'+' on incompatible types", e.line);
          out = (lhs.is_int() && rhs.is_int())
                    ? RtValue::Int(WrapAdd(lhs.AsInt(), rhs.AsInt()))
                    : RtValue::Real(a + b);
          break;
        }
        case prog::BinOp::kSub:
        case prog::BinOp::kMul:
        case prog::BinOp::kDiv:
        case prog::BinOp::kMod: {
          double a, b;
          if (!lhs.TryNumeric(&a) || !rhs.TryNumeric(&b))
            return TypeError("arithmetic on non-numbers", e.line);
          const bool ints = lhs.is_int() && rhs.is_int();
          switch (e.bin_op) {
            case prog::BinOp::kSub:
              out = ints ? RtValue::Int(WrapSub(lhs.AsInt(), rhs.AsInt()))
                         : RtValue::Real(a - b);
              break;
            case prog::BinOp::kMul:
              out = ints ? RtValue::Int(WrapMul(lhs.AsInt(), rhs.AsInt()))
                         : RtValue::Real(a * b);
              break;
            case prog::BinOp::kDiv:
              if (ints) {
                if (rhs.AsInt() == 0)
                  return TypeError("integer division by zero", e.line);
                // INT64_MIN / -1 overflows; it wraps back to INT64_MIN.
                out = (lhs.AsInt() == std::numeric_limits<int64_t>::min() &&
                       rhs.AsInt() == -1)
                          ? lhs
                          : RtValue::Int(lhs.AsInt() / rhs.AsInt());
              } else {
                out = RtValue::Real(a / b);
              }
              break;
            case prog::BinOp::kMod:
              if (!ints || rhs.AsInt() == 0)
                return TypeError("'%' needs non-zero integers", e.line);
              out = (lhs.AsInt() == std::numeric_limits<int64_t>::min() &&
                     rhs.AsInt() == -1)
                        ? RtValue::Int(0)
                        : RtValue::Int(lhs.AsInt() % rhs.AsInt());
              break;
            default:
              break;
          }
          break;
        }
        case prog::BinOp::kLt:
        case prog::BinOp::kLe:
        case prog::BinOp::kGt:
        case prog::BinOp::kGe:
        case prog::BinOp::kEq:
        case prog::BinOp::kNe: {
          int cmp;
          double a, b;
          if (lhs.TryNumeric(&a) && rhs.TryNumeric(&b)) {
            cmp = a < b ? -1 : (a > b ? 1 : 0);
          } else if (lhs.is_str() && rhs.is_str()) {
            cmp = lhs.AsStr().compare(rhs.AsStr());
            cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
          } else if (lhs.is_null() || rhs.is_null()) {
            cmp = (lhs.is_null() && rhs.is_null()) ? 0 : 2;  // incomparable
          } else {
            const std::string ls = lhs.ToString();
            const std::string rs = rhs.ToString();
            cmp = ls < rs ? -1 : (ls > rs ? 1 : 0);
          }
          bool r = false;
          switch (e.bin_op) {
            case prog::BinOp::kLt: r = cmp == -1; break;
            case prog::BinOp::kLe: r = cmp == -1 || cmp == 0; break;
            case prog::BinOp::kGt: r = cmp == 1; break;
            case prog::BinOp::kGe: r = cmp == 1 || cmp == 0; break;
            case prog::BinOp::kEq: r = cmp == 0; break;
            case prog::BinOp::kNe: r = cmp != 0; break;
            default: break;
          }
          out = RtValue::Int(r ? 1 : 0);
          break;
        }
        case prog::BinOp::kAnd:
        case prog::BinOp::kOr:
          break;  // handled above
      }
      out.MergeProvenance(lhs);
      out.MergeProvenance(rhs);
      return out;
    }
    case prog::ExprKind::kCall:
      return EvalCall(e, locals, fn_name);
  }
  return util::Status::Internal("unhandled expression kind");
}

util::Result<RtValue> Interpreter::EvalCall(
    const prog::Expr& call, std::map<std::string, RtValue>* locals,
    const std::string& fn_name) {
  std::vector<RtValue> args;
  args.reserve(call.args.size());
  for (const auto& arg : call.args) {
    ADPROM_ASSIGN_OR_RETURN(RtValue v, EvalExpr(*arg, locals, fn_name));
    args.push_back(std::move(v));
  }
  if (program_.IsUserFunction(call.name)) {
    const prog::FunctionDef* callee = program_.FindFunction(call.name);
    return CallFunction(*callee, std::move(args));
  }
  return CallLibrary(call.name, args, call, fn_name);
}

util::Result<RtValue> Interpreter::CallLibrary(const std::string& name,
                                               std::vector<RtValue>& args,
                                               const prog::Expr& call_expr,
                                               const std::string& caller) {
  // Report the event to the collector first (instrumentation fires on
  // call entry), including the dynamic TD label.
  if (collector_ != nullptr) {
    CallEvent event;
    event.callee = name;
    event.caller = caller;
    event.call_site_id = call_expr.call_site_id;
    auto cfg_it = cfgs_.find(caller);
    if (cfg_it != cfgs_.end()) {
      const auto node = cfg_it->second.NodeOfCallSite(call_expr.call_site_id);
      if (node.has_value()) event.block_id = *node;
    }
    if (taint_config_.sink_calls.contains(name)) {
      for (const RtValue& arg : args) {
        if (arg.tainted()) {
          event.td_output = true;
          for (const std::string& t : arg.provenance()) {
            event.source_tables.push_back(t);
          }
        }
      }
    }
    if (name == "db_query" && !args.empty() && args[0].is_str()) {
      event.query_signature = db::QuerySignature(args[0].AsStr());
    }
    // Labeled-file tracking (§VII): sending a file that previously
    // received TD is a TD output even though the arguments are plain
    // strings.
    if (name == "send_file" && args.size() == 2 && args[1].is_str()) {
      auto it = io_.files.find(args[1].AsStr());
      if (it != io_.files.end() && it->second.tainted()) {
        event.td_output = true;
        for (const std::string& table : it->second.provenance) {
          event.source_tables.push_back(table);
        }
      }
    }
    collector_->OnCall(event, args);
  }

  auto need = [&](size_t n) -> util::Status {
    if (args.size() != n) {
      return util::Status::InvalidArgument(util::StrFormat(
          "line %d: %s expects %zu args, got %zu", call_expr.line,
          name.c_str(), n, args.size()));
    }
    return util::Status::Ok();
  };

  // --- I/O ------------------------------------------------------------
  if (name == "scan") {
    ADPROM_RETURN_IF_ERROR(need(0));
    if (io_.input_cursor >= io_.inputs.size()) return RtValue::Null();
    return RtValue::Str(io_.inputs[io_.input_cursor++]);
  }
  if (name == "input_int") {
    ADPROM_RETURN_IF_ERROR(need(0));
    if (io_.input_cursor >= io_.inputs.size()) return RtValue::Int(0);
    return RtValue::Int(
        std::strtoll(io_.inputs[io_.input_cursor++].c_str(), nullptr, 10));
  }
  if (name == "has_input") {
    ADPROM_RETURN_IF_ERROR(need(0));
    return RtValue::Int(io_.input_cursor < io_.inputs.size() ? 1 : 0);
  }
  if (name == "print" || name == "print_err") {
    std::string line;
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) line += " ";
      line += args[i].ToString();
    }
    io_.screen.push_back(std::move(line));
    return RtValue::Null();
  }
  if (name == "write_file" || name == "fprint") {
    ADPROM_RETURN_IF_ERROR(need(2));
    if (!args[0].is_str())
      return TypeError(name + " expects a file name", call_expr.line);
    FileState& file = io_.files[args[0].AsStr()];
    file.lines.push_back(args[1].ToString());
    file.provenance.insert(args[1].provenance().begin(),
                           args[1].provenance().end());
    return RtValue::Null();
  }
  if (name == "read_file") {
    ADPROM_RETURN_IF_ERROR(need(1));
    if (!args[0].is_str())
      return TypeError("read_file expects a file name", call_expr.line);
    auto it = io_.files.find(args[0].AsStr());
    if (it == io_.files.end()) return RtValue::Null();
    RtValue out = RtValue::Str(util::Join(it->second.lines, "\n"));
    for (const std::string& table : it->second.provenance) {
      out.AddProvenance(table);
    }
    return out;
  }
  if (name == "send_net") {
    ADPROM_RETURN_IF_ERROR(need(2));
    io_.network.push_back(args[0].ToString() + "|" + args[1].ToString());
    return RtValue::Null();
  }
  if (name == "send_file") {
    ADPROM_RETURN_IF_ERROR(need(2));
    if (!args[1].is_str())
      return TypeError("send_file expects (host, file name)",
                       call_expr.line);
    auto it = io_.files.find(args[1].AsStr());
    const std::string payload =
        it == io_.files.end() ? "<missing>"
                              : util::Join(it->second.lines, "\n");
    io_.network.push_back(args[0].ToString() + "|file:" +
                          args[1].AsStr() + "|" + payload);
    return RtValue::Null();
  }

  // --- DB client ------------------------------------------------------
  if (name == "db_query") {
    ADPROM_RETURN_IF_ERROR(need(1));
    if (database_ == nullptr)
      return TypeError("db_query without a database", call_expr.line);
    if (!args[0].is_str())
      return TypeError("db_query expects a SQL string", call_expr.line);
    auto result = database_->Execute(args[0].AsStr());
    if (!result.ok()) return RtValue::Null();  // mysql_query error code
    auto handle = std::make_shared<DbResultHandle>();
    handle->result = std::move(result).value();
    return RtValue::DbResult(std::move(handle));
  }
  if (name == "db_ntuples") {
    ADPROM_RETURN_IF_ERROR(need(1));
    if (!args[0].is_db_result())
      return TypeError("db_ntuples expects a result", call_expr.line);
    RtValue out =
        RtValue::Int(static_cast<int64_t>(args[0].AsDbResult()->result.num_rows()));
    out.MergeProvenance(args[0]);
    return out;
  }
  if (name == "db_nfields") {
    ADPROM_RETURN_IF_ERROR(need(1));
    if (!args[0].is_db_result())
      return TypeError("db_nfields expects a result", call_expr.line);
    RtValue out = RtValue::Int(
        static_cast<int64_t>(args[0].AsDbResult()->result.num_cols()));
    out.MergeProvenance(args[0]);
    return out;
  }
  if (name == "db_getvalue") {
    ADPROM_RETURN_IF_ERROR(need(3));
    if (!args[0].is_db_result() || !args[1].is_int() || !args[2].is_int())
      return TypeError("db_getvalue expects (result, row, col)",
                       call_expr.line);
    const db::QueryResult& qr = args[0].AsDbResult()->result;
    const auto r = static_cast<size_t>(args[1].AsInt());
    const auto c = static_cast<size_t>(args[2].AsInt());
    if (r >= qr.num_rows() || c >= qr.num_cols()) return RtValue::Null();
    RtValue out = RtValue::Str(qr.At(r, c).ToString());
    out.MergeProvenance(args[0]);
    return out;
  }
  if (name == "db_fetch_row") {
    ADPROM_RETURN_IF_ERROR(need(1));
    if (!args[0].is_db_result())
      return TypeError("db_fetch_row expects a result", call_expr.line);
    DbResultHandle& handle = *args[0].AsDbResult();
    if (handle.cursor >= handle.result.num_rows()) return RtValue::Null();
    auto row = std::make_shared<DbRowHandle>();
    row->cells = handle.result.rows[handle.cursor++];
    row->source_table = handle.result.source_table;
    return RtValue::DbRow(std::move(row));
  }
  if (name == "row_get") {
    ADPROM_RETURN_IF_ERROR(need(2));
    if (!args[0].is_db_row() || !args[1].is_int())
      return TypeError("row_get expects (row, index)", call_expr.line);
    const auto i = static_cast<size_t>(args[1].AsInt());
    const DbRowHandle& row = *args[0].AsDbRow();
    if (i >= row.cells.size()) return RtValue::Null();
    RtValue out = RtValue::Str(row.cells[i].ToString());
    out.MergeProvenance(args[0]);
    return out;
  }
  if (name == "is_null") {
    ADPROM_RETURN_IF_ERROR(need(1));
    return RtValue::Int(args[0].is_null() ? 1 : 0);
  }

  // --- Strings ----------------------------------------------------------
  if (name == "str") {
    ADPROM_RETURN_IF_ERROR(need(1));
    RtValue out = RtValue::Str(args[0].ToString());
    out.MergeProvenance(args[0]);
    return out;
  }
  if (name == "len") {
    ADPROM_RETURN_IF_ERROR(need(1));
    RtValue out = RtValue::Int(
        args[0].is_str() ? static_cast<int64_t>(args[0].AsStr().size()) : 0);
    out.MergeProvenance(args[0]);
    return out;
  }
  if (name == "substr") {
    ADPROM_RETURN_IF_ERROR(need(3));
    if (!args[0].is_str() || !args[1].is_int() || !args[2].is_int())
      return TypeError("substr expects (string, start, len)", call_expr.line);
    const std::string& s = args[0].AsStr();
    const auto start =
        std::min(static_cast<size_t>(std::max<int64_t>(args[1].AsInt(), 0)),
                 s.size());
    const auto count =
        static_cast<size_t>(std::max<int64_t>(args[2].AsInt(), 0));
    RtValue out = RtValue::Str(s.substr(start, count));
    out.MergeProvenance(args[0]);
    return out;
  }
  if (name == "to_int") {
    ADPROM_RETURN_IF_ERROR(need(1));
    int64_t v = 0;
    if (args[0].is_int()) {
      v = args[0].AsInt();
    } else if (args[0].is_real()) {
      v = static_cast<int64_t>(args[0].AsReal());
    } else if (args[0].is_str()) {
      v = std::strtoll(args[0].AsStr().c_str(), nullptr, 10);
    }
    RtValue out = RtValue::Int(v);
    out.MergeProvenance(args[0]);
    return out;
  }
  if (name == "upper" || name == "lower") {
    ADPROM_RETURN_IF_ERROR(need(1));
    if (!args[0].is_str())
      return TypeError(name + " expects a string", call_expr.line);
    RtValue out = RtValue::Str(name == "upper"
                                   ? util::ToUpper(args[0].AsStr())
                                   : util::ToLower(args[0].AsStr()));
    out.MergeProvenance(args[0]);
    return out;
  }
  if (name == "contains") {
    ADPROM_RETURN_IF_ERROR(need(2));
    if (!args[0].is_str() || !args[1].is_str())
      return TypeError("contains expects strings", call_expr.line);
    RtValue out = RtValue::Int(
        args[0].AsStr().find(args[1].AsStr()) != std::string::npos ? 1 : 0);
    out.MergeProvenance(args[0]);
    out.MergeProvenance(args[1]);
    return out;
  }
  if (name == "trim") {
    ADPROM_RETURN_IF_ERROR(need(1));
    if (!args[0].is_str())
      return TypeError("trim expects a string", call_expr.line);
    RtValue out = RtValue::Str(std::string(util::Trim(args[0].AsStr())));
    out.MergeProvenance(args[0]);
    return out;
  }
  if (name == "replace") {
    ADPROM_RETURN_IF_ERROR(need(3));
    if (!args[0].is_str() || !args[1].is_str() || !args[2].is_str())
      return TypeError("replace expects (string, old, new)", call_expr.line);
    const std::string& old_part = args[1].AsStr();
    std::string s = args[0].AsStr();
    if (!old_part.empty()) {
      size_t pos = 0;
      while ((pos = s.find(old_part, pos)) != std::string::npos) {
        s.replace(pos, old_part.size(), args[2].AsStr());
        pos += args[2].AsStr().size();
      }
    }
    RtValue out = RtValue::Str(std::move(s));
    out.MergeProvenance(args[0]);
    out.MergeProvenance(args[2]);
    return out;
  }
  if (name == "like_match") {
    ADPROM_RETURN_IF_ERROR(need(2));
    if (!args[0].is_str() || !args[1].is_str())
      return TypeError("like_match expects strings", call_expr.line);
    RtValue out = RtValue::Int(
        db::LikeMatch(args[0].AsStr(), args[1].AsStr()) ? 1 : 0);
    out.MergeProvenance(args[0]);
    return out;
  }
  if (name == "checksum") {
    ADPROM_RETURN_IF_ERROR(need(1));
    RtValue out = RtValue::Int(
        static_cast<int64_t>(Fnv1a(args[0].ToString()) & 0x7fffffff));
    out.MergeProvenance(args[0]);
    return out;
  }
  if (name == "compress") {
    ADPROM_RETURN_IF_ERROR(need(1));
    // Toy run-length encoding, enough to give the gzip-like app real work.
    const std::string s = args[0].ToString();
    std::string enc;
    for (size_t i = 0; i < s.size();) {
      size_t j = i;
      while (j < s.size() && s[j] == s[i] && j - i < 9) ++j;
      enc += static_cast<char>('0' + (j - i));
      enc += s[i];
      i = j;
    }
    RtValue out = RtValue::Str(std::move(enc));
    out.MergeProvenance(args[0]);
    return out;
  }

  return util::Status::NotFound(util::StrFormat(
      "line %d: unknown library function '%s'", call_expr.line,
      name.c_str()));
}

}  // namespace adprom::runtime
