#include "runtime/call_event.h"

#include "analysis/labeling.h"

namespace adprom::runtime {

std::string CallEvent::Observable() const {
  if (!td_output) return callee;
  return analysis::LabeledObservable(callee, caller, block_id);
}

}  // namespace adprom::runtime
