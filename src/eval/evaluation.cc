#include "eval/evaluation.h"

#include <algorithm>
#include <limits>

#include "hmm/inference.h"
#include "util/rng.h"

namespace adprom::eval {

util::Result<std::vector<double>> ScoreWindows(
    const core::ApplicationProfile& profile,
    const std::vector<runtime::Trace>& windows) {
  std::vector<double> scores;
  scores.reserve(windows.size());
  for (const runtime::Trace& window : windows) {
    const hmm::ObservationSeq seq =
        profile.Encode({window.data(), window.size()});
    // Mirror the Detection Engine: a symbol outside the alphabet has true
    // emission probability zero (only smoothing floors it), so the
    // window's real P(cs|λ) is zero.
    bool has_unknown = false;
    for (int symbol : seq) {
      if (symbol == profile.alphabet.unk_id()) {
        has_unknown = true;
        break;
      }
    }
    if (has_unknown) {
      scores.push_back(-1e9);
      continue;
    }
    ADPROM_ASSIGN_OR_RETURN(double score,
                            hmm::PerSymbolLogLikelihood(profile.model, seq));
    scores.push_back(score);
  }
  return std::move(scores);
}

ConfusionMatrix Classify(const std::vector<double>& normal_scores,
                         const std::vector<double>& anomalous_scores,
                         double threshold) {
  ConfusionMatrix cm;
  for (double s : normal_scores) {
    if (s < threshold) {
      ++cm.fp;
    } else {
      ++cm.tn;
    }
  }
  for (double s : anomalous_scores) {
    if (s < threshold) {
      ++cm.tp;
    } else {
      ++cm.fn;
    }
  }
  return cm;
}

std::vector<RocPoint> RocSweep(const std::vector<double>& normal_scores,
                               const std::vector<double>& anomalous_scores) {
  std::vector<double> thresholds = normal_scores;
  thresholds.insert(thresholds.end(), anomalous_scores.begin(),
                    anomalous_scores.end());
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());
  // Evaluate just below the minimum, at each distinct score's epsilon
  // neighbourhood, and above the maximum.
  std::vector<double> points;
  points.reserve(thresholds.size() + 2);
  if (!thresholds.empty()) {
    points.push_back(thresholds.front() - 1.0);
    for (double t : thresholds) points.push_back(t + 1e-12);
    points.push_back(thresholds.back() + 1.0);
  }
  std::vector<RocPoint> curve;
  curve.reserve(points.size());
  for (double t : points) {
    const ConfusionMatrix cm = Classify(normal_scores, anomalous_scores, t);
    curve.push_back({t, cm.FpRate(), cm.FnRate()});
  }
  return curve;
}

double FnRateAtFpBudget(const std::vector<RocPoint>& curve,
                        double fp_budget) {
  double best = 1.0;
  for (const RocPoint& p : curve) {
    if (p.fp_rate <= fp_budget) best = std::min(best, p.fn_rate);
  }
  return best;
}

std::vector<FoldSplit> KFoldSplits(size_t n, size_t k, uint64_t seed) {
  util::Rng rng(seed);
  const std::vector<size_t> perm = rng.Permutation(n);
  std::vector<FoldSplit> out(k);
  for (size_t fold = 0; fold < k; ++fold) {
    for (size_t i = 0; i < n; ++i) {
      if (i % k == fold) {
        out[fold].test.push_back(perm[i]);
      } else {
        out[fold].train.push_back(perm[i]);
      }
    }
  }
  return out;
}

double SelectThreshold(const std::vector<double>& validation_normal,
                       const std::vector<double>& validation_anomalous,
                       const std::vector<double>& candidates) {
  double best_threshold = candidates.empty()
                              ? -std::numeric_limits<double>::infinity()
                              : candidates.front();
  double best_accuracy = -1.0;
  double best_fp = 2.0;
  for (double t : candidates) {
    const ConfusionMatrix cm =
        Classify(validation_normal, validation_anomalous, t);
    const double acc = cm.Accuracy();
    if (acc > best_accuracy + 1e-12 ||
        (acc > best_accuracy - 1e-12 && cm.FpRate() < best_fp)) {
      best_accuracy = acc;
      best_fp = cm.FpRate();
      best_threshold = t;
    }
  }
  return best_threshold;
}

std::vector<double> QuantileCandidates(std::vector<double> normal_scores,
                                       size_t count) {
  std::vector<double> out;
  if (normal_scores.empty() || count == 0) return out;
  std::sort(normal_scores.begin(), normal_scores.end());
  out.reserve(count + 1);
  // Candidates below the minimum and at low quantiles of the normal score
  // distribution (high quantiles would flag most normal traffic).
  out.push_back(normal_scores.front() - 1.0);
  for (size_t i = 0; i < count; ++i) {
    const double q = 0.10 * static_cast<double>(i) /
                     static_cast<double>(count);  // 0 .. 10th percentile
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(normal_scores.size() - 1));
    out.push_back(normal_scores[idx] - 1e-9);
  }
  return out;
}

}  // namespace adprom::eval
