#ifndef ADPROM_EVAL_METRICS_H_
#define ADPROM_EVAL_METRICS_H_

#include <cstddef>
#include <string>

namespace adprom::eval {

/// Binary-classification confusion matrix, with the paper's conventions:
/// a correctly detected anomalous sequence is a TP; a missed one is a FN;
/// a normal sequence flagged anomalous is a FP.
struct ConfusionMatrix {
  size_t tp = 0;
  size_t tn = 0;
  size_t fp = 0;
  size_t fn = 0;

  size_t total() const { return tp + tn + fp + fn; }

  /// FP / (FP + TN); 0 when undefined.
  double FpRate() const;
  /// FN / (FN + TP); 0 when undefined.
  double FnRate() const;
  /// TP / (TP + FP); 1 when no positives were predicted.
  double Precision() const;
  /// TP / (TP + FN); 1 when there were no positives.
  double Recall() const;
  /// (TP + TN) / total.
  double Accuracy() const;

  ConfusionMatrix& operator+=(const ConfusionMatrix& other);

  std::string ToString() const;
};

}  // namespace adprom::eval

#endif  // ADPROM_EVAL_METRICS_H_
