#ifndef ADPROM_EVAL_ADAPTIVE_THRESHOLD_H_
#define ADPROM_EVAL_ADAPTIVE_THRESHOLD_H_

#include <cstddef>
#include <deque>

namespace adprom::eval {

/// The paper's §IV-D "adaptive threshold" knob: "the security
/// administrator can change the detector's threshold over time to reduce
/// the false positive rate when there are legitimate changes in the
/// program behavior". This helper tracks a sliding window of
/// admin-confirmed normal scores and keeps the threshold a fixed margin
/// below their running minimum; explicit admin feedback (confirmed false
/// positive / missed attack) adjusts it immediately.
class AdaptiveThreshold {
 public:
  /// `initial` — the trained profile's threshold; `margin` — the gap kept
  /// below the lowest recently confirmed-normal score; `window` — how many
  /// recent confirmations are remembered.
  AdaptiveThreshold(double initial, double margin = 0.5,
                    size_t window = 256);

  double threshold() const { return threshold_; }

  /// Feeds the score of a window the admin confirmed as normal. The
  /// threshold can *drop* to accommodate legitimate drift but never rises
  /// on normal traffic alone.
  void ObserveNormal(double score);

  /// The admin marked an alarm at `score` as a false positive: the
  /// threshold drops below that score immediately.
  void ReportFalsePositive(double score);

  /// The admin learned an attack at `score` was missed: the threshold
  /// rises just above that score (capped at the initial value so normal
  /// traffic is not mass-flagged).
  void ReportMissedAttack(double score);

  size_t observed() const { return recent_.size(); }

 private:
  void RecomputeFromRecent();

  double threshold_;
  const double initial_;
  const double margin_;
  const size_t window_;
  std::deque<double> recent_;
};

}  // namespace adprom::eval

#endif  // ADPROM_EVAL_ADAPTIVE_THRESHOLD_H_
