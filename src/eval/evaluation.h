#ifndef ADPROM_EVAL_EVALUATION_H_
#define ADPROM_EVAL_EVALUATION_H_

#include <cstdint>
#include <vector>

#include "core/profile.h"
#include "eval/metrics.h"
#include "runtime/call_event.h"
#include "util/status.h"

namespace adprom::eval {

/// Per-symbol log-likelihood scores of a batch of windows under a profile.
util::Result<std::vector<double>> ScoreWindows(
    const core::ApplicationProfile& profile,
    const std::vector<runtime::Trace>& windows);

/// Classifies scored windows against a threshold: a window is *flagged*
/// when its score is below the threshold. `normal_scores` are windows whose
/// ground truth is normal; `anomalous_scores` anomalous.
ConfusionMatrix Classify(const std::vector<double>& normal_scores,
                         const std::vector<double>& anomalous_scores,
                         double threshold);

/// One point of the FN-vs-FP trade-off curve (Fig. 10's axes).
struct RocPoint {
  double threshold = 0.0;
  double fp_rate = 0.0;
  double fn_rate = 0.0;
};

/// Sweeps thresholds across the observed score range (union of both
/// batches) and returns the FP/FN trade-off. Thresholds are chosen at
/// every distinct normal score (plus the extremes), so the curve is exact.
std::vector<RocPoint> RocSweep(const std::vector<double>& normal_scores,
                               const std::vector<double>& anomalous_scores);

/// Interpolates the curve: the lowest achievable FN rate at a given FP
/// budget. Returns 1.0 if the budget is unreachable.
double FnRateAtFpBudget(const std::vector<RocPoint>& curve, double fp_budget);

/// Deterministic k-fold index split of `n` items (paper: k = 10).
struct FoldSplit {
  std::vector<size_t> train;
  std::vector<size_t> test;
};
std::vector<FoldSplit> KFoldSplits(size_t n, size_t k, uint64_t seed);

/// Cross-validated threshold selection (paper §IV-D): evaluates each
/// candidate threshold on validation normal/anomalous scores and returns
/// the one maximizing accuracy; ties prefer the lower FP rate.
double SelectThreshold(const std::vector<double>& validation_normal,
                       const std::vector<double>& validation_anomalous,
                       const std::vector<double>& candidates);

/// Convenience candidate grid: quantiles of the validation normal scores.
std::vector<double> QuantileCandidates(std::vector<double> normal_scores,
                                       size_t count);

}  // namespace adprom::eval

#endif  // ADPROM_EVAL_EVALUATION_H_
