#include "eval/adaptive_threshold.h"

#include <algorithm>

namespace adprom::eval {

AdaptiveThreshold::AdaptiveThreshold(double initial, double margin,
                                     size_t window)
    : threshold_(initial),
      initial_(initial),
      margin_(margin),
      window_(window) {}

void AdaptiveThreshold::ObserveNormal(double score) {
  recent_.push_back(score);
  if (recent_.size() > window_) recent_.pop_front();
  if (score - margin_ < threshold_) {
    // Legitimate behaviour scored near/below the threshold: widen.
    threshold_ = score - margin_;
  }
}

void AdaptiveThreshold::ReportFalsePositive(double score) {
  threshold_ = std::min(threshold_, score - margin_);
}

void AdaptiveThreshold::ReportMissedAttack(double score) {
  // Rise just above the missed attack's score, but never beyond the
  // trained threshold's starting point.
  threshold_ = std::min(std::max(threshold_, score + 1e-9), initial_);
  RecomputeFromRecent();
}

void AdaptiveThreshold::RecomputeFromRecent() {
  // Keep consistency with recently confirmed normals: never flag them.
  for (double score : recent_) {
    threshold_ = std::min(threshold_, score - margin_);
  }
}

}  // namespace adprom::eval
