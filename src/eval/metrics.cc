#include "eval/metrics.h"

#include "util/strings.h"

namespace adprom::eval {

double ConfusionMatrix::FpRate() const {
  const size_t den = fp + tn;
  return den == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(den);
}

double ConfusionMatrix::FnRate() const {
  const size_t den = fn + tp;
  return den == 0 ? 0.0 : static_cast<double>(fn) / static_cast<double>(den);
}

double ConfusionMatrix::Precision() const {
  const size_t den = tp + fp;
  return den == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(den);
}

double ConfusionMatrix::Recall() const {
  const size_t den = tp + fn;
  return den == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(den);
}

double ConfusionMatrix::Accuracy() const {
  const size_t den = total();
  return den == 0 ? 1.0
                  : static_cast<double>(tp + tn) / static_cast<double>(den);
}

ConfusionMatrix& ConfusionMatrix::operator+=(const ConfusionMatrix& other) {
  tp += other.tp;
  tn += other.tn;
  fp += other.fp;
  fn += other.fn;
  return *this;
}

std::string ConfusionMatrix::ToString() const {
  return util::StrFormat(
      "TP=%zu TN=%zu FP=%zu FN=%zu | precision=%.3f recall=%.3f acc=%.4f",
      tp, tn, fp, fn, Precision(), Recall(), Accuracy());
}

}  // namespace adprom::eval
