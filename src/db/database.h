#ifndef ADPROM_DB_DATABASE_H_
#define ADPROM_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/query_result.h"
#include "db/sql_ast.h"
#include "db/table.h"
#include "util/status.h"

namespace adprom::db {

/// An in-memory relational database: a set of named tables plus a SQL
/// execution entry point. This is the substrate standing in for the
/// PostgreSQL/MySQL servers behind the paper's client applications; the
/// client apps submit query *strings* (often built by unsafe string
/// concatenation), so injection payloads reach a real evaluator.
class Database {
 public:
  Database() = default;

  // Database owns its tables and hands out stable pointers; not copyable.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table; fails with AlreadyExists on a duplicate name
  /// (case-insensitive).
  util::Status CreateTable(const std::string& name, Schema schema);

  /// Returns the table or nullptr (case-insensitive lookup).
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Parses and executes one SQL statement. This is the engine's single
  /// entry point — the analogue of PQexec/mysql_query.
  util::Result<QueryResult> Execute(const std::string& sql);

  /// Executes an already-parsed statement.
  util::Result<QueryResult> ExecuteStatement(const SqlStatement& stmt);

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;  // key: lower name
};

}  // namespace adprom::db

#endif  // ADPROM_DB_DATABASE_H_
