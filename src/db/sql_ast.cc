#include "db/sql_ast.h"

namespace adprom::db {

std::unique_ptr<SqlExpr> SqlExpr::Literal(Value v) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<SqlExpr> SqlExpr::ColumnRef(std::string name) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kColumnRef;
  e->column = std::move(name);
  return e;
}

std::unique_ptr<SqlExpr> SqlExpr::Compare(CompareOp op,
                                          std::unique_ptr<SqlExpr> l,
                                          std::unique_ptr<SqlExpr> r) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kCompare;
  e->cmp = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

std::unique_ptr<SqlExpr> SqlExpr::Logical(LogicalOp op,
                                          std::unique_ptr<SqlExpr> l,
                                          std::unique_ptr<SqlExpr> r) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kLogical;
  e->logical = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

std::unique_ptr<SqlExpr> SqlExpr::Not(std::unique_ptr<SqlExpr> inner) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kNot;
  e->lhs = std::move(inner);
  return e;
}

}  // namespace adprom::db
