#ifndef ADPROM_DB_QUERY_RESULT_H_
#define ADPROM_DB_QUERY_RESULT_H_

#include <string>
#include <vector>

#include "db/table.h"

namespace adprom::db {

/// The result of executing one SQL statement. SELECTs fill `columns` and
/// `rows`; DML fills `affected_rows`. `source_table` carries the provenance
/// AD-PROM uses to connect flagged activity back to the database object the
/// targeted data came from.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  size_t affected_rows = 0;
  std::string source_table;

  size_t num_rows() const { return rows.size(); }
  size_t num_cols() const { return columns.size(); }

  /// Value at (row, col); bounds-checked.
  const Value& At(size_t row, size_t col) const;

  /// Renders an aligned result grid (header + rows) for examples/debugging.
  std::string ToString() const;
};

}  // namespace adprom::db

#endif  // ADPROM_DB_QUERY_RESULT_H_
