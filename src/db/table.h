#ifndef ADPROM_DB_TABLE_H_
#define ADPROM_DB_TABLE_H_

#include <string>
#include <vector>

#include "db/schema.h"
#include "db/value.h"
#include "util/status.h"

namespace adprom::db {

/// A row is a vector of values aligned with a table's schema.
using Row = std::vector<Value>;

/// An in-memory heap table: a schema plus a vector of rows. Row order is
/// insertion order; the executor layers filtering/projection on top.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t row_count() const { return rows_.size(); }

  /// Appends a row after checking arity and (loose) type compatibility:
  /// NULL fits anywhere, ints fit REAL columns, anything renders into TEXT.
  util::Status Insert(Row row);

  /// In-place removal of rows matched by `pred`; returns the count removed.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t before = rows_.size();
    std::erase_if(rows_, pred);
    return before - rows_.size();
  }

  /// Mutable row access for UPDATE.
  std::vector<Row>& mutable_rows() { return rows_; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace adprom::db

#endif  // ADPROM_DB_TABLE_H_
