#ifndef ADPROM_DB_SQL_EVAL_H_
#define ADPROM_DB_SQL_EVAL_H_

#include "db/schema.h"
#include "db/sql_ast.h"
#include "db/table.h"
#include "util/status.h"

namespace adprom::db {

/// Three-valued SQL boolean.
enum class TriBool { kFalse, kTrue, kUnknown };

/// Evaluates a scalar expression (literal or column reference) against a
/// row. Fails with NotFound for an unknown column.
util::Result<Value> EvalScalar(const SqlExpr& expr, const Schema& schema,
                               const Row& row);

/// Evaluates a boolean expression tree against a row using SQL three-valued
/// logic: comparisons with NULL yield Unknown; WHERE keeps a row only when
/// the predicate is kTrue.
util::Result<TriBool> EvalPredicate(const SqlExpr& expr, const Schema& schema,
                                    const Row& row);

/// SQL LIKE matching with '%' (any run) and '_' (any one char) wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace adprom::db

#endif  // ADPROM_DB_SQL_EVAL_H_
