#ifndef ADPROM_DB_QUERY_SIGNATURE_H_
#define ADPROM_DB_QUERY_SIGNATURE_H_

#include <string>

namespace adprom::db {

/// Normalizes a SQL statement into its *signature*: keywords upper-cased,
/// identifiers lower-cased, every literal replaced by '?'. Two queries
/// share a signature iff they have the same skeleton regardless of the
/// constants bound into them:
///
///   SELECT * FROM clients WHERE id='105'   ->
///   SELECT * FROM clients WHERE id = ?
///
/// This implements the mitigation of the paper's first limitation (§VII):
/// an attacker who swaps in a *different query with similar selectivity*
/// leaves the call sequence unchanged, but not the query signature the
/// Calls Collector records alongside the call. Unlexable input yields the
/// stable marker "<unparsed>".
std::string QuerySignature(const std::string& sql);

}  // namespace adprom::db

#endif  // ADPROM_DB_QUERY_SIGNATURE_H_
