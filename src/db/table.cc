#include "db/table.h"

#include "util/strings.h"

namespace adprom::db {

namespace {

// Coerces `v` toward `want` where a lossless/SQL-lax conversion exists.
// Returns true on success (possibly mutating v).
bool CoerceInto(ValueType want, Value* v) {
  if (v->is_null()) return true;
  if (v->type() == want) return true;
  switch (want) {
    case ValueType::kReal: {
      double d;
      if (v->TryNumeric(&d)) {
        *v = Value::Real(d);
        return true;
      }
      return false;
    }
    case ValueType::kInt: {
      double d;
      if (v->TryNumeric(&d) && d == static_cast<double>(
                                        static_cast<int64_t>(d))) {
        *v = Value::Int(static_cast<int64_t>(d));
        return true;
      }
      return false;
    }
    case ValueType::kText:
      *v = Value::Text(v->ToString());
      return true;
    case ValueType::kNull:
      return false;
  }
  return false;
}

}  // namespace

util::Status Table::Insert(Row row) {
  if (row.size() != schema_.size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "table %s expects %zu values, got %zu", name_.c_str(),
        schema_.size(), row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!CoerceInto(schema_.column(i).type, &row[i])) {
      return util::Status::InvalidArgument(util::StrFormat(
          "value '%s' does not fit column %s %s", row[i].ToString().c_str(),
          schema_.column(i).name.c_str(),
          ValueTypeName(schema_.column(i).type)));
    }
  }
  rows_.push_back(std::move(row));
  return util::Status::Ok();
}

}  // namespace adprom::db
