#ifndef ADPROM_DB_SCHEMA_H_
#define ADPROM_DB_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "db/value.h"
#include "util/status.h"

namespace adprom::db {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type = ValueType::kText;
};

/// An ordered list of columns; lookup is case-insensitive like SQL.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Returns the index of the column named `name` (case-insensitive), or
  /// nullopt if absent.
  std::optional<size_t> IndexOf(std::string_view name) const;

  /// "name TYPE, name TYPE, ..." rendering.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// Table schemas keyed by lowercased table name.
using SchemaCatalog = std::map<std::string, Schema>;

/// Parses the CREATE TABLE statements out of a list of SQL statements
/// (e.g. a seed file) into a catalog; non-CREATE statements are ignored,
/// but every statement must parse. Static analyses use the catalog to
/// expand `SELECT *` into concrete column sets.
util::Result<SchemaCatalog> BuildSchemaCatalog(
    const std::vector<std::string>& statements);

}  // namespace adprom::db

#endif  // ADPROM_DB_SCHEMA_H_
