#include "db/schema.h"

#include <cctype>

#include "db/sql_parser.h"
#include "util/strings.h"

namespace adprom::db {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (util::EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  return out;
}

util::Result<SchemaCatalog> BuildSchemaCatalog(
    const std::vector<std::string>& statements) {
  SchemaCatalog catalog;
  for (const std::string& sql : statements) {
    auto parsed = ParseSql(sql);
    if (!parsed.ok()) return parsed.status();
    if (parsed->kind != SqlStatementKind::kCreate) continue;
    const std::string table = ToLower(parsed->create.table);
    // A malformed catalog must fail loudly here: the static analyses
    // expand `SELECT *` through it, and a duplicate or empty definition
    // would silently expand to the wrong (or no) column set.
    if (catalog.contains(table)) {
      return util::Status::InvalidArgument(
          "duplicate CREATE TABLE for '" + parsed->create.table +
          "' (table names are case-insensitive)");
    }
    if (parsed->create.columns.empty()) {
      return util::Status::InvalidArgument(
          "table '" + parsed->create.table +
          "' has no columns; SELECT * would expand to nothing");
    }
    std::vector<Column> columns;
    columns.reserve(parsed->create.columns.size());
    for (const auto& [name, type] : parsed->create.columns) {
      Schema probe(columns);
      if (probe.IndexOf(name).has_value()) {
        return util::Status::InvalidArgument(
            "duplicate column '" + name + "' in table '" +
            parsed->create.table + "' (column names are case-insensitive)");
      }
      columns.push_back({name, type});
    }
    catalog[table] = Schema(std::move(columns));
  }
  return catalog;
}

}  // namespace adprom::db
