#include "db/schema.h"

#include "util/strings.h"

namespace adprom::db {

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (util::EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace adprom::db
