#include "db/query_signature.h"

#include "db/sql_token.h"
#include "util/strings.h"

namespace adprom::db {

std::string QuerySignature(const std::string& sql) {
  auto tokens = LexSql(sql);
  if (!tokens.ok()) return "<unparsed>";
  std::string out;
  for (const SqlToken& token : *tokens) {
    std::string piece;
    switch (token.type) {
      case SqlTokenType::kKeyword:
        piece = token.text;  // already upper-cased by the lexer
        break;
      case SqlTokenType::kIdentifier:
        piece = util::ToLower(token.text);
        break;
      case SqlTokenType::kIntLiteral:
      case SqlTokenType::kRealLiteral:
      case SqlTokenType::kStringLiteral:
        piece = "?";
        break;
      case SqlTokenType::kStar:
      case SqlTokenType::kComma:
      case SqlTokenType::kLParen:
      case SqlTokenType::kRParen:
      case SqlTokenType::kOperator:
      case SqlTokenType::kSemicolon:
        piece = token.text;
        break;
      case SqlTokenType::kEnd:
        continue;
    }
    if (!out.empty()) out += " ";
    out += piece;
  }
  if (out.empty()) return "<empty>";
  return out;
}

}  // namespace adprom::db
