#ifndef ADPROM_DB_VALUE_H_
#define ADPROM_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace adprom::db {

/// Column/value type tags for the mini relational engine.
enum class ValueType { kNull, kInt, kReal, kText };

const char* ValueTypeName(ValueType t);

/// A dynamically-typed SQL value: NULL, 64-bit integer, double, or string.
/// Comparisons follow SQL-ish semantics: NULL compares unknown (handled at
/// the predicate layer), numerics compare numerically across kInt/kReal,
/// text compares lexicographically, and a text/number comparison coerces
/// the text when it parses as a number (mirrors the lax typing of the
/// string-concatenated queries the paper's vulnerable app builds).
class Value {
 public:
  Value() : type_(ValueType::kNull) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v);
  static Value Real(double v);
  static Value Text(std::string v);

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  int64_t AsInt() const;
  double AsReal() const;
  const std::string& AsText() const;

  /// Best-effort numeric view: kInt/kReal directly; kText if it parses.
  /// Returns false when no numeric interpretation exists.
  bool TryNumeric(double* out) const;

  /// Three-way compare: negative / zero / positive. NULLs order first
  /// (used only for ORDER BY; predicates treat NULL separately).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }

  /// SQL-literal-ish rendering ('abc' stays unquoted; NULL prints "NULL").
  std::string ToString() const;

 private:
  ValueType type_;
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace adprom::db

#endif  // ADPROM_DB_VALUE_H_
