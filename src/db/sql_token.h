#ifndef ADPROM_DB_SQL_TOKEN_H_
#define ADPROM_DB_SQL_TOKEN_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace adprom::db {

enum class SqlTokenType {
  kKeyword,     // SELECT, FROM, WHERE, ... (normalized upper-case)
  kIdentifier,  // table / column names
  kIntLiteral,
  kRealLiteral,
  kStringLiteral,  // 'abc' with '' escaping
  kStar,           // *
  kComma,
  kLParen,
  kRParen,
  kOperator,  // = != <> < <= > >= +
  kSemicolon,
  kEnd,
};

struct SqlToken {
  SqlTokenType type;
  std::string text;  // normalized: keywords upper-cased, literals unquoted
  size_t offset = 0;  // byte offset in the source, for error messages
};

/// Tokenizes a SQL string. Unknown characters or an unterminated string
/// literal produce a ParseError. Keywords are recognized case-insensitively
/// from a fixed list; everything else alphanumeric is an identifier.
util::Result<std::vector<SqlToken>> LexSql(const std::string& sql);

}  // namespace adprom::db

#endif  // ADPROM_DB_SQL_TOKEN_H_
