#ifndef ADPROM_DB_SQL_PARSER_H_
#define ADPROM_DB_SQL_PARSER_H_

#include <string>

#include "db/sql_ast.h"
#include "util/status.h"

namespace adprom::db {

/// Parses one SQL statement (optionally terminated by ';'). Supported
/// grammar — deliberately a faithful subset of what the paper's client
/// applications issue:
///
///   SELECT (*|item[,item..]) FROM t [WHERE expr]
///          [ORDER BY col [ASC|DESC]] [LIMIT n]
///   item   := col | COUNT(*) | COUNT(col) | SUM(col) | AVG(col)
///           | MIN(col) | MAX(col)
///   INSERT INTO t [(col,..)] VALUES (lit,..)
///   UPDATE t SET col = lit [, col = lit ..] [WHERE expr]
///   DELETE FROM t [WHERE expr]
///   CREATE TABLE t (col TYPE, ..)        TYPE := INT | REAL | TEXT
///   expr   := or-chain of AND-chains of (NOT)? primary
///   primary:= operand (=|!=|<>|<|<=|>|>=) operand
///           | operand LIKE 'pattern' | operand IS [NOT] NULL | (expr)
///   operand:= col | int | real | 'string' | NULL
///
/// Note WHERE operands may be literal-vs-literal ('1'='1'), which is what
/// makes tautology injection expressible.
util::Result<SqlStatement> ParseSql(const std::string& sql);

}  // namespace adprom::db

#endif  // ADPROM_DB_SQL_PARSER_H_
