#include "db/database.h"

#include <algorithm>

#include "db/sql_eval.h"
#include "db/sql_parser.h"
#include "util/strings.h"

namespace adprom::db {

namespace {

util::Result<QueryResult> ExecuteSelect(const SelectStatement& stmt,
                                        const Table& table) {
  const Schema& schema = table.schema();
  QueryResult result;
  result.source_table = table.name();

  // Filter.
  std::vector<const Row*> matched;
  for (const Row& row : table.rows()) {
    if (stmt.where != nullptr) {
      ADPROM_ASSIGN_OR_RETURN(TriBool keep,
                              EvalPredicate(*stmt.where, schema, row));
      if (keep != TriBool::kTrue) continue;
    }
    matched.push_back(&row);
  }

  // Order.
  if (!stmt.order_by.empty()) {
    auto idx = schema.IndexOf(stmt.order_by);
    if (!idx.has_value())
      return util::Status::NotFound("no such column: " + stmt.order_by);
    std::stable_sort(matched.begin(), matched.end(),
                     [&](const Row* a, const Row* b) {
                       const int c = (*a)[*idx].Compare((*b)[*idx]);
                       return stmt.order_desc ? c > 0 : c < 0;
                     });
  }

  // Limit.
  if (stmt.limit >= 0 &&
      matched.size() > static_cast<size_t>(stmt.limit)) {
    matched.resize(static_cast<size_t>(stmt.limit));
  }

  // Aggregates are all-or-nothing in this subset.
  const bool has_aggregate =
      !stmt.items.empty() && stmt.items[0].aggregate != AggregateFn::kNone;
  for (const SelectItem& item : stmt.items) {
    if ((item.aggregate != AggregateFn::kNone) != has_aggregate) {
      return util::Status::InvalidArgument(
          "cannot mix aggregate and plain select items");
    }
  }

  if (has_aggregate) {
    Row out_row;
    for (const SelectItem& item : stmt.items) {
      if (item.aggregate == AggregateFn::kCount && item.star) {
        result.columns.push_back("COUNT(*)");
        out_row.push_back(Value::Int(static_cast<int64_t>(matched.size())));
        continue;
      }
      auto idx = schema.IndexOf(item.column);
      if (!idx.has_value())
        return util::Status::NotFound("no such column: " + item.column);
      double sum = 0.0;
      size_t count = 0;
      const Value* min_v = nullptr;
      const Value* max_v = nullptr;
      for (const Row* row : matched) {
        const Value& v = (*row)[*idx];
        if (v.is_null()) continue;
        ++count;
        double d = 0.0;
        if (v.TryNumeric(&d)) sum += d;
        if (min_v == nullptr || v.Compare(*min_v) < 0) min_v = &v;
        if (max_v == nullptr || v.Compare(*max_v) > 0) max_v = &v;
      }
      switch (item.aggregate) {
        case AggregateFn::kCount:
          result.columns.push_back("COUNT(" + item.column + ")");
          out_row.push_back(Value::Int(static_cast<int64_t>(count)));
          break;
        case AggregateFn::kSum:
          result.columns.push_back("SUM(" + item.column + ")");
          out_row.push_back(count == 0 ? Value::Null() : Value::Real(sum));
          break;
        case AggregateFn::kAvg:
          result.columns.push_back("AVG(" + item.column + ")");
          out_row.push_back(count == 0
                                ? Value::Null()
                                : Value::Real(sum / static_cast<double>(
                                                        count)));
          break;
        case AggregateFn::kMin:
          result.columns.push_back("MIN(" + item.column + ")");
          out_row.push_back(min_v == nullptr ? Value::Null() : *min_v);
          break;
        case AggregateFn::kMax:
          result.columns.push_back("MAX(" + item.column + ")");
          out_row.push_back(max_v == nullptr ? Value::Null() : *max_v);
          break;
        case AggregateFn::kNone:
          break;
      }
    }
    result.rows.push_back(std::move(out_row));
    return result;
  }

  // Plain projection.
  std::vector<size_t> proj;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t i = 0; i < schema.size(); ++i) {
        proj.push_back(i);
        result.columns.push_back(schema.column(i).name);
      }
    } else {
      auto idx = schema.IndexOf(item.column);
      if (!idx.has_value())
        return util::Status::NotFound("no such column: " + item.column);
      proj.push_back(*idx);
      result.columns.push_back(schema.column(*idx).name);
    }
  }

  result.rows.reserve(matched.size());
  for (const Row* row : matched) {
    Row out_row;
    out_row.reserve(proj.size());
    for (size_t i : proj) out_row.push_back((*row)[i]);
    result.rows.push_back(std::move(out_row));
  }
  return result;
}

util::Result<QueryResult> ExecuteInsert(const InsertStatement& stmt,
                                        Table& table) {
  const Schema& schema = table.schema();
  Row row;
  if (stmt.columns.empty()) {
    row = stmt.values;
  } else {
    if (stmt.columns.size() != stmt.values.size()) {
      return util::Status::InvalidArgument(
          "INSERT column/value count mismatch");
    }
    row.assign(schema.size(), Value::Null());
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      auto idx = schema.IndexOf(stmt.columns[i]);
      if (!idx.has_value())
        return util::Status::NotFound("no such column: " + stmt.columns[i]);
      row[*idx] = stmt.values[i];
    }
  }
  ADPROM_RETURN_IF_ERROR(table.Insert(std::move(row)));
  QueryResult result;
  result.affected_rows = 1;
  result.source_table = table.name();
  return result;
}

util::Result<QueryResult> ExecuteUpdate(const UpdateStatement& stmt,
                                        Table& table) {
  const Schema& schema = table.schema();
  std::vector<std::pair<size_t, const Value*>> resolved;
  for (const auto& [col, value] : stmt.assignments) {
    auto idx = schema.IndexOf(col);
    if (!idx.has_value())
      return util::Status::NotFound("no such column: " + col);
    resolved.emplace_back(*idx, &value);
  }
  size_t affected = 0;
  for (Row& row : table.mutable_rows()) {
    if (stmt.where != nullptr) {
      ADPROM_ASSIGN_OR_RETURN(TriBool keep,
                              EvalPredicate(*stmt.where, schema, row));
      if (keep != TriBool::kTrue) continue;
    }
    for (const auto& [idx, value] : resolved) row[idx] = *value;
    ++affected;
  }
  QueryResult result;
  result.affected_rows = affected;
  result.source_table = table.name();
  return result;
}

util::Result<QueryResult> ExecuteDelete(const DeleteStatement& stmt,
                                        Table& table) {
  const Schema& schema = table.schema();
  util::Status status;  // Captures the first predicate error inside EraseIf.
  const size_t removed = table.EraseIf([&](const Row& row) {
    if (!status.ok()) return false;
    if (stmt.where == nullptr) return true;
    auto keep = EvalPredicate(*stmt.where, schema, row);
    if (!keep.ok()) {
      status = keep.status();
      return false;
    }
    return *keep == TriBool::kTrue;
  });
  ADPROM_RETURN_IF_ERROR(status);
  QueryResult result;
  result.affected_rows = removed;
  result.source_table = table.name();
  return result;
}

}  // namespace

util::Status Database::CreateTable(const std::string& name, Schema schema) {
  const std::string key = util::ToLower(name);
  if (tables_.contains(key))
    return util::Status::AlreadyExists("table exists: " + name);
  tables_[key] = std::make_unique<Table>(name, std::move(schema));
  return util::Status::Ok();
}

Table* Database::FindTable(const std::string& name) {
  auto it = tables_.find(util::ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(util::ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

util::Result<QueryResult> Database::Execute(const std::string& sql) {
  ADPROM_ASSIGN_OR_RETURN(SqlStatement stmt, ParseSql(sql));
  return ExecuteStatement(stmt);
}

util::Result<QueryResult> Database::ExecuteStatement(
    const SqlStatement& stmt) {
  switch (stmt.kind) {
    case SqlStatementKind::kCreate: {
      std::vector<Column> cols;
      cols.reserve(stmt.create.columns.size());
      for (const auto& [name, type] : stmt.create.columns)
        cols.push_back({name, type});
      ADPROM_RETURN_IF_ERROR(CreateTable(stmt.create.table,
                                         Schema(std::move(cols))));
      QueryResult result;
      result.source_table = stmt.create.table;
      return result;
    }
    case SqlStatementKind::kSelect: {
      const Table* table = FindTable(stmt.select.table);
      if (table == nullptr)
        return util::Status::NotFound("no such table: " + stmt.select.table);
      return ExecuteSelect(stmt.select, *table);
    }
    case SqlStatementKind::kInsert: {
      Table* table = FindTable(stmt.insert.table);
      if (table == nullptr)
        return util::Status::NotFound("no such table: " + stmt.insert.table);
      return ExecuteInsert(stmt.insert, *table);
    }
    case SqlStatementKind::kUpdate: {
      Table* table = FindTable(stmt.update.table);
      if (table == nullptr)
        return util::Status::NotFound("no such table: " + stmt.update.table);
      return ExecuteUpdate(stmt.update, *table);
    }
    case SqlStatementKind::kDelete: {
      Table* table = FindTable(stmt.del.table);
      if (table == nullptr)
        return util::Status::NotFound("no such table: " + stmt.del.table);
      return ExecuteDelete(stmt.del, *table);
    }
  }
  return util::Status::Internal("unhandled statement kind");
}

}  // namespace adprom::db
