#include "db/value.h"

#include <cerrno>
#include <cstdlib>

#include "util/logging.h"
#include "util/strings.h"

namespace adprom::db {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kReal:
      return "REAL";
    case ValueType::kText:
      return "TEXT";
  }
  return "?";
}

Value Value::Int(int64_t v) {
  Value out;
  out.type_ = ValueType::kInt;
  out.data_ = v;
  return out;
}

Value Value::Real(double v) {
  Value out;
  out.type_ = ValueType::kReal;
  out.data_ = v;
  return out;
}

Value Value::Text(std::string v) {
  Value out;
  out.type_ = ValueType::kText;
  out.data_ = std::move(v);
  return out;
}

int64_t Value::AsInt() const {
  ADPROM_CHECK(type_ == ValueType::kInt);
  return std::get<int64_t>(data_);
}

double Value::AsReal() const {
  if (type_ == ValueType::kInt) return static_cast<double>(AsInt());
  ADPROM_CHECK(type_ == ValueType::kReal);
  return std::get<double>(data_);
}

const std::string& Value::AsText() const {
  ADPROM_CHECK(type_ == ValueType::kText);
  return std::get<std::string>(data_);
}

bool Value::TryNumeric(double* out) const {
  switch (type_) {
    case ValueType::kInt:
      *out = static_cast<double>(std::get<int64_t>(data_));
      return true;
    case ValueType::kReal:
      *out = std::get<double>(data_);
      return true;
    case ValueType::kText: {
      const std::string& s = std::get<std::string>(data_);
      if (s.empty()) return false;
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(s.c_str(), &end);
      if (errno != 0 || end != s.c_str() + s.size()) return false;
      *out = v;
      return true;
    }
    case ValueType::kNull:
      return false;
  }
  return false;
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Text vs text: lexicographic.
  if (type_ == ValueType::kText && other.type_ == ValueType::kText) {
    return AsText().compare(other.AsText());
  }
  // Otherwise try a numeric comparison (coercing numeric-looking text).
  double a = 0.0;
  double b = 0.0;
  if (TryNumeric(&a) && other.TryNumeric(&b)) {
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  // Mixed non-coercible types: order by type tag, then by text rendering.
  if (type_ != other.type_)
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  return ToString().compare(other.ToString());
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kReal:
      return util::StrFormat("%g", std::get<double>(data_));
    case ValueType::kText:
      return std::get<std::string>(data_);
  }
  return "?";
}

}  // namespace adprom::db
