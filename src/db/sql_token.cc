#include "db/sql_token.h"

#include <cctype>

#include "util/strings.h"

namespace adprom::db {

namespace {

constexpr const char* kKeywords[] = {
    "SELECT", "FROM",   "WHERE",  "AND",    "OR",     "NOT",   "INSERT",
    "INTO",   "VALUES", "UPDATE", "SET",    "DELETE", "CREATE", "TABLE",
    "ORDER",  "BY",     "ASC",    "DESC",   "LIMIT",  "COUNT", "SUM",
    "AVG",    "MIN",    "MAX",    "NULL",   "INT",    "REAL",  "TEXT",
    "LIKE",   "IS",
};

bool IsKeyword(const std::string& upper) {
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

util::Result<std::vector<SqlToken>> LexSql(const std::string& sql) {
  std::vector<SqlToken> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      std::string word = sql.substr(i, j - i);
      std::string upper = util::ToUpper(word);
      if (IsKeyword(upper)) {
        out.push_back({SqlTokenType::kKeyword, upper, start});
      } else {
        out.push_back({SqlTokenType::kIdentifier, word, start});
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool real = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        if (sql[j] == '.') real = true;
        ++j;
      }
      out.push_back({real ? SqlTokenType::kRealLiteral
                          : SqlTokenType::kIntLiteral,
                     sql.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // '' escape
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += sql[j];
        ++j;
      }
      if (!closed) {
        return util::Status::ParseError(util::StrFormat(
            "unterminated string literal at offset %zu in: %s", start,
            sql.c_str()));
      }
      out.push_back({SqlTokenType::kStringLiteral, std::move(text), start});
      i = j;
      continue;
    }
    switch (c) {
      case '*':
        out.push_back({SqlTokenType::kStar, "*", start});
        ++i;
        continue;
      case ',':
        out.push_back({SqlTokenType::kComma, ",", start});
        ++i;
        continue;
      case '(':
        out.push_back({SqlTokenType::kLParen, "(", start});
        ++i;
        continue;
      case ')':
        out.push_back({SqlTokenType::kRParen, ")", start});
        ++i;
        continue;
      case ';':
        out.push_back({SqlTokenType::kSemicolon, ";", start});
        ++i;
        continue;
      case '=':
        out.push_back({SqlTokenType::kOperator, "=", start});
        ++i;
        continue;
      case '+':
        out.push_back({SqlTokenType::kOperator, "+", start});
        ++i;
        continue;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          out.push_back({SqlTokenType::kOperator, "!=", start});
          i += 2;
          continue;
        }
        break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          out.push_back({SqlTokenType::kOperator, "<=", start});
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          out.push_back({SqlTokenType::kOperator, "!=", start});
          i += 2;
        } else {
          out.push_back({SqlTokenType::kOperator, "<", start});
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          out.push_back({SqlTokenType::kOperator, ">=", start});
          i += 2;
        } else {
          out.push_back({SqlTokenType::kOperator, ">", start});
          ++i;
        }
        continue;
      default:
        break;
    }
    return util::Status::ParseError(util::StrFormat(
        "unexpected character '%c' at offset %zu in: %s", c, start,
        sql.c_str()));
  }
  out.push_back({SqlTokenType::kEnd, "", n});
  return out;
}

}  // namespace adprom::db
