#ifndef ADPROM_DB_SQL_AST_H_
#define ADPROM_DB_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "db/value.h"

namespace adprom::db {

/// --- Expressions -----------------------------------------------------

enum class SqlExprKind {
  kLiteral,     // 10, 3.5, 'abc', NULL
  kColumnRef,   // id, yearlyIncome
  kCompare,     // a = b, a < b, ...
  kLogical,     // AND / OR
  kNot,         // NOT e
  kLike,        // col LIKE 'pat%'
  kIsNull,      // e IS NULL / e IS NOT NULL
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp { kAnd, kOr };

/// A SQL scalar/boolean expression tree node.
struct SqlExpr {
  SqlExprKind kind;

  // kLiteral
  Value literal;
  // kColumnRef
  std::string column;
  // kCompare / kLogical / kNot / kLike / kIsNull
  CompareOp cmp = CompareOp::kEq;
  LogicalOp logical = LogicalOp::kAnd;
  bool negated = false;  // for IS NOT NULL / NOT LIKE
  std::unique_ptr<SqlExpr> lhs;
  std::unique_ptr<SqlExpr> rhs;
  std::string like_pattern;  // for kLike ('%' and '_' wildcards)

  static std::unique_ptr<SqlExpr> Literal(Value v);
  static std::unique_ptr<SqlExpr> ColumnRef(std::string name);
  static std::unique_ptr<SqlExpr> Compare(CompareOp op,
                                          std::unique_ptr<SqlExpr> l,
                                          std::unique_ptr<SqlExpr> r);
  static std::unique_ptr<SqlExpr> Logical(LogicalOp op,
                                          std::unique_ptr<SqlExpr> l,
                                          std::unique_ptr<SqlExpr> r);
  static std::unique_ptr<SqlExpr> Not(std::unique_ptr<SqlExpr> e);
};

/// --- Statements -------------------------------------------------------

enum class AggregateFn { kNone, kCount, kSum, kAvg, kMin, kMax };

/// One SELECT output: either a plain column, '*' (all columns), or an
/// aggregate over a column / '*'.
struct SelectItem {
  bool star = false;
  std::string column;
  AggregateFn aggregate = AggregateFn::kNone;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table;
  std::unique_ptr<SqlExpr> where;  // may be null
  std::string order_by;            // empty if absent
  bool order_desc = false;
  int64_t limit = -1;  // -1 = no limit
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;  // empty => positional full-row insert
  std::vector<Value> values;
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, Value>> assignments;
  std::unique_ptr<SqlExpr> where;  // may be null
};

struct DeleteStatement {
  std::string table;
  std::unique_ptr<SqlExpr> where;  // may be null
};

struct CreateTableStatement {
  std::string table;
  std::vector<std::pair<std::string, ValueType>> columns;
};

enum class SqlStatementKind { kSelect, kInsert, kUpdate, kDelete, kCreate };

/// A parsed SQL statement (tagged union over the five statement kinds).
struct SqlStatement {
  SqlStatementKind kind;
  SelectStatement select;
  InsertStatement insert;
  UpdateStatement update;
  DeleteStatement del;
  CreateTableStatement create;
};

}  // namespace adprom::db

#endif  // ADPROM_DB_SQL_AST_H_
