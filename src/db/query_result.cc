#include "db/query_result.h"

#include "util/logging.h"
#include "util/table_printer.h"

namespace adprom::db {

const Value& QueryResult::At(size_t row, size_t col) const {
  ADPROM_CHECK_LT(row, rows.size());
  ADPROM_CHECK_LT(col, rows[row].size());
  return rows[row][col];
}

std::string QueryResult::ToString() const {
  if (columns.empty())
    return "(" + std::to_string(affected_rows) + " rows affected)\n";
  util::TablePrinter printer(columns);
  for (const Row& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Value& v : row) cells.push_back(v.ToString());
    printer.AddRow(std::move(cells));
  }
  return printer.ToString();
}

}  // namespace adprom::db
