#include "db/sql_eval.h"

#include "util/strings.h"

namespace adprom::db {

namespace {

TriBool FromBool(bool b) { return b ? TriBool::kTrue : TriBool::kFalse; }

TriBool TriNot(TriBool v) {
  switch (v) {
    case TriBool::kTrue:
      return TriBool::kFalse;
    case TriBool::kFalse:
      return TriBool::kTrue;
    case TriBool::kUnknown:
      return TriBool::kUnknown;
  }
  return TriBool::kUnknown;
}

TriBool TriAnd(TriBool a, TriBool b) {
  if (a == TriBool::kFalse || b == TriBool::kFalse) return TriBool::kFalse;
  if (a == TriBool::kUnknown || b == TriBool::kUnknown)
    return TriBool::kUnknown;
  return TriBool::kTrue;
}

TriBool TriOr(TriBool a, TriBool b) {
  if (a == TriBool::kTrue || b == TriBool::kTrue) return TriBool::kTrue;
  if (a == TriBool::kUnknown || b == TriBool::kUnknown)
    return TriBool::kUnknown;
  return TriBool::kFalse;
}

}  // namespace

util::Result<Value> EvalScalar(const SqlExpr& expr, const Schema& schema,
                               const Row& row) {
  switch (expr.kind) {
    case SqlExprKind::kLiteral:
      return expr.literal;
    case SqlExprKind::kColumnRef: {
      auto idx = schema.IndexOf(expr.column);
      if (!idx.has_value())
        return util::Status::NotFound("no such column: " + expr.column);
      return row[*idx];
    }
    default:
      return util::Status::InvalidArgument(
          "expected a scalar expression (literal or column)");
  }
}

util::Result<TriBool> EvalPredicate(const SqlExpr& expr, const Schema& schema,
                                    const Row& row) {
  switch (expr.kind) {
    case SqlExprKind::kCompare: {
      ADPROM_ASSIGN_OR_RETURN(Value lhs, EvalScalar(*expr.lhs, schema, row));
      ADPROM_ASSIGN_OR_RETURN(Value rhs, EvalScalar(*expr.rhs, schema, row));
      if (lhs.is_null() || rhs.is_null()) return TriBool::kUnknown;
      const int c = lhs.Compare(rhs);
      switch (expr.cmp) {
        case CompareOp::kEq:
          return FromBool(c == 0);
        case CompareOp::kNe:
          return FromBool(c != 0);
        case CompareOp::kLt:
          return FromBool(c < 0);
        case CompareOp::kLe:
          return FromBool(c <= 0);
        case CompareOp::kGt:
          return FromBool(c > 0);
        case CompareOp::kGe:
          return FromBool(c >= 0);
      }
      return TriBool::kUnknown;
    }
    case SqlExprKind::kLogical: {
      ADPROM_ASSIGN_OR_RETURN(TriBool lhs,
                              EvalPredicate(*expr.lhs, schema, row));
      ADPROM_ASSIGN_OR_RETURN(TriBool rhs,
                              EvalPredicate(*expr.rhs, schema, row));
      return expr.logical == LogicalOp::kAnd ? TriAnd(lhs, rhs)
                                             : TriOr(lhs, rhs);
    }
    case SqlExprKind::kNot: {
      ADPROM_ASSIGN_OR_RETURN(TriBool inner,
                              EvalPredicate(*expr.lhs, schema, row));
      return TriNot(inner);
    }
    case SqlExprKind::kLike: {
      ADPROM_ASSIGN_OR_RETURN(Value lhs, EvalScalar(*expr.lhs, schema, row));
      if (lhs.is_null()) return TriBool::kUnknown;
      return FromBool(LikeMatch(lhs.ToString(), expr.like_pattern));
    }
    case SqlExprKind::kIsNull: {
      ADPROM_ASSIGN_OR_RETURN(Value lhs, EvalScalar(*expr.lhs, schema, row));
      const bool is_null = lhs.is_null();
      return FromBool(expr.negated ? !is_null : is_null);
    }
    case SqlExprKind::kLiteral:
    case SqlExprKind::kColumnRef:
      return util::Status::InvalidArgument(
          "scalar expression used where a predicate was expected");
  }
  return util::Status::Internal("unhandled expression kind");
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Classic two-pointer wildcard match; '%' == '*', '_' == '?'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace adprom::db
