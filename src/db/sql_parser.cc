#include "db/sql_parser.h"

#include <cstdlib>

#include "db/sql_token.h"
#include "util/strings.h"

namespace adprom::db {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<SqlToken> tokens)
      : tokens_(std::move(tokens)) {}

  util::Result<SqlStatement> ParseStatement() {
    SqlStatement stmt;
    if (MatchKeyword("SELECT")) {
      stmt.kind = SqlStatementKind::kSelect;
      ADPROM_RETURN_IF_ERROR(ParseSelect(&stmt.select));
    } else if (MatchKeyword("INSERT")) {
      stmt.kind = SqlStatementKind::kInsert;
      ADPROM_RETURN_IF_ERROR(ParseInsert(&stmt.insert));
    } else if (MatchKeyword("UPDATE")) {
      stmt.kind = SqlStatementKind::kUpdate;
      ADPROM_RETURN_IF_ERROR(ParseUpdate(&stmt.update));
    } else if (MatchKeyword("DELETE")) {
      stmt.kind = SqlStatementKind::kDelete;
      ADPROM_RETURN_IF_ERROR(ParseDelete(&stmt.del));
    } else if (MatchKeyword("CREATE")) {
      stmt.kind = SqlStatementKind::kCreate;
      ADPROM_RETURN_IF_ERROR(ParseCreate(&stmt.create));
    } else {
      return Error("expected SELECT/INSERT/UPDATE/DELETE/CREATE");
    }
    Match(SqlTokenType::kSemicolon);
    if (Peek().type != SqlTokenType::kEnd)
      return Error("trailing tokens after statement");
    return std::move(stmt);
  }

 private:
  const SqlToken& Peek() const { return tokens_[pos_]; }
  const SqlToken& Advance() { return tokens_[pos_++]; }

  bool Match(SqlTokenType type) {
    if (Peek().type == type) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool MatchKeyword(const char* kw) {
    if (Peek().type == SqlTokenType::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekKeyword(const char* kw) const {
    return Peek().type == SqlTokenType::kKeyword && Peek().text == kw;
  }

  util::Status Error(const std::string& what) const {
    return util::Status::ParseError(util::StrFormat(
        "%s near offset %zu (token '%s')", what.c_str(), Peek().offset,
        Peek().text.c_str()));
  }

  util::Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) return Error(std::string("expected ") + kw);
    return util::Status::Ok();
  }

  util::Result<std::string> ExpectIdentifier() {
    if (Peek().type != SqlTokenType::kIdentifier)
      return Error("expected identifier");
    return Advance().text;
  }

  util::Result<Value> ExpectLiteral() {
    const SqlToken& t = Peek();
    switch (t.type) {
      case SqlTokenType::kIntLiteral:
        Advance();
        return Value::Int(std::strtoll(t.text.c_str(), nullptr, 10));
      case SqlTokenType::kRealLiteral:
        Advance();
        return Value::Real(std::strtod(t.text.c_str(), nullptr));
      case SqlTokenType::kStringLiteral:
        Advance();
        return Value::Text(t.text);
      case SqlTokenType::kKeyword:
        if (t.text == "NULL") {
          Advance();
          return Value::Null();
        }
        break;
      default:
        break;
    }
    return Error("expected literal");
  }

  // --- SELECT ---------------------------------------------------------

  util::Status ParseSelect(SelectStatement* out) {
    ADPROM_RETURN_IF_ERROR(ParseSelectItems(&out->items));
    ADPROM_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    ADPROM_ASSIGN_OR_RETURN(out->table, ExpectIdentifier());
    if (MatchKeyword("WHERE")) {
      ADPROM_ASSIGN_OR_RETURN(out->where, ParseExpr());
    }
    if (MatchKeyword("ORDER")) {
      ADPROM_RETURN_IF_ERROR(ExpectKeyword("BY"));
      ADPROM_ASSIGN_OR_RETURN(out->order_by, ExpectIdentifier());
      if (MatchKeyword("DESC")) {
        out->order_desc = true;
      } else {
        MatchKeyword("ASC");
      }
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().type != SqlTokenType::kIntLiteral)
        return Error("expected integer after LIMIT");
      out->limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
    }
    return util::Status::Ok();
  }

  util::Status ParseSelectItems(std::vector<SelectItem>* items) {
    do {
      SelectItem item;
      if (Match(SqlTokenType::kStar)) {
        item.star = true;
      } else if (Peek().type == SqlTokenType::kKeyword &&
                 AggregateFromKeyword(Peek().text) != AggregateFn::kNone) {
        item.aggregate = AggregateFromKeyword(Advance().text);
        if (!Match(SqlTokenType::kLParen))
          return Error("expected '(' after aggregate");
        if (Match(SqlTokenType::kStar)) {
          item.star = true;
          if (item.aggregate != AggregateFn::kCount)
            return Error("only COUNT(*) supports '*'");
        } else {
          ADPROM_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
        }
        if (!Match(SqlTokenType::kRParen))
          return Error("expected ')' after aggregate");
      } else {
        ADPROM_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
      }
      items->push_back(std::move(item));
    } while (Match(SqlTokenType::kComma));
    return util::Status::Ok();
  }

  static AggregateFn AggregateFromKeyword(const std::string& kw) {
    if (kw == "COUNT") return AggregateFn::kCount;
    if (kw == "SUM") return AggregateFn::kSum;
    if (kw == "AVG") return AggregateFn::kAvg;
    if (kw == "MIN") return AggregateFn::kMin;
    if (kw == "MAX") return AggregateFn::kMax;
    return AggregateFn::kNone;
  }

  // --- INSERT ---------------------------------------------------------

  util::Status ParseInsert(InsertStatement* out) {
    ADPROM_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    ADPROM_ASSIGN_OR_RETURN(out->table, ExpectIdentifier());
    if (Match(SqlTokenType::kLParen)) {
      do {
        ADPROM_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        out->columns.push_back(std::move(col));
      } while (Match(SqlTokenType::kComma));
      if (!Match(SqlTokenType::kRParen))
        return Error("expected ')' after column list");
    }
    ADPROM_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    if (!Match(SqlTokenType::kLParen))
      return Error("expected '(' after VALUES");
    do {
      ADPROM_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
      out->values.push_back(std::move(v));
    } while (Match(SqlTokenType::kComma));
    if (!Match(SqlTokenType::kRParen))
      return Error("expected ')' after value list");
    return util::Status::Ok();
  }

  // --- UPDATE ---------------------------------------------------------

  util::Status ParseUpdate(UpdateStatement* out) {
    ADPROM_ASSIGN_OR_RETURN(out->table, ExpectIdentifier());
    ADPROM_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      ADPROM_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      if (!(Peek().type == SqlTokenType::kOperator && Peek().text == "="))
        return Error("expected '=' in SET clause");
      Advance();
      ADPROM_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
      out->assignments.emplace_back(std::move(col), std::move(v));
    } while (Match(SqlTokenType::kComma));
    if (MatchKeyword("WHERE")) {
      ADPROM_ASSIGN_OR_RETURN(out->where, ParseExpr());
    }
    return util::Status::Ok();
  }

  // --- DELETE ---------------------------------------------------------

  util::Status ParseDelete(DeleteStatement* out) {
    ADPROM_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    ADPROM_ASSIGN_OR_RETURN(out->table, ExpectIdentifier());
    if (MatchKeyword("WHERE")) {
      ADPROM_ASSIGN_OR_RETURN(out->where, ParseExpr());
    }
    return util::Status::Ok();
  }

  // --- CREATE ---------------------------------------------------------

  util::Status ParseCreate(CreateTableStatement* out) {
    ADPROM_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    ADPROM_ASSIGN_OR_RETURN(out->table, ExpectIdentifier());
    if (!Match(SqlTokenType::kLParen))
      return Error("expected '(' after table name");
    do {
      ADPROM_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      ValueType type;
      if (MatchKeyword("INT")) {
        type = ValueType::kInt;
      } else if (MatchKeyword("REAL")) {
        type = ValueType::kReal;
      } else if (MatchKeyword("TEXT")) {
        type = ValueType::kText;
      } else {
        return Error("expected column type INT/REAL/TEXT");
      }
      out->columns.emplace_back(std::move(col), type);
    } while (Match(SqlTokenType::kComma));
    if (!Match(SqlTokenType::kRParen))
      return Error("expected ')' after column definitions");
    return util::Status::Ok();
  }

  // --- Expressions ----------------------------------------------------

  util::Result<std::unique_ptr<SqlExpr>> ParseExpr() { return ParseOr(); }

  util::Result<std::unique_ptr<SqlExpr>> ParseOr() {
    ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> lhs, ParseAnd());
    while (MatchKeyword("OR")) {
      ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> rhs, ParseAnd());
      lhs = SqlExpr::Logical(LogicalOp::kOr, std::move(lhs), std::move(rhs));
    }
    return std::move(lhs);
  }

  util::Result<std::unique_ptr<SqlExpr>> ParseAnd() {
    ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> lhs, ParseUnary());
    while (MatchKeyword("AND")) {
      ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> rhs, ParseUnary());
      lhs = SqlExpr::Logical(LogicalOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return std::move(lhs);
  }

  util::Result<std::unique_ptr<SqlExpr>> ParseUnary() {
    if (MatchKeyword("NOT")) {
      ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> e, ParseUnary());
      return SqlExpr::Not(std::move(e));
    }
    return ParsePrimary();
  }

  util::Result<std::unique_ptr<SqlExpr>> ParsePrimary() {
    if (Match(SqlTokenType::kLParen)) {
      ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> e, ParseExpr());
      if (!Match(SqlTokenType::kRParen))
        return util::Result<std::unique_ptr<SqlExpr>>(
            Error("expected ')' in expression"));
      return std::move(e);
    }
    ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> lhs, ParseOperand());
    // IS [NOT] NULL
    if (MatchKeyword("IS")) {
      bool negated = MatchKeyword("NOT");
      if (!MatchKeyword("NULL"))
        return util::Result<std::unique_ptr<SqlExpr>>(
            Error("expected NULL after IS"));
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kIsNull;
      e->negated = negated;
      e->lhs = std::move(lhs);
      return std::move(e);
    }
    // LIKE 'pattern'
    if (MatchKeyword("LIKE")) {
      if (Peek().type != SqlTokenType::kStringLiteral)
        return util::Result<std::unique_ptr<SqlExpr>>(
            Error("expected string literal after LIKE"));
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kLike;
      e->lhs = std::move(lhs);
      e->like_pattern = Advance().text;
      return std::move(e);
    }
    // Comparison
    if (Peek().type != SqlTokenType::kOperator)
      return util::Result<std::unique_ptr<SqlExpr>>(
          Error("expected comparison operator"));
    const std::string op = Advance().text;
    CompareOp cmp;
    if (op == "=") {
      cmp = CompareOp::kEq;
    } else if (op == "!=") {
      cmp = CompareOp::kNe;
    } else if (op == "<") {
      cmp = CompareOp::kLt;
    } else if (op == "<=") {
      cmp = CompareOp::kLe;
    } else if (op == ">") {
      cmp = CompareOp::kGt;
    } else if (op == ">=") {
      cmp = CompareOp::kGe;
    } else {
      return util::Result<std::unique_ptr<SqlExpr>>(
          Error("unsupported operator " + op));
    }
    ADPROM_ASSIGN_OR_RETURN(std::unique_ptr<SqlExpr> rhs, ParseOperand());
    return SqlExpr::Compare(cmp, std::move(lhs), std::move(rhs));
  }

  util::Result<std::unique_ptr<SqlExpr>> ParseOperand() {
    const SqlToken& t = Peek();
    if (t.type == SqlTokenType::kIdentifier) {
      Advance();
      return SqlExpr::ColumnRef(t.text);
    }
    ADPROM_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
    return SqlExpr::Literal(std::move(v));
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

util::Result<SqlStatement> ParseSql(const std::string& sql) {
  ADPROM_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, LexSql(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace adprom::db
