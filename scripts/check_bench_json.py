#!/usr/bin/env python3
"""Validates the structure of the bench JSON outputs.

Usage: check_bench_json.py <bench_json> [<bench_json> ...]

Every bench JSON must carry a provenance block (CPU model, core count,
min-of-N timing discipline) plus the per-bench sections this script pins
down. The CI perf-smoke job runs each bench with --smoke and feeds the
results through here, so a bench that silently stops emitting a field
fails the build instead of producing an unreadable trajectory.
"""

import json
import sys


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def require(data, path, key, kind):
    if key not in data:
        fail(path, f"missing key {key!r}")
    if not isinstance(data[key], kind):
        fail(path, f"key {key!r} has type {type(data[key]).__name__}, "
                   f"expected {kind.__name__}")
    return data[key]


def check_provenance(doc, path):
    prov = require(doc, path, "provenance", dict)
    cpu = require(prov, path, "cpu_model", str)
    if not cpu:
        fail(path, "provenance.cpu_model is empty")
    require(prov, path, "hardware_concurrency", int)
    timing = require(prov, path, "timing", str)
    if not timing.startswith("min-of-"):
        fail(path, f"provenance.timing is {timing!r}, expected 'min-of-N'")
    repeats = require(prov, path, "timing_repeats", int)
    if repeats < 1:
        fail(path, f"provenance.timing_repeats is {repeats}")


def check_runs(runs, path, section, required_numbers):
    if not runs:
        fail(path, f"{section}.runs is empty")
    for i, run in enumerate(runs):
        for key in required_numbers:
            if key not in run:
                fail(path, f"{section}.runs[{i}] missing {key!r}")
            if not isinstance(run[key], (int, float)) or run[key] < 0:
                fail(path, f"{section}.runs[{i}].{key} = {run[key]!r}")


def check_throughput(doc, path):
    training = require(doc, path, "training", dict)
    check_runs(require(training, path, "runs", list), path, "training",
               ["threads", "wall_time_sec", "speedup",
                "per_thread_efficiency", "transition_density",
                "sparse_density_cutoff"])
    kernels_seen = {run.get("kernel") for run in training["runs"]}
    if kernels_seen != {"sparse", "dense"}:
        fail(path, f"training.runs kernels are {sorted(kernels_seen)}, "
                   "expected both 'sparse' and 'dense'")
    for i, run in enumerate(training["runs"]):
        if run.get("executed_kernel") not in ("csr", "dense"):
            fail(path, f"training.runs[{i}].executed_kernel = "
                       f"{run.get('executed_kernel')!r}, expected the "
                       "legacy 'csr' or 'dense' (batch rows live in "
                       "training.batch_runs)")
    if training.get("bit_identical") is not True:
        fail(path, "training.bit_identical is not true")
    for key in ("transition_density", "default_sparse_density_cutoff"):
        value = require(training, path, key, (int, float))
        if value <= 0:
            fail(path, f"training.{key} = {value}")
    if training.get("auto_selected_kernel") not in ("csr", "dense"):
        fail(path, "training.auto_selected_kernel is not 'csr'/'dense'")
    # The bench must train the production configuration: flooring only B
    # and pi keeps A's pCTM zero pattern intact across iterations. With
    # HmmModel::Smooth instead, the first M-step densifies A to 100% and
    # every later iteration silently measures a different workload than
    # the recorded transition_density describes.
    if training.get("smooth_transitions") is not False:
        fail(path, "training.smooth_transitions is not false (rows must "
                   "train the pCTM-preserving production configuration)")

    batch_train = require(training, path, "batch_runs", list)
    check_runs(batch_train, path, "training.batch_runs",
               ["width", "wall_time_sec", "speedup_vs_dense"])
    batch_names = {run.get("name") for run in batch_train}
    for expected in ("batch-scalar", "batch-simd"):
        if expected not in batch_names:
            fail(path, f"training.batch_runs missing a {expected!r} row")
    for i, run in enumerate(batch_train):
        if not run.get("simd_level"):
            fail(path, f"training.batch_runs[{i}].simd_level is missing")
        if run.get("bit_identical") is not True:
            fail(path, f"training.batch_runs[{i}].bit_identical is not "
                       "true (the batched engine must train the exact "
                       "model the legacy sweep trained)")
        # The training perf gate: with real SIMD lanes the batched E-step
        # must beat the dense single-thread reference by >= 3x. It binds
        # only at scale (the --smoke preset trains a toy model over ~100
        # windows, where fixed per-iteration overhead dominates and the
        # multiple is meaningless — same reasoning as the fleet gate) and
        # only off scalar hardware: a forced-scalar or lane-less run
        # reports simd_level "scalar" and is exempt (the batch-scalar row
        # exists so that configuration is still tracked).
        if (run.get("name") == "batch-simd"
                and run.get("simd_level") != "scalar"
                and training.get("windows", 0) >= 200
                and run["speedup_vs_dense"] < 3.0):
            fail(path, f"training.batch_runs[{i}] (batch-simd, "
                       f"{run['simd_level']}): speedup_vs_dense "
                       f"{run['speedup_vs_dense']} < 3.0")

    kernels = require(doc, path, "kernels", dict)
    for key in ("dense_wall_time_sec", "sparse_wall_time_sec",
                "sparse_speedup", "transition_density", "emission_density"):
        value = require(kernels, path, key, (int, float))
        if value <= 0:
            fail(path, f"kernels.{key} = {value}")
    require(kernels, path, "transition_nnz", int)
    require(kernels, path, "emission_nnz", int)
    if kernels.get("bit_identical") is not True:
        fail(path, "kernels.bit_identical is not true")

    batch_runs = require(kernels, path, "batch_runs", list)
    check_runs(batch_runs, path, "kernels.batch_runs",
               ["width", "wall_time_sec", "windows_per_sec",
                "speedup_vs_sparse", "triage_certified_fraction"])
    names = {run.get("name") for run in batch_runs}
    for expected in ("batch-scalar", "batch-simd", "batch-simd-triage"):
        if expected not in names:
            fail(path, f"kernels.batch_runs missing a {expected!r} row")
    for i, run in enumerate(batch_runs):
        if not run.get("simd_level"):
            fail(path, f"kernels.batch_runs[{i}].simd_level is missing")
        if run.get("scores_ok") is not True:
            fail(path, f"kernels.batch_runs[{i}].scores_ok is not true "
                       "(exact rows must be bit-identical, triage rows "
                       "sound floors)")
    table_bytes = require(kernels, path, "quantized_table_bytes", int)
    if table_bytes <= 0:
        fail(path, f"kernels.quantized_table_bytes = {table_bytes}")

    detection = require(doc, path, "detection", dict)
    detect_runs = require(detection, path, "runs", list)
    check_runs(detect_runs, path, "detection",
               ["threads", "events", "wall_time_sec", "events_per_sec",
                "windows_per_sec", "per_thread_efficiency"])
    if not any(run.get("weak_scaled") is True for run in detect_runs
               if run.get("threads", 1) > 1):
        fail(path, "detection has multi-thread runs but none weak-scaled"
             if any(run.get("threads", 1) > 1 for run in detect_runs)
             else "detection.runs has no multi-thread rows")


def check_streaming(doc, path):
    check_runs(require(doc, path, "runs", list), path, "streaming",
               ["sessions", "events", "wall_time_sec", "events_per_sec",
                "submit_p50_us", "submit_p99_us"])

    fleet_runs = require(doc, path, "fleet_runs", list)
    check_runs(fleet_runs, path, "streaming.fleet_runs",
               ["shards", "tenants", "sessions", "events", "verdicts",
                "drops", "backlog_max", "wall_time_sec", "events_per_sec",
                "submit_p50_us", "submit_p99_us"])
    if not any(run.get("shards", 0) >= 8 for run in fleet_runs):
        fail(path, "fleet_runs has no row with >= 8 shards")
    baselines = [run for run in fleet_runs
                 if run.get("name") == "single_manager_baseline"]
    if not baselines:
        fail(path, "fleet_runs has no single_manager_baseline row")
    # The throughput gate only binds at fleet scale: the --smoke preset
    # runs a few hundred sessions, where per-session engine compilation
    # does not dominate and the multiple is meaningless.
    baseline = baselines[0]
    at_scale = [run for run in fleet_runs
                if run.get("name") == "fleet" and run.get("shards", 0) >= 8
                and run.get("sessions", 0) >= 10000
                and run.get("sessions") == baseline.get("sessions")]
    for run in at_scale:
        multiple = run["events_per_sec"] / baseline["events_per_sec"]
        if multiple < 2.0:
            fail(path, f"fleet at {run['shards']} shards / "
                       f"{run['sessions']} sessions is only {multiple:.2f}x "
                       "the single-manager baseline (need >= 2x)")


def check_analysis(doc, path):
    apps = require(doc, path, "apps", list)
    check_runs(apps, path, "apps",
               ["functions", "fi_taint_ms", "fs_taint_ms", "absint_ms",
                "lint_ms", "ifds_ms", "witness_ms", "ifds_sink_facts",
                "ifds_pruned_facts", "ifds_witnesses"])
    for i, run in enumerate(apps):
        # The IFDS fixpoint labels the same facts the flow-sensitive pass
        # does; pruning can only discard some of them.
        if run["ifds_pruned_facts"] > run["ifds_sink_facts"]:
            fail(path, f"apps[{i}]: ifds_pruned_facts "
                       f"({run['ifds_pruned_facts']}) exceeds "
                       f"ifds_sink_facts ({run['ifds_sink_facts']})")
    drift = require(doc, path, "drift", dict)
    revisions = require(drift, path, "revisions", list)
    check_runs(revisions, path, "drift.revisions",
               ["functions", "cold_ms", "warm_ms", "speedup", "warm_hits",
                "warm_misses"])
    kinds = [r.get("kind") for r in revisions]
    for expected in ("none", "body_edit", "signature", "new_callee",
                     "schema", "sink_relabel"):
        if expected not in kinds:
            fail(path, f"drift.revisions missing a {expected!r} row")
    for i, run in enumerate(revisions):
        # A body-only edit re-solves one function out of 25; the warm run
        # must recoup at least 5x of the cold cached-pass time.
        if run.get("kind") == "body_edit" and run["speedup"] < 5:
            fail(path, f"drift.revisions[{i}] (body_edit): speedup "
                       f"{run['speedup']} < 5")
        # The base revision re-analyzed warm must hit on everything.
        if run.get("kind") == "none" and run["warm_misses"] != 0:
            fail(path, f"drift.revisions[{i}] (none): {run['warm_misses']} "
                       "warm misses on an unchanged program")
    ablation = require(doc, path, "forecast_ablation", dict)
    require(ablation, path, "refined_mean_score", (int, float))
    require(ablation, path, "uniform_mean_score", (int, float))


CHECKERS = {
    "bench_throughput": check_throughput,
    "bench_streaming": check_streaming,
    "bench_analysis_passes": check_analysis,
}


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(path, f"unreadable: {e}")
        name = require(doc, path, "bench", str)
        if name not in CHECKERS:
            fail(path, f"unknown bench name {name!r}")
        check_provenance(doc, path)
        CHECKERS[name](doc, path)
        print(f"{path}: ok ({name})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
