# Schema revision for rev4_schema.mini: the records table gains an
# `owner` column. The program source is byte-identical to rev0 — only
# the catalog changes, so only schema-dependent analysis state (column
# expansion, the IFDS options fingerprint) is invalidated.
CREATE TABLE records (id INT, name TEXT, grp TEXT, score INT, owner TEXT)
INSERT INTO records VALUES (1, 'alpha', 'g1', 10, 'ops')
INSERT INTO records VALUES (2, 'beta', 'g2', 20, 'ops')
INSERT INTO records VALUES (3, 'gamma', 'g3', 30, 'dev')
