# Base schema for the drift corpus (rev0..rev3, rev5).
CREATE TABLE records (id INT, name TEXT, grp TEXT, score INT)
INSERT INTO records VALUES (1, 'alpha', 'g1', 10)
INSERT INTO records VALUES (2, 'beta', 'g2', 20)
INSERT INTO records VALUES (3, 'gamma', 'g3', 30)
