# Schema and seed data for the absint demo sample.
CREATE TABLE jobs (id INT, status TEXT)
INSERT INTO jobs VALUES (0, 'queued')
INSERT INTO jobs VALUES (1, 'running')
INSERT INTO jobs VALUES (2, 'done')
