# Schema and seed data for the witness demo sample.
CREATE TABLE patients (name TEXT, ssn TEXT)
INSERT INTO patients VALUES ('ada', '000-00-0001')
INSERT INTO patients VALUES ('bob', '000-00-0002')
