#include "tools/cli_lib.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>

#include "analysis/dataflow/lint.h"
#include "analysis/summary_cache.h"
#include "core/adprom.h"
#include "db/schema.h"
#include "core/detection_engine.h"
#include "prog/program.h"
#include "runtime/frame_codec.h"
#include "runtime/trace_io.h"
#include "service/fleet_node.h"
#include "service/profile_registry.h"
#include "service/session_manager.h"
#include "util/simd.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace adprom::cli {

namespace {

/// Minimal flag parser: positional args plus --flag value / --flag pairs.
struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& name) const { return flags.contains(name); }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

constexpr const char* kBoolFlags[] = {"--no-labels", "--signatures",
                                      "--flow-insensitive", "--no-absint",
                                      "--all", "--dense-kernels",
                                      "--no-simd", "--triage",
                                      "--witnesses", "--no-column-taint",
                                      "--no-analysis-cache", "--stats",
                                      "--metrics", "--tenants"};

bool IsBoolFlag(const std::string& arg) {
  for (const char* flag : kBoolFlags) {
    if (arg == flag) return true;
  }
  return false;
}

util::Result<ParsedArgs> ParseArgs(const std::vector<std::string>& args) {
  ParsedArgs out;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      out.positional.push_back(arg);
      continue;
    }
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {  // --flag=value
      out.flags[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (IsBoolFlag(arg)) {
      out.flags[arg] = "1";
      continue;
    }
    if (i + 1 >= args.size()) {
      return util::Status::InvalidArgument("flag needs a value: " + arg);
    }
    out.flags[arg] = args[++i];
  }
  return std::move(out);
}

util::Result<prog::Program> LoadProgram(const std::string& path) {
  ADPROM_ASSIGN_OR_RETURN(std::string source, ReadFileToString(path));
  auto program = prog::ParseProgram(source);
  if (!program.ok()) {
    return util::Status(program.status().code(),
                        path + ": " + program.status().message());
  }
  return program;
}

util::Result<core::DbFactory> LoadDbFactory(const ParsedArgs& args) {
  if (!args.Has("--db")) return core::DbFactory();
  ADPROM_ASSIGN_OR_RETURN(std::string text,
                          ReadFileToString(args.Get("--db")));
  auto statements =
      std::make_shared<std::vector<std::string>>(ParseSqlSeed(text));
  // Validate the seed once up front so errors surface at load time.
  {
    db::Database probe;
    for (const std::string& sql : *statements) {
      auto result = probe.Execute(sql);
      if (!result.ok()) {
        return util::Status(result.status().code(),
                            "seed statement failed: " + sql + " — " +
                                result.status().message());
      }
    }
  }
  return core::DbFactory([statements]() {
    auto database = std::make_unique<db::Database>();
    for (const std::string& sql : *statements) {
      (void)database->Execute(sql);
    }
    return database;
  });
}

util::Result<std::vector<core::TestCase>> LoadCases(
    const std::string& path) {
  ADPROM_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  std::vector<core::TestCase> cases;
  for (const std::string& line : util::Split(text, '\n')) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    cases.push_back({util::SplitWhitespace(trimmed)});
  }
  if (cases.empty()) {
    return util::Status::InvalidArgument(path + ": no test cases");
  }
  return std::move(cases);
}

core::TestCase InputsFlag(const ParsedArgs& args) {
  core::TestCase test_case;
  if (args.Has("--input")) {
    for (std::string& piece : util::Split(args.Get("--input"), ',')) {
      test_case.inputs.push_back(std::move(piece));
    }
  }
  return test_case;
}

/// Applies the batched-scoring-engine flags shared by every command that
/// constructs a DetectionEngine: --batch-width N (0 = window-at-a-time),
/// --no-simd (force the scalar kernels), --triage (quantized triage tier).
util::Status ApplyBatchFlags(const ParsedArgs& args,
                             core::ProfileOptions* options) {
  if (args.Has("--batch-width")) {
    const std::string& value = args.Get("--batch-width");
    char* end = nullptr;
    const long width = std::strtol(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0' || width < 0) {
      return util::Status::InvalidArgument(
          "--batch-width must be a number >= 0 (0 = unbatched)");
    }
    options->batch_width = static_cast<size_t>(width);
  }
  if (args.Has("--no-simd")) options->no_simd = true;
  if (args.Has("--triage")) options->triage = true;
  return util::Status::Ok();
}

util::Result<core::ProfileOptions> OptionsFromFlags(const ParsedArgs& args) {
  core::ProfileOptions options;
  if (args.Has("--window")) {
    const long window = std::strtol(args.Get("--window").c_str(), nullptr,
                                    10);
    if (window < 2) {
      return util::Status::InvalidArgument("--window must be >= 2");
    }
    options.window_length = static_cast<size_t>(window);
  }
  if (args.Has("--no-labels")) options.use_dd_labels = false;
  if (args.Has("--signatures")) options.use_query_signatures = true;
  if (args.Has("--flow-insensitive")) options.flow_insensitive_taint = true;
  if (args.Has("--no-absint")) options.absint_refinement = false;
  if (args.Has("--dense-kernels")) options.dense_kernels = true;
  ADPROM_RETURN_IF_ERROR(ApplyBatchFlags(args, &options));
  if (args.Has("--seed")) {
    options.seed = std::strtoull(args.Get("--seed").c_str(), nullptr, 10);
  }
  if (args.Has("--threads")) {
    const std::string& value = args.Get("--threads");
    char* end = nullptr;
    const long threads = std::strtol(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0' || threads < 0) {
      return util::Status::InvalidArgument(
          "--threads must be a number >= 0 (0 = all hardware threads)");
    }
    options.train.num_threads = static_cast<int>(threads);
  }
  return std::move(options);
}

/// Resolves --analysis-cache / --no-analysis-cache for `analyze` and
/// `lint`. When a directory is given (and caching is not ablated) loads
/// its image into `cache` — fail-closed: a corrupt or version-mismatched
/// file is reported and the run proceeds cold, never partially warm — and
/// returns true so the caller saves the cache back after the run.
bool LoadCacheDir(const ParsedArgs& args, analysis::AnalysisCache* cache,
                  std::ostream& out) {
  if (!args.Has("--analysis-cache") || args.Has("--no-analysis-cache")) {
    return false;
  }
  const util::Status loaded =
      analysis::LoadAnalysisCache(args.Get("--analysis-cache"), cache);
  if (!loaded.ok()) {
    out << "analysis cache: " << loaded.message() << " — running cold\n";
  }
  return true;
}

void PrintCacheLine(std::ostream& out, const char* pass,
                    const analysis::PassCacheStats& stats) {
  out << "cache " << pass << ": " << stats.hits << " hits, " << stats.misses
      << " misses, " << stats.invalidated << " invalidated\n";
}

// --- Commands ----------------------------------------------------------

util::Status CmdAnalyze(const ParsedArgs& args, std::ostream& out) {
  if (args.positional.size() != 2) {
    return util::Status::InvalidArgument(
        "usage: adprom analyze <app.mini> [--no-absint] [--dump-cfg=<dir>] "
        "[--db seed.sql] [--no-column-taint] [--analysis-cache=<dir>] "
        "[--no-analysis-cache] [--stats] [--dump-pctm=<path>]");
  }
  ADPROM_ASSIGN_OR_RETURN(prog::Program program,
                          LoadProgram(args.positional[1]));
  core::AnalyzerOptions analyzer_options;
  analyzer_options.flow_insensitive_taint = args.Has("--flow-insensitive");
  analyzer_options.absint_refinement = !args.Has("--no-absint");
  analyzer_options.column_taint = !args.Has("--no-column-taint");
  if (args.Has("--db")) {
    ADPROM_ASSIGN_OR_RETURN(std::string seed_text,
                            ReadFileToString(args.Get("--db")));
    auto catalog = db::BuildSchemaCatalog(ParseSqlSeed(seed_text));
    if (!catalog.ok()) return catalog.status();
    analyzer_options.schemas = std::move(*catalog);
  }
  analyzer_options.incremental = !args.Has("--no-analysis-cache");
  analysis::AnalysisCache disk_cache;
  const bool persist_cache = LoadCacheDir(args, &disk_cache, out);
  if (persist_cache) analyzer_options.analysis_cache = &disk_cache;
  core::Analyzer analyzer(analyzer_options);
  ADPROM_ASSIGN_OR_RETURN(core::AnalysisResult analysis,
                          analyzer.Analyze(program));
  if (persist_cache) {
    ADPROM_RETURN_IF_ERROR(analysis::SaveAnalysisCache(
        disk_cache, args.Get("--analysis-cache")));
  }
  if (args.Has("--dump-pctm")) {
    // Full-precision rendering so CI can byte-compare cold vs warm pCTMs.
    ADPROM_RETURN_IF_ERROR(WriteStringToFile(
        args.Get("--dump-pctm"), analysis.program_ctm.ToString(17)));
  }

  if (args.Has("--dump-cfg")) {
    const std::string dir = args.Get("--dump-cfg");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return util::Status::Internal("cannot create " + dir + ": " +
                                    ec.message());
    }
    for (const auto& [name, cfg] : analysis.cfgs) {
      const std::string path = dir + "/" + name + ".dot";
      ADPROM_RETURN_IF_ERROR(WriteStringToFile(path, cfg.ToDot()));
    }
    out << "CFGs dumped to " << dir << "/ (" << analysis.cfgs.size()
        << " functions)\n";
  }

  out << "functions: " << program.functions().size() << "\n";
  out << "taint labeler: "
      << (analyzer_options.flow_insensitive_taint ? "flow-insensitive"
                                                  : "flow-sensitive")
      << "\n";
  if (analyzer_options.absint_refinement) {
    out << "absint: pruned " << analysis.refinement.pruned_edges
        << " infeasible edges, bounded " << analysis.refinement.bounded_loops
        << " loops\n";
  } else {
    out << "absint: disabled (--no-absint)\n";
  }
  out << "call sites (pCTM states): " << analysis.program_ctm.num_sites()
      << "\n";
  size_t labeled = 0;
  for (size_t i = 0; i < analysis.program_ctm.num_sites(); ++i) {
    const analysis::Site& site = analysis.program_ctm.site(i);
    if (!site.labeled) continue;
    ++labeled;
    out << "  TD output: " << site.observable << " (sources:";
    for (const std::string& table : site.source_tables) out << " " << table;
    out << ")";
    if (!site.source_columns.empty()) {
      out << " [columns:";
      for (const std::string& column : site.source_columns) {
        out << " " << column;
      }
      out << "]";
    }
    out << "\n";
  }
  out << "labeled TD outputs: " << labeled << "\n";
  if (args.Has("--stats")) {
    out << util::StrFormat(
        "pass seconds: cfg %.3f, absint %.3f, taint %.3f, forecast %.3f, "
        "aggregation %.3f\n",
        analysis.cfg_seconds, analysis.absint_seconds,
        analysis.taint_seconds, analysis.forecast_seconds,
        analysis.aggregation_seconds);
    PrintCacheLine(out, "taint", analysis.cache_stats.taint);
    PrintCacheLine(out, "absint", analysis.cache_stats.absint);
    PrintCacheLine(out, "forecast", analysis.cache_stats.forecast);
    out << "cache aggregation: " << analysis.aggregation_stats.cache_hits
        << " hits, " << analysis.aggregation_stats.cache_misses
        << " misses\n";
  }
  const util::Status invariants = analysis.program_ctm.CheckInvariants();
  out << "pCTM invariants: " << (invariants.ok() ? "hold" : "VIOLATED")
      << "\n";
  ADPROM_RETURN_IF_ERROR(invariants);
  return util::Status::Ok();
}

util::Status CmdTrain(const ParsedArgs& args, std::ostream& out) {
  if (args.positional.size() != 2 || !args.Has("--cases") ||
      !args.Has("--out")) {
    return util::Status::InvalidArgument(
        "usage: adprom train <app.mini> [--db seed.sql] --cases cases.txt"
        " --out app.profile [--window N] [--no-labels] [--signatures]"
        " [--no-absint] [--threads N] [--dense-kernels] [--batch-width N]"
        " [--no-simd] [--stats]");
  }
  ADPROM_ASSIGN_OR_RETURN(prog::Program program,
                          LoadProgram(args.positional[1]));
  ADPROM_ASSIGN_OR_RETURN(core::DbFactory db_factory, LoadDbFactory(args));
  ADPROM_ASSIGN_OR_RETURN(std::vector<core::TestCase> cases,
                          LoadCases(args.Get("--cases")));
  ADPROM_ASSIGN_OR_RETURN(core::ProfileOptions options,
                          OptionsFromFlags(args));

  ADPROM_ASSIGN_OR_RETURN(
      core::AdProm system,
      core::AdProm::Train(program, db_factory, cases, options));
  const std::string serialized = system.profile().Serialize();
  ADPROM_RETURN_IF_ERROR(WriteStringToFile(args.Get("--out"), serialized));
  out << "trained on " << cases.size() << " test cases: "
      << system.profile().num_states << " states, alphabet "
      << system.profile().alphabet.size() << ", threshold "
      << system.profile().threshold << "\n";
  const hmm::TrainStats& stats = system.profile().train_stats;
  out << "training kernel: " << stats.kernel << " (simd "
      << stats.simd_level << "), " << stats.iterations << " iterations"
      << (stats.converged ? ", converged"
                          : (stats.stopped_by_callback ? ", early-stopped"
                                                       : ""))
      << "\n";
  if (args.Has("--stats")) {
    out << "log-likelihood curve:";
    for (const double ll : stats.log_likelihood_curve) {
      out << " " << util::StrFormat("%.6g", ll);
    }
    out << "\n";
  }
  out << "profile written to " << args.Get("--out") << " ("
      << serialized.size() << " bytes)\n";
  return util::Status::Ok();
}

util::Status CmdTrace(const ParsedArgs& args, std::ostream& out) {
  if (args.positional.size() != 2 || !args.Has("--out")) {
    return util::Status::InvalidArgument(
        "usage: adprom trace <app.mini> [--db seed.sql] [--input a,b]"
        " --out run.trace");
  }
  ADPROM_ASSIGN_OR_RETURN(prog::Program program,
                          LoadProgram(args.positional[1]));
  ADPROM_ASSIGN_OR_RETURN(core::DbFactory db_factory, LoadDbFactory(args));
  auto cfgs = prog::BuildAllCfgs(program);
  if (!cfgs.ok()) return cfgs.status();
  runtime::ProgramIo io;
  ADPROM_ASSIGN_OR_RETURN(
      runtime::Trace trace,
      core::AdProm::CollectTrace(program, *cfgs, db_factory,
                                 InputsFlag(args), &io));
  ADPROM_RETURN_IF_ERROR(
      WriteStringToFile(args.Get("--out"), runtime::SerializeTrace(trace)));
  out << "collected " << trace.size() << " calls -> " << args.Get("--out")
      << "\n";
  for (const std::string& line : io.screen) out << "  | " << line << "\n";
  return util::Status::Ok();
}

util::Status PrintDetections(const std::vector<core::Detection>& detections,
                             std::ostream& out) {
  size_t alarms = 0;
  for (const core::Detection& d : detections) {
    if (!d.IsAlarm()) continue;
    ++alarms;
    out << "  window " << d.window_start << ": "
        << core::DetectionFlagName(d.flag) << " (score " << d.score << ")";
    if (!d.source_tables.empty()) {
      out << " sources:";
      for (const std::string& table : d.source_tables) out << " " << table;
    }
    if (!d.detail.empty()) out << " — " << d.detail;
    out << "\n";
    if (alarms == 10) {
      out << "  ... further alarms suppressed\n";
      break;
    }
  }
  out << (alarms == 0 ? "no alarms\n" : "") << "windows: "
      << detections.size() << ", alarms: " << alarms << "\n";
  return util::Status::Ok();
}

util::Status CmdScore(const ParsedArgs& args, std::ostream& out) {
  if (!args.Has("--profile") || !args.Has("--trace")) {
    return util::Status::InvalidArgument(
        "usage: adprom score --profile app.profile --trace run.trace"
        " [--dense-kernels] [--batch-width N] [--no-simd] [--triage]");
  }
  ADPROM_ASSIGN_OR_RETURN(std::string profile_text,
                          ReadFileToString(args.Get("--profile")));
  ADPROM_ASSIGN_OR_RETURN(core::ApplicationProfile profile,
                          core::ApplicationProfile::Deserialize(
                              profile_text));
  profile.options.dense_kernels = args.Has("--dense-kernels");
  ADPROM_RETURN_IF_ERROR(ApplyBatchFlags(args, &profile.options));
  ADPROM_ASSIGN_OR_RETURN(std::string trace_text,
                          ReadFileToString(args.Get("--trace")));
  ADPROM_ASSIGN_OR_RETURN(runtime::Trace trace,
                          runtime::ParseTrace(trace_text));
  core::DetectionEngine engine(&profile);
  return PrintDetections(engine.MonitorTrace(trace), out);
}

util::Status CmdMonitor(const ParsedArgs& args, std::ostream& out) {
  if (args.positional.size() != 2 || !args.Has("--profile")) {
    return util::Status::InvalidArgument(
        "usage: adprom monitor <app.mini> [--db seed.sql]"
        " --profile app.profile [--input a,b] [--dense-kernels]"
        " [--batch-width N] [--no-simd] [--triage]");
  }
  ADPROM_ASSIGN_OR_RETURN(prog::Program program,
                          LoadProgram(args.positional[1]));
  ADPROM_ASSIGN_OR_RETURN(core::DbFactory db_factory, LoadDbFactory(args));
  ADPROM_ASSIGN_OR_RETURN(std::string profile_text,
                          ReadFileToString(args.Get("--profile")));
  ADPROM_ASSIGN_OR_RETURN(core::ApplicationProfile profile,
                          core::ApplicationProfile::Deserialize(
                              profile_text));
  profile.options.dense_kernels = args.Has("--dense-kernels");
  ADPROM_RETURN_IF_ERROR(ApplyBatchFlags(args, &profile.options));
  auto cfgs = prog::BuildAllCfgs(program);
  if (!cfgs.ok()) return cfgs.status();
  ADPROM_ASSIGN_OR_RETURN(
      runtime::Trace trace,
      core::AdProm::CollectTrace(program, *cfgs, db_factory,
                                 InputsFlag(args)));
  core::DetectionEngine engine(&profile);
  return PrintDetections(engine.MonitorTrace(trace), out);
}

/// One parsed line of the text feed: either an event bound for a
/// (tenant, session) or an end-of-session marker.
struct FeedLine {
  bool end = false;
  std::string tenant;
  std::string session;
  std::string body;  // the serialized event (event lines only)
};

/// Text feed syntax. Single-profile mode (`tenant_qualified` false):
///   <session>\t<event>        and  !end\t<session>
/// Multi-tenant mode:
///   <tenant>\t<session>\t<event>  and  !end\t<tenant>\t<session>
/// Events for unqualified lines belong to the implicit "default" tenant.
util::Result<FeedLine> ParseFeedLine(const std::string& line,
                                     bool tenant_qualified, size_t line_no) {
  FeedLine parsed;
  parsed.tenant = "default";
  std::string rest = line;
  const size_t first = rest.find('\t');
  if (first == std::string::npos) {
    return util::Status::ParseError(util::StrFormat(
        tenant_qualified
            ? "feed line %zu: expected <tenant>\\t<session>\\t<event>"
            : "feed line %zu: expected <session>\\t<event>",
        line_no));
  }
  std::string head = rest.substr(0, first);
  rest = rest.substr(first + 1);
  if (head == "!end") {
    parsed.end = true;
    if (tenant_qualified) {
      const size_t sep = rest.find('\t');
      if (sep == std::string::npos) {
        return util::Status::ParseError(util::StrFormat(
            "feed line %zu: expected !end\\t<tenant>\\t<session>", line_no));
      }
      parsed.tenant = rest.substr(0, sep);
      parsed.session = rest.substr(sep + 1);
    } else {
      parsed.session = rest;
    }
    return parsed;
  }
  if (tenant_qualified) {
    parsed.tenant = std::move(head);
    const size_t sep = rest.find('\t');
    if (sep == std::string::npos) {
      return util::Status::ParseError(util::StrFormat(
          "feed line %zu: expected <tenant>\\t<session>\\t<event>",
          line_no));
    }
    parsed.session = rest.substr(0, sep);
    parsed.body = rest.substr(sep + 1);
  } else {
    parsed.session = std::move(head);
    parsed.body = std::move(rest);
  }
  return parsed;
}

util::Result<size_t> ParseCountFlag(const ParsedArgs& args,
                                    const std::string& flag, long min_value,
                                    size_t fallback) {
  if (!args.Has(flag)) return fallback;
  const std::string value = args.Get(flag);
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || parsed < min_value) {
    return util::Status::InvalidArgument(
        flag + " must be a number >= " + std::to_string(min_value));
  }
  return static_cast<size_t>(parsed);
}

void PrintFleetMetrics(const service::FleetMetrics& metrics,
                       double elapsed_sec, size_t served,
                       std::ostream& out) {
  const double rate = elapsed_sec > 0.0
                          ? static_cast<double>(served) / elapsed_sec
                          : 0.0;
  out << util::StrFormat(
      "metrics: fleet: %zu events in %.3f s (%.0f events/sec)\n", served,
      elapsed_sec, rate);
  for (size_t i = 0; i < metrics.shards.size(); ++i) {
    const service::ShardMetrics& shard = metrics.shards[i];
    out << util::StrFormat(
        "metrics: shard %zu: submitted %llu scored %llu dropped %llu"
        " verdicts %llu alarms %llu backlog %zu max-backlog %zu"
        " submit-p50 %.1fus submit-p99 %.1fus\n",
        i, static_cast<unsigned long long>(shard.submitted),
        static_cast<unsigned long long>(shard.scored),
        static_cast<unsigned long long>(shard.dropped),
        static_cast<unsigned long long>(shard.verdicts),
        static_cast<unsigned long long>(shard.alarms), shard.queue_depth,
        shard.max_queue_depth, shard.submit_p50_us, shard.submit_p99_us);
  }
  for (const service::TenantMetrics& tenant : metrics.tenants) {
    out << util::StrFormat(
        "metrics: tenant %s: generation %llu submitted %llu scored %llu"
        " dropped %llu verdicts %llu alarms %llu sessions %llu/%llu\n",
        tenant.tenant.c_str(),
        static_cast<unsigned long long>(tenant.generation),
        static_cast<unsigned long long>(tenant.submitted),
        static_cast<unsigned long long>(tenant.scored),
        static_cast<unsigned long long>(tenant.dropped),
        static_cast<unsigned long long>(tenant.verdicts),
        static_cast<unsigned long long>(tenant.alarms),
        static_cast<unsigned long long>(tenant.sessions_closed),
        static_cast<unsigned long long>(tenant.sessions_opened));
  }
}

/// `adprom serve`: the streaming detection fleet node. Sessions shard by
/// a stable hash of (tenant, session key) across --shards independent
/// managers; profiles come from one file (--profile, single implicit
/// "default" tenant) or a directory of <tenant>.profile files
/// (--profiles-dir). Input modes:
///   --trace f1,f2    replay recorded trace files, one session per file
///                    (single-profile mode only);
///   --events file / stdin   live feed, --format binary (default, the
///       length-prefixed ADPF framing of runtime/frame_codec.h) or text
///       (one event per line; see ParseFeedLine). Malformed binary input
///       fails closed: the stream is rejected at the first bad frame.
util::Status CmdServe(const ParsedArgs& args, std::ostream& out) {
  const bool multi_tenant = args.Has("--profiles-dir");
  if (multi_tenant == args.Has("--profile")) {
    return util::Status::InvalidArgument(
        "usage: adprom serve (--profile app.profile | --profiles-dir dir)"
        " [--trace f1,f2 | --events feed] [--format binary|text]"
        " [--shards N] [--threads N] [--queue N]"
        " [--policy block|drop-oldest] [--metrics] [--all]"
        " [--dense-kernels] [--batch-width N] [--no-simd] [--triage]");
  }

  size_t threads = 1;
  if (args.Has("--threads")) {
    const std::string& value = args.Get("--threads");
    char* end = nullptr;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0' || parsed < 0) {
      return util::Status::InvalidArgument(
          "--threads must be a number >= 0 (0 = all hardware threads)");
    }
    threads = util::ResolveThreadCount(static_cast<int>(parsed));
  }
  service::FleetOptions fleet_options;
  ADPROM_ASSIGN_OR_RETURN(fleet_options.num_shards,
                          ParseCountFlag(args, "--shards", 1, 1));
  ADPROM_ASSIGN_OR_RETURN(
      fleet_options.session.queue_capacity,
      ParseCountFlag(args, "--queue", 1,
                     fleet_options.session.queue_capacity));
  if (args.Has("--policy")) {
    const std::string policy = args.Get("--policy");
    if (policy == "block") {
      fleet_options.session.overflow =
          service::SessionManagerOptions::OverflowPolicy::kBlock;
    } else if (policy == "drop-oldest") {
      fleet_options.session.overflow =
          service::SessionManagerOptions::OverflowPolicy::kDropOldest;
    } else {
      return util::Status::InvalidArgument(
          "--policy must be block or drop-oldest");
    }
  }
  const std::string format = args.Get("--format", "binary");
  if (format != "binary" && format != "text") {
    return util::Status::InvalidArgument("--format must be binary or text");
  }

  service::ProfileRegistry registry;
  if (multi_tenant) {
    if (args.Has("--trace")) {
      return util::Status::InvalidArgument(
          "--trace replay needs --profile (single-tenant mode)");
    }
    ADPROM_RETURN_IF_ERROR(
        registry.LoadDirectory(args.Get("--profiles-dir")).status());
  } else {
    ADPROM_ASSIGN_OR_RETURN(std::string profile_text,
                            ReadFileToString(args.Get("--profile")));
    ADPROM_ASSIGN_OR_RETURN(core::ApplicationProfile profile,
                            core::ApplicationProfile::Deserialize(
                                profile_text));
    profile.options.dense_kernels = args.Has("--dense-kernels");
    ADPROM_RETURN_IF_ERROR(ApplyBatchFlags(args, &profile.options));
    ADPROM_RETURN_IF_ERROR(registry.Install("default", std::move(profile),
                                            args.Get("--profile")));
  }
  // In single-profile mode the sink keeps seeing bare session keys, so
  // the fleet path is output-compatible with the pre-shard service.
  fleet_options.qualify_sink_ids = multi_tenant;

  util::ThreadPool pool(threads);
  service::StreamAlertSink sink(&out, /*alarms_only=*/!args.Has("--all"));
  service::FleetNode fleet(&registry, &sink, &pool, fleet_options);
  size_t submitted = 0;
  const auto start = std::chrono::steady_clock::now();

  if (args.Has("--trace")) {
    for (const std::string& path : util::Split(args.Get("--trace"), ',')) {
      std::ifstream file(path, std::ios::binary);
      if (!file) return util::Status::NotFound("cannot open " + path);
      runtime::TraceReader reader(&file);
      runtime::CallEvent event;
      while (true) {
        ADPROM_ASSIGN_OR_RETURN(bool more, reader.Next(&event));
        if (!more) break;
        ADPROM_RETURN_IF_ERROR(
            fleet.Submit("default", path, std::move(event)));
        ++submitted;
        event = runtime::CallEvent();
      }
    }
  } else {
    std::ifstream events_file;
    std::istream* src = &std::cin;
    if (args.Has("--events") && args.Get("--events") != "-") {
      events_file.open(args.Get("--events"), std::ios::binary);
      if (!events_file) {
        return util::Status::NotFound("cannot open " + args.Get("--events"));
      }
      src = &events_file;
    }
    if (format == "text") {
      std::string line;
      size_t line_no = 0;
      while (std::getline(*src, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        ADPROM_ASSIGN_OR_RETURN(FeedLine feed,
                                ParseFeedLine(line, multi_tenant, line_no));
        if (feed.end) {
          (void)fleet.CloseSession(feed.tenant,
                                   feed.session);  // unknown: no-op
          continue;
        }
        auto event = runtime::ParseTraceLine(feed.body);
        if (!event.ok()) {
          return util::Status::ParseError(util::StrFormat(
              "feed line %zu: %s", line_no,
              event.status().message().c_str()));
        }
        ADPROM_RETURN_IF_ERROR(fleet.Submit(feed.tenant, feed.session,
                                            std::move(event).value()));
        ++submitted;
      }
    } else {
      runtime::FrameDecoder decoder;
      std::vector<char> chunk(64 * 1024);
      while (src->good()) {
        src->read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
        const std::streamsize got = src->gcount();
        if (got <= 0) break;
        decoder.Feed(
            std::string_view(chunk.data(), static_cast<size_t>(got)));
        while (true) {
          ADPROM_ASSIGN_OR_RETURN(std::optional<runtime::Frame> frame,
                                  decoder.Next());
          if (!frame.has_value()) break;
          const std::string tenant =
              frame->tenant.empty() ? "default" : frame->tenant;
          if (frame->type == runtime::FrameType::kEndSession) {
            (void)fleet.CloseSession(tenant, frame->session);
            continue;
          }
          ADPROM_RETURN_IF_ERROR(fleet.Submit(tenant, frame->session,
                                              std::move(frame->event)));
          ++submitted;
        }
      }
      ADPROM_RETURN_IF_ERROR(decoder.Finish());
    }
  }

  fleet.Drain();
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  // Snapshot metrics while sessions are still live, then flush them.
  const service::FleetMetrics metrics = fleet.Metrics();
  fleet.CloseAll();
  out << "served " << submitted << " events, dropped "
      << fleet.total_dropped() << "\n";
  if (args.Has("--metrics")) {
    PrintFleetMetrics(metrics, elapsed, submitted, out);
  }
  return util::Status::Ok();
}

/// `adprom frame`: converts a text event feed (the serve --format=text
/// syntax, including !end markers) into the binary ADPF frame stream, so
/// feeds can be replayed through the wire protocol and the two formats
/// compared bit for bit.
util::Status CmdFrame(const ParsedArgs& args, std::ostream& out) {
  if (!args.Has("--events") || !args.Has("--out")) {
    return util::Status::InvalidArgument(
        "usage: adprom frame --events feed.txt --out feed.bin [--tenants]");
  }
  ADPROM_ASSIGN_OR_RETURN(std::string text,
                          ReadFileToString(args.Get("--events")));
  const bool tenant_qualified = args.Has("--tenants");
  std::string encoded;
  size_t events = 0;
  size_t ends = 0;
  size_t line_no = 0;
  for (const std::string& line : util::Split(text, '\n')) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    ADPROM_ASSIGN_OR_RETURN(FeedLine feed,
                            ParseFeedLine(line, tenant_qualified, line_no));
    if (feed.end) {
      runtime::EncodeEndFrame(feed.tenant, feed.session, &encoded);
      ++ends;
      continue;
    }
    auto event = runtime::ParseTraceLine(feed.body);
    if (!event.ok()) {
      return util::Status::ParseError(util::StrFormat(
          "feed line %zu: %s", line_no, event.status().message().c_str()));
    }
    runtime::EncodeEventFrame(feed.tenant, feed.session, *event, &encoded);
    ++events;
  }
  ADPROM_RETURN_IF_ERROR(WriteStringToFile(args.Get("--out"), encoded));
  out << "framed " << events << " events, " << ends << " end markers -> "
      << args.Get("--out") << " (" << encoded.size() << " bytes)\n";
  return util::Status::Ok();
}

/// `adprom info`: inspects a stored profile — dimensions, thresholds, and
/// the transition/emission sparsity the CSR kernels exploit.
util::Status CmdInfo(const ParsedArgs& args, std::ostream& out) {
  if (args.positional.size() != 2) {
    return util::Status::InvalidArgument(
        "usage: adprom info <app.profile>");
  }
  ADPROM_ASSIGN_OR_RETURN(std::string profile_text,
                          ReadFileToString(args.positional[1]));
  ADPROM_ASSIGN_OR_RETURN(core::ApplicationProfile profile,
                          core::ApplicationProfile::Deserialize(
                              profile_text));

  auto count_nonzeros = [](const util::Matrix& m) {
    size_t nnz = 0;
    for (size_t r = 0; r < m.rows(); ++r) {
      for (size_t c = 0; c < m.cols(); ++c) nnz += m.At(r, c) != 0.0;
    }
    return nnz;
  };
  auto density = [](size_t nnz, size_t cells) {
    return cells == 0 ? 1.0
                      : static_cast<double>(nnz) / static_cast<double>(cells);
  };
  const hmm::HmmModel& model = profile.model;
  const size_t n = model.num_states();
  const size_t m = model.num_symbols();
  const size_t a_nnz = count_nonzeros(model.a());
  const size_t b_nnz = count_nonzeros(model.b());

  out << "profile: " << args.positional[1] << "\n";
  out << "serialized size: " << profile_text.size() << " bytes\n";
  out << "window length: " << profile.options.window_length << "\n";
  out << "labels: " << (profile.options.use_dd_labels ? "data-flow"
                                                      : "call-names")
      << ", query signatures: "
      << (profile.options.use_query_signatures ? "on" : "off") << "\n";
  out << "sites: " << profile.num_sites << ", states: " << n
      << ", alphabet: " << profile.alphabet.size() << "\n";
  out << "threshold: " << util::StrFormat("%.6g", profile.threshold) << "\n";
  out << "context pairs: " << profile.context_pairs.size() << "\n";
  out << "labeled TD sources: " << profile.labeled_sources.size() << "\n";
  out << "transition matrix: " << n << "x" << n << ", nnz " << a_nnz << " ("
      << util::StrFormat("%.1f", 100.0 * density(a_nnz, n * n))
      << "% dense)\n";
  out << "emission matrix: " << n << "x" << m << ", nnz " << b_nnz << " ("
      << util::StrFormat("%.1f", 100.0 * density(b_nnz, n * m))
      << "% dense)\n";
  // What the triage tier would prepare for this profile: int16 tables for
  // pi, the stored A nonzeros, and all of Bᵀ, with logs pre-scaled by
  // 2^kScaleBits.
  const hmm::SparseHmm sparse(model);
  const hmm::TriageTables triage(sparse);
  out << "quantized triage tables: " << triage.SizeBytes()
      << " bytes (int16 logs, scale 2^" << hmm::TriageTables::kScaleBits
      << " = " << hmm::TriageTables::kScale << ")\n";
  out << "simd dispatch: " << util::SimdLevelName(util::DetectSimdLevel())
      << "\n";
  return util::Status::Ok();
}

util::Result<size_t> CmdLint(const ParsedArgs& args, std::ostream& out) {
  if (args.positional.size() != 2) {
    return util::Status::InvalidArgument(
        "usage: adprom lint <app.mini> [--db seed.sql] [--witnesses] "
        "[--dump-witness=<dir>] [--format=json] [--no-column-taint] "
        "[--monitored-sinks=a,b] [--analysis-cache=<dir>] "
        "[--no-analysis-cache] [--stats]");
  }
  const std::string& path = args.positional[1];
  ADPROM_ASSIGN_OR_RETURN(prog::Program program, LoadProgram(path));
  analysis::dataflow::LintOptions options;
  if (args.Has("--monitored-sinks")) {
    options.monitored.sink_calls.clear();
    for (const std::string& sink :
         util::Split(args.Get("--monitored-sinks"), ',')) {
      const std::string_view trimmed = util::Trim(sink);
      if (!trimmed.empty()) {
        options.monitored.sink_calls.insert(std::string(trimmed));
      }
    }
  }
  if (args.Has("--db")) {
    ADPROM_ASSIGN_OR_RETURN(std::string text,
                            ReadFileToString(args.Get("--db")));
    auto catalog = db::BuildSchemaCatalog(ParseSqlSeed(text));
    if (!catalog.ok()) return catalog.status();
    options.schemas = std::move(*catalog);
  }
  options.column_taint = !args.Has("--no-column-taint");
  options.witnesses = args.Has("--witnesses") || args.Has("--dump-witness");
  analysis::AnalysisCache disk_cache;
  const bool persist_cache = LoadCacheDir(args, &disk_cache, out);
  if (persist_cache) options.cache = &disk_cache;
  ADPROM_ASSIGN_OR_RETURN(analysis::dataflow::LintReport report,
                          analysis::dataflow::RunLint(program, options));
  if (persist_cache) {
    ADPROM_RETURN_IF_ERROR(analysis::SaveAnalysisCache(
        disk_cache, args.Get("--analysis-cache")));
  }

  const std::string format = args.Get("--format", "text");
  if (format == "json") {
    out << report.FormatJson(path);
  } else if (format == "text") {
    out << report.Format(path);
    if (args.Has("--witnesses")) {
      for (const analysis::dataflow::LeakWitness& w : report.witnesses) {
        out << "\n" << analysis::dataflow::FormatWitness(w);
      }
    }
    if (args.Has("--stats")) {
      // Text mode only: the JSON rendering must stay machine-parseable
      // (and byte-identical across cold and warm runs).
      out << util::StrFormat(
          "pass seconds: structural %.3f, absint %.3f, injection %.3f, "
          "exfil %.3f\n",
          report.stats.structural_seconds, report.stats.absint_seconds,
          report.stats.injection_seconds, report.stats.exfil_seconds);
      PrintCacheLine(out, "absint", report.stats.absint_cache);
      PrintCacheLine(out, "taint", report.stats.taint_cache);
      PrintCacheLine(out, "ifds", report.stats.ifds_cache);
    }
  } else {
    return util::Status::InvalidArgument("unknown --format: " + format);
  }

  if (args.Has("--dump-witness")) {
    const std::string dir = args.Get("--dump-witness");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return util::Status::Internal("cannot create " + dir + ": " +
                                    ec.message());
    }
    for (size_t i = 0; i < report.witnesses.size(); ++i) {
      const std::string witness_path =
          dir + "/witness-" + std::to_string(i) + ".dot";
      ADPROM_RETURN_IF_ERROR(WriteStringToFile(
          witness_path,
          analysis::dataflow::WitnessToDot(report.witnesses[i])));
    }
    if (format != "json") {
      out << "witnesses dumped to " << dir << "/ ("
          << report.witnesses.size() << " paths)\n";
    }
  }
  return report.findings.size();
}

}  // namespace

util::Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

util::Status WriteStringToFile(const std::string& path,
                               const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::Internal("cannot write " + path);
  out << content;
  return util::Status::Ok();
}

std::vector<std::string> ParseSqlSeed(const std::string& text) {
  std::vector<std::string> statements;
  for (const std::string& line : util::Split(text, '\n')) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    statements.emplace_back(trimmed);
  }
  return statements;
}

util::Status RunCli(const std::vector<std::string>& args,
                    std::ostream& out) {
  if (args.empty()) {
    return util::Status::InvalidArgument(
        "usage: adprom "
        "<analyze|train|trace|score|monitor|serve|frame|lint|info> ...");
  }
  ADPROM_ASSIGN_OR_RETURN(ParsedArgs parsed, ParseArgs(args));
  const std::string& command = parsed.positional.empty()
                                   ? std::string()
                                   : parsed.positional[0];
  if (command == "analyze") return CmdAnalyze(parsed, out);
  if (command == "train") return CmdTrain(parsed, out);
  if (command == "trace") return CmdTrace(parsed, out);
  if (command == "score") return CmdScore(parsed, out);
  if (command == "monitor") return CmdMonitor(parsed, out);
  if (command == "serve") return CmdServe(parsed, out);
  if (command == "frame") return CmdFrame(parsed, out);
  if (command == "info") return CmdInfo(parsed, out);
  if (command == "lint") return CmdLint(parsed, out).status();
  return util::Status::InvalidArgument("unknown command: " + command);
}

int RunCliMain(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  const bool is_lint = !args.empty() && args[0] == "lint";
  if (is_lint) {
    auto parsed = ParseArgs(args);
    const auto findings =
        parsed.ok() ? CmdLint(*parsed, out)
                    : util::Result<size_t>(parsed.status());
    if (!findings.ok()) {
      err << "adprom: " << findings.status().ToString() << "\n";
      return 2;
    }
    return *findings > 0 ? 1 : 0;
  }
  const util::Status status = RunCli(args, out);
  if (!status.ok()) {
    err << "adprom: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace adprom::cli
