#ifndef ADPROM_TOOLS_CLI_LIB_H_
#define ADPROM_TOOLS_CLI_LIB_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace adprom::cli {

/// The `adprom` command-line tool, as a testable library. Commands:
///
///   adprom analyze <app.mini>
///       Static phase only: functions, call sites, DDG-labeled outputs,
///       pCTM summary and invariant check.
///
///   adprom train <app.mini> --db seed.sql --cases cases.txt
///                --out app.profile [--window N] [--no-labels]
///                [--signatures] [--seed S] [--threads N]
///       Full training phase; writes the serialized profile. --threads
///       fans the Baum-Welch E-step across N workers (0 = all hardware
///       threads); the trained profile is bit-identical for every N.
///
///   adprom trace <app.mini> --db seed.sql --input a,b,c --out run.trace
///       Runs the app once under the Calls Collector; writes the trace.
///
///   adprom score --profile app.profile --trace run.trace
///       Detection phase on a stored trace; prints per-window verdicts.
///
///   adprom monitor <app.mini> --db seed.sql --profile app.profile
///                  --input a,b,c
///       Runs the (possibly tampered) build and scores it live.
///
///   adprom serve --profile app.profile [--trace f1,f2 | --events feed]
///                [--threads N] [--queue N] [--policy block|drop-oldest]
///                [--all]
///       Streaming detection service: scores events one at a time across
///       many concurrent sessions (verdicts bit-identical to `score` on
///       the same events). --trace replays recorded trace files, one
///       session per file; otherwise a framed live feed is read from
///       --events (or stdin): "<session>\t<serialized event>" per line,
///       "!end\t<session>" closes a session, '#' comments. --queue bounds
///       each session's buffer and --policy picks what a full queue does
///       (block the producer, or drop the oldest event and count it).
///       Prints alarms as they fire (--all prints every verdict) and a
///       per-session summary on close.
///
///   adprom lint <app.mini>
///       Static vetting before deployment: flags string-concatenated
///       query construction reaching db_query (SQL injection), reads of
///       possibly-uninitialized variables, unreachable statements, dead
///       stores, and tainted DB data flowing into output channels outside
///       the monitored sink set. Exit code 0 = clean, 1 = findings,
///       2 = error (bad usage, unreadable or invalid program).
///
/// `analyze` and `train` accept --flow-insensitive to label the DDG with
/// the legacy flow-insensitive taint pass (ablation; the default
/// flow-sensitive pass labels a subset of the same output sites).
///
/// File formats:
///   seed.sql  — one SQL statement per line; '#' starts a comment.
///   cases.txt — one test case per line; whitespace-separated inputs.
///   profiles  — ApplicationProfile::Serialize text.
///   traces    — runtime::SerializeTrace text.
///
/// Returns OK and writes human output to `out` on success; errors are
/// returned as Status (the binary maps them to exit code 1 + stderr).
/// `lint` returns OK whenever the program could be linted, findings or
/// not — use RunCliMain for the finding-sensitive exit code.
util::Status RunCli(const std::vector<std::string>& args, std::ostream& out);

/// The binary's entry point: runs the command and returns its exit code.
/// Most commands exit 0 on success and 1 on error; `lint` exits 0 when
/// clean, 1 when it reports findings, and 2 on error.
int RunCliMain(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);

/// Helpers shared with tests.
util::Result<std::string> ReadFileToString(const std::string& path);
util::Status WriteStringToFile(const std::string& path,
                               const std::string& content);

/// Parses a seed.sql file into statements (comments/blank lines dropped).
std::vector<std::string> ParseSqlSeed(const std::string& text);

}  // namespace adprom::cli

#endif  // ADPROM_TOOLS_CLI_LIB_H_
