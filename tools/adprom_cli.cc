// The `adprom` command-line tool. See tools/cli_lib.h for usage.

#include <cstdio>
#include <iostream>

#include "tools/cli_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const adprom::util::Status status = adprom::cli::RunCli(args, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "adprom: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
