// The `adprom` command-line tool. See tools/cli_lib.h for usage.

#include <iostream>

#include "tools/cli_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return adprom::cli::RunCliMain(args, std::cout, std::cerr);
}
