// Scenario example: tautology SQL injection against the banking client
// (the paper's Attack 5 / Fig. 2). The vulnerable find_client transaction
// concatenates raw input into its query; AD-PROM never sees the query
// text — it detects the *behavioural* change (the burst of fetch/print_Q
// calls) and connects it to the clients table.
//
// Run: ./build/examples/bank_injection

#include <cstdio>

#include "apps/corpus.h"
#include "attack/mutators.h"
#include "prog/program.h"

int main() {
  using namespace adprom;

  apps::CorpusApp app = apps::MakeBankingApp();
  auto program = prog::ParseProgram(app.source);
  if (!program.ok()) {
    std::printf("parse error: %s\n", program.status().ToString().c_str());
    return 1;
  }

  std::printf("training AD-PROM on %zu normal teller sessions...\n",
              app.test_cases.size());
  auto system = core::AdProm::Train(*program, app.db_factory,
                                    app.test_cases);
  if (!system.ok()) {
    std::printf("training failed: %s\n", system.status().ToString().c_str());
    return 1;
  }
  std::printf("profile ready (threshold %.3f)\n\n",
              system->profile().threshold);

  // A legitimate lookup: retrieves exactly one client record.
  auto benign = system->Monitor(*program, app.db_factory,
                                {{"client", "104"}});
  std::printf("teller runs: client 104\n");
  for (const std::string& line : benign->io.screen) {
    std::printf("  | %s\n", line.c_str());
  }
  std::printf("  -> %zu alarms\n\n", benign->Alarms().size());

  // The attacker types the tautology payload instead of an account id.
  const std::string payload = attack::TautologyPayload();
  auto attacked = system->Monitor(*program, app.db_factory,
                                  {{"client", payload}});
  std::printf("attacker runs: client %s\n", payload.c_str());
  size_t shown = 0;
  for (const std::string& line : attacked->io.screen) {
    std::printf("  | %s\n", line.c_str());
    if (++shown == 6) {
      std::printf("  | ... (%zu more lines leak)\n",
                  attacked->io.screen.size() - shown);
      break;
    }
  }
  const auto alarms = attacked->Alarms();
  std::printf("  -> %zu alarms\n", alarms.size());
  if (!alarms.empty()) {
    const core::Detection& first = alarms.front();
    std::printf("  first alarm: %s at window %zu (score %.3f vs threshold"
                " %.3f)\n",
                core::DetectionFlagName(first.flag), first.window_start,
                first.score, system->profile().threshold);
    for (const core::Detection& alarm : alarms) {
      if (!alarm.source_tables.empty()) {
        std::printf("  targeted data source:");
        for (const std::string& table : alarm.source_tables) {
          std::printf(" %s", table.c_str());
        }
        std::printf("\n");
        break;
      }
    }
  }
  return 0;
}
