// Deployment example: train once, persist the application profile, and
// run the Detection Engine later from the stored artifact (the paper
// reports ~31 kB per application profile). The reloaded profile must
// classify traffic identically to the in-memory one.
//
// Run: ./build/examples/profile_persistence [profile-path]

#include <cstdio>
#include <fstream>
#include <sstream>

#include "apps/corpus.h"
#include "core/detection_engine.h"
#include "prog/program.h"

int main(int argc, char** argv) {
  using namespace adprom;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/adprom_hospital.profile";

  apps::CorpusApp app = apps::MakeHospitalApp();
  auto program = prog::ParseProgram(app.source);
  if (!program.ok()) {
    std::printf("parse error: %s\n", program.status().ToString().c_str());
    return 1;
  }

  // --- Train and persist -------------------------------------------------
  auto system = core::AdProm::Train(*program, app.db_factory,
                                    app.test_cases);
  if (!system.ok()) {
    std::printf("training failed: %s\n", system.status().ToString().c_str());
    return 1;
  }
  const std::string serialized = system->profile().Serialize();
  {
    std::ofstream out(path);
    out << serialized;
  }
  std::printf("trained profile for %s: %zu states, %zu symbols, %zu bytes"
              " -> %s\n",
              app.name.c_str(), system->profile().num_states,
              system->profile().alphabet.size(), serialized.size(),
              path.c_str());

  // --- Reload in a "fresh process" ---------------------------------------
  std::stringstream buffer;
  buffer << std::ifstream(path).rdbuf();
  auto reloaded = core::ApplicationProfile::Deserialize(buffer.str());
  if (!reloaded.ok()) {
    std::printf("reload failed: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("profile reloaded (threshold %.4f)\n", reloaded->threshold);

  // --- Monitor with the reloaded profile ---------------------------------
  core::DetectionEngine engine(&*reloaded);
  auto cfgs = prog::BuildAllCfgs(*program);
  runtime::ProgramIo io;
  auto trace = core::AdProm::CollectTrace(*program, *cfgs, app.db_factory,
                                          {{"patients", "bill"}}, &io);
  if (!trace.ok()) {
    std::printf("run failed: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  const auto detections = engine.MonitorTrace(*trace);
  size_t alarms = 0;
  for (const core::Detection& d : detections) {
    if (d.IsAlarm()) ++alarms;
  }
  std::printf("monitored a benign session: %zu calls, %zu windows, "
              "%zu alarms\n",
              trace->size(), detections.size(), alarms);

  // Cross-check: the stored profile agrees with the live one bit-for-bit
  // on every verdict.
  core::DetectionEngine live(&system->profile());
  const auto live_detections = live.MonitorTrace(*trace);
  bool identical = live_detections.size() == detections.size();
  for (size_t i = 0; identical && i < detections.size(); ++i) {
    identical = detections[i].flag == live_detections[i].flag;
  }
  std::printf("stored vs live verdicts identical: %s\n",
              identical ? "yes" : "NO (bug!)");
  return identical ? 0 : 1;
}
