// Evaluation example: measure a profile's accuracy the way the paper's
// §V-D experiment does — train on a SIR-style program's test suite, then
// score a mix of fresh normal windows and the three synthetic anomaly
// families (A-S1 tail replacement, A-S2 unknown calls, A-S3 inflated
// frequency), printing a confusion matrix per family.
//
// Run: ./build/examples/sir_monitoring

#include <cstdio>

#include "apps/corpus.h"
#include "attack/synthetic.h"
#include "eval/evaluation.h"
#include "prog/program.h"
#include "util/strings.h"
#include "util/table_printer.h"

int main() {
  using namespace adprom;

  apps::CorpusApp app = apps::MakeGrepLike();
  auto program = prog::ParseProgram(app.source);
  if (!program.ok()) {
    std::printf("parse error: %s\n", program.status().ToString().c_str());
    return 1;
  }
  auto system = core::AdProm::Train(*program, app.db_factory,
                                    app.test_cases);
  if (!system.ok()) {
    std::printf("training failed: %s\n", system.status().ToString().c_str());
    return 1;
  }
  const core::ApplicationProfile& profile = system->profile();
  std::printf("%s profile: %zu states, threshold %.3f\n\n",
              app.name.c_str(), profile.num_states, profile.threshold);

  // Fresh normal sessions (generated with a different seed).
  apps::CorpusApp fresh = apps::MakeGrepLike(50, 9001);
  auto cfgs = prog::BuildAllCfgs(*program);
  std::vector<runtime::Trace> normal_windows;
  for (const core::TestCase& tc : fresh.test_cases) {
    auto trace =
        core::AdProm::CollectTrace(*program, *cfgs, app.db_factory, tc);
    if (!trace.ok()) continue;
    for (const auto& window :
         core::SlidingWindows(*trace, profile.options.window_length)) {
      normal_windows.emplace_back(window.begin(), window.end());
    }
  }
  auto normal_scores = eval::ScoreWindows(profile, normal_windows);

  attack::SyntheticAnomalyGenerator generator(normal_windows, 1234);
  util::TablePrinter table(
      {"Anomaly family", "TP", "TN", "FP", "FN", "Recall", "Accuracy"});
  struct Family {
    const char* name;
    std::vector<runtime::Trace> windows;
  };
  std::vector<Family> families;
  families.push_back({"A-S1 (tail replaced)", generator.MakeBatch1(80)});
  families.push_back({"A-S2 (unknown calls)", generator.MakeBatch2(80)});
  families.push_back({"A-S3 (inflated freq)", generator.MakeBatch3(80)});

  for (const Family& family : families) {
    auto anomaly_scores = eval::ScoreWindows(profile, family.windows);
    const eval::ConfusionMatrix cm = eval::Classify(
        *normal_scores, *anomaly_scores, profile.threshold);
    table.AddRow({family.name, std::to_string(cm.tp),
                  std::to_string(cm.tn), std::to_string(cm.fp),
                  std::to_string(cm.fn),
                  util::StrFormat("%.3f", cm.Recall()),
                  util::StrFormat("%.4f", cm.Accuracy())});
  }
  table.Print();

  // The threshold trade-off, as a small ROC excerpt over A-S1.
  auto as1_scores = eval::ScoreWindows(profile, families[0].windows);
  const auto curve = eval::RocSweep(*normal_scores, *as1_scores);
  std::printf("\nFN rate at FP budgets (A-S1): ");
  for (double budget : {0.0, 0.01, 0.05}) {
    std::printf("FP<=%.2f -> FN %.3f   ", budget,
                eval::FnRateAtFpBudget(curve, budget));
  }
  std::printf("\n");
  return 0;
}
